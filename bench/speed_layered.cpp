// Speed study S6 (die stacks): the PR-7 trajectory point. A 36-block,
// 200-step transient co-simulation on a genuinely layered die/TIM/copper
// stack with a dynamic package-RC boundary, next to the single-layer
// spectral reference solving the same floorplan — the layered transfer-
// matrix z-stack must stay within a small constant factor of the legacy
// closed form (the per-step cost is still O(modes); the eigensolve is paid
// once at setup). BM_RtmPackageTransient prices the closed-loop RTM stack
// on top of the packaged plant.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"
#include "thermal/rc.hpp"
#include "thermal/stack.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan plan(int nx, int ny, double p_total) {
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(device::Technology::cmos012(), die_1mm(), nx, ny, cfg,
                                      rng);
}

// Die silicon, thermal interface, copper spreader, closed by a two-stage
// Cauer package network: the representative "real package" configuration
// the layered tests validate against FDM.
thermal::DieStack sandwich_stack(const thermal::Die& die) {
  thermal::BoundarySpec pkg;
  pkg.kind = thermal::BoundaryKind::RcNetwork;
  pkg.rc.emplace(std::vector<thermal::ThermalRc>{{0.4, 8e-3}, {1.2, 0.15}});
  return thermal::DieStack({{"die", die.thickness, die.k_si, 1.631e6},
                            {"tim", 25e-6, 4.0, 2.2e6},
                            {"spreader", 500e-6, 390.0, 3.4e6}},
                           pkg);
}

void transient_counters(benchmark::State& state, const core::TransientCosimResult& r) {
  state.counters["steps"] = static_cast<double>(r.backend_stats.transient_steps);
  state.counters["modes"] = static_cast<double>(r.backend_stats.modes);
  state.counters["blocks"] = static_cast<double>(
      r.block_temps.empty() ? 0 : r.block_temps.front().size());
  state.counters["case_rise_K"] = r.case_rise.empty() ? 0.0 : r.case_rise.back();
}

core::TransientCosimOptions transient_opts() {
  core::TransientCosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.dt = 1e-4;
  opts.t_stop = 20e-3;  // 200 steps, matching BM_TransientCosimSpectral
  opts.record_every = 10;
  return opts;
}

// The acceptance pair: identical floorplan, identical step count; the only
// delta is the three-layer transfer-matrix stack + dynamic boundary versus
// the legacy single-slab closed form. Compare real_time of these two
// entries to price the layered machinery.
void BM_CosimLayered(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  auto opts = transient_opts();
  opts.stack = sandwich_stack(fp.die());
  const core::ActivityProfile profile = [](std::size_t, double) { return 1.0; };
  core::TransientCosimResult last;
  for (auto _ : state) {
    last = core::solve_transient_cosim(device::Technology::cmos012(), fp, profile, opts);
    benchmark::DoNotOptimize(last);
  }
  transient_counters(state, last);
}
BENCHMARK(BM_CosimLayered)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_CosimSingleLayerReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  const auto opts = transient_opts();
  const core::ActivityProfile profile = [](std::size_t, double) { return 1.0; };
  core::TransientCosimResult last;
  for (auto _ : state) {
    last = core::solve_transient_cosim(device::Technology::cmos012(), fp, profile, opts);
    benchmark::DoNotOptimize(last);
  }
  transient_counters(state, last);
}
BENCHMARK(BM_CosimSingleLayerReference)->Arg(6)->Unit(benchmark::kMillisecond);

// Closed-loop RTM on the packaged plant: trace -> sensors -> policy ->
// actuation -> layered spectral plant with the case node as a state. This
// is the end-to-end cost of runtime thermal management when the boundary
// is no longer a constant.
void BM_RtmPackageTransient(benchmark::State& state) {
  const auto fp = plan(6, 6, 12.0);
  const auto tech = device::Technology::cmos012();
  rtm::BurstPattern pattern;
  pattern.period = 4e-3;
  pattern.duty = 0.5;
  pattern.high = 1.5;
  pattern.phase_step = 0.1;
  const auto trace = rtm::make_burst_trace(fp.blocks().size(), 50, 1e-3, pattern);
  const auto ladder = rtm::VfLadder::uniform(tech.vdd, 2e9, 5, 0.75, 0.4);
  rtm::RtmOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.dt = 1e-4;
  opts.steps_per_epoch = 2;
  opts.temperature_cap = 363.15;
  opts.stack = sandwich_stack(fp.die());
  rtm::ThresholdPolicy policy;
  rtm::RtmResult last;
  for (auto _ : state) {
    rtm::Actuator actuator(tech, fp, ladder);
    last = rtm::run_rtm(tech, fp, trace, policy, actuator, opts);
    benchmark::DoNotOptimize(last);
  }
  state.counters["epochs"] = static_cast<double>(last.times.size());
  state.counters["interventions"] = static_cast<double>(last.metrics.interventions);
  state.counters["peak_K"] = last.metrics.peak_temperature;
}
BENCHMARK(BM_RtmPackageTransient)->Unit(benchmark::kMillisecond);

}  // namespace
