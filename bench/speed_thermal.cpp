// Speed study S1 (thermal): closed-form image-method evaluation versus the
// FDM reference versus the spectral Green's-function solver, plus the cost
// anatomy of the analytic model (kernel, z-series, full map).
#include <benchmark/benchmark.h>

#include "floorplan/generators.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"
#include "thermal/spectral.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 300.0;
  return d;
}

std::vector<thermal::HeatSource> three_sources() {
  const auto tech = device::Technology::cmos012();
  return floorplan::make_three_block_ic(tech, die_1mm(), 0.5, 0.3, 0.2)
      .heat_sources(tech);
}

void BM_RectKernelExact(benchmark::State& state) {
  const thermal::HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  double x = 0.0;
  for (auto _ : state) {
    x = (x < 5e-6) ? x + 1e-9 : 0.0;
    benchmark::DoNotOptimize(thermal::rect_rise_exact(148.0, src, x, 0.3e-6));
  }
}
BENCHMARK(BM_RectKernelExact);

void BM_RectKernelMin(benchmark::State& state) {
  const thermal::HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  double x = 0.0;
  for (auto _ : state) {
    x = (x < 5e-6) ? x + 1e-9 : 0.0;
    benchmark::DoNotOptimize(thermal::rect_rise_min(148.0, src, x, 0.3e-6));
  }
}
BENCHMARK(BM_RectKernelMin);

void BM_ChipModelPointQuery(benchmark::State& state) {
  thermal::ImageOptions opts;
  opts.lateral_order = static_cast<int>(state.range(0));
  const thermal::ChipThermalModel model(die_1mm(), three_sources(), opts);
  double x = 0.0;
  for (auto _ : state) {
    x = (x < 0.9e-3) ? x + 1e-7 : 0.0;
    benchmark::DoNotOptimize(model.rise(x, 0.5e-3));
  }
}
BENCHMARK(BM_ChipModelPointQuery)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ChipModelSurfaceMap(benchmark::State& state) {
  thermal::ImageOptions opts;
  opts.lateral_order = 2;
  const thermal::ChipThermalModel model(die_1mm(), three_sources(), opts);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.surface_map(n, n));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ChipModelSurfaceMap)->Arg(32)->Arg(64);

void BM_FdmSteadySolve(benchmark::State& state) {
  thermal::FdmOptions opts;
  const int n = static_cast<int>(state.range(0));
  opts.nx = n;
  opts.ny = n;
  opts.nz = n / 2;
  const thermal::FdmThermalSolver solver(die_1mm(), opts);
  const auto sources = three_sources();
  int cg_iterations = 0;
  for (auto _ : state) {
    const auto sol = solver.solve_steady(sources);
    cg_iterations = sol.cg_iterations;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cg_iterations"] = static_cast<double>(cg_iterations);
}
BENCHMARK(BM_FdmSteadySolve)->Arg(16)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_FdmWarmStartedResolve(benchmark::State& state) {
  thermal::FdmOptions opts;
  opts.nx = 32;
  opts.ny = 32;
  opts.nz = 16;
  const thermal::FdmThermalSolver solver(die_1mm(), opts);
  auto sources = three_sources();
  auto sol = solver.solve_steady(sources);
  for (auto _ : state) {
    sources[0].power *= 1.001;  // small perturbation, as in a cosim iteration
    sol = solver.solve_steady(sources, &sol.rise);
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cg_iterations"] = static_cast<double>(sol.cg_iterations);
}
BENCHMARK(BM_FdmWarmStartedResolve)->Unit(benchmark::kMillisecond);

void BM_SpectralSteadySolve(benchmark::State& state) {
  // A spectral "solve" is the analytic mode projection plus the per-mode
  // transfer — no linear system. Contrast with BM_FdmSteadySolve.
  const thermal::SpectralThermalSolver solver(die_1mm(), {});
  const auto sources = three_sources();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_steady(sources));
  }
  state.counters["modes"] = static_cast<double>(solver.mode_count());
}
BENCHMARK(BM_SpectralSteadySolve)->Unit(benchmark::kMillisecond);

void BM_SpectralSurfaceMap(benchmark::State& state) {
  // DCT-synthesized full-surface map: O(M log M) versus the image model's
  // O(points x images) sweep in BM_ChipModelSurfaceMap.
  const thermal::SpectralThermalSolver solver(die_1mm(), {});
  const auto sol = solver.solve_steady(three_sources());
  const int n = static_cast<int>(state.range(0));
  const long long fft_before = solver.fft_calls();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.surface_map(sol, n, n));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  // Per-map FFT count (the counter itself is cumulative; the raw value would
  // scale with however many iterations this machine happened to run).
  state.counters["fft_calls"] =
      static_cast<double>(solver.fft_calls() - fft_before) /
      static_cast<double>(state.iterations());
  state.counters["modes"] = static_cast<double>(solver.mode_count());
}
BENCHMARK(BM_SpectralSurfaceMap)->Arg(32)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
