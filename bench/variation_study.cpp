// Extension bench: variation-aware leakage. VT0 variation makes leakage
// lognormal; this bench quantifies the mean-vs-nominal penalty and the
// tail (p95) across sigma values and temperatures for a 2000-gate block,
// and checks the Monte Carlo against the closed-form lognormal moments.
#include <iostream>

#include "common/constants.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "device/variation.hpp"
#include "netlist/netlist.hpp"

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos012();
  const netlist::CellLibrary lib(tech);
  Rng build(2718);
  const auto nl = netlist::make_random_netlist(lib, 2000, build);

  Table table("Variation study - 2000-gate block, Monte Carlo (400 samples)");
  table.set_columns({"sigma_vt0_mV", "T_C", "nominal_uA", "mean_uA", "mean/nominal",
                     "closed_form_penalty", "p95/nominal"});
  table.set_precision(4);

  for (double sigma_mv : {15.0, 30.0, 45.0}) {
    const device::VariationModel var{sigma_mv * 1e-3};
    for (double t_c : {25.0, 110.0}) {
      Rng mc(static_cast<std::uint64_t>(sigma_mv * 1000 + t_c));
      const auto stats =
          netlist::variation_leakage(nl, tech, var, celsius(t_c), 400, mc);
      table.add_row({sigma_mv, t_c, stats.nominal / uA, stats.mean / uA,
                     stats.mean / stats.nominal, var.mean_multiplier(tech, celsius(t_c)),
                     stats.p95 / stats.nominal});
    }
  }
  table.print(std::cout);
  table.write_csv_file("variation_study.csv");

  std::cout << "\nReading: the mean chip leaks exp(s^2/2) more than the nominal chip\n"
               "(s = sigma_vt0/(n*VT)); the penalty is worst cold, where n*VT is small.\n"
               "Nominal-corner leakage sign-off under-budgets by the 'mean/nominal' column.\n";
  return 0;
}
