// Extension bench: variation-aware leakage. VT0 variation makes leakage
// lognormal; this bench quantifies the mean-vs-nominal penalty and the
// tail (p95) across sigma values and temperatures for a 2000-gate block,
// and checks the Monte Carlo against the closed-form lognormal moments.
// A second section closes the loop thermally: the same VT0 spread pushed
// through the full concurrent power-thermal solve via the batched scenario
// engine (one shared geometry precompute, per-sample RNG streams), where
// the leakage tail compounds with self-heating.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/constants.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/scenario_batch.hpp"
#include "device/variation.hpp"
#include "floorplan/generators.hpp"
#include "netlist/netlist.hpp"

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos012();
  const netlist::CellLibrary lib(tech);
  Rng build(2718);
  const auto nl = netlist::make_random_netlist(lib, 2000, build);

  Table table("Variation study - 2000-gate block, Monte Carlo (400 samples)");
  table.set_columns({"sigma_vt0_mV", "T_C", "nominal_uA", "mean_uA", "mean/nominal",
                     "closed_form_penalty", "p95/nominal"});
  table.set_precision(4);

  for (double sigma_mv : {15.0, 30.0, 45.0}) {
    const device::VariationModel var{sigma_mv * 1e-3};
    for (double t_c : {25.0, 110.0}) {
      const auto seed = static_cast<std::uint64_t>(sigma_mv * 1000 + t_c);
      const auto stats =
          netlist::variation_leakage(nl, tech, var, celsius(t_c), 400, seed);
      table.add_row({sigma_mv, t_c, stats.nominal / uA, stats.mean / uA,
                     stats.mean / stats.nominal, var.mean_multiplier(tech, celsius(t_c)),
                     stats.p95 / stats.nominal});
    }
  }
  table.print(std::cout);
  table.write_csv_file("variation_study.csv");

  std::cout << "\nReading: the mean chip leaks exp(s^2/2) more than the nominal chip\n"
               "(s = sigma_vt0/(n*VT)); the penalty is worst cold, where n*VT is small.\n"
               "Nominal-corner leakage sign-off under-budgets by the 'mean/nominal' column.\n";

  // Electro-thermal Monte Carlo via the batched scenario engine: one shared
  // spectral precompute, 2000 samples of per-block VT0 offsets, each sample
  // a full concurrent solve. Self-heating amplifies the lognormal tail: a
  // leaky sample runs hotter, which makes it leak more still.
  thermal::Die die;
  die.width = 12e-3;
  die.height = 12e-3;
  die.thickness = 500e-6;
  die.k_si = 148.0;
  die.t_sink = 318.15;
  Rng fp_rng(2026);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 13.5;
  cfg.gates_per_mm2 = 50e3;
  const auto fp = floorplan::make_manycore(tech, die, 3, 3, cfg, fp_rng);

  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.influence = core::InfluenceMode::MatrixFree;
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.damping = 1.0;

  Table thermal_table(
      "Electro-thermal variation - 36-block plan, batched Monte Carlo (2000 samples)");
  thermal_table.set_columns({"sigma_vt0_mV", "nominal_leak_W", "mean_leak_W",
                             "p95_leak_W", "mean_Tmax_C", "p95_Tmax_C"});
  thermal_table.set_precision(4);

  for (double sigma_mv : {15.0, 30.0, 45.0}) {
    core::ScenarioBatch batch(tech, fp, opts);
    const std::size_t nominal_idx = batch.add_nominal();
    batch.add_variation_samples(device::VariationModel{sigma_mv * 1e-3}, 2000,
                                static_cast<std::uint64_t>(sigma_mv * 1000));
    const auto results = batch.solve_all();

    std::vector<double> leak, tmax;
    for (std::size_t k = nominal_idx + 1; k < results.size(); ++k) {
      leak.push_back(results[k].total_leakage);
      tmax.push_back(results[k].max_temperature);
    }
    std::sort(leak.begin(), leak.end());
    std::sort(tmax.begin(), tmax.end());
    const auto mean = [](const std::vector<double>& v) {
      double s = 0.0;
      for (const double x : v) s += x;
      return s / static_cast<double>(v.size());
    };
    const std::size_t p95 = leak.size() - 1 - leak.size() / 20;
    thermal_table.add_row({sigma_mv, results[nominal_idx].total_leakage, mean(leak),
                           leak[p95], mean(tmax) - 273.15, tmax[p95] - 273.15});
  }
  thermal_table.print(std::cout);
  thermal_table.write_csv_file("variation_study_thermal.csv");

  std::cout << "\nReading: self-heating compounds the lognormal penalty — the p95 sample\n"
               "both leaks and heats beyond what the isothermal study predicts.\n";
  return 0;
}
