#!/usr/bin/env python3
"""Diff two merged bench reports (BENCH_<label>.json from run_bench.sh).

Wall time drifts with the machine, the build, and the moon phase, so it gets
a tolerance: only regressions beyond --time-tolerance (default 10%) are
flagged. Solver counters (picard_iterations, cg_iterations, transient_steps,
fft_calls, ...) are deterministic for a given code + configuration, so ANY
counter increase is flagged — a convergence or algorithmic regression hiding
inside an apparently-fine wall time is exactly what this catches.

Benchmarks present on only one side are reported informationally and are not
failures: PRs add trajectory points.

Exit status: 0 = clean, 1 = at least one regression flagged. CI runs this as
an advisory (continue-on-error) step against the previous PR's checked-in
report.

Usage: bench/compare_bench.py BASELINE.json CANDIDATE.json [--time-tolerance 0.10]
"""

import argparse
import json
import sys

# Deterministic solver-effort counters: any increase is a regression.
#
# The authoritative list is the C++ telemetry counter catalog
# (telemetry::guarded_counter_names): run_bench.sh embeds it into each report
# as "solver_counters", and guarded_counters() below takes the union of both
# reports' embedded lists. This tuple is only the fallback for diffing old
# reports generated before the catalog existed.
FALLBACK_SOLVER_COUNTERS = (
    "picard_iterations",
    "picard_iterations_total",
    "cg_iterations",
    "transient_steps",
    "fft_calls",
    "batched_matvecs",
    "newton_iterations",
    "homotopy_steps",
    "outer_iterations",
)


def guarded_counters(base_report, cand_report):
    """Union of the catalog lists both reports embed (order-stable), falling
    back to the hardcoded tuple when neither report carries one."""
    names = []
    for report in (base_report, cand_report):
        for name in report.get("solver_counters", ()):
            if name not in names:
                names.append(name)
    return tuple(names) if names else FALLBACK_SOLVER_COUNTERS


def load(path):
    with open(path) as f:
        report = json.load(f)
    entries = {}
    for suite, benches in report.get("benchmarks", {}).items():
        for bench in benches:
            entries[f"{suite}:{bench['name']}"] = bench
    return report, entries


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--time-tolerance", type=float, default=0.10,
                        help="allowed fractional real_time growth (default 0.10)")
    args = parser.parse_args()

    base_report, base = load(args.baseline)
    cand_report, cand = load(args.candidate)

    # Span tracing changes what the wall times mean; a traced-vs-untraced
    # diff would report the tracer's own cost as a code regression (or hide
    # one of the same size). Refuse outright. Reports without the stamp
    # (pre-telemetry trajectory points) are treated as untraced.
    base_traced = bool(base_report.get("telemetry_enabled", False))
    cand_traced = bool(cand_report.get("telemetry_enabled", False))
    if base_traced != cand_traced:
        print(f"error: telemetry_enabled mismatch: baseline={base_traced} "
              f"candidate={cand_traced}; re-run the bench with matching "
              "PTHERM_TELEMETRY settings", file=sys.stderr)
        return 2

    for side, report, path in (("baseline", base_report, args.baseline),
                               ("candidate", cand_report, args.candidate)):
        if report.get("build_type") != "Release":
            print(f"warning: {side} {path} is a '{report.get('build_type')}' build; "
                  "wall-time comparison is unreliable", file=sys.stderr)
    if base_report.get("benchmark_library_build_type") != \
       cand_report.get("benchmark_library_build_type"):
        print("warning: benchmark library build types differ between reports",
              file=sys.stderr)

    regressions = []
    improvements = []
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    for key in sorted(set(base) & set(cand)):
        b, c = base[key], cand[key]
        if b.get("time_unit") != c.get("time_unit"):
            regressions.append(f"{key}: time_unit changed "
                               f"{b.get('time_unit')} -> {c.get('time_unit')}")
            continue
        bt, ct = b.get("real_time"), c.get("real_time")
        if bt and ct:
            ratio = ct / bt
            if ratio > 1.0 + args.time_tolerance:
                regressions.append(
                    f"{key}: real_time {bt:.4g} -> {ct:.4g} {b['time_unit']} "
                    f"(+{100 * (ratio - 1):.1f}% > {100 * args.time_tolerance:.0f}%)")
            elif ratio < 1.0 - args.time_tolerance:
                improvements.append(
                    f"{key}: real_time {bt:.4g} -> {ct:.4g} {b['time_unit']} "
                    f"({100 * (ratio - 1):.1f}%)")
        for counter in guarded_counters(base_report, cand_report):
            if counter in b and counter in c and c[counter] > b[counter]:
                regressions.append(
                    f"{key}: {counter} {b[counter]:g} -> {c[counter]:g} "
                    "(solver counters must not grow)")

    print(f"compared {len(set(base) & set(cand))} common benchmarks "
          f"({args.baseline} -> {args.candidate})")
    for key in only_base:
        print(f"note: only in baseline: {key}")
    for key in only_cand:
        print(f"note: new in candidate: {key}")
    for line in improvements:
        print(f"improved: {line}")
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for line in regressions:
            print(f"REGRESSION: {line}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
