// Ablation A1: what does each ingredient of the thermal estimator buy?
//  * naive point source vs line source vs min(T0, Tline) vs exact, for the
//    single-device profile;
//  * lateral image order 0/1/2/3 and the sink-plane z-series on/off, for the
//    die-level field (validated against FDM).
#include <cmath>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "floorplan/generators.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"

int main() {
  using namespace ptherm;
  using thermal::HeatSource;

  // --- Part 1: single-device kernels ------------------------------------
  const double k_si = 148.0;
  const HeatSource dev{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  Table kernels("Ablation A1a - profile kernels vs exact (mean |rel err| %, x in [0,5um])");
  kernels.set_columns({"kernel", "mean_rel_%", "max_rel_%"});
  kernels.set_precision(4);
  std::vector<double> exact, point, line, min_est;
  for (double x = 0.25e-6; x <= 5e-6; x += 0.05e-6) {
    exact.push_back(thermal::rect_rise_exact(k_si, dev, x, 0.0));
    point.push_back(thermal::point_source_rise(k_si, dev.power, x));
    line.push_back(std::min(thermal::line_source_rise(k_si, dev.power, dev.w, x, 0.0),
                            thermal::rect_center_rise(k_si, dev.power, dev.w, dev.l)));
    min_est.push_back(thermal::rect_rise_min(k_si, dev, x, 0.0));
  }
  auto report = [&](const char* name, const std::vector<double>& series) {
    const auto err = compare_series(series, exact);
    kernels.add_row({std::string(name), err.mean_rel * 100.0, err.max_rel * 100.0});
  };
  report("point source (Eq. 16)", point);
  report("min(T0, line) (Eq. 20)", min_est);
  report("line clipped at T0", line);
  kernels.print(std::cout);
  kernels.write_csv_file("ablation_thermal_kernels.csv");

  // --- Part 2: die-level boundary treatment ------------------------------
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = k_si;
  die.t_sink = 300.0;
  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_three_block_ic(tech, die, 0.5, 0.3, 0.2);
  const auto sources = fp.heat_sources(tech);

  thermal::FdmOptions fopts;
  fopts.nx = 48;
  fopts.ny = 48;
  fopts.nz = 24;
  thermal::FdmThermalSolver fdm(die, fopts);
  const auto sol = fdm.solve_steady(sources);

  // Probe points: block centres plus an edge and a corner.
  struct Probe {
    double x, y;
  };
  std::vector<Probe> probes;
  for (const auto& b : fp.blocks()) probes.push_back({b.rect.cx(), b.rect.cy()});
  probes.push_back({0.02e-3, 0.5e-3});
  probes.push_back({0.95e-3, 0.95e-3});

  Table boundary("Ablation A1b - boundary treatment vs FDM (mean |rel err| % of rise)");
  boundary.set_columns({"configuration", "mean_rel_%", "max_rel_%"});
  boundary.set_precision(4);
  auto run_config = [&](const char* name, int order, bool bottom) {
    thermal::ImageOptions opts;
    opts.lateral_order = order;
    opts.bottom_images = bottom;
    const thermal::ChipThermalModel model(die, sources, opts);
    std::vector<double> got, want;
    for (const auto& p : probes) {
      got.push_back(model.rise(p.x, p.y));
      want.push_back(fdm.surface_rise(sol, p.x, p.y));
    }
    const auto err = compare_series(got, want);
    boundary.add_row({std::string(name), err.mean_rel * 100.0, err.max_rel * 100.0});
  };
  run_config("no images at all", 0, false);
  run_config("sink plane only", 0, true);
  run_config("lateral order 1 + sink", 1, true);
  run_config("lateral order 2 + sink", 2, true);
  run_config("lateral order 3 + sink", 3, true);
  run_config("lateral order 3, no sink", 3, false);
  std::cout << "\n";
  boundary.print(std::cout);
  boundary.write_csv_file("ablation_thermal_boundary.csv");
  return 0;
}
