// Fig. 8 reproduction: static current of nMOS stacks (N = 1..4), comparing
//   * the paper's collapse model (Eq. 10 blend),
//   * the Chen-98 baseline [8],
//   * the Narendra-04 baseline [9] (N <= 2 only),
// against "SPICE" — the exact numerical solution of the same device
// equations (cross-checked against the full MNA solver in the test suite).
//
// Paper claim reproduced: the proposed model hugs the SPICE curve across the
// stack depths while the prior-art baseline deviates visibly.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "device/tech.hpp"
#include "leakage/baselines.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"

int main() {
  using namespace ptherm;
  using device::MosType;

  const auto tech = device::Technology::cmos012();
  const double width = 1e-6;
  const double temp = 300.0;

  Table table("Fig. 8 - OFF current of nMOS stacks, W = 1 um, 0.12 um process (pA)");
  table.set_columns({"stack_N", "spice_pA", "model_pA", "model_err_%", "chen98_pA",
                     "chen98_err_%", "narendra04_pA", "narendra04_err_%"});
  table.set_precision(5);

  double model_mean_err = 0.0;
  double chen_mean_err = 0.0;
  for (int n = 1; n <= 4; ++n) {
    const std::vector<double> widths(n, width);
    const auto exact =
        leakage::solve_exact_chain(tech, MosType::Nmos, widths, tech.l_drawn, temp);
    const double model =
        leakage::chain_off_current(tech, MosType::Nmos, widths, tech.l_drawn, temp);
    const double chen =
        leakage::chen98_stack_off_current(tech, MosType::Nmos, width, tech.l_drawn, n, temp);
    const double model_err = (model / exact.current - 1.0) * 100.0;
    const double chen_err = (chen / exact.current - 1.0) * 100.0;
    model_mean_err += std::abs(model_err) / 4.0;
    chen_mean_err += std::abs(chen_err) / 4.0;
    if (n <= 2) {
      const double nar = leakage::narendra04_stack_off_current(tech, MosType::Nmos, width,
                                                               tech.l_drawn, n, temp);
      table.add_row({static_cast<double>(n), exact.current * 1e12, model * 1e12, model_err,
                     chen * 1e12, chen_err, nar * 1e12,
                     (nar / exact.current - 1.0) * 100.0});
    } else {
      table.add_row({static_cast<double>(n), exact.current * 1e12, model * 1e12, model_err,
                     chen * 1e12, chen_err, std::string("n/a"), std::string("n/a")});
    }
  }
  table.print(std::cout);
  table.write_csv_file("fig8_stack_leakage.csv");

  std::cout << "\nMean |error| vs SPICE:  proposed model " << model_mean_err << "%,  Chen-98 "
            << chen_mean_err << "%"
            << (model_mean_err < chen_mean_err ? "  -> proposed model wins, as in Fig. 8\n"
                                               : "  -> UNEXPECTED ordering\n");

  // Secondary sweep the paper's text implies: the stack factor vs temperature.
  Table sweep("Stack-effect factor I(1)/I(N) vs temperature");
  sweep.set_columns({"T_K", "N=2", "N=3", "N=4"});
  sweep.set_precision(4);
  for (double t = 300.0; t <= 420.0 + 1e-9; t += 30.0) {
    std::vector<Table::Cell> row{t};
    const double i1 =
        leakage::stack_off_current(tech, MosType::Nmos, width, tech.l_drawn, 1, t);
    for (int n = 2; n <= 4; ++n) {
      row.push_back(i1 / leakage::stack_off_current(tech, MosType::Nmos, width,
                                                    tech.l_drawn, n, t));
    }
    sweep.add_row(std::move(row));
  }
  std::cout << "\n";
  sweep.print(std::cout);
  return 0;
}
