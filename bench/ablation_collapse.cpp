// Ablation A2: which Delta-V expression should the collapse use?
// Compares case (a) only (Eq. 7), case (b) only (Eq. 8), the paper's blend
// (Eq. 10) and the refined closed form against the exact solver, across
// stack depths, width ratios and temperatures.
//
// Design-choice conclusion this bench documents: the blend is required (each
// single asymptote fails off its own side); the refinement buys another ~5x
// accuracy at zero iteration cost.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "device/tech.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"

int main() {
  using namespace ptherm;
  using device::MosType;
  using leakage::CollapseVariant;

  const auto tech = device::Technology::cmos012();

  struct Scenario {
    const char* name;
    std::vector<double> widths;
    double temp;
  };
  const std::vector<Scenario> scenarios = {
      {"2-stack equal 300K", {1e-6, 1e-6}, 300.0},
      {"2-stack top/bot=4 300K", {1e-6, 4e-6}, 300.0},
      {"2-stack top/bot=0.25 300K", {1e-6, 0.25e-6}, 300.0},
      {"3-stack equal 300K", {1e-6, 1e-6, 1e-6}, 300.0},
      {"4-stack equal 300K", {1e-6, 1e-6, 1e-6, 1e-6}, 300.0},
      {"4-stack equal 400K", {1e-6, 1e-6, 1e-6, 1e-6}, 400.0},
      {"4-stack mixed 350K", {0.4e-6, 1.6e-6, 0.8e-6, 2.4e-6}, 350.0},
      {"6-stack equal 300K", std::vector<double>(6, 1e-6), 300.0},
  };

  Table table("Ablation A2 - collapse Delta-V variants, error vs exact (%)");
  table.set_columns({"scenario", "case_a_%", "case_b_%", "paper_blend_%", "refined_%"});
  table.set_precision(4);

  double sum_abs[4] = {0, 0, 0, 0};
  for (const auto& s : scenarios) {
    const auto exact =
        leakage::solve_exact_chain(tech, MosType::Nmos, s.widths, tech.l_drawn, s.temp);
    const CollapseVariant variants[] = {CollapseVariant::CaseAOnly,
                                        CollapseVariant::CaseBOnly,
                                        CollapseVariant::PaperBlend,
                                        CollapseVariant::Refined};
    std::vector<Table::Cell> row{std::string(s.name)};
    for (int k = 0; k < 4; ++k) {
      const double i = leakage::chain_off_current(tech, MosType::Nmos, s.widths,
                                                  tech.l_drawn, s.temp, 0.0, variants[k]);
      const double err = (i / exact.current - 1.0) * 100.0;
      sum_abs[k] += std::abs(err) / static_cast<double>(scenarios.size());
      row.push_back(err);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  table.write_csv_file("ablation_collapse.csv");
  std::cout << "\nMean |error|: case_a " << sum_abs[0] << "%, case_b " << sum_abs[1]
            << "%, paper blend " << sum_abs[2] << "%, refined " << sum_abs[3] << "%\n";
  return 0;
}
