// Speed study S6 (manycore scaling): the PR-6 trajectory point. A steady
// concurrent power-thermal solve of McPAT-style tiled manycore floorplans,
// n = 36 -> 4096 blocks (t x t tiles, 4 blocks per tile), on the spectral
// backend in both influence modes:
//  * matrix-free (BM_CosimManycore): the Picard loop applies R in mode space
//    — O(n * modes) per iteration, no n x n storage anywhere, so cost grows
//    sub-quadratically in n;
//  * dense (BM_CosimManycoreDense): the n-column O(n^2 * modes) build the
//    matrix-free path replaces, run up to 1024 blocks as the reference curve
//    (4096 dense would be a ~134 MB matrix and minutes of build).
// The counters pin the trajectory: a convergence-behaviour change shows up
// in picard_iterations, a resolution change in modes, instead of hiding
// inside wall time.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "floorplan/generators.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_12mm() {
  thermal::Die d;
  d.width = 12e-3;
  d.height = 12e-3;
  d.thickness = 500e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan manycore_plan(int tiles) {
  Rng rng(2026);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 1.5 * tiles * tiles;  // 1.5 W per tile
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_manycore(device::Technology::cmos012(), die_12mm(), tiles, tiles,
                                  cfg, rng);
}

void record_solve(benchmark::State& state, const core::ElectroThermalSolver& solver,
                  const core::CosimResult& r) {
  state.counters["picard_iterations"] = static_cast<double>(r.iterations);
  state.counters["converged"] = r.converged ? 1.0 : 0.0;
  state.counters["blocks"] = static_cast<double>(r.blocks.size());
  state.counters["matrix_free"] = solver.matrix_free() ? 1.0 : 0.0;
  state.counters["modes"] = static_cast<double>(solver.influence_build_stats().modes);
  state.counters["fft_calls"] = static_cast<double>(solver.influence_build_stats().fft_calls);
}

void BM_CosimManycore(benchmark::State& state) {
  const int tiles = static_cast<int>(state.range(0));
  const auto fp = manycore_plan(tiles);
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.influence = core::InfluenceMode::MatrixFree;
  core::CosimResult last;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, opts);
    last = solver.solve();
    benchmark::DoNotOptimize(last);
    state.PauseTiming();
    record_solve(state, solver, last);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CosimManycore)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_CosimManycoreDense(benchmark::State& state) {
  const int tiles = static_cast<int>(state.range(0));
  const auto fp = manycore_plan(tiles);
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.influence = core::InfluenceMode::Dense;
  core::CosimResult last;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, opts);
    last = solver.solve();
    benchmark::DoNotOptimize(last);
    state.PauseTiming();
    record_solve(state, solver, last);
    state.ResumeTiming();
  }
}
// One iteration per size: the dense builds at 576/1024 blocks take seconds
// each, and a single run resolves the scaling curve fine.
BENCHMARK(BM_CosimManycoreDense)
    ->Arg(3)
    ->Arg(6)
    ->Arg(12)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
