// Fig. 7 reproduction: temperature distribution across the middle of the IC
// of Fig. 6. The derivative of the temperature (hence the heat flux) must
// vanish at the two die edges — the boundary condition the images impose.
#include <cmath>
#include <iostream>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "floorplan/generators.hpp"
#include "thermal/images.hpp"

int main() {
  using namespace ptherm;

  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = 148.0;
  die.t_sink = 300.0;

  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_three_block_ic(tech, die, 0.5, 0.3, 0.2);

  thermal::ImageOptions with_images;
  with_images.lateral_order = 3;
  thermal::ImageOptions without_images;
  without_images.lateral_order = 0;
  const thermal::ChipThermalModel model(die, fp.heat_sources(tech), with_images);
  const thermal::ChipThermalModel naive(die, fp.heat_sources(tech), without_images);

  const double y_mid = 0.5 * die.height;
  Table table("Fig. 7 - cross-section at mid-die (y = 0.5 mm)");
  table.set_columns({"x_um", "T_with_images_C", "T_no_images_C"});
  table.set_precision(6);
  const int samples = 51;
  for (int i = 0; i < samples; ++i) {
    const double x = die.width * i / (samples - 1);
    table.add_row({x * 1e6, to_celsius(model.temperature(x, y_mid)),
                   to_celsius(naive.temperature(x, y_mid))});
  }
  table.print(std::cout);
  table.write_csv_file("fig7_cross_section.csv");

  // Edge gradients via central differences straddling the walls.
  const double h = 1e-6;
  auto gradient = [&](const thermal::ChipThermalModel& m, double x) {
    return (m.rise(x + h, y_mid) - m.rise(x - h, y_mid)) / (2.0 * h);
  };
  const double g_left = gradient(model, 0.0);
  const double g_right = gradient(model, die.width);
  const double g_left_naive = gradient(naive, 0.0);
  const double g_mid = std::abs(gradient(model, 0.6 * die.width));
  std::cout << "\nEdge gradient with images:    left " << g_left << " K/m, right " << g_right
            << " K/m (interior scale " << g_mid << " K/m)\n";
  std::cout << "Edge gradient without images: left " << g_left_naive
            << " K/m  -> the images are what zero the boundary flux.\n";
  return 0;
}
