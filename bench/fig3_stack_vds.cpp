// Fig. 3 reproduction: drain-source voltage of the lower transistor in a
// two-transistor stack — the empirical Eq. (10) against the exact numerical
// solution, across the width-ratio range (expressed through f, Eq. 9).
//
// Paper claim reproduced: Eq. (10) is "a good approximation" to the exact
// V_{N-1} - V_{N-2} over the whole f range; the two analytic asymptotes
// (Eqs. 7 and 8) are each valid only on their own side.
#include <cmath>
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "device/tech.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"

int main() {
  using namespace ptherm;
  using device::MosType;

  const auto tech = device::Technology::cmos012();
  const double temp = 300.0;
  const double w_bottom = 1e-6;

  Table table("Fig. 3 - V_DS of the bottom device in a 2-stack (mV)");
  table.set_columns({"w_top/w_bottom", "f", "exact_mV", "eq10_blend_mV", "case_a_mV",
                     "case_b_mV", "refined_mV"});
  table.set_precision(5);

  std::vector<double> exact_series, blend_series, refined_series;
  for (double log_ratio = -3.0; log_ratio <= 3.0 + 1e-9; log_ratio += 0.25) {
    const double ratio = std::pow(10.0, log_ratio);
    const double w_top = ratio * w_bottom;
    const double f = leakage::collapse_f(tech, w_top, w_bottom, temp);
    const double exact =
        leakage::exact_two_stack_delta_v(tech, MosType::Nmos, w_bottom, w_top,
                                         tech.l_drawn, temp);
    const double blend = leakage::delta_v_blend(tech, f, temp);
    const double case_a = leakage::delta_v_case_a(tech, f, temp);
    const double case_b = leakage::delta_v_case_b(tech, f, temp);
    const double refined = leakage::delta_v_refined(tech, f, temp);
    table.add_row({ratio, f, exact * 1e3, blend * 1e3, case_a * 1e3,
                   std::min(case_b, 1.0) * 1e3, refined * 1e3});
    exact_series.push_back(exact);
    blend_series.push_back(blend);
    refined_series.push_back(refined);
  }
  table.print(std::cout);
  table.write_csv_file("fig3_stack_vds.csv");

  const auto blend_err = compare_series(blend_series, exact_series);
  const auto refined_err = compare_series(refined_series, exact_series);
  std::cout << "\nEq. (10) blend vs exact: max " << blend_err.max_abs * 1e3 << " mV, mean rel "
            << blend_err.mean_rel * 100.0 << "%\n";
  std::cout << "Refined closed form vs exact: max " << refined_err.max_abs * 1e3
            << " mV, mean rel " << refined_err.mean_rel * 100.0 << "%\n";
  return 0;
}
