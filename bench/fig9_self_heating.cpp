// Fig. 9 reproduction: self-heating of a single MOS transistor chopped at
// 3 Hz, observed through the voltage across a series sense resistor, at
// three ambient temperatures (30/35/40 C).
//
// Paper claims reproduced: the sense voltage shows an exponential transient
// as the device's thermal capacitance charges; the three ambients produce
// parallel traces offset by the ambient step; the drain current (and hence
// v_sense) drops as the device heats.
#include <iostream>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "device/tech.hpp"
#include "thermal/rc.hpp"

int main() {
  using namespace ptherm;

  // 0.35 um process test device, as in the measurement.
  const auto tech035 = device::Technology::cmos035();
  const double w = 2e-6, l = tech035.l_drawn;
  const auto rc =
      thermal::device_thermal_rc(tech035.k_si, tech035.cv_si, w, l, tech035.t_substrate);
  std::cout << "# device " << w * 1e6 << "um x " << l * 1e6 << "um: Rth = " << rc.r_th
            << " K/W, Cth = " << rc.c_th << " J/K, tau = " << rc.tau() * 1e3 << " ms\n\n";

  Table table("Fig. 9 - chopped self-heating traces (sense voltage, mV)");
  table.set_columns({"t_ms", "v_sense_30C_mV", "v_sense_35C_mV", "v_sense_40C_mV",
                     "T_30C_C", "T_35C_C", "T_40C_C"});
  table.set_precision(5);

  std::vector<thermal::SelfHeatingTrace> traces;
  for (double amb : {30.0, 35.0, 40.0}) {
    thermal::SelfHeatingConfig cfg;
    cfg.rc = rc;
    cfg.t_ambient = celsius(amb);
    cfg.v_drain = tech035.vdd;
    cfg.i_on_ref = 3e-3;
    cfg.tc_current = 2e-3;
    cfg.f_chop = 3.0;
    cfg.t_stop = 1.0;
    cfg.dt = 1e-4;
    traces.push_back(thermal::run_self_heating(cfg));
  }
  // Downsample for the table: every 10 ms over the first 2.5 chop periods.
  const auto& t = traces[0].time;
  for (std::size_t i = 0; i < t.size(); i += 100) {
    if (t[i] > 0.85) break;
    table.add_row({t[i] * 1e3, traces[0].v_sense[i] * 1e3, traces[1].v_sense[i] * 1e3,
                   traces[2].v_sense[i] * 1e3, to_celsius(traces[0].temp[i]),
                   to_celsius(traces[1].temp[i]), to_celsius(traces[2].temp[i])});
  }
  table.print(std::cout);
  table.write_csv_file("fig9_self_heating.csv");

  std::cout << "\nSteady self-heating rise per ambient:";
  for (std::size_t k = 0; k < traces.size(); ++k) {
    const double amb = celsius(30.0 + 5.0 * static_cast<double>(k));
    std::cout << "  " << traces[k].max_rise(amb) << " K";
  }
  std::cout << "\n(Equal rises offset by ambient: the Fig. 9 calibration property.)\n";
  return 0;
}
