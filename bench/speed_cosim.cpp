// Speed study S1 (co-simulation): the headline workflow — a concurrent
// power-thermal solve of a full floorplan — with the analytic backend (the
// paper's proposal) versus the FDM backend (the "numerical approach") versus
// the spectral Green's-function backend (one mode-space multiply per
// influence column). The three BM_InfluenceBuild* benches at 36 blocks are
// the PR-3 trajectory point: the same operator, one bar per backend.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/influence.hpp"
#include "core/rc_network.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan plan(int nx, int ny, double p_total) {
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(device::Technology::cmos012(), die_1mm(), nx, ny, cfg,
                                      rng);
}

// The perf trajectory records the Picard iteration count next to the wall
// time: a future "speedup" that merely changes convergence behaviour must
// show up as a counter change, not masquerade as a hot-path win.
void record_solve(benchmark::State& state, const core::CosimResult& r) {
  state.counters["picard_iterations"] = static_cast<double>(r.iterations);
  state.counters["converged"] = r.converged ? 1.0 : 0.0;
  state.counters["blocks"] = static_cast<double>(r.blocks.size());
}

void BM_CosimAnalytic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  core::CosimResult last;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, {});
    last = solver.solve();
    benchmark::DoNotOptimize(last);
  }
  record_solve(state, last);
}
BENCHMARK(BM_CosimAnalytic)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_CosimFdm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Fdm;
  opts.fdm.nx = 32;
  opts.fdm.ny = 32;
  opts.fdm.nz = 16;
  core::CosimResult last;
  long long cg_iterations = 0;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, opts);
    last = solver.solve();
    cg_iterations = solver.influence_build_stats().cg_iterations;
    benchmark::DoNotOptimize(last);
  }
  record_solve(state, last);
  state.counters["cg_iterations"] = static_cast<double>(cg_iterations);
}
BENCHMARK(BM_CosimFdm)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CosimSpectral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  core::CosimResult last;
  core::InfluenceBuildStats stats;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, opts);
    last = solver.solve();
    stats = solver.influence_build_stats();
    benchmark::DoNotOptimize(last);
  }
  record_solve(state, last);
  state.counters["modes"] = static_cast<double>(stats.modes);
  state.counters["fft_calls"] = static_cast<double>(stats.fft_calls);
}
BENCHMARK(BM_CosimSpectral)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

// The influence-build trajectory point at >= 32 blocks: the batched
// warm-started IC(0) build (the PR-2 hot path) versus the seed semantics —
// per-column cold starts with the Jacobi-preconditioned CG the seed shipped.
// Solvers are constructed outside the loop in both cases (the seed also
// assembled once); the delta is pure solve work.
void BM_InfluenceBuildFdm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  const auto tech = device::Technology::cmos012();
  thermal::FdmOptions opts;  // IC(0) by default
  const thermal::FdmThermalSolver solver(fp.die(), opts);
  const auto sources = fp.heat_sources(tech);
  const auto samples = core::block_centre_samples(fp);
  core::InfluenceBuildStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_influence_fdm(solver, sources, samples, true, &stats));
  }
  state.counters["cg_iterations"] = static_cast<double>(stats.cg_iterations);
  state.counters["blocks"] = static_cast<double>(sources.size());
}
BENCHMARK(BM_InfluenceBuildFdm)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_InfluenceBuildFdmSeedPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  const auto tech = device::Technology::cmos012();
  thermal::FdmOptions opts;
  opts.cg.preconditioner = numerics::CgPreconditioner::Jacobi;
  const thermal::FdmThermalSolver solver(fp.die(), opts);
  const auto sources = fp.heat_sources(tech);
  const auto samples = core::block_centre_samples(fp);
  core::InfluenceBuildStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_influence_fdm(solver, sources, samples, false, &stats));
  }
  state.counters["cg_iterations"] = static_cast<double>(stats.cg_iterations);
  state.counters["blocks"] = static_cast<double>(sources.size());
}
BENCHMARK(BM_InfluenceBuildFdmSeedPath)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_InfluenceBuildAnalytic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  const auto tech = device::Technology::cmos012();
  const auto sources = fp.heat_sources(tech);
  const auto samples = core::block_centre_samples(fp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_influence_analytic(fp.die(), sources, samples));
  }
  state.counters["blocks"] = static_cast<double>(sources.size());
}
BENCHMARK(BM_InfluenceBuildAnalytic)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_InfluenceBuildSpectral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  const auto tech = device::Technology::cmos012();
  const thermal::SpectralThermalSolver solver(fp.die(), {});
  const auto sources = fp.heat_sources(tech);
  const auto samples = core::block_centre_samples(fp);
  core::InfluenceBuildStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::build_influence_spectral(solver, sources, samples, &stats));
  }
  state.counters["blocks"] = static_cast<double>(sources.size());
  state.counters["modes"] = static_cast<double>(stats.modes);
}
BENCHMARK(BM_InfluenceBuildSpectral)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_CosimIterationOnly(benchmark::State& state) {
  // The fixed point after the influence matrix exists: this is the marginal
  // cost of re-running the concurrent solve when only powers change.
  const auto fp = plan(6, 6, 4.0);
  core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, {});
  core::CosimResult last;
  for (auto _ : state) {
    last = solver.solve();
    benchmark::DoNotOptimize(last);
  }
  record_solve(state, last);
}
BENCHMARK(BM_CosimIterationOnly)->Unit(benchmark::kMillisecond);


// The PR-4 trajectory point: a 36-block, 200-step transient co-simulation
// on the two transient-capable backends. The FDM path pays one backward-
// Euler IC(0)-CG solve per step; the spectral path pays one exact per-mode
// exponential update (a mode-space axpy) plus one dense gather matvec — the
// counters record where the work went so a convergence change cannot
// masquerade as a speedup.
void transient_counters(benchmark::State& state, const core::TransientCosimResult& r) {
  state.counters["steps"] = static_cast<double>(r.backend_stats.transient_steps);
  state.counters["cg_iterations"] = static_cast<double>(r.backend_stats.cg_iterations);
  state.counters["modes"] = static_cast<double>(r.backend_stats.modes);
  state.counters["fft_calls"] = static_cast<double>(r.backend_stats.fft_calls);
  state.counters["blocks"] = static_cast<double>(r.block_temps.empty()
                                                     ? 0
                                                     : r.block_temps.front().size());
}

void BM_TransientCosimFdm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  core::TransientCosimOptions opts;
  opts.backend = core::ThermalBackend::Fdm;
  opts.fdm.nx = 32;
  opts.fdm.ny = 32;
  opts.fdm.nz = 16;
  opts.dt = 1e-4;
  opts.t_stop = 20e-3;  // 200 steps
  opts.record_every = 10;
  const core::ActivityProfile profile = [](std::size_t, double) { return 1.0; };
  core::TransientCosimResult last;
  for (auto _ : state) {
    last = core::solve_transient_cosim(device::Technology::cmos012(), fp, profile, opts);
    benchmark::DoNotOptimize(last);
  }
  transient_counters(state, last);
}
BENCHMARK(BM_TransientCosimFdm)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_TransientCosimSpectral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto fp = plan(n, n, 4.0);
  core::TransientCosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.dt = 1e-4;
  opts.t_stop = 20e-3;  // 200 steps
  opts.record_every = 10;
  const core::ActivityProfile profile = [](std::size_t, double) { return 1.0; };
  core::TransientCosimResult last;
  for (auto _ : state) {
    last = core::solve_transient_cosim(device::Technology::cmos012(), fp, profile, opts);
    benchmark::DoNotOptimize(last);
  }
  transient_counters(state, last);
}
BENCHMARK(BM_TransientCosimSpectral)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_RcNetworkTransient(benchmark::State& state) {
  // The compact-RC transient (extension): a 20 ms electro-thermal transient
  // of a 16-block die in closed form + ODE integration — contrast with
  // BM_CosimFdm, which needs a full FDM solve per influence column alone.
  const auto fp = plan(4, 4, 4.0);
  core::RcNetworkOptions opts;
  opts.t_stop = 20e-3;
  opts.dt = 1e-4;
  const core::RcThermalNetwork net(device::Technology::cmos012(), fp, opts);
  const core::ActivityProfile profile = [](std::size_t, double) { return 1.0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.solve(profile));
  }
}
BENCHMARK(BM_RcNetworkTransient)->Unit(benchmark::kMillisecond);

}  // namespace
