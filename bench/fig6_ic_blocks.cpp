// Fig. 6 reproduction: thermal map of a 1 mm x 1 mm IC containing three
// logic blocks, with the method of images enforcing adiabatic sidewalls.
// The bench prints an ASCII isotherm map plus the block temperatures, and
// cross-validates the analytic field against the FDM reference at the block
// centres.
//
// Paper claim reproduced: isotherms meet the die edges at right angles
// (zero normal heat flux), which only happens when the mirror images are in
// place.
#include <iostream>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "floorplan/generators.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"
#include "thermal/map_io.hpp"

int main() {
  using namespace ptherm;

  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.thickness = 350e-6;
  die.k_si = 148.0;
  die.t_sink = 300.0;

  const auto tech = device::Technology::cmos012();
  // Paper-like scenario: three blocks of unequal power.
  const auto fp = floorplan::make_three_block_ic(tech, die, 0.5, 0.3, 0.2);
  const auto sources = fp.heat_sources(tech);

  thermal::ImageOptions opts;
  opts.lateral_order = 3;
  const thermal::ChipThermalModel model(die, sources, opts);

  // Isotherm map: ASCII to stdout, PGM + gnuplot matrix to files.
  thermal::SurfaceMap map;
  map.nx = 56;
  map.ny = 28;
  map.values = model.surface_map(map.nx, map.ny);
  std::cout << "# Fig. 6 - surface temperature map, 3 blocks on a 1mm x 1mm die\n";
  std::cout << "# range " << map.min_value() - die.t_sink << " .. "
            << map.max_value() - die.t_sink << " K above the sink\n";
  std::cout << thermal::render_ascii(map);
  thermal::SurfaceMap fine;
  fine.nx = 256;
  fine.ny = 256;
  fine.values = model.surface_map(fine.nx, fine.ny);
  if (thermal::write_pgm(fine, "fig6_ic_blocks.pgm") &&
      thermal::write_gnuplot_matrix(fine, "fig6_ic_blocks.dat")) {
    std::cout << "# wrote fig6_ic_blocks.pgm / .dat (256x256)\n";
  }

  // Block temperatures: analytic vs FDM.
  thermal::FdmOptions fopts;
  fopts.nx = 48;
  fopts.ny = 48;
  fopts.nz = 24;
  thermal::FdmThermalSolver fdm(die, fopts);
  const auto sol = fdm.solve_steady(sources);

  Table table("Fig. 6 - block centre temperatures");
  table.set_columns({"block", "P_W", "T_analytic_C", "T_fdm_C", "rel_err_%"});
  table.set_precision(5);
  for (std::size_t i = 0; i < fp.blocks().size(); ++i) {
    const auto& b = fp.blocks()[i];
    const double t_ana = model.temperature(b.rect.cx(), b.rect.cy());
    const double t_fdm = fdm.surface_temperature(sol, b.rect.cx(), b.rect.cy());
    table.add_row({b.name, b.p_dynamic, to_celsius(t_ana), to_celsius(t_fdm),
                   (t_ana - t_fdm) / (t_fdm - die.t_sink) * 100.0});
  }
  std::cout << "\n";
  table.print(std::cout);
  table.write_csv_file("fig6_ic_blocks.csv");
  return 0;
}
