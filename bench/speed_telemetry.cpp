// Speed study S9 (telemetry overhead): the cost of the span layer itself.
// BM_CosimSpansDisabled vs BM_CosimSpansEnabled is the contract the
// observability layer ships under — with no tracer installed a span is one
// relaxed atomic load, so a full co-simulation must run at the same speed it
// did before the instrumentation existed (the trajectory comparison against
// the previous PR's BENCH enforces the <1% budget on every instrumented
// bench, not just this one); with a tracer installed the cost is one clock
// pair + one mutex push per span, measured here so "tracing is cheap enough
// to leave on in studies" is a number, not a hope.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "floorplan/generators.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry_env.hpp"

namespace {

using namespace ptherm;

floorplan::Floorplan plan_3x3() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 4.0;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(device::Technology::cmos012(), d, 3, 3, cfg, rng);
}

// The raw per-span cost, isolated from any solver: a function whose whole
// body is one span. Disabled: the relaxed pointer load + null checks.
void BM_SpanDisabled(benchmark::State& state) {
  telemetry::Tracer* const saved = telemetry::tracer();
  telemetry::set_tracer(nullptr);
  for (auto _ : state) {
    TELEMETRY_SPAN("bench/span_disabled");
    benchmark::ClobberMemory();
  }
  telemetry::set_tracer(saved);
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  telemetry::Tracer* const saved = telemetry::tracer();
  telemetry::Tracer tracer;
  telemetry::set_tracer(&tracer);
  for (auto _ : state) {
    TELEMETRY_SPAN("bench/span_enabled");
    benchmark::ClobberMemory();
  }
  telemetry::set_tracer(saved);
  state.counters["events"] = static_cast<double>(tracer.event_count());
  state.counters["dropped"] = static_cast<double>(tracer.dropped_events());
}
BENCHMARK(BM_SpanEnabled);

// The same full steady cosim, spans disabled vs enabled: the end-to-end
// number a study pays for leaving a tracer installed.
void run_cosim(benchmark::State& state) {
  const auto fp = plan_3x3();
  core::CosimResult last;
  for (auto _ : state) {
    core::ElectroThermalSolver solver(device::Technology::cmos012(), fp, {});
    last = solver.solve();
    benchmark::DoNotOptimize(last);
  }
  state.counters["picard_iterations"] = static_cast<double>(last.iterations);
}

void BM_CosimSpansDisabled(benchmark::State& state) {
  telemetry::Tracer* const saved = telemetry::tracer();
  telemetry::set_tracer(nullptr);
  run_cosim(state);
  telemetry::set_tracer(saved);
}
BENCHMARK(BM_CosimSpansDisabled)->Unit(benchmark::kMillisecond);

void BM_CosimSpansEnabled(benchmark::State& state) {
  telemetry::Tracer* const saved = telemetry::tracer();
  telemetry::Tracer tracer;
  telemetry::set_tracer(&tracer);
  run_cosim(state);
  telemetry::set_tracer(saved);
  state.counters["events"] = static_cast<double>(tracer.event_count());
}
BENCHMARK(BM_CosimSpansEnabled)->Unit(benchmark::kMillisecond);

// Chrome-trace export throughput: how long turning a captured run into a
// Perfetto-loadable document takes, per 10k events.
void BM_ChromeTraceExport(benchmark::State& state) {
  std::vector<telemetry::SpanEvent> events;
  events.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    events.push_back({"spectral/apply_influence", static_cast<std::uint32_t>(i % 4),
                      static_cast<std::int64_t>(i) * 1250, 997});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::chrome_trace_json(events));
  }
  state.counters["events"] = static_cast<double>(events.size());
}
BENCHMARK(BM_ChromeTraceExport)->Unit(benchmark::kMillisecond);

}  // namespace
