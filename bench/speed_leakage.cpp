// Speed study S1 (leakage): the paper's core claim is that closed-form
// models make electro-thermal estimation fast enough for full chips, where
// "numerical approaches (as SPICE simulations)" are not. This bench times
//   * the collapse model (both variants),
//   * the exact nested-Brent stack solver,
//   * the full MNA Newton solve of the same stack,
//   * gate-level and netlist-level model evaluation.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "device/mosfet.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"
#include "leakage/gate.hpp"
#include "netlist/cells.hpp"
#include "netlist/netlist.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;
using device::MosModel;
using device::MosType;

const device::Technology& tech() {
  static const auto t = device::Technology::cmos012();
  return t;
}

void BM_CollapseModelStack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> widths(n, 1e-6);
  double temp = 300.0;
  for (auto _ : state) {
    temp = (temp < 400.0) ? temp + 0.01 : 300.0;  // defeat value caching
    benchmark::DoNotOptimize(
        leakage::chain_off_current(tech(), MosType::Nmos, widths, 0.12e-6, temp));
  }
}
BENCHMARK(BM_CollapseModelStack)->Arg(2)->Arg(4)->Arg(8);

void BM_CollapseRefinedStack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> widths(n, 1e-6);
  double temp = 300.0;
  for (auto _ : state) {
    temp = (temp < 400.0) ? temp + 0.01 : 300.0;
    benchmark::DoNotOptimize(leakage::chain_off_current(
        tech(), MosType::Nmos, widths, 0.12e-6, temp, 0.0,
        leakage::CollapseVariant::Refined));
  }
}
BENCHMARK(BM_CollapseRefinedStack)->Arg(2)->Arg(4);

void BM_ExactStackSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<double> widths(n, 1e-6);
  double temp = 300.0;
  for (auto _ : state) {
    temp = (temp < 400.0) ? temp + 0.01 : 300.0;
    benchmark::DoNotOptimize(
        leakage::solve_exact_chain(tech(), MosType::Nmos, widths, 0.12e-6, temp));
  }
}
BENCHMARK(BM_ExactStackSolver)->Arg(2)->Arg(4);

void BM_MnaStackSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), tech().vdd);
  spice::NodeId below = spice::Circuit::ground();
  for (int i = 0; i < n; ++i) {
    const spice::NodeId above = (i + 1 == n) ? vdd : ckt.node("n" + std::to_string(i));
    ckt.add_mosfet("M" + std::to_string(i), above, spice::Circuit::ground(), below,
                   spice::Circuit::ground(),
                   MosModel(tech(), MosType::Nmos, 1e-6, 0.12e-6));
    below = above;
  }
  spice::DcOptions opts;
  for (auto _ : state) {
    opts.temp = (opts.temp < 400.0) ? opts.temp + 0.01 : 300.0;
    benchmark::DoNotOptimize(spice::solve_dc(ckt, opts));
  }
}
BENCHMARK(BM_MnaStackSolve)->Arg(2)->Arg(4);

void BM_GateStaticNand4AllVectors(benchmark::State& state) {
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand4");
  for (auto _ : state) {
    double sum = 0.0;
    for (unsigned v = 0; v < 16; ++v) {
      sum += leakage::gate_static(tech(), *cell, leakage::vector_from_index(v, 4), 320.0)
                 .i_off;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GateStaticNand4AllVectors);

void BM_NetlistLeakage(benchmark::State& state) {
  Rng rng(5);
  const netlist::CellLibrary lib(tech());
  const auto nl = netlist::make_random_netlist(lib, static_cast<int>(state.range(0)), rng);
  double temp = 300.0;
  for (auto _ : state) {
    temp = (temp < 400.0) ? temp + 0.01 : 300.0;
    benchmark::DoNotOptimize(nl.total_off_current(tech(), temp));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["gates"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NetlistLeakage)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
