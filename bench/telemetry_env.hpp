// Opt-in span tracing for the speed benches: setting PTHERM_TELEMETRY=1 in
// the environment installs a process-wide Tracer before main() runs, so
// every TELEMETRY_SPAN in the library's hot paths records. The default (no
// variable, or "0") leaves tracing disabled — the configuration every
// trajectory point is measured in. bench/run_bench.sh stamps the resulting
// mode into BENCH_<label>.json as `telemetry_enabled`, and
// bench/compare_bench.py refuses to diff a traced report against an
// untraced one: the <1% disabled-span overhead budget only holds when both
// sides ran the same mode.
#pragma once

#include <cstdlib>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace ptherm::bench {

inline bool install_tracer_from_env() {
  const char* env = std::getenv("PTHERM_TELEMETRY");
  if (env == nullptr || std::string_view(env).empty() || std::string_view(env) == "0") {
    return false;
  }
  static telemetry::Tracer tracer;  // lives for the whole process
  telemetry::set_tracer(&tracer);
  return true;
}

/// True when PTHERM_TELEMETRY enabled tracing for this process.
[[maybe_unused]] inline const bool kTelemetryEnabled = install_tracer_from_env();

}  // namespace ptherm::bench
