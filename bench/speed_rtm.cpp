// Speed study S4 (runtime thermal management): the long-trace closed loop
// the spectral transient backend was built for. BM_RtmLongTrace drives a
// 36-block die through 10,000 control epochs (100,000 transient steps) of a
// phase-shifted bursty workload under threshold throttling — the PR-5
// trajectory point. The counters tell the cost story: transient_steps is
// the work the plant did, power_updates is how often the backend actually
// had to re-ingest powers (once per epoch, not per step — the interior
// steps ride the projection caches), and interventions is the policy's own
// activity.
#include <benchmark/benchmark.h>

#include "core/cosim.hpp"
#include "floorplan/generators.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 328.15;  // 55 C
  return d;
}

floorplan::Floorplan plan_6x6(double p_total) {
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(device::Technology::cmos012(), die_1mm(), 6, 6, cfg,
                                      rng);
}

void BM_RtmLongTrace(benchmark::State& state) {
  const auto tech = device::Technology::cmos012();
  const auto fp = plan_6x6(16.0);

  // 10 s of staggered bursts: every block cycles between 1.4x and 0.2x
  // activity with a 50 ms period, phase-shifted so the hot set rotates.
  rtm::BurstPattern pat;
  pat.period = 50e-3;
  pat.duty = 0.4;
  pat.high = 1.4;
  pat.low = 0.2;
  pat.phase_step = 1.0 / 36.0;
  const auto trace = rtm::make_burst_trace(fp.blocks().size(), 500, 20e-3, pat);

  rtm::RtmOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.dt = 1e-4;
  opts.steps_per_epoch = 10;  // 10,000 epochs -> 100,000 steps
  opts.temperature_cap = 368.15;  // 95 C
  const auto ladder = rtm::VfLadder::uniform(tech.vdd, 2e9, 5, 0.8, 0.4);

  rtm::RtmResult last;
  for (auto _ : state) {
    rtm::ThresholdPolicy policy;
    rtm::Actuator actuator(tech, fp, ladder);
    last = rtm::run_rtm(tech, fp, trace, policy, actuator, opts);
    benchmark::DoNotOptimize(last);
  }
  state.counters["steps"] = static_cast<double>(last.metrics.steps);
  state.counters["epochs"] = static_cast<double>(last.metrics.epochs);
  state.counters["interventions"] = static_cast<double>(last.metrics.interventions);
  state.counters["power_updates"] =
      static_cast<double>(last.metrics.backend_stats.transient_power_updates);
  state.counters["modes"] = static_cast<double>(last.metrics.backend_stats.modes);
  state.counters["peak_K"] = last.metrics.peak_temperature;
  state.counters["throughput_pct"] = last.metrics.throughput_fraction * 100.0;
}
BENCHMARK(BM_RtmLongTrace)->Unit(benchmark::kMillisecond)->Iterations(1);

// The per-epoch overhead in isolation: the same loop at 1/10th the length
// with exact leakage evaluation versus the actuator's interpolated leakage
// table — the knob to reach for when the control epoch, not the plant,
// dominates a trace study.
void BM_RtmEpochOverhead(benchmark::State& state) {
  const bool tabled = state.range(0) != 0;
  const auto tech = device::Technology::cmos012();
  const auto fp = plan_6x6(16.0);
  rtm::BurstPattern pat;
  pat.period = 50e-3;
  pat.duty = 0.4;
  pat.high = 1.4;
  pat.low = 0.2;
  pat.phase_step = 1.0 / 36.0;
  const auto trace = rtm::make_burst_trace(fp.blocks().size(), 50, 20e-3, pat);
  rtm::RtmOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.dt = 1e-4;
  opts.steps_per_epoch = 10;
  opts.temperature_cap = 368.15;
  const auto ladder = rtm::VfLadder::uniform(tech.vdd, 2e9, 5, 0.8, 0.4);
  rtm::ActuatorOptions act_opts;
  if (tabled) {
    act_opts.leakage_table_points = 96;
    act_opts.table_t_min = 300.0;
    act_opts.table_t_max = 460.0;
  }
  rtm::RtmResult last;
  for (auto _ : state) {
    rtm::ThresholdPolicy policy;
    rtm::Actuator actuator(tech, fp, ladder, act_opts);
    last = rtm::run_rtm(tech, fp, trace, policy, actuator, opts);
    benchmark::DoNotOptimize(last);
  }
  state.counters["epochs"] = static_cast<double>(last.metrics.epochs);
  state.counters["leakage_table"] = tabled ? 1.0 : 0.0;
}
BENCHMARK(BM_RtmEpochOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
