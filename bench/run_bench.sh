#!/usr/bin/env bash
# Runs the three speed_* Google Benchmark binaries and merges their JSON
# reports into a single machine-readable BENCH_<label>.json at the repo root,
# so every PR can append a point to the perf trajectory.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [LABEL]
#   BUILD_DIR  cmake build directory containing bench/ (default: build)
#   LABEL      trajectory label; output file is BENCH_<LABEL>.json (default: seed)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
LABEL="${2:-seed}"
OUT="$REPO_ROOT/BENCH_${LABEL}.json"

BENCHES=(speed_batch speed_cosim speed_layered speed_leakage speed_manycore speed_rtm speed_spice speed_telemetry speed_thermal)
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

# Wall times are only comparable within one build type; stamp it into the
# JSON and warn when a trajectory point is not a Release build.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
BUILD_TYPE="${BUILD_TYPE:-unknown}"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "warning: benching a '$BUILD_TYPE' build; trajectory baselines are Release" >&2
fi

# Span tracing (bench/telemetry_env.hpp) changes what the wall times mean, so
# the mode is stamped next to build_type and compare_bench.py refuses to diff
# a traced report against an untraced one.
TELEMETRY_ENABLED="false"
if [[ -n "${PTHERM_TELEMETRY:-}" && "${PTHERM_TELEMETRY}" != "0" ]]; then
  TELEMETRY_ENABLED="true"
  echo "warning: PTHERM_TELEMETRY=${PTHERM_TELEMETRY}: benching WITH span tracing; "\
"this point only compares against other traced points" >&2
fi

# The guarded solver-counter list comes from the C++ catalog
# (telemetry::guarded_counter_names), so compare_bench.py guards exactly what
# the library declares — no hand-maintained Python tuple.
GUARDED_DUMP="$BUILD_DIR/examples/telemetry_dump"
if [[ ! -x "$GUARDED_DUMP" ]]; then
  echo "error: $GUARDED_DUMP not built (cmake --build $BUILD_DIR --target example_telemetry_dump)" >&2
  exit 1
fi
SOLVER_COUNTERS="$("$GUARDED_DUMP" --guarded)"

for b in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR --target bench_$b)" >&2
    exit 1
  fi
  echo "== $b" >&2
  "$bin" --benchmark_format=json --benchmark_out="$TMPDIR/$b.json" \
         --benchmark_out_format=json >&2
done

python3 - "$OUT" "$LABEL" "$BUILD_TYPE" "$TELEMETRY_ENABLED" "$SOLVER_COUNTERS" \
        "${BENCHES[@]/#/$TMPDIR/}" <<'EOF'
import json, sys, datetime

out_path, label, build_type, telemetry_enabled, solver_counters, *paths = sys.argv[1:]
merged = {
    "label": label,
    "build_type": build_type,
    "telemetry_enabled": telemetry_enabled == "true",
    "solver_counters": solver_counters.split(),
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "context": None,
    "benchmarks": {},
}
for path in paths:
    with open(path + ".json") as f:
        report = json.load(f)
    if merged["context"] is None:
        ctx = report.get("context", {})
        merged["context"] = {k: ctx.get(k) for k in
                             ("host_name", "num_cpus", "mhz_per_cpu",
                              "cpu_scaling_enabled", "library_build_type")}
        # The Google Benchmark library's own build type adds timer/loop
        # overhead when it is a debug build; it must match across points
        # being compared just like the project build type.
        merged["benchmark_library_build_type"] = ctx.get("library_build_type")
        if merged["benchmark_library_build_type"] != "release":
            print("warning: Google Benchmark library is a '%s' build; compare "
                  "only against points with the same library build type"
                  % merged["benchmark_library_build_type"], file=sys.stderr)
    name = path.rsplit("/", 1)[-1]
    core_keys = ("name", "iterations", "real_time", "cpu_time", "time_unit")
    skip_keys = {"run_name", "run_type", "repetitions", "repetition_index",
                 "threads", "family_index", "per_family_instance_index"}
    entries = []
    for bm in report.get("benchmarks", []):
        entry = {k: bm.get(k) for k in core_keys}
        # Custom counters (picard_iterations, cg_iterations, gates, ...)
        # appear as extra numeric keys; keep them in the trajectory.
        for k, v in bm.items():
            if k not in entry and k not in skip_keys and isinstance(v, (int, float)):
                entry[k] = v
        entries.append(entry)
    merged["benchmarks"][name] = entries
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(out_path)
EOF
