// Fig. 10 reproduction: thermal resistance predictions (dots) versus
// "measurement" (bars) for four transistor geometries on the 0.35 um
// process. The fabricated chip is replaced by the FDM reference solver; the
// extraction procedure — steady rise over dissipated power from the chopped
// transient — is retained.
//
// Paper claim reproduced: the analytic Rth (centre rise of Eq. 18 plus the
// sink-plane image term) agrees with the measured Rth for every geometry.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "device/tech.hpp"
#include "thermal/fdm.hpp"
#include "thermal/rc.hpp"

namespace {

struct FdmMeasurement {
  double rth_layer0 = 0.0;      ///< FDM rise/P averaged over the first layer
  double layer0_depth = 0.0;    ///< depth of that layer's cell centres [m]
};

/// "Measured" Rth: steady FDM solve of a silicon box around the device.
/// Cell-centred grids report layer averages at z = dz/2, so the comparison
/// against the analytic model is made at exactly that depth (the model has
/// the closed buried-potential form) — no extrapolation bias.
FdmMeasurement measure_rth_fdm(double w, double l, double k_si) {
  ptherm::thermal::Die box;
  box.width = 64e-6;
  box.height = 64e-6;
  box.thickness = 64e-6;
  box.k_si = k_si;
  ptherm::thermal::FdmOptions opts;
  opts.nx = 64;
  opts.ny = 64;
  opts.nz = 64;
  opts.lateral = ptherm::thermal::LateralBoundary::Isothermal;
  ptherm::thermal::FdmThermalSolver solver(box, opts);
  const double p = 1e-3;
  const std::vector<ptherm::thermal::HeatSource> src = {{32e-6, 32e-6, w, l, p}};
  const auto sol = solver.solve_steady(src);
  double sum = 0.0;
  for (int j = 31; j <= 32; ++j) {
    for (int i = 31; i <= 32; ++i) sum += sol.rise[solver.cell_index(i, j, 0)];
  }
  FdmMeasurement m;
  m.rth_layer0 = (sum / 4.0) / p;
  m.layer0_depth = 0.5 * box.thickness / opts.nz;
  return m;
}

}  // namespace

int main() {
  using namespace ptherm;

  const auto tech = device::Technology::cmos035();
  // Four devices: power transistors of increasing width, long enough
  // (L = 2 um drawn-equivalent thermal footprint) for the grid to resolve.
  struct Device {
    double w, l;
  };
  const Device devices[] = {{4e-6, 2e-6}, {8e-6, 2e-6}, {16e-6, 2e-6}, {32e-6, 2e-6}};

  Table table("Fig. 10 - thermal resistance: model (dots) vs FDM measurement (bars)");
  table.set_columns({"W_um", "L_um", "Rth_model_surface", "Rth_model_at_layer",
                     "Rth_measured_fdm", "err_at_layer_%"});
  table.set_precision(5);
  double worst = 0.0;
  for (const auto& d : devices) {
    const double model_surface = thermal::device_r_th(tech.k_si, d.w, d.l, 64e-6);
    const auto measured = measure_rth_fdm(d.w, d.l, tech.k_si);
    // Model evaluated at the FDM layer depth: buried corner form plus the
    // same sink-plane image correction as device_r_th.
    const thermal::HeatSource unit{0.0, 0.0, d.w, d.l, 1.0};
    const double model_at_layer =
        thermal::rect_rise_exact_at_depth(tech.k_si, unit, 0.0, 0.0, measured.layer0_depth) -
        thermal::point_source_rise(tech.k_si, 1.0, 64e-6) * std::log(2.0);
    const double err = (model_at_layer / measured.rth_layer0 - 1.0) * 100.0;
    worst = (std::max)(worst, std::abs(err));
    table.add_row({d.w * 1e6, d.l * 1e6, model_surface, model_at_layer, measured.rth_layer0,
                   err});
  }
  table.print(std::cout);
  table.write_csv_file("fig10_thermal_resistance.csv");
  std::cout << "\nWorst model-vs-measurement deviation: " << worst
            << "% (paper: 'good agreement', bars of comparable size).\n";

  // The measurement path of Fig. 9/10 end-to-end: extract Rth from the
  // chopped transient instead of reading the configured value.
  Table extraction("Rth extraction through the chopped-transient procedure");
  extraction.set_columns({"W_um", "Rth_configured", "Rth_extracted", "err_%"});
  extraction.set_precision(5);
  for (const auto& d : devices) {
    thermal::SelfHeatingConfig cfg;
    cfg.rc = thermal::device_thermal_rc(tech.k_si, tech.cv_si, d.w, d.l, tech.t_substrate);
    cfg.t_ambient = celsius(30.0);
    cfg.v_drain = tech.vdd;
    cfg.i_on_ref = 5e-3;
    cfg.tc_current = 2e-3;
    cfg.f_chop = 0.05;  // uninterrupted ON phase for a clean plateau
    cfg.t_stop = 2.0;
    cfg.dt = 1e-4;
    const auto trace = thermal::run_self_heating(cfg);
    const double extracted = thermal::extract_r_th(cfg, trace);
    extraction.add_row({d.w * 1e6, cfg.rc.r_th, extracted,
                        (extracted / cfg.rc.r_th - 1.0) * 100.0});
  }
  std::cout << "\n";
  extraction.print(std::cout);
  return 0;
}
