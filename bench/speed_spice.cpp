// Speed study S7 (electro-thermal SPICE): the device-level self-heating
// solve introduced in PR 9 — an outer T <- t_sink + R * P(T) fixed point
// wrapped around the recovery-ladder DC Newton — plus the ladder itself on
// circuits that exercise each rung. The counters pin the solver trajectory:
// a future change that "speeds up" a solve by taking more Newton iterations
// or extra homotopy rungs shows up as a counter regression, not a silent
// convergence change.
#include <benchmark/benchmark.h>

#include <string>

#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/electrothermal.hpp"
#include "thermal/backend.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;
using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

/// Inverter chain: n stages between vdd and ground, each output loading the
/// next gate — the plain-ladder workhorse circuit.
spice::Circuit inverter_chain(int n) {
  spice::Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  auto in = ckt.node("in");
  ckt.add_vsource("VIN", in, spice::Circuit::ground(), 0.0);
  for (int i = 0; i < n; ++i) {
    const auto out = ckt.node("s" + std::to_string(i));
    ckt.add_mosfet("MN" + std::to_string(i), out, in, spice::Circuit::ground(),
                   spice::Circuit::ground(), MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
    ckt.add_mosfet("MP" + std::to_string(i), out, in, vdd, vdd,
                   MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
    in = out;
  }
  return ckt;
}

/// Cross-coupled inverter latch: at a starved iteration budget the plain
/// gmin ladder fails around the metastable point and source stepping
/// carries the solve — the full escalation path.
spice::Circuit latch() {
  spice::Circuit ckt;
  const Technology t = tech();
  const double wn = 0.32e-6;
  const auto vdd = ckt.node("vdd");
  const auto q = ckt.node("q");
  const auto qb = ckt.node("qb");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_mosfet("MN1", q, qb, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, t.l_drawn));
  ckt.add_mosfet("MP1", q, qb, vdd, vdd, MosModel(t, MosType::Pmos, 2.5 * wn, t.l_drawn));
  ckt.add_mosfet("MN2", qb, q, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, t.l_drawn));
  ckt.add_mosfet("MP2", qb, q, vdd, vdd, MosModel(t, MosType::Pmos, 2.5 * wn, t.l_drawn));
  return ckt;
}

void record_report(benchmark::State& state, const spice::SolveReport& report) {
  state.counters["newton_iterations"] = static_cast<double>(report.newton_iterations);
  state.counters["homotopy_steps"] = static_cast<double>(report.homotopy_steps);
  state.counters["rungs"] = static_cast<double>(report.rungs.size());
  state.counters["converged"] = report.converged ? 1.0 : 0.0;
}

void BM_DcInverterChain(benchmark::State& state) {
  const auto ckt = inverter_chain(static_cast<int>(state.range(0)));
  spice::DcSolution last;
  for (auto _ : state) {
    last = spice::solve_dc(ckt);
    benchmark::DoNotOptimize(last);
  }
  record_report(state, last.report);
}
BENCHMARK(BM_DcInverterChain)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_DcRecoveryLadderLatch(benchmark::State& state) {
  // Budget tight enough that the plain ladder fails and source stepping
  // carries the solve — the full escalation path, timed.
  const auto ckt = latch();
  spice::DcOptions opts;
  opts.max_iterations = 6;
  spice::DcSolution last;
  for (auto _ : state) {
    last = spice::solve_dc(ckt, opts);
    benchmark::DoNotOptimize(last);
  }
  record_report(state, last.report);
}
BENCHMARK(BM_DcRecoveryLadderLatch)->Unit(benchmark::kMicrosecond);

void BM_DcSelfHeating(benchmark::State& state) {
  // The PR-9 headline: per-device self-heating closed through the thermal
  // backend's influence seam, outer fixed point around the DC solve. One
  // wide near-threshold NMOS on a poorly-cooled die, ~27 K of self-heating.
  thermal::Die die;
  die.width = 100e-6;
  die.height = 100e-6;
  die.thickness = 300e-6;
  die.k_si = 4.0;
  die.t_sink = 300.0;
  thermal::AnalyticImagesBackend backend(die);

  spice::Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("gate");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_vsource("VG", gate, spice::Circuit::ground(), 0.30);
  ckt.add_mosfet("MHOT", vdd, gate, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, 200e-6, t.l_drawn));
  const std::vector<spice::DeviceFootprint> footprints = {
      {"MHOT", 50e-6, 50e-6, 10e-6, 10e-6}};

  spice::ElectroThermalDcOptions opts;
  opts.t_sink = die.t_sink;
  opts.dc.temp = die.t_sink;

  spice::ElectroThermalDcSolution last;
  for (auto _ : state) {
    last = spice::solve_electrothermal_dc(ckt, backend, footprints, opts);
    benchmark::DoNotOptimize(last);
  }
  state.counters["newton_iterations"] =
      static_cast<double>(last.dc.report.newton_iterations);
  state.counters["homotopy_steps"] = static_cast<double>(last.dc.report.homotopy_steps);
  state.counters["outer_iterations"] = static_cast<double>(last.outer_iterations);
  state.counters["converged"] = last.converged ? 1.0 : 0.0;
}
BENCHMARK(BM_DcSelfHeating)->Unit(benchmark::kMillisecond);

}  // namespace
