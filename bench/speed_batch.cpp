// Speed study S8 (batched scenario engine): the PR-8 trajectory point.
// Thousands of steady concurrent power-thermal solves against ONE shared
// geometry precompute:
//  * BM_ScenarioBatchVariation: a 10000-sample Monte Carlo VT0-variation
//    study on a 36-block manycore plan, spectral matrix-free, blocked Picard
//    sweeps — the headline is us_per_scenario, the amortized cost of one
//    full electro-thermal solve (construction included, spread over the
//    batch). The PR-8 acceptance bar is <= 100 us/sample.
//  * BM_ScenarioBatchCorners: a V/f corner screen (5 supplies x 4 relative
//    frequencies) on the same plan, per backend influence mode.
// The batch counters pin the trajectory: scenarios, batched_matvecs (blocked
// multi-RHS applies issued), picard_iterations_total, and the
// scenario-iterations the convergence masks saved — a regression in blocked
// efficiency shows up in the counters, not just inside wall time.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/scenario_batch.hpp"
#include "device/variation.hpp"
#include "floorplan/generators.hpp"
#include "telemetry_env.hpp"  // PTHERM_TELEMETRY=1 installs a span tracer

namespace {

using namespace ptherm;

thermal::Die die_12mm() {
  thermal::Die d;
  d.width = 12e-3;
  d.height = 12e-3;
  d.thickness = 500e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

// 3 x 3 tiles, 4 blocks per tile: the 36-block plan of the acceptance bar.
floorplan::Floorplan plan_36() {
  Rng rng(2026);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 13.5;  // 1.5 W per tile
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_manycore(device::Technology::cmos012(), die_12mm(), 3, 3, cfg,
                                  rng);
}

core::CosimOptions batch_opts() {
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.influence = core::InfluenceMode::MatrixFree;
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.damping = 1.0;  // undamped Picard converges in ~2 sweeps at this load
  return opts;
}

void record_batch(benchmark::State& state, const core::ScenarioBatch& batch,
                  const std::vector<core::ScenarioResult>& results) {
  const auto stats = batch.cost_stats();
  state.counters["scenarios"] = static_cast<double>(stats.scenarios);
  state.counters["batched_matvecs"] = static_cast<double>(stats.batched_matvecs);
  state.counters["picard_iterations_total"] =
      static_cast<double>(stats.picard_iterations_total);
  state.counters["masked_iterations_saved"] =
      static_cast<double>(stats.masked_iterations_saved);
  state.counters["modes"] = static_cast<double>(batch.influence_build_stats().modes);
  state.counters["blocks"] = static_cast<double>(batch.block_count());
  double converged = 0.0;
  for (const auto& r : results) converged += r.converged ? 1.0 : 0.0;
  state.counters["converged_fraction"] = converged / static_cast<double>(results.size());
}

void BM_ScenarioBatchVariation(benchmark::State& state) {
  const int samples = static_cast<int>(state.range(0));
  const auto fp = plan_36();
  const device::VariationModel var{0.03};
  std::vector<core::ScenarioResult> results;
  for (auto _ : state) {
    // Construction is inside the timed region on purpose: us_per_scenario is
    // the honest amortized cost including the shared precompute.
    core::ScenarioBatch batch(device::Technology::cmos012(), fp, batch_opts());
    batch.add_variation_samples(var, samples, /*base_seed=*/2718);
    results = batch.solve_all();
    benchmark::DoNotOptimize(results);
    state.PauseTiming();
    record_batch(state, batch, results);
    state.ResumeTiming();
  }
  state.counters["samples"] = static_cast<double>(samples);
  // items_per_second in the JSON is the amortized scenario rate; the
  // acceptance bar (<= 100 us/sample at 10k) reads as >= 10000 items/s.
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_ScenarioBatchVariation)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioBatchCorners(benchmark::State& state) {
  const bool dense = state.range(0) != 0;
  const auto fp = plan_36();
  const auto tech = device::Technology::cmos012();
  core::CosimOptions opts = batch_opts();
  opts.influence = dense ? core::InfluenceMode::Dense : core::InfluenceMode::MatrixFree;
  std::vector<core::ScenarioResult> results;
  for (auto _ : state) {
    core::ScenarioBatch batch(tech, fp, opts);
    for (const double v_frac : {0.8, 0.9, 1.0, 1.05, 1.1}) {
      for (const double f_scale : {0.4, 0.6, 0.8, 1.0}) {
        batch.add_vf_corner(tech.vdd * v_frac, f_scale);
      }
    }
    results = batch.solve_all();
    benchmark::DoNotOptimize(results);
    state.PauseTiming();
    record_batch(state, batch, results);
    state.ResumeTiming();
  }
  state.counters["corners"] = 20.0;
  state.counters["dense"] = dense ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_ScenarioBatchCorners)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
