// Fig. 1 reproduction: dynamic vs static power across technology
// generations (0.8 um ... 0.025 um) at 25/100/150 C.
//
// Paper claim reproduced: dynamic power grows and then flattens (power
// wall); static power is exponential in temperature and the 150 C static
// curve overtakes dynamic at the end of the roadmap.
#include <iostream>

#include "common/constants.hpp"
#include "common/table.hpp"
#include "scaling/roadmap.hpp"

int main() {
  using namespace ptherm;

  Table table("Fig. 1 - power vs technology node (watts)");
  table.set_columns({"node_um", "vdd_V", "vt0_V", "P_dynamic", "P_static_25C",
                     "P_static_100C", "P_static_150C", "static_share_100C"});
  table.set_precision(4);

  int crossover_150 = -1;
  int index = 0;
  for (const auto& node : scaling::default_roadmap()) {
    const auto p25 = scaling::node_power(node, celsius(25.0));
    const auto p100 = scaling::node_power(node, celsius(100.0));
    const auto p150 = scaling::node_power(node, celsius(150.0));
    table.add_row({node.feature_um, node.tech.vdd, node.tech.vt0_n, p25.dynamic, p25.stat,
                   p100.stat, p150.stat, p100.stat / (p100.stat + p100.dynamic)});
    if (crossover_150 < 0 && p150.stat > p150.dynamic) crossover_150 = index;
    ++index;
  }
  table.print(std::cout);
  table.write_csv_file("fig1_scaling.csv");

  std::cout << "\n";
  if (crossover_150 >= 0) {
    const auto nodes = scaling::default_roadmap();
    std::cout << "Static power at 150C overtakes dynamic at the "
              << nodes[crossover_150].feature_um << " um node (paper: end of roadmap).\n";
  } else {
    std::cout << "WARNING: no 150C crossover found - shape mismatch vs the paper.\n";
  }
  return 0;
}
