// Fig. 5 reproduction: exact thermal profile of a single MOS transistor
// (W = 1 um, L = 0.1 um, P = 10 mW) versus the paper's min(T0, Tline)
// approximation (Eq. 20), along the long axis.
//
// Paper claim reproduced: the approximation saturates to T0 over the source
// and tracks the exact profile in the far field; "the accuracy obtained is
// enough for the estimation of the thermal profile for large ICs".
#include <cmath>
#include <iostream>

#include "common/constants.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "thermal/analytic.hpp"

int main() {
  using namespace ptherm;
  using thermal::HeatSource;

  const double k_si = 148.0;
  const HeatSource device{0.0, 0.0, 1.0 * um, 0.1 * um, 10.0 * mW};

  Table table("Fig. 5 - thermal profile of a 1um x 0.1um device at 10 mW (K rise)");
  table.set_columns({"x_um", "exact_K", "approx_eq20_K", "quadrature_K", "rel_err_%"});
  table.set_precision(5);

  std::vector<double> exact_series, approx_series;
  for (double x_um = 0.0; x_um <= 5.0 + 1e-9; x_um += 0.125) {
    const double x = x_um * um;
    const double exact = thermal::rect_rise_exact(k_si, device, x, 0.0);
    const double approx = thermal::rect_rise_min(k_si, device, x, 0.0);
    const double quad = thermal::rect_rise_quadrature(k_si, device, x, 0.0);
    table.add_row({x_um, exact, approx, quad, (approx - exact) / exact * 100.0});
    exact_series.push_back(exact);
    approx_series.push_back(approx);
  }
  table.print(std::cout);
  table.write_csv_file("fig5_thermal_profile.csv");

  const auto err = compare_series(approx_series, exact_series);
  const double t0 = thermal::rect_center_rise(k_si, device.power, device.w, device.l);
  std::cout << "\nPeak rise T0 = " << t0 << " K (Eq. 18).\n";
  std::cout << "Eq. (20) vs exact along the long axis: mean rel " << err.mean_rel * 100.0
            << "%, worst " << err.max_rel * 100.0 << "% (at the source edge, where min() "
            << "clips the diverging line kernel - visible in the paper's plot too).\n";
  return 0;
}
