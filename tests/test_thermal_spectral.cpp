// Tests for the spectral (cosine-series) Green's-function solver: exact
// identities (uniform source, DC-mode power conservation, depth limits),
// agreement with the FDM reference at matched depth (the acceptance bar for
// the backend), FFT-vs-direct map equivalence, the source-clipping policy
// shared with the other backends, and the transient integrator — whose
// per-mode exponential updates must be exact for piecewise-constant power,
// land exactly on the steady solve in the long-time limit, and track the
// backward-Euler FDM trajectory at matched depth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "floorplan/generators.hpp"
#include "thermal/fdm.hpp"
#include "thermal/spectral.hpp"

namespace ptherm::thermal {
namespace {

Die die_1mm() {
  Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

std::vector<HeatSource> grid_sources(int n, double p_total) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_uniform_grid(tech, die_1mm(), n, n, cfg, rng);
  return fp.heat_sources(tech);
}

TEST(Spectral, RejectsBadConfiguration) {
  Die bad = die_1mm();
  bad.thickness = 0.0;
  EXPECT_THROW(SpectralThermalSolver(bad, {}), PreconditionError);
  SpectralOptions no_modes;
  no_modes.modes_x = 0;
  EXPECT_THROW(SpectralThermalSolver(die_1mm(), no_modes), PreconditionError);
  const SpectralThermalSolver solver(die_1mm(), {});
  EXPECT_THROW((void)solver.solve_steady({{0.5e-3, 0.5e-3, 0.0, 0.1e-3, 1.0}}),
               PreconditionError);  // degenerate source
}

TEST(Spectral, UniformSourceGivesTheExactOneDimensionalRise) {
  // A source covering the whole die excites only the DC mode (every m > 0
  // footprint integral vanishes), whose closed form is P * t / (k * A) —
  // the 1-D conduction answer, exact to rounding everywhere on the surface.
  const Die die = die_1mm();
  const double p = 3.0;
  const SpectralThermalSolver solver(die, {});
  const auto sol =
      solver.solve_steady({{die.width / 2, die.height / 2, die.width, die.height, p}});
  const double expect = p * die.thickness / (die.k_si * die.width * die.height);
  for (double x : {0.1e-3, 0.5e-3, 0.9e-3}) {
    for (double y : {0.2e-3, 0.7e-3}) {
      EXPECT_NEAR(solver.surface_rise(sol, x, y), expect, 1e-12 * expect);
    }
  }
}

TEST(Spectral, MeanSurfaceRiseConservesPower) {
  // Only the DC mode carries net heat to the sink, so the surface-map mean
  // must equal P_total * t / (k * A) for ANY source arrangement — the
  // spectral power-conservation identity.
  const Die die = die_1mm();
  const auto sources = grid_sources(3, 2.0);
  const double p_total =
      std::accumulate(sources.begin(), sources.end(), 0.0,
                      [](double acc, const HeatSource& s) { return acc + s.power; });
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(sources);
  const auto map = solver.surface_map(sol, 64, 64);
  const double mean = std::accumulate(map.begin(), map.end(), 0.0) / map.size();
  const double expect = p_total * die.thickness / (die.k_si * die.width * die.height);
  EXPECT_NEAR(mean, expect, 1e-9 * expect);
  EXPECT_NEAR(sol.coeff[0], expect, 1e-12 * expect);  // the DC coefficient itself
}

TEST(Spectral, ClippingConservesStraddlingPowerAndDropsOffDieSources) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  // Half the footprint hangs off the die: the full watt still deposits.
  const auto straddle = solver.solve_steady({{0.0, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}});
  const double expect = 1.0 * die.thickness / (die.k_si * die.width * die.height);
  EXPECT_NEAR(straddle.coeff[0], expect, 1e-12 * expect);
  // Fully off-die: no field at all.
  const auto off = solver.solve_steady({{-1e-3, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}});
  for (double c : off.coeff) EXPECT_EQ(c, 0.0);
}

TEST(Spectral, DepthTransferLimitsAreExact) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(2, 1.0));
  const double x = 0.3e-3, y = 0.6e-3;
  // z = 0 reduces to the surface sum; z = t sits on the isothermal sink.
  EXPECT_NEAR(solver.rise_at_depth(sol, x, y, 0.0), solver.surface_rise(sol, x, y), 1e-12);
  EXPECT_NEAR(solver.rise_at_depth(sol, x, y, die.thickness), 0.0, 1e-12);
  // Monotone decay toward the sink.
  double prev = solver.surface_rise(sol, x, y);
  for (double z : {0.25, 0.5, 0.75, 1.0}) {
    const double r = solver.rise_at_depth(sol, x, y, z * die.thickness);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(Spectral, AgreesWithFdmReferenceWithinTwoPercent) {
  // The acceptance bar: block-centre rises on the seed validation floorplan
  // against the 32x32x16 FDM reference. FDM reports its top LAYER at the
  // cell-centre depth dz/2, so the spectral field is evaluated at that same
  // depth (rise_at_depth) — comparing models at two different depths would
  // charge the cell-centre offset, not the solvers, with the difference.
  const Die die = die_1mm();
  FdmOptions fo;
  fo.nx = 32;
  fo.ny = 32;
  fo.nz = 16;
  const FdmThermalSolver fdm(die, fo);
  const SpectralThermalSolver spectral(die, {});
  const auto sources = grid_sources(3, 2.0);
  const auto fdm_sol = fdm.solve_steady(sources);
  ASSERT_TRUE(fdm_sol.converged);
  const auto sp_sol = spectral.solve_steady(sources);
  const double layer_depth = die.thickness / fo.nz / 2.0;
  for (const auto& s : sources) {
    const double ref = fdm.surface_rise(fdm_sol, s.cx, s.cy);
    const double got = spectral.rise_at_depth(sp_sol, s.cx, s.cy, layer_depth);
    EXPECT_NEAR(got, ref, 0.02 * ref) << "block centred at (" << s.cx << ", " << s.cy << ")";
  }
}

TEST(Spectral, FftMapMatchesDirectEvaluation) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(3, 2.0));
  const int nx = 32, ny = 16;  // powers of two: the DCT-synthesis path
  const auto before = solver.fft_calls();
  const auto map = solver.surface_map(sol, nx, ny);
  EXPECT_GT(solver.fft_calls(), before);  // counter moved: FFT path taken
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9)
          << "grid point (" << i << ", " << j << ")";
    }
  }
}

TEST(Spectral, NonPowerOfTwoMapFallsBackToDirectSynthesis) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(2, 1.0));
  const int nx = 30, ny = 10;
  const auto before = solver.fft_calls();
  const auto map = solver.surface_map(sol, nx, ny);
  EXPECT_EQ(solver.fft_calls(), before);  // no FFT on this path
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9);
    }
  }
}

// ------------------------------------------------------------------ transient

std::vector<HeatSource> two_sources() {
  return {{0.3e-3, 0.4e-3, 0.25e-3, 0.2e-3, 1.5}, {0.7e-3, 0.6e-3, 0.2e-3, 0.3e-3, 0.8}};
}

TEST(SpectralTransient, RejectsBadConfiguration) {
  SpectralOptions no_z;
  no_z.modes_z = 0;
  EXPECT_THROW(SpectralThermalSolver(die_1mm(), no_z), PreconditionError);

  const SpectralThermalSolver solver(die_1mm(), {});
  auto state = solver.make_transient();
  EXPECT_THROW(solver.step_transient(state, 0.0, two_sources()), PreconditionError);
  EXPECT_THROW(solver.step_transient(state, -1e-4, two_sources()), PreconditionError);
  EXPECT_THROW(solver.step_transient(state, 1e-4, {{0.5e-3, 0.5e-3, 0.0, 0.1e-3, 1.0}}),
               PreconditionError);  // degenerate source
  // A state from a differently-sized solver is rejected, not misread.
  SpectralOptions other;
  other.modes_x = 32;
  const SpectralThermalSolver small(die_1mm(), other);
  auto small_state = small.make_transient();
  EXPECT_THROW(solver.step_transient(small_state, 1e-4, two_sources()), PreconditionError);
}

TEST(SpectralTransient, ExactForPiecewiseConstantPower) {
  // The per-mode update is the closed-form solution of the mode ODE, so one
  // step of h must equal k sub-steps of h/k to rounding — accuracy does not
  // depend on the step size.
  const SpectralThermalSolver solver(die_1mm(), {});
  const auto sources = two_sources();
  const double h = 3e-4;
  auto one = solver.make_transient();
  solver.step_transient(one, h, sources);
  auto sub = solver.make_transient();
  for (int i = 0; i < 4; ++i) solver.step_transient(sub, h / 4.0, sources);
  for (double x : {0.3e-3, 0.5e-3, 0.8e-3}) {
    for (double y : {0.4e-3, 0.6e-3}) {
      const double a = solver.surface_rise(one, x, y);
      const double b = solver.surface_rise(sub, x, y);
      EXPECT_NEAR(a, b, 1e-12 * std::abs(a)) << "at (" << x << ", " << y << ")";
    }
  }
  // Depth evaluation is consistent between the two paths too, and the depth
  // limits hold mid-transient: z = 0 is the surface sum, z = t the sink.
  const double z = die_1mm().thickness / 3.0;
  EXPECT_NEAR(solver.rise_at_depth(one, 0.4e-3, 0.5e-3, z),
              solver.rise_at_depth(sub, 0.4e-3, 0.5e-3, z),
              1e-12 * solver.rise_at_depth(one, 0.4e-3, 0.5e-3, z));
  EXPECT_NEAR(solver.rise_at_depth(one, 0.4e-3, 0.5e-3, 0.0),
              solver.surface_rise(one, 0.4e-3, 0.5e-3), 1e-12);
  EXPECT_NEAR(solver.rise_at_depth(one, 0.4e-3, 0.5e-3, die_1mm().thickness), 0.0, 1e-12);
}

TEST(SpectralTransient, LongTimeLimitIsTheSteadySolve) {
  // The z-mode gains sum to the steady transfer by construction (the
  // truncated tail is carried quasi-statically), so a fully-settled
  // transient IS the steady solve — to rounding, not to a model tolerance.
  const SpectralThermalSolver solver(die_1mm(), {});
  const auto sources = two_sources();
  const auto steady = solver.solve_steady(sources);
  auto settled = solver.make_transient();
  solver.step_transient(settled, 10.0, sources);  // one giant exact step
  auto stepped = solver.make_transient();
  for (int s = 0; s < 300; ++s) solver.step_transient(stepped, 2e-5, sources);  // 6 ms ~ 11 tau
  for (const auto& s : sources) {
    const double ref = solver.surface_rise(steady, s.cx, s.cy);
    EXPECT_NEAR(solver.surface_rise(settled, s.cx, s.cy), ref, 1e-12 * ref);
    EXPECT_NEAR(solver.surface_rise(stepped, s.cx, s.cy), ref, 1e-3 * ref);
  }
  // Cut the power: the field must decay back to the sink everywhere.
  auto cooled = settled;
  auto off = sources;
  for (auto& s : off) s.power = 0.0;
  solver.step_transient(cooled, 10.0, off);
  EXPECT_NEAR(solver.surface_rise(cooled, sources[0].cx, sources[0].cy), 0.0, 1e-10);
}

TEST(SpectralTransient, ProjectionCacheFollowsGeometryAndPowerChanges) {
  const SpectralThermalSolver solver(die_1mm(), {});
  const auto first = two_sources();
  // Power-only changes ride the cached projections as a scaled accumulate:
  // settling with doubled powers must give exactly twice the steady field
  // (linearity), even though the geometry entries were cached on step one.
  auto state = solver.make_transient();
  solver.step_transient(state, 1e-4, first);
  auto doubled = first;
  for (auto& s : doubled) s.power *= 2.0;
  solver.step_transient(state, 10.0, doubled);
  const auto steady = solver.solve_steady(first);
  const double ref = 2.0 * solver.surface_rise(steady, first[0].cx, first[0].cy);
  EXPECT_NEAR(solver.surface_rise(state, first[0].cx, first[0].cy), ref, 1e-12 * ref);
  // A geometry change must rebuild the stale entries: settle under a moved
  // footprint and the field is the moved footprint's steady solve, not the
  // cached one's.
  auto moved = first;
  moved[0].cx = 0.55e-3;
  moved[0].w = 0.3e-3;
  moved[1].power = 0.0;
  solver.step_transient(state, 10.0, moved);
  const auto moved_steady = solver.solve_steady(moved);
  for (double x : {0.2e-3, 0.55e-3, 0.8e-3}) {
    const double want = solver.surface_rise(moved_steady, x, 0.5e-3);
    EXPECT_NEAR(solver.surface_rise(state, x, 0.5e-3), want, 1e-12 * std::abs(want));
  }
}

TEST(SpectralTransient, MatchedDepthAgreementWithFdmTrajectory) {
  // The transient acceptance bar: against a fine-dt backward-Euler FDM
  // reference (32 x 32 x 16), the spectral trajectory stays within 2% at
  // the source centres at every compared time. FDM reports its top layer at
  // depth dz/2, so the spectral field is read there (rise_at_depth); the
  // residual difference is the reference's own O(dt) + O(h^2) error, which
  // the refinement test below pins down.
  const Die die = die_1mm();
  FdmOptions fo;
  fo.nx = 32;
  fo.ny = 32;
  fo.nz = 16;
  const FdmThermalSolver fdm(die, fo);
  const SpectralThermalSolver spectral(die, {});
  const auto sources = two_sources();
  const double dt = 5e-6;
  const int steps = 120;  // to 600 us, ~1.1 die time constants
  const double z_query = die.thickness / fo.nz / 2.0;
  std::vector<double> rise(fdm.cell_count(), 0.0);
  auto state = spectral.make_transient();
  FdmThermalSolver::Solution fdm_view;
  fdm_view.converged = true;
  for (int s = 1; s <= steps; ++s) {
    fdm.step_transient(rise, dt, sources);
    spectral.step_transient(state, dt, sources);
    const double t = s * dt;
    if (t < 1.5e-4 || s % 10 != 0) continue;
    fdm_view.rise = std::move(rise);
    for (const auto& q : sources) {
      const double ref = fdm.surface_rise(fdm_view, q.cx, q.cy);
      const double got = spectral.rise_at_depth(state, q.cx, q.cy, z_query);
      EXPECT_NEAR(got, ref, 0.02 * ref) << "t = " << t << " s at (" << q.cx << ", " << q.cy
                                        << ")";
    }
    rise = std::move(fdm_view.rise);
  }
}

TEST(SpectralTransient, FdmTrajectoryConvergesTowardSpectralUnderDtRefinement) {
  // The spectral update is exact in time, so refining the FDM reference's dt
  // must shrink the disagreement — the difference is the reference's error,
  // not the integrator's.
  const Die die = die_1mm();
  FdmOptions fo;
  fo.nx = 32;
  fo.ny = 32;
  fo.nz = 16;
  const FdmThermalSolver fdm(die, fo);
  const SpectralThermalSolver spectral(die, {});
  const auto sources = two_sources();
  const double t_end = 3e-4;
  const double z_query = die.thickness / fo.nz / 2.0;
  auto max_deviation = [&](double dt) {
    std::vector<double> rise(fdm.cell_count(), 0.0);
    auto state = spectral.make_transient();
    const int steps = static_cast<int>(std::llround(t_end / dt));
    for (int s = 0; s < steps; ++s) {
      fdm.step_transient(rise, dt, sources);
      spectral.step_transient(state, dt, sources);
    }
    FdmThermalSolver::Solution view;
    view.rise = std::move(rise);
    view.converged = true;
    double worst = 0.0;
    for (const auto& q : sources) {
      const double ref = fdm.surface_rise(view, q.cx, q.cy);
      const double got = spectral.rise_at_depth(state, q.cx, q.cy, z_query);
      worst = std::max(worst, std::abs(got - ref) / ref);
    }
    return worst;
  };
  const double coarse = max_deviation(3e-5);
  const double fine = max_deviation(7.5e-6);
  EXPECT_LT(fine, coarse);
  // O(dt) error should shrink roughly linearly; allow generous slack for the
  // dt-independent spatial floor underneath.
  EXPECT_LT(fine, 0.75 * coarse);
}

TEST(Spectral, MapSynthesisFoldsModesBeyondTheGrid) {
  // More modes than grid points: the folded DCT synthesis must still equal
  // the direct (full) mode sum at every cell centre.
  const Die die = die_1mm();
  SpectralOptions opts;
  opts.modes_x = 96;
  opts.modes_y = 80;
  const SpectralThermalSolver solver(die, opts);
  const auto sol = solver.solve_steady(grid_sources(3, 2.0));
  const int nx = 16, ny = 16;
  const auto map = solver.surface_map(sol, nx, ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace ptherm::thermal
