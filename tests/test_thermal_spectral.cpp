// Tests for the spectral (cosine-series) Green's-function solver: exact
// identities (uniform source, DC-mode power conservation, depth limits),
// agreement with the FDM reference at matched depth (the acceptance bar for
// the backend), FFT-vs-direct map equivalence, and the source-clipping
// policy shared with the other backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "floorplan/generators.hpp"
#include "thermal/fdm.hpp"
#include "thermal/spectral.hpp"

namespace ptherm::thermal {
namespace {

Die die_1mm() {
  Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

std::vector<HeatSource> grid_sources(int n, double p_total) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  const auto tech = device::Technology::cmos012();
  const auto fp = floorplan::make_uniform_grid(tech, die_1mm(), n, n, cfg, rng);
  return fp.heat_sources(tech);
}

TEST(Spectral, RejectsBadConfiguration) {
  Die bad = die_1mm();
  bad.thickness = 0.0;
  EXPECT_THROW(SpectralThermalSolver(bad, {}), PreconditionError);
  SpectralOptions no_modes;
  no_modes.modes_x = 0;
  EXPECT_THROW(SpectralThermalSolver(die_1mm(), no_modes), PreconditionError);
  const SpectralThermalSolver solver(die_1mm(), {});
  EXPECT_THROW((void)solver.solve_steady({{0.5e-3, 0.5e-3, 0.0, 0.1e-3, 1.0}}),
               PreconditionError);  // degenerate source
}

TEST(Spectral, UniformSourceGivesTheExactOneDimensionalRise) {
  // A source covering the whole die excites only the DC mode (every m > 0
  // footprint integral vanishes), whose closed form is P * t / (k * A) —
  // the 1-D conduction answer, exact to rounding everywhere on the surface.
  const Die die = die_1mm();
  const double p = 3.0;
  const SpectralThermalSolver solver(die, {});
  const auto sol =
      solver.solve_steady({{die.width / 2, die.height / 2, die.width, die.height, p}});
  const double expect = p * die.thickness / (die.k_si * die.width * die.height);
  for (double x : {0.1e-3, 0.5e-3, 0.9e-3}) {
    for (double y : {0.2e-3, 0.7e-3}) {
      EXPECT_NEAR(solver.surface_rise(sol, x, y), expect, 1e-12 * expect);
    }
  }
}

TEST(Spectral, MeanSurfaceRiseConservesPower) {
  // Only the DC mode carries net heat to the sink, so the surface-map mean
  // must equal P_total * t / (k * A) for ANY source arrangement — the
  // spectral power-conservation identity.
  const Die die = die_1mm();
  const auto sources = grid_sources(3, 2.0);
  const double p_total =
      std::accumulate(sources.begin(), sources.end(), 0.0,
                      [](double acc, const HeatSource& s) { return acc + s.power; });
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(sources);
  const auto map = solver.surface_map(sol, 64, 64);
  const double mean = std::accumulate(map.begin(), map.end(), 0.0) / map.size();
  const double expect = p_total * die.thickness / (die.k_si * die.width * die.height);
  EXPECT_NEAR(mean, expect, 1e-9 * expect);
  EXPECT_NEAR(sol.coeff[0], expect, 1e-12 * expect);  // the DC coefficient itself
}

TEST(Spectral, ClippingConservesStraddlingPowerAndDropsOffDieSources) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  // Half the footprint hangs off the die: the full watt still deposits.
  const auto straddle = solver.solve_steady({{0.0, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}});
  const double expect = 1.0 * die.thickness / (die.k_si * die.width * die.height);
  EXPECT_NEAR(straddle.coeff[0], expect, 1e-12 * expect);
  // Fully off-die: no field at all.
  const auto off = solver.solve_steady({{-1e-3, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}});
  for (double c : off.coeff) EXPECT_EQ(c, 0.0);
}

TEST(Spectral, DepthTransferLimitsAreExact) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(2, 1.0));
  const double x = 0.3e-3, y = 0.6e-3;
  // z = 0 reduces to the surface sum; z = t sits on the isothermal sink.
  EXPECT_NEAR(solver.rise_at_depth(sol, x, y, 0.0), solver.surface_rise(sol, x, y), 1e-12);
  EXPECT_NEAR(solver.rise_at_depth(sol, x, y, die.thickness), 0.0, 1e-12);
  // Monotone decay toward the sink.
  double prev = solver.surface_rise(sol, x, y);
  for (double z : {0.25, 0.5, 0.75, 1.0}) {
    const double r = solver.rise_at_depth(sol, x, y, z * die.thickness);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(Spectral, AgreesWithFdmReferenceWithinTwoPercent) {
  // The acceptance bar: block-centre rises on the seed validation floorplan
  // against the 32x32x16 FDM reference. FDM reports its top LAYER at the
  // cell-centre depth dz/2, so the spectral field is evaluated at that same
  // depth (rise_at_depth) — comparing models at two different depths would
  // charge the cell-centre offset, not the solvers, with the difference.
  const Die die = die_1mm();
  FdmOptions fo;
  fo.nx = 32;
  fo.ny = 32;
  fo.nz = 16;
  const FdmThermalSolver fdm(die, fo);
  const SpectralThermalSolver spectral(die, {});
  const auto sources = grid_sources(3, 2.0);
  const auto fdm_sol = fdm.solve_steady(sources);
  ASSERT_TRUE(fdm_sol.converged);
  const auto sp_sol = spectral.solve_steady(sources);
  const double layer_depth = die.thickness / fo.nz / 2.0;
  for (const auto& s : sources) {
    const double ref = fdm.surface_rise(fdm_sol, s.cx, s.cy);
    const double got = spectral.rise_at_depth(sp_sol, s.cx, s.cy, layer_depth);
    EXPECT_NEAR(got, ref, 0.02 * ref) << "block centred at (" << s.cx << ", " << s.cy << ")";
  }
}

TEST(Spectral, FftMapMatchesDirectEvaluation) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(3, 2.0));
  const int nx = 32, ny = 16;  // powers of two: the DCT-synthesis path
  const auto before = solver.fft_calls();
  const auto map = solver.surface_map(sol, nx, ny);
  EXPECT_GT(solver.fft_calls(), before);  // counter moved: FFT path taken
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9)
          << "grid point (" << i << ", " << j << ")";
    }
  }
}

TEST(Spectral, NonPowerOfTwoMapFallsBackToDirectSynthesis) {
  const Die die = die_1mm();
  const SpectralThermalSolver solver(die, {});
  const auto sol = solver.solve_steady(grid_sources(2, 1.0));
  const int nx = 30, ny = 10;
  const auto before = solver.fft_calls();
  const auto map = solver.surface_map(sol, nx, ny);
  EXPECT_EQ(solver.fft_calls(), before);  // no FFT on this path
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9);
    }
  }
}

TEST(Spectral, MapSynthesisFoldsModesBeyondTheGrid) {
  // More modes than grid points: the folded DCT synthesis must still equal
  // the direct (full) mode sum at every cell centre.
  const Die die = die_1mm();
  SpectralOptions opts;
  opts.modes_x = 96;
  opts.modes_y = 80;
  const SpectralThermalSolver solver(die, opts);
  const auto sol = solver.solve_steady(grid_sources(3, 2.0));
  const int nx = 16, ny = 16;
  const auto map = solver.surface_map(sol, nx, ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double x = die.width * (i + 0.5) / nx;
      const double y = die.height * (j + 0.5) / ny;
      ASSERT_NEAR(map[static_cast<std::size_t>(j) * nx + i], solver.surface_rise(sol, x, y),
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace ptherm::thermal
