// Unit tests for the ODE integrators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "numerics/ode.hpp"

namespace ptherm::numerics {
namespace {

TEST(Rk4, ExponentialDecayMatchesClosedForm) {
  OdeRhs f = [](double, const std::vector<double>& y) {
    return std::vector<double>{-2.0 * y[0]};
  };
  const auto sol = rk4(f, {1.0}, 0.0, 1.0, 1e-3);
  EXPECT_NEAR(sol.states.back()[0], std::exp(-2.0), 1e-9);
  EXPECT_NEAR(sol.times.back(), 1.0, 1e-12);
}

TEST(Rk4, FourthOrderConvergence) {
  OdeRhs f = [](double t, const std::vector<double>& y) {
    return std::vector<double>{y[0] * std::cos(t)};
  };
  auto err = [&](double dt) {
    const auto sol = rk4(f, {1.0}, 0.0, 2.0, dt);
    return std::abs(sol.states.back()[0] - std::exp(std::sin(2.0)));
  };
  const double e1 = err(0.02);
  const double e2 = err(0.01);
  // Halving dt should cut the error by about 2^4 = 16.
  EXPECT_GT(e1 / e2, 10.0);
  EXPECT_LT(e1 / e2, 24.0);
}

TEST(Rk4, CoupledOscillatorConservesEnergy) {
  OdeRhs f = [](double, const std::vector<double>& y) {
    return std::vector<double>{y[1], -y[0]};
  };
  const auto sol = rk4(f, {1.0, 0.0}, 0.0, 10.0, 1e-3);
  const auto& last = sol.states.back();
  EXPECT_NEAR(last[0] * last[0] + last[1] * last[1], 1.0, 1e-8);
}

TEST(BackwardEuler, StableOnStiffDecay) {
  // lambda = -1e4 with dt = 1e-2: explicit RK4 would explode; backward Euler
  // must stay bounded and land near zero.
  OdeRhs f = [](double, const std::vector<double>& y) {
    return std::vector<double>{-1e4 * (y[0] - 1.0)};
  };
  const auto sol = backward_euler(f, {0.0}, 0.0, 0.1, 1e-2, 200, 1e-13);
  for (const auto& s : sol.states) {
    EXPECT_GE(s[0], -1e-9);
    EXPECT_LE(s[0], 1.0 + 1e-9);
  }
  EXPECT_NEAR(sol.states.back()[0], 1.0, 1e-6);
}

TEST(BackwardEuler, FirstOrderAccuracy) {
  OdeRhs f = [](double, const std::vector<double>& y) {
    return std::vector<double>{-y[0]};
  };
  auto err = [&](double dt) {
    const auto sol = backward_euler(f, {1.0}, 0.0, 1.0, dt);
    return std::abs(sol.states.back()[0] - std::exp(-1.0));
  };
  const double e1 = err(0.02);
  const double e2 = err(0.01);
  EXPECT_GT(e1 / e2, 1.7);  // first order: ratio ~ 2
  EXPECT_LT(e1 / e2, 2.3);
}

TEST(Rk4Scalar, WrapsVectorIntegrator) {
  const auto sol = rk4_scalar([](double, double y) { return -y; }, 1.0, 0.0, 1.0, 1e-3);
  EXPECT_NEAR(sol.states.back()[0], std::exp(-1.0), 1e-9);
}

TEST(Ode, RejectsBadTimeGrid) {
  OdeRhs f = [](double, const std::vector<double>& y) { return y; };
  EXPECT_THROW(rk4(f, {1.0}, 1.0, 0.0, 0.1), PreconditionError);
  EXPECT_THROW(rk4(f, {1.0}, 0.0, 1.0, -0.1), PreconditionError);
}

TEST(Ode, FinalPartialStepLandsExactlyOnTStop) {
  OdeRhs f = [](double, const std::vector<double>&) { return std::vector<double>{1.0}; };
  const auto sol = rk4(f, {0.0}, 0.0, 1.0, 0.3);  // 0.3 does not divide 1.0
  EXPECT_NEAR(sol.times.back(), 1.0, 1e-12);
  EXPECT_NEAR(sol.states.back()[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace ptherm::numerics
