// Tests for the MNA DC solver — linear sanity, nonlinear gates, and the
// agreement with the dedicated exact stack solver that underpins Fig. 8.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/exact_stack.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::spice {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

TEST(DcLinear, VoltageDivider) {
  Circuit ckt;
  const auto vin = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("V1", vin, Circuit::ground(), 10.0);
  ckt.add_resistor("R1", vin, mid, 1000.0);
  ckt.add_resistor("R2", mid, Circuit::ground(), 3000.0);
  const auto sol = solve_dc(ckt);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(mid), 7.5, 1e-9);
  // Source current: 10 V over 4 kOhm, flowing out of the + terminal through
  // the external circuit, i.e. -2.5 mA through the source by convention.
  EXPECT_NEAR(sol.vsource_currents.at("V1"), -2.5e-3, 1e-9);
}

TEST(DcLinear, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add_isource("I1", Circuit::ground(), n, 1e-3);
  ckt.add_resistor("R1", n, Circuit::ground(), 2000.0);
  const auto sol = solve_dc(ckt);
  EXPECT_NEAR(sol.voltage(n), 2.0, 1e-9);
}

TEST(DcLinear, TwoSourcesSuperpose) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add_vsource("Va", a, Circuit::ground(), 5.0);
  ckt.add_vsource("Vb", b, Circuit::ground(), 3.0);
  ckt.add_resistor("R", a, b, 100.0);
  const auto sol = solve_dc(ckt);
  EXPECT_NEAR(sol.device_currents.at("R"), 0.02, 1e-9);
}

TEST(DcLinear, FloatingNodeHandledByGmin) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");  // b floats behind a resistor
  ckt.add_vsource("V", a, Circuit::ground(), 2.0);
  ckt.add_resistor("R", a, b, 1000.0);
  const auto sol = solve_dc(ckt);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(b), 2.0, 1e-5);  // pulled to a through R by gmin
}

TEST(DcLinear, DuplicateElementNameThrows) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_resistor("R", a, Circuit::ground(), 1.0);
  EXPECT_THROW(ckt.add_resistor("R", a, Circuit::ground(), 2.0), PreconditionError);
}

class InverterTest : public ::testing::Test {
 protected:
  Technology tech_ = Technology::cmos012();

  Circuit make_inverter(double vin) {
    Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, Circuit::ground(), tech_.vdd);
    ckt.add_vsource("VIN", in, Circuit::ground(), vin);
    ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                   MosModel(tech_, MosType::Nmos, 0.32e-6, tech_.l_drawn));
    ckt.add_mosfet("MP", out, in, vdd, vdd,
                   MosModel(tech_, MosType::Pmos, 0.8e-6, tech_.l_drawn));
    return ckt;
  }
};

TEST_F(InverterTest, OutputsFollowLogic) {
  {
    auto ckt = make_inverter(0.0);
    const auto sol = solve_dc(ckt);
    EXPECT_GT(sol.voltage(ckt.node("out")), 0.95 * tech_.vdd);
  }
  {
    auto ckt = make_inverter(tech_.vdd);
    const auto sol = solve_dc(ckt);
    EXPECT_LT(sol.voltage(ckt.node("out")), 0.05 * tech_.vdd);
  }
}

TEST_F(InverterTest, TransferCurveIsMonotoneDecreasing) {
  auto ckt = make_inverter(0.0);
  std::vector<double> vins;
  for (double v = 0.0; v <= tech_.vdd + 1e-9; v += 0.1) vins.push_back(v);
  const auto sols = dc_sweep(ckt, "VIN", vins);
  const auto out = ckt.node("out");
  double prev = 1e9;
  for (const auto& sol : sols) {
    const double vout = sol.voltage(out);
    EXPECT_LE(vout, prev + 1e-6);
    prev = vout;
  }
}

TEST_F(InverterTest, LeakageWithInputLowMatchesOffCurrent) {
  // Input low: nMOS blocks; supply current = nMOS OFF current (pMOS is ON
  // and drops ~nothing).
  auto ckt = make_inverter(0.0);
  const auto sol = solve_dc(ckt);
  const double i_vdd = -sol.vsource_currents.at("VDD");  // current delivered
  const double expected =
      device::off_current(tech_, MosType::Nmos, 0.32e-6, tech_.l_drawn, 300.0);
  EXPECT_NEAR(i_vdd, expected, 0.02 * expected);
}

TEST(DcStack, TwoStackMatchesExactSolver) {
  // Full MNA solve of a 2-high OFF nMOS stack must agree with the dedicated
  // nested-Brent solver to numerical accuracy (same device equations).
  const Technology tech = Technology::cmos012();
  const double w = 0.5e-6;
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), tech.vdd);
  ckt.add_mosfet("M1", mid, Circuit::ground(), Circuit::ground(), Circuit::ground(),
                 MosModel(tech, MosType::Nmos, w, tech.l_drawn));
  ckt.add_mosfet("M2", vdd, Circuit::ground(), mid, Circuit::ground(),
                 MosModel(tech, MosType::Nmos, w, tech.l_drawn));
  const auto sol = solve_dc(ckt);

  const double widths[] = {w, w};
  const auto exact = leakage::solve_exact_chain(tech, MosType::Nmos, widths, tech.l_drawn,
                                                300.0);
  EXPECT_NEAR(sol.voltage(mid), exact.node_voltages[0], 5e-5);
  const double i_mna = -sol.vsource_currents.at("VDD");
  EXPECT_NEAR(i_mna, exact.current, 0.01 * exact.current);
}

TEST(DcStack, ThreeStackNodeOrderingIsMonotone) {
  const Technology tech = Technology::cmos012();
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto n1 = ckt.node("n1");
  const auto n2 = ckt.node("n2");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), tech.vdd);
  const MosModel m(tech, MosType::Nmos, 0.5e-6, tech.l_drawn);
  ckt.add_mosfet("M1", n1, Circuit::ground(), Circuit::ground(), Circuit::ground(), m);
  ckt.add_mosfet("M2", n2, Circuit::ground(), n1, Circuit::ground(), m);
  ckt.add_mosfet("M3", vdd, Circuit::ground(), n2, Circuit::ground(), m);
  const auto sol = solve_dc(ckt);
  EXPECT_GT(sol.voltage(n1), 0.0);
  EXPECT_GT(sol.voltage(n2), sol.voltage(n1));
  EXPECT_LT(sol.voltage(n2), tech.vdd);
}

TEST(DcApi, EmptyCircuitThrows) {
  Circuit ckt;
  EXPECT_THROW(solve_dc(ckt), PreconditionError);
}

TEST(DcApi, SetVsourceValueOnUnknownNameThrows) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V", a, Circuit::ground(), 1.0);
  EXPECT_THROW(ckt.set_vsource_value("X", 2.0), PreconditionError);
}

}  // namespace
}  // namespace ptherm::spice
