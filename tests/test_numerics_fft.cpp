// Tests for the hand-rolled radix-2 FFT and the cosine transforms the
// spectral thermal backend synthesizes fields with: known spectra, round
// trips, agreement with direct O(N^2) definition sums, and the mode-folding
// alias identities.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "numerics/fft.hpp"

namespace ptherm::numerics {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> x(8, {0.0, 0.0});
  x[0] = 1.0;
  fft(x);
  for (const auto& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 16;
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * kPi * 3.0 * static_cast<double>(i) / static_cast<double>(n));
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expect = (k == 3 || k == n - 3) ? n / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expect, 1e-10) << "bin " << k;
  }
}

TEST(Fft, RoundTripRecoversRandomSignal) {
  Rng rng(5);
  const std::size_t n = 128;
  std::vector<std::complex<double>> x(n);
  for (auto& c : x) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto original = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft, MatchesDirectDftDefinition) {
  Rng rng(11);
  const std::size_t n = 32;
  std::vector<std::complex<double>> x(n);
  for (auto& c : x) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto fast = x;
  fft(fast);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> direct{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      direct += x[m] * std::polar(1.0, -2.0 * kPi * static_cast<double>(k * m) /
                                           static_cast<double>(n));
    }
    EXPECT_NEAR(std::abs(fast[k] - direct), 0.0, 1e-10) << "bin " << k;
  }
}

TEST(Fft, RejectsNonPowerOfTwoSizes) {
  std::vector<std::complex<double>> x(12, {1.0, 0.0});
  EXPECT_THROW(fft(x), PreconditionError);
  std::vector<double> r(6, 1.0);
  EXPECT_THROW((void)dct2(r), PreconditionError);
  EXPECT_THROW((void)dct3(r), PreconditionError);
}

TEST(Dct, Dct2MatchesDefinitionSum) {
  Rng rng(23);
  const std::size_t n = 16;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-2.0, 2.0);
  const auto fast = dct2(x);
  for (std::size_t k = 0; k < n; ++k) {
    double direct = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      direct += x[m] * std::cos(kPi * static_cast<double>(k) * (2.0 * m + 1.0) / (2.0 * n));
    }
    EXPECT_NEAR(fast[k], direct, 1e-12) << "bin " << k;
  }
}

TEST(Dct, Dct3MatchesDefinitionSum) {
  Rng rng(29);
  const std::size_t n = 64;
  std::vector<double> coeff(n);
  for (auto& v : coeff) v = rng.uniform(-2.0, 2.0);
  const auto fast = dct3(coeff);
  for (std::size_t i = 0; i < n; ++i) {
    double direct = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      direct += coeff[m] * std::cos(kPi * static_cast<double>(m) * (2.0 * i + 1.0) / (2.0 * n));
    }
    EXPECT_NEAR(fast[i], direct, 1e-12) << "sample " << i;
  }
}

TEST(Dct, Dct2Dct3RoundTripIsDiagonal) {
  // With these (unnormalized) conventions dct2(dct3(x)) scales the DC mode
  // by N and every other mode by N/2 — the cosine-basis orthogonality.
  Rng rng(31);
  const std::size_t n = 32;
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto back = dct2(dct3(x));
  EXPECT_NEAR(back[0], static_cast<double>(n) * x[0], 1e-10);
  for (std::size_t m = 1; m < n; ++m) {
    EXPECT_NEAR(back[m], static_cast<double>(n) / 2.0 * x[m], 1e-10) << "mode " << m;
  }
}

TEST(Dct, FoldedModesReproduceTheExactAliasedSum) {
  // Synthesis of MORE modes than grid points: folding must agree with the
  // direct mode sum at every cell centre, exercising all three alias cases
  // (r < n, r == n dropping out, r > n with flipped sign).
  Rng rng(37);
  const int n_out = 8;
  const std::size_t n_modes = 41;  // > 2 * 2 * n_out: several fold periods
  std::vector<double> coeff(n_modes);
  for (auto& v : coeff) v = rng.uniform(-1.0, 1.0);
  const auto folded = fold_cosine_modes(coeff, n_out);
  ASSERT_EQ(folded.size(), static_cast<std::size_t>(n_out));
  const auto synth = dct3(folded);
  for (int i = 0; i < n_out; ++i) {
    double direct = 0.0;
    for (std::size_t m = 0; m < n_modes; ++m) {
      direct += coeff[m] *
                std::cos(kPi * static_cast<double>(m) * (2.0 * i + 1.0) / (2.0 * n_out));
    }
    EXPECT_NEAR(synth[i], direct, 1e-12) << "sample " << i;
  }
}

TEST(Dct, FoldIsIdentityWhenModesFit) {
  const std::vector<double> coeff = {1.0, -2.0, 0.5};
  const auto folded = fold_cosine_modes(coeff, 4);
  ASSERT_EQ(folded.size(), 4u);
  EXPECT_DOUBLE_EQ(folded[0], 1.0);
  EXPECT_DOUBLE_EQ(folded[1], -2.0);
  EXPECT_DOUBLE_EQ(folded[2], 0.5);
  EXPECT_DOUBLE_EQ(folded[3], 0.0);
}

}  // namespace
}  // namespace ptherm::numerics
