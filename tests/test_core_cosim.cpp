// Tests for the concurrent electro-thermal solver: fixed-point convergence,
// the temperature-leakage feedback, backend agreement, and runaway detection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "floorplan/generators.hpp"
#include "netlist/cells.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;  // 45 C heat sink
  return d;
}

floorplan::Floorplan small_plan(double p_total = 2.0, double gates_per_mm2 = 50e3) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = gates_per_mm2;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

TEST(Cosim, ConvergesOnModestFloorplan) {
  ElectroThermalSolver solver(tech(), small_plan(), {});
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
  EXPECT_GT(r.iterations, 1);
  EXPECT_EQ(r.blocks.size(), 9u);
}

TEST(Cosim, BlockTemperaturesExceedSink) {
  ElectroThermalSolver solver(tech(), small_plan(), {});
  const auto r = solver.solve();
  for (const auto& b : r.blocks) {
    EXPECT_GT(b.temperature, die_1mm().t_sink);
    EXPECT_GT(b.p_leakage, 0.0);
  }
  EXPECT_GE(r.max_temperature, die_1mm().t_sink);
}

TEST(Cosim, LeakageAtConvergenceExceedsColdLeakage) {
  // The whole point of the concurrent solve: evaluating leakage at the sink
  // temperature underestimates it.
  const auto fp = small_plan(5.0);
  ElectroThermalSolver solver(tech(), fp, {});
  const auto r = solver.solve();
  ASSERT_TRUE(r.converged);
  double cold_leak = 0.0;
  for (const auto& b : fp.blocks()) {
    cold_leak += b.leakage_power(tech(), die_1mm().t_sink);
  }
  EXPECT_GT(r.total_leakage, cold_leak);
}

TEST(Cosim, FixedPointSatisfiesThermalEquation) {
  // At convergence, T_i - T_sink must equal sum_j R_ij * P_j within tol.
  ElectroThermalSolver solver(tech(), small_plan(), {});
  const auto r = solver.solve();
  ASSERT_TRUE(r.converged);
  const auto& influence = solver.influence_matrix();
  for (std::size_t i = 0; i < r.blocks.size(); ++i) {
    double rise = 0.0;
    for (std::size_t j = 0; j < r.blocks.size(); ++j) {
      rise += influence.at(i, j) * r.blocks[j].p_total();
    }
    EXPECT_NEAR(r.blocks[i].temperature - die_1mm().t_sink, rise, 0.02);
  }
}

TEST(Cosim, InfluenceMatrixIsPositiveWithDominantDiagonal) {
  ElectroThermalSolver solver(tech(), small_plan(), {});
  const auto& m = solver.influence_matrix();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_GT(m.at(i, j), 0.0);
      if (i != j) {
        EXPECT_GT(m.at(i, i), m.at(i, j));  // self-heating dominates
      }
    }
  }
}

TEST(Cosim, MorePowerMeansHotter) {
  ElectroThermalSolver cool(tech(), small_plan(1.0), {});
  ElectroThermalSolver hot(tech(), small_plan(4.0), {});
  const auto rc = cool.solve();
  const auto rh = hot.solve();
  ASSERT_TRUE(rc.converged && rh.converged);
  EXPECT_GT(rh.max_temperature, rc.max_temperature);
  EXPECT_GT(rh.total_leakage, rc.total_leakage);
}

TEST(Cosim, DampingChangesIterationsNotTheAnswer) {
  CosimOptions fast;
  fast.damping = 1.0;
  CosimOptions slow;
  slow.damping = 0.3;
  ElectroThermalSolver a(tech(), small_plan(), fast);
  ElectroThermalSolver b(tech(), small_plan(), slow);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_NEAR(ra.max_temperature, rb.max_temperature, 0.05);
  EXPECT_LT(ra.iterations, rb.iterations);
}

TEST(Cosim, FdmBackendAgreesWithAnalytic) {
  CosimOptions ana;
  CosimOptions fdm;
  fdm.backend = ThermalBackend::Fdm;
  fdm.fdm.nx = 24;
  fdm.fdm.ny = 24;
  fdm.fdm.nz = 16;
  const auto fp = small_plan(3.0);
  ElectroThermalSolver a(tech(), fp, ana);
  ElectroThermalSolver f(tech(), fp, fdm);
  const auto ra = a.solve();
  const auto rf = f.solve();
  ASSERT_TRUE(ra.converged && rf.converged);
  const double rise_a = ra.max_temperature - die_1mm().t_sink;
  const double rise_f = rf.max_temperature - die_1mm().t_sink;
  EXPECT_NEAR(rise_a / rise_f, 1.0, 0.25);
  EXPECT_NEAR(ra.total_leakage / rf.total_leakage, 1.0, 0.25);
}

TEST(Cosim, RunawayIsDetectedNotHidden) {
  // An absurd leakage population turns the fixed point unstable: the solver
  // must flag runaway (or at minimum fail to converge) rather than return a
  // bogus steady state.
  Rng rng(4);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 40.0;
  cfg.gates_per_mm2 = 5e8;  // ~1000x a sane density
  auto fp = floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  CosimOptions opts;
  opts.runaway_rise_limit = 200.0;
  ElectroThermalSolver solver(tech(), fp, opts);
  const auto r = solver.solve();
  EXPECT_TRUE(r.runaway || !r.converged);
}

TEST(Cosim, BodyBiasLowersLeakage) {
  CosimOptions base;
  CosimOptions rbb;
  rbb.vb = -0.3;
  const auto fp = small_plan(2.0);
  ElectroThermalSolver a(tech(), fp, base);
  ElectroThermalSolver b(tech(), fp, rbb);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_LT(rb.total_leakage, ra.total_leakage);
  EXPECT_LT(rb.max_temperature, ra.max_temperature + 1e-9);
}

TEST(Cosim, RejectsBadConfiguration) {
  const auto fp = small_plan();
  CosimOptions bad;
  bad.damping = 0.0;
  EXPECT_THROW(ElectroThermalSolver(tech(), fp, bad), PreconditionError);
  floorplan::Floorplan empty(die_1mm());
  EXPECT_THROW(ElectroThermalSolver(tech(), empty, {}), PreconditionError);
}

TEST(Cosim, TotalsAreSumsOverBlocks) {
  ElectroThermalSolver solver(tech(), small_plan(), {});
  const auto r = solver.solve();
  double dyn = 0.0, leak = 0.0;
  for (const auto& b : r.blocks) {
    dyn += b.p_dynamic;
    leak += b.p_leakage;
  }
  EXPECT_NEAR(r.total_dynamic, dyn, 1e-12);
  EXPECT_NEAR(r.total_leakage, leak, 1e-12);
  EXPECT_NEAR(r.total_power(), dyn + leak, 1e-12);
}


TEST(Cosim, PackageResistanceRaisesEveryBlockUniformly) {
  CosimOptions bare;
  CosimOptions packaged;
  packaged.r_package = 0.5;  // K/W
  const auto fp = small_plan(2.0);
  ElectroThermalSolver a(tech(), fp, bare);
  ElectroThermalSolver b(tech(), fp, packaged);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_TRUE(ra.converged && rb.converged);
  // Expected extra rise ~ R_pkg * P_total, identical for every block.
  const double extra = packaged.r_package * rb.total_power();
  for (std::size_t i = 0; i < ra.blocks.size(); ++i) {
    EXPECT_NEAR(rb.blocks[i].temperature - ra.blocks[i].temperature, extra,
                0.15 * extra);
  }
  EXPECT_GT(rb.total_leakage, ra.total_leakage);  // hotter die leaks more
}

TEST(Cosim, BoundaryFoldResistanceSumsPackageAndStackNetwork) {
  CosimOptions opts;
  EXPECT_DOUBLE_EQ(boundary_fold_resistance(opts), 0.0);
  opts.r_package = 0.3;
  EXPECT_DOUBLE_EQ(boundary_fold_resistance(opts), 0.3);
  // An isothermal stack adds nothing; an RC-network boundary adds its DC
  // resistance on top of the scalar option.
  opts.stack = thermal::DieStack::single(die_1mm());
  EXPECT_DOUBLE_EQ(boundary_fold_resistance(opts), 0.3);
  thermal::BoundarySpec rc;
  rc.kind = thermal::BoundaryKind::RcNetwork;
  rc.rc.emplace(std::vector<thermal::ThermalRc>{{0.5, 0.1}, {0.3, 2.0}});
  opts.stack = thermal::DieStack(
      {{"die", die_1mm().thickness, die_1mm().k_si, die_1mm().cv_si}}, rc);
  EXPECT_DOUBLE_EQ(boundary_fold_resistance(opts), 0.3 + 0.8);
}

TEST(Cosim, RcBoundaryStackIsTheScalarRPackageAtSteadyState) {
  // One r_package semantics: a trivial stack closed by an RC network with
  // total resistance R must reproduce the scalar r_package = R run exactly
  // (same conduction operator, same fold — bitwise, not approximately).
  const auto fp = small_plan(2.0);
  CosimOptions scalar;
  scalar.r_package = 0.8;
  CosimOptions stacked;
  thermal::BoundarySpec rc;
  rc.kind = thermal::BoundaryKind::RcNetwork;
  rc.rc.emplace(std::vector<thermal::ThermalRc>{{0.5, 0.1}, {0.3, 2.0}});
  stacked.stack = thermal::DieStack(
      {{"die", die_1mm().thickness, die_1mm().k_si, die_1mm().cv_si}}, rc);
  ElectroThermalSolver a(tech(), fp, scalar);
  ElectroThermalSolver b(tech(), fp, stacked);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_TRUE(ra.converged && rb.converged);
  ASSERT_EQ(ra.blocks.size(), rb.blocks.size());
  for (std::size_t i = 0; i < ra.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(rb.blocks[i].temperature, ra.blocks[i].temperature);
    EXPECT_DOUBLE_EQ(rb.blocks[i].p_leakage, ra.blocks[i].p_leakage);
  }
}

TEST(Cosim, DenseAndMatrixFreeFoldTheSameBoundaryResistance) {
  // The satellite contract for the unified boundary fold: with r_package AND
  // an RC-network stack in play, the dense build (fold inside the matrix)
  // and the matrix-free path (fold applied per Picard iteration) must
  // realize identical influence entries and agree on the solve.
  const auto fp = small_plan(2.0);
  CosimOptions base;
  base.backend = ThermalBackend::Spectral;
  base.r_package = 0.4;
  thermal::BoundarySpec rc;
  rc.kind = thermal::BoundaryKind::RcNetwork;
  rc.rc.emplace(std::vector<thermal::ThermalRc>{{0.6, 0.05}});
  base.stack = thermal::DieStack(
      {{"die", die_1mm().thickness, die_1mm().k_si, die_1mm().cv_si}}, rc);

  CosimOptions dense = base;
  dense.influence = InfluenceMode::Dense;
  CosimOptions free = base;
  free.influence = InfluenceMode::MatrixFree;

  ElectroThermalSolver d(tech(), fp, dense);
  ElectroThermalSolver f(tech(), fp, free);
  const auto rd = d.solve();
  const auto rf = f.solve();
  ASSERT_TRUE(rd.converged && rf.converged);
  EXPECT_FALSE(d.matrix_free());
  EXPECT_TRUE(f.matrix_free());

  // The lazily realised dense view of the matrix-free solver goes through
  // the same boundary_fold_resistance helper: identical entries.
  const auto& md = d.influence_matrix();
  const auto& mf = f.influence_matrix();
  ASSERT_EQ(md.size(), mf.size());
  for (std::size_t i = 0; i < md.size(); ++i) {
    for (std::size_t j = 0; j < md.size(); ++j) {
      EXPECT_DOUBLE_EQ(mf.at(i, j), md.at(i, j)) << "entry (" << i << ", " << j << ")";
    }
  }
  for (std::size_t i = 0; i < rd.blocks.size(); ++i) {
    EXPECT_NEAR(rf.blocks[i].temperature, rd.blocks[i].temperature, 1e-9);
  }
}

}  // namespace
}  // namespace ptherm::core
