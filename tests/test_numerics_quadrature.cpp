// Unit tests for numerics/quadrature.hpp.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "numerics/quadrature.hpp"

namespace ptherm::numerics {
namespace {

TEST(Integrate, PolynomialIsExactForSimpson) {
  auto f = [](double x) { return 3.0 * x * x; };  // integral over [0,2] = 8
  const auto r = integrate(f, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 8.0, 1e-12);
}

TEST(Integrate, EmptyIntervalIsZero) {
  auto f = [](double) { return 1.0; };
  EXPECT_DOUBLE_EQ(integrate(f, 1.0, 1.0).value, 0.0);
}

TEST(Integrate, SineOverPi) {
  const auto r = integrate([](double x) { return std::sin(x); }, 0.0, std::numbers::pi);
  EXPECT_NEAR(r.value, 2.0, 1e-9);
}

TEST(Integrate, HandlesSharplyPeakedIntegrand) {
  // Narrow Gaussian: adaptive subdivision must find the peak.
  auto f = [](double x) { return std::exp(-x * x / (2.0 * 1e-4)); };
  const auto r = integrate(f, -1.0, 1.0);
  const double expected = std::sqrt(2.0 * std::numbers::pi * 1e-4);
  EXPECT_NEAR(r.value, expected, 1e-6 * expected + 1e-12);
}

TEST(Integrate, NearSingularEdge) {
  // 1/sqrt(x) floored near the origin: integrable singularity at the edge;
  // integral over [0,1] is 2 up to the O(1e-6) floor correction. The initial
  // Simpson estimate is wildly off, so drive the adaptivity with an absolute
  // tolerance rather than one relative to that estimate.
  auto f = [](double x) { return 1.0 / std::sqrt(std::max(x, 1e-12)); };
  QuadratureOptions opts;
  opts.abs_tol = 1e-6;
  opts.rel_tol = 1e-12;
  opts.max_depth = 48;
  const auto r = integrate(f, 0.0, 1.0, opts);
  EXPECT_NEAR(r.value, 2.0, 2e-3);
}

TEST(Integrate2d, SeparableProduct) {
  // x*y over [0,1]^2 = 1/4.
  const auto r = integrate2d([](double x, double y) { return x * y; }, 0, 1, 0, 1);
  EXPECT_NEAR(r.value, 0.25, 1e-10);
}

TEST(Integrate2d, ThermalKernelOverUnitSquare) {
  // Known value: integral of 1/r over [-1/2,1/2]^2 centred at the origin is
  // 4*asinh(1) = 3.52549435...
  auto f = [](double x, double y) {
    return 1.0 / std::max(std::sqrt(x * x + y * y), 1e-14);
  };
  const auto r = integrate2d(f, -0.5, 0.5, -0.5, 0.5);
  EXPECT_NEAR(r.value, 4.0 * std::asinh(1.0), 5e-3);
}

TEST(GaussLegendre, ExactForLowPolynomials) {
  // Order-4 Gauss is exact through degree 7.
  auto f = [](double x) { return std::pow(x, 7) + x * x; };
  const double got = gauss_legendre(f, 0.0, 1.0, 4);
  EXPECT_NEAR(got, 1.0 / 8.0 + 1.0 / 3.0, 1e-12);
}

TEST(GaussLegendre, HigherOrderImprovesOscillatory) {
  auto f = [](double x) { return std::cos(10.0 * x); };
  const double exact = std::sin(10.0) / 10.0;
  const double e4 = std::abs(gauss_legendre(f, 0.0, 1.0, 4) - exact);
  const double e16 = std::abs(gauss_legendre(f, 0.0, 1.0, 16) - exact);
  EXPECT_LT(e16, e4);
  EXPECT_NEAR(gauss_legendre(f, 0.0, 1.0, 16), exact, 1e-10);
}

TEST(GaussLegendre, RejectsUnsupportedOrder) {
  auto f = [](double) { return 1.0; };
  EXPECT_THROW(gauss_legendre(f, 0, 1, 1), PreconditionError);
  EXPECT_THROW(gauss_legendre(f, 0, 1, 17), PreconditionError);
}

// Property sweep: integrate x^n exactly for a range of n.
class MonomialSweep : public ::testing::TestWithParam<int> {};

TEST_P(MonomialSweep, AdaptiveSimpsonMatchesClosedForm) {
  const int n = GetParam();
  auto f = [&](double x) { return std::pow(x, n); };
  const auto r = integrate(f, 0.0, 1.0);
  EXPECT_NEAR(r.value, 1.0 / (n + 1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MonomialSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace ptherm::numerics
