// Tests for the analytic thermal kernels (paper Eqs. 16-20): closed forms
// against quadrature, asymptotics, and the min() estimator's properties.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "numerics/quadrature.hpp"
#include "thermal/analytic.hpp"

namespace ptherm::thermal {
namespace {

constexpr double kK = 148.0;

TEST(PointSource, InverseDistanceLaw) {
  const double t1 = point_source_rise(kK, 1.0, 1e-3);
  const double t2 = point_source_rise(kK, 1.0, 2e-3);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-12);
  EXPECT_NEAR(t1, 1.0 / (2.0 * std::numbers::pi * kK * 1e-3), 1e-15);
}

TEST(RectCenter, MatchesClosedCornerFormAtCenter) {
  const HeatSource src{0.0, 0.0, 4e-6, 1e-6, 1e-3};
  const double t_center = rect_center_rise(kK, src.power, src.w, src.l);
  const double t_exact = rect_rise_exact(kK, src, 0.0, 0.0);
  EXPECT_NEAR(t_center / t_exact, 1.0, 1e-12);
}

TEST(RectCenter, SymmetricInWAndL) {
  EXPECT_NEAR(rect_center_rise(kK, 1e-3, 4e-6, 1e-6),
              rect_center_rise(kK, 1e-3, 1e-6, 4e-6), 1e-15);
}

TEST(RectCenter, SquareSourceKnownValue) {
  // For a square (W = L): T0 = P/(pi k W) * 2 asinh(1).
  const double w = 2e-6;
  const double expected = 1e-3 / (std::numbers::pi * kK * w) * 2.0 * std::asinh(1.0);
  EXPECT_NEAR(rect_center_rise(kK, 1e-3, w, w), expected, 1e-12);
}

TEST(RectExact, MatchesQuadratureEverywhere) {
  const HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};  // the Fig. 5 device
  const struct {
    double x, y;
  } points[] = {{0.0, 0.0},        {0.2e-6, 0.0},   {0.6e-6, 0.05e-6},
                {1.5e-6, 0.3e-6},  {0.0, 2e-6},     {-3e-6, -1e-6},
                {10e-6, 10e-6}};
  for (const auto& p : points) {
    const double exact = rect_rise_exact(kK, src, p.x, p.y);
    const double quad = rect_rise_quadrature(kK, src, p.x, p.y);
    EXPECT_NEAR(exact / quad, 1.0, 2e-3) << "at (" << p.x << ", " << p.y << ")";
  }
}

TEST(RectExact, ReducesToPointSourceFarAway) {
  const HeatSource src{0.0, 0.0, 1e-6, 0.5e-6, 1e-3};
  const double r = 100e-6;  // r >> W, L
  const double exact = rect_rise_exact(kK, src, r, 0.0);
  const double point = point_source_rise(kK, src.power, r);
  EXPECT_NEAR(exact / point, 1.0, 1e-3);
}

TEST(RectExact, MonotoneDecayAlongAxis) {
  const HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  double prev = 1e300;
  for (double x = 0.0; x < 5e-6; x += 0.1e-6) {
    const double t = rect_rise_exact(kK, src, x, 0.0);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(LineSource, MatchesPointSourceFarAway) {
  const double w = 1e-6;
  const double r = 200e-6;
  const double line = line_source_rise(kK, 1e-3, w, 0.0, r);
  const double point = point_source_rise(kK, 1e-3, r);
  EXPECT_NEAR(line / point, 1.0, 1e-4);
}

TEST(LineSource, DivergesOnSegment) {
  // On the segment itself Eq. (19) blows up (logarithmically, so the IEEE
  // floor keeps it finite but far above any physical rise); that is exactly
  // why Eq. (20) clamps with min(T0, .).
  const double on_segment = line_source_rise(kK, 1e-3, 1e-6, 0.0, 0.0);
  const double t0_equivalent = rect_center_rise(kK, 1e-3, 1e-6, 0.1e-6);
  EXPECT_GT(on_segment, 2.0 * t0_equivalent);
}

TEST(LineSource, SymmetricInY) {
  const double a = line_source_rise(kK, 1e-3, 1e-6, 0.3e-6, 0.8e-6);
  const double b = line_source_rise(kK, 1e-3, 1e-6, 0.3e-6, -0.8e-6);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RectMin, NeverExceedsEitherBound) {
  const HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  const double t0 = rect_center_rise(kK, src.power, src.w, src.l);
  for (double x = -2e-6; x <= 2e-6; x += 0.37e-6) {
    for (double y = -2e-6; y <= 2e-6; y += 0.41e-6) {
      const double t = rect_rise_min(kK, src, x, y);
      EXPECT_LE(t, t0 + 1e-15);
      EXPECT_GT(t, 0.0);
    }
  }
}

TEST(RectMin, SaturatesToT0AtTheSource) {
  const HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  const double t0 = rect_center_rise(kK, src.power, src.w, src.l);
  EXPECT_DOUBLE_EQ(rect_rise_min(kK, src, 0.0, 0.0), t0);
}

TEST(RectMin, Fig5AccuracyBand) {
  // The Fig. 5 claim: min(T0, Tline) approximates the exact profile well
  // enough "for the estimation of the thermal profile for large ICs". The
  // estimator is exact at the centre and in the far field; its worst error
  // sits right at the source edge, where min() clips the diverging line
  // kernel at T0 while the exact field already fell to ~T0/2. Quantified:
  // < 80% inside the edge zone (|x| < 1.2 um), < 25% beyond it.
  const HeatSource src{0.0, 0.0, 1e-6, 0.1e-6, 10e-3};
  for (double x = 0.0; x <= 6e-6; x += 0.05e-6) {
    const double approx = rect_rise_min(kK, src, x, 0.0);
    const double exact = rect_rise_exact(kK, src, x, 0.0);
    const double rel = std::abs(approx - exact) / exact;
    const double band = (x < 1.2e-6) ? 0.80 : 0.25;
    EXPECT_LT(rel, band) << "x = " << x;
  }
  // And it is essentially exact at the centre and far away.
  EXPECT_NEAR(rect_rise_min(kK, src, 0.0, 0.0) / rect_rise_exact(kK, src, 0.0, 0.0), 1.0,
              0.02);
  EXPECT_NEAR(rect_rise_min(kK, src, 5e-6, 0.0) / rect_rise_exact(kK, src, 5e-6, 0.0), 1.0,
              0.02);
}

TEST(RectMin, OrientsLineAlongLongerSide) {
  // A tall skinny source must be treated as a line along y: the profile along
  // y (through the length) decays slower than across it.
  const HeatSource tall{0.0, 0.0, 0.1e-6, 1e-6, 1e-3};
  const double along = rect_rise_min(kK, tall, 0.0, 3e-6);
  const double across = rect_rise_min(kK, tall, 3e-6, 0.0);
  const double along_exact = rect_rise_exact(kK, tall, 0.0, 3e-6);
  const double across_exact = rect_rise_exact(kK, tall, 3e-6, 0.0);
  // Exact profiles at equal distance are nearly equal far away; the min
  // estimator must not be wildly asymmetric either.
  EXPECT_NEAR(along / along_exact, 1.0, 0.2);
  EXPECT_NEAR(across / across_exact, 1.0, 0.2);
}

TEST(RectDepth, ReducesToSurfaceFormAtZeroDepth) {
  const HeatSource src{0.0, 0.0, 2e-6, 1e-6, 1e-3};
  EXPECT_DOUBLE_EQ(rect_rise_exact_at_depth(kK, src, 0.3e-6, -0.2e-6, 0.0),
                   rect_rise_exact(kK, src, 0.3e-6, -0.2e-6));
}

TEST(RectDepth, MatchesQuadratureOfBuriedKernel) {
  const HeatSource src{0.0, 0.0, 2e-6, 1e-6, 1e-3};
  const struct {
    double x, y, z;
  } points[] = {{0.0, 0.0, 0.5e-6}, {1.5e-6, 0.0, 0.3e-6}, {0.0, 0.0, 3e-6},
                {-2e-6, 1e-6, 1e-6}};
  for (const auto& p : points) {
    auto integrand = [&](double x0, double y0) {
      const double dx = p.x - x0;
      const double dy = p.y - y0;
      return 1.0 / std::sqrt(dx * dx + dy * dy + p.z * p.z);
    };
    numerics::QuadratureOptions qopts;
    qopts.rel_tol = 1e-10;
    const auto q = numerics::integrate2d(integrand, -1e-6, 1e-6, -0.5e-6, 0.5e-6, qopts);
    const double expected =
        src.power / (2.0 * std::numbers::pi * kK * src.w * src.l) * q.value;
    const double got = rect_rise_exact_at_depth(kK, src, p.x, p.y, p.z);
    // The bound is set by the adaptive quadrature, not the closed form.
    EXPECT_NEAR(got / expected, 1.0, 1e-4)
        << "at (" << p.x << ", " << p.y << ", " << p.z << ")";
  }
}

TEST(RectDepth, DecaysMonotonicallyWithDepth) {
  const HeatSource src{0.0, 0.0, 2e-6, 1e-6, 1e-3};
  double prev = 1e300;
  for (double z = 0.0; z <= 5e-6; z += 0.25e-6) {
    const double t = rect_rise_exact_at_depth(kK, src, 0.0, 0.0, z);
    EXPECT_LT(t, prev);
    EXPECT_GT(t, 0.0);
    prev = t;
  }
}

TEST(RectDepth, FarDepthIsPointSource) {
  const HeatSource src{0.0, 0.0, 2e-6, 1e-6, 1e-3};
  const double z = 100e-6;
  EXPECT_NEAR(rect_rise_exact_at_depth(kK, src, 0.0, 0.0, z) /
                  point_source_rise(kK, src.power, z),
              1.0, 1e-3);
}

TEST(RectMin, PowerLinearity) {
  const HeatSource src1{0.0, 0.0, 1e-6, 0.5e-6, 1e-3};
  HeatSource src2 = src1;
  src2.power = 2e-3;
  EXPECT_NEAR(rect_rise_min(kK, src2, 2e-6, 1e-6),
              2.0 * rect_rise_min(kK, src1, 2e-6, 1e-6), 1e-15);
}

}  // namespace
}  // namespace ptherm::thermal
