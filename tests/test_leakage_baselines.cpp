// Tests for the Chen-98 and Narendra-04 baseline reconstructions: both must
// behave like credible prior art — correct trends, but less accurate against
// the exact solver than the paper's model (that is Fig. 8's story).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/baselines.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"

namespace ptherm::leakage {
namespace {

using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

TEST(Chen98, SingleDeviceMatchesOffCurrent) {
  const double i = chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 1, 300.0);
  const double expected = device::off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 300.0);
  EXPECT_DOUBLE_EQ(i, expected);
}

TEST(Chen98, ReproducesStackEffectDirection) {
  double prev = 1e9;
  for (int n = 1; n <= 5; ++n) {
    const double i = chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, n, 300.0);
    EXPECT_LT(i, prev) << "n = " << n;
    prev = i;
  }
}

TEST(Chen98, WithinBallparkOfExact) {
  // Still a sensible model: right order of magnitude for every depth.
  for (int n = 2; n <= 4; ++n) {
    const std::vector<double> widths(n, 1e-6);
    const auto exact = solve_exact_chain(tech(), MosType::Nmos, widths, 0.12e-6, 300.0);
    const double i = chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, n, 300.0);
    EXPECT_GT(i / exact.current, 0.3) << "n = " << n;
    EXPECT_LT(i / exact.current, 3.5) << "n = " << n;
  }
}

TEST(Chen98, LessAccurateThanProposedModel) {
  // Fig. 8's message. Compare mean relative error across depths 2..4.
  double err_model = 0.0;
  double err_chen = 0.0;
  for (int n = 2; n <= 4; ++n) {
    const std::vector<double> widths(n, 1e-6);
    const auto exact = solve_exact_chain(tech(), MosType::Nmos, widths, 0.12e-6, 300.0);
    const double i_model =
        chain_off_current(tech(), MosType::Nmos, widths, 0.12e-6, 300.0);
    const double i_chen =
        chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, n, 300.0);
    err_model += std::abs(i_model / exact.current - 1.0);
    err_chen += std::abs(i_chen / exact.current - 1.0);
  }
  EXPECT_LT(err_model, err_chen);
}

TEST(Chen98, ChainVariantHandlesMixedWidths) {
  const std::vector<double> widths = {0.3e-6, 1.2e-6, 0.6e-6};
  const double i = chen98_chain_off_current(tech(), MosType::Nmos, widths, 0.12e-6, 300.0);
  EXPECT_GT(i, 0.0);
  EXPECT_THROW(chen98_chain_off_current(tech(), MosType::Nmos, {}, 0.12e-6, 300.0),
               PreconditionError);
}

TEST(Narendra04, SingleAndDoubleStackOnly) {
  const double i1 =
      narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 1, 300.0);
  const double i2 =
      narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, 300.0);
  EXPECT_GT(i1, i2);
  EXPECT_THROW(narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 3, 300.0),
               PreconditionError);
}

TEST(Narendra04, TwoStackWithinBallparkOfExact) {
  const std::vector<double> widths(2, 1e-6);
  const auto exact = solve_exact_chain(tech(), MosType::Nmos, widths, 0.12e-6, 300.0);
  const double i =
      narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, 300.0);
  EXPECT_GT(i / exact.current, 0.5);
  EXPECT_LT(i / exact.current, 2.0);
}

TEST(Baselines, AllModelsAgreeOnTemperatureDirection) {
  for (double temp : {300.0, 350.0, 400.0}) {
    const double chen =
        chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, temp);
    const double nar =
        narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, temp);
    const double model = stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, temp);
    EXPECT_GT(chen, 0.0);
    EXPECT_GT(nar, 0.0);
    EXPECT_GT(model, 0.0);
  }
  // And the ratios hot/cold are all strongly > 1.
  auto ratio = [&](auto fn) {
    return fn(400.0) / fn(300.0);
  };
  auto chen = [&](double t) {
    return chen98_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, t);
  };
  auto nar = [&](double t) {
    return narendra04_stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 2, t);
  };
  EXPECT_GT(ratio(chen), 10.0);
  EXPECT_GT(ratio(nar), 10.0);
}

}  // namespace
}  // namespace ptherm::leakage
