// Tests for floorplan geometry, block leakage aggregation, and the synthetic
// power-map generators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "floorplan/floorplan.hpp"
#include "floorplan/generators.hpp"
#include "netlist/cells.hpp"

namespace ptherm::floorplan {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  return d;
}

TEST(Rect, GeometryHelpers) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.cx(), 2.5);
  EXPECT_DOUBLE_EQ(r.cy(), 4.0);
  EXPECT_TRUE(r.contains(1.0, 2.0));
  EXPECT_FALSE(r.contains(4.0, 2.0));  // half-open
  EXPECT_TRUE(r.overlaps({3.9, 5.9, 1.0, 1.0}));
  EXPECT_FALSE(r.overlaps({4.0, 2.0, 1.0, 1.0}));  // touching edges don't overlap
}

TEST(Floorplan, RejectsBlocksOutsideDieOrOverlapping) {
  Floorplan fp(die_1mm());
  Block a;
  a.name = "a";
  a.rect = {0.1e-3, 0.1e-3, 0.3e-3, 0.3e-3};
  fp.add_block(a);
  Block outside;
  outside.name = "out";
  outside.rect = {0.9e-3, 0.9e-3, 0.3e-3, 0.3e-3};
  EXPECT_THROW(fp.add_block(outside), PreconditionError);
  Block overlapping;
  overlapping.name = "ovl";
  overlapping.rect = {0.2e-3, 0.2e-3, 0.3e-3, 0.3e-3};
  EXPECT_THROW(fp.add_block(overlapping), PreconditionError);
  Block degenerate;
  degenerate.name = "deg";
  degenerate.rect = {0.5e-3, 0.5e-3, 0.0, 0.1e-3};
  EXPECT_THROW(fp.add_block(degenerate), PreconditionError);
}

TEST(Block, LeakageScalesWithGateCount) {
  const netlist::CellLibrary lib(tech());
  Block b;
  b.name = "b";
  b.rect = {0.0, 0.0, 0.1e-3, 0.1e-3};
  b.gate_groups.push_back({lib.find("nand2"), {false, false}, 100.0});
  const double i100 = b.leakage_current(tech(), 300.0);
  b.gate_groups[0].count = 200.0;
  const double i200 = b.leakage_current(tech(), 300.0);
  EXPECT_NEAR(i200 / i100, 2.0, 1e-12);
  EXPECT_GT(i100, 0.0);
}

TEST(Block, LeakageGrowsExponentiallyWithTemperature) {
  const netlist::CellLibrary lib(tech());
  Block b;
  b.name = "b";
  b.rect = {0.0, 0.0, 0.1e-3, 0.1e-3};
  b.gate_groups.push_back({lib.find("inv"), {false}, 1000.0});
  const double cold = b.leakage_power(tech(), 300.0);
  const double hot = b.leakage_power(tech(), 380.0);
  EXPECT_GT(hot / cold, 5.0);
}

TEST(Block, TotalPowerSumsComponents) {
  const netlist::CellLibrary lib(tech());
  Block b;
  b.name = "b";
  b.rect = {0.0, 0.0, 0.1e-3, 0.1e-3};
  b.p_dynamic = 0.5;
  b.gate_groups.push_back({lib.find("inv"), {true}, 500.0});
  EXPECT_DOUBLE_EQ(b.total_power(tech(), 320.0),
                   0.5 + b.leakage_power(tech(), 320.0));
}

TEST(Floorplan, HeatSourcesCarryBlockGeometryAndPower) {
  Floorplan fp(die_1mm());
  Block b;
  b.name = "b";
  b.rect = {0.2e-3, 0.3e-3, 0.1e-3, 0.2e-3};
  b.p_dynamic = 0.7;
  fp.add_block(b);
  const auto sources = fp.heat_sources(tech());
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_DOUBLE_EQ(sources[0].cx, 0.25e-3);
  EXPECT_DOUBLE_EQ(sources[0].cy, 0.4e-3);
  EXPECT_DOUBLE_EQ(sources[0].w, 0.1e-3);
  EXPECT_DOUBLE_EQ(sources[0].l, 0.2e-3);
  EXPECT_DOUBLE_EQ(sources[0].power, 0.7);  // dynamic only without temps
}

TEST(Floorplan, HeatSourcesWithTemperaturesIncludeLeakage) {
  const netlist::CellLibrary lib(tech());
  Floorplan fp(die_1mm());
  Block b;
  b.name = "b";
  b.rect = {0.2e-3, 0.3e-3, 0.1e-3, 0.2e-3};
  b.p_dynamic = 0.7;
  b.gate_groups.push_back({lib.find("inv"), {false}, 1e6});
  fp.add_block(b);
  const auto sources = fp.heat_sources(tech(), {350.0});
  EXPECT_GT(sources[0].power, 0.7);
  EXPECT_THROW(fp.heat_sources(tech(), {350.0, 360.0}), PreconditionError);
}

TEST(Generators, UniformGridTilesAreDisjointAndOnBudget) {
  Rng rng(3);
  GeneratorConfig cfg;
  cfg.total_dynamic_power = 12.0;
  const auto fp = make_uniform_grid(tech(), die_1mm(), 4, 3, cfg, rng);
  EXPECT_EQ(fp.blocks().size(), 12u);
  EXPECT_NEAR(fp.total_dynamic_power(), 12.0, 1e-9);
  for (const auto& b : fp.blocks()) {
    EXPECT_FALSE(b.gate_groups.empty());
  }
}

TEST(Generators, HotspotMapPlacesRequestedHotspots) {
  Rng rng(17);
  GeneratorConfig cfg;
  cfg.total_dynamic_power = 10.0;
  const auto fp = make_hotspot_map(tech(), die_1mm(), 3, 0.5, cfg, rng);
  int hot = 0;
  for (const auto& b : fp.blocks()) {
    if (b.name.rfind("hotspot_", 0) == 0) ++hot;
  }
  EXPECT_EQ(hot, 3);
  EXPECT_NEAR(fp.total_dynamic_power(), 10.0, 1e-9);
  EXPECT_THROW(make_hotspot_map(tech(), die_1mm(), 3, 1.5, cfg, rng), PreconditionError);
}

TEST(Generators, CheckerboardAlternatesActivity) {
  Rng rng(5);
  GeneratorConfig cfg;
  cfg.total_dynamic_power = 8.0;
  const auto fp = make_checkerboard(tech(), die_1mm(), 4, 4, cfg, rng);
  ASSERT_EQ(fp.blocks().size(), 16u);
  int active = 0, idle = 0;
  for (const auto& b : fp.blocks()) {
    if (b.p_dynamic > 0.0) ++active;
    else ++idle;
  }
  EXPECT_EQ(active, 8);
  EXPECT_EQ(idle, 8);
  EXPECT_NEAR(fp.total_dynamic_power(), 8.0, 1e-9);
  // Idle tiles still have a leakage population.
  for (const auto& b : fp.blocks()) EXPECT_FALSE(b.gate_groups.empty());
}

TEST(Generators, ThreeBlockIcMatchesFig6Setup) {
  const auto fp = make_three_block_ic(tech(), die_1mm(), 0.3, 0.2, 0.1);
  ASSERT_EQ(fp.blocks().size(), 3u);
  EXPECT_NEAR(fp.total_dynamic_power(), 0.6, 1e-12);
}

TEST(Generators, DeterministicForFixedSeed) {
  GeneratorConfig cfg;
  Rng r1(42), r2(42);
  const auto a = make_hotspot_map(tech(), die_1mm(), 2, 0.4, cfg, r1);
  const auto b = make_hotspot_map(tech(), die_1mm(), 2, 0.4, cfg, r2);
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.blocks()[i].rect.x, b.blocks()[i].rect.x);
    EXPECT_DOUBLE_EQ(a.blocks()[i].rect.y, b.blocks()[i].rect.y);
  }
}

}  // namespace
}  // namespace ptherm::floorplan
