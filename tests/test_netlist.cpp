// Tests for the standard-cell library and netlist-level leakage statistics.
// The key property test: every cell in the library must be valid static CMOS
// for every input vector (exactly one network ON).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "leakage/gate.hpp"
#include "netlist/cells.hpp"
#include "netlist/netlist.hpp"

namespace ptherm::netlist {
namespace {

using device::MosType;
using device::Technology;
using leakage::gate_static;
using leakage::InputVector;
using leakage::vector_from_index;

Technology tech() { return Technology::cmos012(); }

TEST(CellSizing, BalancedDriveRatio) {
  const auto s = CellSizing::for_tech(tech());
  EXPECT_GT(s.wp_unit, s.wn_unit);  // pMOS weaker per um -> wider
  EXPECT_NEAR(s.wp_unit / s.wn_unit, tech().kp_n / tech().kp_p, 1e-12);
  EXPECT_DOUBLE_EQ(s.length, tech().l_drawn);
}

TEST(CellLibrary, ContainsTheConventionalSet) {
  const CellLibrary lib(tech());
  for (const char* name : {"inv", "nand2", "nand3", "nand4", "nor2", "nor3", "nor4",
                           "aoi21", "aoi22", "oai21", "oai22"}) {
    EXPECT_NO_THROW((void)lib.find(name)) << name;
  }
  EXPECT_THROW((void)lib.find("xor2"), PreconditionError);
  EXPECT_EQ(lib.names().size(), 11u);
}

// The big property test: every cell x every vector is valid static CMOS.
class EveryCellEveryVector : public ::testing::TestWithParam<const char*> {};

TEST_P(EveryCellEveryVector, ExactlyOneNetworkConducts) {
  const CellLibrary lib(tech());
  const auto cell = lib.find(GetParam());
  const int k = cell->input_count();
  for (unsigned v = 0; v < (1u << k); ++v) {
    const InputVector inputs = vector_from_index(v, k);
    // gate_static throws on contention or floating output.
    const auto r = gate_static(tech(), *cell, inputs, 300.0);
    EXPECT_GT(r.i_off, 0.0);
    EXPECT_GT(r.w_eff, 0.0);
  }
}

TEST_P(EveryCellEveryVector, LogicFunctionMatchesName) {
  const CellLibrary lib(tech());
  const auto cell = lib.find(GetParam());
  const std::string name = GetParam();
  const int k = cell->input_count();
  for (unsigned v = 0; v < (1u << k); ++v) {
    const InputVector in = vector_from_index(v, k);
    const bool out = gate_static(tech(), *cell, in, 300.0).output_high;
    bool expected = false;
    if (name == "inv") expected = !in[0];
    else if (name.rfind("nand", 0) == 0) {
      expected = false;
      for (int b = 0; b < k; ++b) expected |= !in[b];
    } else if (name.rfind("nor", 0) == 0) {
      expected = true;
      for (int b = 0; b < k; ++b) expected &= !in[b];
    } else if (name == "aoi21") expected = !((in[0] && in[1]) || in[2]);
    else if (name == "aoi22") expected = !((in[0] && in[1]) || (in[2] && in[3]));
    else if (name == "oai21") expected = !((in[0] || in[1]) && in[2]);
    else if (name == "oai22") expected = !((in[0] || in[1]) && (in[2] || in[3]));
    EXPECT_EQ(out, expected) << name << " vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, EveryCellEveryVector,
                         ::testing::Values("inv", "nand2", "nand3", "nand4", "nor2", "nor3",
                                           "nor4", "aoi21", "aoi22", "oai21", "oai22"));

TEST(CellLeakage, NandAllZerosIsTheLowLeakVector) {
  const CellLibrary lib(tech());
  for (const char* name : {"nand2", "nand3", "nand4"}) {
    const auto cell = lib.find(name);
    const auto s = leakage::gate_leakage_summary(tech(), *cell, 300.0);
    const InputVector zeros(static_cast<std::size_t>(cell->input_count()), false);
    EXPECT_EQ(s.min_vector, zeros) << name;
  }
}

TEST(CellLeakage, DeeperStacksLeakLess) {
  const CellLibrary lib(tech());
  const auto i2 = gate_static(tech(), *lib.find("nand2"), {false, false}, 300.0).i_off;
  const auto i3 =
      gate_static(tech(), *lib.find("nand3"), {false, false, false}, 300.0).i_off;
  const auto i4 =
      gate_static(tech(), *lib.find("nand4"), {false, false, false, false}, 300.0).i_off;
  // Per-device widths grow with fan-in (sizing), yet the stack effect wins.
  EXPECT_LT(i3, 2.0 * i2);
  EXPECT_LT(i4, 2.0 * i3);
}

TEST(Netlist, AddAndCount) {
  const CellLibrary lib(tech());
  Netlist nl;
  nl.add_instance("u0", lib.find("inv"), {false});
  nl.add_instance("u1", lib.find("nand2"), {true, false});
  EXPECT_EQ(nl.size(), 2u);
  EXPECT_EQ(nl.transistor_count(), 2 + 4);
  EXPECT_THROW(nl.add_instance("u2", nullptr, {}), PreconditionError);
  EXPECT_THROW(nl.add_instance("u3", lib.find("nand2"), {true}), PreconditionError);
}

TEST(Netlist, TotalLeakageIsSumOfInstances) {
  const CellLibrary lib(tech());
  Netlist nl;
  nl.add_instance("u0", lib.find("inv"), {false});
  const double one = nl.total_off_current(tech(), 300.0);
  nl.add_instance("u1", lib.find("inv"), {false});
  EXPECT_NEAR(nl.total_off_current(tech(), 300.0), 2.0 * one, 1e-18);
  EXPECT_DOUBLE_EQ(nl.total_static_power(tech(), 300.0),
                   nl.total_off_current(tech(), 300.0) * tech().vdd);
}

TEST(Netlist, MonteCarloStatsAreConsistent) {
  Rng build_rng(9);
  const CellLibrary lib(tech());
  const auto nl = make_random_netlist(lib, 200, build_rng);
  Rng mc_rng(10);
  const auto stats = nl.monte_carlo_leakage(tech(), 300.0, 50, mc_rng);
  EXPECT_GT(stats.mean, 0.0);
  EXPECT_LE(stats.min, stats.mean);
  EXPECT_GE(stats.max, stats.mean);
  EXPECT_GE(stats.stddev, 0.0);
  // Leakage spread across vectors is real but bounded for 200 gates.
  EXPECT_LT(stats.stddev / stats.mean, 0.5);
  EXPECT_THROW((void)nl.monte_carlo_leakage(tech(), 300.0, 0, mc_rng), PreconditionError);
}

TEST(Netlist, RandomNetlistIsDeterministicPerSeed) {
  const CellLibrary lib(tech());
  Rng r1(77), r2(77);
  const auto a = make_random_netlist(lib, 50, r1);
  const auto b = make_random_netlist(lib, 50, r2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NEAR(a.total_off_current(tech(), 300.0), b.total_off_current(tech(), 300.0),
              1e-20);
}

TEST(Netlist, HotterMeansLeakier) {
  Rng rng(12);
  const CellLibrary lib(tech());
  const auto nl = make_random_netlist(lib, 100, rng);
  EXPECT_GT(nl.total_off_current(tech(), 400.0),
            10.0 * nl.total_off_current(tech(), 300.0));
}


TEST(Netlist, StandbyOptimizationFindsTheFloor) {
  Rng rng(55);
  const CellLibrary lib(tech());
  Netlist nl = make_random_netlist(lib, 300, rng);
  const double before = nl.total_off_current(tech(), celsius(110.0));
  const double reported = optimize_standby_vectors(nl, tech(), celsius(110.0));
  const double after = nl.total_off_current(tech(), celsius(110.0));
  EXPECT_NEAR(reported, after, 1e-12 * after);
  EXPECT_LT(after, before);
  // The floor is a genuine lower bound: no random state beats it.
  Netlist probe = nl;
  Rng mc(56);
  for (int s = 0; s < 20; ++s) {
    probe.randomize_states(mc);
    EXPECT_GE(probe.total_off_current(tech(), celsius(110.0)), after * (1.0 - 1e-9));
  }
}

TEST(Netlist, SetInstanceInputsValidates) {
  const CellLibrary lib(tech());
  Netlist nl;
  nl.add_instance("u0", lib.find("nand2"), {false, false});
  nl.set_instance_inputs(0, {true, true});
  EXPECT_THROW(nl.set_instance_inputs(1, {true, true}), PreconditionError);
  EXPECT_THROW(nl.set_instance_inputs(0, {true}), PreconditionError);
}

}  // namespace
}  // namespace ptherm::netlist
