// Unit tests for common/: constants, tables, RNG and statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace ptherm {
namespace {

TEST(Constants, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(Constants, ThermalVoltageScalesLinearly) {
  EXPECT_DOUBLE_EQ(thermal_voltage(600.0), 2.0 * thermal_voltage(300.0));
}

TEST(Constants, CelsiusRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius(25.0), 298.15);
  EXPECT_DOUBLE_EQ(to_celsius(celsius(85.0)), 85.0);
}

TEST(Constants, UnitMultipliers) {
  EXPECT_DOUBLE_EQ(3.0 * um, 3e-6);
  EXPECT_DOUBLE_EQ(2.0 * mW, 2e-3);
  EXPECT_DOUBLE_EQ(1.5 * GHz, 1.5e9);
}

TEST(Table, RejectsRowsBeforeColumns) {
  Table t("x");
  EXPECT_THROW(t.add_row({1.0}), PreconditionError);
}

TEST(Table, RejectsArityMismatch) {
  Table t;
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), PreconditionError);
}

TEST(Table, StoresAndReadsValues) {
  Table t;
  t.set_columns({"a", "b"});
  t.add_row({1.5, std::string("x")});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.value(0, 0), 1.5);
  EXPECT_THROW((void)t.value(0, 1), PreconditionError);  // string cell
  EXPECT_THROW((void)t.value(1, 0), PreconditionError);  // out of range
}

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo");
  t.set_columns({"col"});
  t.add_row({2.0});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("col"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.set_columns({"name"});
  t.add_row({std::string("a,b\"c")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, PrecisionControlsFormatting) {
  Table t;
  t.set_columns({"v"});
  t.add_row({1.23456789});
  t.set_precision(3);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_EQ(os.str().find("1.2345"), std::string::npos);
  EXPECT_THROW(t.set_precision(0), PreconditionError);
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliTracksProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Stats, CompareSeriesExactMatch) {
  const double xs[] = {1.0, 2.0, 3.0};
  const auto s = compare_series(xs, xs);
  EXPECT_DOUBLE_EQ(s.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(s.rms, 0.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, CompareSeriesKnownError) {
  const double model[] = {1.1, 2.0};
  const double ref[] = {1.0, 2.0};
  const auto s = compare_series(model, ref);
  EXPECT_NEAR(s.max_abs, 0.1, 1e-12);
  EXPECT_NEAR(s.max_rel, 0.1, 1e-12);
  EXPECT_NEAR(s.rms, 0.1 / std::sqrt(2.0), 1e-12);
}

TEST(Stats, CompareSeriesSizeMismatchThrows) {
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW((void)compare_series(a, b), PreconditionError);
}

TEST(Stats, MeanAndStddev) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(Stats, LinearFitRejectsDegenerateInput) {
  const double xs[] = {1.0, 1.0};
  const double ys[] = {1.0, 2.0};
  EXPECT_THROW((void)linear_fit(xs, ys), PreconditionError);
  const double one[] = {1.0};
  EXPECT_THROW((void)linear_fit(one, one), PreconditionError);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    PTHERM_REQUIRE(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ptherm
