// Tests for the thermal-map exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "thermal/map_io.hpp"

namespace ptherm::thermal {
namespace {

SurfaceMap ramp_map() {
  SurfaceMap m;
  m.nx = 4;
  m.ny = 3;
  m.values.resize(12);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 4; ++i) m.values[j * 4 + i] = 10.0 * j + i;
  }
  return m;
}

TEST(SurfaceMap, MinMaxAndAt) {
  const auto m = ramp_map();
  EXPECT_DOUBLE_EQ(m.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(m.max_value(), 23.0);
  EXPECT_DOUBLE_EQ(m.at(3, 2), 23.0);
  SurfaceMap bad;
  bad.nx = 2;
  bad.ny = 2;
  bad.values.resize(3);
  EXPECT_THROW((void)bad.min_value(), PreconditionError);
}

TEST(MapIo, PgmHeaderAndSize) {
  const auto m = ramp_map();
  const std::string path = "test_map_io.pgm";
  ASSERT_TRUE(write_pgm(m, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, depth = 0;
  in >> magic >> w >> h >> depth;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(depth, 255);
  in.get();  // single whitespace after header
  std::string pixels((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(pixels.size(), 12u);
  // Row 0 of the map (coolest) is the *last* image row; the hottest sample
  // (map top-right) is the final byte of the first image row.
  EXPECT_EQ(static_cast<unsigned char>(pixels[3]), 255u);
  EXPECT_EQ(static_cast<unsigned char>(pixels[8]), 0u);
  std::remove(path.c_str());
}

TEST(MapIo, GnuplotMatrixRoundTrips) {
  const auto m = ramp_map();
  const std::string path = "test_map_io.dat";
  ASSERT_TRUE(write_gnuplot_matrix(m, path));
  std::ifstream in(path);
  std::string comment;
  std::getline(in, comment);
  EXPECT_EQ(comment.rfind("# gnuplot", 0), 0u);
  double v = -1.0;
  in >> v;
  EXPECT_DOUBLE_EQ(v, 0.0);
  for (int k = 1; k < 12; ++k) in >> v;
  EXPECT_DOUBLE_EQ(v, 23.0);
  std::remove(path.c_str());
}

TEST(MapIo, AsciiRenderingShapesCorrectly) {
  const auto m = ramp_map();
  const std::string art = render_ascii(m);
  // 3 lines of 4 characters plus newlines.
  EXPECT_EQ(art.size(), 15u);
  // Hottest cell -> '@', coolest -> ' '. Row 0 is rendered last.
  EXPECT_EQ(art[3], '@');
  EXPECT_EQ(art[10], ' ');
}

TEST(MapIo, ConstantMapDoesNotDivideByZero) {
  SurfaceMap flat;
  flat.nx = 2;
  flat.ny = 2;
  flat.values.assign(4, 5.0);
  EXPECT_NO_THROW(render_ascii(flat));
  const std::string path = "test_map_flat.pgm";
  EXPECT_TRUE(write_pgm(flat, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptherm::thermal
