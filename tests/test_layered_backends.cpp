// Layered die-stack tests across the thermal backends and the co-simulation
// drivers: the N-layer spectral transfer matrices against the layered FDM
// reference (steady and transient), the 1-layer degenerate stack against the
// legacy single-die closed forms, the matrix-free influence path on layered
// stacks, and the dynamic package boundary (case temperature as co-simulated
// state) end to end through the transient cosim and the RTM loop.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"
#include "thermal/backend.hpp"
#include "thermal/fdm.hpp"
#include "thermal/spectral.hpp"
#include "thermal/stack.hpp"

namespace ptherm {
namespace {

constexpr double kK = 148.0;
constexpr double kCv = 1.631e6;

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = kK;
  d.t_sink = 318.15;
  d.cv_si = kCv;
  return d;
}

thermal::StackLayer silicon(double thickness) { return {"die", thickness, kK, kCv}; }
thermal::StackLayer tim() { return {"tim", 25e-6, 4.0, 2.2e6}; }
thermal::StackLayer copper(double thickness) { return {"spreader", thickness, 390.0, 3.4e6}; }

/// Die + TIM + copper spreader over an isothermal case plane — the package
/// sandwich every multi-layer test below exercises.
thermal::DieStack sandwich_stack() {
  return thermal::DieStack({silicon(350e-6), tim(), copper(500e-6)});
}

std::vector<thermal::HeatSource> block_sources() {
  // One half-die slab plus one quarter-die block: laterally smooth enough
  // that a 16 x 16 FDM grid resolves them, asymmetric enough to excite many
  // modes.
  return {{0.25e-3, 0.5e-3, 0.5e-3, 1e-3, 1.5},
          {0.75e-3, 0.75e-3, 0.5e-3, 0.5e-3, 0.8}};
}

/// Quadratic extrapolation of the FDM z-column under lateral cell (i, j) to
/// the true surface z = 0 — removes the top-cell-centre offset so surface
/// readings of the two discretizations compare like for like.
double fdm_surface_extrapolated(const thermal::FdmThermalSolver& fdm,
                                const std::vector<double>& rise, int i, int j) {
  const double z0 = fdm.cell_depth(0), z1 = fdm.cell_depth(1), z2 = fdm.cell_depth(2);
  const double t0 = rise[fdm.cell_index(i, j, 0)];
  const double t1 = rise[fdm.cell_index(i, j, 1)];
  const double t2 = rise[fdm.cell_index(i, j, 2)];
  // Lagrange basis at z = 0.
  const double l0 = (z1 * z2) / ((z0 - z1) * (z0 - z2));
  const double l1 = (z0 * z2) / ((z1 - z0) * (z1 - z2));
  const double l2 = (z0 * z1) / ((z2 - z0) * (z2 - z1));
  return l0 * t0 + l1 * t1 + l2 * t2;
}

// ------------------------------------------------------------ spectral DC

TEST(LayeredSpectral, UniformPowerReproducesSeriesResistanceExactly) {
  // A full-die uniform source excites only the DC mode, whose layered
  // transfer is the 1-D series resistance — an exactness identity, not a
  // discretization comparison. Convective closure included: the film's 1/h
  // is part of the series path.
  const thermal::Die die = die_1mm();
  thermal::BoundarySpec conv;
  conv.kind = thermal::BoundaryKind::Convective;
  conv.h = 1.2e4;
  const thermal::DieStack stack({silicon(350e-6), tim(), copper(500e-6)}, conv);
  const thermal::SpectralThermalSolver solver(die, stack, {});
  ASSERT_TRUE(solver.layered());

  const double p = 3.0;
  const std::vector<thermal::HeatSource> uniform = {{0.5e-3, 0.5e-3, 1e-3, 1e-3, p}};
  const auto sol = solver.solve_steady(uniform);
  const double expect = p / (die.width * die.height) * stack.series_resistance_per_area();
  EXPECT_NEAR(solver.surface_rise(sol, 0.5e-3, 0.5e-3), expect, 1e-9 * expect);
  EXPECT_NEAR(solver.surface_rise(sol, 0.1e-3, 0.9e-3), expect, 1e-9 * expect);
}

// ------------------------------------------------- degenerate stack routes

TEST(LayeredSpectral, TrivialStackReproducesLegacySolverBitwise) {
  const thermal::Die die = die_1mm();
  const thermal::SpectralThermalSolver legacy(die, {});
  const thermal::SpectralThermalSolver routed(die, thermal::DieStack::single(die), {});
  EXPECT_FALSE(routed.layered());

  const auto sources = block_sources();
  const auto want = legacy.solve_steady(sources);
  const auto got = routed.solve_steady(sources);
  ASSERT_EQ(got.coeff.size(), want.coeff.size());
  for (std::size_t m = 0; m < want.coeff.size(); ++m) {
    ASSERT_DOUBLE_EQ(got.coeff[m], want.coeff[m]) << "mode " << m;
  }

  auto s_legacy = legacy.make_transient();
  auto s_routed = routed.make_transient();
  for (int s = 0; s < 20; ++s) {
    legacy.step_transient(s_legacy, 5e-5, sources);
    routed.step_transient(s_routed, 5e-5, sources);
  }
  for (std::size_t m = 0; m < s_legacy.surface.coeff.size(); ++m) {
    ASSERT_DOUBLE_EQ(s_routed.surface.coeff[m], s_legacy.surface.coeff[m]) << "mode " << m;
  }
}

TEST(LayeredSpectral, SplitSiliconStackMatchesTheSingleLayer) {
  // Two half-thickness silicon layers are physically the same die; the
  // layered impedance recursion must agree with tanh(g t)/(k g) to rounding.
  const thermal::Die die = die_1mm();
  const thermal::SpectralThermalSolver legacy(die, {});
  const thermal::SpectralThermalSolver split(
      die, thermal::DieStack({silicon(175e-6), silicon(175e-6)}), {});
  ASSERT_TRUE(split.layered());

  const auto sources = block_sources();
  const auto want = legacy.solve_steady(sources);
  const auto got = split.solve_steady(sources);
  for (const auto& q : sources) {
    const double a = legacy.surface_rise(want, q.cx, q.cy);
    const double b = split.surface_rise(got, q.cx, q.cy);
    EXPECT_NEAR(b, a, 1e-9 * std::abs(a));
  }
}

// --------------------------------------------- spectral vs layered FDM

TEST(LayeredSteady, SpectralMatchesLayeredFdmAtMatchedDepths) {
  // The N-layer acceptance bar: steady block-centre rises against the
  // layered FDM reference, compared at the FDM cell-centre depths via the
  // slab-by-slab transmission-line depth profile — in the die, in the TIM,
  // and deep in the spreader.
  const thermal::Die die = die_1mm();
  const auto stack = sandwich_stack();
  thermal::FdmOptions fo;
  fo.nx = 24;
  fo.ny = 24;
  fo.nz = 35;  // 350/25/500 um split 14/1/20: dz = 25 um in every layer
  const thermal::FdmThermalSolver fdm(die, stack, fo);
  ASSERT_TRUE(fdm.layered());
  const thermal::SpectralThermalSolver spectral(die, stack, {});

  const auto sources = block_sources();
  const auto fdm_sol = fdm.solve_steady(sources);
  ASSERT_TRUE(fdm_sol.converged);
  const auto sp_sol = spectral.solve_steady(sources);

  // kz 0 = top die cell, kz 14 = the TIM cell, kz 25 = mid-spreader.
  for (const int kz : {0, 7, 14, 25}) {
    const double z = fdm.cell_depth(kz);
    for (const auto& q : sources) {
      // Evaluate at the lateral cell centre nearest the block centre so the
      // FDM value needs no lateral interpolation.
      const int i = std::min(fo.nx - 1, static_cast<int>(q.cx / die.width * fo.nx));
      const int j = std::min(fo.ny - 1, static_cast<int>(q.cy / die.height * fo.ny));
      const double x = die.width * (i + 0.5) / fo.nx;
      const double y = die.height * (j + 0.5) / fo.ny;
      const double ref = fdm_sol.rise[fdm.cell_index(i, j, kz)];
      const double got = spectral.rise_at_depth(sp_sol, x, y, z);
      EXPECT_NEAR(got, ref, 0.02 * ref) << "kz " << kz << " block (" << q.cx << ", " << q.cy
                                        << ")";
    }
  }
}

TEST(LayeredTransient, SpectralMatchesLayeredFdmTrajectory) {
  // Transient acceptance bar: the layered modal integrator against a fine-dt
  // layered backward-Euler FDM run. The spectral surface (z = 0) is compared
  // against the FDM column extrapolated to z = 0, removing the top-cell
  // offset; 2% covers the reference's own O(dt) + O(h^2) error.
  const thermal::Die die = die_1mm();
  const thermal::DieStack stack({silicon(350e-6), copper(650e-6)});
  thermal::FdmOptions fo;
  fo.nx = 16;
  fo.ny = 16;
  fo.nz = 48;
  const thermal::FdmThermalSolver fdm(die, stack, fo);
  const thermal::SpectralThermalSolver spectral(die, stack, {});
  ASSERT_TRUE(spectral.layered());

  const auto sources = block_sources();
  const double dt = 1e-5;
  const int steps = 150;  // to 1.5 ms, past the die's own tau
  std::vector<double> rise(fdm.cell_count(), 0.0);
  auto state = spectral.make_transient();
  for (int s = 1; s <= steps; ++s) {
    fdm.step_transient(rise, dt, sources);
    spectral.step_transient(state, dt, sources);
    if (s % 30 != 0) continue;
    for (const auto& q : sources) {
      const int i = std::min(fo.nx - 1, static_cast<int>(q.cx / die.width * fo.nx));
      const int j = std::min(fo.ny - 1, static_cast<int>(q.cy / die.height * fo.ny));
      const double x = die.width * (i + 0.5) / fo.nx;
      const double y = die.height * (j + 0.5) / fo.ny;
      const double ref = fdm_surface_extrapolated(fdm, rise, i, j);
      const double got = spectral.surface_rise(state, x, y);
      EXPECT_NEAR(got, ref, 0.02 * ref) << "t = " << s * dt << " block (" << q.cx << ", "
                                        << q.cy << ")";
    }
  }
}

TEST(LayeredTransient, LongTimeLimitReproducesTheSteadySolve) {
  // The quasi-static tail is folded against the EXACT continuous transfer,
  // so the layered transient's plateau is solve_steady to rounding — the
  // same identity the single-die integrator pins.
  const thermal::Die die = die_1mm();
  const auto stack = sandwich_stack();
  const thermal::SpectralThermalSolver solver(die, stack, {});
  const auto sources = block_sources();
  const auto steady = solver.solve_steady(sources);
  auto state = solver.make_transient();
  // One exact step across many package time constants IS the plateau.
  solver.step_transient(state, 10.0, sources);
  for (const auto& q : sources) {
    const double want = solver.surface_rise(steady, q.cx, q.cy);
    const double got = solver.surface_rise(state, q.cx, q.cy);
    EXPECT_NEAR(got, want, 1e-9 * std::abs(want));
  }
}

TEST(LayeredTransient, DepthQueryOnLayeredFieldThrows) {
  const thermal::Die die = die_1mm();
  const thermal::SpectralThermalSolver solver(die, sandwich_stack(), {});
  auto state = solver.make_transient();
  solver.step_transient(state, 1e-4, block_sources());
  EXPECT_THROW((void)solver.rise_at_depth(state, 0.5e-3, 0.5e-3, 10e-6), PreconditionError);
}

// ------------------------------------------------ matrix-free influence

TEST(LayeredInfluence, MatrixFreeApplyMatchesTheDenseBuild) {
  // The manycore-scale contract: the mode-space influence apply on a layered
  // stack equals the densely built matrix column by column.
  const thermal::Die die = die_1mm();
  const thermal::SpectralBackend backend(die, sandwich_stack(), {});
  const auto sources = block_sources();
  std::vector<thermal::SurfaceSample> samples;
  for (const auto& q : sources) samples.push_back({q.cx, q.cy});

  const auto dense = backend.build_influence(sources, samples);
  const auto apply = backend.make_influence_apply(sources, samples);
  ASSERT_EQ(apply->size(), sources.size());

  std::vector<double> powers(sources.size(), 0.0);
  std::vector<double> rises(sources.size(), 0.0);
  for (std::size_t j = 0; j < sources.size(); ++j) {
    std::fill(powers.begin(), powers.end(), 0.0);
    powers[j] = 1.0;
    apply->apply(powers, rises);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_NEAR(rises[i], dense(i, j), 1e-10 * std::abs(dense(i, j)) + 1e-15)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

// --------------------------------------------------- cosim + RTM closure

device::Technology tech() { return device::Technology::cmos012(); }

floorplan::Floorplan small_plan(double p_total) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

TEST(LayeredCosim, SpectralSteadyCosimConvergesOnASandwichStack) {
  core::CosimOptions bare;
  bare.backend = core::ThermalBackend::Spectral;
  core::CosimOptions layered = bare;
  layered.stack = sandwich_stack();
  const auto fp = small_plan(2.0);
  core::ElectroThermalSolver a(tech(), fp, bare);
  core::ElectroThermalSolver b(tech(), fp, layered);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_TRUE(ra.converged && rb.converged);
  // TIM + spreader add series resistance below the die: every block hotter
  // than with the ideal sink at the die bottom.
  for (std::size_t i = 0; i < ra.blocks.size(); ++i) {
    EXPECT_GT(rb.blocks[i].temperature, ra.blocks[i].temperature);
  }
  EXPECT_GT(rb.total_leakage, ra.total_leakage);
}

TEST(LayeredCosim, AnalyticBackendRejectsGenuinelyLayeredStacks) {
  core::CosimOptions opts;
  opts.backend = core::ThermalBackend::Analytic;
  opts.stack = sandwich_stack();
  EXPECT_THROW(core::ElectroThermalSolver(tech(), small_plan(2.0), opts), PreconditionError);
  // A trivial stack routes onto the closed forms and is accepted.
  opts.stack = thermal::DieStack::single(die_1mm());
  const auto r = core::ElectroThermalSolver(tech(), small_plan(2.0), opts).solve();
  EXPECT_TRUE(r.converged);
}

TEST(LayeredTransientCosim, RcBoundaryMakesTheCaseACosimState) {
  const auto fp = small_plan(4.0);
  core::TransientCosimOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.dt = 1e-4;
  opts.t_stop = 40e-3;
  opts.record_every = 10;

  thermal::BoundarySpec rc;
  rc.kind = thermal::BoundaryKind::RcNetwork;
  rc.rc.emplace(std::vector<thermal::ThermalRc>{{0.5, 2e-3}, {1.5, 0.05}});
  core::TransientCosimOptions with_pkg = opts;
  with_pkg.stack = thermal::DieStack({silicon(350e-6)}, rc);

  const auto activity = [](std::size_t, double) { return 1.0; };
  const auto fixed = core::solve_transient_cosim(tech(), fp, activity, opts);
  const auto dynamic = core::solve_transient_cosim(tech(), fp, activity, with_pkg);

  ASSERT_EQ(dynamic.case_rise.size(), dynamic.times.size());
  // Constant-sink run records an all-zero case trace.
  for (double c : fixed.case_rise) EXPECT_DOUBLE_EQ(c, 0.0);
  // The case charges monotonically under sustained power and ends warm.
  for (std::size_t k = 1; k < dynamic.case_rise.size(); ++k) {
    EXPECT_GE(dynamic.case_rise[k], dynamic.case_rise[k - 1] - 1e-12);
  }
  EXPECT_GT(dynamic.case_rise.back(), 0.5);
  // Every block rides the case rise: strictly hotter than the fixed-sink run
  // at the final instant.
  const auto& t_fixed = fixed.block_temps.back();
  const auto& t_dyn = dynamic.block_temps.back();
  for (std::size_t i = 0; i < t_fixed.size(); ++i) EXPECT_GT(t_dyn[i], t_fixed[i]);
}

TEST(LayeredRtm, PackageStackRunsAreBitwiseDeterministic) {
  // The RTM acceptance bar: a closed-loop run over a dynamic-sink stack
  // reproduces bitwise — policies, sensors, package state and all.
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 12.0;
  cfg.gates_per_mm2 = 3e5;
  const auto fp = floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  rtm::BurstPattern pat;
  pat.period = 4e-3;
  pat.duty = 0.75;
  const auto trace = rtm::make_burst_trace(4, 20, 1e-3, pat);

  rtm::RtmOptions opts;
  opts.backend = core::ThermalBackend::Spectral;
  opts.spectral.modes_x = 32;
  opts.spectral.modes_y = 32;
  opts.dt = 1e-4;
  opts.steps_per_epoch = 2;
  opts.temperature_cap = 368.15;
  opts.record_every = 5;
  thermal::BoundarySpec rc;
  rc.kind = thermal::BoundaryKind::RcNetwork;
  rc.rc.emplace(std::vector<thermal::ThermalRc>{{0.4, 5e-3}, {0.8, 0.1}});
  opts.stack = thermal::DieStack({silicon(350e-6)}, rc);

  const auto run = [&] {
    rtm::ThresholdPolicy policy;
    rtm::Actuator actuator(tech(), fp,
                           rtm::VfLadder::uniform(tech().vdd, 2e9, 4, 0.8, 0.45));
    return rtm::run_rtm(tech(), fp, trace, policy, actuator, opts);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.final_temps.size(), b.final_temps.size());
  for (std::size_t i = 0; i < a.final_temps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.final_temps[i], b.final_temps[i]);
  }
  EXPECT_EQ(a.metrics.interventions, b.metrics.interventions);
  EXPECT_DOUBLE_EQ(a.metrics.peak_temperature, b.metrics.peak_temperature);
  EXPECT_DOUBLE_EQ(a.metrics.energy, b.metrics.energy);
  ASSERT_EQ(a.peak_temps.size(), b.peak_temps.size());
  for (std::size_t k = 0; k < a.peak_temps.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.peak_temps[k], b.peak_temps[k]);
  }
}

}  // namespace
}  // namespace ptherm
