// Tests for the series-parallel networks and gate-level leakage rules of
// §2.1: OFF||ON discarded, OFF||OFF widths add, series chains collapse.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/collapse.hpp"
#include "leakage/gate.hpp"
#include "leakage/spnet.hpp"

namespace ptherm::leakage {
namespace {

using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }
constexpr double kW = 0.5e-6;

TEST(SpNetwork, DeviceStateFollowsPolarity) {
  const auto d = SpNetwork::device(0, kW);
  EXPECT_TRUE(d.is_on(MosType::Nmos, {true}));
  EXPECT_FALSE(d.is_on(MosType::Nmos, {false}));
  EXPECT_FALSE(d.is_on(MosType::Pmos, {true}));
  EXPECT_TRUE(d.is_on(MosType::Pmos, {false}));
}

TEST(SpNetwork, SeriesNeedsAllOnParallelNeedsAny) {
  const auto series =
      SpNetwork::series({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  const auto par =
      SpNetwork::parallel({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  EXPECT_TRUE(series.is_on(MosType::Nmos, {true, true}));
  EXPECT_FALSE(series.is_on(MosType::Nmos, {true, false}));
  EXPECT_TRUE(par.is_on(MosType::Nmos, {true, false}));
  EXPECT_FALSE(par.is_on(MosType::Nmos, {false, false}));
}

TEST(SpNetwork, CountsInputsAndDevices) {
  const auto net = SpNetwork::parallel(
      {SpNetwork::series({SpNetwork::device(0, kW), SpNetwork::device(3, kW)}),
       SpNetwork::device(1, kW)});
  EXPECT_EQ(net.input_count(), 4);
  EXPECT_EQ(net.device_count(), 3);
}

TEST(SpNetwork, ParallelOffWidthsAdd) {
  const auto par =
      SpNetwork::parallel({SpNetwork::device(0, kW), SpNetwork::device(1, 2.0 * kW)});
  const auto w = par.effective_width(tech(), MosType::Nmos, {false, false}, 300.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 3.0 * kW);
}

TEST(SpNetwork, OffBranchParallelToOnBranchIsDiscarded) {
  // §2.1: when an ON path shorts the block, the block contributes no OFF
  // width at all (effective_width reports "ON").
  const auto par =
      SpNetwork::parallel({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  const auto w = par.effective_width(tech(), MosType::Nmos, {false, true}, 300.0);
  EXPECT_FALSE(w.has_value());
}

TEST(SpNetwork, SeriesOffChainUsesCollapse) {
  const auto series =
      SpNetwork::series({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  const auto w = series.effective_width(tech(), MosType::Nmos, {false, false}, 300.0);
  ASSERT_TRUE(w.has_value());
  const double widths[] = {kW, kW};
  const double expected = collapse_chain(tech(), MosType::Nmos, widths, 300.0).w_eff;
  EXPECT_DOUBLE_EQ(*w, expected);
  EXPECT_LT(*w, kW);  // stack effect
}

TEST(SpNetwork, OnDeviceInSeriesChainIsInternalShort) {
  // Middle device ON: the chain collapses as a 2-stack of the OFF devices.
  const auto series = SpNetwork::series({SpNetwork::device(0, kW),
                                         SpNetwork::device(1, kW),
                                         SpNetwork::device(2, kW)});
  const auto w = series.effective_width(tech(), MosType::Nmos, {false, true, false}, 300.0);
  ASSERT_TRUE(w.has_value());
  const double widths[] = {kW, kW};
  EXPECT_DOUBLE_EQ(*w, collapse_chain(tech(), MosType::Nmos, widths, 300.0).w_eff);
}

TEST(SpNetwork, EmptyNetworkThrows) {
  SpNetwork empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.is_on(MosType::Nmos, {}), PreconditionError);
  EXPECT_THROW((void)empty.effective_width(tech(), MosType::Nmos, {}, 300.0),
               PreconditionError);
}

TEST(SpNetwork, ShortInputVectorThrows) {
  const auto d = SpNetwork::device(2, kW);
  EXPECT_THROW((void)d.is_on(MosType::Nmos, {true}), PreconditionError);
}

/// Hand-built NAND2.
GateTopology nand2() {
  GateTopology g;
  g.name = "nand2";
  g.pull_down =
      SpNetwork::series({SpNetwork::device(0, 2 * kW), SpNetwork::device(1, 2 * kW)});
  g.pull_up = SpNetwork::parallel({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  g.length = tech().l_drawn;
  return g;
}

TEST(GateStatic, Nand2TruthTableAndLeakPaths) {
  const auto g = nand2();
  // 00: output high, both nMOS OFF in series -> stack current.
  {
    const auto r = gate_static(tech(), g, {false, false}, 300.0);
    EXPECT_TRUE(r.output_high);
    const double widths[] = {2 * kW, 2 * kW};
    EXPECT_DOUBLE_EQ(r.w_eff, collapse_chain(tech(), MosType::Nmos, widths, 300.0).w_eff);
  }
  // 11: output low, both pMOS OFF in parallel -> widths add.
  {
    const auto r = gate_static(tech(), g, {true, true}, 300.0);
    EXPECT_FALSE(r.output_high);
    EXPECT_DOUBLE_EQ(r.w_eff, 2.0 * kW);
  }
  // 10: output high, leakage through single OFF nMOS (input 1).
  {
    const auto r = gate_static(tech(), g, {true, false}, 300.0);
    EXPECT_TRUE(r.output_high);
    EXPECT_DOUBLE_EQ(r.w_eff, 2 * kW);
  }
}

TEST(GateStatic, Nand2VectorOrderingMatchesStackEffect) {
  // The 00 vector (full stack) must leak the least; 11 (parallel pMOS pair)
  // typically leaks the most for balanced sizing.
  const auto g = nand2();
  const auto i00 = gate_static(tech(), g, {false, false}, 300.0).i_off;
  const auto i01 = gate_static(tech(), g, {true, false}, 300.0).i_off;
  const auto i10 = gate_static(tech(), g, {false, true}, 300.0).i_off;
  const auto i11 = gate_static(tech(), g, {true, true}, 300.0).i_off;
  EXPECT_LT(i00, i01);
  EXPECT_LT(i00, i10);
  EXPECT_LT(i00, i11);
}

TEST(GateStatic, PowerIsCurrentTimesVdd) {
  const auto g = nand2();
  const auto r = gate_static(tech(), g, {false, true}, 300.0);
  EXPECT_DOUBLE_EQ(r.p_static, r.i_off * tech().vdd);
}

TEST(GateStatic, ContentionAndFloatThrow) {
  // Deliberately broken "gate": both networks are the same nMOS-style net.
  GateTopology broken;
  broken.name = "broken";
  broken.pull_down = SpNetwork::device(0, kW);
  broken.pull_up = SpNetwork::device(0, kW);  // pMOS: ON when input is 0
  broken.length = tech().l_drawn;
  // input 1: pull-down ON, pull-up OFF -> fine.
  EXPECT_NO_THROW(gate_static(tech(), broken, {true}, 300.0));
  // A gate that is ON on both sides: pull_up device polarity makes them
  // complementary here, so build true contention with constant nets.
  GateTopology contention;
  contention.name = "contention";
  contention.pull_down = SpNetwork::parallel({SpNetwork::device(0, kW),
                                              SpNetwork::device(1, kW)});
  contention.pull_up = SpNetwork::parallel({SpNetwork::device(0, kW),
                                            SpNetwork::device(1, kW)});
  contention.length = tech().l_drawn;
  // Vector {1,0}: nMOS parallel has input0 ON; pMOS parallel has input1 ON.
  EXPECT_THROW(gate_static(tech(), contention, {true, false}, 300.0), PreconditionError);
  // Vector {0,1}: nMOS has input1 ON; pMOS has input0 ON -> also contention.
  EXPECT_THROW(gate_static(tech(), contention, {false, true}, 300.0), PreconditionError);

  // Floating output: a mismatched pair where vector {1,0} switches both
  // networks OFF.
  GateTopology floating;
  floating.name = "floating";
  floating.pull_down =
      SpNetwork::series({SpNetwork::device(0, kW), SpNetwork::device(1, kW)});
  floating.pull_up = SpNetwork::device(0, kW);
  floating.length = tech().l_drawn;
  EXPECT_THROW(gate_static(tech(), floating, {true, false}, 300.0), PreconditionError);
}

TEST(GateSummary, EnumeratesAllVectors) {
  const auto g = nand2();
  const auto s = gate_leakage_summary(tech(), g, 300.0);
  EXPECT_GT(s.mean_i_off, 0.0);
  EXPECT_LE(s.min_i_off, s.mean_i_off);
  EXPECT_GE(s.max_i_off, s.mean_i_off);
  // Min vector is the full stack 00.
  EXPECT_EQ(s.min_vector, (InputVector{false, false}));
}

TEST(GateSummary, TemperatureScalesWholeDistribution) {
  const auto g = nand2();
  const auto cold = gate_leakage_summary(tech(), g, 300.0);
  const auto hot = gate_leakage_summary(tech(), g, 400.0);
  EXPECT_GT(hot.min_i_off, cold.min_i_off);
  EXPECT_GT(hot.max_i_off, cold.max_i_off);
  EXPECT_GT(hot.mean_i_off / cold.mean_i_off, 10.0);
}

TEST(VectorFromIndex, BitOrderIsLsbFirst) {
  const auto v = vector_from_index(0b101, 3);
  EXPECT_EQ(v, (InputVector{true, false, true}));
  EXPECT_THROW(vector_from_index(0, -1), PreconditionError);
}

}  // namespace
}  // namespace ptherm::leakage
