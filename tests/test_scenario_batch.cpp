// Tests for the batched scenario engine: bitwise batched-vs-sequential
// equivalence on every backend, chunk-size invariance, convergence-mask
// correctness, batch-size-independent Monte Carlo draws, V/f corner levels,
// and the dense/matrix-free boundary-fold agreement under batching.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/scenario_batch.hpp"
#include "device/variation.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;
using device::VariationModel;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan small_plan(double p_total = 2.0) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

/// The sequential reference for scenario k: a standalone solver fed the
/// scenario's exact powers, technology, and adjustments. The batched engine
/// must reproduce this bitwise.
CosimResult reference_solve(const ScenarioBatch& batch, std::size_t k,
                            floorplan::Floorplan fp, const CosimOptions& opts) {
  const auto powers = batch.scenario_powers(k);
  auto& blocks = fp.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) blocks[i].p_dynamic = powers[i];
  ElectroThermalSolver solver(batch.level_technology(batch.scenario_level(k)),
                              std::move(fp), opts);
  solver.set_leakage_adjust(batch.scenario_adjust(k));
  return solver.solve();
}

void expect_bitwise_equal(const ScenarioResult& got, const CosimResult& want,
                          std::size_t k) {
  EXPECT_EQ(got.converged, want.converged) << "scenario " << k;
  EXPECT_EQ(got.runaway, want.runaway) << "scenario " << k;
  EXPECT_EQ(got.iterations, want.iterations) << "scenario " << k;
  ASSERT_EQ(got.temperatures.size(), want.blocks.size()) << "scenario " << k;
  for (std::size_t i = 0; i < want.blocks.size(); ++i) {
    EXPECT_EQ(got.temperatures[i], want.blocks[i].temperature)
        << "scenario " << k << " block " << i;
  }
  EXPECT_EQ(got.max_temperature, want.max_temperature) << "scenario " << k;
  EXPECT_EQ(got.total_dynamic, want.total_dynamic) << "scenario " << k;
  EXPECT_EQ(got.total_leakage, want.total_leakage) << "scenario " << k;
  EXPECT_EQ(got.max_delta_last, want.max_delta_last) << "scenario " << k;
}

/// A batch mixing Monte Carlo variation, nominal, and V/f corner scenarios.
ScenarioBatch mixed_batch(const CosimOptions& opts, ScenarioBatchOptions bopts = {}) {
  ScenarioBatch batch(tech(), small_plan(), opts, bopts);
  batch.add_nominal();
  batch.add_variation_samples(VariationModel{0.03}, 6, /*base_seed=*/42);
  batch.add_vf_corner(tech().vdd * 0.85, 0.7);
  batch.add_vf_corner(tech().vdd * 1.1, 1.0);
  return batch;
}

TEST(ScenarioBatch, BitwiseEqualsSequentialOnAnalyticBackend) {
  CosimOptions opts;  // analytic, dense
  auto batch = mixed_batch(opts);
  const auto results = batch.solve_all();
  ASSERT_EQ(results.size(), 9u);
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_TRUE(results[k].converged) << "scenario " << k;
    expect_bitwise_equal(results[k], reference_solve(batch, k, small_plan(), opts), k);
  }
}

TEST(ScenarioBatch, BitwiseEqualsSequentialOnFdmBackend) {
  CosimOptions opts;
  opts.backend = ThermalBackend::Fdm;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 8;
  ScenarioBatch batch(tech(), small_plan(), opts);
  batch.add_nominal();
  batch.add_variation_samples(VariationModel{0.03}, 3, /*base_seed=*/7);
  const auto results = batch.solve_all();
  for (std::size_t k = 0; k < results.size(); ++k) {
    expect_bitwise_equal(results[k], reference_solve(batch, k, small_plan(), opts), k);
  }
}

TEST(ScenarioBatch, BitwiseEqualsSequentialOnSpectralMatrixFree) {
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  opts.influence = InfluenceMode::MatrixFree;
  auto batch = mixed_batch(opts);
  EXPECT_TRUE(batch.matrix_free());
  const auto results = batch.solve_all();
  for (std::size_t k = 0; k < results.size(); ++k) {
    expect_bitwise_equal(results[k], reference_solve(batch, k, small_plan(), opts), k);
  }
}

TEST(ScenarioBatch, ResultsAreChunkSizeInvariant) {
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  std::vector<std::vector<ScenarioResult>> runs;
  for (const int chunk : {1, 3, 64}) {
    ScenarioBatchOptions bopts;
    bopts.chunk = chunk;
    auto batch = mixed_batch(opts, bopts);
    runs.push_back(batch.solve_all());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t k = 0; k < runs[0].size(); ++k) {
      EXPECT_EQ(runs[r][k].iterations, runs[0][k].iterations);
      for (std::size_t i = 0; i < runs[0][k].temperatures.size(); ++i) {
        EXPECT_EQ(runs[r][k].temperatures[i], runs[0][k].temperatures[i])
            << "chunk run " << r << " scenario " << k << " block " << i;
      }
      EXPECT_EQ(runs[r][k].total_leakage, runs[0][k].total_leakage);
    }
  }
}

TEST(ScenarioBatch, ConvergenceMasksDropEasyScenariosEarly) {
  // One chunk holding scenarios with very different convergence speeds: the
  // cold corner converges in fewer Picard iterations than the hot one, so
  // the mask must retire it early (saved scenario-iterations > 0) without
  // perturbing anyone's trajectory.
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  opts.damping = 0.5;  // slow enough that iteration counts spread out
  ScenarioBatch batch(tech(), small_plan(), opts);
  batch.add_vf_corner(tech().vdd * 0.7, 0.4);   // cold: fast convergence
  batch.add_nominal();
  batch.add_vf_corner(tech().vdd * 1.15, 1.0);  // hot: slow convergence
  const auto results = batch.solve_all();
  ASSERT_EQ(results.size(), 3u);
  int min_it = results[0].iterations, max_it = results[0].iterations;
  for (const auto& r : results) {
    ASSERT_TRUE(r.converged);
    min_it = std::min(min_it, r.iterations);
    max_it = std::max(max_it, r.iterations);
  }
  ASSERT_LT(min_it, max_it) << "test needs scenarios with different speeds";

  const auto& stats = batch.stats();
  EXPECT_EQ(stats.scenarios, 3);
  // All three rode one chunk, so the blocked sweeps ran to the slowest
  // scenario's count and the masks saved the difference.
  EXPECT_EQ(stats.batched_matvecs, max_it);
  EXPECT_EQ(stats.picard_iterations_total,
            results[0].iterations + results[1].iterations + results[2].iterations);
  EXPECT_EQ(stats.masked_iterations_saved,
            3LL * max_it - stats.picard_iterations_total);
  EXPECT_GT(stats.masked_iterations_saved, 0);

  // Masking never perturbs a trajectory: still bitwise-sequential.
  for (std::size_t k = 0; k < results.size(); ++k) {
    expect_bitwise_equal(results[k], reference_solve(batch, k, small_plan(), opts), k);
  }
}

TEST(ScenarioBatch, DenseAndMatrixFreeAgreeWithPackageResistance) {
  // The boundary fold under batching: dense carries r_package inside the
  // matrix, matrix-free folds r * sum(P) per blocked iteration. Both must
  // agree with each other (tightly) and with their own sequential reference
  // (bitwise).
  CosimOptions base;
  base.backend = ThermalBackend::Spectral;
  base.r_package = 0.4;
  CosimOptions dense = base;
  dense.influence = InfluenceMode::Dense;
  CosimOptions mfree = base;
  mfree.influence = InfluenceMode::MatrixFree;

  auto bd = mixed_batch(dense);
  auto bf = mixed_batch(mfree);
  EXPECT_FALSE(bd.matrix_free());
  EXPECT_TRUE(bf.matrix_free());
  const auto rd = bd.solve_all();
  const auto rf = bf.solve_all();
  ASSERT_EQ(rd.size(), rf.size());
  for (std::size_t k = 0; k < rd.size(); ++k) {
    expect_bitwise_equal(rd[k], reference_solve(bd, k, small_plan(), dense), k);
    expect_bitwise_equal(rf[k], reference_solve(bf, k, small_plan(), mfree), k);
    for (std::size_t i = 0; i < rd[k].temperatures.size(); ++i) {
      EXPECT_NEAR(rf[k].temperatures[i], rd[k].temperatures[i], 1e-9);
    }
  }
}

TEST(ScenarioBatch, VariationDrawsAreBatchSizeIndependent) {
  // Queueing more Monte Carlo samples must never change the earlier ones:
  // sample s draws from Rng::stream(base_seed, s) regardless of batch size.
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  ScenarioBatch small(tech(), small_plan(), opts);
  ScenarioBatch large(tech(), small_plan(), opts);
  small.add_variation_samples(VariationModel{0.03}, 3, /*base_seed=*/11);
  large.add_variation_samples(VariationModel{0.03}, 24, /*base_seed=*/11);
  const auto rs = small.solve_all();
  const auto rl = large.solve_all();
  for (std::size_t k = 0; k < rs.size(); ++k) {
    const auto adj_s = small.scenario_adjust(k);
    const auto adj_l = large.scenario_adjust(k);
    for (std::size_t j = 0; j < adj_s.size(); ++j) {
      EXPECT_EQ(adj_s[j].delta_vt0, adj_l[j].delta_vt0);
    }
    for (std::size_t i = 0; i < rs[k].temperatures.size(); ++i) {
      EXPECT_EQ(rs[k].temperatures[i], rl[k].temperatures[i]);
    }
    EXPECT_EQ(rs[k].total_leakage, rl[k].total_leakage);
  }
}

TEST(ScenarioBatch, VfLevelsScaleDynamicPowerThroughThePowerModel) {
  CosimOptions opts;
  ScenarioBatch batch(tech(), small_plan(), opts);
  // Level 0 is implicit and exactly transparent.
  EXPECT_EQ(batch.level_count(), 1);
  EXPECT_EQ(batch.level_dynamic_scale(0), 1.0);
  EXPECT_EQ(batch.add_vf_level(tech().vdd, 1.0), 0);  // exact match reuses it

  const int low = batch.add_vf_level(tech().vdd * 0.8, 0.5);
  EXPECT_EQ(low, 1);
  // P ~ alpha f C V^2: the scale is exactly (V/V0)^2 * f_scale.
  EXPECT_NEAR(batch.level_dynamic_scale(low), 0.8 * 0.8 * 0.5, 1e-12);
  // Lower supply raises the effective threshold (DIBL): less leaky tech.
  EXPECT_GT(batch.level_technology(low).vt0_n, tech().vt0_n);

  // Same corner twice resolves to the same level.
  EXPECT_EQ(batch.add_vf_level(tech().vdd * 0.8, 0.5), low);
  const std::size_t k = batch.add_vf_corner(tech().vdd * 0.8, 0.5);
  EXPECT_EQ(batch.scenario_level(k), low);
  const auto powers = batch.scenario_powers(k);
  const auto plan = small_plan();
  const auto& nominal = plan.blocks();
  for (std::size_t i = 0; i < powers.size(); ++i) {
    EXPECT_EQ(powers[i], nominal[i].p_dynamic * batch.level_dynamic_scale(low));
  }
}

TEST(ScenarioBatch, CostStatsMergeBatchCountersOntoBackend) {
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  auto batch = mixed_batch(opts);
  const auto before = batch.cost_stats();
  EXPECT_EQ(before.scenarios, 0);
  (void)batch.solve_all();
  const auto after = batch.cost_stats();
  EXPECT_EQ(after.scenarios, 9);
  EXPECT_GT(after.batched_matvecs, 0);
  EXPECT_GE(after.picard_iterations_total, after.batched_matvecs);
  EXPECT_GE(after.masked_iterations_saved, 0);
  // Backend counters ride along in the same struct.
  EXPECT_GT(after.modes, 0);
}

TEST(ScenarioBatch, RejectsBadInput) {
  CosimOptions opts;
  ScenarioBatchOptions bad;
  bad.chunk = 0;
  EXPECT_THROW(ScenarioBatch(tech(), small_plan(), opts, bad), PreconditionError);
  ScenarioBatch batch(tech(), small_plan(), opts);
  EXPECT_THROW(batch.add_scenario(std::vector<double>(4, 0.1)), PreconditionError);
  EXPECT_THROW(batch.add_nominal(3), PreconditionError);
  EXPECT_THROW(batch.add_vf_level(-1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)batch.scenario_powers(0), PreconditionError);
  EXPECT_THROW(for_each_chunk(4, 0, [](std::size_t, std::size_t) {}), PreconditionError);
}

TEST(ScenarioBatch, ForEachChunkCoversTheRangeInOrder) {
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  for_each_chunk(10, 4, [&](std::size_t b, std::size_t e) { seen.emplace_back(b, e); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{8, 10}));
  seen.clear();
  for_each_chunk(0, 4, [&](std::size_t b, std::size_t e) { seen.emplace_back(b, e); });
  EXPECT_TRUE(seen.empty());
}

}  // namespace
}  // namespace ptherm::core
