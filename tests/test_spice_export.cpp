// Tests for the SPICE-deck exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/export.hpp"

namespace ptherm::spice {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Circuit inverter_circuit() {
  const Technology t = Technology::cmos012();
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("DD", vdd, Circuit::ground(), t.vdd);
  ckt.add_vsource("IN", in, Circuit::ground(), 0.0);
  ckt.add_mosfet("N1", out, in, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
  ckt.add_mosfet("P1", out, in, vdd, vdd, MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
  ckt.add_capacitor("L", out, Circuit::ground(), 10e-15);
  ckt.add_resistor("S", in, Circuit::ground(), 1e6);
  return ckt;
}

TEST(SpiceExport, ContainsEveryElementAndModelCards) {
  std::ostringstream os;
  export_deck(inverter_circuit(), os);
  const std::string deck = os.str();
  for (const char* token :
       {"VDD vdd 0 DC 1.2", "VIN in 0 DC 0", "MN1 out in 0 0 NMOS_PT", "MP1 out in vdd vdd",
        "CL out 0 1e-14", "RS in 0 1e+06", ".model NMOS_PT NMOS", ".model PMOS_PT PMOS",
        ".op", ".end"}) {
    EXPECT_NE(deck.find(token), std::string::npos) << "missing: " << token;
  }
}

TEST(SpiceExport, TemperatureWrittenInCelsius) {
  std::ostringstream os;
  ExportOptions opts;
  opts.temp = 358.15;  // 85 C
  export_deck(inverter_circuit(), os, opts);
  EXPECT_NE(os.str().find(".temp 85"), std::string::npos);
}

TEST(SpiceExport, SubthresholdParametersDocumentedAsComments) {
  std::ostringstream os;
  export_deck(inverter_circuit(), os);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("* subthreshold"), std::string::npos);
  EXPECT_NE(deck.find("sigma_DIBL"), std::string::npos);
}

TEST(SpiceExport, PmosVtoIsNegative) {
  std::ostringstream os;
  export_deck(inverter_circuit(), os);
  EXPECT_NE(os.str().find("PMOS (LEVEL=1 VTO=-0.32"), std::string::npos);
}

TEST(SpiceExport, DeckWithoutMosfetsHasNoModelCards) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V", a, Circuit::ground(), 1.0);
  ckt.add_resistor("R", a, Circuit::ground(), 100.0);
  std::ostringstream os;
  export_deck(ckt, os);
  EXPECT_EQ(os.str().find(".model"), std::string::npos);
  EXPECT_NE(os.str().find("RR a 0 100"), std::string::npos);
}

TEST(SpiceExport, FileVariantWrites) {
  const std::string path = "test_export.sp";
  EXPECT_TRUE(export_deck_file(inverter_circuit(), path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ptherm::spice
