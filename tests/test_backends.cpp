// Tests for the pluggable thermal-backend layer: the factory, the
// parametrized backend matrix (every backend must run the concurrent solve
// and produce physically sane, mutually consistent results), pairwise
// influence-operator agreement, transient capability gating, and the
// option-validation contracts at solver construction.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan small_plan(double p_total = 2.0) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

CosimOptions backend_opts(ThermalBackend backend) {
  CosimOptions opts;
  opts.backend = backend;
  if (backend == ThermalBackend::Fdm) {
    opts.fdm.nx = 24;
    opts.fdm.ny = 24;
    opts.fdm.nz = 12;
  }
  return opts;
}

const char* backend_label(ThermalBackend b) {
  switch (b) {
    case ThermalBackend::Analytic: return "Analytic";
    case ThermalBackend::Fdm: return "Fdm";
    case ThermalBackend::Spectral: return "Spectral";
  }
  return "Unknown";
}

class BackendMatrix : public ::testing::TestWithParam<ThermalBackend> {};

TEST_P(BackendMatrix, FactoryReportsTheSelectedBackend) {
  const auto backend = make_thermal_backend(die_1mm(), backend_opts(GetParam()));
  ASSERT_NE(backend, nullptr);
  std::string expect = backend_label(GetParam());
  for (auto& c : expect) c = static_cast<char>(std::tolower(c));
  EXPECT_EQ(backend->name(), expect);
}

TEST_P(BackendMatrix, CosimConvergesWithSaneTemperatures) {
  ElectroThermalSolver solver(tech(), small_plan(), backend_opts(GetParam()));
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
  for (const auto& b : r.blocks) {
    EXPECT_GT(b.temperature, die_1mm().t_sink);
    EXPECT_GT(b.p_leakage, 0.0);
  }
}

TEST_P(BackendMatrix, InfluenceIsPositiveWithDominantDiagonal) {
  ElectroThermalSolver solver(tech(), small_plan(), backend_opts(GetParam()));
  const auto& m = solver.influence_matrix();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_GT(m.at(i, j), 0.0);
      if (i != j) {
        EXPECT_GT(m.at(i, i), m.at(i, j));
      }
    }
  }
}

TEST_P(BackendMatrix, InfluenceColumnsMatchUnitSourceSurfaceRises) {
  // The influence build and the steady-solve query path must describe the
  // same physics: column j of R equals the backend's surface rises for a
  // unit-power source j at the block centres.
  const auto fp = small_plan();
  const auto opts = backend_opts(GetParam());
  const auto backend = make_thermal_backend(fp.die(), opts);
  const auto samples = block_centre_samples(fp);
  auto sources = fp.heat_sources(tech());
  const auto r = backend->build_influence(sources, samples);
  for (std::size_t j = 0; j < sources.size(); ++j) {
    std::vector<thermal::HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    const auto rises = backend->surface_rises(one, samples);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_NEAR(r(i, j), rises[i], 1e-9 * rises[i]) << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST_P(BackendMatrix, SurfaceRiseMapAgreesWithPointQueries) {
  const auto fp = small_plan();
  const auto backend = make_thermal_backend(fp.die(), backend_opts(GetParam()));
  const auto sources = fp.heat_sources(tech());
  const int nx = 8, ny = 8;
  const auto map = backend->surface_rise_map(sources, nx, ny);
  ASSERT_EQ(map.size(), static_cast<std::size_t>(nx) * ny);
  // Spot-check the centre cell against the point-query path.
  const std::vector<thermal::SurfaceSample> centre = {
      {fp.die().width * 4.5 / nx, fp.die().height * 4.5 / ny}};
  const auto rise = backend->surface_rises(sources, centre);
  EXPECT_NEAR(map[4 * nx + 4], rise[0], 1e-9 * rise[0]);
}

TEST_P(BackendMatrix, TransientCapabilityIsGatedNotSilentlyIgnored) {
  const auto backend = make_thermal_backend(die_1mm(), backend_opts(GetParam()));
  if (GetParam() == ThermalBackend::Fdm || GetParam() == ThermalBackend::Spectral) {
    EXPECT_TRUE(backend->supports_transient());
    EXPECT_NE(backend->make_transient_state(), nullptr);
  } else {
    EXPECT_FALSE(backend->supports_transient());
    EXPECT_THROW((void)backend->make_transient_state(), PreconditionError);
  }
}

TEST_P(BackendMatrix, BatchedTransientReadbackMatchesPointQueries) {
  // The per-step block-temperature readback goes through the batched
  // surface_rises (spectral: one dense mode-synthesis matvec; FDM: the
  // default loop) — it must agree with the per-point virtual to rounding.
  if (GetParam() == ThermalBackend::Analytic) GTEST_SKIP() << "steady-only backend";
  const auto fp = small_plan();
  const auto backend = make_thermal_backend(fp.die(), backend_opts(GetParam()));
  const auto state = backend->make_transient_state();
  auto sources = fp.heat_sources(tech());
  backend->step_transient(*state, 5e-4, sources);
  const auto samples = block_centre_samples(fp);
  std::vector<double> batched(samples.size());
  state->surface_rises(samples, batched);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double want = state->surface_rise(samples[i].x, samples[i].y);
    EXPECT_GT(want, 0.0);
    EXPECT_NEAR(batched[i], want, 1e-12 * want) << "sample " << i;
  }
  // Changing the query points must re-key the cached gather, not reuse it.
  std::vector<thermal::SurfaceSample> moved(samples.begin(), samples.end());
  moved[0].x *= 0.5;
  std::vector<double> batched_moved(moved.size());
  state->surface_rises(moved, batched_moved);
  EXPECT_NEAR(batched_moved[0], state->surface_rise(moved[0].x, moved[0].y),
              1e-12 * batched_moved[0]);
  EXPECT_NE(batched_moved[0], batched[0]);
}

TEST(BackendAgreement, FdmStencilReadbackIsBitwiseIdenticalToPointQueries) {
  // The FDM transient state's batched readback hoists the per-point
  // bounds/centre arithmetic into cached bilinear stencils. The cached path
  // keeps the exact term order of FdmThermalSolver::surface_rise, so it is
  // not merely close — it is the same doubles, including at the clamped rim
  // and corners.
  const auto fp = small_plan();
  const auto backend = make_thermal_backend(fp.die(), backend_opts(ThermalBackend::Fdm));
  const auto state = backend->make_transient_state();
  auto sources = fp.heat_sources(tech());
  backend->step_transient(*state, 5e-4, sources);
  const double w = fp.die().width;
  const double h = fp.die().height;
  const std::vector<thermal::SurfaceSample> points = {
      {0.0, 0.0},          // corner: both axes clamped
      {w, h},              // far corner
      {w * 0.5, 0.0},      // edge
      {w * 0.013, h * 0.87},
      {w * 0.5, h * 0.5},
      {w * 0.25, h * 0.75},
  };
  std::vector<double> batched(points.size());
  state->surface_rises(points, batched);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batched[i], state->surface_rise(points[i].x, points[i].y)) << "point " << i;
  }
  // Stepping further reuses the cached stencils on the fresh field.
  backend->step_transient(*state, 5e-4, sources);
  state->surface_rises(points, batched);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(batched[i], state->surface_rise(points[i].x, points[i].y))
        << "point " << i << " after second step";
  }
}

TEST(BackendAgreement, TransientStateIsRejectedByAForeignBackend) {
  // A state minted by one backend must not be silently integrated by
  // another — the field layouts are incompatible.
  CosimOptions fdm_opts = backend_opts(ThermalBackend::Fdm);
  const auto fdm = make_thermal_backend(die_1mm(), fdm_opts);
  const auto spectral = make_thermal_backend(die_1mm(), backend_opts(ThermalBackend::Spectral));
  const auto fdm_state = fdm->make_transient_state();
  const auto sp_state = spectral->make_transient_state();
  const auto sources = small_plan().heat_sources(tech());
  EXPECT_THROW(spectral->step_transient(*fdm_state, 1e-4, sources), PreconditionError);
  EXPECT_THROW(fdm->step_transient(*sp_state, 1e-4, sources), PreconditionError);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendMatrix,
                         ::testing::Values(ThermalBackend::Analytic, ThermalBackend::Fdm,
                                           ThermalBackend::Spectral),
                         [](const ::testing::TestParamInfo<ThermalBackend>& info) {
                           return backend_label(info.param);
                         });

TEST(BackendAgreement, CosimResultsAgreeAcrossAllThreeBackends) {
  // Spectral and FDM both solve the boundary-value problem near-exactly, so
  // they must agree tightly; the analytic image model carries the paper's
  // min-estimator modeling error, so its band is the looser seed tolerance.
  const auto fp = small_plan(3.0);
  CosimResult results[3];
  const ThermalBackend backends[] = {ThermalBackend::Analytic, ThermalBackend::Fdm,
                                     ThermalBackend::Spectral};
  for (int b = 0; b < 3; ++b) {
    ElectroThermalSolver solver(tech(), fp, backend_opts(backends[b]));
    results[b] = solver.solve();
    ASSERT_TRUE(results[b].converged) << backend_label(backends[b]);
  }
  const double sink = die_1mm().t_sink;
  const double rise_a = results[0].max_temperature - sink;
  const double rise_f = results[1].max_temperature - sink;
  const double rise_s = results[2].max_temperature - sink;
  EXPECT_NEAR(rise_s / rise_f, 1.0, 0.10);  // two near-exact solvers
  EXPECT_NEAR(rise_a / rise_f, 1.0, 0.25);  // paper's estimator band
  EXPECT_NEAR(rise_a / rise_s, 1.0, 0.25);
  EXPECT_NEAR(results[2].total_leakage / results[1].total_leakage, 1.0, 0.10);
}

TEST(BackendAgreement, InfluenceOperatorsAgreePairwise) {
  const auto fp = small_plan();
  const auto samples = block_centre_samples(fp);
  const auto sources = fp.heat_sources(tech());

  const auto analytic =
      build_influence_analytic(fp.die(), sources, samples, thermal::ImageOptions{});
  thermal::FdmOptions fo;
  fo.nx = 24;
  fo.ny = 24;
  fo.nz = 12;
  const thermal::FdmThermalSolver fdm_solver(fp.die(), fo);
  const auto fdm = build_influence_fdm(fdm_solver, sources, samples);
  const thermal::SpectralThermalSolver sp_solver(fp.die(), {});
  InfluenceBuildStats sp_stats;
  const auto spectral = build_influence_spectral(sp_solver, sources, samples, &sp_stats);

  ASSERT_EQ(analytic.size(), fdm.size());
  ASSERT_EQ(analytic.size(), spectral.size());
  EXPECT_EQ(sp_stats.columns, static_cast<int>(sources.size()));
  EXPECT_EQ(sp_stats.modes, sp_solver.mode_count());
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    for (std::size_t j = 0; j < analytic.size(); ++j) {
      // Spectral vs FDM: discretization plus the top-layer cell-centre depth
      // offset (FDM reports dz/2 below the surface). That offset concentrates
      // in the sharply peaked self-coupling, so the diagonal gets a wider
      // band; the matched-depth comparison in test_thermal_spectral.cpp pins
      // the solvers themselves to 2%.
      const double band = (i == j) ? 0.15 : 0.10;
      EXPECT_NEAR(spectral.at(i, j), fdm.at(i, j), band * fdm.at(i, j))
          << "spectral/fdm entry (" << i << ", " << j << ")";
      // Analytic carries the Eq. (20) min-estimator error on top.
      EXPECT_NEAR(analytic.at(i, j), spectral.at(i, j), 0.25 * spectral.at(i, j))
          << "analytic/spectral entry (" << i << ", " << j << ")";
    }
  }
}

TEST(BackendAgreement, SpectralInfluenceIsReciprocalOnSymmetricFloorplan) {
  const auto fp = small_plan();
  const thermal::SpectralThermalSolver solver(fp.die(), {});
  const auto op =
      build_influence_spectral(solver, fp.heat_sources(tech()), block_centre_samples(fp));
  for (std::size_t i = 0; i < op.size(); ++i) {
    for (std::size_t j = i + 1; j < op.size(); ++j) {
      EXPECT_NEAR(op.at(i, j), op.at(j, i), 1e-9 * op.at(i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(OptionValidation, CosimOptionsAreCheckedAtConstruction) {
  const auto fp = small_plan();
  auto expect_throw = [&](auto mutate) {
    CosimOptions opts;
    mutate(opts);
    EXPECT_THROW(ElectroThermalSolver(tech(), fp, opts), PreconditionError);
  };
  expect_throw([](CosimOptions& o) { o.damping = 0.0; });
  expect_throw([](CosimOptions& o) { o.damping = 1.5; });
  expect_throw([](CosimOptions& o) { o.tol = 0.0; });
  expect_throw([](CosimOptions& o) { o.tol = -1e-3; });
  expect_throw([](CosimOptions& o) { o.max_iterations = 0; });
  expect_throw([](CosimOptions& o) { o.runaway_rise_limit = 0.0; });
  expect_throw([](CosimOptions& o) { o.r_package = -0.1; });
}

TEST(OptionValidation, TransientOptionsAreCheckedAtEntry) {
  const auto fp = small_plan();
  const ActivityProfile nominal = [](std::size_t, double) { return 1.0; };
  auto expect_throw = [&](auto mutate) {
    TransientCosimOptions opts;
    opts.fdm.nx = 8;
    opts.fdm.ny = 8;
    opts.fdm.nz = 4;
    mutate(opts);
    EXPECT_THROW((void)solve_transient_cosim(tech(), fp, nominal, opts), PreconditionError);
  };
  expect_throw([](TransientCosimOptions& o) { o.dt = 0.0; });
  expect_throw([](TransientCosimOptions& o) { o.dt = -1e-4; });
  expect_throw([](TransientCosimOptions& o) { o.t_stop = 0.5e-4; });  // < dt
  expect_throw([](TransientCosimOptions& o) { o.record_every = 0; });
  // A steady-only backend must be rejected up front, not fail mid-run.
  // (Spectral is transient-capable since the exponential-integrator backend;
  // only the analytic image model remains steady-only.)
  expect_throw([](TransientCosimOptions& o) { o.backend = ThermalBackend::Analytic; });
}

TEST(OptionValidation, TransientRunsOnEveryTransientCapableBackend) {
  const auto fp = small_plan(1.0);
  const ActivityProfile nominal = [](std::size_t, double) { return 1.0; };
  for (ThermalBackend b : {ThermalBackend::Fdm, ThermalBackend::Spectral}) {
    TransientCosimOptions opts;
    opts.backend = b;
    opts.fdm.nx = 8;
    opts.fdm.ny = 8;
    opts.fdm.nz = 4;
    opts.dt = 1e-3;
    opts.t_stop = 5e-3;
    const auto r = solve_transient_cosim(tech(), fp, nominal, opts);
    EXPECT_EQ(r.times.size(), r.block_temps.size()) << backend_label(b);
    EXPECT_GT(r.peak_temperature(), die_1mm().t_sink) << backend_label(b);
    EXPECT_GT(r.total_cg_iterations, 0) << backend_label(b);
    EXPECT_EQ(r.backend_stats.transient_steps, 5) << backend_label(b);
  }
}

}  // namespace
}  // namespace ptherm::core
