// Tests for the 3-D finite-difference reference solver: exact 1-D limits,
// energy bookkeeping, grid convergence, transients, and agreement with the
// analytic image model at die scale.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "thermal/fdm.hpp"

namespace ptherm::thermal {
namespace {

Die die_1mm() {
  Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 300.0;
  return d;
}

TEST(Fdm, UniformHeatingMatchesOneDimensionalConduction) {
  // Whole top surface heated uniformly: pure 1-D conduction with flux q'' =
  // P/A. Cell-centred with Dirichlet bottom: surface cell rise =
  // q''*(t - dz/2)/k.
  const auto die = die_1mm();
  FdmOptions opts;
  opts.nx = 8;
  opts.ny = 8;
  opts.nz = 20;
  FdmThermalSolver solver(die, opts);
  const double p = 1.0;
  const std::vector<HeatSource> sources = {
      {0.5e-3, 0.5e-3, 1e-3, 1e-3, p}};
  const auto sol = solver.solve_steady(sources);
  ASSERT_TRUE(sol.converged);
  const double q_flux = p / (die.width * die.height);
  const double dz = die.thickness / opts.nz;
  const double expected_surface = q_flux * (die.thickness - 0.5 * dz) / die.k_si;
  EXPECT_NEAR(solver.surface_rise(sol, 0.5e-3, 0.5e-3), expected_surface,
              0.01 * expected_surface);
  // And laterally uniform.
  EXPECT_NEAR(solver.surface_rise(sol, 0.1e-3, 0.9e-3),
              solver.surface_rise(sol, 0.9e-3, 0.1e-3), 1e-9);
}

TEST(Fdm, SurfacePowerConservesTotal) {
  FdmThermalSolver solver(die_1mm(), {});
  const std::vector<HeatSource> sources = {
      {0.3e-3, 0.4e-3, 0.17e-3, 0.23e-3, 0.7},
      {0.7e-3, 0.7e-3, 0.05e-3, 0.05e-3, 0.3}};
  const auto q = solver.surface_power(sources);
  const double total = std::accumulate(q.begin(), q.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // All power lands in the top layer.
  for (int k = 1; k < solver.nz(); ++k) {
    for (int j = 0; j < solver.ny(); ++j) {
      for (int i = 0; i < solver.nx(); ++i) {
        EXPECT_EQ(q[solver.cell_index(i, j, k)], 0.0);
      }
    }
  }
}

TEST(Fdm, SurfacePowerConservesClippedSourcePower) {
  // The clipping policy: interior sources deposit their power, straddling
  // sources deposit their FULL power over the in-die part of the footprint,
  // fully off-die sources deposit nothing. sum(rhs) must equal the clipped
  // source power budget to 1e-12.
  FdmThermalSolver solver(die_1mm(), {});
  const std::vector<HeatSource> sources = {
      {0.3e-3, 0.4e-3, 0.17e-3, 0.23e-3, 0.7},    // interior
      {0.02e-3, 0.5e-3, 0.2e-3, 0.15e-3, 0.4},    // straddles the x = 0 edge
      {0.98e-3, 0.99e-3, 0.1e-3, 0.1e-3, 0.25},   // straddles the far corner
      {1.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 5.0}};     // fully off the die
  const auto q = solver.surface_power(sources);
  const double total = std::accumulate(q.begin(), q.end(), 0.0);
  const double expected = 0.7 + 0.4 + 0.25;  // off-die source contributes 0
  EXPECT_NEAR(total, expected, 1e-12 * expected);
}

TEST(Fdm, StraddlingSourceDepositsFullPowerOnDie) {
  FdmThermalSolver solver(die_1mm(), {});
  // Half the footprint hangs off the left edge; the seed build lost that
  // half's wattage silently.
  const std::vector<HeatSource> sources = {{0.0, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}};
  const auto q = solver.surface_power(sources);
  const double total = std::accumulate(q.begin(), q.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Fdm, FullyOffDieSourceDepositsNothing) {
  FdmThermalSolver solver(die_1mm(), {});
  const std::vector<HeatSource> sources = {{-0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 3.0}};
  const auto q = solver.surface_power(sources);
  for (double v : q) EXPECT_EQ(v, 0.0);
}

TEST(Fdm, DegenerateSourceIsRejectedAtEveryEntryPoint) {
  FdmThermalSolver solver(die_1mm(), {});
  const std::vector<HeatSource> zero_w = {{0.5e-3, 0.5e-3, 0.0, 0.1e-3, 1.0}};
  const std::vector<HeatSource> neg_l = {{0.5e-3, 0.5e-3, 0.1e-3, -0.1e-3, 1.0}};
  EXPECT_THROW((void)solver.surface_power(zero_w), PreconditionError);
  EXPECT_THROW((void)solver.surface_power(neg_l), PreconditionError);
  EXPECT_THROW((void)solver.solve_steady(zero_w), PreconditionError);
  std::vector<double> field(solver.cell_count(), 0.0);
  EXPECT_THROW((void)solver.step_transient(field, 1e-3, neg_l), PreconditionError);
}

TEST(Fdm, TransientOperatorCacheSurvivesChangingDt) {
  // step_transient caches the shifted operator keyed by dt; alternating time
  // steps must still match a cache-cold solver stepping the same sequence.
  const auto die = die_1mm();
  FdmOptions opts;
  opts.nx = 8;
  opts.ny = 8;
  opts.nz = 6;
  const std::vector<HeatSource> sources = {{0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 1.0}};
  const double dts[] = {0.4e-3, 0.1e-3, 0.4e-3, 0.1e-3, 0.4e-3};

  FdmThermalSolver cached(die, opts);
  std::vector<double> rise_cached(cached.cell_count(), 0.0);
  std::vector<double> rise_cold(cached.cell_count(), 0.0);
  for (const double dt : dts) {
    cached.step_transient(rise_cached, dt, sources);
    // A fresh solver per step can never reuse a stale operator.
    FdmThermalSolver cold(die, opts);
    cold.step_transient(rise_cold, dt, sources);
    for (std::size_t c = 0; c < rise_cached.size(); ++c) {
      ASSERT_NEAR(rise_cached[c], rise_cold[c], 1e-12);
    }
  }
}

TEST(Fdm, PartialCellOverlapIsWeighted) {
  FdmOptions opts;
  opts.nx = 10;
  opts.ny = 10;
  opts.nz = 4;
  FdmThermalSolver solver(die_1mm(), opts);
  // A source covering exactly half of one 100x100 um cell in x.
  const std::vector<HeatSource> sources = {{0.05e-3, 0.05e-3, 0.05e-3, 0.1e-3, 1.0}};
  const auto q = solver.surface_power(sources);
  EXPECT_NEAR(q[solver.cell_index(0, 0, 0)], 1.0, 1e-9);
}

TEST(Fdm, HotterAboveTheSourceThanFarAway) {
  FdmThermalSolver solver(die_1mm(), {});
  const std::vector<HeatSource> sources = {{0.25e-3, 0.25e-3, 0.1e-3, 0.1e-3, 0.5}};
  const auto sol = solver.solve_steady(sources);
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(solver.surface_rise(sol, 0.25e-3, 0.25e-3),
            2.0 * solver.surface_rise(sol, 0.85e-3, 0.85e-3));
  EXPECT_GT(solver.surface_rise(sol, 0.85e-3, 0.85e-3), 0.0);
}

TEST(Fdm, GridRefinementConverges) {
  const std::vector<HeatSource> sources = {{0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 1.0}};
  auto rise = [&](int n) {
    FdmOptions opts;
    opts.nx = n;
    opts.ny = n;
    opts.nz = n / 2;
    FdmThermalSolver solver(die_1mm(), opts);
    const auto sol = solver.solve_steady(sources);
    return solver.surface_rise(sol, 0.5e-3, 0.5e-3);
  };
  const double c16 = rise(16);
  const double c24 = rise(24);
  const double c32 = rise(32);
  EXPECT_LT(std::abs(c32 - c24), std::abs(c24 - c16));
  EXPECT_NEAR(c32 / c24, 1.0, 0.08);
}

TEST(Fdm, MatchesAnalyticImageModelAtDieScale) {
  // Die-scale cross-validation of the paper's §3 model: centre-of-block
  // temperatures within ~15% between FDM and the image-method closed form.
  const auto die = die_1mm();
  const std::vector<HeatSource> sources = {{0.35e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.5}};
  FdmOptions opts;
  opts.nx = 40;
  opts.ny = 40;
  opts.nz = 24;
  FdmThermalSolver fdm(die, opts);
  const auto sol = fdm.solve_steady(sources);
  ASSERT_TRUE(sol.converged);
  ImageOptions iopts;
  iopts.lateral_order = 3;
  ChipThermalModel analytic(die, sources, iopts);
  for (const auto& p : {std::pair{0.35e-3, 0.5e-3}, std::pair{0.6e-3, 0.5e-3},
                        std::pair{0.9e-3, 0.9e-3}}) {
    const double t_fdm = fdm.surface_rise(sol, p.first, p.second);
    const double t_ana = analytic.rise(p.first, p.second);
    EXPECT_NEAR(t_ana / t_fdm, 1.0, 0.18)
        << "at (" << p.first << ", " << p.second << ")";
  }
}

TEST(Fdm, TransientApproachesSteadyState) {
  const auto die = die_1mm();
  FdmOptions opts;
  opts.nx = 12;
  opts.ny = 12;
  opts.nz = 10;
  FdmThermalSolver solver(die, opts);
  const std::vector<HeatSource> sources = {{0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 1.0}};
  const auto steady = solver.solve_steady(sources);
  ASSERT_TRUE(steady.converged);

  std::vector<double> rise(solver.cell_count(), 0.0);
  // Thermal time constant of the die ~ cv*t^2/k ~ 1.3 ms; step well past it.
  const double dt = 0.5e-3;
  double max_seen = 0.0;
  for (int s = 0; s < 40; ++s) {
    solver.step_transient(rise, dt, sources);
    max_seen = std::max(max_seen, solver.surface_rise({rise, 0, true, false, 0.0, {}}, 0.5e-3, 0.5e-3));
  }
  const double t_final = solver.surface_rise({rise, 0, true, false, 0.0, {}}, 0.5e-3, 0.5e-3);
  const double t_steady = solver.surface_rise(steady, 0.5e-3, 0.5e-3);
  EXPECT_NEAR(t_final / t_steady, 1.0, 0.02);
  // Monotone heating: the final value is the max.
  EXPECT_NEAR(max_seen, t_final, 1e-9);
}

TEST(Fdm, TransientCoolsAfterPowerOff) {
  const auto die = die_1mm();
  FdmOptions opts;
  opts.nx = 10;
  opts.ny = 10;
  opts.nz = 8;
  FdmThermalSolver solver(die, opts);
  const std::vector<HeatSource> on = {{0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 1.0}};
  const std::vector<HeatSource> off = {};
  std::vector<double> rise(solver.cell_count(), 0.0);
  for (int s = 0; s < 20; ++s) solver.step_transient(rise, 0.5e-3, on);
  const double hot = solver.surface_rise({rise, 0, true, false, 0.0, {}}, 0.5e-3, 0.5e-3);
  for (int s = 0; s < 20; ++s) solver.step_transient(rise, 0.5e-3, off);
  const double cooled = solver.surface_rise({rise, 0, true, false, 0.0, {}}, 0.5e-3, 0.5e-3);
  EXPECT_LT(cooled, 0.15 * hot);
}

TEST(Fdm, IsothermalSidesRunCoolerThanAdiabatic) {
  const auto die = die_1mm();
  const std::vector<HeatSource> sources = {{0.15e-3, 0.5e-3, 0.1e-3, 0.1e-3, 0.5}};
  FdmOptions adiabatic;
  adiabatic.nx = 20;
  adiabatic.ny = 20;
  adiabatic.nz = 12;
  FdmOptions isothermal = adiabatic;
  isothermal.lateral = LateralBoundary::Isothermal;
  FdmThermalSolver sa(die, adiabatic);
  FdmThermalSolver si(die, isothermal);
  const auto ra = sa.solve_steady(sources);
  const auto ri = si.solve_steady(sources);
  EXPECT_GT(sa.surface_rise(ra, 0.15e-3, 0.5e-3), si.surface_rise(ri, 0.15e-3, 0.5e-3));
}

TEST(Fdm, TransientThrowsInsteadOfIntegratingAnUnconvergedField) {
  FdmOptions opts;
  opts.nx = 8;
  opts.ny = 8;
  opts.nz = 6;
  opts.cg.max_iterations = 1;  // no solve can finish in one iteration...
  FdmThermalSolver solver(die_1mm(), opts);
  const std::vector<HeatSource> sources = {{0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 1.0}};
  std::vector<double> rise(solver.cell_count(), 0.0);
  // ...provided the operator is not near-diagonal: a huge dt makes the
  // shifted system essentially the steady Laplacian.
  EXPECT_THROW((void)solver.step_transient(rise, 10.0, sources), ConvergenceError);
  // The field must be untouched by the failed step.
  for (double v : rise) EXPECT_EQ(v, 0.0);
}

TEST(Fdm, RejectsBadInput) {
  FdmOptions tiny;
  tiny.nx = 1;
  tiny.ny = 8;
  tiny.nz = 8;
  EXPECT_THROW(FdmThermalSolver(die_1mm(), tiny), PreconditionError);
  FdmThermalSolver solver(die_1mm(), {});
  std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(solver.step_transient(wrong_size, 1e-3, {}), PreconditionError);
  std::vector<double> field(solver.cell_count(), 0.0);
  EXPECT_THROW(solver.step_transient(field, -1.0, {}), PreconditionError);
}

}  // namespace
}  // namespace ptherm::thermal
