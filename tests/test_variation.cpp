// Tests for the process-variation layer: Gaussian VT0 sampling, the exact
// lognormal leakage multiplier, and the mean-vs-nominal penalty on a
// netlist.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "device/variation.hpp"
#include "netlist/netlist.hpp"

namespace ptherm::device {
namespace {

Technology tech() { return Technology::cmos012(); }

TEST(Variation, SamplesHaveRequestedMoments) {
  VariationModel var{0.03};  // 30 mV sigma
  Rng rng(99);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = var.sample_delta_vt0(rng);
    sum += d;
    sum_sq += d * d;
  }
  const double mean = sum / n;
  const double sigma = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 5e-4);
  EXPECT_NEAR(sigma, 0.03, 5e-4);
}

TEST(Variation, MultiplierIsExactExponential) {
  VariationModel var{0.03};
  const double m_up = var.leakage_multiplier(tech(), -0.03, 300.0);
  const double m_down = var.leakage_multiplier(tech(), 0.03, 300.0);
  const double nvt = tech().n_swing * thermal_voltage(300.0);
  EXPECT_NEAR(m_up, std::exp(0.03 / nvt), 1e-12);
  EXPECT_NEAR(m_up * m_down, 1.0, 1e-12);  // symmetric in log space
  EXPECT_DOUBLE_EQ(var.leakage_multiplier(tech(), 0.0, 300.0), 1.0);
}

TEST(Variation, LognormalMeanPenaltyMatchesClosedForm) {
  // Monte Carlo of the multiplier must reproduce exp(s^2/2).
  VariationModel var{0.04};
  Rng rng(7);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += var.leakage_multiplier(tech(), var.sample_delta_vt0(rng), 300.0);
  }
  const double mc_mean = sum / n;
  EXPECT_NEAR(mc_mean / var.mean_multiplier(tech(), 300.0), 1.0, 0.03);
  EXPECT_GT(var.mean_multiplier(tech(), 300.0), 1.3);  // s ~ 1.07: real penalty
}

TEST(Variation, PenaltyShrinksWhenHot) {
  // s = sigma/(n VT) falls with temperature: variation matters most cold.
  VariationModel var{0.04};
  EXPECT_GT(var.mean_multiplier(tech(), 300.0), var.mean_multiplier(tech(), 400.0));
}

TEST(Variation, FreeMultiplierMatchesTheMemberForm) {
  const VariationModel var{0.03};
  for (const double dvt0 : {-0.05, 0.0, 0.02}) {
    EXPECT_EQ(leakage_multiplier(tech(), dvt0, 330.0),
              var.leakage_multiplier(tech(), dvt0, 330.0));
  }
}

TEST(Variation, ScenarioStreamsAreIndexedNotShared) {
  // Scenario s draws from Rng::stream(seed, s): the draws depend ONLY on
  // (seed, s, count) — never on how many other scenarios were sampled, in
  // what order, or from the same model object. This is the fix for the
  // shared-RNG coupling where enlarging a study perturbed existing samples.
  const VariationModel var{0.03};
  const auto lone = var.sample_scenario_delta_vt0(9, /*base_seed=*/42, /*index=*/3);
  std::vector<std::vector<double>> batch;
  for (std::uint64_t s = 0; s < 10000; ++s) {
    batch.push_back(var.sample_scenario_delta_vt0(9, 42, s));
  }
  ASSERT_EQ(lone.size(), 9u);
  for (std::size_t j = 0; j < lone.size(); ++j) {
    EXPECT_EQ(lone[j], batch[3][j]);  // bitwise: alone vs inside the 10k sweep
  }
  // The draws really come from the dedicated stream...
  Rng stream = Rng::stream(42, 3);
  for (std::size_t j = 0; j < lone.size(); ++j) {
    EXPECT_EQ(lone[j], var.sample_delta_vt0(stream));
  }
  // ...and adjacent indices are decorrelated streams, not shifted copies of
  // one sequence (the trap Rng(seed + s) would fall into).
  EXPECT_NE(batch[4][0], batch[3][1]);
  EXPECT_NE(batch[4][0], batch[3][0]);
}

}  // namespace
}  // namespace ptherm::device

namespace ptherm::netlist {
namespace {

using device::Technology;
using device::VariationModel;

Technology tech() { return Technology::cmos012(); }

TEST(VariationLeakage, MeanExceedsNominalByTheLognormalFactor) {
  Rng build(3);
  const CellLibrary lib(tech());
  const auto nl = make_random_netlist(lib, 400, build);
  const VariationModel var{0.035};
  const auto stats = variation_leakage(nl, tech(), var, 300.0, 300, /*seed=*/4);
  EXPECT_NEAR(stats.nominal, nl.total_off_current(tech(), 300.0), 1e-15);
  const double expected_penalty = var.mean_multiplier(tech(), 300.0);
  EXPECT_NEAR(stats.mean / stats.nominal, expected_penalty, 0.1 * expected_penalty);
  EXPECT_GT(stats.p95, stats.mean);
  EXPECT_GT(stats.stddev, 0.0);
}

TEST(VariationLeakage, ZeroSigmaIsDeterministic) {
  Rng build(5);
  const CellLibrary lib(tech());
  const auto nl = make_random_netlist(lib, 50, build);
  const auto stats = variation_leakage(nl, tech(), VariationModel{0.0}, 300.0, 20, /*seed=*/6);
  EXPECT_NEAR(stats.mean, stats.nominal, 1e-12 * stats.nominal);
  EXPECT_LT(stats.stddev, 1e-6 * stats.nominal);  // catastrophic-cancel noise only
  EXPECT_THROW(variation_leakage(nl, tech(), VariationModel{0.0}, 300.0, 0, /*seed=*/6),
               PreconditionError);
}

TEST(VariationLeakage, ManyGatesAverageOut) {
  // The relative spread of the total shrinks with gate count (independent
  // per-gate draws): sigma_total/mean ~ 1/sqrt(N).
  const CellLibrary lib(tech());
  const VariationModel var{0.035};
  auto rel_spread = [&](int gates, std::uint64_t seed) {
    Rng build(seed);
    const auto nl = make_random_netlist(lib, gates, build);
    const auto s = variation_leakage(nl, tech(), var, 300.0, 200, seed + 1);
    return s.stddev / s.mean;
  };
  EXPECT_GT(rel_spread(50, 11), 2.0 * rel_spread(800, 13));
}

}  // namespace
}  // namespace ptherm::netlist
