// Cross-module integration tests: the compact gate model against the full
// MNA circuit solver, netlist-to-floorplan-to-cosim end to end, and the
// paper's headline speed ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "device/mosfet.hpp"
#include "floorplan/generators.hpp"
#include "leakage/gate.hpp"
#include "netlist/cells.hpp"
#include "netlist/netlist.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

/// Builds the full transistor-level NAND2 circuit for one static input
/// vector and returns the supply leakage current from an MNA solve.
double nand2_spice_leakage(bool a, bool b, double temp) {
  const Technology t = tech();
  const auto sizing = netlist::CellSizing::for_tech(t);
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto na = ckt.node("a");
  const auto nb = ckt.node("b");
  const auto out = ckt.node("out");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_vsource("VA", na, spice::Circuit::ground(), a ? t.vdd : 0.0);
  ckt.add_vsource("VB", nb, spice::Circuit::ground(), b ? t.vdd : 0.0);
  // Pull-down stack: input a at the bottom, b on top (matches make_nand).
  const double wn = 2.0 * sizing.wn_unit;
  ckt.add_mosfet("MNA", mid, na, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, sizing.length));
  ckt.add_mosfet("MNB", out, nb, mid, spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, sizing.length));
  // Pull-up pair.
  ckt.add_mosfet("MPA", out, na, vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  ckt.add_mosfet("MPB", out, nb, vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  spice::DcOptions opts;
  opts.temp = temp;
  const auto sol = spice::solve_dc(ckt, opts);
  return -sol.vsource_currents.at("VDD");
}

TEST(Integration, GateModelTracksMnaForEveryNand2Vector) {
  // Fig. 8 generalised to a complete gate. Three of the four vectors track
  // the transistor-level solve within ~12%. Vector (a=0, b=1) is the
  // documented limitation of the §2.2 "ON devices are internal shorts"
  // assumption: the ON top transistor only passes a degraded high level
  // (mid ~ VDD - VTH + subthreshold margin), so the OFF bottom device sees
  // less DIBL than the model assumes and the model overestimates by ~40%.
  // We pin that number so a regression in either direction is caught.
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand2");
  for (unsigned v = 0; v < 4; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const double i_model = leakage::gate_static(tech(), *cell, {a, b}, 300.0).i_off;
    const double i_spice = nand2_spice_leakage(a, b, 300.0);
    if (!a && b) {
      EXPECT_NEAR(i_model / i_spice, 1.43, 0.10) << "weak-one vector";
    } else {
      EXPECT_NEAR(i_model / i_spice, 1.0, 0.12) << "vector (" << a << ", " << b << ")";
    }
  }
}

TEST(Integration, GateModelTracksMnaAcrossTemperature) {
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand2");
  for (double temp : {300.0, 350.0, 400.0}) {
    const double i_model =
        leakage::gate_static(tech(), *cell, {false, false}, temp).i_off;
    const double i_spice = nand2_spice_leakage(false, false, temp);
    EXPECT_NEAR(i_model / i_spice, 1.0, 0.12) << "T = " << temp;
  }
}

TEST(Integration, CompactModelIsOrdersOfMagnitudeFasterThanMna) {
  // The paper's raison d'etre. Wall-clock smoke check (very loose bound so
  // CI noise cannot flake it): 100 gate-model evaluations must run at least
  // 20x faster than 10 MNA solves.
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand2");
  double sink = 0.0;
  // Best of three timings: the model loop finishes in microseconds, so a
  // single OS preemption mid-loop (seen under parallel ctest on loaded
  // machines) would otherwise dwarf the real cost.
  double model_loop = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 100; ++i) {
      sink += leakage::gate_static(tech(), *cell, {false, false}, 300.0 + i * 0.1).i_off;
    }
    const auto t1 = std::chrono::steady_clock::now();
    model_loop = std::min(model_loop, std::chrono::duration<double>(t1 - t0).count());
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    sink += nand2_spice_leakage(false, false, 300.0 + i);
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double model_per_eval = model_loop / 100.0;
  const double spice_per_eval = std::chrono::duration<double>(t2 - t1).count() / 10.0;
  EXPECT_GT(sink, 0.0);
  EXPECT_LT(model_per_eval * 20.0, spice_per_eval);
}

TEST(Integration, NetlistDrivenFloorplanCosim) {
  // End to end: build a random netlist, aggregate it into floorplan blocks,
  // run the concurrent solve, and check the temperatures feed back into the
  // reported leakage.
  const Technology t = tech();
  const netlist::CellLibrary lib(t);
  Rng rng(2024);

  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.t_sink = 318.15;
  floorplan::Floorplan fp(die);
  for (int bx = 0; bx < 2; ++bx) {
    for (int by = 0; by < 2; ++by) {
      floorplan::Block blk;
      blk.name = "tile" + std::to_string(bx) + std::to_string(by);
      blk.rect = {bx * 0.5e-3 + 0.05e-3, by * 0.5e-3 + 0.05e-3, 0.4e-3, 0.4e-3};
      blk.p_dynamic = 0.5 + 0.5 * bx;  // left tiles cooler than right tiles
      const auto nl = netlist::make_random_netlist(lib, 40, rng);
      for (const auto& inst : nl.instances()) {
        blk.gate_groups.push_back({inst.cell, inst.inputs, 2000.0});
      }
      fp.add_block(std::move(blk));
    }
  }

  core::ElectroThermalSolver solver(t, fp, {});
  const auto r = solver.solve();
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
  // Hotter (right) tiles leak more than cooler (left) ones despite identical
  // populations being statistically similar.
  const double left = r.blocks[0].temperature + r.blocks[1].temperature;
  const double right = r.blocks[2].temperature + r.blocks[3].temperature;
  EXPECT_GT(right, left);
  EXPECT_GT(r.total_leakage, 0.0);
}

TEST(Integration, ColdEvaluationUnderestimatesTotalPower) {
  // The quantitative version of the paper's motivation: single-pass power
  // at the sink temperature vs the concurrent fixed point.
  Rng rng(31);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 6.0;
  cfg.gates_per_mm2 = 2e5;
  thermal::Die die;
  die.width = 1e-3;
  die.height = 1e-3;
  die.t_sink = 338.15;  // 65 C sink: leakage matters
  auto fp = floorplan::make_uniform_grid(tech(), die, 3, 3, cfg, rng);
  core::ElectroThermalSolver solver(tech(), fp, {});
  const auto r = solver.solve();
  ASSERT_TRUE(r.converged);
  double cold_total = 0.0;
  for (const auto& b : fp.blocks()) cold_total += b.total_power(tech(), die.t_sink);
  EXPECT_GT(r.total_power(), cold_total);
}

}  // namespace
}  // namespace ptherm
