// Tests for the dynamic power models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "device/tech.hpp"
#include "power/dynamic.hpp"

namespace ptherm::power {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

SwitchingContext ctx() {
  SwitchingContext c;
  c.frequency = 1e9;
  c.activity = 0.1;
  c.c_load = 5e-15;
  c.tau_in = 50e-12;
  return c;
}

TEST(TransientPower, MatchesAlphaFCV2) {
  const double p = transient_power(tech(), ctx());
  EXPECT_NEAR(p, 0.1 * 1e9 * 5e-15 * 1.2 * 1.2, 1e-18);
}

TEST(TransientPower, QuadraticInVdd) {
  auto t = tech();
  const double p1 = transient_power(t, ctx());
  t.vdd *= 2.0;
  EXPECT_NEAR(transient_power(t, ctx()) / p1, 4.0, 1e-12);
}

TEST(ShortCircuit, ChargeIsPositiveForFiniteRamp) {
  const double q = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, ctx());
  EXPECT_GT(q, 0.0);
}

TEST(ShortCircuit, ZeroForInstantaneousInput) {
  auto c = ctx();
  c.tau_in = 0.0;
  EXPECT_DOUBLE_EQ(short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, c), 0.0);
}

TEST(ShortCircuit, ZeroWhenThresholdsCloseTheWindow) {
  auto t = tech();
  t.vt0_n = 0.7;
  t.vt0_p = 0.7;  // vtn + vtp > vdd: devices never conduct together
  EXPECT_DOUBLE_EQ(short_circuit_charge(t, 0.64e-6, 1.6e-6, 0.12e-6, ctx()), 0.0);
}

TEST(ShortCircuit, GrowsWithInputTransitionTime) {
  auto slow = ctx();
  slow.tau_in = 200e-12;
  auto fast = ctx();
  fast.tau_in = 20e-12;
  const double q_slow = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, slow);
  const double q_fast = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, fast);
  EXPECT_GT(q_slow, q_fast);
}

TEST(ShortCircuit, HeavyLoadSuppressesIt) {
  auto light = ctx();
  light.c_load = 1e-15;
  auto heavy = ctx();
  heavy.c_load = 100e-15;
  const double q_light = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, light);
  const double q_heavy = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, heavy);
  EXPECT_GT(q_light, 2.0 * q_heavy);
}

TEST(ShortCircuit, LimitedByWeakerDevice) {
  // Shrinking the pMOS only must reduce Qsc once it becomes the bottleneck.
  const double q_bal = short_circuit_charge(tech(), 0.64e-6, 1.6e-6, 0.12e-6, ctx());
  const double q_weak_p = short_circuit_charge(tech(), 0.64e-6, 0.16e-6, 0.12e-6, ctx());
  EXPECT_LT(q_weak_p, q_bal);
}

TEST(ShortCircuit, FractionOfDynamicPowerIsModest) {
  // For a typical load the short-circuit adder sits below ~30% of the
  // transient term — the regime [10] describes.
  const auto p = gate_dynamic_power(tech(), 0.64e-6, 1.6e-6, 0.12e-6, ctx());
  EXPECT_GT(p.short_circuit, 0.0);
  EXPECT_LT(p.short_circuit, 0.3 * p.transient);
  EXPECT_DOUBLE_EQ(p.total(), p.transient + p.short_circuit);
}

TEST(ShortCircuit, PowerScalesWithActivityAndFrequency) {
  auto base = ctx();
  auto busy = ctx();
  busy.activity = 0.2;
  busy.frequency = 2e9;
  const double p1 = short_circuit_power(tech(), 0.64e-6, 1.6e-6, 0.12e-6, base);
  const double p2 = short_circuit_power(tech(), 0.64e-6, 1.6e-6, 0.12e-6, busy);
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(ShortCircuit, RejectsBadGeometry) {
  EXPECT_THROW((void)short_circuit_charge(tech(), 0.0, 1e-6, 0.12e-6, ctx()),
               PreconditionError);
  auto c = ctx();
  c.tau_in = -1.0;
  EXPECT_THROW((void)short_circuit_charge(tech(), 1e-6, 1e-6, 0.12e-6, c),
               PreconditionError);
}

}  // namespace
}  // namespace ptherm::power
