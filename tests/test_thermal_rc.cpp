// Tests for the compact thermal RC and the Fig. 9/10 self-heating
// experiment: Rth formulas, exponential transients, and the extraction
// procedure used by the "measurement".
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "thermal/fdm.hpp"
#include "thermal/rc.hpp"

namespace ptherm::thermal {
namespace {

constexpr double kK = 148.0;
constexpr double kCv = 1.631e6;

TEST(DeviceRth, ShrinksWithDeviceArea) {
  const double small = device_r_th(kK, 1e-6, 0.35e-6, 500e-6);
  const double large = device_r_th(kK, 4e-6, 0.35e-6, 500e-6);
  EXPECT_GT(small, large);
  EXPECT_GT(large, 0.0);
}

TEST(DeviceRth, MagnitudeIsThousandsOfKelvinPerWatt) {
  // Micron-scale devices: Rth of order 1e3..1e4 K/W in silicon.
  const double rth = device_r_th(kK, 1e-6, 0.35e-6, 500e-6);
  EXPECT_GT(rth, 1e3);
  EXPECT_LT(rth, 1e5);
}

TEST(DeviceRth, SinkImageOnlyMattersForLargeDevices) {
  // For a tiny device the -P image at 2*t is a negligible correction.
  const double with_image = device_r_th(kK, 1e-6, 0.35e-6, 500e-6);
  const double no_image = rect_center_rise(kK, 1.0, 1e-6, 0.35e-6);
  EXPECT_NEAR(with_image / no_image, 1.0, 0.01);
  EXPECT_LT(with_image, no_image);
}

TEST(DeviceRth, AgreesWithFdmExtraction) {
  // The Fig. 10 comparison in miniature: analytic Rth vs an FDM solve of a
  // small silicon box with isothermal far boundaries. The source must span
  // several grid cells or the discrete peak under-reports; 8 x 4 um on a
  // 1 um grid does.
  const double w = 8e-6, l = 4e-6, p = 1e-3;
  Die box;
  box.width = 48e-6;
  box.height = 48e-6;
  box.thickness = 48e-6;
  box.k_si = kK;
  FdmOptions opts;
  opts.nx = 48;
  opts.ny = 48;
  opts.nz = 32;
  opts.lateral = LateralBoundary::Isothermal;
  FdmThermalSolver solver(box, opts);
  const std::vector<HeatSource> src = {{24e-6, 24e-6, w, l, p}};
  const auto sol = solver.solve_steady(src);
  ASSERT_TRUE(sol.converged);
  // Cell-centred FDM reports the first-layer average at z = dz/2; compare
  // against the analytic buried-potential form at exactly that depth (plus
  // the sink-plane image term device_r_th uses), which removes the surface-
  // extrapolation bias entirely.
  double sum = 0.0;
  for (int j = 23; j <= 24; ++j) {
    for (int i = 23; i <= 24; ++i) sum += sol.rise[solver.cell_index(i, j, 0)];
  }
  const double rth_fdm = (sum / 4.0) / p;
  const double dz_half = 0.5 * box.thickness / opts.nz;
  const HeatSource unit{0.0, 0.0, w, l, 1.0};
  const double rth_model =
      rect_rise_exact_at_depth(kK, unit, 0.0, 0.0, dz_half) -
      point_source_rise(kK, 1.0, box.thickness) * std::log(2.0);
  EXPECT_NEAR(rth_model / rth_fdm, 1.0, 0.08);
}

TEST(DeviceCth, ScalesWithVolumeFraction) {
  const double c1 = device_c_th(kCv, 500e-6, 0.5);
  const double c2 = device_c_th(kCv, 500e-6, 1.0);
  EXPECT_NEAR(c2 / c1, 8.0, 1e-9);  // r^3
}

TEST(DeviceRc, DefaultTimeConstantSuitsTheChopper) {
  // Fig. 9 shows near-saturating exponentials within a 3 Hz half-period
  // (167 ms): tau must sit well inside it.
  const auto rc = device_thermal_rc(kK, kCv, 2e-6, 0.35e-6, 500e-6);
  EXPECT_GT(rc.tau(), 5e-3);
  EXPECT_LT(rc.tau(), 100e-3);
}

SelfHeatingConfig config(double t_ambient_c = 30.0) {
  SelfHeatingConfig cfg;
  cfg.rc = device_thermal_rc(kK, kCv, 2e-6, 0.35e-6, 500e-6);
  cfg.t_ambient = celsius(t_ambient_c);
  cfg.v_drain = 3.3;
  cfg.i_on_ref = 3e-3;
  cfg.tc_current = 2e-3;
  cfg.f_chop = 3.0;
  cfg.t_stop = 1.0;
  cfg.dt = 5e-5;
  return cfg;
}

TEST(SelfHeating, TraceHeatsDuringOnPhaseCoolsDuringOff) {
  const auto cfg = config();
  const auto trace = run_self_heating(cfg);
  ASSERT_GT(trace.time.size(), 100u);
  // First ON phase: temperature rises monotonically.
  for (std::size_t i = 1; i < trace.time.size() && trace.time[i] < 0.5 / cfg.f_chop; ++i) {
    EXPECT_GE(trace.temp[i], trace.temp[i - 1] - 1e-9);
  }
  // Somewhere in the first OFF phase the device must cool.
  bool cooled = false;
  for (std::size_t i = 1; i < trace.time.size(); ++i) {
    if (trace.current[i] == 0.0 && trace.temp[i] < trace.temp[i - 1]) cooled = true;
  }
  EXPECT_TRUE(cooled);
}

TEST(SelfHeating, CurrentDropsAsDeviceHeats) {
  // The measured signal of Fig. 9: drain current decreases with temperature.
  const auto trace = run_self_heating(config());
  double i_first = 0.0, i_later = 0.0;
  for (std::size_t i = 0; i < trace.time.size(); ++i) {
    if (trace.current[i] > 0.0) {
      if (i_first == 0.0) i_first = trace.current[i];
      i_later = trace.current[i];
    }
  }
  EXPECT_LT(i_later, i_first);
  EXPECT_GT(i_later, 0.0);
}

TEST(SelfHeating, SenseVoltageIsCurrentTimesResistor) {
  const auto cfg = config();
  const auto trace = run_self_heating(cfg);
  for (std::size_t i = 0; i < trace.time.size(); i += 1000) {
    EXPECT_DOUBLE_EQ(trace.v_sense[i], trace.current[i] * cfg.r_sense);
  }
}

TEST(SelfHeating, AmbientShiftMovesWholeTrace) {
  // Fig. 9 shows the same exponential at 30/35/40 C, offset by ambient.
  const auto t30 = run_self_heating(config(30.0));
  const auto t40 = run_self_heating(config(40.0));
  const double rise30 = t30.max_rise(celsius(30.0));
  const double rise40 = t40.max_rise(celsius(40.0));
  // Nearly equal steady rises (the weak tc feedback shifts it slightly).
  EXPECT_NEAR(rise40 / rise30, 1.0, 0.05);
  // Absolute temperatures offset by ~10 K.
  const double peak30 = *std::max_element(t30.temp.begin(), t30.temp.end());
  const double peak40 = *std::max_element(t40.temp.begin(), t40.temp.end());
  EXPECT_NEAR(peak40 - peak30, 10.0, 1.0);
}

TEST(SelfHeating, SteadyRiseMatchesRthTimesPower) {
  // With feedback the fixed point is dT = Rth*P(T); verify to 2% using an
  // uninterrupted ON phase (chopping never quite reaches the plateau).
  auto cfg = config();
  cfg.f_chop = 0.05;  // 10 s half-period: always ON within the window
  cfg.t_stop = 2.0;   // many tau for full saturation
  const auto trace = run_self_heating(cfg);
  const double rise = trace.max_rise(cfg.t_ambient);
  const double p_hot = cfg.v_drain * cfg.i_on_ref * (1.0 - cfg.tc_current * rise);
  EXPECT_NEAR(rise, cfg.rc.r_th * p_hot, 0.02 * rise);
}

TEST(SelfHeating, ExtractedRthMatchesConfiguredRth) {
  // The measurement procedure itself: Rth = dT/P recovered from the trace.
  auto cfg = config();
  cfg.f_chop = 0.05;
  cfg.t_stop = 2.0;
  const auto trace = run_self_heating(cfg);
  const double rth = extract_r_th(cfg, trace);
  EXPECT_NEAR(rth / cfg.rc.r_th, 1.0, 0.03);
}

TEST(SelfHeating, TimeConstantGovernsTheRise) {
  // At t = tau the rise must be ~63% of its final value (weak feedback
  // perturbs this by a few percent at most). Use an uninterrupted ON phase.
  auto cfg = config();
  cfg.f_chop = 0.05;  // 10 s half-period: effectively always ON in [0, 2 s]
  cfg.t_stop = 2.0;
  const auto trace = run_self_heating(cfg);
  const double tau = cfg.rc.tau();
  ASSERT_LT(tau, 1.0);
  const double final_rise = trace.max_rise(cfg.t_ambient);
  double rise_at_tau = 0.0;
  for (std::size_t i = 0; i < trace.time.size(); ++i) {
    if (trace.time[i] >= tau) {
      rise_at_tau = trace.temp[i] - cfg.t_ambient;
      break;
    }
  }
  EXPECT_NEAR(rise_at_tau / final_rise, 1.0 - std::exp(-1.0), 0.05);
}

TEST(SelfHeating, RejectsBadConfig) {
  SelfHeatingConfig cfg;  // rc unset
  EXPECT_THROW(run_self_heating(cfg), PreconditionError);
  cfg.rc = {1000.0, 1e-6};
  cfg.dt = 0.0;
  EXPECT_THROW(run_self_heating(cfg), PreconditionError);
}

// ------------------------------------------------- package Cauer network

TEST(PackageRc, StageValidationRejectsNonPositiveParameters) {
  EXPECT_THROW(validate(ThermalRc{0.0, 1.0}), PreconditionError);
  EXPECT_THROW(validate(ThermalRc{1.0, 0.0}), PreconditionError);
  EXPECT_THROW(validate(ThermalRc{-0.5, 1.0}), PreconditionError);
  EXPECT_NO_THROW(validate(ThermalRc{0.4, 0.1}));
  // The network constructor validates every stage through the same gate.
  EXPECT_THROW(PackageRcNetwork({{0.3, 0.02}, {0.5, -1.0}}), PreconditionError);
  EXPECT_THROW(PackageRcNetwork({}), PreconditionError);
}

TEST(PackageRc, TotalResistanceSumsTheLadder) {
  const PackageRcNetwork net({{0.3, 0.02}, {0.5, 2.0}, {0.1, 5.0}});
  EXPECT_DOUBLE_EQ(net.total_resistance(), 0.3 + 0.5 + 0.1);
  EXPECT_DOUBLE_EQ(net.steady_case_rise(12.5), (0.3 + 0.5 + 0.1) * 12.5);
}

TEST(PackageRc, SingleStageMatchesTheScalarExponential) {
  const double r = 0.8, c = 1.5, p = 20.0;
  const PackageRcNetwork net({{r, c}});
  auto state = net.make_state();
  const double dt = 0.05;
  double t = 0.0;
  for (int s = 0; s < 200; ++s) {
    const double got = net.advance(state, dt, p);
    t += dt;
    const double want = r * p * (1.0 - std::exp(-t / (r * c)));
    ASSERT_NEAR(got, want, 1e-12 * r * p) << "t = " << t;
  }
}

TEST(PackageRc, TwoStageStepResponseMatchesClosedForm) {
  // Case node (C1) -R1- sink node (C2) -R2- ambient under constant power P:
  //   C1 th0' = P - (th0 - th1) / R1
  //   C2 th1' = (th0 - th1) / R1 - th1 / R2
  // Solved in closed form via the 2 x 2 eigendecomposition here and compared
  // against advance() at every sampled instant — the exactness contract, not
  // an ODE-convergence bound.
  const double r1 = 0.25, c1 = 0.04, r2 = 0.6, c2 = 3.0, p = 15.0;
  const PackageRcNetwork net({{r1, c1}, {r2, c2}});

  // w = theta_inf - theta obeys w' = -A w from w(0) = theta_inf.
  const double a00 = 1.0 / (r1 * c1);
  const double a01 = -1.0 / (r1 * c1);
  const double a10 = -1.0 / (r1 * c2);
  const double a11 = (1.0 / r1 + 1.0 / r2) / c2;
  const double tr = a00 + a11;
  const double det = a00 * a11 - a01 * a10;
  const double disc = std::sqrt(tr * tr - 4.0 * det);
  const double lam_fast = 0.5 * (tr + disc);
  const double lam_slow = 0.5 * (tr - disc);
  // Eigenvector for lambda: (a01, lambda - a00).
  const double vf0 = a01, vf1 = lam_fast - a00;
  const double vs0 = a01, vs1 = lam_slow - a00;
  const double w0_case = (r1 + r2) * p;
  const double w0_sink = r2 * p;
  // Solve [vf vs] (af, as)^T = w(0).
  const double den = vf0 * vs1 - vs0 * vf1;
  const double af = (w0_case * vs1 - vs0 * w0_sink) / den;
  const double as = (vf0 * w0_sink - w0_case * vf1) / den;

  auto state = net.make_state();
  const double dt = 2e-3;
  double t = 0.0;
  for (int s = 0; s < 2000; ++s) {
    const double got = net.advance(state, dt, p);
    t += dt;
    const double want = w0_case - af * vf0 * std::exp(-lam_fast * t) -
                        as * vs0 * std::exp(-lam_slow * t);
    ASSERT_NEAR(got, want, 1e-9 * w0_case) << "t = " << t;
  }
}

TEST(PackageRc, OneStepEqualsManySubstepsToRounding) {
  // The exact-exponential contract: accuracy does not depend on the step.
  const PackageRcNetwork net({{0.3, 0.02}, {0.5, 2.0}});
  const double p = 30.0, h = 0.8;
  auto one = net.make_state();
  const double big = net.advance(one, h, p);
  auto many = net.make_state();
  double small = 0.0;
  for (int s = 0; s < 64; ++s) small = net.advance(many, h / 64.0, p);
  EXPECT_NEAR(big, small, 1e-12 * std::abs(big));
}

TEST(PackageRc, ConvergesToTheSteadyCaseRise) {
  const PackageRcNetwork net({{0.3, 0.02}, {0.5, 2.0}});
  const double p = 18.0;
  auto state = net.make_state();
  // Slowest time constant is of order R_total * C_total ~ 1.6 s; 60 s is
  // dozens of taus.
  const double rise = net.advance(state, 60.0, p);
  EXPECT_NEAR(rise, net.steady_case_rise(p), 1e-9 * net.steady_case_rise(p));
  EXPECT_DOUBLE_EQ(state.case_rise, rise);
}

TEST(PackageRc, ZeroPowerRelaxesBackToAmbient) {
  const PackageRcNetwork net({{0.4, 0.05}, {0.7, 1.0}});
  auto state = net.make_state();
  net.advance(state, 10.0, 25.0);           // charge
  const double relaxed = net.advance(state, 60.0, 0.0);  // discharge
  EXPECT_NEAR(relaxed, 0.0, 1e-9);
}

}  // namespace
}  // namespace ptherm::thermal
