// Telemetry-layer tests: span tracer semantics (nesting, the event cap,
// thread safety, the disabled no-op path), the Chrome trace-event JSON
// golden format, the metrics registry (counters/gauges/histograms, merge,
// JSONL/CSV dumps), the counter catalog round trips, and — most load-bearing
// — the repo-wide contract that tracing only APPENDS: traced and untraced
// solves must be bitwise identical on every backend (cosim, transient, RTM,
// batch, SPICE), and every convergence trace's length must equal the
// iteration count the result already reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/scenario_batch.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan small_plan(double p_total = 2.0) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

/// Installs a Tracer for the enclosing scope and guarantees uninstallation
/// even when an assertion throws, so one test cannot leak a dangling sink
/// into the next.
class ScopedTracer {
 public:
  explicit ScopedTracer(std::size_t max_events = telemetry::Tracer::kDefaultMaxEvents)
      : tracer_(max_events) {
    telemetry::set_tracer(&tracer_);
  }
  ~ScopedTracer() { telemetry::set_tracer(nullptr); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  [[nodiscard]] telemetry::Tracer& tracer() { return tracer_; }

 private:
  telemetry::Tracer tracer_;
};

// ------------------------------------------------------------- span tracer

TEST(SpanTracer, RecordsNestedSpansInnermostFirst) {
  ScopedTracer scoped;
  {
    TELEMETRY_SPAN("outer");
    {
      TELEMETRY_SPAN("inner");
    }
  }
  const auto events = scoped.tracer().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner scope closes first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  // Containment: the outer span starts no later and ends no earlier.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
  EXPECT_GE(events[0].duration_ns, 0);
  EXPECT_GE(events[1].duration_ns, 0);
}

TEST(SpanTracer, NoTracerMeansNoRecording) {
  // No tracer installed: the macro must be a pure no-op (this is the
  // disabled fast path production runs take).
  ASSERT_EQ(telemetry::tracer(), nullptr);
  { TELEMETRY_SPAN("unobserved"); }
  // Install one afterwards and confirm nothing was buffered anywhere.
  ScopedTracer scoped;
  EXPECT_EQ(scoped.tracer().event_count(), 0u);
}

TEST(SpanTracer, TracerInstalledMidSpanDoesNotTearTheSpan) {
  // The Span captures the sink at entry; installing a tracer while a span is
  // open must not record a half-observed event.
  telemetry::Tracer late;
  {
    TELEMETRY_SPAN("opened_before_install");
    telemetry::set_tracer(&late);
  }
  telemetry::set_tracer(nullptr);
  EXPECT_EQ(late.event_count(), 0u);
}

TEST(SpanTracer, CapCountsDroppedEventsInsteadOfGrowing) {
  ScopedTracer scoped(/*max_events=*/3);
  for (int i = 0; i < 5; ++i) {
    TELEMETRY_SPAN("capped");
  }
  EXPECT_EQ(scoped.tracer().event_count(), 3u);
  EXPECT_EQ(scoped.tracer().dropped_events(), 2u);
  scoped.tracer().clear();
  EXPECT_EQ(scoped.tracer().event_count(), 0u);
  EXPECT_EQ(scoped.tracer().dropped_events(), 0u);
}

TEST(SpanTracer, ConcurrentSpansFromManyThreadsAllLand) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  ScopedTracer scoped;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TELEMETRY_SPAN("worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = scoped.tracer().events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(scoped.tracer().dropped_events(), 0u);
  // Thread ids are dense: the recording threads use at most kThreads
  // distinct ids (the main thread recorded nothing here).
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// ------------------------------------------------------------ chrome trace

TEST(ChromeTrace, EmptyTraceIsAValidDocument) {
  EXPECT_EQ(telemetry::chrome_trace_json({}),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, GoldenJsonIsByteExact) {
  // Pins the export format: "X" complete events, integer-nanosecond-exact
  // decimal microseconds, JSON-escaped names, fixed key order.
  const std::vector<telemetry::SpanEvent> events = {
      {"cosim/solve", 0, 1500, 250},   // ts 1.5 us, dur 0.25 us
      {"a\"b\\c", 1, 0, 1000},         // escaping; dur exactly 1 us
      {"neg", 2, -2750, 3},            // pre-epoch-offset start; 3 ns
  };
  EXPECT_EQ(telemetry::chrome_trace_json(events),
            "{\"traceEvents\":["
            "{\"name\":\"cosim/solve\",\"cat\":\"ptherm\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":0,\"ts\":1.5,\"dur\":0.25},"
            "{\"name\":\"a\\\"b\\\\c\",\"cat\":\"ptherm\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":1,\"ts\":0,\"dur\":1},"
            "{\"name\":\"neg\",\"cat\":\"ptherm\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":2,\"ts\":-2.75,\"dur\":0.003}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

// ---------------------------------------------------------------- registry

TEST(Registry, CountersAccumulateGaugesOverwrite) {
  telemetry::Registry reg;
  reg.add("backend/cg_iterations", 7);
  reg.add("backend/cg_iterations", 5);
  reg.set_gauge("bench/wall_s", 1.5);
  reg.set_gauge("bench/wall_s", 2.5);
  EXPECT_EQ(reg.counter("backend/cg_iterations"), 12);
  EXPECT_EQ(reg.counter("never/written"), 0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("bench/wall_s"), 2.5);
}

TEST(Registry, HistogramsKeepStreamingSummary) {
  telemetry::Registry reg;
  reg.observe("picard/residual", 4.0);
  reg.observe("picard/residual", 1.0);
  reg.observe("picard/residual", 2.5);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("picard/residual");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 7.5);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
}

TEST(Registry, MergeAccumulatesCountersAndHistograms) {
  telemetry::Registry a;
  a.add("c", 2);
  a.set_gauge("g", 1.0);
  a.observe("h", 1.0);
  telemetry::Registry b;
  b.add("c", 3);
  b.add("only_b", 4);
  b.set_gauge("g", 9.0);
  b.observe("h", 5.0);
  a.merge(b.snapshot());
  const auto snap = a.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5);
  EXPECT_EQ(snap.counters.at("only_b"), 4);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 9.0);  // gauges: last writer wins
  EXPECT_EQ(snap.histograms.at("h").count, 2);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").sum, 6.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").min, 1.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").max, 5.0);
}

TEST(Registry, JsonlAndCsvDumpsAreDeterministic) {
  telemetry::Registry reg;
  reg.add("backend/cg_iterations", 42);
  reg.add("backend/fft_calls", 7);
  reg.set_gauge("bench/wall_s", 0.5);
  reg.observe("picard/residual", 2.0);
  reg.observe("picard/residual", 0.25);
  const auto snap = reg.snapshot();

  std::ostringstream jsonl;
  telemetry::write_jsonl(jsonl, snap);
  EXPECT_EQ(jsonl.str(),
            "{\"metric\":\"backend/cg_iterations\",\"kind\":\"counter\",\"value\":42}\n"
            "{\"metric\":\"backend/fft_calls\",\"kind\":\"counter\",\"value\":7}\n"
            "{\"metric\":\"bench/wall_s\",\"kind\":\"gauge\",\"value\":0.5}\n"
            "{\"metric\":\"picard/residual\",\"kind\":\"histogram\",\"count\":2,"
            "\"sum\":2.25,\"min\":0.25,\"max\":2}\n");

  std::ostringstream csv;
  telemetry::write_csv(csv, snap);
  EXPECT_EQ(csv.str(),
            "metric,kind,value,count,sum,min,max\n"
            "backend/cg_iterations,counter,42,,,,\n"
            "backend/fft_calls,counter,7,,,,\n"
            "bench/wall_s,gauge,0.5,,,,\n"
            "picard/residual,histogram,,2,2.25,0.25,2\n");
}

// ---------------------------------------------------------- counter catalog

thermal::BackendCostStats distinct_stats(long long base) {
  thermal::BackendCostStats s;
  s.steady_solves = base + 1;
  s.influence_columns = base + 2;
  s.cg_iterations = base + 3;
  s.modes = base + 4;
  s.fft_calls = base + 5;
  s.transient_steps = base + 6;
  s.transient_power_updates = base + 7;
  s.scenarios = base + 8;
  s.batched_matvecs = base + 9;
  s.picard_iterations_total = base + 10;
  s.masked_iterations_saved = base + 11;
  return s;
}

TEST(CounterCatalog, BackendStatsRoundTripExactly) {
  telemetry::Registry reg;
  telemetry::contribute(reg, distinct_stats(100));
  const auto back = telemetry::backend_cost_from(reg);
  const auto want = distinct_stats(100);
  for (const auto& field : telemetry::backend_counter_fields()) {
    EXPECT_EQ(back.*(field.member), want.*(field.member)) << field.name;
  }
}

TEST(CounterCatalog, MergingIsContributeTwice) {
  // The unified merge rule every former hand-copied field list now routes
  // through: two contributes into one registry IS the field-complete sum.
  telemetry::Registry reg;
  telemetry::contribute(reg, distinct_stats(0));
  telemetry::contribute(reg, distinct_stats(1000));
  const auto merged = telemetry::backend_cost_from(reg);
  const auto a = distinct_stats(0);
  const auto b = distinct_stats(1000);
  for (const auto& field : telemetry::backend_counter_fields()) {
    EXPECT_EQ(merged.*(field.member), a.*(field.member) + b.*(field.member)) << field.name;
  }
}

TEST(CounterCatalog, InfluenceViewProjectsBackendNames) {
  telemetry::Registry reg;
  telemetry::contribute(reg, distinct_stats(50));
  const auto view = telemetry::influence_build_from(reg);
  const auto src = distinct_stats(50);
  EXPECT_EQ(view.columns, src.influence_columns);
  EXPECT_EQ(view.cg_iterations, src.cg_iterations);
  EXPECT_EQ(view.modes, src.modes);
  EXPECT_EQ(view.fft_calls, src.fft_calls);
}

TEST(CounterCatalog, BatchStatsShareTheBackendNames) {
  core::ScenarioBatchStats batch;
  batch.scenarios = 3;
  batch.batched_matvecs = 17;
  batch.picard_iterations_total = 90;
  batch.masked_iterations_saved = 12;
  telemetry::Registry reg;
  telemetry::contribute(reg, batch);
  EXPECT_EQ(reg.counter("backend/scenarios"), 3);
  EXPECT_EQ(reg.counter("backend/batched_matvecs"), 17);
  EXPECT_EQ(reg.counter("backend/picard_iterations_total"), 90);
  EXPECT_EQ(reg.counter("backend/masked_iterations_saved"), 12);
}

TEST(CounterCatalog, SpiceReportContributesUnderSpicePrefix) {
  spice::SolveReport report;
  report.newton_iterations = 23;
  report.homotopy_steps = 4;
  report.rungs.resize(5);
  report.cold_restart = true;
  telemetry::Registry reg;
  telemetry::contribute(reg, report);
  EXPECT_EQ(reg.counter("spice/newton_iterations"), 23);
  EXPECT_EQ(reg.counter("spice/homotopy_steps"), 4);
  EXPECT_EQ(reg.counter("spice/rungs"), 5);
  EXPECT_EQ(reg.counter("spice/cold_restarts"), 1);
}

TEST(CounterCatalog, GuardedNamesCoverTheBenchContract) {
  // compare_bench.py guards exactly these; the catalog is the one source.
  const auto names = telemetry::guarded_counter_names();
  const auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("cg_iterations"));
  EXPECT_TRUE(has("fft_calls"));
  EXPECT_TRUE(has("transient_steps"));
  EXPECT_TRUE(has("batched_matvecs"));
  EXPECT_TRUE(has("picard_iterations_total"));
  EXPECT_TRUE(has("picard_iterations"));
  EXPECT_TRUE(has("newton_iterations"));
  EXPECT_TRUE(has("homotopy_steps"));
  EXPECT_TRUE(has("outer_iterations"));
  EXPECT_FALSE(has("steady_solves"));  // work-description counter, not effort
}

// --------------------------------------- convergence traces: steady cosim

class CosimTraceBackends : public ::testing::TestWithParam<core::ThermalBackend> {};

TEST_P(CosimTraceBackends, TracingIsBitwiseTransparentAndSized) {
  core::CosimOptions plain;
  plain.backend = GetParam();
  plain.fdm.nx = 12;
  plain.fdm.ny = 12;
  plain.fdm.nz = 6;
  core::CosimOptions traced = plain;
  traced.trace.convergence = true;

  core::ElectroThermalSolver a(tech(), small_plan(), plain);
  const auto ra = a.solve();

  // Spans on as well: neither telemetry knob may touch the numerics. The
  // solver is constructed under the tracer so the constructor's
  // influence-build span is observed too.
  ScopedTracer scoped;
  core::ElectroThermalSolver b(tech(), small_plan(), traced);
  const auto rb = b.solve();

  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_EQ(ra.max_delta_last, rb.max_delta_last);
  ASSERT_EQ(ra.blocks.size(), rb.blocks.size());
  for (std::size_t i = 0; i < ra.blocks.size(); ++i) {
    EXPECT_EQ(ra.blocks[i].temperature, rb.blocks[i].temperature) << "block " << i;
    EXPECT_EQ(ra.blocks[i].p_leakage, rb.blocks[i].p_leakage) << "block " << i;
  }

  // The trace sizes to the iteration count the result already reports.
  EXPECT_TRUE(ra.picard_residuals.empty());
  ASSERT_EQ(rb.picard_residuals.size(), static_cast<std::size_t>(rb.iterations));
  EXPECT_EQ(rb.picard_residuals.back(), rb.max_delta_last);
  // Residuals are positive and the last one is under tolerance.
  for (const double r : rb.picard_residuals) EXPECT_GT(r, 0.0);
  EXPECT_LT(rb.picard_residuals.back(), plain.tol);

  // The traced solve emitted cosim spans.
  const auto events = scoped.tracer().events();
  const auto named = [&](const char* want) {
    return std::any_of(events.begin(), events.end(), [&](const telemetry::SpanEvent& e) {
      return std::string_view(e.name) == want;
    });
  };
  EXPECT_TRUE(named("cosim/solve"));
  EXPECT_TRUE(named("cosim/build_influence"));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CosimTraceBackends,
                         ::testing::Values(core::ThermalBackend::Analytic,
                                           core::ThermalBackend::Fdm,
                                           core::ThermalBackend::Spectral));

// ------------------------------------------ convergence traces: transient

TEST(TransientTrace, StepIterationsSumToTotalAndNumericsMatch) {
  const auto fp = [] {
    Rng rng(77);
    floorplan::GeneratorConfig cfg;
    cfg.total_dynamic_power = 3.0;
    cfg.gates_per_mm2 = 1e5;
    return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  }();
  core::TransientCosimOptions plain;
  plain.fdm.nx = 12;
  plain.fdm.ny = 12;
  plain.fdm.nz = 8;
  plain.dt = 2e-4;
  plain.t_stop = 4e-3;
  core::TransientCosimOptions traced = plain;
  traced.trace.convergence = true;
  const core::ActivityProfile activity = [](std::size_t, double) { return 1.0; };

  const auto ra = core::solve_transient_cosim(tech(), fp, activity, plain);
  const auto rb = core::solve_transient_cosim(tech(), fp, activity, traced);

  ASSERT_EQ(ra.times.size(), rb.times.size());
  for (std::size_t k = 0; k < ra.times.size(); ++k) {
    ASSERT_EQ(ra.block_temps[k].size(), rb.block_temps[k].size());
    for (std::size_t i = 0; i < ra.block_temps[k].size(); ++i) {
      EXPECT_EQ(ra.block_temps[k][i], rb.block_temps[k][i]) << "step " << k;
    }
  }
  EXPECT_EQ(ra.total_cg_iterations, rb.total_cg_iterations);

  EXPECT_TRUE(ra.step_inner_iterations.empty());
  // One entry per step taken (the recorded timeline has the t=0 row extra).
  ASSERT_EQ(rb.step_inner_iterations.size(), rb.times.size() - 1);
  const long long sum = std::accumulate(rb.step_inner_iterations.begin(),
                                        rb.step_inner_iterations.end(), 0LL);
  EXPECT_EQ(sum, rb.total_cg_iterations);
}

// ------------------------------------------------ convergence traces: RTM

TEST(RtmTrace, PerStepTraceSizesToStepsAndRunIsBitwiseUnchanged) {
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 10.0;
  cfg.gates_per_mm2 = 3e5;
  thermal::Die d = die_1mm();
  d.t_sink = 328.15;
  const auto fp = floorplan::make_uniform_grid(tech(), d, 2, 2, cfg, rng);

  rtm::BurstPattern pat;
  pat.period = 4e-3;
  pat.duty = 1.0;
  pat.high = 1.0;
  const auto trace = rtm::make_burst_trace(4, 10, 1e-3, pat);

  rtm::RtmOptions plain;
  plain.backend = core::ThermalBackend::Spectral;
  plain.spectral.modes_x = 16;
  plain.spectral.modes_y = 16;
  plain.dt = 1e-4;
  plain.steps_per_epoch = 2;
  plain.temperature_cap = 368.15;
  rtm::RtmOptions traced = plain;
  traced.trace.convergence = true;

  rtm::NoopPolicy policy_a;
  rtm::Actuator actuator_a(tech(), fp, rtm::VfLadder::uniform(tech().vdd, 2e9, 4, 0.8, 0.45));
  const auto ra = rtm::run_rtm(tech(), fp, trace, policy_a, actuator_a, plain);

  rtm::NoopPolicy policy_b;
  rtm::Actuator actuator_b(tech(), fp, rtm::VfLadder::uniform(tech().vdd, 2e9, 4, 0.8, 0.45));
  const auto rb = rtm::run_rtm(tech(), fp, trace, policy_b, actuator_b, traced);

  EXPECT_EQ(ra.metrics.peak_temperature, rb.metrics.peak_temperature);
  EXPECT_EQ(ra.metrics.energy, rb.metrics.energy);
  EXPECT_EQ(ra.metrics.epochs, rb.metrics.epochs);
  EXPECT_EQ(ra.metrics.steps, rb.metrics.steps);
  ASSERT_EQ(ra.final_temps.size(), rb.final_temps.size());
  for (std::size_t i = 0; i < ra.final_temps.size(); ++i) {
    EXPECT_EQ(ra.final_temps[i], rb.final_temps[i]) << "block " << i;
  }

  EXPECT_TRUE(ra.step_inner_iterations.empty());
  EXPECT_EQ(rb.step_inner_iterations.size(), static_cast<std::size_t>(rb.metrics.steps));
}

// ---------------------------------------------- convergence traces: batch

TEST(BatchTrace, PerScenarioResidualsMatchStandaloneAndSweepTraceFills) {
  core::CosimOptions plain;
  core::CosimOptions traced;
  traced.trace.convergence = true;

  core::ScenarioBatch a(tech(), small_plan(), plain);
  a.add_variation_samples(device::VariationModel{0.03}, 6, /*base_seed=*/42);
  core::ScenarioBatch b(tech(), small_plan(), traced);
  b.add_variation_samples(device::VariationModel{0.03}, 6, /*base_seed=*/42);

  const auto ra = a.solve_all();
  const auto rb = b.solve_all();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t s = 0; s < ra.size(); ++s) {
    EXPECT_EQ(ra[s].iterations, rb[s].iterations) << "scenario " << s;
    EXPECT_EQ(ra[s].max_delta_last, rb[s].max_delta_last) << "scenario " << s;
    ASSERT_EQ(ra[s].temperatures.size(), rb[s].temperatures.size());
    for (std::size_t i = 0; i < ra[s].temperatures.size(); ++i) {
      EXPECT_EQ(ra[s].temperatures[i], rb[s].temperatures[i]) << "scenario " << s;
    }
    EXPECT_TRUE(ra[s].picard_residuals.empty());
    ASSERT_EQ(rb[s].picard_residuals.size(), static_cast<std::size_t>(rb[s].iterations));
    EXPECT_EQ(rb[s].picard_residuals.back(), rb[s].max_delta_last);
  }

  // The sweep-level trace: one entry per blocked sweep, starting with every
  // scenario active, with a weakly decreasing active count.
  const auto& sweep = b.trace();
  ASSERT_FALSE(sweep.active_per_sweep.empty());
  ASSERT_EQ(sweep.active_per_sweep.size(), sweep.max_residual_per_sweep.size());
  EXPECT_EQ(sweep.active_per_sweep.front(), 6);
  for (std::size_t k = 1; k < sweep.active_per_sweep.size(); ++k) {
    EXPECT_LE(sweep.active_per_sweep[k], sweep.active_per_sweep[k - 1]);
  }
  // The sweep count is the longest per-scenario iteration count.
  int longest = 0;
  for (const auto& r : rb) longest = std::max(longest, r.iterations);
  EXPECT_EQ(sweep.active_per_sweep.size(), static_cast<std::size_t>(longest));
  EXPECT_TRUE(a.trace().active_per_sweep.empty());
}

// ---------------------------------------------- convergence traces: SPICE

spice::Circuit make_inverter(const Technology& t, double vin) {
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_vsource("VIN", in, spice::Circuit::ground(), vin);
  ckt.add_mosfet("MN", out, in, spice::Circuit::ground(), spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
  ckt.add_mosfet("MP", out, in, vdd, vdd, MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
  return ckt;
}

TEST(SpiceTrace, RungResidualCurvesSizeToIterationsAndNumericsMatch) {
  const auto t = tech();
  const auto ckt = make_inverter(t, 0.5 * t.vdd);
  spice::DcOptions plain;
  spice::DcOptions traced;
  traced.trace.convergence = true;

  const auto ra = spice::solve_dc(ckt, plain);
  const auto rb = spice::solve_dc(ckt, traced);

  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_EQ(ra.iterations, rb.iterations);
  ASSERT_EQ(ra.node_voltages.size(), rb.node_voltages.size());
  for (std::size_t n = 0; n < ra.node_voltages.size(); ++n) {
    EXPECT_EQ(ra.node_voltages[n], rb.node_voltages[n]) << "node " << n;
  }

  for (const auto& rung : ra.report.rungs) EXPECT_TRUE(rung.residuals.empty());
  ASSERT_FALSE(rb.report.rungs.empty());
  int total = 0;
  for (const auto& rung : rb.report.rungs) {
    EXPECT_EQ(rung.residuals.size(), static_cast<std::size_t>(rung.iterations))
        << "rung " << rung.stage;
    for (const double r : rung.residuals) EXPECT_GE(r, 0.0);
    total += rung.iterations;
  }
  EXPECT_EQ(total, rb.report.newton_iterations);
}

// ----------------------------------------------- cross-subsystem span run

TEST(TraceAnatomy, OneTracerObservesCosimRtmAndSpice) {
  ScopedTracer scoped;

  core::CosimOptions copts;
  copts.backend = core::ThermalBackend::Spectral;
  copts.trace.convergence = true;
  core::ElectroThermalSolver solver(tech(), small_plan(), copts);
  ASSERT_TRUE(solver.solve().converged);

  {
    Rng rng(99);
    floorplan::GeneratorConfig cfg;
    cfg.total_dynamic_power = 8.0;
    cfg.gates_per_mm2 = 3e5;
    thermal::Die d = die_1mm();
    d.t_sink = 328.15;
    const auto fp = floorplan::make_uniform_grid(tech(), d, 2, 2, cfg, rng);
    rtm::BurstPattern pat;
    pat.period = 4e-3;
    pat.duty = 1.0;
    pat.high = 1.0;
    const auto trace = rtm::make_burst_trace(4, 5, 1e-3, pat);
    rtm::RtmOptions opts;
    opts.spectral.modes_x = 16;
    opts.spectral.modes_y = 16;
    opts.steps_per_epoch = 2;
    opts.temperature_cap = 368.15;
    rtm::NoopPolicy policy;
    rtm::Actuator actuator(tech(), fp,
                           rtm::VfLadder::uniform(tech().vdd, 2e9, 4, 0.8, 0.45));
    (void)rtm::run_rtm(tech(), fp, trace, policy, actuator, opts);
  }

  ASSERT_TRUE(spice::solve_dc(make_inverter(tech(), 0.0)).converged);

  const auto events = scoped.tracer().events();
  const auto named = [&](const char* want) {
    return std::any_of(events.begin(), events.end(), [&](const telemetry::SpanEvent& e) {
      return std::string_view(e.name) == want;
    });
  };
  EXPECT_TRUE(named("cosim/solve"));
  EXPECT_TRUE(named("spectral/apply_influence"));
  EXPECT_TRUE(named("rtm/run"));
  EXPECT_TRUE(named("rtm/epoch"));
  EXPECT_TRUE(named("transient/solve"));
  EXPECT_TRUE(named("spice/solve_dc"));
  EXPECT_TRUE(named("spice/gmin_ladder"));

  // The whole run exports as one loadable Chrome trace document.
  const auto json = telemetry::chrome_trace_json(events);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rtm/run\""), std::string::npos);
  const std::string tail = "],\"displayTimeUnit\":\"ms\"}\n";
  ASSERT_GT(json.size(), tail.size());
  EXPECT_EQ(json.substr(json.size() - tail.size()), tail);
}

}  // namespace
}  // namespace ptherm
