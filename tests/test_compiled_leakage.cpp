// Tests for the compiled per-block leakage programs: bitwise agreement with
// the uncompiled Block walk across temperatures, supplies, and body bias;
// technology independence of one compiled program; and the error contract.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "device/tech.hpp"
#include "floorplan/compiled_leakage.hpp"
#include "floorplan/floorplan.hpp"
#include "floorplan/generators.hpp"
#include "leakage/gate.hpp"

namespace ptherm::floorplan {
namespace {

using device::Technology;
using leakage::GateTopology;
using leakage::SpNetwork;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan generated_plan() {
  Rng rng(17);
  GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  return make_uniform_grid(tech(), die_1mm(), 3, 3, cfg, rng);
}

TEST(CompiledLeakage, BitwiseEqualsBlockWalkOnGeneratedBlocks) {
  const auto fp = generated_plan();
  for (const Block& block : fp.blocks()) {
    const CompiledBlockLeakage compiled(block);
    for (const double temp : {280.0, 300.0, 318.15, 360.0, 400.0}) {
      EXPECT_EQ(compiled.leakage_current(tech(), temp),
                block.leakage_current(tech(), temp))
          << block.name << " at " << temp << " K";
      EXPECT_EQ(compiled.leakage_power(tech(), temp), block.leakage_power(tech(), temp));
    }
  }
}

TEST(CompiledLeakage, BitwiseUnderBodyBias) {
  const auto fp = generated_plan();
  const Block& block = fp.blocks().front();
  const CompiledBlockLeakage compiled(block);
  for (const double vb : {-0.3, -0.1, 0.0}) {
    EXPECT_EQ(compiled.leakage_current(tech(), 330.0, vb),
              block.leakage_current(tech(), 330.0, vb));
  }
}

TEST(CompiledLeakage, OneProgramServesEveryTechnology) {
  // The program caches nothing tech- or temp-dependent, so the SAME compiled
  // block evaluates V/f corner technologies bitwise — the property the
  // batched scenario engine leans on.
  const auto fp = generated_plan();
  const Block& block = fp.blocks()[4];
  const CompiledBlockLeakage compiled(block);
  for (const double v_frac : {0.7, 0.85, 1.0, 1.1}) {
    const Technology corner = device::at_supply(tech(), tech().vdd * v_frac);
    EXPECT_EQ(compiled.leakage_current(corner, 345.0),
              block.leakage_current(corner, 345.0))
        << "supply fraction " << v_frac;
  }
}

TEST(CompiledLeakage, EmptyBlockLeaksNothing) {
  Block block;
  block.name = "empty";
  block.rect = {0.0, 0.0, 1e-4, 1e-4};
  EXPECT_EQ(CompiledBlockLeakage(block).leakage_current(tech(), 300.0), 0.0);
  EXPECT_EQ(CompiledBlockLeakage().leakage_current(tech(), 300.0), 0.0);
}

TEST(CompiledLeakage, CompileTimeErrorsMirrorTheLazyWalk) {
  // The uncompiled path throws on first evaluation; compilation front-loads
  // the same contract to construction.
  constexpr double kW = 0.5e-6;
  auto gate = std::make_shared<GateTopology>();
  gate->name = "inv";
  gate->pull_up = SpNetwork::device(0, kW);
  gate->pull_down = SpNetwork::device(0, kW);
  gate->length = 0.13e-6;

  Block block;
  block.name = "bad";
  block.rect = {0.0, 0.0, 1e-4, 1e-4};
  block.gate_groups.push_back({gate, {true}, 10.0});
  EXPECT_NO_THROW(CompiledBlockLeakage{block});

  Block wrong_inputs = block;
  wrong_inputs.gate_groups[0].inputs = {};  // too few for a 1-input gate
  EXPECT_THROW(CompiledBlockLeakage{wrong_inputs}, PreconditionError);

  Block bad_length = block;
  auto zero_len = std::make_shared<GateTopology>(*gate);
  zero_len->length = 0.0;
  bad_length.gate_groups[0].gate = zero_len;
  EXPECT_THROW(CompiledBlockLeakage{bad_length}, PreconditionError);
}

}  // namespace
}  // namespace ptherm::floorplan
