// Tests for the chip-level analytic model: superposition (Eq. 21) and the
// method-of-images boundary conditions of §3.3 (Figs. 6 and 7).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "thermal/images.hpp"

namespace ptherm::thermal {
namespace {

Die die_1mm() {
  Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 300.0;
  return d;
}

HeatSource center_block(double power = 0.5) {
  return {0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, power};
}

TEST(ChipModel, TemperatureIsSinkPlusRise) {
  ChipThermalModel m(die_1mm(), {center_block()});
  const double x = 0.3e-3, y = 0.7e-3;
  EXPECT_DOUBLE_EQ(m.temperature(x, y), die_1mm().t_sink + m.rise(x, y));
  EXPECT_GT(m.rise(x, y), 0.0);
}

TEST(ChipModel, SuperpositionIsLinear) {
  const auto die = die_1mm();
  HeatSource a{0.3e-3, 0.3e-3, 0.1e-3, 0.1e-3, 0.2};
  HeatSource b{0.7e-3, 0.6e-3, 0.15e-3, 0.1e-3, 0.4};
  ChipThermalModel both(die, {a, b});
  ChipThermalModel only_a(die, {a});
  ChipThermalModel only_b(die, {b});
  const double x = 0.5e-3, y = 0.5e-3;
  EXPECT_NEAR(both.rise(x, y), only_a.rise(x, y) + only_b.rise(x, y), 1e-12);
}

TEST(ChipModel, StraddlingSourceMatchesPreClippedSource) {
  // The power-conservation clipping policy: a source straddling the die edge
  // behaves exactly like its in-die clipped footprint carrying the full
  // power. Matches FdmThermalSolver::surface_power's policy.
  const auto die = die_1mm();
  // Centre on the left edge: half the 0.2 mm footprint hangs off the die.
  HeatSource straddling{0.0, 0.5e-3, 0.2e-3, 0.2e-3, 0.5};
  HeatSource clipped{0.05e-3, 0.5e-3, 0.1e-3, 0.2e-3, 0.5};
  ChipThermalModel a(die, {straddling});
  ChipThermalModel b(die, {clipped});
  for (const auto& p : {std::pair{0.05e-3, 0.5e-3}, std::pair{0.3e-3, 0.5e-3},
                        std::pair{0.8e-3, 0.2e-3}}) {
    EXPECT_DOUBLE_EQ(a.rise(p.first, p.second), b.rise(p.first, p.second));
  }
}

TEST(ChipModel, FullyOffDieSourceContributesNothing) {
  const auto die = die_1mm();
  HeatSource off_die{1.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 4.0};
  ChipThermalModel alone(die, {off_die});
  EXPECT_EQ(alone.rise(0.5e-3, 0.5e-3), 0.0);
  EXPECT_EQ(alone.image_count(), 0u);
  // And in superposition it adds exactly nothing.
  ChipThermalModel with(die, {center_block(), off_die});
  ChipThermalModel without(die, {center_block()});
  EXPECT_DOUBLE_EQ(with.rise(0.4e-3, 0.6e-3), without.rise(0.4e-3, 0.6e-3));
  // The caller's geometry is still reported unclipped.
  EXPECT_DOUBLE_EQ(with.sources()[1].cx, 1.5e-3);
}

TEST(ChipModel, LateralImagesImposeZeroNormalGradient) {
  // Fig. 7's statement: dT/dx = 0 at both die edges. Probe with a central
  // difference straddling the wall.
  ImageOptions opts;
  opts.lateral_order = 3;
  ChipThermalModel m(die_1mm(), {{0.35e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.5}}, opts);
  const double h = 1e-6;
  for (double y : {0.2e-3, 0.5e-3, 0.8e-3}) {
    const double g_left = (m.rise(h, y) - m.rise(-h, y)) / (2.0 * h);
    const double g_right = (m.rise(1e-3 + h, y) - m.rise(1e-3 - h, y)) / (2.0 * h);
    // Compare with the interior gradient magnitude to give "zero" a scale.
    const double g_mid = std::abs((m.rise(0.6e-3 + h, y) - m.rise(0.6e-3 - h, y)) / (2.0 * h));
    EXPECT_LT(std::abs(g_left), 0.02 * g_mid + 1e-9) << "y = " << y;
    EXPECT_LT(std::abs(g_right), 0.02 * g_mid + 1e-9) << "y = " << y;
  }
}

TEST(ChipModel, WithoutImagesGradientAtWallIsNonzero) {
  ImageOptions opts;
  opts.lateral_order = 0;
  opts.bottom_images = false;
  ChipThermalModel m(die_1mm(), {{0.35e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.5}}, opts);
  const double h = 1e-6;
  const double g_left = (m.rise(h, 0.5e-3) - m.rise(-h, 0.5e-3)) / (2.0 * h);
  EXPECT_GT(std::abs(g_left), 1.0);  // K/m; clearly nonzero without mirrors
}

TEST(ChipModel, ImagesRaiseCornerTemperatures) {
  // Reflected heat cannot escape through adiabatic walls: with images the
  // on-die field is strictly hotter than the naive half-space model.
  ImageOptions with;
  with.lateral_order = 3;
  with.bottom_images = false;
  ImageOptions without;
  without.lateral_order = 0;
  without.bottom_images = false;
  ChipThermalModel m_with(die_1mm(), {center_block()}, with);
  ChipThermalModel m_without(die_1mm(), {center_block()}, without);
  for (double x : {0.1e-3, 0.5e-3, 0.9e-3}) {
    EXPECT_GT(m_with.rise(x, 0.1e-3), m_without.rise(x, 0.1e-3));
  }
}

TEST(ChipModel, BottomImagesCoolTheField) {
  ImageOptions with;
  with.bottom_images = true;
  ImageOptions without;
  without.bottom_images = false;
  ChipThermalModel m_with(die_1mm(), {center_block()}, with);
  ChipThermalModel m_without(die_1mm(), {center_block()}, without);
  EXPECT_LT(m_with.rise(0.5e-3, 0.5e-3), m_without.rise(0.5e-3, 0.5e-3));
  EXPECT_GT(m_with.rise(0.5e-3, 0.5e-3), 0.0);
}

TEST(ChipModel, ImageCountMatchesOrder) {
  ImageOptions opts;
  opts.lateral_order = 1;
  ChipThermalModel m(die_1mm(), {center_block()}, opts);
  // (2*1+1) lattice positions * 2 mirror signs per axis = 6 per axis -> 36
  // lateral copies for one source (z images are folded into evaluation).
  EXPECT_EQ(m.image_count(), 36u);
  ImageOptions none;
  none.lateral_order = 0;
  ChipThermalModel m0(die_1mm(), {center_block()}, none);
  EXPECT_EQ(m0.image_count(), 1u);
}

TEST(ChipModel, SetSourcePowerRescalesField) {
  ChipThermalModel m(die_1mm(), {center_block(1.0)});
  const double t1 = m.rise(0.2e-3, 0.2e-3);
  m.set_source_power(0, 2.0);
  EXPECT_NEAR(m.rise(0.2e-3, 0.2e-3), 2.0 * t1, 1e-12);
  m.set_source_power(0, 0.0);
  EXPECT_NEAR(m.rise(0.2e-3, 0.2e-3), 0.0, 1e-15);
  EXPECT_THROW(m.set_source_power(5, 1.0), PreconditionError);
}

TEST(ChipModel, SurfaceMapHasPeakOverTheBlock) {
  ChipThermalModel m(die_1mm(), {{0.25e-3, 0.25e-3, 0.15e-3, 0.15e-3, 0.5}});
  const int nx = 21, ny = 21;
  const auto map = m.surface_map(nx, ny);
  std::size_t hottest = 0;
  for (std::size_t i = 1; i < map.size(); ++i) {
    if (map[i] > map[hottest]) hottest = i;
  }
  const int ix = static_cast<int>(hottest) % nx;
  const int iy = static_cast<int>(hottest) / nx;
  const double px = 1e-3 * (ix + 0.5) / nx;
  const double py = 1e-3 * (iy + 0.5) / ny;
  EXPECT_NEAR(px, 0.25e-3, 0.06e-3);
  EXPECT_NEAR(py, 0.25e-3, 0.06e-3);
}

TEST(ChipModel, SourceCenterRiseMatchesDirectEvaluation) {
  ChipThermalModel m(die_1mm(), {center_block()});
  EXPECT_DOUBLE_EQ(m.source_center_rise(0), m.rise(0.5e-3, 0.5e-3));
  EXPECT_THROW((void)m.source_center_rise(3), PreconditionError);
}

TEST(ChipModel, RejectsDegenerateInput) {
  Die bad = die_1mm();
  bad.width = 0.0;
  EXPECT_THROW(ChipThermalModel(bad, {center_block()}), PreconditionError);
  HeatSource degenerate{0.5e-3, 0.5e-3, 0.0, 0.1e-3, 1.0};
  EXPECT_THROW(ChipThermalModel(die_1mm(), {degenerate}), PreconditionError);
}

TEST(ChipModel, ImageOrderConvergesOnceSinkPlaneIsActive) {
  // With the sink plane on, the net field of a source decays exponentially
  // with lateral distance, so mirror rings beyond the first ones contribute
  // nothing: order 2 and order 4 must agree to numerical dust.
  auto rise_at_order = [&](int order, bool bottom) {
    ImageOptions opts;
    opts.lateral_order = order;
    opts.bottom_images = bottom;
    ChipThermalModel m(die_1mm(), {center_block()}, opts);
    return m.rise(0.5e-3, 0.5e-3);
  };
  const double base = rise_at_order(2, true);
  EXPECT_NEAR(rise_at_order(4, true), base, 1e-6 * base + 1e-12);
  // Without the sink plane the 1/r tails make successive rings matter, but
  // with decreasing weight.
  const double d12 = std::abs(rise_at_order(2, false) - rise_at_order(1, false));
  const double d34 = std::abs(rise_at_order(4, false) - rise_at_order(3, false));
  EXPECT_GT(d12, 0.0);
  EXPECT_LT(d34, d12);
}

}  // namespace
}  // namespace ptherm::thermal
