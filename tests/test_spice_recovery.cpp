// Fault-injection tests for the DC convergence-recovery ladder: pathological
// circuits where each escalation stage (gmin continuation, source-stepping
// homotopy, temperature continuation) rescues a solve the previous stages
// cannot, plus the SolveReport audit trail (worst-KCL node by name) and the
// dc_sweep cold-restart path. Iteration budgets are deliberately tight —
// every fixture was tuned so the naive solver genuinely fails.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/newton_core.hpp"

namespace ptherm::spice {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

/// N-high stacked OFF NMOS chain. At elevated temperature the subthreshold
/// exponentials are strong and every intermediate node sits on a balance of
/// two of them; with a tight iteration budget the plain Newton fails.
Circuit make_stack(int n, double temp_hint_unused = 0.0) {
  (void)temp_hint_unused;
  Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  NodeId below = Circuit::ground();
  for (int i = 0; i < n; ++i) {
    const NodeId above = (i == n - 1) ? vdd : ckt.node("n" + std::to_string(i + 1));
    ckt.add_mosfet("M" + std::to_string(i + 1), above, Circuit::ground(), below,
                   Circuit::ground(), MosModel(t, MosType::Nmos, 0.5e-6, t.l_drawn));
    below = above;
  }
  return ckt;
}

/// Cross-coupled inverter latch: bistable, with a metastable point at
/// q == qb that the zero initial guess sits right on top of.
Circuit make_latch() {
  Circuit ckt;
  const Technology t = tech();
  const double wn = 0.32e-6;
  const auto vdd = ckt.node("vdd");
  const auto q = ckt.node("q");
  const auto qb = ckt.node("qb");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  ckt.add_mosfet("MN1", q, qb, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, t.l_drawn));
  ckt.add_mosfet("MP1", q, qb, vdd, vdd, MosModel(t, MosType::Pmos, 2.5 * wn, t.l_drawn));
  ckt.add_mosfet("MN2", qb, q, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, t.l_drawn));
  ckt.add_mosfet("MP2", qb, q, vdd, vdd, MosModel(t, MosType::Pmos, 2.5 * wn, t.l_drawn));
  return ckt;
}

/// Forced current into an OFF device's drain, gate driven separately. With
/// the gate low the drain must climb deep into the DIBL region to absorb the
/// current — hostile territory for Newton without strong gmin support.
Circuit make_forced_current() {
  Circuit ckt;
  const Technology t = tech();
  const auto drain = ckt.node("drain");
  const auto gate = ckt.node("gate");
  ckt.add_vsource("VG", gate, Circuit::ground(), 0.0);
  ckt.add_isource("IFORCE", Circuit::ground(), drain, 1e-3);
  ckt.add_mosfet("MOFF", drain, gate, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 1e-6, t.l_drawn));
  return ckt;
}

DcOptions naive(DcOptions o) {
  o.recovery.source_stepping = false;
  o.recovery.temp_stepping = false;
  return o;
}

// ---------------------------------------------------------------------------
// Stage 1: the gmin ladder itself is a rescue relative to a single weak rung.

TEST(RecoveryLadder, GminLadderRescuesHotStack) {
  DcOptions opts;
  opts.temp = 500.0;
  opts.max_iterations = 6;

  auto ckt = make_stack(4);
  const auto sol = solve_dc(ckt, naive(opts));
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.report.path, "gmin");

  // The same circuit and budget without the ladder (one weak rung only).
  DcOptions single = naive(opts);
  single.gmin_steps = {1e-12};
  auto ckt2 = make_stack(4);
  EXPECT_THROW((void)solve_dc(ckt2, single), ConvergenceFailure);
}

// ---------------------------------------------------------------------------
// Stage 2: source stepping rescues the latch once the budget starves the
// plain ladder.

TEST(RecoveryLadder, SourceSteppingRescuesLatch) {
  DcOptions opts;
  opts.max_iterations = 6;

  auto ckt = make_latch();
  try {
    (void)solve_dc(ckt, naive(opts));
    FAIL() << "naive Newton unexpectedly converged on the latch at this budget";
  } catch (const ConvergenceFailure& e) {
    EXPECT_EQ(e.report().path, "gmin");
    EXPECT_FALSE(e.report().worst_node.empty());
    // The structured context rides on the base ConvergenceError too.
    ASSERT_TRUE(e.diagnostics().has_value());
    EXPECT_EQ(e.diagnostics()->solver, "solve_dc");
  }

  auto ckt2 = make_latch();
  const auto sol = solve_dc(ckt2, opts);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.report.path, "gmin,source");
  EXPECT_GT(sol.report.homotopy_steps, 0);
  // The symmetric source ramp preserves the latch's symmetry, so the
  // homotopy tracks the metastable balance point — a legitimate DC operating
  // point (the one a .op finds), inside the rails.
  const double q = sol.voltage(ckt2.node("q"));
  const double qb = sol.voltage(ckt2.node("qb"));
  EXPECT_NEAR(q, qb, 1e-6);
  EXPECT_GT(q, 0.0);
  EXPECT_LT(q, tech().vdd);
}

// ---------------------------------------------------------------------------
// Stage 3: temperature continuation rescues the hot stack when source
// stepping is unavailable — solve cold (weak exponentials), ramp the device
// temperatures to the 500 K target at the gmin the cold ladder held.

TEST(RecoveryLadder, TempContinuationRescuesHotStack) {
  DcOptions opts;
  opts.temp = 500.0;
  opts.max_iterations = 5;
  opts.recovery.source_stepping = false;
  opts.recovery.temp_cold = 200.0;
  opts.recovery.temp_steps = 15;

  DcOptions no_temp = opts;
  no_temp.recovery.temp_stepping = false;
  auto ckt = make_stack(4);
  EXPECT_THROW((void)solve_dc(ckt, no_temp), ConvergenceFailure);

  auto ckt2 = make_stack(4);
  const auto sol = solve_dc(ckt2, opts);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.report.path, "gmin,temp");
  EXPECT_GT(sol.report.homotopy_steps, 0);
  // The final assembly ran at the target temperature, not the cold start.
  EXPECT_DOUBLE_EQ(sol.report.device_temperatures.at("M1"), 500.0);
}

// ---------------------------------------------------------------------------
// Circuits the plain ladder handles see the plain path — the recovery layer
// is arithmetic-transparent unless stage 1 fails.

TEST(RecoveryLadder, CleanCircuitTakesPlainGminPath) {
  Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  ckt.add_vsource("VIN", in, Circuit::ground(), 0.0);
  ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
  ckt.add_mosfet("MP", out, in, vdd, vdd, MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
  const auto sol = solve_dc(ckt);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.report.path, "gmin");
  EXPECT_EQ(sol.report.homotopy_steps, 0);
  EXPECT_FALSE(sol.report.cold_restart);
  EXPECT_FALSE(sol.report.summary().empty());
}

// ---------------------------------------------------------------------------
// Total failure surfaces the full audit: every stage listed in the path, the
// actually-worst node named, and the structured diagnostics populated.

TEST(SolveReportAudit, TotalFailureNamesWorstNode) {
  DcOptions opts;
  opts.gmin_steps = {1e-9, 1e-12};  // too weak to hold the forced node

  auto ckt = make_forced_current();
  try {
    (void)solve_dc(ckt, opts);
    FAIL() << "forced-current circuit unexpectedly converged";
  } catch (const ConvergenceFailure& e) {
    EXPECT_EQ(e.report().path, "gmin,source,temp");
    EXPECT_FALSE(e.report().converged);
    // The 1 mA forced into the drain is the KCL violation: the audit must
    // name the drain node, not some incidental neighbour.
    EXPECT_EQ(e.report().worst_node, "drain");
    EXPECT_GT(std::abs(e.report().worst_residual), 1e-5);
    EXPECT_TRUE(e.report().device_temperatures.contains("MOFF"));
    ASSERT_TRUE(e.diagnostics().has_value());
    EXPECT_EQ(e.diagnostics()->worst, "node drain");
    EXPECT_NE(std::string(e.what()).find("drain"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// dc_sweep: cold-restart retry and sweep-value naming.

TEST(DcSweep, PoisonedWarmStartRescuedByColdRestart) {
  // The hazard the sweep retry guards against, exercised at the seam: a warm
  // start stranded far from the solution (all nodes at +v_limit) starves the
  // tight budget, while the identical cold solve converges.
  DcOptions opts = naive({});
  opts.temp = 500.0;
  opts.max_iterations = 6;

  auto ckt = make_stack(4);
  detail::NewtonCore core(ckt, opts);
  const std::vector<double> poisoned(static_cast<std::size_t>(core.size()), 10.0);
  EXPECT_THROW((void)detail::solve_dc_core(ckt, core, opts, &poisoned), ConvergenceFailure);
  const auto sol = detail::solve_dc_core(ckt, core, opts, nullptr);
  EXPECT_TRUE(sol.converged);
}

TEST(DcSweep, MidSweepFailureNamesPointAndValue) {
  DcOptions opts;
  opts.gmin_steps = {1e-9, 1e-12};

  auto ckt = make_forced_current();
  try {
    (void)dc_sweep(ckt, "VG", {0.8, 0.4}, opts);
    FAIL() << "sweep unexpectedly completed";
  } catch (const ConvergenceFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("point 1"), std::string::npos) << what;
    EXPECT_NE(what.find("VG = 0.4"), std::string::npos) << what;
    EXPECT_NE(what.find("cold restart"), std::string::npos) << what;
    EXPECT_EQ(e.report().worst_node, "drain");
  }
}

TEST(DcSweep, CleanSweepIsDeterministicAndNeverRetries) {
  const std::vector<double> values = {0.0, 0.3, 0.6, 0.9, 1.2};
  const auto run = [&] {
    Circuit ckt;
    const Technology t = tech();
    const auto vdd = ckt.node("vdd");
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
    ckt.add_vsource("VIN", in, Circuit::ground(), 0.0);
    ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                   MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
    ckt.add_mosfet("MP", out, in, vdd, vdd, MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
    return dc_sweep(ckt, "VIN", values, {});
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), values.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_TRUE(a[k].converged);
    EXPECT_FALSE(a[k].report.cold_restart) << "point " << k;
    ASSERT_EQ(a[k].node_voltages.size(), b[k].node_voltages.size());
    for (std::size_t n = 0; n < a[k].node_voltages.size(); ++n) {
      EXPECT_EQ(a[k].node_voltages[n], b[k].node_voltages[n])
          << "point " << k << " node " << n;
    }
  }

  // The first sweep point has no warm start: it must be bitwise identical to
  // a standalone solve of the same circuit.
  Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  ckt.add_vsource("VIN", in, Circuit::ground(), values[0]);
  ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 0.32e-6, t.l_drawn));
  ckt.add_mosfet("MP", out, in, vdd, vdd, MosModel(t, MosType::Pmos, 0.8e-6, t.l_drawn));
  const auto standalone = solve_dc(ckt);
  for (std::size_t n = 0; n < standalone.node_voltages.size(); ++n) {
    EXPECT_EQ(a[0].node_voltages[n], standalone.node_voltages[n]) << "node " << n;
  }
}

}  // namespace
}  // namespace ptherm::spice
