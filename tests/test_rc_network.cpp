// Tests for the compact block-level thermal RC network: steady-state
// equivalence with the concurrent solver (by construction), transient
// plausibility against the FDM transient, and speed-path invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/rc_network.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan plan(double p_total = 3.0) {
  Rng rng(77);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

ActivityProfile constant_activity() {
  return [](std::size_t, double) { return 1.0; };
}

TEST(RcNetwork, ConductanceMatrixInvertsInfluence) {
  const auto fp = plan();
  RcThermalNetwork net(tech(), fp, {});
  ElectroThermalSolver steady(tech(), fp, {});
  const auto& r = steady.influence_matrix();
  const auto& g = net.conductances();
  const std::size_t n = r.size();
  // R * G must be the identity.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += r.at(i, k) * g[k][j];
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(RcNetwork, LongTransientLandsOnSteadyFixedPoint) {
  const auto fp = plan();
  RcNetworkOptions opts;
  opts.t_stop = 80e-3;  // many block time constants
  opts.dt = 5e-5;
  RcThermalNetwork net(tech(), fp, opts);
  const auto r = net.solve(constant_activity());

  ElectroThermalSolver steady(tech(), fp, {});
  const auto s = steady.solve();
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < s.blocks.size(); ++i) {
    EXPECT_NEAR(r.block_temps.back()[i], s.blocks[i].temperature, 0.05) << "block " << i;
  }
}

TEST(RcNetwork, HeatsMonotonicallyUnderConstantPower) {
  RcThermalNetwork net(tech(), plan(), {});
  const auto r = net.solve(constant_activity());
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    for (std::size_t i = 0; i < r.block_temps[k].size(); ++i) {
      EXPECT_GE(r.block_temps[k][i], r.block_temps[k - 1][i] - 1e-9);
    }
  }
}

TEST(RcNetwork, TimeConstantComparableToFdmTransient) {
  // Compare the time each model needs to cover half of its own final rise
  // under a power step. A single-pole-per-block reduction cannot match the
  // FDM's multi-scale response exactly; a factor-2 band is the fidelity
  // claim we make for it.
  const auto fp = plan(4.0);
  auto half_time = [](const TransientCosimResult& r, double t_sink) {
    const double final_rise = r.block_temps.back()[0] - t_sink;
    for (std::size_t k = 0; k < r.times.size(); ++k) {
      if (r.block_temps[k][0] - t_sink > 0.5 * final_rise) return r.times[k];
    }
    return r.times.back();
  };
  RcNetworkOptions ropts;
  ropts.t_stop = 40e-3;
  RcThermalNetwork net(tech(), fp, ropts);
  const auto rc = net.solve(constant_activity());

  TransientCosimOptions fopts;
  fopts.fdm.nx = 16;
  fopts.fdm.ny = 16;
  fopts.fdm.nz = 10;
  fopts.dt = 2e-4;
  fopts.t_stop = 40e-3;
  const auto fdm = solve_transient_cosim(tech(), fp, constant_activity(), fopts);

  const double t_rc = half_time(rc, die_1mm().t_sink);
  const double t_fdm = half_time(fdm, die_1mm().t_sink);
  EXPECT_GT(t_rc / t_fdm, 0.5);
  EXPECT_LT(t_rc / t_fdm, 2.0);
}

TEST(RcNetwork, BurstyProfileCycles) {
  RcNetworkOptions opts;
  opts.t_stop = 24e-3;
  RcThermalNetwork net(tech(), plan(4.0), opts);
  ActivityProfile pulse = [](std::size_t, double t) { return t < 8e-3 ? 1.5 : 0.0; };
  const auto r = net.solve(pulse);
  const double peak = r.peak_temperature();
  EXPECT_LT(r.block_temps.back()[0], peak - 0.5);  // cooled after the burst
  EXPECT_GT(peak, die_1mm().t_sink + 1.0);
}

TEST(RcNetwork, CapacitancesScaleWithArea) {
  const auto fp = plan();
  RcThermalNetwork net(tech(), fp, {});
  const auto& c = net.capacitances();
  ASSERT_EQ(c.size(), fp.blocks().size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_GT(c[i], 0.0);
    // Equal-area uniform grid: equal capacitances.
    EXPECT_NEAR(c[i], c[0], 1e-12 * c[0]);
  }
}

TEST(RcNetwork, RejectsBadConfiguration) {
  RcNetworkOptions bad;
  bad.depth_fraction = 0.0;
  EXPECT_THROW(RcThermalNetwork(tech(), plan(), bad), PreconditionError);
  RcThermalNetwork ok(tech(), plan(), {});
  EXPECT_THROW(ok.solve(ActivityProfile{}), PreconditionError);
}

}  // namespace
}  // namespace ptherm::core
