// Unit + property tests for numerics/roots.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "numerics/roots.hpp"

namespace ptherm::numerics {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  auto f = [](double x) { return x * x - 2.0; };
  const auto r = bisect(f, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ThrowsWithoutBracket) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bisect(f, -1.0, 1.0), PreconditionError);
}

TEST(Bisect, AcceptsRootAtEndpoint) {
  auto f = [](double x) { return x; };
  const auto r = bisect(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(Brent, FindsSqrtTwoFasterThanBisect) {
  auto f = [](double x) { return x * x - 2.0; };
  const auto rb = brent(f, 0.0, 2.0);
  const auto ri = bisect(f, 0.0, 2.0);
  EXPECT_TRUE(rb.converged);
  EXPECT_NEAR(rb.x, std::sqrt(2.0), 1e-12);
  EXPECT_LT(rb.iterations, ri.iterations);
}

TEST(Brent, HandlesSteepExponential) {
  // The kind of function the leakage solver produces: e^(x/0.026) - K.
  const double k = 1e6;
  auto f = [&](double x) { return std::exp(x / 0.026) - k; };
  const auto r = brent(f, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.026 * std::log(k), 1e-9);
}

TEST(Brent, ThrowsOnEmptyInterval) {
  auto f = [](double x) { return x; };
  EXPECT_THROW(brent(f, 1.0, -1.0), PreconditionError);
}

TEST(Newton, ConvergesQuadraticallyOnCubic) {
  auto f = [](double x) { return x * x * x - 8.0; };
  auto df = [](double x) { return 3.0 * x * x; };
  RootOptions opts;
  opts.f_tol = 1e-12;
  const auto r = newton(f, df, 1.0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-9);
  EXPECT_LT(r.iterations, 12);
}

TEST(Newton, DampingRescuesOvershoot) {
  // atan has a famously divergent undamped Newton from |x0| > ~1.39.
  auto f = [](double x) { return std::atan(x); };
  auto df = [](double x) { return 1.0 / (1.0 + x * x); };
  RootOptions opts;
  opts.f_tol = 1e-12;
  const auto r = newton(f, df, 3.0, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 0.0, 1e-6);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  auto f = [](double x) { return x - 100.0; };
  double lo = 0.0, hi = 1.0;
  EXPECT_TRUE(expand_bracket(f, lo, hi));
  EXPECT_LE(f(lo) * f(hi), 0.0);
}

TEST(ExpandBracket, FailsForSignlessFunction) {
  auto f = [](double x) { return x * x + 1.0; };
  double lo = -1.0, hi = 1.0;
  EXPECT_FALSE(expand_bracket(f, lo, hi, 8));
}

// Property sweep: both bracketing methods must find the root of
// f(x) = x^p - c for a family of (p, c).
struct PowerCase {
  double p;
  double c;
};

class BracketingSweep : public ::testing::TestWithParam<PowerCase> {};

TEST_P(BracketingSweep, BisectAndBrentAgree) {
  const auto [p, c] = GetParam();
  auto f = [&](double x) { return std::pow(x, p) - c; };
  const double expected = std::pow(c, 1.0 / p);
  const auto rb = brent(f, 0.0, 10.0);
  const auto ri = bisect(f, 0.0, 10.0);
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(ri.converged);
  EXPECT_NEAR(rb.x, expected, 1e-9);
  EXPECT_NEAR(ri.x, expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PowersAndConstants, BracketingSweep,
                         ::testing::Values(PowerCase{1.0, 0.5}, PowerCase{2.0, 3.0},
                                           PowerCase{3.0, 9.0}, PowerCase{0.5, 2.0},
                                           PowerCase{5.0, 1e3}, PowerCase{1.5, 7.7}));

}  // namespace
}  // namespace ptherm::numerics
