// Cross-technology property sweeps: the collapse model and the thermal
// kernels must hold on every process descriptor the library ships (the
// 0.12 um and 0.35 um presets and the scaled roadmap nodes), not just the
// node they were developed on.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "device/mosfet.hpp"
#include "device/tech.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"
#include "thermal/analytic.hpp"

namespace ptherm {
namespace {

using device::MosType;
using device::Technology;

std::vector<Technology> all_technologies() {
  std::vector<Technology> techs = {Technology::cmos012(), Technology::cmos035()};
  for (double f : {0.25, 0.13, 0.07, 0.035}) techs.push_back(Technology::scaled_node(f));
  return techs;
}

class TechnologySweep : public ::testing::TestWithParam<int> {
 protected:
  Technology tech_ = all_technologies()[static_cast<std::size_t>(GetParam())];
};

TEST_P(TechnologySweep, CollapseTracksExactOnEveryProcess) {
  for (int n = 2; n <= 4; ++n) {
    const std::vector<double> widths(n, 4.0 * tech_.w_min);
    const auto exact =
        leakage::solve_exact_chain(tech_, MosType::Nmos, widths, tech_.l_drawn, 300.0);
    const double blend =
        leakage::chain_off_current(tech_, MosType::Nmos, widths, tech_.l_drawn, 300.0);
    EXPECT_NEAR(blend / exact.current, 1.0, 0.12)
        << tech_.name << " stack " << n;
    const double refined = leakage::chain_off_current(
        tech_, MosType::Nmos, widths, tech_.l_drawn, 300.0, 0.0,
        leakage::CollapseVariant::Refined);
    EXPECT_NEAR(refined / exact.current, 1.0, 0.04) << tech_.name << " stack " << n;
  }
}

TEST_P(TechnologySweep, StackEffectOrderedOnEveryProcess) {
  double prev = 1e9;
  for (int n = 1; n <= 5; ++n) {
    const double i = leakage::stack_off_current(tech_, MosType::Nmos, 4.0 * tech_.w_min,
                                                tech_.l_drawn, n, 300.0);
    EXPECT_LT(i, prev) << tech_.name << " n=" << n;
    prev = i;
  }
}

TEST_P(TechnologySweep, TemperatureMonotoneOnEveryProcess) {
  double prev = 0.0;
  for (double t = 280.0; t <= 420.0; t += 20.0) {
    const double i = leakage::stack_off_current(tech_, MosType::Nmos, 4.0 * tech_.w_min,
                                                tech_.l_drawn, 2, t);
    EXPECT_GT(i, prev) << tech_.name << " T=" << t;
    prev = i;
  }
}

TEST_P(TechnologySweep, PmosNmosBothPositiveAndFinite) {
  for (MosType type : {MosType::Nmos, MosType::Pmos}) {
    const double i = leakage::stack_off_current(tech_, type, 4.0 * tech_.w_min,
                                                tech_.l_drawn, 3, 330.0);
    EXPECT_GT(i, 0.0);
    EXPECT_TRUE(std::isfinite(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllProcesses, TechnologySweep, ::testing::Range(0, 6));

// ---- thermal kernels across aspect ratios -------------------------------

class AspectRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(AspectRatioSweep, ExactKernelMatchesQuadrature) {
  const double aspect = GetParam();
  const thermal::HeatSource src{0.0, 0.0, 1e-6 * aspect, 1e-6, 1e-3};
  for (const auto& [x, y] : {std::pair{0.0, 0.0}, std::pair{2e-6, 1e-6},
                             std::pair{0.5e-6 * aspect, 0.0}}) {
    const double exact = thermal::rect_rise_exact(148.0, src, x, y);
    const double quad = thermal::rect_rise_quadrature(148.0, src, x, y);
    EXPECT_NEAR(exact / quad, 1.0, 5e-3) << "aspect " << aspect;
  }
}

TEST_P(AspectRatioSweep, MinEstimatorBoundedAndFarFieldExact) {
  const double aspect = GetParam();
  const thermal::HeatSource src{0.0, 0.0, 1e-6 * aspect, 1e-6, 1e-3};
  const double t0 = thermal::rect_center_rise(148.0, src.power, src.w, src.l);
  const double far = 20e-6 * std::max(1.0, aspect);
  EXPECT_LE(thermal::rect_rise_min(148.0, src, 0.0, 0.0), t0 + 1e-15);
  EXPECT_NEAR(thermal::rect_rise_min(148.0, src, far, 0.0) /
                  thermal::rect_rise_exact(148.0, src, far, 0.0),
              1.0, 0.02)
      << "aspect " << aspect;
}

INSTANTIATE_TEST_SUITE_P(Aspects, AspectRatioSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 40.0));

}  // namespace
}  // namespace ptherm
