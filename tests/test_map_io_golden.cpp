// Golden-file and round-trip tests for the thermal-map reader/writer pair:
// write_gnuplot_matrix -> read_gnuplot_matrix must reproduce every
// temperature bitwise, the checked-in golden file pins the on-disk format,
// and malformed inputs must fail loudly through ptherm::IoError.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/error.hpp"
#include "thermal/map_io.hpp"

namespace ptherm::thermal {
namespace {

// A map whose values exercise the printer: non-representable decimals,
// denormal-adjacent magnitudes, negatives, and exact zeros.
SurfaceMap awkward_map() {
  SurfaceMap m;
  m.nx = 3;
  m.ny = 4;
  m.values = {0.1,   318.15,    1e-30, -2.5,  6.62607015e-34, 299792458.0,
              3.141592653589793, 1.0 / 3.0, 404.0, 1e300, -1e-300, 0.0};
  return m;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(MapIoGolden, WriteReadRoundTripIsBitwiseStable) {
  const auto m = awkward_map();
  const std::string path = "test_map_io_roundtrip.dat";
  ASSERT_TRUE(write_gnuplot_matrix(m, path));
  const SurfaceMap back = read_gnuplot_matrix(path);
  ASSERT_EQ(back.nx, m.nx);
  ASSERT_EQ(back.ny, m.ny);
  ASSERT_EQ(back.values.size(), m.values.size());
  for (std::size_t k = 0; k < m.values.size(); ++k) {
    EXPECT_TRUE(bitwise_equal(back.values[k], m.values[k]))
        << "value " << k << " drifted: wrote " << m.values[k] << ", read "
        << back.values[k];
  }
  std::remove(path.c_str());
}

TEST(MapIoGolden, SecondGenerationFileIsByteIdentical) {
  // Format stability: writing what we read must reproduce the same bytes
  // (modulo the comment line, which embeds the output path).
  const auto m = awkward_map();
  const std::string p1 = "test_map_io_gen1.dat";
  const std::string p2 = "test_map_io_gen2.dat";
  ASSERT_TRUE(write_gnuplot_matrix(m, p1));
  ASSERT_TRUE(write_gnuplot_matrix(read_gnuplot_matrix(p1), p2));
  auto data_lines = [](const std::string& path) {
    std::ifstream in(path);
    std::string line, out;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') {
        out += line;
        out += '\n';
      }
    }
    return out;
  };
  EXPECT_EQ(data_lines(p1), data_lines(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(MapIoGolden, GoldenFileParsesToExactValues) {
  // tests/data/golden_map.dat is checked in; if the reader (or the format)
  // changes incompatibly, this fails before any user notices.
  const SurfaceMap m = read_gnuplot_matrix(std::string(PTHERM_TEST_DATA_DIR) +
                                           "/golden_map.dat");
  const auto expected = awkward_map();
  ASSERT_EQ(m.nx, expected.nx);
  ASSERT_EQ(m.ny, expected.ny);
  for (std::size_t k = 0; k < expected.values.size(); ++k) {
    EXPECT_TRUE(bitwise_equal(m.values[k], expected.values[k]))
        << "golden value " << k << " parsed as " << m.values[k] << ", expected "
        << expected.values[k];
  }
}

TEST(MapIoGolden, NonFiniteValuesSurviveTheRoundTrip) {
  // Maps dumped from a diverged (runaway) solve can hold inf/NaN; the writer
  // emits "inf"/"nan" text, so the reader must take those tokens back.
  SurfaceMap m;
  m.nx = 2;
  m.ny = 2;
  const double inf = std::numeric_limits<double>::infinity();
  m.values = {1.0, inf, -inf, std::numeric_limits<double>::quiet_NaN()};
  const std::string path = "test_map_io_nonfinite.dat";
  ASSERT_TRUE(write_gnuplot_matrix(m, path));
  const SurfaceMap back = read_gnuplot_matrix(path);
  ASSERT_EQ(back.values.size(), 4u);
  EXPECT_TRUE(bitwise_equal(back.values[0], 1.0));
  EXPECT_TRUE(bitwise_equal(back.values[1], inf));
  EXPECT_TRUE(bitwise_equal(back.values[2], -inf));
  EXPECT_TRUE(std::isnan(back.values[3]));
  std::remove(path.c_str());
}

TEST(MapIoGolden, NonFiniteMapsRenderWithoutCrashing) {
  // Pre-PR-1 the renderers normalized by span = inf and indexed the shade
  // table with the resulting NaN (out-of-bounds read, observed segfault).
  SurfaceMap m;
  m.nx = 2;
  m.ny = 2;
  const double inf = std::numeric_limits<double>::infinity();
  m.values = {1.0, inf, -inf, std::numeric_limits<double>::quiet_NaN()};
  // Map row 1 (-inf, NaN) renders first, then row 0 (1.0, +inf).
  const std::string art = render_ascii(m);
  ASSERT_EQ(art.size(), 6u);
  EXPECT_EQ(art[0], ' ');  // -inf the coolest shade
  EXPECT_EQ(art[1], ' ');  // NaN renders coolest, not out of bounds
  EXPECT_EQ(art[4], '@');  // +inf the hottest
  const std::string path = "test_map_io_nonfinite.pgm";
  EXPECT_TRUE(write_pgm(m, path));
  std::remove(path.c_str());
}

TEST(MapIoGolden, WhitespaceOnlyLinesAreNotRows) {
  // Hand-edited or CRLF-converted files grow "blank" lines of spaces or bare
  // CRs; gnuplot ignores them and so must the reader.
  const std::string path = "test_map_io_blanks.dat";
  {
    std::ofstream out(path);
    out << " \n1 2\n\r\n3 4\n   \n";
  }
  const SurfaceMap m = read_gnuplot_matrix(path);
  EXPECT_EQ(m.nx, 2);
  EXPECT_EQ(m.ny, 2);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST(MapIoGolden, MissingFileThrowsIoError) {
  EXPECT_THROW(read_gnuplot_matrix("no_such_directory/no_such_map.dat"), IoError);
}

TEST(MapIoGolden, RaggedRowsThrowIoError) {
  const std::string path = "test_map_io_ragged.dat";
  {
    std::ofstream out(path);
    out << "1 2 3\n4 5\n";
  }
  EXPECT_THROW(read_gnuplot_matrix(path), IoError);
  std::remove(path.c_str());
}

TEST(MapIoGolden, NonNumericTokenThrowsIoError) {
  const std::string path = "test_map_io_garbage.dat";
  {
    std::ofstream out(path);
    out << "1 2 3\n4 five 6\n";
  }
  EXPECT_THROW(read_gnuplot_matrix(path), IoError);
  std::remove(path.c_str());
}

TEST(MapIoGolden, CommentOnlyFileThrowsIoError) {
  const std::string path = "test_map_io_empty.dat";
  {
    std::ofstream out(path);
    out << "# gnuplot: nothing follows\n\n";
  }
  EXPECT_THROW(read_gnuplot_matrix(path), IoError);
  std::remove(path.c_str());
}

TEST(MapIoGolden, IoErrorIsAPthermError) {
  // Callers catching the library base class must see file problems too.
  const bool caught = [] {
    try {
      read_gnuplot_matrix("no_such_map_anywhere.dat");
    } catch (const Error&) {
      return true;
    }
    return false;
  }();
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace ptherm::thermal
