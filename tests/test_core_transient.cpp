// Tests for the transient electro-thermal co-simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan small_plan(double p_total = 3.0) {
  Rng rng(77);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

TransientCosimOptions fast_opts() {
  TransientCosimOptions opts;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 10;
  opts.dt = 2e-4;
  opts.t_stop = 12e-3;
  return opts;
}

ActivityProfile constant_activity() {
  return [](std::size_t, double) { return 1.0; };
}

TEST(TransientCosim, HeatsMonotonicallyUnderConstantPower) {
  const auto fp = small_plan();
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), fast_opts());
  ASSERT_GT(r.times.size(), 10u);
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    for (std::size_t i = 0; i < r.block_temps[k].size(); ++i) {
      EXPECT_GE(r.block_temps[k][i], r.block_temps[k - 1][i] - 1e-9)
          << "step " << k << " block " << i;
    }
  }
  EXPECT_GT(r.peak_temperature(), die_1mm().t_sink + 1.0);
}

TEST(TransientCosim, ApproachesSteadyCosimResult) {
  // Long transient under constant activity must land on the steady
  // concurrent solve (FDM backend, same grid).
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.t_stop = 60e-3;  // >> die time constant (~1.3 ms) and block scale
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), opts);

  CosimOptions sopts;
  sopts.backend = ThermalBackend::Fdm;
  sopts.fdm = opts.fdm;
  ElectroThermalSolver steady(tech(), fp, sopts);
  const auto s = steady.solve();
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < s.blocks.size(); ++i) {
    EXPECT_NEAR(r.block_temps.back()[i], s.blocks[i].temperature, 0.2)
        << "block " << i;
  }
}

TEST(TransientCosim, LeakageGrowsAsDieHeats) {
  const auto fp = small_plan(5.0);
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), fast_opts());
  EXPECT_GT(r.leakage_power.back(), r.leakage_power.front());
}

TEST(TransientCosim, PowerStepShowsThermalLag) {
  // Activity steps from 0.2 to 1.0 at t = 4 ms: power jumps instantly, the
  // temperature follows with the substrate's time constant.
  const auto fp = small_plan(4.0);
  auto opts = fast_opts();
  opts.t_stop = 16e-3;
  ActivityProfile step = [](std::size_t, double t) { return t < 4e-3 ? 0.2 : 1.0; };
  const auto r = solve_transient_cosim(tech(), fp, step, opts);

  // Find the step index.
  std::size_t k_step = 0;
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    if (r.dynamic_power[k] > 2.0 * r.dynamic_power[k - 1]) {
      k_step = k;
      break;
    }
  }
  ASSERT_GT(k_step, 0u);
  // Dynamic power is discontinuous; temperature is not: one step after the
  // jump the block has covered only a fraction of its eventual excursion.
  const double t_before = r.block_temps[k_step - 1][0];
  const double t_after = r.block_temps[k_step][0];
  const double t_final = r.block_temps.back()[0];
  ASSERT_GT(t_final, t_before + 1.0);
  EXPECT_LT(t_after - t_before, 0.5 * (t_final - t_before));
  EXPECT_GT(t_final, t_after + 1.0);
}

TEST(TransientCosim, CoolingPhaseDecays) {
  const auto fp = small_plan(4.0);
  auto opts = fast_opts();
  opts.t_stop = 16e-3;
  ActivityProfile pulse = [](std::size_t, double t) { return t < 6e-3 ? 1.0 : 0.0; };
  const auto r = solve_transient_cosim(tech(), fp, pulse, opts);
  const double peak = r.peak_temperature();
  const double final_t = r.block_temps.back()[0];
  EXPECT_LT(final_t, peak - 0.5);
}

TEST(TransientCosim, RecordEveryThinsTheTrace) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  const auto dense = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  opts.record_every = 5;
  const auto sparse = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  EXPECT_LT(sparse.times.size(), dense.times.size());
  // Same final state regardless of recording cadence.
  EXPECT_NEAR(sparse.block_temps.back()[0], dense.block_temps.back()[0], 1e-9);
}

TEST(TransientCosim, RejectsBadConfiguration) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.dt = 0.0;
  EXPECT_THROW(solve_transient_cosim(tech(), fp, constant_activity(), opts),
               PreconditionError);
  opts = fast_opts();
  EXPECT_THROW(solve_transient_cosim(tech(), fp, ActivityProfile{}, opts),
               PreconditionError);
}

}  // namespace
}  // namespace ptherm::core
