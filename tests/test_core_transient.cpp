// Tests for the transient electro-thermal co-simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/transient.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan small_plan(double p_total = 3.0) {
  Rng rng(77);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 1e5;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

TransientCosimOptions fast_opts() {
  TransientCosimOptions opts;
  opts.fdm.nx = 16;
  opts.fdm.ny = 16;
  opts.fdm.nz = 10;
  opts.dt = 2e-4;
  opts.t_stop = 12e-3;
  return opts;
}

ActivityProfile constant_activity() {
  return [](std::size_t, double) { return 1.0; };
}

TEST(TransientCosim, HeatsMonotonicallyUnderConstantPower) {
  const auto fp = small_plan();
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), fast_opts());
  ASSERT_GT(r.times.size(), 10u);
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    for (std::size_t i = 0; i < r.block_temps[k].size(); ++i) {
      EXPECT_GE(r.block_temps[k][i], r.block_temps[k - 1][i] - 1e-9)
          << "step " << k << " block " << i;
    }
  }
  EXPECT_GT(r.peak_temperature(), die_1mm().t_sink + 1.0);
}

TEST(TransientCosim, ApproachesSteadyCosimResult) {
  // Long transient under constant activity must land on the steady
  // concurrent solve (FDM backend, same grid).
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.t_stop = 60e-3;  // >> die time constant (~1.3 ms) and block scale
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), opts);

  CosimOptions sopts;
  sopts.backend = ThermalBackend::Fdm;
  sopts.fdm = opts.fdm;
  ElectroThermalSolver steady(tech(), fp, sopts);
  const auto s = steady.solve();
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < s.blocks.size(); ++i) {
    EXPECT_NEAR(r.block_temps.back()[i], s.blocks[i].temperature, 0.2)
        << "block " << i;
  }
}

TEST(TransientCosim, LeakageGrowsAsDieHeats) {
  const auto fp = small_plan(5.0);
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), fast_opts());
  EXPECT_GT(r.leakage_power.back(), r.leakage_power.front());
}

TEST(TransientCosim, PowerStepShowsThermalLag) {
  // Activity steps from 0.2 to 1.0 at t = 4 ms: power jumps instantly, the
  // temperature follows with the substrate's time constant.
  const auto fp = small_plan(4.0);
  auto opts = fast_opts();
  opts.t_stop = 16e-3;
  ActivityProfile step = [](std::size_t, double t) { return t < 4e-3 ? 0.2 : 1.0; };
  const auto r = solve_transient_cosim(tech(), fp, step, opts);

  // Find the step index.
  std::size_t k_step = 0;
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    if (r.dynamic_power[k] > 2.0 * r.dynamic_power[k - 1]) {
      k_step = k;
      break;
    }
  }
  ASSERT_GT(k_step, 0u);
  // Dynamic power is discontinuous; temperature is not: one step after the
  // jump the block has covered only a fraction of its eventual excursion.
  const double t_before = r.block_temps[k_step - 1][0];
  const double t_after = r.block_temps[k_step][0];
  const double t_final = r.block_temps.back()[0];
  ASSERT_GT(t_final, t_before + 1.0);
  EXPECT_LT(t_after - t_before, 0.5 * (t_final - t_before));
  EXPECT_GT(t_final, t_after + 1.0);
}

TEST(TransientCosim, CoolingPhaseDecays) {
  const auto fp = small_plan(4.0);
  auto opts = fast_opts();
  opts.t_stop = 16e-3;
  ActivityProfile pulse = [](std::size_t, double t) { return t < 6e-3 ? 1.0 : 0.0; };
  const auto r = solve_transient_cosim(tech(), fp, pulse, opts);
  const double peak = r.peak_temperature();
  const double final_t = r.block_temps.back()[0];
  EXPECT_LT(final_t, peak - 0.5);
}

TEST(TransientCosim, RecordEveryThinsTheTrace) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  const auto dense = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  opts.record_every = 5;
  const auto sparse = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  EXPECT_LT(sparse.times.size(), dense.times.size());
  // Same final state regardless of recording cadence.
  EXPECT_NEAR(sparse.block_temps.back()[0], dense.block_temps.back()[0], 1e-9);
}

TEST(TransientCosim, RejectsBadConfiguration) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.dt = 0.0;
  EXPECT_THROW(solve_transient_cosim(tech(), fp, constant_activity(), opts),
               PreconditionError);
  opts = fast_opts();
  EXPECT_THROW(solve_transient_cosim(tech(), fp, ActivityProfile{}, opts),
               PreconditionError);
}

TEST(TransientCosim, SingleStepRunIsAccepted) {
  // t_stop == dt is one legitimate step, not a configuration error.
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.t_stop = opts.dt;
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  ASSERT_EQ(r.times.size(), 2u);  // the initial record plus the one step
  EXPECT_DOUBLE_EQ(r.times[0], 0.0);
  EXPECT_DOUBLE_EQ(r.times[1], opts.dt);
  EXPECT_GT(r.block_temps[1][0], r.block_temps[0][0]);
}

TEST(TransientCosim, StepCountIsExactOnRepresentativeGrids) {
  // t_stop / dt drifts off the integer in floating point for these grids;
  // the step count must neither drop the final step nor append a spurious
  // near-zero one, and the last record must land exactly on t_stop.
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.fdm.nx = 8;
  opts.fdm.ny = 8;
  opts.fdm.nz = 4;
  for (const auto& [t_stop, dt, want_steps] : {std::tuple{12e-3, 2e-4, 60},
                                               std::tuple{6e-3, 1e-4, 60},
                                               std::tuple{12.5e-4, 1e-4, 13}}) {
    opts.dt = dt;
    opts.t_stop = t_stop;
    const auto r = solve_transient_cosim(tech(), fp, constant_activity(), opts);
    EXPECT_EQ(r.times.size(), static_cast<std::size_t>(want_steps) + 1)
        << "t_stop " << t_stop << " dt " << dt;
    EXPECT_DOUBLE_EQ(r.times.back(), t_stop);
  }
}

TEST(TransientCosim, SpectralBackendRunsAndSettlesOnItsSteadySolve) {
  // The spectral transient backend end to end: monotone heating under
  // constant power, and the long run lands on the spectral steady cosim
  // (same backend, so no cross-model tolerance is involved).
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.backend = ThermalBackend::Spectral;
  opts.t_stop = 60e-3;
  const auto r = solve_transient_cosim(tech(), fp, constant_activity(), opts);
  ASSERT_GT(r.times.size(), 10u);
  for (std::size_t k = 1; k < r.times.size(); ++k) {
    for (std::size_t i = 0; i < r.block_temps[k].size(); ++i) {
      EXPECT_GE(r.block_temps[k][i], r.block_temps[k - 1][i] - 1e-9)
          << "step " << k << " block " << i;
    }
  }
  CosimOptions sopts;
  sopts.backend = ThermalBackend::Spectral;
  ElectroThermalSolver steady(tech(), fp, sopts);
  const auto s = steady.solve();
  ASSERT_TRUE(s.converged);
  for (std::size_t i = 0; i < s.blocks.size(); ++i) {
    EXPECT_NEAR(r.block_temps.back()[i], s.blocks[i].temperature, 0.2) << "block " << i;
  }
  // The generic iteration counter counts one exact mode-space update per
  // step on this backend, and the cost counters expose the step total.
  const int steps = static_cast<int>(r.times.size()) - 1;
  EXPECT_EQ(r.total_cg_iterations, steps);
  EXPECT_EQ(r.backend_stats.transient_steps, steps);
  EXPECT_EQ(r.backend_stats.cg_iterations, 0);
  EXPECT_GT(r.backend_stats.modes, 0);
}

TEST(TransientCosim, SpectralTrajectoryTracksTheFdmTrajectory) {
  // Cross-backend trajectory agreement at the co-simulation level. The two
  // readbacks differ by the FDM top-layer cell-centre depth (dz/2) and the
  // reference's O(dt) backward-Euler error, so the band here is the loose
  // cosim-level one; the 2% matched-depth bar lives in
  // test_thermal_spectral.cpp where depth is controlled.
  const auto fp = small_plan();
  TransientCosimOptions fdm_opts;
  fdm_opts.backend = ThermalBackend::Fdm;
  fdm_opts.fdm.nx = 24;
  fdm_opts.fdm.ny = 24;
  fdm_opts.fdm.nz = 12;
  fdm_opts.dt = 1e-4;
  fdm_opts.t_stop = 8e-3;
  auto sp_opts = fdm_opts;
  sp_opts.backend = ThermalBackend::Spectral;
  const auto f = solve_transient_cosim(tech(), fp, constant_activity(), fdm_opts);
  const auto s = solve_transient_cosim(tech(), fp, constant_activity(), sp_opts);
  ASSERT_EQ(f.times.size(), s.times.size());
  const double sink = die_1mm().t_sink;
  for (std::size_t k = 1; k < f.times.size(); ++k) {
    if (f.times[k] < 1e-3) continue;  // skip the backward-Euler-dominated start
    for (std::size_t i = 0; i < f.block_temps[k].size(); ++i) {
      const double rise_f = f.block_temps[k][i] - sink;
      const double rise_s = s.block_temps[k][i] - sink;
      EXPECT_NEAR(rise_s, rise_f, 0.10 * rise_f)
          << "t = " << f.times[k] << " block " << i;
    }
  }
  // Total leakage trajectories must agree too (the electro-thermal feedback
  // sees near-identical temperatures).
  EXPECT_NEAR(s.leakage_power.back(), f.leakage_power.back(),
              0.10 * f.leakage_power.back());
}

// ------------------------------------------------ power-update epoch hook

TEST(TransientCosimHook, UnitEpochHookMatchesTheActivityPathBitwise) {
  // The activity-profile overload is specified as "exactly the hook overload
  // with the default power model": with power_update_every == 1 the two must
  // produce bit-identical trajectories on both transient-capable backends.
  const auto fp = small_plan();
  const auto& blocks = fp.blocks();
  const auto technology = tech();
  for (ThermalBackend backend : {ThermalBackend::Fdm, ThermalBackend::Spectral}) {
    auto opts = fast_opts();
    opts.backend = backend;
    opts.t_stop = 4e-3;
    const auto via_activity = solve_transient_cosim(technology, fp, constant_activity(), opts);
    const PowerUpdateHook hook = [&](long long, double, std::span<const double> temps,
                                     std::span<double> p_dyn, std::span<double> p_leak) {
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        p_dyn[i] = blocks[i].p_dynamic;  // constant activity 1.0
        p_leak[i] = blocks[i].leakage_power(technology, temps[i], opts.vb);
      }
    };
    const auto via_hook = solve_transient_cosim(technology, fp, hook, opts);
    ASSERT_EQ(via_hook.times.size(), via_activity.times.size());
    for (std::size_t k = 0; k < via_hook.times.size(); ++k) {
      EXPECT_EQ(via_hook.times[k], via_activity.times[k]);
      EXPECT_EQ(via_hook.leakage_power[k], via_activity.leakage_power[k]);
      EXPECT_EQ(via_hook.dynamic_power[k], via_activity.dynamic_power[k]);
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_EQ(via_hook.block_temps[k][i], via_activity.block_temps[k][i])
            << "backend " << static_cast<int>(backend) << " t " << via_hook.times[k];
      }
    }
  }
}

TEST(TransientCosimHook, EpochHeldPowersMatchPerStepWhenPowersAreConstant) {
  // With genuinely constant powers (no leakage content, constant activity)
  // holding them over 4-step epochs must not change the integration at all:
  // the same sources drive every step either way. The interior-step readback
  // skip and the backends' changed-power caches must both be invisible.
  Rng rng(12);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 3.0;
  cfg.gates_per_mm2 = 0.0;  // leakage-free: powers are truly constant
  const auto fp = floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  for (ThermalBackend backend : {ThermalBackend::Fdm, ThermalBackend::Spectral}) {
    auto opts = fast_opts();
    opts.backend = backend;
    opts.t_stop = 4.8e-3;    // 24 steps
    opts.record_every = 4;   // records land on epoch boundaries of both runs
    const auto per_step = solve_transient_cosim(tech(), fp, constant_activity(), opts);
    opts.power_update_every = 4;
    const auto per_epoch = solve_transient_cosim(tech(), fp, constant_activity(), opts);
    ASSERT_EQ(per_epoch.times.size(), per_step.times.size());
    for (std::size_t k = 0; k < per_epoch.times.size(); ++k) {
      for (std::size_t i = 0; i < fp.blocks().size(); ++i) {
        EXPECT_EQ(per_epoch.block_temps[k][i], per_step.block_temps[k][i])
            << "backend " << static_cast<int>(backend) << " t " << per_epoch.times[k];
      }
    }
    // The epoch run ingested the unchanged powers once; the per-step run's
    // backend saw the same thing (the caches key on values, not call
    // cadence) — both served every step.
    EXPECT_EQ(per_epoch.backend_stats.transient_steps, 24);
    EXPECT_EQ(per_epoch.backend_stats.transient_power_updates, 1);
    EXPECT_EQ(per_step.backend_stats.transient_power_updates, 1);
  }
}

TEST(TransientCosimHook, HookSeesEpochBoundariesAndItsPowersAreHeld) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.backend = ThermalBackend::Spectral;
  opts.dt = 1e-4;
  opts.t_stop = 3e-3;          // 30 steps
  opts.power_update_every = 10;  // 3 epochs
  opts.record_every = 10;
  std::vector<long long> epochs_seen;
  std::vector<double> times_seen;
  double first_temp = -1.0;
  const PowerUpdateHook hook = [&](long long epoch, double t, std::span<const double> temps,
                                   std::span<double> p_dyn, std::span<double> p_leak) {
    epochs_seen.push_back(epoch);
    times_seen.push_back(t);
    if (first_temp < 0.0) first_temp = temps[0];
    for (std::size_t i = 0; i < p_dyn.size(); ++i) {
      p_dyn[i] = 0.5 + 0.25 * static_cast<double>(epoch);  // distinct per epoch
      p_leak[i] = 0.01;
    }
  };
  const auto r = solve_transient_cosim(tech(), fp, hook, opts);
  ASSERT_EQ(epochs_seen.size(), 3u);
  EXPECT_EQ(epochs_seen, (std::vector<long long>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(times_seen[0], 0.0);
  EXPECT_DOUBLE_EQ(times_seen[1], 1e-3);
  EXPECT_DOUBLE_EQ(times_seen[2], 2e-3);
  EXPECT_DOUBLE_EQ(first_temp, die_1mm().t_sink);  // epoch 0 starts at the sink
  // Recorded totals are the epoch's held powers (4 blocks each).
  ASSERT_EQ(r.dynamic_power.size(), 4u);  // t = 0 plus the 3 epoch-end records
  EXPECT_DOUBLE_EQ(r.dynamic_power[0], 4 * 0.5);
  EXPECT_DOUBLE_EQ(r.dynamic_power[1], 4 * 0.5);
  EXPECT_DOUBLE_EQ(r.dynamic_power[2], 4 * 0.75);
  EXPECT_DOUBLE_EQ(r.dynamic_power[3], 4 * 1.0);
  EXPECT_DOUBLE_EQ(r.leakage_power[3], 4 * 0.01);
}

TEST(TransientCosimHook, RejectsBadEpochConfigurationAndNullHook) {
  const auto fp = small_plan();
  auto opts = fast_opts();
  opts.power_update_every = 0;
  EXPECT_THROW(solve_transient_cosim(tech(), fp, constant_activity(), opts),
               PreconditionError);
  opts = fast_opts();
  EXPECT_THROW(solve_transient_cosim(tech(), fp, PowerUpdateHook{}, opts),
               PreconditionError);
}

}  // namespace
}  // namespace ptherm::core
