// Tests for the influence-apply seam: the spectral matrix-free operator
// against the dense build (operator-level and full-cosim equivalence,
// including a lumped package resistance), mode resolution/rejection of the
// InfluenceMode selector, the lazy dense realization, and manycore-scale
// convergence without an n x n matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/influence.hpp"
#include "floorplan/generators.hpp"
#include "thermal/backend.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_2mm() {
  thermal::Die d;
  d.width = 2e-3;
  d.height = 2e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan manycore_plan(int tiles, double p_total = 4.0) {
  Rng rng(23);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_manycore(tech(), die_2mm(), tiles, tiles, cfg, rng);
}

CosimOptions spectral_opts(InfluenceMode mode) {
  CosimOptions opts;
  opts.backend = ThermalBackend::Spectral;
  opts.influence = mode;
  return opts;
}

TEST(InfluenceApply, SpectralOperatorMatchesDenseMatvec) {
  // The seam itself: one matrix-free apply against the dense columns, same
  // sources, same samples, random powers.
  const auto fp = manycore_plan(3);  // 36 blocks
  const auto sources = fp.heat_sources(tech());
  const auto samples = block_centre_samples(fp);
  const thermal::SpectralBackend backend(fp.die(), {});

  const auto op = backend.make_influence_apply(sources, samples);
  ASSERT_EQ(op->size(), sources.size());
  EXPECT_EQ(op->kind(), "spectral-mode-space");

  const InfluenceOperator dense(backend.build_influence(sources, samples));
  Rng rng(99);
  std::vector<double> powers(sources.size());
  for (auto& p : powers) p = rng.uniform(0.0, 2.0);
  std::vector<double> free_rises(sources.size());
  std::vector<double> dense_rises(sources.size());
  op->apply(powers, free_rises);
  dense.apply(powers, dense_rises);
  for (std::size_t i = 0; i < powers.size(); ++i) {
    EXPECT_NEAR(free_rises[i], dense_rises[i], 1e-10) << "sample " << i;
  }
}

TEST(InfluenceApply, ApplyChecksSpanSizes) {
  const auto fp = manycore_plan(3);
  const auto sources = fp.heat_sources(tech());
  const auto samples = block_centre_samples(fp);
  const thermal::SpectralBackend backend(fp.die(), {});
  const auto op = backend.make_influence_apply(sources, samples);
  std::vector<double> powers(sources.size(), 1.0);
  std::vector<double> short_out(sources.size() - 1);
  std::vector<double> rises(sources.size());
  EXPECT_THROW(op->apply(powers, short_out), PreconditionError);
  const std::vector<double> short_powers(sources.size() - 1, 1.0);
  EXPECT_THROW(op->apply(short_powers, rises), PreconditionError);
}

TEST(InfluenceApply, DenseOnlyBackendsRejectForcedMatrixFree) {
  const auto fp = manycore_plan(3);
  for (const ThermalBackend backend : {ThermalBackend::Analytic, ThermalBackend::Fdm}) {
    CosimOptions opts;
    opts.backend = backend;
    opts.influence = InfluenceMode::MatrixFree;
    if (backend == ThermalBackend::Fdm) {
      opts.fdm.nx = 16;
      opts.fdm.ny = 16;
      opts.fdm.nz = 8;
    }
    EXPECT_THROW(ElectroThermalSolver(tech(), fp, opts), PreconditionError);
  }
}

TEST(InfluenceApply, AutoResolvesPerBackendCapability) {
  const auto fp = manycore_plan(3);
  ElectroThermalSolver spectral(tech(), fp, spectral_opts(InfluenceMode::Auto));
  EXPECT_TRUE(spectral.matrix_free());
  EXPECT_EQ(spectral.influence_apply().kind(), "spectral-mode-space");

  ElectroThermalSolver analytic(tech(), fp, {});
  EXPECT_FALSE(analytic.matrix_free());
  EXPECT_EQ(analytic.influence_apply().kind(), "dense");

  ElectroThermalSolver forced_dense(tech(), fp, spectral_opts(InfluenceMode::Dense));
  EXPECT_FALSE(forced_dense.matrix_free());
  EXPECT_EQ(forced_dense.influence_apply().kind(), "dense");
}

TEST(InfluenceApply, MatrixFreeCosimMatchesDenseCosim) {
  // The acceptance bar: the full concurrent solve, matrix-free versus the
  // dense reference, agrees to <= 1e-10 max |dT| at 36 blocks with the SAME
  // Picard iteration count.
  const auto fp = manycore_plan(3);
  ElectroThermalSolver dense(tech(), fp, spectral_opts(InfluenceMode::Dense));
  ElectroThermalSolver free_solver(tech(), fp, spectral_opts(InfluenceMode::MatrixFree));
  const auto rd = dense.solve();
  const auto rf = free_solver.solve();
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rf.converged);
  EXPECT_EQ(rd.iterations, rf.iterations);
  ASSERT_EQ(rd.blocks.size(), rf.blocks.size());
  for (std::size_t i = 0; i < rd.blocks.size(); ++i) {
    EXPECT_NEAR(rf.blocks[i].temperature, rd.blocks[i].temperature, 1e-10) << "block " << i;
  }
}

TEST(InfluenceApply, MatrixFreeCosimMatchesDenseCosimWithPackageResistance) {
  // r_package lives inside the dense matrix (add_uniform) but is folded in
  // analytically as r_pkg * sum(P) on the matrix-free path; the two must
  // still agree to the same bar.
  auto dense_opts = spectral_opts(InfluenceMode::Dense);
  auto free_opts = spectral_opts(InfluenceMode::MatrixFree);
  dense_opts.r_package = 0.5;
  free_opts.r_package = 0.5;
  const auto fp = manycore_plan(3);
  ElectroThermalSolver dense(tech(), fp, dense_opts);
  ElectroThermalSolver free_solver(tech(), fp, free_opts);
  const auto rd = dense.solve();
  const auto rf = free_solver.solve();
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rf.converged);
  EXPECT_EQ(rd.iterations, rf.iterations);
  for (std::size_t i = 0; i < rd.blocks.size(); ++i) {
    EXPECT_NEAR(rf.blocks[i].temperature, rd.blocks[i].temperature, 1e-10) << "block " << i;
  }
  // And the package term is genuinely in play: hotter than the bare solve.
  ElectroThermalSolver bare(tech(), fp, spectral_opts(InfluenceMode::MatrixFree));
  const auto rb = bare.solve();
  EXPECT_GT(rf.max_temperature, rb.max_temperature + 0.1);
}

TEST(InfluenceApply, LazyDenseRealizationMatchesTheOperator) {
  // influence_matrix() on a matrix-free solver realizes the dense matrix on
  // demand (including r_package) — the ablation/RC-network escape hatch.
  auto opts = spectral_opts(InfluenceMode::MatrixFree);
  opts.r_package = 0.25;
  const auto fp = manycore_plan(3);
  ElectroThermalSolver solver(tech(), fp, opts);
  const auto& dense = solver.influence_matrix();
  ASSERT_EQ(dense.size(), fp.blocks().size());

  std::vector<double> powers(dense.size(), 1.0);
  std::vector<double> from_matrix(dense.size());
  std::vector<double> from_operator(dense.size());
  dense.apply(powers, from_matrix);
  solver.influence_apply().apply(powers, from_operator);
  double p_total = 0.0;
  for (const double p : powers) p_total += p;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    // The operator excludes the package term; the realized matrix includes it.
    EXPECT_NEAR(from_matrix[i], from_operator[i] + opts.r_package * p_total, 1e-10);
  }
}

TEST(InfluenceApply, ManycoreScaleCosimConvergesMatrixFree) {
  // 16x16 tiles = 1024 blocks: the scale the dense build exists to avoid
  // (the n x n matrix alone would be 8 MB and O(n^2 modes) to fill). The
  // matrix-free solve must converge with the usual iteration budget.
  const auto fp = manycore_plan(16, 30.0);
  ASSERT_EQ(fp.blocks().size(), 1024u);
  ElectroThermalSolver solver(tech(), fp, spectral_opts(InfluenceMode::Auto));
  EXPECT_TRUE(solver.matrix_free());
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
  EXPECT_EQ(r.blocks.size(), 1024u);
  EXPECT_GT(r.max_temperature, fp.die().t_sink);
}

}  // namespace
}  // namespace ptherm::core
