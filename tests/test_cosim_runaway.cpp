// Regression tests pinning the leakage-thermal runaway detection path in
// core/cosim.cpp: a floorplan driven past `runaway_rise_limit` must come
// back flagged as runaway — never silently clamped into a fake steady state
// — under both the Analytic and Fdm thermal backends.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

// An absurd leakage population (about 1000x a sane gate density) plus a hefty
// dynamic budget: the positive feedback T -> I_off(T) -> P -> T diverges.
floorplan::Floorplan unstable_plan() {
  Rng rng(4);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 40.0;
  cfg.gates_per_mm2 = 5e8;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

CosimOptions backend_opts(ThermalBackend backend) {
  CosimOptions opts;
  opts.backend = backend;
  if (backend == ThermalBackend::Fdm) {
    opts.fdm.nx = 16;
    opts.fdm.ny = 16;
    opts.fdm.nz = 8;
  }
  opts.runaway_rise_limit = 200.0;
  return opts;
}

class CosimRunaway : public ::testing::TestWithParam<ThermalBackend> {};

TEST_P(CosimRunaway, FlaggedNotSilentlyClamped) {
  ElectroThermalSolver solver(tech(), unstable_plan(), backend_opts(GetParam()));
  const auto r = solver.solve();
  EXPECT_TRUE(r.runaway);
  EXPECT_FALSE(r.converged);
  // The solver must stop promptly once the rise limit is crossed rather than
  // burning the full iteration budget on a diverging fixed point.
  EXPECT_LT(r.iterations, backend_opts(GetParam()).max_iterations);
  // The reported state is the diverging one, not a value clamped back under
  // the limit: the hottest block sits beyond sink + limit, and the last
  // update was nowhere near the convergence tolerance.
  EXPECT_GT(r.max_temperature, die_1mm().t_sink + 200.0);
  EXPECT_GT(r.max_delta_last, backend_opts(GetParam()).tol);
}

TEST_P(CosimRunaway, StablePlanWithSameOptionsDoesNotFlag) {
  // The detector must not fire on a healthy floorplan solved with the very
  // same options — runaway is a property of the physics, not of the limit.
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  const auto fp = floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  ElectroThermalSolver solver(tech(), fp, backend_opts(GetParam()));
  const auto r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.runaway);
}

TEST_P(CosimRunaway, TighterLimitFlagsEarlier) {
  auto loose = backend_opts(GetParam());
  auto tight = backend_opts(GetParam());
  loose.runaway_rise_limit = 350.0;
  tight.runaway_rise_limit = 100.0;
  ElectroThermalSolver a(tech(), unstable_plan(), loose);
  ElectroThermalSolver b(tech(), unstable_plan(), tight);
  const auto ra = a.solve();
  const auto rb = b.solve();
  EXPECT_TRUE(ra.runaway);
  EXPECT_TRUE(rb.runaway);
  EXPECT_LE(rb.iterations, ra.iterations);
}

INSTANTIATE_TEST_SUITE_P(Backends, CosimRunaway,
                         ::testing::Values(ThermalBackend::Analytic,
                                           ThermalBackend::Fdm),
                         [](const ::testing::TestParamInfo<ThermalBackend>& info) {
                           return info.param == ThermalBackend::Analytic ? "Analytic"
                                                                         : "Fdm";
                         });

TEST(CosimRunaway2, DivergenceBelowHardLimitIsStillCaught) {
  // Even with the hard rise limit parked far away, a monotonically growing
  // Picard update is divergence and must be reported as runaway instead of
  // exhausting max_iterations and returning converged == false ambiguously.
  auto opts = backend_opts(ThermalBackend::Analytic);
  opts.runaway_rise_limit = 1e6;
  opts.max_iterations = 2000;
  ElectroThermalSolver solver(tech(), unstable_plan(), opts);
  const auto r = solver.solve();
  EXPECT_TRUE(r.runaway);
  EXPECT_FALSE(r.converged);
  EXPECT_LT(r.iterations, opts.max_iterations);
}

}  // namespace
}  // namespace ptherm::core
