// Generator-invariant tests across the whole floorplan-generator family
// (uniform grid, hotspot map, checkerboard, three-block IC, manycore):
// power budgets, die/margin containment, overlap freedom, bitwise
// determinism per seed, config validation, and the varied-technology
// regression for the removed name-keyed cell-library cache.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "floorplan/generators.hpp"
#include "netlist/cells.hpp"

namespace ptherm::floorplan {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_2mm() {
  thermal::Die d;
  d.width = 2e-3;
  d.height = 2e-3;
  return d;
}

struct NamedGenerator {
  std::string name;
  std::function<Floorplan(const GeneratorConfig&, Rng&)> make;
  bool respects_margin = true;
};

std::vector<NamedGenerator> generator_family() {
  const auto t = tech();
  const auto die = die_2mm();
  return {
      {"uniform_grid",
       [t, die](const GeneratorConfig& cfg, Rng& rng) {
         return make_uniform_grid(t, die, 4, 3, cfg, rng);
       }},
      {"hotspot_map",
       [t, die](const GeneratorConfig& cfg, Rng& rng) {
         return make_hotspot_map(t, die, 5, 0.4, cfg, rng);
       }},
      {"checkerboard",
       [t, die](const GeneratorConfig& cfg, Rng& rng) {
         return make_checkerboard(t, die, 5, 4, cfg, rng);
       }},
      {"manycore",
       [t, die](const GeneratorConfig& cfg, Rng& rng) {
         return make_manycore(t, die, 3, 3, cfg, rng);
       }},
      // Fig. 6 ignores cfg (fixed powers/seed) and places blocks flush with
      // the paper's layout, not a margin rule.
      {"three_block",
       [t, die](const GeneratorConfig& cfg, Rng&) {
         return make_three_block_ic(t, die, 0.4 * cfg.total_dynamic_power,
                                    0.35 * cfg.total_dynamic_power,
                                    0.25 * cfg.total_dynamic_power);
       },
       /*respects_margin=*/false},
  };
}

TEST(GeneratorInvariants, DynamicPowerMatchesBudget) {
  for (const auto& gen : generator_family()) {
    Rng rng(11);
    GeneratorConfig cfg;
    cfg.total_dynamic_power = 7.5;
    const auto fp = gen.make(cfg, rng);
    EXPECT_NEAR(fp.total_dynamic_power(), 7.5, 1e-9) << gen.name;
  }
}

TEST(GeneratorInvariants, BlocksInsideDieAndMargin) {
  const auto die = die_2mm();
  for (const auto& gen : generator_family()) {
    Rng rng(13);
    GeneratorConfig cfg;
    cfg.margin_fraction = 0.08;
    const auto fp = gen.make(cfg, rng);
    const double mx = gen.respects_margin ? die.width * cfg.margin_fraction : 0.0;
    const double my = gen.respects_margin ? die.height * cfg.margin_fraction : 0.0;
    for (const auto& b : fp.blocks()) {
      EXPECT_GE(b.rect.x, mx - 1e-12) << gen.name << " " << b.name;
      EXPECT_GE(b.rect.y, my - 1e-12) << gen.name << " " << b.name;
      EXPECT_LE(b.rect.x + b.rect.w, die.width - mx + 1e-12) << gen.name << " " << b.name;
      EXPECT_LE(b.rect.y + b.rect.h, die.height - my + 1e-12) << gen.name << " " << b.name;
    }
  }
}

TEST(GeneratorInvariants, NoBlockOverlaps) {
  // Floorplan::add_block rejects overlaps, so generation succeeding is most
  // of the proof; re-check pairwise anyway so a future containment change
  // cannot silently relax it.
  for (const auto& gen : generator_family()) {
    Rng rng(17);
    const auto fp = gen.make({}, rng);
    const auto& blocks = fp.blocks();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      for (std::size_t j = i + 1; j < blocks.size(); ++j) {
        EXPECT_FALSE(blocks[i].rect.overlaps(blocks[j].rect))
            << gen.name << ": " << blocks[i].name << " vs " << blocks[j].name;
      }
    }
  }
}

TEST(GeneratorInvariants, BitwiseDeterministicPerSeed) {
  for (const auto& gen : generator_family()) {
    Rng r1(42), r2(42);
    const auto a = gen.make({}, r1);
    const auto b = gen.make({}, r2);
    ASSERT_EQ(a.blocks().size(), b.blocks().size()) << gen.name;
    for (std::size_t i = 0; i < a.blocks().size(); ++i) {
      const auto& ba = a.blocks()[i];
      const auto& bb = b.blocks()[i];
      EXPECT_EQ(ba.name, bb.name) << gen.name;
      EXPECT_EQ(ba.rect.x, bb.rect.x) << gen.name << " " << ba.name;
      EXPECT_EQ(ba.rect.y, bb.rect.y) << gen.name << " " << ba.name;
      EXPECT_EQ(ba.rect.w, bb.rect.w) << gen.name << " " << ba.name;
      EXPECT_EQ(ba.rect.h, bb.rect.h) << gen.name << " " << ba.name;
      EXPECT_EQ(ba.p_dynamic, bb.p_dynamic) << gen.name << " " << ba.name;
      ASSERT_EQ(ba.gate_groups.size(), bb.gate_groups.size()) << gen.name;
      for (std::size_t g = 0; g < ba.gate_groups.size(); ++g) {
        EXPECT_EQ(ba.gate_groups[g].inputs, bb.gate_groups[g].inputs) << gen.name;
        EXPECT_EQ(ba.gate_groups[g].count, bb.gate_groups[g].count) << gen.name;
      }
    }
  }
}

TEST(GeneratorInvariants, DifferentSeedsChangeTheManycorePowerMix) {
  Rng r1(1), r2(2);
  const auto a = make_manycore(tech(), die_2mm(), 3, 3, {}, r1);
  const auto b = make_manycore(tech(), die_2mm(), 3, 3, {}, r2);
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    if (a.blocks()[i].p_dynamic != b.blocks()[i].p_dynamic) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(GeneratorInvariants, ManycoreTileAnatomy) {
  Rng rng(5);
  const auto fp = make_manycore(tech(), die_2mm(), 3, 3, {}, rng);
  ASSERT_EQ(fp.blocks().size(), 36u);  // 4 blocks per tile
  int cores = 0, l2 = 0, dirs = 0, routers = 0;
  double core_power = 0.0, router_power = 0.0;
  for (const auto& b : fp.blocks()) {
    EXPECT_FALSE(b.gate_groups.empty()) << b.name;
    if (b.name.rfind("core_", 0) == 0) {
      ++cores;
      core_power += b.p_dynamic;
    } else if (b.name.rfind("l2_", 0) == 0) {
      ++l2;
    } else if (b.name.rfind("dir_", 0) == 0) {
      ++dirs;
    } else if (b.name.rfind("router_", 0) == 0) {
      ++routers;
      router_power += b.p_dynamic;
    }
  }
  EXPECT_EQ(cores, 9);
  EXPECT_EQ(l2, 9);
  EXPECT_EQ(dirs, 9);
  EXPECT_EQ(routers, 9);
  EXPECT_GT(core_power, router_power);  // core-dominated mix
}

TEST(GeneratorInvariants, HotspotPlacementIsCappedNotExhausted) {
  // The old rejection sampler exhausted 10000 attempts and threw for modest
  // counts; the deterministic slots must take every count up to 16 and
  // reject 17 with a clear precondition, not an attempts-exhausted failure.
  GeneratorConfig cfg;
  {
    Rng rng(3);
    const auto fp = make_hotspot_map(tech(), die_2mm(), 16, 0.5, cfg, rng);
    int hot = 0;
    for (const auto& b : fp.blocks()) {
      if (b.name.rfind("hotspot_", 0) == 0) ++hot;
    }
    EXPECT_EQ(hot, 16);
    EXPECT_NEAR(fp.total_dynamic_power(), cfg.total_dynamic_power, 1e-9);
  }
  Rng rng(3);
  EXPECT_THROW(make_hotspot_map(tech(), die_2mm(), 17, 0.5, cfg, rng), PreconditionError);
}

TEST(GeneratorInvariants, ValidateRejectsBadConfigsAtEveryEntryPoint) {
  GeneratorConfig negative_power;
  negative_power.total_dynamic_power = -1.0;
  GeneratorConfig negative_density;
  negative_density.gates_per_mm2 = -10.0;
  GeneratorConfig wide_margin;
  wide_margin.margin_fraction = 0.5;
  for (const GeneratorConfig& bad : {negative_power, negative_density, wide_margin}) {
    EXPECT_THROW(validate(bad), PreconditionError);
    Rng rng(1);
    EXPECT_THROW(make_uniform_grid(tech(), die_2mm(), 2, 2, bad, rng), PreconditionError);
    EXPECT_THROW(make_hotspot_map(tech(), die_2mm(), 2, 0.5, bad, rng), PreconditionError);
    EXPECT_THROW(make_checkerboard(tech(), die_2mm(), 2, 2, bad, rng), PreconditionError);
    EXPECT_THROW(make_manycore(tech(), die_2mm(), 2, 2, bad, rng), PreconditionError);
  }
}

TEST(GeneratorInvariants, SameNameDifferentTechnologyGetsItsOwnLibrary) {
  // Regression for the thread_local cell-library cache keyed on tech.name:
  // a Monte Carlo variant shares the name but not the parameters, and must
  // characterize its own library — its leakage must track ITS i0, not the
  // first caller's.
  const Technology nominal = tech();
  Technology variant = nominal;  // same name by construction
  variant.i0_n *= 10.0;
  variant.i0_p *= 10.0;
  ASSERT_EQ(nominal.name, variant.name);

  GeneratorConfig cfg;
  Rng r1(9), r2(9);
  const auto fp_nominal = make_uniform_grid(nominal, die_2mm(), 2, 2, cfg, r1);
  const auto fp_variant = make_uniform_grid(variant, die_2mm(), 2, 2, cfg, r2);
  const double leak_nominal = fp_nominal.blocks()[0].leakage_power(nominal, 350.0);
  const double leak_variant = fp_variant.blocks()[0].leakage_power(variant, 350.0);
  EXPECT_GT(leak_nominal, 0.0);
  // With the stale cache both floorplans carried the nominal library and the
  // ratio collapsed toward 1; characterized correctly it scales with i0.
  EXPECT_GT(leak_variant / leak_nominal, 5.0);
}

TEST(GeneratorInvariants, CallerProvidedLibraryIsUsed) {
  GeneratorConfig cfg;
  cfg.library = std::make_shared<const netlist::CellLibrary>(tech());
  Rng rng(15);
  const auto fp = make_uniform_grid(tech(), die_2mm(), 2, 2, cfg, rng);
  for (const auto& b : fp.blocks()) {
    for (const auto& g : b.gate_groups) {
      EXPECT_EQ(g.gate, cfg.library->find(g.gate->name));
    }
  }
}

}  // namespace
}  // namespace ptherm::floorplan
