// Runtime-thermal-management tests: sensor imperfection models, V/f
// actuation (dynamic V^2 f scaling and voltage-dependent leakage), the
// shipped policies, bitwise run determinism, the epoch cost counters, and
// the closed-loop policy matrix — on both transient-capable backends the
// uncontrolled run must exceed the temperature cap while threshold and PID
// throttling keep the die under it with the leakage-temperature feedback
// live.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "floorplan/generators.hpp"
#include "rtm/actuator.hpp"
#include "rtm/policy.hpp"
#include "rtm/sensor.hpp"
#include "rtm/simulator.hpp"
#include "rtm/trace.hpp"

namespace ptherm::rtm {
namespace {

using core::ThermalBackend;

device::Technology tech() { return device::Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 328.15;  // 55 C
  return d;
}

floorplan::Floorplan quad_plan(double p_total) {
  Rng rng(99);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = p_total;
  cfg.gates_per_mm2 = 3e5;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

VfLadder test_ladder() { return VfLadder::uniform(tech().vdd, 2e9, 4, 0.8, 0.45); }

// ------------------------------------------------------------------ sensor

TEST(SensorBank, IdealSensorIsTheIdentity) {
  SensorBank sensors(3);
  const std::vector<double> temps = {330.0, 345.5, 351.25};
  const auto sensed = sensors.sample(temps);
  ASSERT_EQ(sensed.size(), temps.size());
  for (std::size_t i = 0; i < temps.size(); ++i) EXPECT_DOUBLE_EQ(sensed[i], temps[i]);
}

TEST(SensorBank, QuantizationSnapsToTheAnchorGrid) {
  SensorOptions opts;
  opts.quantization = 0.5;
  opts.t_anchor = 300.0;
  SensorBank sensors(2, opts);
  const std::vector<double> temps = {300.20, 301.80};
  const auto sensed = sensors.sample(temps);
  EXPECT_DOUBLE_EQ(sensed[0], 300.0);
  EXPECT_DOUBLE_EQ(sensed[1], 302.0);
}

TEST(SensorBank, LatencyDelaysReadingsByWholeEpochs) {
  SensorOptions opts;
  opts.latency = 2;
  SensorBank sensors(1, opts);
  const auto read = [&](double t) {
    const std::vector<double> temps = {t};
    return sensors.sample(temps)[0];
  };
  EXPECT_DOUBLE_EQ(read(310.0), 310.0);  // no history yet: oldest available
  EXPECT_DOUBLE_EQ(read(320.0), 310.0);
  EXPECT_DOUBLE_EQ(read(330.0), 310.0);  // ring full: exactly 2 epochs ago
  EXPECT_DOUBLE_EQ(read(340.0), 320.0);
  EXPECT_DOUBLE_EQ(read(350.0), 330.0);
}

TEST(SensorBank, NoiseIsSeedDeterministicAndResetRepeats) {
  SensorOptions opts;
  opts.noise_sigma = 0.8;
  opts.seed = 1234;
  SensorBank a(4, opts);
  SensorBank b(4, opts);
  const std::vector<double> temps = {330.0, 331.0, 332.0, 333.0};
  const auto ra = a.sample(temps);
  std::vector<double> first(ra.begin(), ra.end());
  const auto rb = b.sample(temps);
  for (std::size_t i = 0; i < temps.size(); ++i) {
    EXPECT_EQ(first[i], rb[i]);            // identical streams, bitwise
    EXPECT_NE(first[i], temps[i]);         // but actually noisy
    EXPECT_NEAR(first[i], temps[i], 6.0);  // and sanely scaled (~sigma)
  }
  a.sample(temps);
  a.reset();
  const auto again = a.sample(temps);
  for (std::size_t i = 0; i < temps.size(); ++i) EXPECT_EQ(again[i], first[i]);
}

// ---------------------------------------------------------------- actuator

TEST(VfLadder, ValidatesOrderingAndExposesSpeedFractions) {
  EXPECT_THROW((void)VfLadder({}), PreconditionError);
  EXPECT_THROW((void)VfLadder({{1.2, 2e9}, {1.2, 2e9}}), PreconditionError);  // equal f
  EXPECT_THROW((void)VfLadder({{1.0, 2e9}, {1.2, 1e9}}), PreconditionError);  // V rises
  const auto ladder = VfLadder::uniform(1.2, 2e9, 4, 0.75, 0.4);
  ASSERT_EQ(ladder.level_count(), 4);
  EXPECT_DOUBLE_EQ(ladder.at(0).voltage, 1.2);
  EXPECT_DOUBLE_EQ(ladder.at(0).frequency, 2e9);
  EXPECT_DOUBLE_EQ(ladder.at(3).voltage, 0.9);
  EXPECT_DOUBLE_EQ(ladder.at(3).frequency, 0.8e9);
  const auto speed = ladder.speed_fractions();
  ASSERT_EQ(speed.size(), 4u);
  EXPECT_DOUBLE_EQ(speed.front(), 1.0);
  EXPECT_DOUBLE_EQ(speed.back(), 0.4);
}

TEST(Actuator, DynamicPowerFollowsTheVSquaredFLaw) {
  const auto fp = quad_plan(8.0);
  Actuator actuator(tech(), fp, test_ladder());
  const double p_nom = fp.blocks()[0].p_dynamic;
  EXPECT_DOUBLE_EQ(actuator.dynamic_power(0, 1.0), p_nom);
  EXPECT_DOUBLE_EQ(actuator.dynamic_power(0, 0.3), 0.3 * p_nom);
  for (int l = 0; l < actuator.ladder().level_count(); ++l) {
    const auto& op = actuator.ladder().at(l);
    const double v_ratio = op.voltage / actuator.ladder().at(0).voltage;
    const double f_ratio = op.frequency / actuator.ladder().at(0).frequency;
    // The scale comes out of power::transient_power, which is alpha f C V^2
    // exactly, so the match is to rounding.
    EXPECT_NEAR(actuator.dynamic_scale(l), v_ratio * v_ratio * f_ratio, 1e-12);
  }
  ASSERT_TRUE(actuator.set_level(0, 3));
  EXPECT_DOUBLE_EQ(actuator.dynamic_power(0, 1.0), p_nom * actuator.dynamic_scale(3));
  EXPECT_DOUBLE_EQ(actuator.throughput_scale(0), 0.45);
}

TEST(Actuator, LeakageDropsWithSupplyVoltageAndGrowsWithTemperature) {
  const auto fp = quad_plan(8.0);
  Actuator actuator(tech(), fp, test_ladder());
  const double hot = 380.0;
  const double nominal = actuator.leakage_power(0, hot);
  EXPECT_GT(nominal, 0.0);
  // Throttled: lower VDD means less DIBL and a smaller output swing, so the
  // same silicon leaks measurably less — the feedback the RTM loop keeps.
  actuator.set_level(0, 3);
  const double throttled = actuator.leakage_power(0, hot);
  EXPECT_LT(throttled, 0.8 * nominal);
  // And leakage is exponential-ish in temperature at any level.
  EXPECT_GT(actuator.leakage_power(0, hot), 2.0 * actuator.leakage_power(0, 340.0));
}

TEST(Actuator, LeakageTableTracksTheExactEvaluation) {
  const auto fp = quad_plan(8.0);
  Actuator exact(tech(), fp, test_ladder());
  ActuatorOptions opts;
  opts.leakage_table_points = 96;
  opts.table_t_min = 300.0;
  opts.table_t_max = 460.0;
  Actuator tabled(tech(), fp, test_ladder(), opts);
  for (int l = 0; l < 4; ++l) {
    exact.set_level(1, l);
    tabled.set_level(1, l);
    for (double temp : {305.0, 333.3, 381.7, 444.4}) {
      const double want = exact.leakage_power(1, temp);
      EXPECT_NEAR(tabled.leakage_power(1, temp), want, 5e-3 * want)
          << "level " << l << " T " << temp;
    }
  }
  // Out-of-window queries clamp instead of extrapolating.
  tabled.set_level(1, 0);
  exact.set_level(1, 0);
  EXPECT_DOUBLE_EQ(tabled.leakage_power(1, 500.0), tabled.leakage_power(1, 460.0));
  // A biased query bypasses the (vb = 0) table.
  EXPECT_DOUBLE_EQ(tabled.leakage_power(1, 350.0, -0.2), exact.leakage_power(1, 350.0, -0.2));
}

TEST(Actuator, SetLevelClampsAndReportsChanges) {
  const auto fp = quad_plan(8.0);
  Actuator actuator(tech(), fp, test_ladder());
  EXPECT_FALSE(actuator.set_level(0, 0));    // already there
  EXPECT_TRUE(actuator.set_level(0, 99));    // clamped to the slowest level
  EXPECT_EQ(actuator.level(0), 3);
  EXPECT_FALSE(actuator.set_level(0, 7));    // clamps to the same level: no-op
  EXPECT_TRUE(actuator.set_level(0, -5));    // clamped back to fastest
  EXPECT_EQ(actuator.level(0), 0);
  actuator.set_level(1, 2);
  actuator.reset();
  EXPECT_EQ(actuator.level(1), 0);
}

// ---------------------------------------------------------------- policies

PolicyContext test_context(int levels = 4) {
  PolicyContext ctx;
  ctx.temperature_cap = 368.15;  // 95 C
  ctx.t_sink = 328.15;
  ctx.epoch_duration = 1e-3;
  ctx.level_count = levels;
  ctx.level_speed.resize(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    ctx.level_speed[static_cast<std::size_t>(l)] =
        1.0 - 0.6 * static_cast<double>(l) / (levels - 1);
  }
  return ctx;
}

TEST(ThresholdPolicy, ThrottlesAboveTriggerAndReleasesBelowHysteresis) {
  ThresholdPolicyOptions opts;
  opts.trigger_margin = 5.0;
  opts.release_margin = 15.0;
  ThresholdPolicy policy(opts);
  policy.reset(test_context(), 3);
  std::vector<int> levels = {0, 1, 1};
  // cap 368.15: trigger at 363.15, release at 353.15.
  const std::vector<double> temps = {364.0, 358.0, 350.0};
  const std::vector<double> activity = {1.0, 1.0, 1.0};
  PolicyInput in;
  in.temps = temps;
  in.activity = activity;
  policy.control(in, levels);
  EXPECT_EQ(levels[0], 1);  // hot: one step slower
  EXPECT_EQ(levels[1], 1);  // inside the hysteresis band: hold
  EXPECT_EQ(levels[2], 0);  // cool: one step faster
}

TEST(ThresholdPolicy, RejectsAnEmptyHysteresisBand) {
  ThresholdPolicyOptions opts;
  opts.trigger_margin = 5.0;
  opts.release_margin = 5.0;
  EXPECT_THROW((void)ThresholdPolicy(opts), PreconditionError);
}

TEST(PidPolicy, RunsFastWithHeadroomAndThrottlesWhenHot) {
  PidPolicy policy;
  policy.reset(test_context(), 2);
  std::vector<int> levels = {0, 0};
  const std::vector<double> activity = {1.0, 1.0};
  // Block 0 far below the setpoint, block 1 far above the cap.
  const std::vector<double> temps = {330.0, 390.0};
  PolicyInput in;
  in.temps = temps;
  in.activity = activity;
  policy.control(in, levels);
  EXPECT_EQ(levels[0], 0);  // full speed
  EXPECT_GT(levels[1], 0);  // throttled
  // Sustained overheat integrates toward the slowest level.
  for (int epoch = 0; epoch < 50; ++epoch) {
    in.epoch = epoch + 1;
    policy.control(in, levels);
  }
  EXPECT_EQ(levels[1], 3);
  // And a long cool-down winds the integral back up to full speed.
  const std::vector<double> cool = {330.0, 330.0};
  in.temps = cool;
  for (int epoch = 0; epoch < 200; ++epoch) {
    in.epoch = epoch + 51;
    policy.control(in, levels);
  }
  EXPECT_EQ(levels[1], 0);
}

TEST(Policy, ResetValidatesTheContext) {
  NoopPolicy policy;
  PolicyContext bad = test_context();
  bad.temperature_cap = bad.t_sink;  // cap at the sink: nothing to regulate
  EXPECT_THROW(policy.reset(bad, 4), PreconditionError);
  PolicyContext mismatched = test_context();
  mismatched.level_speed.pop_back();
  EXPECT_THROW(policy.reset(mismatched, 4), PreconditionError);
}

// ------------------------------------------------------------- closed loop

struct RtmSetup {
  floorplan::Floorplan fp;
  WorkloadTrace trace;
  RtmOptions opts;
};

/// Sustained near-full activity on a 2x2 array, sized so the uncontrolled
/// die settles above the cap while the ladder floor sits well below it.
RtmSetup regulation_setup(ThermalBackend backend) {
  RtmSetup s{quad_plan(18.0), WorkloadTrace(4, 1e-3), {}};
  BurstPattern pat;
  pat.period = 8e-3;
  pat.duty = 1.0;  // always on: the sustained-overload scenario
  pat.high = 1.0;
  s.trace = make_burst_trace(4, 60, 1e-3, pat);  // 60 ms >> the ~0.55 ms tau
  s.opts.backend = backend;
  s.opts.dt = 1e-4;
  s.opts.steps_per_epoch = 2;  // 0.2 ms control period
  s.opts.temperature_cap = 368.15;  // 95 C
  s.opts.spectral.modes_x = 32;
  s.opts.spectral.modes_y = 32;
  s.opts.fdm.nx = 16;
  s.opts.fdm.ny = 16;
  s.opts.fdm.nz = 8;
  s.opts.record_every = 10;
  return s;
}

class RtmBackendMatrix : public ::testing::TestWithParam<ThermalBackend> {};

TEST_P(RtmBackendMatrix, PolicyMatrixRegulatesUnderTheCap) {
  const auto setup = regulation_setup(GetParam());
  const double cap = setup.opts.temperature_cap;

  NoopPolicy noop;
  Actuator a_noop(tech(), setup.fp, test_ladder());
  const auto r_noop = run_rtm(tech(), setup.fp, setup.trace, noop, a_noop, setup.opts);

  ThresholdPolicyOptions thr_opts;
  thr_opts.trigger_margin = 6.0;
  thr_opts.release_margin = 14.0;
  ThresholdPolicy threshold(thr_opts);
  Actuator a_thr(tech(), setup.fp, test_ladder());
  const auto r_thr = run_rtm(tech(), setup.fp, setup.trace, threshold, a_thr, setup.opts);

  PidPolicyOptions pid_opts;
  pid_opts.setpoint_margin = 8.0;
  PidPolicy pid(pid_opts);
  Actuator a_pid(tech(), setup.fp, test_ladder());
  const auto r_pid = run_rtm(tech(), setup.fp, setup.trace, pid, a_pid, setup.opts);

  // The uncontrolled run overshoots the cap and stays there...
  EXPECT_GT(r_noop.metrics.peak_temperature, cap + 2.0);
  EXPECT_GT(r_noop.metrics.time_over_cap, 0.02);
  EXPECT_DOUBLE_EQ(r_noop.metrics.throughput_fraction, 1.0);
  EXPECT_EQ(r_noop.metrics.interventions, 0);
  // ...while both closed-loop policies keep the die under it, at a
  // throughput cost.
  for (const auto* r : {&r_thr, &r_pid}) {
    EXPECT_LE(r->metrics.peak_temperature, cap);
    EXPECT_DOUBLE_EQ(r->metrics.time_over_cap, 0.0);
    EXPECT_GT(r->metrics.interventions, 0);
    EXPECT_LT(r->metrics.throughput_fraction, 1.0);
    EXPECT_GT(r->metrics.throughput_fraction, 0.3);
    EXPECT_LT(r->metrics.energy, r_noop.metrics.energy);
  }
  // Leakage-temperature feedback is live: the throttled runs spend less
  // energy than the dynamic-power scale alone explains (their leakage fell
  // with both VDD and temperature). Sanity-check the magnitude instead of
  // the mechanism here; the Actuator tests pin the mechanism.
  EXPECT_GT(r_noop.metrics.peak_temperature, r_thr.metrics.peak_temperature + 3.0);
}

TEST_P(RtmBackendMatrix, RunsAreBitwiseDeterministic) {
  auto setup = regulation_setup(GetParam());
  setup.opts.sensor.noise_sigma = 0.4;  // exercise the stochastic path too
  setup.opts.sensor.quantization = 0.25;
  setup.opts.sensor.latency = 1;

  ThresholdPolicy policy_a;
  Actuator actuator_a(tech(), setup.fp, test_ladder());
  const auto a = run_rtm(tech(), setup.fp, setup.trace, policy_a, actuator_a, setup.opts);
  ThresholdPolicy policy_b;
  Actuator actuator_b(tech(), setup.fp, test_ladder());
  const auto b = run_rtm(tech(), setup.fp, setup.trace, policy_b, actuator_b, setup.opts);

  EXPECT_EQ(a.metrics.peak_temperature, b.metrics.peak_temperature);
  EXPECT_EQ(a.metrics.avg_temperature, b.metrics.avg_temperature);
  EXPECT_EQ(a.metrics.time_over_cap, b.metrics.time_over_cap);
  EXPECT_EQ(a.metrics.energy, b.metrics.energy);
  EXPECT_EQ(a.metrics.work_requested, b.metrics.work_requested);
  EXPECT_EQ(a.metrics.work_delivered, b.metrics.work_delivered);
  EXPECT_EQ(a.metrics.interventions, b.metrics.interventions);
  EXPECT_EQ(a.metrics.epochs, b.metrics.epochs);
  EXPECT_EQ(a.metrics.steps, b.metrics.steps);
  ASSERT_EQ(a.final_temps.size(), b.final_temps.size());
  for (std::size_t i = 0; i < a.final_temps.size(); ++i) {
    EXPECT_EQ(a.final_temps[i], b.final_temps[i]);
  }
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t k = 0; k < a.times.size(); ++k) {
    EXPECT_EQ(a.peak_temps[k], b.peak_temps[k]);
    EXPECT_EQ(a.total_power[k], b.total_power[k]);
  }
  // And the same seed with a different policy object of the same kind is
  // the point: determinism comes from (trace, policy, seed), not object
  // identity. A different seed must actually change the noisy run.
  auto other = setup;
  other.opts.sensor.seed = setup.opts.sensor.seed + 1;
  ThresholdPolicy policy_c;
  Actuator actuator_c(tech(), setup.fp, test_ladder());
  const auto c = run_rtm(tech(), setup.fp, setup.trace, policy_c, actuator_c, other.opts);
  EXPECT_NE(a.metrics.avg_temperature, c.metrics.avg_temperature);
}

TEST_P(RtmBackendMatrix, EpochCountersExposeTheCheapInteriorSteps) {
  auto setup = regulation_setup(GetParam());
  setup.opts.steps_per_epoch = 5;
  // Activity moves every control epoch (trace sampled at the epoch period),
  // so the backend must ingest new powers exactly once per epoch — and
  // never on the 4 interior steps of each epoch.
  RandomWalkPattern pat;
  Rng rng(5);
  const double epoch_dt = setup.opts.dt * setup.opts.steps_per_epoch;
  setup.trace = make_random_walk_trace(4, 60, epoch_dt, pat, rng);
  NoopPolicy noop;
  Actuator actuator(tech(), setup.fp, test_ladder());
  const auto r = run_rtm(tech(), setup.fp, setup.trace, noop, actuator, setup.opts);
  const auto& stats = r.metrics.backend_stats;
  EXPECT_EQ(r.metrics.epochs, 60);
  EXPECT_EQ(r.metrics.steps, r.metrics.epochs * setup.opts.steps_per_epoch);
  EXPECT_EQ(stats.transient_steps, r.metrics.steps);
  EXPECT_EQ(stats.transient_power_updates, r.metrics.epochs);
}

INSTANTIATE_TEST_SUITE_P(TransientBackends, RtmBackendMatrix,
                         ::testing::Values(ThermalBackend::Fdm, ThermalBackend::Spectral),
                         [](const ::testing::TestParamInfo<ThermalBackend>& info) {
                           return info.param == ThermalBackend::Fdm ? "Fdm" : "Spectral";
                         });

TEST(RunRtm, ValidatesItsContracts) {
  const auto fp = quad_plan(8.0);
  NoopPolicy noop;
  Actuator actuator(tech(), fp, test_ladder());
  BurstPattern pat;
  const auto trace = make_burst_trace(4, 10, 1e-3, pat);
  RtmOptions opts;
  opts.temperature_cap = 368.15;

  RtmOptions bad_cap = opts;
  bad_cap.temperature_cap = die_1mm().t_sink;  // cap at the sink
  EXPECT_THROW((void)run_rtm(tech(), fp, trace, noop, actuator, bad_cap), PreconditionError);

  const auto narrow = make_burst_trace(3, 10, 1e-3, pat);  // wrong block count
  EXPECT_THROW((void)run_rtm(tech(), fp, narrow, noop, actuator, opts), PreconditionError);

  RtmOptions steady_only = opts;
  steady_only.backend = ThermalBackend::Analytic;  // cannot integrate in time
  EXPECT_THROW((void)run_rtm(tech(), fp, trace, noop, actuator, steady_only),
               PreconditionError);
}

}  // namespace
}  // namespace ptherm::rtm
