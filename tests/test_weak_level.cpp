// Tests for the weak-level extension: when ON pass transistors separate the
// blocking (OFF) element from the driven output, the blocker sees a degraded
// drain level. The correction must reproduce the transistor-level (MNA)
// solution that the paper's "internal short" assumption misses by ~40%.
#include <gtest/gtest.h>

#include <cmath>

#include "device/mosfet.hpp"
#include "leakage/gate.hpp"
#include "netlist/cells.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::leakage {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

constexpr GateEvalOptions kCorrected{true};

TEST(OffReduction, FlagsOnAboveOff) {
  const double w = 0.5e-6;
  // Series rail->output: OFF at the rail, ON above it.
  const auto net = SpNetwork::series({SpNetwork::device(0, w), SpNetwork::device(1, w)});
  const auto r = net.off_reduction(tech(), MosType::Nmos, {false, true}, 300.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->degraded_drain);
  EXPECT_DOUBLE_EQ(r->pass_width, w);
  EXPECT_DOUBLE_EQ(r->w_eff, w);
}

TEST(OffReduction, NoFlagWhenOffIsOnTop) {
  const double w = 0.5e-6;
  const auto net = SpNetwork::series({SpNetwork::device(0, w), SpNetwork::device(1, w)});
  // ON at the rail, OFF on top: the blocker touches the output directly.
  const auto r = net.off_reduction(tech(), MosType::Nmos, {true, false}, 300.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->degraded_drain);
}

TEST(OffReduction, OnBetweenTwoOffIsInternal) {
  const double w = 0.5e-6;
  const auto net = SpNetwork::series({SpNetwork::device(0, w), SpNetwork::device(1, w),
                                      SpNetwork::device(2, w)});
  // OFF, ON, OFF: the ON device is an internal short; the top OFF touches
  // the output, so no degradation.
  const auto r = net.off_reduction(tech(), MosType::Nmos, {false, true, false}, 300.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->degraded_drain);
}

TEST(OffReduction, SeriesOnPassTakesWeakestLink) {
  const double w = 0.5e-6;
  const auto net = SpNetwork::series({SpNetwork::device(0, w),
                                      SpNetwork::device(1, 4.0 * w),
                                      SpNetwork::device(2, 2.0 * w)});
  const auto r = net.off_reduction(tech(), MosType::Nmos, {false, true, true}, 300.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->degraded_drain);
  EXPECT_DOUBLE_EQ(r->pass_width, 2.0 * w);
}

TEST(OnWidth, ParallelAddsSeriesWeakens) {
  const double w = 0.5e-6;
  const auto par = SpNetwork::parallel({SpNetwork::device(0, w), SpNetwork::device(1, w)});
  EXPECT_DOUBLE_EQ(par.on_width(MosType::Nmos, {true, true}), 2.0 * w);
  EXPECT_DOUBLE_EQ(par.on_width(MosType::Nmos, {true, false}), w);
  const auto ser = SpNetwork::series({SpNetwork::device(0, w), SpNetwork::device(1, 3 * w)});
  EXPECT_DOUBLE_EQ(ser.on_width(MosType::Nmos, {true, true}), w);
}

/// MNA reference for the NAND2 "weak-one" vector (a = 0, b = 1).
double nand2_weak_one_spice(double temp) {
  const Technology t = tech();
  const auto sizing = netlist::CellSizing::for_tech(t);
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto nb = ckt.node("b");
  const auto out = ckt.node("out");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_vsource("VB", nb, spice::Circuit::ground(), t.vdd);
  const double wn = 2.0 * sizing.wn_unit;
  ckt.add_mosfet("MNA", mid, spice::Circuit::ground(), spice::Circuit::ground(),
                 spice::Circuit::ground(), MosModel(t, MosType::Nmos, wn, sizing.length));
  ckt.add_mosfet("MNB", out, nb, mid, spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, sizing.length));
  ckt.add_mosfet("MPA", out, spice::Circuit::ground(), vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  ckt.add_mosfet("MPB", out, nb, vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  spice::DcOptions opts;
  opts.temp = temp;
  return -spice::solve_dc(ckt, opts).vsource_currents.at("VDD");
}

TEST(WeakLevel, CorrectionReproducesMnaOnNand2) {
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand2");
  const InputVector weak_one{false, true};
  for (double temp : {300.0, 350.0, 400.0}) {
    const double i_spice = nand2_weak_one_spice(temp);
    const double i_plain = gate_static(tech(), *cell, weak_one, temp).i_off;
    const auto corrected = gate_static(tech(), *cell, weak_one, temp, 0.0, kCorrected);
    // The paper's assumption overestimates by tens of percent...
    EXPECT_GT(i_plain / i_spice, 1.2) << "T = " << temp;
    // ...the correction lands within a few percent.
    EXPECT_NEAR(corrected.i_off / i_spice, 1.0, 0.05) << "T = " << temp;
    EXPECT_TRUE(corrected.weak_level);
    EXPECT_LT(corrected.vds_eff, tech().vdd);
  }
}

TEST(WeakLevel, NoEffectOnUndegradedVectors) {
  const netlist::CellLibrary lib(tech());
  const auto cell = lib.find("nand2");
  for (const InputVector& v :
       {InputVector{false, false}, InputVector{true, false}, InputVector{true, true}}) {
    const auto plain = gate_static(tech(), *cell, v, 320.0);
    const auto corrected = gate_static(tech(), *cell, v, 320.0, 0.0, kCorrected);
    EXPECT_DOUBLE_EQ(plain.i_off, corrected.i_off);
    EXPECT_FALSE(corrected.weak_level);
  }
}

TEST(WeakLevel, CorrectedCurrentIsAlwaysLower) {
  // The degraded drain can only reduce DIBL, never add current.
  const netlist::CellLibrary lib(tech());
  for (const char* name : {"nand2", "nand3", "nand4", "nor3", "aoi21", "oai22"}) {
    const auto cell = lib.find(name);
    const int k = cell->input_count();
    for (unsigned v = 0; v < (1u << k); ++v) {
      const auto inputs = vector_from_index(v, k);
      const auto plain = gate_static(tech(), *cell, inputs, 330.0);
      const auto corrected = gate_static(tech(), *cell, inputs, 330.0, 0.0, kCorrected);
      EXPECT_LE(corrected.i_off, plain.i_off * (1.0 + 1e-12)) << name << " v=" << v;
    }
  }
}

TEST(WeakLevel, MidLevelMatchesMnaNode) {
  // The corrected vds_eff is a physical prediction: compare it with the MNA
  // mid-node voltage directly.
  const Technology t = tech();
  const auto sizing = netlist::CellSizing::for_tech(t);
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto nb = ckt.node("b");
  const auto out = ckt.node("out");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  ckt.add_vsource("VB", nb, spice::Circuit::ground(), t.vdd);
  const double wn = 2.0 * sizing.wn_unit;
  ckt.add_mosfet("MNA", mid, spice::Circuit::ground(), spice::Circuit::ground(),
                 spice::Circuit::ground(), MosModel(t, MosType::Nmos, wn, sizing.length));
  ckt.add_mosfet("MNB", out, nb, mid, spice::Circuit::ground(),
                 MosModel(t, MosType::Nmos, wn, sizing.length));
  ckt.add_mosfet("MPA", out, spice::Circuit::ground(), vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  const auto sol = spice::solve_dc(ckt);

  const netlist::CellLibrary lib(t);
  const auto corrected =
      gate_static(t, *lib.find("nand2"), {false, true}, 300.0, 0.0, kCorrected);
  EXPECT_NEAR(corrected.vds_eff, sol.voltage(mid), 0.02);
}


// Sweep: the weak-one vector of every NAND depth vs a transistor-level
// solve. Input 0 (bottom device) low, all others high: the blocking device
// sits at the stack bottom with N-1 ON pass devices above it.
class NandWeakOneSweep : public ::testing::TestWithParam<int> {};

TEST_P(NandWeakOneSweep, CorrectionTracksMna) {
  const int n = GetParam();
  const Technology t = tech();
  const auto sizing = netlist::CellSizing::for_tech(t);
  const double wn = n * sizing.wn_unit;

  // Transistor-level NAND-n with a=0 at the bottom, all other inputs high.
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, spice::Circuit::ground(), t.vdd);
  spice::NodeId below = spice::Circuit::ground();
  for (int i = 0; i < n; ++i) {
    const auto above = (i + 1 == n) ? out : ckt.node("m" + std::to_string(i));
    const auto gate_node = ckt.node("g" + std::to_string(i));
    ckt.add_vsource("VG" + std::to_string(i), gate_node, spice::Circuit::ground(),
                    i == 0 ? 0.0 : t.vdd);
    ckt.add_mosfet("MN" + std::to_string(i), above, gate_node, below,
                   spice::Circuit::ground(), MosModel(t, MosType::Nmos, wn, sizing.length));
    below = above;
  }
  // One ON pMOS holds the output high (input 0 is low).
  ckt.add_mosfet("MP0", out, ckt.node("g0"), vdd, vdd,
                 MosModel(t, MosType::Pmos, sizing.wp_unit, sizing.length));
  const double i_spice = -spice::solve_dc(ckt).vsource_currents.at("VDD");

  const netlist::CellLibrary lib(t);
  const auto cell = lib.find("nand" + std::to_string(n));
  InputVector inputs(static_cast<std::size_t>(n), true);
  inputs[0] = false;
  const auto plain = gate_static(t, *cell, inputs, 300.0);
  const auto corrected = gate_static(t, *cell, inputs, 300.0, 0.0, kCorrected);
  EXPECT_GT(plain.i_off / i_spice, 1.2) << "plain model should overestimate";
  EXPECT_NEAR(corrected.i_off / i_spice, 1.0, 0.08) << "n = " << n;  // pass-chain body
  // effect accumulates with depth; 6.2% measured at n = 4
}

INSTANTIATE_TEST_SUITE_P(Depths, NandWeakOneSweep, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace ptherm::leakage
