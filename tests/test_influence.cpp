// Tests for the thermal influence operator: dense matvec semantics, batched
// construction equivalence against the seed per-column cold-start builds on
// both backends, reciprocity on symmetric floorplans, and failure reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/influence.hpp"
#include "floorplan/generators.hpp"

namespace ptherm::core {
namespace {

using device::Technology;

Technology tech() { return Technology::cmos012(); }

thermal::Die die_1mm() {
  thermal::Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan grid_plan(int n) {
  Rng rng(7);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  return floorplan::make_uniform_grid(tech(), die_1mm(), n, n, cfg, rng);
}

TEST(Influence, ApplyMatchesManualMatvec) {
  numerics::Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = 1.0 + 3.0 * i + j;
  }
  const InfluenceOperator op(m);
  const std::vector<double> p = {1.0, -2.0, 0.5};
  const auto rises = op.apply(p);
  for (std::size_t i = 0; i < 3; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 3; ++j) expect += m(i, j) * p[j];
    EXPECT_DOUBLE_EQ(rises[i], expect);
    EXPECT_DOUBLE_EQ(op.at(i, 0), m(i, 0));
  }
}

TEST(Influence, AddUniformShiftsEveryEntry) {
  numerics::Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 2.0;
  InfluenceOperator op(m);
  op.add_uniform(0.5);
  EXPECT_DOUBLE_EQ(op.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(op.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(op.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(op.at(1, 1), 2.5);
}

TEST(Influence, RejectsBadShapesAndSizes) {
  EXPECT_THROW(InfluenceOperator(numerics::Matrix(2, 3)), PreconditionError);
  const InfluenceOperator op(numerics::Matrix(2, 2));
  EXPECT_THROW((void)op.at(2, 0), PreconditionError);
  // Both apply overloads enforce the documented size contract themselves
  // (mismatches used to be out-of-bounds UB waiting on the matvec).
  std::vector<double> p3(3, 0.0);
  EXPECT_THROW((void)op.apply(p3), PreconditionError);
  std::vector<double> p2(2, 0.0);
  std::vector<double> out3(3, 0.0);
  std::vector<double> out2(2, 0.0);
  EXPECT_THROW(op.apply(p3, out2), PreconditionError);
  EXPECT_THROW(op.apply(p2, out3), PreconditionError);
  EXPECT_NO_THROW(op.apply(p2, out2));
}

TEST(Influence, AnalyticBatchedMatchesSeedPerColumnBuild) {
  const auto fp = grid_plan(4);
  const auto samples = block_centre_samples(fp);
  auto sources = fp.heat_sources(tech());
  const thermal::ImageOptions opts;
  const auto batched = build_influence_analytic(fp.die(), sources, samples, opts);

  // Seed semantics: one model holding every source, powers toggled per
  // column, every image (including the zero-power ones) swept per sample.
  for (auto& s : sources) s.power = 0.0;
  thermal::ChipThermalModel model(fp.die(), sources, opts);
  const std::size_t n = sources.size();
  ASSERT_EQ(batched.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    model.set_source_power(j, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double seed = model.rise(samples[i].x, samples[i].y);
      EXPECT_NEAR(batched.at(i, j), seed, 1e-12 * seed) << "entry (" << i << ", " << j << ")";
    }
    model.set_source_power(j, 0.0);
  }
}

TEST(Influence, FdmBatchedWarmStartMatchesSeedColdJacobiBuild) {
  const auto fp = grid_plan(4);
  const auto samples = block_centre_samples(fp);
  const auto sources = fp.heat_sources(tech());

  thermal::FdmOptions fast;  // IC(0)-preconditioned by default
  fast.nx = 24;
  fast.ny = 24;
  fast.nz = 12;
  const thermal::FdmThermalSolver solver_ic(fp.die(), fast);
  InfluenceBuildStats stats;
  const auto batched = build_influence_fdm(solver_ic, sources, samples, true, &stats);

  thermal::FdmOptions seed_opts = fast;
  seed_opts.cg.preconditioner = numerics::CgPreconditioner::Jacobi;
  const thermal::FdmThermalSolver solver_jacobi(fp.die(), seed_opts);
  const auto reference = build_influence_fdm(solver_jacobi, sources, samples, false);

  const std::size_t n = sources.size();
  ASSERT_EQ(batched.size(), n);
  EXPECT_EQ(stats.columns, static_cast<int>(n));
  EXPECT_GT(stats.cg_iterations, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(batched.at(i, j), reference.at(i, j), 1e-10 * reference.at(j, j))
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(Influence, ReciprocityOnSymmetricFloorplanAnalytic) {
  // Identical block footprints + an even kernel make R[i][j] = R[j][i] exact
  // for the analytic build (down to floating-point noise).
  const auto fp = grid_plan(3);
  const auto op =
      build_influence_analytic(fp.die(), fp.heat_sources(tech()), block_centre_samples(fp));
  for (std::size_t i = 0; i < op.size(); ++i) {
    for (std::size_t j = i + 1; j < op.size(); ++j) {
      EXPECT_NEAR(op.at(i, j), op.at(j, i), 1e-9 * op.at(i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(Influence, ReciprocityOnSymmetricFloorplanFdm) {
  // The FDM build samples by bilinear interpolation rather than the adjoint
  // functional, so reciprocity holds only to discretization accuracy.
  const auto fp = grid_plan(3);
  thermal::FdmOptions opts;
  opts.nx = 24;
  opts.ny = 24;
  opts.nz = 12;
  const thermal::FdmThermalSolver solver(fp.die(), opts);
  const auto op = build_influence_fdm(solver, fp.heat_sources(tech()), block_centre_samples(fp));
  for (std::size_t i = 0; i < op.size(); ++i) {
    for (std::size_t j = i + 1; j < op.size(); ++j) {
      EXPECT_NEAR(op.at(i, j), op.at(j, i), 0.02 * op.at(i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(Influence, FdmBuildReportsWhyAColumnFailed) {
  const auto fp = grid_plan(2);
  thermal::FdmOptions opts;
  opts.nx = 16;
  opts.ny = 16;
  opts.nz = 8;
  opts.cg.max_iterations = 1;  // no solve can finish in one iteration
  const thermal::FdmThermalSolver solver(fp.die(), opts);
  try {
    (void)build_influence_fdm(solver, fp.heat_sources(tech()), block_centre_samples(fp));
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("column 0"), std::string::npos) << what;
    EXPECT_NE(what.find("iteration limit"), std::string::npos) << what;
    EXPECT_NE(what.find("residual"), std::string::npos) << what;
  }
}

TEST(Influence, BuildersRejectMismatchedSamples) {
  const auto fp = grid_plan(2);
  const auto sources = fp.heat_sources(tech());
  const std::vector<InfluenceSample> too_few = {{0.5e-3, 0.5e-3}};
  EXPECT_THROW((void)build_influence_analytic(fp.die(), sources, too_few), PreconditionError);
  const thermal::FdmThermalSolver solver(fp.die(), {});
  EXPECT_THROW((void)build_influence_fdm(solver, sources, too_few), PreconditionError);
}

}  // namespace
}  // namespace ptherm::core
