// Unit tests for the interpolators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "numerics/interp.hpp"

namespace ptherm::numerics {
namespace {

TEST(LinearInterp, ReproducesKnots) {
  LinearInterpolator li({0.0, 1.0, 2.0}, {5.0, 7.0, 4.0});
  EXPECT_DOUBLE_EQ(li(0.0), 5.0);
  EXPECT_DOUBLE_EQ(li(1.0), 7.0);
  EXPECT_DOUBLE_EQ(li(2.0), 4.0);
}

TEST(LinearInterp, MidpointsAreAverages) {
  LinearInterpolator li({0.0, 1.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(li(0.5), 3.0);
  EXPECT_DOUBLE_EQ(li(0.25), 2.5);
}

TEST(LinearInterp, ClampsOutsideDomain) {
  LinearInterpolator li({0.0, 1.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(li(-5.0), 2.0);
  EXPECT_DOUBLE_EQ(li(9.0), 4.0);
}

TEST(LinearInterp, RejectsBadGrids) {
  EXPECT_THROW(LinearInterpolator({0.0}, {1.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({0.0, 0.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({1.0, 0.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({0.0, 1.0}, {1.0}), PreconditionError);
}

TEST(Pchip, ReproducesKnots) {
  PchipInterpolator pi({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
  for (int i = 0; i <= 3; ++i) EXPECT_NEAR(pi(i), i * i, 1e-12);
}

TEST(Pchip, PreservesMonotonicity) {
  // Data with a sharp step: cubic splines overshoot here, PCHIP must not.
  PchipInterpolator pi({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 0.0, 1.0, 1.0, 1.0});
  double prev = -1e-12;
  for (double x = 0.0; x <= 4.0; x += 0.01) {
    const double y = pi(x);
    EXPECT_GE(y, prev - 1e-12) << "not monotone at x=" << x;
    EXPECT_GE(y, -1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    prev = y;
  }
}

TEST(Pchip, FlatAtLocalExtremum) {
  PchipInterpolator pi({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  // Peak at the middle knot; interpolant must not exceed the data maximum.
  for (double x = 0.0; x <= 2.0; x += 0.01) {
    EXPECT_LE(pi(x), 1.0 + 1e-12);
    EXPECT_GE(pi(x), -1e-12);
  }
}

TEST(Pchip, SmoothFunctionAccuracy) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(std::sin(x));
  }
  PchipInterpolator pi(xs, ys);
  for (double x = 0.0; x <= 2.0; x += 0.013) {
    EXPECT_NEAR(pi(x), std::sin(x), 2e-3);
  }
}

TEST(Pchip, TwoPointFallsBackToLinear) {
  PchipInterpolator pi({0.0, 2.0}, {1.0, 5.0});
  EXPECT_NEAR(pi(1.0), 3.0, 1e-12);
}

}  // namespace
}  // namespace ptherm::numerics
