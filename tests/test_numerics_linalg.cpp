// Unit tests for dense LU and sparse CSR/CG.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "numerics/dense.hpp"
#include "numerics/sparse.hpp"

namespace ptherm::numerics {
namespace {

TEST(Dense, MultiplyMatchesHandComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x = {1.0, 0.0, -1.0};
  const auto y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Dense, LuSolves2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const std::vector<double> b = {5.0, 10.0};
  const auto x = solve_dense(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, LuRequiresPivoting) {
  // Zero on the initial diagonal: fails without partial pivoting.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const std::vector<double> b = {2.0, 3.0};
  const auto x = solve_dense(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Dense, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, Error);
}

TEST(Dense, DeterminantTracksPermutationSign) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  EXPECT_NEAR(LuFactorization(a).determinant(), -1.0, 1e-12);
}

TEST(Dense, RandomSystemResidualIsTiny) {
  Rng rng(5);
  const std::size_t n = 40;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 5.0;  // diagonally dominant, comfortably nonsingular
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solve_dense(a, b);
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Sparse, BuilderSumsDuplicates) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(1, 1, 1.0);
  CsrMatrix m(b);
  EXPECT_EQ(m.nonzeros(), 2u);
  const std::vector<double> x = {1.0, 1.0};
  const auto y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(Sparse, BuilderRejectsOutOfRange) {
  SparseBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), PreconditionError);
}

TEST(Sparse, DiagonalExtraction) {
  SparseBuilder b(3, 3);
  b.add(0, 0, 4.0);
  b.add(1, 2, 7.0);  // off-diagonal only in row 1
  b.add(2, 2, 9.0);
  CsrMatrix m(b);
  const auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 4.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);
}

/// 1-D Poisson matrix (tridiagonal SPD) of size n.
CsrMatrix poisson1d(std::size_t n) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return CsrMatrix(b);
}

TEST(Cg, SolvesPoisson) {
  const std::size_t n = 50;
  const auto a = poisson1d(n);
  std::vector<double> b(n, 1.0);
  const auto r = conjugate_gradient(a, b);
  EXPECT_TRUE(r.converged);
  const auto ax = a.multiply(r.x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-7);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const auto a = poisson1d(10);
  std::vector<double> b(10, 0.0);
  const auto r = conjugate_gradient(a, b);
  EXPECT_TRUE(r.converged);
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, WarmStartReducesIterations) {
  const std::size_t n = 200;
  const auto a = poisson1d(n);
  std::vector<double> b(n, 1.0);
  const auto cold = conjugate_gradient(a, b);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iterations, 5);
  // Warm-starting at the solution must be recognised immediately.
  const auto warm = conjugate_gradient(a, b, {}, cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 1);
}

TEST(Cg, BreakdownIsSignalledWithHonestResidual) {
  // Indefinite matrix with a positive diagonal: [[1, 2], [2, 1]] has
  // eigenvalues 3 and -1, and b = (1, -1) is an eigenvector of the negative
  // eigenvalue, so the very first search direction hits p^T A p < 0.
  SparseBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 2.0);
  builder.add(1, 1, 1.0);
  const CsrMatrix a(builder);
  const std::vector<double> b = {1.0, -1.0};
  const auto r = conjugate_gradient(a, b);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_EQ(r.iterations, 0);
  // x is still the initial iterate (zero), and the reported residual must
  // describe that returned x — not a stale recurrence value.
  for (double v : r.x) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_NEAR(r.residual, 1.0, 1e-12);
}

TEST(Cg, SpdSolveReportsNoBreakdown) {
  const auto a = poisson1d(30);
  const std::vector<double> b(30, 1.0);
  const auto r = conjugate_gradient(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
}

TEST(Cg, IncompleteCholeskyCutsIterationsAndAgreesWithJacobi) {
  // On a tridiagonal matrix IC(0) carries the full lower-triangle pattern,
  // so it is the exact Cholesky factor: PCG must converge almost at once.
  const std::size_t n = 200;
  const auto a = poisson1d(n);
  const std::vector<double> b(n, 1.0);
  const auto jacobi = conjugate_gradient(a, b);
  CgOptions opts;
  opts.preconditioner = CgPreconditioner::IncompleteCholesky;
  const auto ic = conjugate_gradient(a, b, opts);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(ic.converged);
  EXPECT_LE(ic.iterations, 3);
  EXPECT_LT(ic.iterations, jacobi.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ic.x[i], jacobi.x[i], 1e-7);
}

TEST(Cg, PrebuiltIncompleteCholeskyFactorIsReused) {
  const std::size_t n = 100;
  const auto a = poisson1d(n);
  const std::vector<double> b(n, 1.0);
  const IncompleteCholesky factor(a);
  EXPECT_EQ(factor.dimension(), n);
  // Jacobi-default options, explicit prebuilt factor: the factor wins.
  const auto r = conjugate_gradient(a, b, {}, {}, &factor);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 3);
}

TEST(IncompleteCholesky, RejectsMatricesWithoutPositivePivots) {
  // [[1, 2], [2, 1]]: the (1,1) pivot becomes 1 - 2^2 < 0.
  SparseBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 2.0);
  builder.add(1, 1, 1.0);
  EXPECT_THROW(IncompleteCholesky{CsrMatrix(builder)}, PreconditionError);
  // A row with no diagonal entry at all is rejected up front.
  SparseBuilder no_diag(2, 2);
  no_diag.add(0, 0, 1.0);
  no_diag.add(1, 0, 1.0);
  EXPECT_THROW(IncompleteCholesky{CsrMatrix(no_diag)}, PreconditionError);
}

TEST(Cg, RejectsNonPositiveDiagonal) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);
  CsrMatrix m(b);
  const std::vector<double> rhs = {1.0, 1.0};
  EXPECT_THROW(conjugate_gradient(m, rhs), PreconditionError);
}

// Property: CG on random SPD systems (A = L*L^T + diag) matches dense LU.
class CgVsDense : public ::testing::TestWithParam<int> {};

TEST_P(CgVsDense, Agree) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  Matrix dense(n, n, 0.0);
  SparseBuilder sparse(n, n);
  // Symmetric diagonally dominant random matrix.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = (j == i) ? rng.uniform(5.0, 6.0) : rng.uniform(-0.3, 0.3);
      dense(i, j) = v;
      dense(j, i) = v;
      sparse.add(i, j, v);
      if (i != j) sparse.add(j, i, v);
    }
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x_lu = solve_dense(dense, b);
  const auto x_cg = conjugate_gradient(CsrMatrix(sparse), b);
  ASSERT_TRUE(x_cg.converged);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x_cg.x[i], x_lu[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgVsDense, ::testing::Values(2, 5, 13, 31, 64));

}  // namespace
}  // namespace ptherm::numerics
