// Tests for the Eq. (1)/(2) device models and the technology factories.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "device/tech.hpp"

namespace ptherm::device {
namespace {

Technology tech() { return Technology::cmos012(); }

TEST(ThresholdVoltage, ZeroBiasAtReference) {
  // At VDS = VDD, VSB = 0, T = Tref the threshold is exactly VT0 (the DIBL
  // term of Eq. 2 vanishes at full drain bias).
  BiasPoint b;
  b.vds = tech().vdd;
  b.vsb = 0.0;
  b.temp = tech().t_ref;
  EXPECT_DOUBLE_EQ(threshold_voltage(tech(), MosType::Nmos, b), tech().vt0_n);
  EXPECT_DOUBLE_EQ(threshold_voltage(tech(), MosType::Pmos, b), tech().vt0_p);
}

TEST(ThresholdVoltage, BodyEffectRaisesVth) {
  BiasPoint b;
  b.vds = tech().vdd;
  b.temp = tech().t_ref;
  b.vsb = 0.0;
  const double v0 = threshold_voltage(tech(), MosType::Nmos, b);
  b.vsb = 0.3;
  const double v1 = threshold_voltage(tech(), MosType::Nmos, b);
  EXPECT_NEAR(v1 - v0, tech().gamma_lin * 0.3, 1e-12);
}

TEST(ThresholdVoltage, DiblLowersVthAtHighVds) {
  BiasPoint b;
  b.temp = tech().t_ref;
  b.vds = 0.0;
  const double v_low = threshold_voltage(tech(), MosType::Nmos, b);
  b.vds = tech().vdd;
  const double v_high = threshold_voltage(tech(), MosType::Nmos, b);
  EXPECT_LT(v_high, v_low);
  EXPECT_NEAR(v_low - v_high, tech().sigma_dibl * tech().vdd, 1e-12);
}

TEST(ThresholdVoltage, DropsWithTemperature) {
  BiasPoint b;
  b.vds = tech().vdd;
  b.temp = tech().t_ref;
  const double v0 = threshold_voltage(tech(), MosType::Nmos, b);
  b.temp = tech().t_ref + 100.0;
  const double v1 = threshold_voltage(tech(), MosType::Nmos, b);
  EXPECT_NEAR(v0 - v1, -tech().k_t * 100.0, 1e-12);
  EXPECT_LT(v1, v0);  // k_t is negative
}

TEST(Subthreshold, SlopeMatchesSwingFactor) {
  // d(log10 I)/dVGS must equal 1/(n VT ln 10).
  BiasPoint b;
  b.vds = tech().vdd;
  b.temp = 300.0;
  b.vgs = 0.0;
  const double i0 = subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, b);
  b.vgs = 0.1;
  const double i1 = subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, b);
  const double decades = std::log10(i1 / i0);
  const double swing_mv_per_dec = 100.0 / decades;
  const double expected = tech().n_swing * thermal_voltage(300.0) * std::log(10.0) * 1e3;
  EXPECT_NEAR(swing_mv_per_dec, expected, 0.05);
}

TEST(Subthreshold, LinearInWidthInverseInLength) {
  BiasPoint b;
  b.vds = tech().vdd;
  b.temp = 300.0;
  const double base = subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, b);
  EXPECT_NEAR(subthreshold_current(tech(), MosType::Nmos, 2e-6, 0.12e-6, b), 2.0 * base,
              1e-18);
  EXPECT_NEAR(subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.24e-6, b), 0.5 * base,
              1e-18);
}

TEST(Subthreshold, DrainFactorKillsCurrentAtZeroVds) {
  BiasPoint b;
  b.vds = 0.0;
  b.temp = 300.0;
  EXPECT_DOUBLE_EQ(subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, b), 0.0);
}

TEST(Subthreshold, CurrentGrowsStronglyWithTemperature) {
  const double i_300 = off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 300.0);
  const double i_400 = off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 400.0);
  // Exponential VTH(T) + VT(T) effects: typically 20-60x per 100 K here.
  EXPECT_GT(i_400 / i_300, 10.0);
  EXPECT_LT(i_400 / i_300, 200.0);
}

TEST(Subthreshold, OffCurrentMagnitudeIsRealistic) {
  // ~nA/um class device at room temperature for this technology.
  const double i = off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 300.0);
  EXPECT_GT(i, 1e-10);
  EXPECT_LT(i, 1e-8);
}

TEST(MosModel, PmosMirrorsNmos) {
  // A pMOS with source at VDD and gate at 0 conducts; current flows from
  // source (VDD) to drain, i.e. ids (drain->source) is negative.
  MosModel p(tech(), MosType::Pmos, 1e-6, 0.12e-6);
  const double i = p.ids(/*vg=*/0.0, /*vd=*/0.6, /*vs=*/1.2, /*vb=*/1.2, 300.0);
  EXPECT_LT(i, 0.0);
  // OFF pMOS (gate at VDD): tiny magnitude.
  const double i_off = p.ids(1.2, 0.0, 1.2, 1.2, 300.0);
  EXPECT_LT(std::abs(i_off), 1e-8);
  EXPECT_LT(i_off, 0.0);
}

TEST(MosModel, TerminalSwapFlipsSign) {
  MosModel nmos(tech(), MosType::Nmos, 1e-6, 0.12e-6);
  const double fwd = nmos.ids(1.2, 1.2, 0.0, 0.0, 300.0);
  const double rev = nmos.ids(1.2, 0.0, 1.2, 0.0, 300.0);
  EXPECT_GT(fwd, 0.0);
  EXPECT_LT(rev, 0.0);
}

TEST(MosModel, OnCurrentFarExceedsOffCurrent) {
  MosModel nmos(tech(), MosType::Nmos, 1e-6, 0.12e-6);
  const double on = nmos.ids(1.2, 1.2, 0.0, 0.0, 300.0);
  const double off = nmos.ids(0.0, 1.2, 0.0, 0.0, 300.0);
  EXPECT_GT(on / off, 1e4);
}

TEST(MosModel, ContinuousAcrossBlendWindow) {
  // Sweep VGS through the subthreshold/strong-inversion blend and require
  // the log-current to move smoothly (no jumps bigger than the slope times
  // the step).
  MosModel nmos(tech(), MosType::Nmos, 1e-6, 0.12e-6);
  double prev = std::log(nmos.ids(0.0, 1.2, 0.0, 0.0, 300.0));
  for (double vg = 0.005; vg <= 1.2; vg += 0.005) {
    const double cur = std::log(nmos.ids(vg, 1.2, 0.0, 0.0, 300.0));
    EXPECT_GT(cur, prev - 1e-9) << "log-current not monotone at vg=" << vg;
    EXPECT_LT(cur - prev, 0.3) << "log-current jump at vg=" << vg;
    prev = cur;
  }
}

TEST(MosModel, SubthresholdRegionMatchesEquationOne) {
  // Below the blend window the full model must be *exactly* Eq. (1).
  MosModel nmos(tech(), MosType::Nmos, 1e-6, 0.12e-6);
  BiasPoint b;
  b.vgs = 0.05;
  b.vds = 1.2;
  b.temp = 330.0;
  const double direct = subthreshold_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, b);
  const double model = nmos.ids(0.05, 1.2, 0.0, 0.0, 330.0);
  EXPECT_DOUBLE_EQ(model, direct);
}

TEST(MosModel, RejectsBadGeometry) {
  EXPECT_THROW(MosModel(tech(), MosType::Nmos, 0.0, 0.12e-6), PreconditionError);
  EXPECT_THROW(MosModel(tech(), MosType::Nmos, 1e-6, -1.0), PreconditionError);
}

TEST(Technology, FactoriesAreSane) {
  const auto t12 = Technology::cmos012();
  EXPECT_EQ(t12.name, "cmos012");
  EXPECT_GT(t12.vdd, t12.vt0_n);
  const auto t35 = Technology::cmos035();
  EXPECT_GT(t35.vdd, t12.vdd);
  EXPECT_GT(t35.vt0_n, t12.vt0_n);
  EXPECT_GT(t35.l_drawn, t12.l_drawn);
}

TEST(Technology, ScaledNodesTrendCorrectly) {
  const auto big = Technology::scaled_node(0.8);
  const auto mid = Technology::scaled_node(0.13);
  const auto tiny = Technology::scaled_node(0.025);
  EXPECT_GT(big.vdd, mid.vdd);
  EXPECT_GT(mid.vdd, tiny.vdd);
  EXPECT_GT(big.vt0_n, mid.vt0_n);
  EXPECT_GE(mid.vt0_n, tiny.vt0_n);
  EXPECT_LT(big.sigma_dibl, tiny.sigma_dibl);  // DIBL worsens when scaling
  EXPECT_THROW(Technology::scaled_node(5.0), PreconditionError);
}

TEST(Technology, ScaledLeakageExplodesAcrossRoadmap) {
  // The premise of the paper's Fig. 1: per-device OFF current rises by
  // orders of magnitude from 0.8 um to 25 nm.
  const auto big = Technology::scaled_node(0.8);
  const auto tiny = Technology::scaled_node(0.025);
  const double i_big = off_current(big, MosType::Nmos, big.w_min, big.l_drawn, 300.0);
  const double i_tiny = off_current(tiny, MosType::Nmos, tiny.w_min, tiny.l_drawn, 300.0);
  EXPECT_GT(i_tiny / i_big, 1e3);
}

}  // namespace
}  // namespace ptherm::device
