// Tests for the electro-thermal SPICE coupling (spice/electrothermal.hpp):
// per-device self-heating closed through the thermal backend's
// influence-apply seam, runaway flagged-not-clamped at the device level
// (mirroring the block-level cosim policy), footprint mapping from the
// floorplan, the dense/matrix-free influence boundary, and the structured
// non-convergence diagnostics carried by the cosim and scenario-batch paths.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cosim.hpp"
#include "core/scenario_batch.hpp"
#include "device/mosfet.hpp"
#include "floorplan/generators.hpp"
#include "spice/circuit.hpp"
#include "spice/electrothermal.hpp"
#include "thermal/backend.hpp"

namespace ptherm::spice {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;
using thermal::Die;
using thermal::HeatSource;
using thermal::SurfaceSample;

Technology tech() { return Technology::cmos012(); }

/// A small, poorly-cooled die: 100 um x 100 um, 300 um to the sink, with the
/// conductivity knocked down so a single wide device's subthreshold power
/// produces tens of kelvin of self-heating.
Die hot_die(double t_sink) {
  Die d;
  d.width = 100e-6;
  d.height = 100e-6;
  d.thickness = 300e-6;
  d.k_si = 4.0;
  d.t_sink = t_sink;
  return d;
}

/// One 200 um wide NMOS biased just below threshold (vgs = 0.30 V): its
/// subthreshold current roughly doubles every ~15 K, so the loop gain
/// R * dP/dT crosses 1 somewhere between a 300 K and a 325 K sink.
Circuit wide_device_circuit() {
  Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("gate");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  ckt.add_vsource("VG", gate, Circuit::ground(), 0.30);
  ckt.add_mosfet("MHOT", vdd, gate, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 200e-6, t.l_drawn));
  return ckt;
}

std::vector<DeviceFootprint> center_footprint() {
  return {{"MHOT", 50e-6, 50e-6, 10e-6, 10e-6}};
}

ElectroThermalDcOptions et_opts(double t_sink) {
  ElectroThermalDcOptions opts;
  opts.t_sink = t_sink;
  opts.dc.temp = t_sink;  // unheated devices and the T iterate both start here
  return opts;
}

// ---------------------------------------------------------------------------
// The coupled solve: self-heating raises the device temperature, the report
// carries the per-device exit temperatures, and the electrical solution is
// consistent with them.

TEST(ElectroThermalDc, SelfHeatingConvergesAboveSink) {
  const double t_sink = 300.0;
  thermal::AnalyticImagesBackend backend(hot_die(t_sink));
  const auto fps = center_footprint();
  const auto ckt = wide_device_circuit();
  const auto sol = solve_electrothermal_dc(ckt, backend, fps, et_opts(t_sink));

  EXPECT_TRUE(sol.converged);
  EXPECT_FALSE(sol.runaway);
  ASSERT_EQ(sol.device_temperatures.size(), 1u);
  // Genuine self-heating: tens of kelvin above the sink, not noise.
  EXPECT_GT(sol.device_temperatures[0], t_sink + 10.0);
  EXPECT_LT(sol.device_temperatures[0], t_sink + 100.0);
  EXPECT_DOUBLE_EQ(sol.max_temperature, sol.device_temperatures[0]);
  EXPECT_GT(sol.device_powers[0], 0.0);

  // The electrical solution's report must agree on what temperature the
  // device was actually evaluated at.
  ASSERT_TRUE(sol.dc.converged);
  EXPECT_DOUBLE_EQ(sol.dc.report.device_temperatures.at("MHOT"), sol.device_temperatures[0]);

  // Consistency of the fixed point: T = t_sink + R * P(T) to the outer
  // tolerance, with R taken from the backend directly.
  const HeatSource src{50e-6, 50e-6, 10e-6, 10e-6, sol.device_powers[0]};
  const SurfaceSample at{50e-6, 50e-6};
  const double rise = backend.surface_rises({src}, std::span(&at, 1))[0];
  EXPECT_NEAR(sol.device_temperatures[0], t_sink + rise, 1e-2);
}

TEST(ElectroThermalDc, HotSinkRunsAwayFlaggedNotClamped) {
  const double t_sink = 325.0;
  thermal::AnalyticImagesBackend backend(hot_die(t_sink));
  const auto fps = center_footprint();
  const auto ckt = wide_device_circuit();
  const auto sol = solve_electrothermal_dc(ckt, backend, fps, et_opts(t_sink));

  EXPECT_TRUE(sol.runaway);
  EXPECT_FALSE(sol.converged);
  // Flagged, never clamped: the reported state is the divergent iterate,
  // far beyond the rise limit that triggered the flag.
  EXPECT_GT(sol.max_temperature, t_sink + et_opts(t_sink).runaway_rise_limit);
  // It must stop promptly, not burn the full outer budget on a divergence.
  EXPECT_LT(sol.outer_iterations, et_opts(t_sink).max_outer_iterations);
}

TEST(ElectroThermalDc, ColdSinkSameCircuitDoesNotFlag) {
  // Same circuit, same die, only the sink differs: runaway is a property of
  // the physics (loop gain), not of the detector.
  const double t_sink = 300.0;
  thermal::AnalyticImagesBackend backend(hot_die(t_sink));
  const auto fps = center_footprint();
  const auto ckt = wide_device_circuit();
  const auto sol = solve_electrothermal_dc(ckt, backend, fps, et_opts(t_sink));
  EXPECT_TRUE(sol.converged);
  EXPECT_FALSE(sol.runaway);
}

TEST(ElectroThermalDc, UnfootprintedDevicesStayAtAmbient) {
  const double t_sink = 300.0;
  thermal::AnalyticImagesBackend backend(hot_die(t_sink));
  Circuit ckt;
  const Technology t = tech();
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("gate");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), t.vdd);
  ckt.add_vsource("VG", gate, Circuit::ground(), 0.30);
  ckt.add_mosfet("MHOT", mid, gate, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 200e-6, t.l_drawn));
  ckt.add_mosfet("MCOLD", vdd, gate, mid, Circuit::ground(),
                 MosModel(t, MosType::Nmos, 200e-6, t.l_drawn));
  const auto fps = center_footprint();  // MHOT only
  const auto sol = solve_electrothermal_dc(ckt, backend, fps, et_opts(t_sink));
  ASSERT_TRUE(sol.dc.converged);
  EXPECT_DOUBLE_EQ(sol.dc.report.device_temperatures.at("MCOLD"), t_sink);
  EXPECT_GE(sol.dc.report.device_temperatures.at("MHOT"), t_sink);
}

// ---------------------------------------------------------------------------
// Footprint mapping from the floorplan.

TEST(ElectroThermalDc, FootprintForMapsBlockRect) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  Die d;
  const auto fp = floorplan::make_uniform_grid(tech(), d, 2, 2, cfg, rng);
  const auto& block = fp.blocks().front();
  const auto foot = footprint_for("M7", block);
  EXPECT_EQ(foot.device, "M7");
  EXPECT_DOUBLE_EQ(foot.cx, block.rect.cx());
  EXPECT_DOUBLE_EQ(foot.cy, block.rect.cy());
  EXPECT_DOUBLE_EQ(foot.w, block.rect.w);
  EXPECT_DOUBLE_EQ(foot.l, block.rect.h);
}

// ---------------------------------------------------------------------------
// The influence-apply seam the coupling resolves its backend through.

TEST(InfluenceSeam, DenseApplyMatchesExplicitMultiply) {
  thermal::AnalyticImagesBackend backend(hot_die(300.0));
  const std::vector<HeatSource> sources = {{30e-6, 30e-6, 10e-6, 10e-6, 0.0},
                                           {70e-6, 60e-6, 8e-6, 12e-6, 0.0}};
  const std::vector<SurfaceSample> samples = {{30e-6, 30e-6}, {70e-6, 60e-6}};
  auto r = backend.build_influence(sources, samples);
  ASSERT_EQ(r.rows(), 2u);
  ASSERT_EQ(r.cols(), 2u);

  const std::vector<double> powers = {0.125, 0.75};
  std::vector<double> expected(2, 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) expected[i] += r(i, j) * powers[j];
  }

  thermal::DenseInfluenceApply apply(std::move(r));
  EXPECT_EQ(apply.kind(), "dense");
  ASSERT_EQ(apply.size(), 2u);
  std::vector<double> rises(2, 0.0);
  apply.apply(powers, rises);
  EXPECT_DOUBLE_EQ(rises[0], expected[0]);
  EXPECT_DOUBLE_EQ(rises[1], expected[1]);
}

TEST(InfluenceSeam, ResolvePicksMatrixFreeOnlyWhenSupported) {
  const std::vector<HeatSource> sources = {{30e-6, 30e-6, 10e-6, 10e-6, 0.0}};
  const std::vector<SurfaceSample> samples = {{30e-6, 30e-6}};

  thermal::AnalyticImagesBackend analytic(hot_die(300.0));
  ASSERT_FALSE(analytic.supports_matrix_free_influence());
  const auto dense = thermal::resolve_influence_apply(analytic, sources, samples);
  EXPECT_EQ(dense->kind(), "dense");

  thermal::SpectralBackend spectral(hot_die(300.0));
  ASSERT_TRUE(spectral.supports_matrix_free_influence());
  const auto free = thermal::resolve_influence_apply(spectral, sources, samples);
  EXPECT_NE(free->kind(), "dense");

  // Both must implement the same operator to their respective accuracy.
  const std::vector<double> powers = {1.0};
  std::vector<double> a(1, 0.0), b(1, 0.0);
  dense->apply(powers, a);
  free->apply(powers, b);
  EXPECT_GT(a[0], 0.0);
  EXPECT_NEAR(a[0], b[0], 0.05 * a[0] + 1e-9);
}

// ---------------------------------------------------------------------------
// Structured non-convergence diagnostics on the cosim paths (the same
// SolveDiagnostics record the SPICE stack attaches to ConvergenceFailure).

Die die_1mm() {
  Die d;
  d.width = 1e-3;
  d.height = 1e-3;
  d.thickness = 350e-6;
  d.k_si = 148.0;
  d.t_sink = 318.15;
  return d;
}

floorplan::Floorplan unstable_plan() {
  Rng rng(4);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 40.0;
  cfg.gates_per_mm2 = 5e8;
  return floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
}

TEST(CosimDiagnostics, RunawayCarriesStructuredContext) {
  core::CosimOptions opts;
  opts.runaway_rise_limit = 200.0;
  const auto plan = unstable_plan();
  core::ElectroThermalSolver solver(tech(), plan, opts);
  const auto r = solver.solve();
  ASSERT_TRUE(r.runaway);
  ASSERT_TRUE(r.diagnostics.has_value());
  EXPECT_EQ(r.diagnostics->solver, "ElectroThermalSolver");
  EXPECT_EQ(r.diagnostics->stage, "runaway");
  EXPECT_EQ(r.diagnostics->iterations, r.iterations);
  // The worst offender is a real block of the plan, by name.
  bool found = false;
  for (const auto& b : plan.blocks()) found = found || (b.name == r.diagnostics->worst);
  EXPECT_TRUE(found) << "worst=" << r.diagnostics->worst;
  EXPECT_FALSE(r.diagnostics->summary().empty());
}

TEST(CosimDiagnostics, ConvergedSolveCarriesNone) {
  Rng rng(21);
  floorplan::GeneratorConfig cfg;
  cfg.total_dynamic_power = 2.0;
  cfg.gates_per_mm2 = 50e3;
  const auto fp = floorplan::make_uniform_grid(tech(), die_1mm(), 2, 2, cfg, rng);
  core::ElectroThermalSolver solver(tech(), fp, {});
  const auto r = solver.solve();
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.diagnostics.has_value());
}

TEST(CosimDiagnostics, ScenarioBatchNamesTheScenario) {
  core::CosimOptions opts;
  opts.runaway_rise_limit = 200.0;
  core::ScenarioBatch batch(tech(), unstable_plan(), opts);
  batch.add_nominal();
  const auto results = batch.solve_all();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].runaway);
  ASSERT_TRUE(results[0].diagnostics.has_value());
  EXPECT_EQ(results[0].diagnostics->solver, "ScenarioBatch");
  EXPECT_NE(results[0].diagnostics->stage.find("scenario 0"), std::string::npos);
  EXPECT_NE(results[0].diagnostics->stage.find("runaway"), std::string::npos);
  EXPECT_FALSE(results[0].diagnostics->worst.empty());
}

}  // namespace
}  // namespace ptherm::spice
