// Property test over randomly generated series-parallel gates: for every
// random topology and every input vector, the compact gate model (with the
// weak-level correction) must track a full transistor-level MNA solve of the
// very same network. This exercises arbitrary nesting the hand-written cell
// tests cannot reach.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "device/mosfet.hpp"
#include "leakage/gate.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::leakage {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

/// Random series-parallel network over `n_inputs` inputs with at most
/// `budget` devices. Leaves get widths in [0.3, 2.4] um.
SpNetwork random_network(Rng& rng, int n_inputs, int budget, int depth = 0) {
  if (budget <= 1 || depth >= 3 || rng.bernoulli(0.35)) {
    return SpNetwork::device(static_cast<int>(rng.uniform_index(n_inputs)),
                             rng.uniform(0.3e-6, 2.4e-6));
  }
  const int n_children = 2 + static_cast<int>(rng.uniform_index(2));  // 2..3
  std::vector<SpNetwork> children;
  int remaining = budget - 1;
  for (int c = 0; c < n_children; ++c) {
    const int share = std::max(1, remaining / (n_children - c));
    children.push_back(random_network(rng, n_inputs, share, depth + 1));
    remaining -= children.back().device_count();
  }
  return rng.bernoulli() ? SpNetwork::series(std::move(children))
                         : SpNetwork::parallel(std::move(children));
}

/// Structural dual: series <-> parallel with the same leaves (the textbook
/// complementary pull-up for a given pull-down).
SpNetwork dual_network(const SpNetwork& net, double p_over_n_width) {
  if (net.kind() == SpNetwork::Kind::Device) {
    return SpNetwork::device(net.input_index(), net.width() * p_over_n_width);
  }
  std::vector<SpNetwork> children;
  for (const auto& c : net.children()) children.push_back(dual_network(c, p_over_n_width));
  return net.kind() == SpNetwork::Kind::Series ? SpNetwork::parallel(std::move(children))
                                               : SpNetwork::series(std::move(children));
}

/// Emits the transistor-level circuit of one complementary gate and returns
/// the supply current.
class SpiceGateBuilder {
 public:
  SpiceGateBuilder(const Technology& t, const InputVector& inputs) : tech_(t) {
    vdd_ = ckt_.node("vdd");
    out_ = ckt_.node("out");
    ckt_.add_vsource("VDD", vdd_, spice::Circuit::ground(), t.vdd);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const auto n = ckt_.node("in" + std::to_string(i));
      ckt_.add_vsource("VIN" + std::to_string(i), n, spice::Circuit::ground(),
                       inputs[i] ? t.vdd : 0.0);
      input_nodes_.push_back(n);
    }
  }

  /// Wires `net` between `lo` (rail side) and `hi` (output side).
  void emit(const SpNetwork& net, MosType type, spice::NodeId lo, spice::NodeId hi) {
    switch (net.kind()) {
      case SpNetwork::Kind::Device: {
        const auto bulk = (type == MosType::Nmos) ? spice::Circuit::ground() : vdd_;
        // nMOS: source at the rail-side node; pMOS mirrored.
        const auto src = (type == MosType::Nmos) ? lo : hi;
        const auto drn = (type == MosType::Nmos) ? hi : lo;
        ckt_.add_mosfet("M" + std::to_string(counter_++), drn,
                        input_nodes_[net.input_index()], src, bulk,
                        MosModel(tech_, type, net.width(), tech_.l_drawn));
        return;
      }
      case SpNetwork::Kind::Series: {
        spice::NodeId prev = lo;
        for (std::size_t c = 0; c < net.children().size(); ++c) {
          const bool last = (c + 1 == net.children().size());
          const auto next = last ? hi : ckt_.node("x" + std::to_string(node_counter_++));
          emit(net.children()[c], type, prev, next);
          prev = next;
        }
        return;
      }
      case SpNetwork::Kind::Parallel:
        for (const auto& c : net.children()) emit(c, type, lo, hi);
        return;
    }
  }

  double supply_current(double temp) {
    spice::DcOptions opts;
    opts.temp = temp;
    const auto sol = spice::solve_dc(ckt_, opts);
    return -sol.vsource_currents.at("VDD");
  }

  spice::Circuit& circuit() { return ckt_; }
  spice::NodeId vdd() const { return vdd_; }
  spice::NodeId out() const { return out_; }

 private:
  const Technology& tech_;
  spice::Circuit ckt_;
  spice::NodeId vdd_ = 0;
  spice::NodeId out_ = 0;
  std::vector<spice::NodeId> input_nodes_;
  int counter_ = 0;
  int node_counter_ = 0;
};

class RandomGateSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomGateSweep, ModelTracksMnaForEveryVector) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const int n_inputs = 2 + static_cast<int>(rng.uniform_index(2));  // 2..3
  GateTopology gate;
  gate.name = "random" + std::to_string(GetParam());
  gate.pull_down = random_network(rng, n_inputs, 5);
  gate.pull_up = dual_network(gate.pull_down, 2.5);
  gate.length = tech().l_drawn;

  const GateEvalOptions corrected{true};
  for (unsigned v = 0; v < (1u << n_inputs); ++v) {
    const auto inputs = vector_from_index(v, n_inputs);
    const auto model = gate_static(tech(), gate, inputs, 300.0, 0.0, corrected);

    SpiceGateBuilder builder(tech(), inputs);
    builder.emit(gate.pull_down, MosType::Nmos, spice::Circuit::ground(), builder.out());
    builder.emit(gate.pull_up, MosType::Pmos, builder.vdd(), builder.out());
    const double i_spice = builder.supply_current(300.0);

    // Random nested topologies stress the collapse approximations harder
    // than standard cells (parallel blocks inside series chains are
    // collapsed under a full-VDD assumption the real circuit does not obey).
    // Measured worst case across this corpus is ~28%; the 30% band keeps the
    // test a sharp regression detector without codifying luck.
    EXPECT_NEAR(model.i_off / i_spice, 1.0, 0.30)
        << gate.name << " inputs=" << n_inputs << " vector=" << v
        << " devices=" << gate.pull_down.device_count();
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, RandomGateSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace ptherm::leakage
