// Workload-trace tests: generator patterns, sample-and-hold lookup, and the
// text format's bitwise read/write round trip including its malformed-input
// error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "rtm/trace.hpp"

namespace ptherm::rtm {
namespace {

TEST(WorkloadTrace, RejectsDegenerateShapes) {
  EXPECT_THROW((void)WorkloadTrace(0, 1e-3), PreconditionError);
  EXPECT_THROW((void)WorkloadTrace(4, 0.0), PreconditionError);
  EXPECT_THROW((void)WorkloadTrace(4, -1e-3), PreconditionError);
}

TEST(WorkloadTrace, AppendValidatesWidthAndSign) {
  WorkloadTrace trace(2, 1e-3);
  const double short_row[] = {1.0};
  EXPECT_THROW(trace.append(short_row), PreconditionError);
  const double negative[] = {1.0, -0.1};
  EXPECT_THROW(trace.append(negative), PreconditionError);
  const double ok[] = {1.0, 0.5};
  trace.append(ok);
  EXPECT_EQ(trace.sample_count(), 1u);
  EXPECT_DOUBLE_EQ(trace.activity(0, 1), 0.5);
}

TEST(WorkloadTrace, SampleAndHoldLookupClampsAtTheEnds) {
  WorkloadTrace trace(1, 1e-3);
  for (double a : {0.2, 0.4, 0.8}) {
    trace.append({&a, 1});
  }
  EXPECT_DOUBLE_EQ(trace.duration(), 3e-3);
  EXPECT_DOUBLE_EQ(trace.activity_at(0, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(trace.activity_at(0, 0.5e-3), 0.2);   // held
  EXPECT_DOUBLE_EQ(trace.activity_at(0, 1.0e-3), 0.4);   // next sample
  EXPECT_DOUBLE_EQ(trace.activity_at(0, 2.9e-3), 0.8);
  EXPECT_DOUBLE_EQ(trace.activity_at(0, 1.0), 0.8);      // clamped past the end
  EXPECT_DOUBLE_EQ(trace.activity_at(0, -1.0), 0.2);     // clamped before the start
}

TEST(TraceGenerators, BurstTraceHonoursDutyAndPhase) {
  BurstPattern pat;
  pat.period = 4e-3;
  pat.duty = 0.5;
  pat.high = 1.5;
  pat.low = 0.1;
  pat.phase_step = 0.5;  // block 1 bursts exactly when block 0 idles
  const auto trace = make_burst_trace(2, 8, 1e-3, pat);
  for (std::size_t s = 0; s < trace.sample_count(); ++s) {
    const double t = static_cast<double>(s) * 1e-3;
    const double phase = t - 4e-3 * std::floor(t / 4e-3);
    const double want0 = phase < 2e-3 ? 1.5 : 0.1;
    EXPECT_DOUBLE_EQ(trace.activity(s, 0), want0) << "sample " << s;
    // Half-period phase shift flips the window.
    EXPECT_DOUBLE_EQ(trace.activity(s, 1), want0 == 1.5 ? 0.1 : 1.5) << "sample " << s;
  }
}

TEST(TraceGenerators, MigrationRotatesTheHotBlock) {
  MigrationPattern pat;
  pat.dwell = 2e-3;
  pat.hot = 1.6;
  pat.cold = 0.2;
  const auto trace = make_migration_trace(3, 12, 1e-3, pat);
  for (std::size_t s = 0; s < trace.sample_count(); ++s) {
    const std::size_t hot = (s / 2) % 3;  // dwell = 2 samples
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(trace.activity(s, b), b == hot ? 1.6 : 0.2)
          << "sample " << s << " block " << b;
    }
  }
}

TEST(TraceGenerators, RandomWalkStaysBoundedAndIsSeedDeterministic) {
  RandomWalkPattern pat;
  pat.start = 0.5;
  pat.step = 0.3;
  pat.floor = 0.1;
  pat.ceil = 1.2;
  Rng rng_a(42);
  Rng rng_b(42);
  const auto a = make_random_walk_trace(4, 200, 1e-3, pat, rng_a);
  const auto b = make_random_walk_trace(4, 200, 1e-3, pat, rng_b);
  EXPECT_TRUE(a == b);
  bool moved = false;
  for (std::size_t s = 0; s < a.sample_count(); ++s) {
    for (std::size_t blk = 0; blk < a.block_count(); ++blk) {
      const double v = a.activity(s, blk);
      ASSERT_GE(v, pat.floor);
      ASSERT_LE(v, pat.ceil);
      if (v != pat.start) moved = true;
    }
  }
  EXPECT_TRUE(moved);
  Rng rng_c(43);
  const auto c = make_random_walk_trace(4, 200, 1e-3, pat, rng_c);
  EXPECT_FALSE(a == c);
}

TEST(TraceIo, RoundTripIsBitwiseIdentical) {
  RandomWalkPattern pat;
  Rng rng(7);
  const auto trace = make_random_walk_trace(3, 50, 1.25e-4, pat, rng);
  std::stringstream ss;
  write_trace(ss, trace);
  const auto back = read_trace(ss);
  EXPECT_TRUE(trace == back);  // bitwise: max_digits10 formatting
}

TEST(TraceIo, FileRoundTripIsBitwiseIdentical) {
  BurstPattern pat;
  const auto trace = make_burst_trace(2, 20, 1e-3, pat);
  const std::string path = ::testing::TempDir() + "/ptherm_trace_roundtrip.txt";
  write_trace_file(path, trace);
  const auto back = read_trace_file(path);
  EXPECT_TRUE(trace == back);
  std::remove(path.c_str());
}

TEST(TraceIo, ZeroSampleTraceSurvivesTheRoundTrip) {
  // A validly constructed trace with no appended samples is legal (if
  // useless); the writer emits 'samples 0' and the reader must accept it.
  const WorkloadTrace empty(3, 1e-3);
  std::stringstream ss;
  write_trace(ss, empty);
  const auto back = read_trace(ss);
  EXPECT_TRUE(empty == back);
  EXPECT_EQ(back.sample_count(), 0u);
}

TEST(TraceIo, CommentsAndWhitespaceAreTolerated) {
  std::stringstream ss(
      "# a comment before the header\n"
      "ptherm-trace v1\n"
      "blocks 2\n"
      "# interleaved comment\n"
      "sample_dt 1e-3\n"
      "samples 2\n"
      "0.5   1.0\n\n"
      "0.25 0.75\n");
  const auto trace = read_trace(ss);
  EXPECT_EQ(trace.block_count(), 2u);
  EXPECT_EQ(trace.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(trace.activity(1, 1), 0.75);
}

TEST(TraceIo, MalformedInputsThrowIoError) {
  const auto expect_bad = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW((void)read_trace(ss), IoError) << "input:\n" << text;
  };
  expect_bad("");                                                  // empty
  expect_bad("not-a-trace v1\nblocks 1\nsample_dt 1\nsamples 0\n");  // bad magic
  expect_bad("ptherm-trace v9\nblocks 1\nsample_dt 1\nsamples 1\n1\n");  // bad version
  expect_bad("ptherm-trace v1\nsample_dt 1\nblocks 1\nsamples 1\n1\n");  // field order
  expect_bad("ptherm-trace v1\nblocks zero\nsample_dt 1\nsamples 1\n1\n");  // non-numeric
  expect_bad("ptherm-trace v1\nblocks 0\nsample_dt 1\nsamples 1\n1\n");     // zero blocks
  expect_bad("ptherm-trace v1\nblocks 1\nsample_dt -1\nsamples 1\n1\n");    // bad dt
  expect_bad("ptherm-trace v1\nblocks 1\nsample_dt 1e-3\nsamples 2\n0.5\n");  // truncated
  expect_bad("ptherm-trace v1\nblocks 2\nsample_dt 1e-3\nsamples 1\n0.5 oops\n");  // bad value
  expect_bad("ptherm-trace v1\nblocks 1\nsample_dt 1e-3\nsamples 1\n-0.5\n");  // negative
  expect_bad("ptherm-trace v1\nblocks 1\nsample_dt 1e-3\nsamples 1\n0.5\n0.7\n");  // trailing
}

TEST(TraceIo, WritingADefaultConstructedTraceIsAPreconditionError) {
  std::stringstream ss;
  EXPECT_THROW(write_trace(ss, WorkloadTrace{}), PreconditionError);
}

}  // namespace
}  // namespace ptherm::rtm
