// Symmetric tridiagonal eigensolver tests: implicit-shift QL spectra against
// closed forms and invariants, inverse-iteration eigenvectors against the
// defining residual, and the determinism the layered thermal backends rely
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "numerics/eigen.hpp"

namespace ptherm::numerics {
namespace {

// Residual || T v - lambda v ||_inf of a unit vector v.
double eigen_residual(const std::vector<double>& diag, const std::vector<double>& off,
                      double lambda, const std::vector<double>& v) {
  const std::size_t n = diag.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = (diag[i] - lambda) * v[i];
    if (i > 0) r += off[i - 1] * v[i - 1];
    if (i + 1 < n) r += off[i] * v[i + 1];
    worst = std::max(worst, std::abs(r));
  }
  return worst;
}

TEST(TridiagonalEigenvalues, MatchesClosedFormForDiscreteLaplacian) {
  // -1 / 2 / -1 on n cells: lambda_p = 2 - 2 cos(p pi / (n + 1)).
  const std::size_t n = 24;
  const std::vector<double> diag(n, 2.0);
  const std::vector<double> off(n - 1, -1.0);
  const auto evals = tridiagonal_eigenvalues(diag, off);
  ASSERT_EQ(evals.size(), n);
  for (std::size_t p = 0; p < n; ++p) {
    const double exact =
        2.0 - 2.0 * std::cos((p + 1) * std::numbers::pi / static_cast<double>(n + 1));
    EXPECT_NEAR(evals[p], exact, 1e-12) << "p = " << p;
  }
}

TEST(TridiagonalEigenvalues, DiagonalMatrixReturnsSortedDiagonal) {
  const std::vector<double> diag{3.0, -1.0, 7.0, 0.5};
  const std::vector<double> off(3, 0.0);
  const auto evals = tridiagonal_eigenvalues(diag, off);
  const std::vector<double> expect{-1.0, 0.5, 3.0, 7.0};
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(evals[i], expect[i]);
}

TEST(TridiagonalEigenvalues, TraceAndAscendingOrderInvariants) {
  std::vector<double> diag{5.0, 1.0, 4.0, 2.5, 8.0, 3.0};
  std::vector<double> off{0.7, -1.3, 2.0, 0.1, -0.4};
  const auto evals = tridiagonal_eigenvalues(diag, off);
  double trace = 0.0;
  double sum = 0.0;
  for (double d : diag) trace += d;
  for (std::size_t p = 0; p < evals.size(); ++p) {
    sum += evals[p];
    if (p > 0) {
      EXPECT_GE(evals[p], evals[p - 1]);
    }
  }
  EXPECT_NEAR(sum, trace, 1e-10);
}

TEST(TridiagonalEigenvalues, SingleEntryMatrix) {
  const std::vector<double> diag{4.25};
  const auto evals = tridiagonal_eigenvalues(diag, {});
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_DOUBLE_EQ(evals[0], 4.25);
}

TEST(TridiagonalEigenvalues, RejectsSizeMismatch) {
  const std::vector<double> diag{1.0, 2.0};
  const std::vector<double> off{0.5, 0.5};
  EXPECT_THROW((void)tridiagonal_eigenvalues(diag, off), PreconditionError);
  EXPECT_THROW((void)tridiagonal_eigenvalues({}, {}), PreconditionError);
}

TEST(TridiagonalSmallestEigenvalues, MatchesTheBottomOfTheFullSpectrum) {
  const std::vector<double> diag{5.0, 1.0, 4.0, 2.5, 8.0, 3.0, 6.5, 0.25};
  const std::vector<double> off{0.7, -1.3, 2.0, 0.1, -0.4, 1.1, 0.6};
  const auto full = tridiagonal_eigenvalues(diag, off);
  for (std::size_t count = 1; count <= diag.size(); ++count) {
    const auto bottom = tridiagonal_smallest_eigenvalues(diag, off, count);
    ASSERT_EQ(bottom.size(), count);
    for (std::size_t p = 0; p < count; ++p) {
      EXPECT_NEAR(bottom[p], full[p], 1e-11 * std::abs(full[p]) + 1e-12)
          << "count = " << count << ", p = " << p;
    }
  }
}

TEST(TridiagonalSmallestEigenvalues, HandlesRepeatedEigenvalues) {
  // Block-diagonal: two decoupled copies of the same 2x2 give a doubly
  // degenerate pair; the bisection must report the multiplicity, not skip it.
  const std::vector<double> diag{2.0, 2.0, 2.0, 2.0};
  const std::vector<double> off{1.0, 0.0, 1.0};
  const auto evals = tridiagonal_smallest_eigenvalues(diag, off, 4);
  EXPECT_NEAR(evals[0], 1.0, 1e-11);
  EXPECT_NEAR(evals[1], 1.0, 1e-11);
  EXPECT_NEAR(evals[2], 3.0, 1e-11);
  EXPECT_NEAR(evals[3], 3.0, 1e-11);
}

TEST(TridiagonalSmallestEigenvalues, SingleEntryAndValidation) {
  const auto one = tridiagonal_smallest_eigenvalues(std::vector<double>{-2.5}, {}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], -2.5);
  const std::vector<double> diag{1.0, 2.0, 3.0};
  const std::vector<double> off{0.5, 0.5};
  EXPECT_THROW((void)tridiagonal_smallest_eigenvalues(diag, off, 0), PreconditionError);
  EXPECT_THROW((void)tridiagonal_smallest_eigenvalues(diag, off, 4), PreconditionError);
  const std::vector<double> short_off{0.5};
  EXPECT_THROW((void)tridiagonal_smallest_eigenvalues(diag, short_off, 1),
               PreconditionError);
}

TEST(TridiagonalEigenvector, SatisfiesDefinitionForEveryEigenvalue) {
  const std::vector<double> diag{5.0, 1.0, 4.0, 2.5, 8.0, 3.0, 6.5};
  const std::vector<double> off{0.7, -1.3, 2.0, 0.1, -0.4, 1.1};
  const auto evals = tridiagonal_eigenvalues(diag, off);
  double norm = 0.0;
  for (double d : diag) norm = std::max(norm, std::abs(d));
  for (double e : off) norm = std::max(norm, std::abs(e));
  for (double lambda : evals) {
    const auto v = tridiagonal_eigenvector(diag, off, lambda);
    double len = 0.0;
    for (double x : v) len += x * x;
    EXPECT_NEAR(len, 1.0, 1e-12);
    EXPECT_LT(eigen_residual(diag, off, lambda, v), 1e-9 * norm) << "lambda = " << lambda;
  }
}

TEST(TridiagonalEigenvector, DeterministicSignConvention) {
  const std::vector<double> diag{2.0, 2.0, 2.0, 2.0, 2.0};
  const std::vector<double> off{-1.0, -1.0, -1.0, -1.0};
  const auto evals = tridiagonal_eigenvalues(diag, off);
  for (double lambda : evals) {
    const auto a = tridiagonal_eigenvector(diag, off, lambda);
    const auto b = tridiagonal_eigenvector(diag, off, lambda);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
    // First non-negligible component is positive.
    for (double x : a) {
      if (std::abs(x) > 1e-12) {
        EXPECT_GT(x, 0.0);
        break;
      }
    }
  }
}

TEST(TridiagonalEigenvector, OrthogonalAcrossDistinctEigenvalues) {
  const std::vector<double> diag{3.0, 1.5, 4.0, 2.0, 5.5, 0.5};
  const std::vector<double> off{0.9, 0.4, -0.8, 1.2, -0.3};
  const auto evals = tridiagonal_eigenvalues(diag, off);
  std::vector<std::vector<double>> vecs;
  for (double lambda : evals) vecs.push_back(tridiagonal_eigenvector(diag, off, lambda));
  for (std::size_t a = 0; a < vecs.size(); ++a) {
    for (std::size_t b = a + 1; b < vecs.size(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < vecs[a].size(); ++i) dot += vecs[a][i] * vecs[b][i];
      EXPECT_LT(std::abs(dot), 1e-8) << "pair (" << a << ", " << b << ")";
    }
  }
}

}  // namespace
}  // namespace ptherm::numerics
