// Tests for the exact chain solver: it must satisfy current continuity to
// machine-level accuracy because it serves as the reference in Figs. 3 and 8.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/exact_stack.hpp"

namespace ptherm::leakage {
namespace {

using device::BiasPoint;
using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

/// Current through device i of a chain given the solved node set.
double device_current(const Technology& t, MosType type, double width, double v_lo,
                      double v_hi, double temp) {
  BiasPoint b;
  b.vgs = -v_lo;
  b.vds = v_hi - v_lo;
  b.vsb = v_lo;
  b.temp = temp;
  return device::subthreshold_current(t, type, width, t.l_drawn, b);
}

TEST(ExactChain, SingleDeviceEqualsClosedForm) {
  const double w[] = {1e-6};
  const auto r = solve_exact_chain(tech(), MosType::Nmos, w, tech().l_drawn, 300.0);
  const double expected =
      device::off_current(tech(), MosType::Nmos, 1e-6, tech().l_drawn, 300.0);
  EXPECT_DOUBLE_EQ(r.current, expected);
  EXPECT_TRUE(r.node_voltages.empty());
}

TEST(ExactChain, ContinuityHoldsThroughEveryDevice) {
  const auto t = tech();
  const std::vector<double> widths = {0.4e-6, 1.0e-6, 0.7e-6, 1.3e-6};
  const auto r = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 320.0);
  ASSERT_EQ(r.node_voltages.size(), 3u);
  std::vector<double> nodes = {0.0};
  nodes.insert(nodes.end(), r.node_voltages.begin(), r.node_voltages.end());
  nodes.push_back(t.vdd);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const double ii = device_current(t, MosType::Nmos, widths[i], nodes[i], nodes[i + 1],
                                     320.0);
    EXPECT_NEAR(ii / r.current, 1.0, 1e-6) << "device " << i;
  }
}

TEST(ExactChain, NodeVoltagesMonotoneIncreasing) {
  const auto t = tech();
  const std::vector<double> widths(5, 0.8e-6);
  const auto r = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0);
  double prev = 0.0;
  for (double v : r.node_voltages) {
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_LT(prev, t.vdd);
}

TEST(ExactChain, StackMonotoneDecreasingInDepth) {
  const auto t = tech();
  std::vector<double> widths;
  double prev = 1e9;
  for (int n = 1; n <= 6; ++n) {
    widths.push_back(1e-6);
    const auto r = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    EXPECT_LT(r.current, prev);
    prev = r.current;
  }
}

TEST(ExactChain, OrderMattersForUnequalWidths) {
  // A wide device at the top vs at the bottom gives different currents
  // (DIBL on the bottom device breaks the symmetry).
  const auto t = tech();
  const std::vector<double> narrow_top = {2.0e-6, 0.3e-6};
  const std::vector<double> wide_top = {0.3e-6, 2.0e-6};
  const auto a = solve_exact_chain(t, MosType::Nmos, narrow_top, t.l_drawn, 300.0);
  const auto b = solve_exact_chain(t, MosType::Nmos, wide_top, t.l_drawn, 300.0);
  EXPECT_NE(a.current, b.current);
  EXPECT_GT(std::abs(a.current - b.current) / a.current, 0.01);
}

TEST(ExactChain, TwoStackDeltaVIsStable) {
  // Repeatability/robustness: the solver is deterministic and insensitive to
  // the interchangeable convenience wrapper.
  const auto t = tech();
  const double v1 = exact_two_stack_delta_v(t, MosType::Nmos, 1e-6, 1e-6, t.l_drawn, 300.0);
  const double v2 = exact_two_stack_delta_v(t, MosType::Nmos, 1e-6, 1e-6, t.l_drawn, 300.0);
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_GT(v1, 0.02);  // tens of mV for this technology
  EXPECT_LT(v1, 0.2);
}

TEST(ExactChain, PmosChainSolvesToo) {
  const auto t = tech();
  const std::vector<double> widths(3, 1e-6);
  const auto r = solve_exact_chain(t, MosType::Pmos, widths, t.l_drawn, 300.0);
  EXPECT_GT(r.current, 0.0);
  EXPECT_EQ(r.node_voltages.size(), 2u);
}

TEST(ExactChain, BodyBiasShiftsCurrent) {
  const auto t = tech();
  const std::vector<double> widths(2, 1e-6);
  const auto base = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0, 0.0);
  const auto rbb = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0, -0.3);
  EXPECT_LT(rbb.current, base.current);
}

TEST(ExactChain, RejectsEmptyChain) {
  EXPECT_THROW(solve_exact_chain(tech(), MosType::Nmos, {}, 0.12e-6, 300.0),
               PreconditionError);
}

}  // namespace
}  // namespace ptherm::leakage
