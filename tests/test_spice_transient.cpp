// Tests for the backward-Euler transient engine.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace ptherm::spice {
namespace {

using device::MosModel;
using device::MosType;
using device::Technology;

TEST(Transient, RcChargingMatchesClosedForm) {
  // Step a series RC with tau = 1 us; compare against 1 - exp(-t/tau).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V", in, Circuit::ground(), 0.0);
  ckt.set_vsource_waveform("V", [](double t) { return t > 0.0 ? 1.0 : 0.0; });
  ckt.add_resistor("R", in, out, 1e3);
  ckt.add_capacitor("C", out, Circuit::ground(), 1e-9);

  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt = 5e-9;
  const auto res = solve_transient(ckt, opts);
  ASSERT_GT(res.times.size(), 10u);
  const double tau = 1e-6;
  for (std::size_t k = 0; k < res.times.size(); k += 50) {
    const double t = res.times[k];
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(res.voltages[k][out], expected, 0.01);
  }
  // After 5 tau the closed form sits at 1 - e^-5; match it closely.
  EXPECT_NEAR(res.voltages.back()[out], 1.0 - std::exp(-5.0), 2e-3);
}

TEST(Transient, CapacitorIntegratesNearConstantCurrent) {
  // A 1 kV step behind 1 GOhm is a ~1 uA current source while the node stays
  // near ground; the capacitor must ramp as V = I*t/C.
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto n = ckt.node("n");
  ckt.add_vsource("V", src, Circuit::ground(), 0.0);
  ckt.set_vsource_waveform("V", [](double t) { return t > 0.0 ? 1000.0 : 0.0; });
  ckt.add_resistor("R", src, n, 1e9);
  ckt.add_capacitor("C", n, Circuit::ground(), 1e-9);
  TransientOptions opts;
  opts.t_stop = 1e-3;
  opts.dt = 1e-6;
  opts.dc.v_limit = 2000.0;   // the source node legitimately sits at 1 kV
  opts.dc.max_step = 500.0;   // and must be reachable within the iteration cap
  const auto res = solve_transient(ckt, opts);
  const double expected = 1e-6 * 1e-3 / 1e-9;  // 1.0 V after 1 ms
  EXPECT_NEAR(res.voltages.back()[n], expected, 0.01 * expected);
}

TEST(Transient, InverterSwitchesAndSettles) {
  const Technology tech = Technology::cmos012();
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), tech.vdd);
  ckt.add_vsource("VIN", in, Circuit::ground(), 0.0);
  // 100 ps input ramp starting at 100 ps.
  ckt.set_vsource_waveform("VIN", [&](double t) {
    const double t0 = 100e-12, tr = 100e-12;
    if (t <= t0) return 0.0;
    if (t >= t0 + tr) return tech.vdd;
    return tech.vdd * (t - t0) / tr;
  });
  ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                 MosModel(tech, MosType::Nmos, 0.64e-6, tech.l_drawn));
  ckt.add_mosfet("MP", out, in, vdd, vdd,
                 MosModel(tech, MosType::Pmos, 1.6e-6, tech.l_drawn));
  ckt.add_capacitor("CL", out, Circuit::ground(), 10e-15);

  TransientOptions opts;
  opts.t_stop = 2e-9;
  opts.dt = 2e-12;
  const auto res = solve_transient(ckt, opts);
  // Starts high (input low), ends low.
  EXPECT_GT(res.voltages.front()[out], 0.9 * tech.vdd);
  EXPECT_LT(res.voltages.back()[out], 0.05 * tech.vdd);
  // Output is monotone non-increasing after the input starts rising (simple
  // falling edge, no ringing expected with this load).
  double prev = res.voltages.front()[out];
  for (std::size_t k = 1; k < res.times.size(); ++k) {
    if (res.times[k] < 100e-12) continue;
    EXPECT_LE(res.voltages[k][out], prev + 1e-3);
    prev = res.voltages[k][out];
  }
}

TEST(Transient, SwitchingEnergyMatchesCV2) {
  // Integrate supply current during a single output rise: the charge pulled
  // from VDD must be ~ C * VDD (energy C*VDD^2, half burned in the pMOS).
  const Technology tech = Technology::cmos012();
  const double c_load = 20e-15;
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("VDD", vdd, Circuit::ground(), tech.vdd);
  ckt.add_vsource("VIN", in, Circuit::ground(), tech.vdd);
  ckt.set_vsource_waveform("VIN", [&](double t) {
    const double t0 = 100e-12, tr = 50e-12;  // falling input -> rising output
    if (t <= t0) return tech.vdd;
    if (t >= t0 + tr) return 0.0;
    return tech.vdd * (1.0 - (t - t0) / tr);
  });
  ckt.add_mosfet("MN", out, in, Circuit::ground(), Circuit::ground(),
                 MosModel(tech, MosType::Nmos, 0.64e-6, tech.l_drawn));
  ckt.add_mosfet("MP", out, in, vdd, vdd,
                 MosModel(tech, MosType::Pmos, 1.6e-6, tech.l_drawn));
  ckt.add_capacitor("CL", out, Circuit::ground(), c_load);

  TransientOptions opts;
  opts.t_stop = 3e-9;
  opts.dt = 1e-12;
  const auto res = solve_transient(ckt, opts);
  const auto& i_vdd = res.vsource_currents.at("VDD");
  double charge = 0.0;
  for (std::size_t k = 1; k < res.times.size(); ++k) {
    const double dt = res.times[k] - res.times[k - 1];
    charge += -i_vdd[k] * dt;  // source convention: delivery is negative
  }
  const double expected = c_load * tech.vdd;
  EXPECT_NEAR(charge, expected, 0.15 * expected);  // short-circuit adds a bit
  EXPECT_GE(charge, expected * 0.95);              // and never subtracts
}

TEST(Transient, StepFailureCarriesSolveReport) {
  // 1 mA forced into an NMOS drain whose gate collapses mid-run: with the
  // gate high the device absorbs the current, with it low the time step's
  // Newton (fixed small gmin, no recovery ladder) cannot hold the node. The
  // failure must carry a SolveReport naming the time and the forced node.
  Circuit ckt;
  const Technology t = Technology::cmos012();
  const auto drain = ckt.node("drain");
  const auto gate = ckt.node("gate");
  ckt.add_vsource("VG", gate, Circuit::ground(), 0.8);
  ckt.add_isource("IFORCE", Circuit::ground(), drain, 1e-3);
  ckt.add_mosfet("MOFF", drain, gate, Circuit::ground(), Circuit::ground(),
                 MosModel(t, MosType::Nmos, 1e-6, t.l_drawn));
  ckt.set_vsource_waveform("VG", [](double time) { return time > 0.5e-12 ? 0.0 : 0.8; });
  TransientOptions opts;
  opts.dc.max_iterations = 40;
  try {
    (void)solve_transient(ckt, opts);
    FAIL() << "transient unexpectedly survived the gate collapse";
  } catch (const ConvergenceFailure& e) {
    EXPECT_EQ(e.report().path, "transient");
    EXPECT_EQ(e.report().worst_node, "drain");
    ASSERT_TRUE(e.diagnostics().has_value());
    EXPECT_EQ(e.diagnostics()->solver, "solve_transient");
    EXPECT_NE(std::string(e.what()).find("t = "), std::string::npos);
  }
}

TEST(Transient, RejectsBadTimeGrid) {
  Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_vsource("V", a, Circuit::ground(), 1.0);
  TransientOptions opts;
  opts.t_stop = 0.0;
  EXPECT_THROW(solve_transient(ckt, opts), PreconditionError);
}

}  // namespace
}  // namespace ptherm::spice
