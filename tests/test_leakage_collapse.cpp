// Tests for the paper's stack-collapse model (Eqs. 3-13): asymptotics of the
// blended Delta-V expression, agreement with the exact solver (the Fig. 3 and
// Fig. 8 claims), and physical properties of the collapsed current.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/collapse.hpp"
#include "leakage/exact_stack.hpp"

namespace ptherm::leakage {
namespace {

using device::MosType;
using device::Technology;

Technology tech() { return Technology::cmos012(); }

TEST(CollapseBlend, MatchesCaseAForLargeF) {
  // f >> 1: the blend must approach the case-(a) asymptote Eq. (7) with a
  // bounded additive offset (1-alpha)*VT.
  const double temp = 300.0;
  const double f = 14.0;
  const double blend = delta_v_blend(tech(), f, temp);
  const double case_a = delta_v_case_a(tech(), f, temp);
  EXPECT_NEAR(blend, case_a, 1.1 * thermal_voltage(temp));
  EXPECT_NEAR(blend / case_a, 1.0, 0.02);
}

TEST(CollapseBlend, MatchesCaseBForSmallF) {
  // f << -1: the blend must collapse onto Eq. (8), Delta-V = VT e^f.
  const double temp = 300.0;
  for (double f : {-4.0, -6.0, -10.0}) {
    const double blend = delta_v_blend(tech(), f, temp);
    const double case_b = delta_v_case_b(tech(), f, temp);
    EXPECT_NEAR(blend / case_b, 1.0, 0.05) << "f = " << f;
  }
}

TEST(CollapseBlend, MonotoneInF) {
  double prev = 0.0;
  for (double f = -12.0; f <= 12.0; f += 0.25) {
    const double dv = delta_v_blend(tech(), f, 300.0);
    EXPECT_GT(dv, prev) << "f = " << f;
    prev = dv;
  }
}

TEST(CollapseBlend, AlphaMatchesEquationNine) {
  const auto t = tech();
  EXPECT_DOUBLE_EQ(collapse_alpha(t),
                   t.n_swing / (1.0 + t.gamma_lin + 2.0 * t.sigma_dibl));
}

TEST(CollapseBlend, FFactorContainsDiblBoost) {
  const auto t = tech();
  const double f_equal = collapse_f(t, 1e-6, 1e-6, 300.0);
  EXPECT_NEAR(f_equal, t.sigma_dibl * t.vdd / (t.n_swing * thermal_voltage(300.0)), 1e-12);
  const double f_ratio = collapse_f(t, 2e-6, 1e-6, 300.0);
  EXPECT_NEAR(f_ratio - f_equal, std::log(2.0), 1e-12);
}

TEST(CollapseChain, SingleDeviceIsIdentity) {
  const double w[] = {1e-6};
  const auto r = collapse_chain(tech(), MosType::Nmos, w, 300.0);
  EXPECT_DOUBLE_EQ(r.w_eff, 1e-6);
  EXPECT_TRUE(r.drops.empty());
  EXPECT_DOUBLE_EQ(r.v_top, 0.0);
}

TEST(CollapseChain, StackEffectShrinksEffectiveWidth) {
  std::vector<double> w = {1e-6};
  double prev_weff = 1e-6;
  for (int n = 2; n <= 6; ++n) {
    w.push_back(1e-6);
    const auto r = collapse_chain(tech(), MosType::Nmos, w, 300.0);
    EXPECT_LT(r.w_eff, prev_weff) << "stack " << n;
    prev_weff = r.w_eff;
  }
}

TEST(CollapseChain, DropsArePositiveAndOrdered) {
  const std::vector<double> w(5, 1e-6);
  const auto r = collapse_chain(tech(), MosType::Nmos, w, 300.0);
  ASSERT_EQ(r.drops.size(), 4u);
  double sum = 0.0;
  for (std::size_t i = 0; i < r.drops.size(); ++i) {
    EXPECT_GT(r.drops[i], 0.0);
    sum += r.drops[i];
    if (i > 0) {
      // In the pairwise collapse each successive lower device sees a smaller
      // equivalent upper width, so the recorded drops grow toward the top
      // (their *sum*, Eq. 12, is the physically meaningful quantity).
      EXPECT_GT(r.drops[i], r.drops[i - 1]);
    }
  }
  EXPECT_NEAR(r.v_top, sum, 1e-15);
  EXPECT_LT(r.v_top, tech().vdd);
}

TEST(CollapseChain, TwoStackDeltaVMatchesExact) {
  // The Fig. 3 claim: Eq. (10) tracks the exact intermediate-node voltage
  // over a wide width-ratio range. The paper shows agreement at the few-mV
  // level; we assert < 4 mV everywhere over ratios 1e-2..1e2.
  const auto t = tech();
  for (double ratio : {0.01, 0.1, 0.3, 1.0, 3.0, 10.0, 100.0}) {
    const double w_bot = 1e-6;
    const double w_top = ratio * w_bot;
    const double exact = exact_two_stack_delta_v(t, MosType::Nmos, w_bot, w_top,
                                                 t.l_drawn, 300.0);
    const double f = collapse_f(t, w_top, w_bot, 300.0);
    const double model = delta_v_blend(t, f, 300.0);
    EXPECT_NEAR(model, exact, 4e-3) << "ratio = " << ratio;
  }
}

TEST(CollapseChain, StackCurrentTracksExact) {
  // The Fig. 8 claim: the collapsed OFF current tracks "SPICE" for stacks of
  // 1..4 (we extend to 6). The pure Eq. (10) blend lands within ~10%; the
  // refined closed form within ~2.5%.
  const auto t = tech();
  const double w = 0.5e-6;
  for (int n = 1; n <= 6; ++n) {
    const std::vector<double> widths(n, w);
    const auto exact = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    const double blend = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    EXPECT_NEAR(blend / exact.current, 1.0, 0.10) << "blend, stack " << n;
    const double refined = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0,
                                             0.0, CollapseVariant::Refined);
    EXPECT_NEAR(refined / exact.current, 1.0, 0.025) << "refined, stack " << n;
  }
}

TEST(CollapseChain, MixedWidthsStillTrackExact) {
  const auto t = tech();
  const std::vector<std::vector<double>> chains = {
      {0.3e-6, 1.2e-6},
      {1.2e-6, 0.3e-6},
      {0.4e-6, 0.8e-6, 1.6e-6},
      {1.6e-6, 0.8e-6, 0.4e-6},
      {0.5e-6, 2.0e-6, 0.5e-6, 2.0e-6},
  };
  for (const auto& widths : chains) {
    const auto exact = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    const double blend = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    EXPECT_NEAR(blend / exact.current, 1.0, 0.12) << "chain size " << widths.size();
    const double refined = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0,
                                             0.0, CollapseVariant::Refined);
    EXPECT_NEAR(refined / exact.current, 1.0, 0.05) << "chain size " << widths.size();
  }
}

TEST(CollapseChain, RefinedVariantBeatsBlendOnThePairProblem) {
  // On a two-device chain the refinement targets the exact continuity
  // relation directly, so it must beat the blend there. (For deeper chains
  // the blend's per-pair errors can cancel, so no per-depth ordering is
  // asserted — only the 2.5% absolute bound of StackCurrentTracksExact.)
  const auto t = tech();
  for (double ratio : {0.5, 1.0, 2.0, 4.0}) {
    const std::vector<double> widths = {0.5e-6, ratio * 0.5e-6};
    const auto exact = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    const double blend = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0);
    const double refined = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, 300.0,
                                             0.0, CollapseVariant::Refined);
    const double err_blend = std::abs(blend / exact.current - 1.0);
    const double err_refined = std::abs(refined / exact.current - 1.0);
    EXPECT_LE(err_refined, err_blend + 1e-6) << "ratio " << ratio;
    EXPECT_LT(err_refined, 0.01) << "ratio " << ratio;
  }
}

TEST(CollapseChain, CurrentScalesLinearlyWithUniformWidthScaling) {
  // Scaling every width by s scales the current by s (the stack factor is
  // width-ratio dependent only).
  const auto t = tech();
  const std::vector<double> w1 = {0.4e-6, 0.8e-6, 0.6e-6};
  std::vector<double> w2 = w1;
  for (auto& w : w2) w *= 3.0;
  const double i1 = chain_off_current(t, MosType::Nmos, w1, t.l_drawn, 300.0);
  const double i2 = chain_off_current(t, MosType::Nmos, w2, t.l_drawn, 300.0);
  EXPECT_NEAR(i2 / i1, 3.0, 1e-9);
}

TEST(CollapseChain, TemperatureRaisesStackCurrent) {
  const auto t = tech();
  const std::vector<double> w(3, 1e-6);
  double prev = 0.0;
  for (double temp : {300.0, 330.0, 360.0, 390.0, 420.0}) {
    const double i = chain_off_current(t, MosType::Nmos, w, t.l_drawn, temp);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(CollapseChain, ReverseBodyBiasReducesLeakage) {
  const auto t = tech();
  const std::vector<double> w(2, 1e-6);
  const double i_zero = chain_off_current(t, MosType::Nmos, w, t.l_drawn, 300.0, 0.0);
  const double i_rbb = chain_off_current(t, MosType::Nmos, w, t.l_drawn, 300.0, -0.3);
  EXPECT_LT(i_rbb, i_zero);
  // Eq. (13): the ratio is exp(gamma' * dVB / (n VT)).
  const double expected =
      std::exp(t.gamma_lin * -0.3 / (t.n_swing * thermal_voltage(300.0)));
  EXPECT_NEAR(i_rbb / i_zero, expected, 1e-6);
}

TEST(CollapseChain, PmosUsesItsOwnParameters) {
  const auto t = tech();
  const std::vector<double> w(2, 1e-6);
  const double i_n = chain_off_current(t, MosType::Nmos, w, t.l_drawn, 300.0);
  const double i_p = chain_off_current(t, MosType::Pmos, w, t.l_drawn, 300.0);
  EXPECT_GT(i_n, i_p);  // pMOS has lower I0 and higher |VT0| here
}

TEST(CollapseChain, RejectsBadInput) {
  EXPECT_THROW(collapse_chain(tech(), MosType::Nmos, {}, 300.0), PreconditionError);
  const double bad[] = {1e-6, -1e-6};
  EXPECT_THROW(collapse_chain(tech(), MosType::Nmos, bad, 300.0), PreconditionError);
  const double ok[] = {1e-6};
  EXPECT_THROW((void)chain_off_current(tech(), MosType::Nmos, ok, 0.0, 300.0),
               PreconditionError);
  EXPECT_THROW((void)stack_off_current(tech(), MosType::Nmos, 1e-6, 0.12e-6, 0, 300.0),
               PreconditionError);
}

// Property sweep: model-vs-exact over (stack depth, temperature).
struct SweepCase {
  int n;
  double temp;
};

class ModelVsExactSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelVsExactSweep, BlendWithinTenRefinedWithinThreePercent) {
  const auto [n, temp] = GetParam();
  const auto t = tech();
  const std::vector<double> widths(n, 0.5e-6);
  const auto exact = solve_exact_chain(t, MosType::Nmos, widths, t.l_drawn, temp);
  const double blend = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, temp);
  EXPECT_NEAR(blend / exact.current, 1.0, 0.10) << "n = " << n << ", T = " << temp << " K";
  const double refined = chain_off_current(t, MosType::Nmos, widths, t.l_drawn, temp, 0.0,
                                           CollapseVariant::Refined);
  EXPECT_NEAR(refined / exact.current, 1.0, 0.03)
      << "n = " << n << ", T = " << temp << " K";
}

INSTANTIATE_TEST_SUITE_P(
    DepthAndTemperature, ModelVsExactSweep,
    ::testing::Values(SweepCase{1, 300.0}, SweepCase{2, 300.0}, SweepCase{3, 300.0},
                      SweepCase{4, 300.0}, SweepCase{2, 350.0}, SweepCase{3, 350.0},
                      SweepCase{4, 350.0}, SweepCase{2, 400.0}, SweepCase{3, 400.0},
                      SweepCase{4, 400.0}, SweepCase{5, 425.0}, SweepCase{6, 300.0}));

}  // namespace
}  // namespace ptherm::leakage
