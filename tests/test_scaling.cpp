// Tests for the Fig. 1 scaling roadmap: trends, temperature behaviour and
// the static-overtakes-dynamic crossover.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "scaling/roadmap.hpp"

namespace ptherm::scaling {
namespace {

TEST(Roadmap, HasTheTenFig1Nodes) {
  const auto nodes = default_roadmap();
  ASSERT_EQ(nodes.size(), 10u);
  EXPECT_DOUBLE_EQ(nodes.front().feature_um, 0.8);
  EXPECT_DOUBLE_EQ(nodes.back().feature_um, 0.025);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].feature_um, nodes[i - 1].feature_um);
  }
}

TEST(Roadmap, DensityAndFrequencyGrow) {
  const auto nodes = default_roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(nodes[i].gate_count, nodes[i - 1].gate_count);
    EXPECT_GE(nodes[i].frequency, nodes[i - 1].frequency);
  }
}

TEST(Roadmap, SupplyAndCapacitancePerGateShrink) {
  const auto nodes = default_roadmap();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i].tech.vdd, nodes[i - 1].tech.vdd + 1e-12);
    EXPECT_LT(nodes[i].c_per_gate, nodes[i - 1].c_per_gate);
  }
}

TEST(NodePower, StaticIsExponentialInTemperature) {
  const auto nodes = default_roadmap();
  const auto& n = nodes[6];  // 0.07 um
  const double s25 = node_power(n, celsius(25.0)).stat;
  const double s100 = node_power(n, celsius(100.0)).stat;
  const double s150 = node_power(n, celsius(150.0)).stat;
  EXPECT_GT(s100 / s25, 5.0);
  EXPECT_GT(s150 / s100, 2.0);
}

TEST(NodePower, DynamicIsTemperatureIndependent) {
  const auto nodes = default_roadmap();
  EXPECT_DOUBLE_EQ(node_power(nodes[4], celsius(25.0)).dynamic,
                   node_power(nodes[4], celsius(150.0)).dynamic);
}

TEST(NodePower, Fig1Shape_DynamicGrowsThenFlattens) {
  const auto nodes = default_roadmap();
  // Monotone growth through the roadmap...
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GE(node_power(nodes[i], celsius(25.0)).dynamic,
              node_power(nodes[i - 1], celsius(25.0)).dynamic * 0.9);
  }
  // ...and the end-of-roadmap dynamic power lands in the published tens-of-
  // watts range, not in kilowatts (the flattening).
  const double p_last = node_power(nodes.back(), celsius(25.0)).dynamic;
  EXPECT_GT(p_last, 30.0);
  EXPECT_LT(p_last, 300.0);
}

TEST(NodePower, Fig1Shape_StaticCrossesDynamicAt150C) {
  // The headline of Fig. 1: at 150 C the static power overtakes the dynamic
  // before the end of the roadmap; at 25 C it does not overtake until (at
  // most) the very last nodes.
  const auto nodes = default_roadmap();
  int crossover_150 = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto p = node_power(nodes[i], celsius(150.0));
    if (p.stat > p.dynamic) {
      crossover_150 = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(crossover_150, 0) << "static never overtakes dynamic at 150 C";
  EXPECT_GE(crossover_150, 5);  // happens in the sub-100nm regime, not before
  // At 25 C, static stays below dynamic through at least node 8 (0.035 um).
  for (std::size_t i = 0; i < 8; ++i) {
    const auto p = node_power(nodes[i], celsius(25.0));
    EXPECT_LT(p.stat, p.dynamic) << "node " << nodes[i].feature_um;
  }
}

TEST(NodePower, StaticShareGrowsMonotonicallyAcrossNodes) {
  const auto nodes = default_roadmap();
  double prev_share = 0.0;
  for (const auto& n : nodes) {
    const auto p = node_power(n, celsius(100.0));
    const double share = p.stat / (p.stat + p.dynamic);
    EXPECT_GT(share, prev_share * 0.8);  // broadly increasing
    prev_share = share;
  }
  EXPECT_GT(prev_share, 0.3);  // significant at the last node
}

TEST(NodePower, RejectsNonPositiveTemperature) {
  const auto nodes = default_roadmap();
  EXPECT_THROW((void)node_power(nodes[0], 0.0), PreconditionError);
}

}  // namespace
}  // namespace ptherm::scaling
