// DieStack contract tests: construction validation, the single()/reduces_to
// round trip the solvers use to keep their legacy closed-form paths, the
// derived resistance views, and the shared z-cell apportionment.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "thermal/stack.hpp"

namespace ptherm::thermal {
namespace {

constexpr double kK = 148.0;
constexpr double kCv = 1.631e6;

StackLayer silicon(double thickness) { return {"die", thickness, kK, kCv}; }

std::vector<ThermalRc> two_stage() { return {{0.3, 0.02}, {0.5, 2.0}}; }

TEST(DieStack, RejectsEmptyAndNonPositiveLayers) {
  EXPECT_THROW(DieStack({}), PreconditionError);
  EXPECT_THROW(DieStack({{"die", 0.0, kK, kCv}}), PreconditionError);
  EXPECT_THROW(DieStack({{"die", 350e-6, 0.0, kCv}}), PreconditionError);
  EXPECT_THROW(DieStack({{"die", 350e-6, kK, -1.0}}), PreconditionError);
  EXPECT_THROW(DieStack({silicon(350e-6), {"tim", -20e-6, 4.0, 2e6}}), PreconditionError);
}

TEST(DieStack, RejectsBadBoundarySpecs) {
  BoundarySpec convective;
  convective.kind = BoundaryKind::Convective;
  convective.h = 0.0;
  EXPECT_THROW(DieStack({silicon(350e-6)}, convective), PreconditionError);

  BoundarySpec rc;
  rc.kind = BoundaryKind::RcNetwork;  // rc member left unset
  EXPECT_THROW(DieStack({silicon(350e-6)}, rc), PreconditionError);
}

TEST(DieStack, SingleReducesToItsDie) {
  Die die;
  die.thickness = 420e-6;
  const DieStack stack = DieStack::single(die);
  EXPECT_EQ(stack.layer_count(), 1u);
  EXPECT_TRUE(stack.reduces_to(die));
  EXPECT_DOUBLE_EQ(stack.total_thickness(), die.thickness);
  EXPECT_DOUBLE_EQ(stack.series_resistance_per_area(), die.thickness / die.k_si);
  EXPECT_DOUBLE_EQ(stack.package_resistance(), 0.0);
}

TEST(DieStack, RcBoundaryStillReducesConvectiveDoesNot) {
  Die die;
  // RcNetwork: the operator still sees an isothermal case plane, so the
  // legacy conduction path applies; only the driver-side closure differs.
  BoundarySpec rc;
  rc.kind = BoundaryKind::RcNetwork;
  rc.rc.emplace(two_stage());
  const DieStack with_rc({silicon(die.thickness)}, rc);
  EXPECT_TRUE(with_rc.reduces_to(die));
  EXPECT_TRUE(with_rc.isothermal_operator_boundary());
  EXPECT_DOUBLE_EQ(with_rc.package_resistance(), 0.8);

  BoundarySpec conv;
  conv.kind = BoundaryKind::Convective;
  conv.h = 1e4;
  const DieStack with_film({silicon(die.thickness)}, conv);
  EXPECT_FALSE(with_film.reduces_to(die));
  EXPECT_FALSE(with_film.isothermal_operator_boundary());
}

TEST(DieStack, MismatchedLayerOrExtraLayersDoNotReduce) {
  Die die;
  const DieStack thicker({silicon(die.thickness * 2.0)});
  EXPECT_FALSE(thicker.reduces_to(die));
  const DieStack wrong_k({{"die", die.thickness, kK * 1.5, kCv}});
  EXPECT_FALSE(wrong_k.reduces_to(die));
  const DieStack two({silicon(die.thickness), {"tim", 20e-6, 4.0, 2e6}});
  EXPECT_FALSE(two.reduces_to(die));
}

TEST(DieStack, SeriesResistanceSumsLayersAndFilm) {
  BoundarySpec conv;
  conv.kind = BoundaryKind::Convective;
  conv.h = 2.0e4;
  const DieStack stack(
      {silicon(350e-6), {"tim", 25e-6, 4.0, 2.2e6}, {"spreader", 1e-3, 390.0, 3.4e6}}, conv);
  const double expect =
      350e-6 / kK + 25e-6 / 4.0 + 1e-3 / 390.0 + 1.0 / 2.0e4;
  EXPECT_NEAR(stack.series_resistance_per_area(), expect, 1e-18);
  EXPECT_DOUBLE_EQ(stack.total_thickness(), 350e-6 + 25e-6 + 1e-3);
}

TEST(DistributeStackCells, ProportionalWithFloorOfOne) {
  // 350 um die + 25 um TIM + 1 mm spreader: the TIM is ~1.8% of the height
  // but must still get its own cell.
  const DieStack stack(
      {silicon(350e-6), {"tim", 25e-6, 4.0, 2.2e6}, {"spreader", 1e-3, 390.0, 3.4e6}});
  const auto cells = distribute_stack_cells(stack, 40);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(std::accumulate(cells.begin(), cells.end(), 0), 40);
  for (int c : cells) EXPECT_GE(c, 1);
  // The spreader dominates the height, so it gets the most cells.
  EXPECT_GT(cells[2], cells[0]);
  EXPECT_GT(cells[0], cells[1]);
}

TEST(DistributeStackCells, EqualLayersSplitEvenly) {
  const DieStack stack({silicon(100e-6), silicon(100e-6), silicon(100e-6), silicon(100e-6)});
  const auto cells = distribute_stack_cells(stack, 12);
  for (int c : cells) EXPECT_EQ(c, 3);
}

TEST(DistributeStackCells, ThrowsWhenFewerCellsThanLayers) {
  const DieStack stack({silicon(100e-6), silicon(100e-6), silicon(100e-6)});
  EXPECT_THROW((void)distribute_stack_cells(stack, 2), PreconditionError);
  const auto minimal = distribute_stack_cells(stack, 3);
  for (int c : minimal) EXPECT_EQ(c, 1);
}

}  // namespace
}  // namespace ptherm::thermal
