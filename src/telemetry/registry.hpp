// Metrics registry: the "how much work happened" half of the telemetry
// layer. Named monotonic counters, gauges, and histogram summaries under a
// "subsystem/metric" naming scheme ("backend/cg_iterations",
// "spice/newton_iterations"), queryable as one snapshot and dumpable as
// JSONL or CSV for bench/run_bench.sh and bench/compare_bench.py.
//
// The existing per-subsystem stat structs (thermal::BackendCostStats,
// core::InfluenceBuildStats, core::ScenarioBatchStats, spice::SolveReport)
// register into this through the descriptor catalog in telemetry/counters.hpp
// — which is also how their merge rules are unified: merging two stat sets
// is contribute() twice into one registry, not a hand-copied field list.
//
// Leaf module: standard library only.
#pragma once

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace ptherm::telemetry {

/// Thread-safe named-metric store. Counter adds accumulate (monotonic by
/// convention: contributors only add nonnegative work counts), gauges hold
/// the last set value, histograms keep a streaming {count, sum, min, max}
/// summary. Heterogeneous lookup (std::less<>) keeps the hot add() path free
/// of temporary std::string allocations for existing keys.
class Registry {
 public:
  struct HistogramSummary {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Everything the registry holds, copied out under one lock.
  struct Snapshot {
    std::map<std::string, long long> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;
  };

  void add(std::string_view name, long long delta);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double value);

  /// Current value of counter `name` (0 if never added to).
  [[nodiscard]] long long counter(std::string_view name) const;

  [[nodiscard]] Snapshot snapshot() const;

  /// Adds every metric of `other` into this registry: counters and histogram
  /// summaries accumulate, gauges overwrite. snapshot()-then-merge is the
  /// cross-registry (e.g. per-thread sink) accumulation path.
  void merge(const Snapshot& other);

  void clear();

  /// Process-wide registry for call sites without a natural owner. Solver
  /// paths deliberately do NOT write here implicitly — stats flow through
  /// result structs and contribute() so runs stay reproducible — but tools
  /// and examples can use it as their one sink.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramSummary, std::less<>> histograms_;
};

/// JSONL dump: one {"metric": ..., ...} object per line — counters first,
/// then gauges, then histograms, each alphabetical. Deterministic for a
/// given snapshot.
void write_jsonl(std::ostream& os, const Registry::Snapshot& snapshot);

/// CSV dump with header "metric,kind,value,count,sum,min,max"; counters and
/// gauges leave the histogram columns empty.
void write_csv(std::ostream& os, const Registry::Snapshot& snapshot);

}  // namespace ptherm::telemetry
