#include "telemetry/registry.hpp"

#include <algorithm>
#include <limits>

namespace ptherm::telemetry {

namespace {

/// Map lookup-or-insert with a string_view key: find() goes through the
/// transparent comparator (no allocation when the key exists); only a brand
/// new metric pays the std::string construction.
template <typename Map, typename Value>
Value& slot(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) it = map.emplace(std::string(name), Value{}).first;
  return it->second;
}

void write_double(std::ostream& os, double v) {
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(old_precision);
}

}  // namespace

void Registry::add(std::string_view name, long long delta) {
  const std::scoped_lock lock(mutex_);
  slot<decltype(counters_), long long>(counters_, name) += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  slot<decltype(gauges_), double>(gauges_, name) = value;
}

void Registry::observe(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  HistogramSummary& h = slot<decltype(histograms_), HistogramSummary>(histograms_, name);
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
}

long long Registry::counter(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Registry::Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  snap.histograms.insert(histograms_.begin(), histograms_.end());
  return snap;
}

void Registry::merge(const Snapshot& other) {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, value] : other.counters) {
    slot<decltype(counters_), long long>(counters_, name) += value;
  }
  for (const auto& [name, value] : other.gauges) {
    slot<decltype(gauges_), double>(gauges_, name) = value;
  }
  for (const auto& [name, h] : other.histograms) {
    HistogramSummary& mine = slot<decltype(histograms_), HistogramSummary>(histograms_, name);
    if (mine.count == 0) {
      mine = h;
    } else if (h.count > 0) {
      mine.count += h.count;
      mine.sum += h.sum;
      mine.min = std::min(mine.min, h.min);
      mine.max = std::max(mine.max, h.max);
    }
  }
}

void Registry::clear() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      constexpr char kHex[] = "0123456789abcdef";
      os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_jsonl(std::ostream& os, const Registry::Snapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    os << "{\"metric\":";
    write_json_string(os, name);
    os << ",\"kind\":\"counter\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "{\"metric\":";
    write_json_string(os, name);
    os << ",\"kind\":\"gauge\",\"value\":";
    write_double(os, value);
    os << "}\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "{\"metric\":";
    write_json_string(os, name);
    os << ",\"kind\":\"histogram\",\"count\":" << h.count << ",\"sum\":";
    write_double(os, h.sum);
    os << ",\"min\":";
    write_double(os, h.min);
    os << ",\"max\":";
    write_double(os, h.max);
    os << "}\n";
  }
}

void write_csv(std::ostream& os, const Registry::Snapshot& snapshot) {
  os << "metric,kind,value,count,sum,min,max\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << name << ",counter," << value << ",,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << ",gauge,";
    write_double(os, value);
    os << ",,,,\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << ",histogram,," << h.count << ',';
    write_double(os, h.sum);
    os << ',';
    write_double(os, h.min);
    os << ',';
    write_double(os, h.max);
    os << '\n';
  }
}

}  // namespace ptherm::telemetry
