// Span tracer: the "where did the milliseconds go" half of the telemetry
// layer. Solver hot paths mark scopes with TELEMETRY_SPAN("subsystem/what");
// when no tracer is installed the macro costs ONE relaxed atomic pointer
// load (no clock read, no lock, no allocation), so instrumented code is
// bitwise identical and effectively free in production runs — both enforced
// by test and bench. When a Tracer is installed (set_tracer), every span
// records {name, thread, start, duration} into a mutex-guarded sink that
// write_chrome_trace exports as Chrome trace-event JSON ("X" complete
// events), directly loadable in Perfetto / chrome://tracing, where the
// ts/dur containment renders the nesting.
//
// Leaf module: depends on the standard library only, so every subsystem can
// include it without dependency cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ptherm::telemetry {

/// One completed span. `name` must be a string with static storage duration
/// (TELEMETRY_SPAN passes literals) — the sink stores the pointer, not a
/// copy, so recording never allocates per event.
struct SpanEvent {
  const char* name = "";
  std::uint32_t tid = 0;        ///< dense per-thread id (current_thread_id)
  std::int64_t start_ns = 0;    ///< monotonic clock, ns
  std::int64_t duration_ns = 0;
};

/// Thread-safe span sink. `max_events` bounds memory on long traced runs
/// (million-step RTM traces): past the cap new events are counted in
/// dropped_events() instead of stored, so an over-eager trace degrades
/// gracefully instead of exhausting memory.
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = kDefaultMaxEvents);

  void record(const char* name, std::uint32_t tid, std::int64_t start_ns,
              std::int64_t duration_ns);

  [[nodiscard]] std::vector<SpanEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped_events() const;
  void clear();

  static constexpr std::size_t kDefaultMaxEvents = std::size_t{1} << 22;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanEvent> events_;
  std::size_t max_events_;
  std::size_t dropped_ = 0;
};

/// Installs `tracer` as the process-wide span sink (nullptr disables — the
/// default). The caller keeps ownership and must keep the Tracer alive until
/// it is uninstalled; installation is a release store so spans on other
/// threads observe a fully-constructed sink.
void set_tracer(Tracer* tracer);

/// The installed sink, or nullptr when tracing is disabled. Relaxed load —
/// this is the whole disabled-path cost of a span.
[[nodiscard]] Tracer* tracer() noexcept;

/// Small dense id of the calling thread (0 for the first thread that asks,
/// then 1, 2, ...), stable for the thread's lifetime. Chrome trace "tid".
[[nodiscard]] std::uint32_t current_thread_id();

/// Monotonic timestamp [ns] for span bounds; only called on the enabled path.
[[nodiscard]] std::int64_t monotonic_now_ns();

/// RAII span: captures the installed tracer once at entry (so a tracer
/// installed mid-scope cannot see a torn span) and records on destruction.
/// Disabled path: one relaxed pointer load at entry, one null check at exit.
class Span {
 public:
  explicit Span(const char* name) : tracer_(telemetry::tracer()) {
    if (tracer_ != nullptr) {
      name_ = name;
      start_ns_ = monotonic_now_ns();
    }
  }
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, current_thread_id(), start_ns_, monotonic_now_ns() - start_ns_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_ = "";
  std::int64_t start_ns_ = 0;
};

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps)
/// for Perfetto / chrome://tracing. Deterministic: events are written in the
/// order given, so a fixed event list yields a byte-identical document (the
/// golden-file test relies on this).
void write_chrome_trace(std::ostream& os, const std::vector<SpanEvent>& events);
[[nodiscard]] std::string chrome_trace_json(const std::vector<SpanEvent>& events);

/// Opt-in per-iteration convergence recording, threaded through
/// CosimOptions, TransientCosimOptions, RtmOptions, ScenarioBatchOptions,
/// and DcOptions. Off (the default) is bitwise transparent: tracing only
/// APPENDS records (Picard residuals, CG residual curves, per-rung Newton
/// residuals, batch active-mask sizes) — it never changes solver arithmetic,
/// which is pinned by tests.
struct TraceOptions {
  bool convergence = false;
};

}  // namespace ptherm::telemetry

// Two-level paste so __LINE__ expands before concatenation; the span object
// lives to the end of the enclosing scope.
#define PTHERM_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define PTHERM_TELEMETRY_CONCAT(a, b) PTHERM_TELEMETRY_CONCAT_IMPL(a, b)

/// Marks the enclosing scope as a named span ("subsystem/what"). `name` must
/// be a string literal (or otherwise have static storage duration).
#define TELEMETRY_SPAN(name) \
  const ::ptherm::telemetry::Span PTHERM_TELEMETRY_CONCAT(ptherm_span_, __LINE__)(name)
