#include "telemetry/counters.hpp"

#include <iterator>

namespace ptherm::telemetry {

namespace {

using thermal::BackendCostStats;

constexpr BackendCounterField kBackendFields[] = {
    {"steady_solves", &BackendCostStats::steady_solves, false},
    {"influence_columns", &BackendCostStats::influence_columns, false},
    {"cg_iterations", &BackendCostStats::cg_iterations, true},
    {"modes", &BackendCostStats::modes, false},
    {"fft_calls", &BackendCostStats::fft_calls, true},
    {"transient_steps", &BackendCostStats::transient_steps, true},
    {"transient_power_updates", &BackendCostStats::transient_power_updates, true},
    {"scenarios", &BackendCostStats::scenarios, false},
    {"batched_matvecs", &BackendCostStats::batched_matvecs, true},
    {"picard_iterations_total", &BackendCostStats::picard_iterations_total, true},
    {"masked_iterations_saved", &BackendCostStats::masked_iterations_saved, false},
};
// The completeness guard: a field added to BackendCostStats without a
// catalog entry changes the struct size and fails this build.
static_assert(sizeof(BackendCostStats) == std::size(kBackendFields) * sizeof(long long),
              "BackendCostStats and the telemetry counter catalog are out of sync: "
              "name every field in kBackendFields (telemetry/counters.cpp)");

/// ScenarioBatchStats mirrors four backend counters by name.
struct BatchCounterField {
  const char* name;
  long long core::ScenarioBatchStats::* member;
};
constexpr BatchCounterField kBatchFields[] = {
    {"scenarios", &core::ScenarioBatchStats::scenarios},
    {"batched_matvecs", &core::ScenarioBatchStats::batched_matvecs},
    {"picard_iterations_total", &core::ScenarioBatchStats::picard_iterations_total},
    {"masked_iterations_saved", &core::ScenarioBatchStats::masked_iterations_saved},
};
static_assert(sizeof(core::ScenarioBatchStats) == std::size(kBatchFields) * sizeof(long long),
              "ScenarioBatchStats and the telemetry counter catalog are out of sync: "
              "name every field in kBatchFields (telemetry/counters.cpp)");

/// InfluenceBuildStats is a projection of the backend counters, so each
/// field binds to the BACKEND counter name it projects.
struct InfluenceCounterField {
  const char* name;
  long long core::InfluenceBuildStats::* member;
};
constexpr InfluenceCounterField kInfluenceFields[] = {
    {"influence_columns", &core::InfluenceBuildStats::columns},
    {"cg_iterations", &core::InfluenceBuildStats::cg_iterations},
    {"modes", &core::InfluenceBuildStats::modes},
    {"fft_calls", &core::InfluenceBuildStats::fft_calls},
};
static_assert(sizeof(core::InfluenceBuildStats) ==
                  std::size(kInfluenceFields) * sizeof(long long),
              "InfluenceBuildStats and the telemetry counter catalog are out of sync: "
              "name every field in kInfluenceFields (telemetry/counters.cpp)");

std::string prefixed(std::string_view prefix, const char* name) {
  std::string full;
  full.reserve(prefix.size() + std::char_traits<char>::length(name));
  full.append(prefix);
  full.append(name);
  return full;
}

/// Bench-level aggregate counters the speed benches export under these exact
/// keys; guarded alongside the catalog's own effort counters.
constexpr const char* kGuardedBenchCounters[] = {
    "picard_iterations",
    "newton_iterations",
    "homotopy_steps",
    "outer_iterations",
};

}  // namespace

std::span<const BackendCounterField> backend_counter_fields() { return kBackendFields; }

void contribute(Registry& reg, const thermal::BackendCostStats& stats,
                std::string_view prefix) {
  for (const auto& field : kBackendFields) {
    reg.add(prefixed(prefix, field.name), stats.*(field.member));
  }
}

thermal::BackendCostStats backend_cost_from(const Registry& reg, std::string_view prefix) {
  thermal::BackendCostStats stats;
  for (const auto& field : kBackendFields) {
    stats.*(field.member) = reg.counter(prefixed(prefix, field.name));
  }
  return stats;
}

void contribute(Registry& reg, const core::ScenarioBatchStats& stats,
                std::string_view prefix) {
  for (const auto& field : kBatchFields) {
    reg.add(prefixed(prefix, field.name), stats.*(field.member));
  }
}

void contribute(Registry& reg, const core::InfluenceBuildStats& stats,
                std::string_view prefix) {
  for (const auto& field : kInfluenceFields) {
    reg.add(prefixed(prefix, field.name), stats.*(field.member));
  }
}

core::InfluenceBuildStats influence_build_from(const Registry& reg, std::string_view prefix) {
  core::InfluenceBuildStats stats;
  for (const auto& field : kInfluenceFields) {
    stats.*(field.member) = reg.counter(prefixed(prefix, field.name));
  }
  return stats;
}

void contribute(Registry& reg, const spice::SolveReport& report, std::string_view prefix) {
  reg.add(prefixed(prefix, "newton_iterations"), report.newton_iterations);
  reg.add(prefixed(prefix, "homotopy_steps"), report.homotopy_steps);
  reg.add(prefixed(prefix, "rungs"), static_cast<long long>(report.rungs.size()));
  reg.add(prefixed(prefix, "cold_restarts"), report.cold_restart ? 1 : 0);
}

std::vector<std::string> guarded_counter_names() {
  std::vector<std::string> names;
  for (const auto& field : kBackendFields) {
    if (field.guarded) names.emplace_back(field.name);
  }
  for (const char* name : kGuardedBenchCounters) names.emplace_back(name);
  return names;
}

}  // namespace ptherm::telemetry
