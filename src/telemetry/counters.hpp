// The ONE counter catalog: every per-subsystem stat struct registers into
// the telemetry registry through the descriptor tables here, under the
// "subsystem/metric" naming scheme ("backend/cg_iterations",
// "spice/newton_iterations"). Merging stat sets is contribute() twice into
// one registry and reading the struct back (backend_cost_from) — the
// hand-copied field merges this replaces lived in ScenarioBatch::cost_stats,
// run_rtm, and influence_stats_from, and each was one forgotten field away
// from silently dropping a counter. Here, a static_assert pins each struct's
// size to its table, so an unnamed field fails the build.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/influence.hpp"
#include "core/scenario_batch.hpp"
#include "spice/report.hpp"
#include "telemetry/registry.hpp"
#include "thermal/backend.hpp"

namespace ptherm::telemetry {

/// One thermal::BackendCostStats field: its registry name (bare, prefixed
/// per contribute call) and whether the perf trajectory guards it (a
/// deterministic solver-effort counter whose increase at fixed work is a
/// regression — what bench/compare_bench.py fails on).
struct BackendCounterField {
  const char* name;
  long long thermal::BackendCostStats::* member;
  bool guarded;
};

/// The full BackendCostStats catalog, in declaration order.
[[nodiscard]] std::span<const BackendCounterField> backend_counter_fields();

/// Adds every BackendCostStats field to `reg` as `<prefix><field name>`.
void contribute(Registry& reg, const thermal::BackendCostStats& stats,
                std::string_view prefix = "backend/");

/// Reads a BackendCostStats back out of `reg` (absent counters read 0) —
/// the inverse of contribute over the same catalog, so
/// backend_cost_from(contribute(a) + contribute(b)) IS the field-complete
/// merge of a and b.
[[nodiscard]] thermal::BackendCostStats backend_cost_from(
    const Registry& reg, std::string_view prefix = "backend/");

/// Batch-engine counters contribute under the SAME backend/ names their
/// BackendCostStats mirror fields carry, so merging batch stats onto backend
/// stats is two contributes into one registry.
void contribute(Registry& reg, const core::ScenarioBatchStats& stats,
                std::string_view prefix = "backend/");

/// Influence-build counters: the influence view is a PROJECTION of the
/// backend counters, so its fields bind to the backend names
/// (columns <-> influence_columns) and default to the backend/ prefix.
void contribute(Registry& reg, const core::InfluenceBuildStats& stats,
                std::string_view prefix = "backend/");
[[nodiscard]] core::InfluenceBuildStats influence_build_from(
    const Registry& reg, std::string_view prefix = "backend/");

/// SPICE solve counters from a SolveReport: spice/newton_iterations,
/// spice/homotopy_steps, spice/rungs, spice/cold_restarts.
void contribute(Registry& reg, const spice::SolveReport& report,
                std::string_view prefix = "spice/");

/// Bare names of every guarded solver-effort counter (backend catalog fields
/// flagged `guarded` plus the bench-level aggregates the speed benches
/// export). bench/run_bench.sh embeds this list into BENCH_<label>.json and
/// compare_bench.py guards exactly these keys — a new guarded counter is one
/// catalog entry, never a hand-edit of the Python tuple.
[[nodiscard]] std::vector<std::string> guarded_counter_names();

}  // namespace ptherm::telemetry
