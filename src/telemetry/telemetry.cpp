#include "telemetry/telemetry.hpp"

#include <chrono>
#include <sstream>

namespace ptherm::telemetry {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {}

void Tracer::record(const char* name, std::uint32_t tid, std::int64_t start_ns,
                    std::int64_t duration_ns) {
  const std::scoped_lock lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back({name, tid, start_ns, duration_ns});
}

std::vector<SpanEvent> Tracer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

std::size_t Tracer::dropped_events() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void Tracer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

void set_tracer(Tracer* tracer) { g_tracer.store(tracer, std::memory_order_release); }

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_relaxed); }

std::uint32_t current_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::int64_t monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Span names are "subsystem/what" literals under library control, but the
/// writer still escapes the JSON-significant characters so a hostile name
/// cannot produce an invalid document.
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      constexpr char kHex[] = "0123456789abcdef";
      os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
    } else {
      os << c;
    }
  }
}

/// Timestamps print as integer-nanosecond-exact decimal microseconds
/// (trace-event "ts"/"dur" are microseconds; the fractional part keeps the
/// nanosecond resolution without float formatting nondeterminism).
void write_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) {
    os << '-';
    ns = -ns;
  }
  os << ns / 1000;
  const std::int64_t frac = ns % 1000;
  if (frac != 0) {
    os << '.';
    os << static_cast<char>('0' + frac / 100);
    if (frac % 100 != 0) {
      os << static_cast<char>('0' + (frac / 10) % 10);
      if (frac % 10 != 0) os << static_cast<char>('0' + frac % 10);
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<SpanEvent>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"cat\":\"ptherm\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    write_us(os, e.start_ns);
    os << ",\"dur\":";
    write_us(os, e.duration_ns);
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::ostringstream os;
  write_chrome_trace(os, events);
  return os.str();
}

}  // namespace ptherm::telemetry
