#include "scaling/roadmap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "device/mosfet.hpp"

namespace ptherm::scaling {

std::vector<RoadmapNode> default_roadmap() {
  const double nodes_um[] = {0.8, 0.35, 0.25, 0.18, 0.13, 0.10, 0.07, 0.05, 0.035, 0.025};
  std::vector<RoadmapNode> roadmap;
  roadmap.reserve(std::size(nodes_um));
  for (double f : nodes_um) {
    RoadmapNode n;
    n.feature_um = f;
    n.tech = device::Technology::scaled_node(f);

    // Density: anchored at ~250k gates for the 0.8 um generation, growing a
    // bit slower than quadratically (die cost limits) to ~1.3e8 gates at
    // 25 nm.
    n.gate_count = 2.5e5 * std::pow(0.8 / f, 1.8);

    // Frequency: ~66 MHz at 0.8 um growing faster than 1/f (gate delay plus
    // deeper pipelines), hitting the power-wall plateau at ~3.5 GHz — this
    // saturation is what bends the dynamic-power curve flat at the end of
    // Fig. 1.
    n.frequency = std::min(66e6 * std::pow(0.8 / f, 1.8), 3.5e9);

    n.activity = 0.1;

    // Average switched capacitance per gate: device caps from the node's
    // oxide plus a wire term that shrinks more slowly (pitch scales, length
    // per gate does not fully).
    const double w_avg = 3.0 * n.tech.w_min;
    const double c_device = 6.0 * n.tech.cox_area * w_avg * n.tech.l_drawn;
    const double c_wire = 8e-15 * std::pow(f / 0.13, 0.8);
    n.c_per_gate = c_device + c_wire;

    // Three average OFF paths facing the rails per gate (complementary pairs
    // plus internal nodes) — calibrated so the 100 C static share at the
    // last node matches Fig. 1's roughly one-third.
    n.leak_paths_per_gate = 3.0;
    n.leak_width = 2.0 * n.tech.w_min;
    roadmap.push_back(std::move(n));
  }
  return roadmap;
}

NodePower node_power(const RoadmapNode& node, double temp) {
  PTHERM_REQUIRE(temp > 0.0, "node_power: absolute temperature required");
  NodePower p;
  p.dynamic = node.gate_count * node.activity * node.frequency * node.c_per_gate *
              node.tech.vdd * node.tech.vdd;
  const double i_off_n =
      device::off_current(node.tech, device::MosType::Nmos, node.leak_width,
                          node.tech.l_drawn, temp);
  const double i_off_p =
      device::off_current(node.tech, device::MosType::Pmos, node.leak_width,
                          node.tech.l_drawn, temp);
  // Half the OFF paths block through nMOS, half through pMOS on average.
  const double i_gate = 0.5 * node.leak_paths_per_gate * (i_off_n + i_off_p);
  p.stat = node.gate_count * i_gate * node.tech.vdd;
  return p;
}

}  // namespace ptherm::scaling
