// Technology-scaling roadmap behind the reproduction of Fig. 1 (dynamic vs
// static power across process generations at several temperatures).
//
// The paper reprints Duarte et al.'s projection; the underlying data is not
// published, so we regenerate the trend from first principles: a die with
// ITRS-flavoured density/frequency growth, dynamic power from
// alpha*f*C*VDD^2 per gate, and static power from this library's own leakage
// model evaluated on the scaled technology of each node. Absolute watts are
// calibration (documented in-line); the reproduced claims are the *shape* —
// dynamic power growing then flattening, static power exploding with an
// exponential temperature dependence, and the high-temperature static curve
// overtaking dynamic at the end of the roadmap.
#pragma once

#include <vector>

#include "device/tech.hpp"

namespace ptherm::scaling {

struct RoadmapNode {
  double feature_um = 0.0;       ///< node name, microns (e.g. 0.13)
  device::Technology tech;       ///< electrical parameters for the node
  double gate_count = 0.0;       ///< logic gates on the die
  double frequency = 0.0;        ///< clock [Hz]
  double activity = 0.1;         ///< switching activity
  double c_per_gate = 0.0;       ///< average switched capacitance per gate [F]
  double leak_paths_per_gate = 2.0;  ///< average OFF devices facing VDD
  double leak_width = 0.0;       ///< average OFF-path width [m]
};

/// The ten nodes of Fig. 1: 0.8, 0.35, 0.25, 0.18, 0.13, 0.10, 0.07, 0.05,
/// 0.035, 0.025 um.
[[nodiscard]] std::vector<RoadmapNode> default_roadmap();

struct NodePower {
  double dynamic = 0.0;  ///< [W]
  double stat = 0.0;     ///< [W] at the requested temperature
};

/// Die power at absolute temperature `temp` [K].
[[nodiscard]] NodePower node_power(const RoadmapNode& node, double temp);

}  // namespace ptherm::scaling
