#include "netlist/cells.hpp"

#include "common/error.hpp"

namespace ptherm::netlist {

using leakage::GateTopology;
using leakage::SpNetwork;

CellSizing CellSizing::for_tech(const device::Technology& tech) {
  CellSizing s;
  s.wn_unit = 2.0 * tech.w_min;
  // Balanced drive: wp/wn = kp_n / kp_p.
  s.wp_unit = s.wn_unit * (tech.kp_n / tech.kp_p);
  s.length = tech.l_drawn;
  return s;
}

GateTopology make_inverter(const CellSizing& s) {
  GateTopology g;
  g.name = "inv";
  g.pull_down = SpNetwork::device(0, s.wn_unit);
  g.pull_up = SpNetwork::device(0, s.wp_unit);
  g.length = s.length;
  return g;
}

GateTopology make_nand(int inputs, const CellSizing& s) {
  PTHERM_REQUIRE(inputs >= 2 && inputs <= 8, "make_nand: 2..8 inputs");
  GateTopology g;
  g.name = "nand" + std::to_string(inputs);
  std::vector<SpNetwork> series_n;
  std::vector<SpNetwork> par_p;
  for (int i = 0; i < inputs; ++i) {
    // Series nMOS upsized by the stack depth; ordering: input 0 nearest GND.
    series_n.push_back(SpNetwork::device(i, s.wn_unit * inputs));
    par_p.push_back(SpNetwork::device(i, s.wp_unit));
  }
  g.pull_down = SpNetwork::series(std::move(series_n));
  g.pull_up = SpNetwork::parallel(std::move(par_p));
  g.length = s.length;
  return g;
}

GateTopology make_nor(int inputs, const CellSizing& s) {
  PTHERM_REQUIRE(inputs >= 2 && inputs <= 8, "make_nor: 2..8 inputs");
  GateTopology g;
  g.name = "nor" + std::to_string(inputs);
  std::vector<SpNetwork> par_n;
  std::vector<SpNetwork> series_p;
  for (int i = 0; i < inputs; ++i) {
    par_n.push_back(SpNetwork::device(i, s.wn_unit));
    // Series pMOS upsized; ordering: last input nearest VDD (rail-side first
    // in the series vector, so reverse index order puts input 0 at the
    // output end — the usual layout choice; leakage is order-aware).
    series_p.push_back(SpNetwork::device(inputs - 1 - i, s.wp_unit * inputs));
  }
  g.pull_down = SpNetwork::parallel(std::move(par_n));
  g.pull_up = SpNetwork::series(std::move(series_p));
  g.length = s.length;
  return g;
}

GateTopology make_aoi21(const CellSizing& s) {
  GateTopology g;
  g.name = "aoi21";
  // Pull-down: (a AND b) OR c  ->  series(a,b) parallel c.
  g.pull_down = SpNetwork::parallel({
      SpNetwork::series({SpNetwork::device(0, 2.0 * s.wn_unit),
                         SpNetwork::device(1, 2.0 * s.wn_unit)}),
      SpNetwork::device(2, s.wn_unit),
  });
  // Pull-up (dual): (a OR b) AND c -> series(parallel(a,b), c); c nearest
  // the output, rail-side first means parallel block first.
  g.pull_up = SpNetwork::series({
      SpNetwork::parallel({SpNetwork::device(0, 2.0 * s.wp_unit),
                           SpNetwork::device(1, 2.0 * s.wp_unit)}),
      SpNetwork::device(2, 2.0 * s.wp_unit),
  });
  g.length = s.length;
  return g;
}

GateTopology make_aoi22(const CellSizing& s) {
  GateTopology g;
  g.name = "aoi22";
  g.pull_down = SpNetwork::parallel({
      SpNetwork::series({SpNetwork::device(0, 2.0 * s.wn_unit),
                         SpNetwork::device(1, 2.0 * s.wn_unit)}),
      SpNetwork::series({SpNetwork::device(2, 2.0 * s.wn_unit),
                         SpNetwork::device(3, 2.0 * s.wn_unit)}),
  });
  g.pull_up = SpNetwork::series({
      SpNetwork::parallel({SpNetwork::device(0, 2.0 * s.wp_unit),
                           SpNetwork::device(1, 2.0 * s.wp_unit)}),
      SpNetwork::parallel({SpNetwork::device(2, 2.0 * s.wp_unit),
                           SpNetwork::device(3, 2.0 * s.wp_unit)}),
  });
  g.length = s.length;
  return g;
}

GateTopology make_oai21(const CellSizing& s) {
  GateTopology g;
  g.name = "oai21";
  // Pull-down: (a OR b) AND c.
  g.pull_down = SpNetwork::series({
      SpNetwork::parallel({SpNetwork::device(0, 2.0 * s.wn_unit),
                           SpNetwork::device(1, 2.0 * s.wn_unit)}),
      SpNetwork::device(2, 2.0 * s.wn_unit),
  });
  // Pull-up (dual): (a AND b) OR c.
  g.pull_up = SpNetwork::parallel({
      SpNetwork::series({SpNetwork::device(0, 2.0 * s.wp_unit),
                         SpNetwork::device(1, 2.0 * s.wp_unit)}),
      SpNetwork::device(2, s.wp_unit),
  });
  g.length = s.length;
  return g;
}

GateTopology make_oai22(const CellSizing& s) {
  GateTopology g;
  g.name = "oai22";
  g.pull_down = SpNetwork::series({
      SpNetwork::parallel({SpNetwork::device(0, 2.0 * s.wn_unit),
                           SpNetwork::device(1, 2.0 * s.wn_unit)}),
      SpNetwork::parallel({SpNetwork::device(2, 2.0 * s.wn_unit),
                           SpNetwork::device(3, 2.0 * s.wn_unit)}),
  });
  g.pull_up = SpNetwork::parallel({
      SpNetwork::series({SpNetwork::device(0, 2.0 * s.wp_unit),
                         SpNetwork::device(1, 2.0 * s.wp_unit)}),
      SpNetwork::series({SpNetwork::device(2, 2.0 * s.wp_unit),
                         SpNetwork::device(3, 2.0 * s.wp_unit)}),
  });
  g.length = s.length;
  return g;
}

CellLibrary::CellLibrary(const device::Technology& tech)
    : sizing_(CellSizing::for_tech(tech)) {
  auto add = [&](leakage::GateTopology g) {
    names_.push_back(g.name);
    cells_.push_back(std::make_shared<const GateTopology>(std::move(g)));
  };
  add(make_inverter(sizing_));
  for (int n = 2; n <= 4; ++n) add(make_nand(n, sizing_));
  for (int n = 2; n <= 4; ++n) add(make_nor(n, sizing_));
  add(make_aoi21(sizing_));
  add(make_aoi22(sizing_));
  add(make_oai21(sizing_));
  add(make_oai22(sizing_));
}

std::shared_ptr<const GateTopology> CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return cells_[i];
  }
  throw PreconditionError("CellLibrary: unknown cell: " + name);
}

}  // namespace ptherm::netlist
