// Gate-level netlist: instances of library cells with static input states,
// plus circuit-level leakage statistics (per-vector, Monte-Carlo over random
// states, min/max vectors) — the "hundreds of millions of transistors"
// use-case of the paper's introduction, at library scale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "device/variation.hpp"
#include "netlist/cells.hpp"

namespace ptherm::netlist {

struct Instance {
  std::string name;
  std::shared_ptr<const leakage::GateTopology> cell;
  leakage::InputVector inputs;  ///< current static state
};

class Netlist {
 public:
  void add_instance(std::string name, std::shared_ptr<const leakage::GateTopology> cell,
                    leakage::InputVector inputs);

  [[nodiscard]] const std::vector<Instance>& instances() const noexcept { return instances_; }
  [[nodiscard]] std::size_t size() const noexcept { return instances_.size(); }
  [[nodiscard]] int transistor_count() const;

  /// Total OFF current with the instances' current input states [A].
  [[nodiscard]] double total_off_current(const device::Technology& tech, double temp,
                                         double vb = 0.0) const;
  /// total_off_current * VDD [W].
  [[nodiscard]] double total_static_power(const device::Technology& tech, double temp,
                                          double vb = 0.0) const;

  /// Randomizes every instance's input state.
  void randomize_states(Rng& rng);

  /// Monte-Carlo leakage statistics over `samples` random state assignments.
  struct LeakageStats {
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] LeakageStats monte_carlo_leakage(const device::Technology& tech, double temp,
                                                 int samples, Rng& rng, double vb = 0.0) const;

  /// Replaces the static input state of instance `i`.
  void set_instance_inputs(std::size_t i, leakage::InputVector inputs);

 private:
  std::vector<Instance> instances_;
};

/// Builds a random netlist drawing uniformly from the library cells, with
/// random (valid) static input states. Used by synthetic workloads.
[[nodiscard]] Netlist make_random_netlist(const CellLibrary& lib, int instances, Rng& rng);

/// Standby-vector optimization (the application behind baseline [8]): sets
/// every instance to its minimum-leakage input state at `temp` — exact when
/// the standby vector of each gate can be forced independently (sleep
/// vectors at latch boundaries). Returns the achieved total OFF current.
double optimize_standby_vectors(Netlist& netlist, const device::Technology& tech,
                                double temp, double vb = 0.0);

/// Variation-aware leakage: Monte Carlo over per-gate Gaussian VT0 offsets
/// with fixed input states. Returns sample statistics of the total OFF
/// current; the mean exceeds the nominal by ~exp(s^2/2) (lognormal penalty,
/// see device::VariationModel). Sample `s` draws from the dedicated stream
/// Rng::stream(seed, s), so each sample is bitwise identical whether drawn
/// alone or inside any batch size — one shared sequential Rng would couple
/// every sample to the count and order of the ones before it.
struct VariationStats {
  double nominal = 0.0;  ///< total at zero variation [A]
  double mean = 0.0;
  double stddev = 0.0;
  double p95 = 0.0;      ///< 95th percentile of the samples [A]
};
VariationStats variation_leakage(const Netlist& netlist, const device::Technology& tech,
                                 const device::VariationModel& var, double temp,
                                 int samples, std::uint64_t seed, double vb = 0.0);

}  // namespace ptherm::netlist
