#include "netlist/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::netlist {

void Netlist::add_instance(std::string name,
                           std::shared_ptr<const leakage::GateTopology> cell,
                           leakage::InputVector inputs) {
  PTHERM_REQUIRE(cell != nullptr, "add_instance: null cell");
  PTHERM_REQUIRE(static_cast<int>(inputs.size()) >= cell->input_count(),
                 "add_instance: input vector too short for " + name);
  instances_.push_back({std::move(name), std::move(cell), std::move(inputs)});
}

int Netlist::transistor_count() const {
  int count = 0;
  for (const auto& inst : instances_) count += inst.cell->device_count();
  return count;
}

double Netlist::total_off_current(const device::Technology& tech, double temp,
                                  double vb) const {
  double sum = 0.0;
  for (const auto& inst : instances_) {
    sum += leakage::gate_static(tech, *inst.cell, inst.inputs, temp, vb).i_off;
  }
  return sum;
}

double Netlist::total_static_power(const device::Technology& tech, double temp,
                                   double vb) const {
  return total_off_current(tech, temp, vb) * tech.vdd;
}

void Netlist::randomize_states(Rng& rng) {
  for (auto& inst : instances_) {
    for (std::size_t b = 0; b < inst.inputs.size(); ++b) inst.inputs[b] = rng.bernoulli();
  }
}

Netlist::LeakageStats Netlist::monte_carlo_leakage(const device::Technology& tech, double temp,
                                                   int samples, Rng& rng, double vb) const {
  PTHERM_REQUIRE(samples >= 1, "monte_carlo_leakage: need at least one sample");
  Netlist scratch = *this;  // instance states are mutated per sample
  LeakageStats stats;
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    scratch.randomize_states(rng);
    const double i = scratch.total_off_current(tech, temp, vb);
    sum += i;
    sum_sq += i * i;
    stats.min = std::min(stats.min, i);
    stats.max = std::max(stats.max, i);
  }
  stats.mean = sum / samples;
  const double var = std::max(0.0, sum_sq / samples - stats.mean * stats.mean);
  stats.stddev = std::sqrt(var);
  return stats;
}

void Netlist::set_instance_inputs(std::size_t i, leakage::InputVector inputs) {
  PTHERM_REQUIRE(i < instances_.size(), "set_instance_inputs: index out of range");
  PTHERM_REQUIRE(static_cast<int>(inputs.size()) >= instances_[i].cell->input_count(),
                 "set_instance_inputs: input vector too short");
  instances_[i].inputs = std::move(inputs);
}

double optimize_standby_vectors(Netlist& netlist, const device::Technology& tech,
                                double temp, double vb) {
  double total = 0.0;
  for (std::size_t i = 0; i < netlist.size(); ++i) {
    const auto& inst = netlist.instances()[i];
    const auto summary = leakage::gate_leakage_summary(tech, *inst.cell, temp, vb);
    netlist.set_instance_inputs(i, summary.min_vector);
    total += summary.min_i_off;
  }
  return total;
}

VariationStats variation_leakage(const Netlist& netlist, const device::Technology& tech,
                                 const device::VariationModel& var, double temp,
                                 int samples, std::uint64_t seed, double vb) {
  PTHERM_REQUIRE(samples >= 1, "variation_leakage: need at least one sample");
  VariationStats stats;
  // Per-instance nominal currents are sampled-state invariant: compute once.
  std::vector<double> nominal;
  nominal.reserve(netlist.size());
  for (const auto& inst : netlist.instances()) {
    nominal.push_back(leakage::gate_static(tech, *inst.cell, inst.inputs, temp, vb).i_off);
    stats.nominal += nominal.back();
  }
  std::vector<double> totals;
  totals.reserve(samples);
  double sum = 0.0, sum_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    // Per-sample stream: sample s never depends on how many samples precede it.
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(s));
    double total = 0.0;
    for (double i_nom : nominal) {
      total += i_nom * var.leakage_multiplier(tech, var.sample_delta_vt0(rng), temp);
    }
    totals.push_back(total);
    sum += total;
    sum_sq += total * total;
  }
  stats.mean = sum / samples;
  stats.stddev = std::sqrt(std::max(0.0, sum_sq / samples - stats.mean * stats.mean));
  std::sort(totals.begin(), totals.end());
  stats.p95 = totals[static_cast<std::size_t>(0.95 * (samples - 1))];
  return stats;
}

Netlist make_random_netlist(const CellLibrary& lib, int instances, Rng& rng) {
  PTHERM_REQUIRE(instances >= 0, "make_random_netlist: negative count");
  Netlist nl;
  const auto& names = lib.names();
  for (int i = 0; i < instances; ++i) {
    const auto cell = lib.find(names[rng.uniform_index(names.size())]);
    leakage::InputVector inputs(static_cast<std::size_t>(cell->input_count()));
    for (std::size_t b = 0; b < inputs.size(); ++b) inputs[b] = rng.bernoulli();
    nl.add_instance("u" + std::to_string(i), cell, std::move(inputs));
  }
  return nl;
}

}  // namespace ptherm::netlist
