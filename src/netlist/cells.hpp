// Standard-cell topologies as series-parallel networks. Sizing follows the
// usual equal-drive rule: devices in a series stack are upsized by the stack
// depth so the worst-case pull matches the reference inverter.
#pragma once

#include <memory>

#include "device/tech.hpp"
#include "leakage/gate.hpp"

namespace ptherm::netlist {

/// Reference inverter sizing for a technology: wn = 2 * w_min,
/// wp = beta * wn with beta from the kp ratio (balanced rise/fall).
struct CellSizing {
  double wn_unit = 0.0;  ///< unit nMOS width [m]
  double wp_unit = 0.0;  ///< unit pMOS width [m]
  double length = 0.0;   ///< channel length [m]

  static CellSizing for_tech(const device::Technology& tech);
};

/// Builders return complete complementary gates. Input indices are 0-based
/// and consistent between the two networks.
[[nodiscard]] leakage::GateTopology make_inverter(const CellSizing& s);
[[nodiscard]] leakage::GateTopology make_nand(int inputs, const CellSizing& s);
[[nodiscard]] leakage::GateTopology make_nor(int inputs, const CellSizing& s);
/// AOI21: out = !(a*b + c) — inputs {0,1} AND-ed, input 2 parallel.
[[nodiscard]] leakage::GateTopology make_aoi21(const CellSizing& s);
/// AOI22: out = !(a*b + c*d).
[[nodiscard]] leakage::GateTopology make_aoi22(const CellSizing& s);
/// OAI21: out = !((a+b) * c).
[[nodiscard]] leakage::GateTopology make_oai21(const CellSizing& s);
/// OAI22: out = !((a+b) * (c+d)).
[[nodiscard]] leakage::GateTopology make_oai22(const CellSizing& s);

/// The whole library keyed by conventional names (inv, nand2..nand4,
/// nor2..nor4, aoi21, aoi22, oai21, oai22).
class CellLibrary {
 public:
  explicit CellLibrary(const device::Technology& tech);

  [[nodiscard]] std::shared_ptr<const leakage::GateTopology> find(
      const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }
  [[nodiscard]] const CellSizing& sizing() const noexcept { return sizing_; }

 private:
  CellSizing sizing_;
  std::vector<std::string> names_;
  std::vector<std::shared_ptr<const leakage::GateTopology>> cells_;
};

}  // namespace ptherm::netlist
