#include "numerics/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::numerics {

namespace {
void check_grid(const std::vector<double>& xs, const std::vector<double>& ys) {
  PTHERM_REQUIRE(xs.size() == ys.size(), "interp: x/y size mismatch");
  PTHERM_REQUIRE(xs.size() >= 2, "interp: need at least two points");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    PTHERM_REQUIRE(xs[i] > xs[i - 1], "interp: abscissae must be strictly increasing");
  }
}

std::size_t find_interval(const std::vector<double>& xs, double x) {
  // Index i such that xs[i] <= x < xs[i+1], clamped to valid segments.
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  if (it == xs.begin()) return 0;
  std::size_t i = static_cast<std::size_t>(it - xs.begin()) - 1;
  return std::min(i, xs.size() - 2);
}
}  // namespace

LinearInterpolator::LinearInterpolator(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check_grid(xs_, ys_);
}

double LinearInterpolator::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = find_interval(xs_, x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

PchipInterpolator::PchipInterpolator(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  check_grid(xs_, ys_);
  const std::size_t n = xs_.size();
  std::vector<double> h(n - 1), delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = xs_[i + 1] - xs_[i];
    delta[i] = (ys_[i + 1] - ys_[i]) / h[i];
  }
  slopes_.assign(n, 0.0);
  // Fritsch-Carlson: harmonic-mean slopes at interior points where the data
  // is locally monotone, zero at local extrema; one-sided at the ends.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      slopes_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  auto end_slope = [](double h0, double h1, double d0, double d1) {
    double s = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (s * d0 <= 0.0) s = 0.0;
    else if (d0 * d1 < 0.0 && std::abs(s) > 3.0 * std::abs(d0)) s = 3.0 * d0;
    return s;
  };
  slopes_[0] = (n == 2) ? delta[0] : end_slope(h[0], h[1], delta[0], delta[1]);
  slopes_[n - 1] = (n == 2) ? delta[n - 2]
                            : end_slope(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
}

double PchipInterpolator::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = find_interval(xs_, x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * slopes_[i] + h01 * ys_[i + 1] + h11 * h * slopes_[i + 1];
}

}  // namespace ptherm::numerics
