#include "numerics/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ptherm::numerics {

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

void SparseBuilder::add(std::size_t row, std::size_t col, double value) {
  PTHERM_REQUIRE(row < rows_ && col < cols_, "sparse entry out of range");
  if (value != 0.0) entries_.push_back({row, col, value});
}

CsrMatrix::CsrMatrix(const SparseBuilder& builder)
    : rows_(builder.rows()), cols_(builder.cols()) {
  const auto& trips = builder.triplets();
  // Sort indices by (row, col) to merge duplicates.
  std::vector<std::size_t> order(trips.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (trips[a].row != trips[b].row) return trips[a].row < trips[b].row;
    return trips[a].col < trips[b].col;
  });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(trips.size());
  values_.reserve(trips.size());
  std::size_t i = 0;
  while (i < order.size()) {
    const auto& first = trips[order[i]];
    double sum = first.value;
    std::size_t j = i + 1;
    while (j < order.size() && trips[order[j]].row == first.row &&
           trips[order[j]].col == first.col) {
      sum += trips[order[j]].value;
      ++j;
    }
    col_idx_.push_back(first.col);
    values_.push_back(sum);
    ++row_ptr_[first.row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  PTHERM_REQUIRE(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  multiply(x, y);
  return y;
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) d[r] = values_[k];
    }
  }
  return d;
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& opts, std::span<const double> x0) {
  PTHERM_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix");
  PTHERM_REQUIRE(b.size() == a.rows(), "CG rhs size mismatch");
  const std::size_t n = a.rows();
  CgResult result;
  result.x.assign(n, 0.0);
  if (!x0.empty()) {
    PTHERM_REQUIRE(x0.size() == n, "CG warm-start size mismatch");
    std::copy(x0.begin(), x0.end(), result.x.begin());
  }

  std::vector<double> diag = a.diagonal();
  for (double& d : diag) {
    PTHERM_REQUIRE(d > 0.0, "CG: non-positive diagonal (matrix not SPD?)");
    d = 1.0 / d;
  }

  const double norm_b = std::sqrt(std::inner_product(b.begin(), b.end(), b.begin(), 0.0));
  if (norm_b == 0.0) {
    std::fill(result.x.begin(), result.x.end(), 0.0);
    result.converged = true;
    return result;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(result.x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  // Warm starts can land at (or on top of) the solution already.
  {
    const double norm_r = std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
    result.residual = norm_r / norm_b;
    if (result.residual < opts.tolerance) {
      result.converged = true;
      return result;
    }
  }
  for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
  p = z;
  double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double p_ap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (p_ap <= 0.0) break;  // loss of positive-definiteness
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) result.x[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    const double norm_r = std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
    result.iterations = it + 1;
    result.residual = norm_r / norm_b;
    if (result.residual < opts.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
    const double rz_new = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace ptherm::numerics
