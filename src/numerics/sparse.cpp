#include "numerics/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "common/error.hpp"

namespace ptherm::numerics {

namespace {
constexpr std::size_t kCsrIndexMax =
    static_cast<std::size_t>(std::numeric_limits<CsrIndex>::max());
}  // namespace

SparseBuilder::SparseBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  PTHERM_REQUIRE(rows <= kCsrIndexMax && cols <= kCsrIndexMax,
                 "sparse matrix dimensions overflow the 32-bit CSR index");
}

void SparseBuilder::add(std::size_t row, std::size_t col, double value) {
  PTHERM_REQUIRE(row < rows_ && col < cols_, "sparse entry out of range");
  if (value != 0.0) {
    PTHERM_REQUIRE(entries_.size() < kCsrIndexMax,
                   "sparse triplet count overflows the 32-bit CSR index");
    entries_.push_back({row, col, value});
  }
}

CsrMatrix::CsrMatrix(const SparseBuilder& builder)
    : rows_(builder.rows()), cols_(builder.cols()) {
  const auto& trips = builder.triplets();
  // Sort indices by (row, col) to merge duplicates.
  std::vector<std::size_t> order(trips.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (trips[a].row != trips[b].row) return trips[a].row < trips[b].row;
    return trips[a].col < trips[b].col;
  });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(trips.size());
  values_.reserve(trips.size());
  std::size_t i = 0;
  while (i < order.size()) {
    const auto& first = trips[order[i]];
    double sum = first.value;
    std::size_t j = i + 1;
    while (j < order.size() && trips[order[j]].row == first.row &&
           trips[order[j]].col == first.col) {
      sum += trips[order[j]].value;
      ++j;
    }
    col_idx_.push_back(static_cast<CsrIndex>(first.col));
    values_.push_back(sum);
    ++row_ptr_[first.row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  PTHERM_REQUIRE(x.size() == cols_ && y.size() == rows_, "spmv size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (CsrIndex k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
    }
    y[r] = sum;
  }
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  multiply(x, y);
  return y;
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (CsrIndex k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (static_cast<std::size_t>(col_idx_[k]) == r) d[r] = values_[k];
    }
  }
  return d;
}

IncompleteCholesky::IncompleteCholesky(const CsrMatrix& a) {
  PTHERM_REQUIRE(a.rows() == a.cols(), "IC(0) requires a square matrix");
  const CsrIndex n = static_cast<CsrIndex>(a.rows());
  const auto arp = a.row_ptr();
  const auto aci = a.col_indices();
  const auto av = a.values();

  // Copy the lower triangle (diagonal last — CSR columns are sorted).
  row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (CsrIndex i = 0; i < n; ++i) {
    for (CsrIndex k = arp[i]; k < arp[i + 1]; ++k) {
      if (aci[k] <= i) ++row_ptr_[i + 1];
    }
  }
  for (CsrIndex i = 0; i < n; ++i) row_ptr_[i + 1] += row_ptr_[i];
  col_idx_.resize(static_cast<std::size_t>(row_ptr_[n]));
  values_.resize(static_cast<std::size_t>(row_ptr_[n]));
  for (CsrIndex i = 0; i < n; ++i) {
    CsrIndex out = row_ptr_[i];
    bool has_diag = false;
    for (CsrIndex k = arp[i]; k < arp[i + 1]; ++k) {
      if (aci[k] > i) break;
      col_idx_[out] = aci[k];
      values_[out] = av[k];
      has_diag = has_diag || aci[k] == i;
      ++out;
    }
    PTHERM_REQUIRE(has_diag && values_[row_ptr_[i + 1] - 1] > 0.0,
                   "IC(0): row lacks a positive diagonal (matrix not SPD?)");
  }

  // Up-looking IC(0): L(i,k) = (A(i,k) - sum_j L(i,j) L(k,j)) / L(k,k) over
  // the shared sparsity j < k, then the diagonal picks up the remainder. A
  // two-pointer merge over the (sorted) partial rows evaluates each inner
  // product; stencil rows hold <= 4 lower entries so the cost is linear.
  for (CsrIndex i = 0; i < n; ++i) {
    const CsrIndex begin = row_ptr_[i];
    const CsrIndex diag = row_ptr_[i + 1] - 1;
    for (CsrIndex ik = begin; ik < diag; ++ik) {
      const CsrIndex k = col_idx_[ik];
      double s = values_[ik];
      CsrIndex pi = begin;
      CsrIndex pk = row_ptr_[k];
      const CsrIndex k_diag = row_ptr_[k + 1] - 1;
      while (pi < ik && pk < k_diag) {
        if (col_idx_[pi] == col_idx_[pk]) {
          s -= values_[pi] * values_[pk];
          ++pi;
          ++pk;
        } else if (col_idx_[pi] < col_idx_[pk]) {
          ++pi;
        } else {
          ++pk;
        }
      }
      values_[ik] = s / values_[k_diag];
    }
    double d = values_[diag];
    for (CsrIndex ik = begin; ik < diag; ++ik) d -= values_[ik] * values_[ik];
    PTHERM_REQUIRE(d > 0.0, "IC(0) breakdown: non-positive pivot (matrix not SPD enough)");
    values_[diag] = std::sqrt(d);
  }
}

void IncompleteCholesky::apply(std::span<const double> r, std::span<double> z) const {
  const std::size_t n = dimension();
  PTHERM_REQUIRE(r.size() == n && z.size() == n, "IC apply size mismatch");
  // Forward solve L y = r (y stored in z).
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    const CsrIndex diag = row_ptr_[i + 1] - 1;
    for (CsrIndex k = row_ptr_[i]; k < diag; ++k) {
      s -= values_[k] * z[static_cast<std::size_t>(col_idx_[k])];
    }
    z[i] = s / values_[diag];
  }
  // Backward solve L^T z = y, row-oriented: once z[i] is final, scatter its
  // contribution up the columns of L^T (= rows of L).
  for (std::size_t i = n; i-- > 0;) {
    const CsrIndex diag = row_ptr_[i + 1] - 1;
    z[i] /= values_[diag];
    const double zi = z[i];
    for (CsrIndex k = row_ptr_[i]; k < diag; ++k) {
      z[static_cast<std::size_t>(col_idx_[k])] -= values_[k] * zi;
    }
  }
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& opts, std::span<const double> x0,
                            const IncompleteCholesky* ic) {
  PTHERM_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix");
  PTHERM_REQUIRE(b.size() == a.rows(), "CG rhs size mismatch");
  const std::size_t n = a.rows();
  CgResult result;
  result.x.assign(n, 0.0);
  if (!x0.empty()) {
    PTHERM_REQUIRE(x0.size() == n, "CG warm-start size mismatch");
    std::copy(x0.begin(), x0.end(), result.x.begin());
  }

  std::optional<IncompleteCholesky> local_ic;
  if (ic == nullptr && opts.preconditioner == CgPreconditioner::IncompleteCholesky) {
    local_ic.emplace(a);
    ic = &*local_ic;
  }
  PTHERM_REQUIRE(ic == nullptr || ic->dimension() == n, "CG: preconditioner size mismatch");
  // The Jacobi diagonal doubles as the SPD sanity check; the IC constructor
  // performs its own, so skip the O(nnz) extraction when a factor is in use.
  std::vector<double> diag;
  if (ic == nullptr) {
    diag = a.diagonal();
    for (double& d : diag) {
      PTHERM_REQUIRE(d > 0.0, "CG: non-positive diagonal (matrix not SPD?)");
      d = 1.0 / d;
    }
  }
  auto precondition = [&](const std::vector<double>& res, std::vector<double>& out) {
    if (ic != nullptr) {
      ic->apply(res, out);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = diag[i] * res[i];
    }
  };

  const double norm_b = std::sqrt(std::inner_product(b.begin(), b.end(), b.begin(), 0.0));
  if (norm_b == 0.0) {
    std::fill(result.x.begin(), result.x.end(), 0.0);
    result.converged = true;
    return result;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(result.x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  // Warm starts can land at (or on top of) the solution already.
  {
    const double norm_r = std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
    result.residual = norm_r / norm_b;
    if (result.residual < opts.tolerance) {
      result.converged = true;
      return result;
    }
  }
  precondition(r, z);
  p = z;
  double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);

  for (int it = 0; it < opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double p_ap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (p_ap <= 0.0) {
      // Loss of positive-definiteness. The recurrence residual no longer
      // describes result.x, so recompute it from the returned iterate and
      // say what happened instead of silently handing back converged=false.
      result.breakdown = true;
      a.multiply(result.x, ap);
      double nr = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double ri = b[i] - ap[i];
        nr += ri * ri;
      }
      result.residual = std::sqrt(nr) / norm_b;
      return result;
    }
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) result.x[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    const double norm_r = std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
    result.iterations = it + 1;
    result.residual = norm_r / norm_b;
    if (opts.trace) result.residuals.push_back(result.residual);
    if (result.residual < opts.tolerance) {
      result.converged = true;
      return result;
    }
    precondition(r, z);
    const double rz_new = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace ptherm::numerics
