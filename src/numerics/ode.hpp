// ODE integration for thermal transients (self-heating, Fig. 9) and the
// compact-RC network. Two integrators: classic RK4 for smooth nonstiff
// problems and implicit (backward) Euler with a fixed-point inner loop for
// the stiff electro-thermal feedback case.
#pragma once

#include <functional>
#include <vector>

namespace ptherm::numerics {

/// dy/dt = f(t, y) for a vector state.
using OdeRhs = std::function<std::vector<double>(double, const std::vector<double>&)>;

struct OdeSolution {
  std::vector<double> times;
  std::vector<std::vector<double>> states;  ///< states[i] is y(times[i])
};

/// Fixed-step classic Runge-Kutta 4.
OdeSolution rk4(const OdeRhs& f, std::vector<double> y0, double t0, double t1, double dt);

/// Fixed-step backward Euler; the implicit equation is solved by damped
/// fixed-point iteration (adequate for the dissipative thermal systems here).
OdeSolution backward_euler(const OdeRhs& f, std::vector<double> y0, double t0, double t1,
                           double dt, int max_inner_iterations = 50, double tol = 1e-12);

/// Convenience scalar wrappers.
OdeSolution rk4_scalar(const std::function<double(double, double)>& f, double y0, double t0,
                       double t1, double dt);

}  // namespace ptherm::numerics
