// Symmetric tridiagonal eigensolvers: implicit-shift QL for the spectrum
// (no eigenvector accumulation — O(n^2) total), Sturm-sequence bisection
// for just the bottom of the spectrum, plus inverse iteration for the few
// eigenvectors a caller actually needs. This split is what the layered
// thermal solvers want: the z-stack modal reduction solves one small
// tridiagonal eigenproblem per lateral mode but keeps only the handful of
// slowest z-modes, so paying a full spectrum — let alone O(n^3) for an
// eigenvector matrix — per mode would dominate the entire transient setup.
#pragma once

#include <span>
#include <vector>

namespace ptherm::numerics {

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `diag`
/// (n entries) and off-diagonal `off` (n - 1 entries), sorted ascending.
/// Implicit-shift QL; throws ptherm::Error if an eigenvalue fails to
/// converge (does not happen for real symmetric input).
[[nodiscard]] std::vector<double> tridiagonal_eigenvalues(std::span<const double> diag,
                                                          std::span<const double> off);

/// The `count` smallest eigenvalues of the same matrix, sorted ascending,
/// by Sturm-sequence bisection. Each eigenvalue costs O(n) per bisection
/// step and the steps never touch the rest of the spectrum, so this is the
/// right call when only a few bottom modes matter — the layered z-stack
/// reduction asks for modes_z of layered_nz eigenvalues once per lateral
/// mode, where a full QL sweep per mode would dominate transient setup.
[[nodiscard]] std::vector<double> tridiagonal_smallest_eigenvalues(
    std::span<const double> diag, std::span<const double> off, std::size_t count);

/// Unit-norm eigenvector of the same matrix for the (converged) eigenvalue
/// `lambda`, by inverse iteration: factor (T - lambda I) with partial
/// pivoting, iterate from a uniform start, normalize. Eigenvalues of an
/// unreduced symmetric tridiagonal matrix are simple, so the iteration
/// converges in one or two sweeps; the sign is fixed so the first nonzero
/// component is positive (deterministic across platforms).
[[nodiscard]] std::vector<double> tridiagonal_eigenvector(std::span<const double> diag,
                                                          std::span<const double> off,
                                                          double lambda);

}  // namespace ptherm::numerics
