// Sparse linear algebra for the finite-difference thermal solver: COO
// assembly, CSR storage, and a Jacobi-preconditioned conjugate gradient for
// the SPD Laplacian systems that solver produces.
//
// CSR index arrays are 32-bit (`CsrIndex`): the FDM stencil matvec and the
// IC(0) triangular solves are memory-bandwidth bound, and halving the index
// bytes per nonzero is the cheapest bandwidth lever. `SparseBuilder` guards
// the 2^31 dimension/nonzero ceiling with an explicit throw — at 7 nonzeros
// per stencil row that ceiling is a ~300M-cell grid, far beyond what a
// dense influence operator over its blocks could hold anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ptherm::numerics {

/// Index type of the CSR arrays (row pointers and column indices).
using CsrIndex = std::int32_t;

/// Triplet-based builder; duplicate (row, col) entries are summed on build,
/// which is exactly what stencil/stamp assembly wants. Throws
/// ptherm::PreconditionError if the dimensions or the triplet count would
/// overflow the 32-bit CSR index space.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t triplet_count() const noexcept { return entries_.size(); }

  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(const SparseBuilder& builder);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// y = A*x.
  void multiply(std::span<const double> x, std::span<double> y) const;
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Diagonal entries (0 where the row has no diagonal).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Raw CSR arrays (columns sorted ascending within each row); used by
  /// factorizations that must walk the sparsity pattern directly.
  [[nodiscard]] std::span<const CsrIndex> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const CsrIndex> col_indices() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<CsrIndex> row_ptr_;
  std::vector<CsrIndex> col_idx_;
  std::vector<double> values_;
};

/// Zero-fill incomplete Cholesky factorization A ~= L L^T on the lower
/// triangle of A's sparsity pattern. For the M-matrices the FDM thermal
/// stencils produce, IC(0) exists without breakdown (Meijerink & van der
/// Vorst) and cuts PCG iteration counts severalfold versus Jacobi; the
/// constructor throws ptherm::PreconditionError if a pivot is not positive
/// (matrix too indefinite for the incomplete factor).
class IncompleteCholesky {
 public:
  explicit IncompleteCholesky(const CsrMatrix& a);

  /// z = (L L^T)^{-1} r: one forward and one backward triangular solve.
  void apply(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] std::size_t dimension() const noexcept { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }

 private:
  // Lower-triangular factor in CSR; each row's diagonal entry is last.
  std::vector<CsrIndex> row_ptr_;
  std::vector<CsrIndex> col_idx_;
  std::vector<double> values_;
};

enum class CgPreconditioner {
  Jacobi,              ///< diagonal scaling — always applicable to SPD systems
  IncompleteCholesky,  ///< IC(0) — far fewer iterations on FDM stencil matrices
};

struct CgOptions {
  double tolerance = 1e-10;   ///< relative residual ||r||/||b||
  int max_iterations = 10000;
  CgPreconditioner preconditioner = CgPreconditioner::Jacobi;
  /// Record the relative residual after every iteration into
  /// CgResult::residuals (the convergence-trace hook; off by default —
  /// recording only APPENDS, the iteration arithmetic is unchanged).
  bool trace = false;
};

struct CgResult {
  std::vector<double> x;
  double residual = 0.0;  ///< relative residual of the returned x
  int iterations = 0;
  bool converged = false;
  /// The iteration hit a direction with p^T A p <= 0 (matrix not positive
  /// definite) and stopped early; `x` is the last accepted iterate and
  /// `residual` is recomputed from it, not carried over from the recurrence.
  bool breakdown = false;
  /// With CgOptions::trace: the relative residual after each iteration
  /// (residuals.size() == iterations; back() == residual unless breakdown
  /// recomputed it). Empty when tracing is off.
  std::vector<double> residuals;
};

/// Preconditioned CG for SPD systems. `x0` (optional) warm-starts the
/// iteration — the co-simulation loop re-solves nearly identical systems.
/// `ic` (optional) supplies a prebuilt IC(0) factor so callers solving many
/// systems against one matrix pay the factorization once; when it is null and
/// `opts.preconditioner` asks for IncompleteCholesky, a factor is built for
/// this solve.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& opts = {}, std::span<const double> x0 = {},
                            const IncompleteCholesky* ic = nullptr);

}  // namespace ptherm::numerics
