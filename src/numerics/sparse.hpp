// Sparse linear algebra for the finite-difference thermal solver: COO
// assembly, CSR storage, and a Jacobi-preconditioned conjugate gradient for
// the SPD Laplacian systems that solver produces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptherm::numerics {

/// Triplet-based builder; duplicate (row, col) entries are summed on build,
/// which is exactly what stencil/stamp assembly wants.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t triplet_count() const noexcept { return entries_.size(); }

  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept { return entries_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(const SparseBuilder& builder);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// y = A*x.
  void multiply(std::span<const double> x, std::span<double> y) const;
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Diagonal entries (0 where the row has no diagonal).
  [[nodiscard]] std::vector<double> diagonal() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

struct CgOptions {
  double tolerance = 1e-10;   ///< relative residual ||r||/||b||
  int max_iterations = 10000;
};

struct CgResult {
  std::vector<double> x;
  double residual = 0.0;  ///< final relative residual
  int iterations = 0;
  bool converged = false;
};

/// Jacobi-preconditioned CG for SPD systems. `x0` (optional) warm-starts the
/// iteration — the co-simulation loop re-solves nearly identical systems.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            const CgOptions& opts = {}, std::span<const double> x0 = {});

}  // namespace ptherm::numerics
