#include "numerics/quadrature.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::numerics {

namespace {

struct SimpsonState {
  const std::function<double(double)>* f = nullptr;
  QuadratureOptions opts;
  long evaluations = 0;
  bool converged = true;
};

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(SimpsonState& st, double a, double b, double fa, double fm, double fb,
                     double whole, int depth, double tol) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = (*st.f)(lm);
  const double frm = (*st.f)(rm);
  st.evaluations += 2;
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth >= st.opts.max_depth) {
    st.converged = false;
    return left + right + delta / 15.0;
  }
  if (std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(st, a, m, fa, flm, fm, left, depth + 1, 0.5 * tol) +
         adaptive_step(st, m, b, fm, frm, fb, right, depth + 1, 0.5 * tol);
}

}  // namespace

QuadratureResult integrate(const std::function<double(double)>& f, double a, double b,
                           const QuadratureOptions& opts) {
  QuadratureResult result;
  if (a == b) return result;
  SimpsonState st;
  st.f = &f;
  st.opts = opts;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  st.evaluations = 3;
  const double whole = simpson(fa, fm, fb, a, b);
  const double tol = std::max(opts.abs_tol, opts.rel_tol * std::abs(whole));
  result.value = adaptive_step(st, a, b, fa, fm, fb, whole, 0, tol);
  result.error_estimate = tol;
  result.evaluations = st.evaluations;
  result.converged = st.converged;
  return result;
}

QuadratureResult integrate2d(const std::function<double(double, double)>& f, double ax,
                             double bx, double ay, double by, const QuadratureOptions& opts) {
  QuadratureResult total;
  QuadratureOptions inner = opts;
  inner.abs_tol = opts.abs_tol * 0.1;
  inner.rel_tol = opts.rel_tol * 0.1;
  long evals = 0;
  bool converged = true;
  auto row = [&](double y) {
    auto g = [&](double x) { return f(x, y); };
    QuadratureResult r = integrate(g, ax, bx, inner);
    evals += r.evaluations;
    converged = converged && r.converged;
    return r.value;
  };
  QuadratureResult outer = integrate(row, ay, by, opts);
  total.value = outer.value;
  total.error_estimate = outer.error_estimate;
  total.evaluations = evals + outer.evaluations;
  total.converged = converged && outer.converged;
  return total;
}

double gauss_legendre(const std::function<double(double)>& f, double a, double b, int order) {
  PTHERM_REQUIRE(order >= 2 && order <= 16, "gauss_legendre: order must be in [2,16]");
  // Nodes/weights on [-1,1] for the orders we use; generated from standard
  // tables (symmetric pairs stored once).
  struct Rule {
    int n;
    std::array<double, 8> x;  // non-negative nodes
    std::array<double, 8> w;
  };
  static const std::array<Rule, 4> rules = {{
      {4,
       {0.3399810435848563, 0.8611363115940526, 0, 0, 0, 0, 0, 0},
       {0.6521451548625461, 0.3478548451374538, 0, 0, 0, 0, 0, 0}},
      {8,
       {0.1834346424956498, 0.5255324099163290, 0.7966664774136267, 0.9602898564975363, 0, 0, 0, 0},
       {0.3626837833783620, 0.3137066458778873, 0.2223810344533745, 0.1012285362903763, 0, 0, 0, 0}},
      {12,
       {0.1252334085114689, 0.3678314989981802, 0.5873179542866175, 0.7699026741943047,
        0.9041172563704749, 0.9815606342467192, 0, 0},
       {0.2491470458134028, 0.2334925365383548, 0.2031674267230659, 0.1600783285433462,
        0.1069393259953184, 0.0471753363865118, 0, 0}},
      {16,
       {0.0950125098376374, 0.2816035507792589, 0.4580167776572274, 0.6178762444026438,
        0.7554044083550030, 0.8656312023878318, 0.9445750230732326, 0.9894009349916499},
       {0.1894506104550685, 0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
        0.1246289712555339, 0.0951585116824928, 0.0622535239386479, 0.0271524594117541}},
  }};
  // Pick the smallest rule with n >= order.
  const Rule* rule = &rules.back();
  for (const Rule& r : rules) {
    if (r.n >= order) {
      rule = &r;
      break;
    }
  }
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double sum = 0.0;
  const int pairs = rule->n / 2;
  for (int i = 0; i < pairs; ++i) {
    sum += rule->w[i] * (f(mid - half * rule->x[i]) + f(mid + half * rule->x[i]));
  }
  return sum * half;
}

}  // namespace ptherm::numerics
