// Dense linear algebra: a small row-major matrix plus LU factorization with
// partial pivoting. Sized for circuit Jacobians (tens to a few hundred
// unknowns) — the FDM thermal solver uses the sparse path instead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptherm::numerics {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  void set_zero();

  /// y = A*x (sizes must agree).
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// y = A*x into caller storage — the allocation-free form hot loops
  /// (e.g. the electro-thermal fixed point's influence matvec) iterate on.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Multi-RHS form: `count` input vectors stored contiguously
  /// (xs[k*cols() + c]) into `count` output vectors (ys[k*rows() + r]). Each
  /// vector's result is bitwise identical to multiply() on it alone — the
  /// blocking reorders work across vectors only (A is streamed once per row
  /// instead of once per vector), never within one row-dot.
  void multiply_batch(std::span<const double> xs, std::span<double> ys,
                      std::size_t count) const;

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
/// Throws ptherm::Error if the matrix is numerically singular.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  /// Solves A x = b. b.size() must equal the matrix dimension.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Determinant (sign from the permutation times the diagonal product).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t dimension() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivot_sign_ = 1;
};

/// One-shot convenience: solve A x = b.
[[nodiscard]] std::vector<double> solve_dense(Matrix a, std::span<const double> b);

}  // namespace ptherm::numerics
