#include "numerics/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::numerics {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  std::vector<double> y(rows_, 0.0);
  multiply(x, y);
  return y;
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  PTHERM_REQUIRE(x.size() == cols_ && y.size() == rows_, "matrix-vector size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
}

void Matrix::multiply_batch(std::span<const double> xs, std::span<double> ys,
                            std::size_t count) const {
  PTHERM_REQUIRE(xs.size() == count * cols_ && ys.size() == count * rows_,
                 "matrix-batch size mismatch");
  // Row outer, vectors inner: each row of A is read once for the whole
  // batch. Within one (row, vector) pair the dot runs in ascending column
  // order, exactly as multiply() — the per-vector results match bitwise.
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (std::size_t k = 0; k < count; ++k) {
      const double* x = &xs[k * cols_];
      double sum = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
      ys[k * rows_ + r] = sum;
    }
  }
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  PTHERM_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw Error("LU factorization: matrix is singular or non-finite");
    }
    pivots_[k] = p;
    if (p != k) {
      pivot_sign_ = -pivot_sign_;
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
    }
    const double diag = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;
      if (factor != 0.0) {
        for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  PTHERM_REQUIRE(b.size() == n, "rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots_[k] != k) std::swap(x[k], x[pivots_[k]]);
    for (std::size_t r = k + 1; r < n; ++r) x[r] -= lu_(r, k) * x[k];
  }
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) x[k] -= lu_(k, c) * x[c];
    x[k] /= lu_(k, k);
  }
  return x;
}

double LuFactorization::determinant() const {
  double det = pivot_sign_;
  for (std::size_t k = 0; k < lu_.rows(); ++k) det *= lu_(k, k);
  return det;
}

std::vector<double> solve_dense(Matrix a, std::span<const double> b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace ptherm::numerics
