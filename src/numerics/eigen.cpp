#include "numerics/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace ptherm::numerics {

std::vector<double> tridiagonal_eigenvalues(std::span<const double> diag,
                                            std::span<const double> off) {
  const std::size_t n = diag.size();
  PTHERM_REQUIRE(n >= 1, "tridiagonal_eigenvalues: empty matrix");
  PTHERM_REQUIRE(off.size() + 1 == n || (n == 1 && off.empty()),
                 "tridiagonal_eigenvalues: off-diagonal must have n - 1 entries");
  std::vector<double> d(diag.begin(), diag.end());
  if (n == 1) return d;
  // e is shifted down one slot relative to the classic Fortran convention:
  // e[i] couples rows i and i + 1; e[n - 1] is the zero sentinel the sweep
  // below reads past the active block.
  std::vector<double> e(off.begin(), off.end());
  e.push_back(0.0);

  constexpr double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    int iterations = 0;
    for (;;) {
      // Find the first negligible off-diagonal at or after l: the block
      // [l, m] is the unreduced piece still being worked on.
      std::size_t m = l;
      while (m + 1 < n) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
        ++m;
      }
      if (m == l) break;  // d[l] converged
      PTHERM_REQUIRE(++iterations <= 64,
                     "tridiagonal_eigenvalues: implicit QL failed to converge");
      // Wilkinson shift from the leading 2x2 of the block.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow = false;
      for (std::size_t ii = m; ii-- > l;) {
        double f = s * e[ii];
        const double b = c * e[ii];
        r = std::hypot(f, g);
        e[ii + 1] = r;
        if (r == 0.0) {
          // Rotation annihilated prematurely: deflate and restart the sweep.
          d[ii + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[ii + 1] - p;
        r = (d[ii] - g) * s + 2.0 * c * b;
        p = s * r;
        d[ii + 1] = g + p;
        g = c * r - b;
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

std::vector<double> tridiagonal_smallest_eigenvalues(std::span<const double> diag,
                                                     std::span<const double> off,
                                                     std::size_t count) {
  const std::size_t n = diag.size();
  PTHERM_REQUIRE(n >= 1, "tridiagonal_smallest_eigenvalues: empty matrix");
  PTHERM_REQUIRE(off.size() + 1 == n || (n == 1 && off.empty()),
                 "tridiagonal_smallest_eigenvalues: off-diagonal must have n - 1 entries");
  PTHERM_REQUIRE(count >= 1 && count <= n,
                 "tridiagonal_smallest_eigenvalues: count must lie in [1, n]");
  if (n == 1) return {diag[0]};

  // Gershgorin bracket for the whole spectrum, and squared couplings for
  // the Sturm recurrence.
  std::vector<double> e2(n - 1);
  double lo = diag[0];
  double hi = diag[0];
  for (std::size_t i = 0; i < n; ++i) {
    double r = 0.0;
    if (i > 0) r += std::abs(off[i - 1]);
    if (i + 1 < n) r += std::abs(off[i]);
    lo = std::min(lo, diag[i] - r);
    hi = std::max(hi, diag[i] + r);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) e2[i] = off[i] * off[i];

  constexpr double eps = std::numeric_limits<double>::epsilon();
  const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
  const double pivmin = scale * eps * eps;
  // Number of eigenvalues strictly below x, by counting negative pivots of
  // the LDL^T factorization of T - x I.
  const auto sturm_count = [&](double x) {
    std::size_t negatives = 0;
    double q = diag[0] - x;
    if (std::abs(q) < pivmin) q = -pivmin;
    if (q < 0.0) ++negatives;
    for (std::size_t i = 1; i < n; ++i) {
      q = diag[i] - x - e2[i - 1] / q;
      if (std::abs(q) < pivmin) q = -pivmin;
      if (q < 0.0) ++negatives;
    }
    return negatives;
  };

  std::vector<double> evals(count);
  double floor_k = lo;
  for (std::size_t k = 0; k < count; ++k) {
    // Bisect for the smallest x with at least k + 1 eigenvalues below it;
    // eigenvalues are found in ascending order, so the previous one is a
    // valid lower bound for the next (multiplicity included).
    double a = floor_k;
    double b = hi;
    while (b - a > 2.0 * eps * std::max({std::abs(a), std::abs(b), 1.0})) {
      const double mid = 0.5 * (a + b);
      if (mid <= a || mid >= b) break;  // bracket at rounding resolution
      if (sturm_count(mid) >= k + 1) {
        b = mid;
      } else {
        a = mid;
      }
    }
    evals[k] = 0.5 * (a + b);
    floor_k = a;
  }
  return evals;
}

std::vector<double> tridiagonal_eigenvector(std::span<const double> diag,
                                            std::span<const double> off, double lambda) {
  const std::size_t n = diag.size();
  PTHERM_REQUIRE(n >= 1, "tridiagonal_eigenvector: empty matrix");
  PTHERM_REQUIRE(off.size() + 1 == n || (n == 1 && off.empty()),
                 "tridiagonal_eigenvector: off-diagonal must have n - 1 entries");
  if (n == 1) return {1.0};

  // Scale for the singularity guard: a pivot of exactly zero (lambda hit the
  // eigenvalue to full precision) is replaced by a tiny multiple of the
  // matrix norm, which is the standard inverse-iteration trick — the solve
  // then returns a huge, eigenvector-dominated iterate in one step.
  double norm = 0.0;
  for (double v : diag) norm = std::max(norm, std::abs(v));
  for (double v : off) norm = std::max(norm, std::abs(v));
  if (norm == 0.0) norm = 1.0;
  const double tiny = norm * std::numeric_limits<double>::epsilon() *
                      std::numeric_limits<double>::epsilon();

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> a(n);      // subdiagonal of the working copy
  std::vector<double> b(n);      // diagonal
  std::vector<double> c(n);      // superdiagonal
  std::vector<double> c2(n);     // second superdiagonal (pivoting fill-in)
  std::vector<bool> swapped(n);  // row-interchange record

  // Two sweeps: the first lands on the eigenvector direction, the second
  // polishes it (and is essentially free).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = (i > 0) ? off[i - 1] : 0.0;
      b[i] = diag[i] - lambda;
      c[i] = (i + 1 < n) ? off[i] : 0.0;
      c2[i] = 0.0;
    }
    std::vector<double> y = x;
    // Forward elimination with partial pivoting.
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (std::abs(a[i + 1]) > std::abs(b[i])) {
        std::swap(b[i], a[i + 1]);
        std::swap(c[i], b[i + 1]);
        std::swap(c2[i], c[i + 1]);
        std::swap(y[i], y[i + 1]);
        swapped[i] = true;
      } else {
        swapped[i] = false;
      }
      if (b[i] == 0.0) b[i] = tiny;
      const double factor = a[i + 1] / b[i];
      b[i + 1] -= factor * c[i];
      c[i + 1] -= factor * c2[i];
      y[i + 1] -= factor * y[i];
    }
    if (b[n - 1] == 0.0) b[n - 1] = tiny;
    // Back substitution.
    x[n - 1] = y[n - 1] / b[n - 1];
    if (n >= 2) {
      x[n - 2] = (y[n - 2] - c[n - 2] * x[n - 1]) / b[n - 2];
      for (std::size_t i = n - 2; i-- > 0;) {
        x[i] = (y[i] - c[i] * x[i + 1] - c2[i] * x[i + 2]) / b[i];
      }
    }
    double len = 0.0;
    for (double v : x) len += v * v;
    len = std::sqrt(len);
    PTHERM_REQUIRE(len > 0.0, "tridiagonal_eigenvector: inverse iteration collapsed");
    for (double& v : x) v /= len;
  }
  // Deterministic sign: first component of non-negligible magnitude positive.
  for (double v : x) {
    if (std::abs(v) > 1e-12) {
      if (v < 0.0) {
        for (double& w : x) w = -w;
      }
      break;
    }
  }
  return x;
}

}  // namespace ptherm::numerics
