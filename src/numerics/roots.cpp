#include "numerics/roots.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::numerics {

namespace {
bool opposite_signs(double a, double b) {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}
}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts) {
  PTHERM_REQUIRE(lo <= hi, "bisect: empty interval");
  double flo = f(lo);
  double fhi = f(hi);
  PTHERM_REQUIRE(opposite_signs(flo, fhi), "bisect: interval does not bracket a root");
  RootResult r;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = it + 1;
    if (fmid == 0.0 || (hi - lo) * 0.5 < opts.x_tol ||
        (opts.f_tol > 0.0 && std::abs(fmid) < opts.f_tol)) {
      r.x = mid;
      r.f = fmid;
      r.converged = true;
      return r;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.f = f(r.x);
  r.converged = false;
  return r;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts) {
  PTHERM_REQUIRE(lo <= hi, "brent: empty interval");
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  PTHERM_REQUIRE(opposite_signs(fa, fb), "brent: interval does not bracket a root");
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;
  RootResult r;
  for (int it = 0; it < opts.max_iterations; ++it) {
    r.iterations = it + 1;
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) + 0.5 * opts.x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 || (opts.f_tol > 0.0 && std::abs(fb) < opts.f_tol)) {
      r.x = b;
      r.f = fb;
      r.converged = true;
      return r;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic interpolation
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q), std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  r.x = b;
  r.f = fb;
  r.converged = false;
  return r;
}

RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& df, double x0,
                  const RootOptions& opts) {
  RootResult r;
  double x = x0;
  double fx = f(x);
  for (int it = 0; it < opts.max_iterations; ++it) {
    r.iterations = it + 1;
    if (std::abs(fx) <= opts.f_tol || fx == 0.0) {
      r.x = x;
      r.f = fx;
      r.converged = true;
      return r;
    }
    const double dfx = df(x);
    if (dfx == 0.0 || !std::isfinite(dfx)) break;
    double step = -fx / dfx;
    // Damping: halve until |f| decreases (at most 40 halvings).
    double x_new = x + step;
    double f_new = f(x_new);
    int halvings = 0;
    while ((!std::isfinite(f_new) || std::abs(f_new) > std::abs(fx)) && halvings < 40) {
      step *= 0.5;
      x_new = x + step;
      f_new = f(x_new);
      ++halvings;
    }
    if (std::abs(step) < opts.x_tol) {
      r.x = x_new;
      r.f = f_new;
      r.converged = std::isfinite(f_new);
      return r;
    }
    x = x_new;
    fx = f_new;
  }
  r.x = x;
  r.f = fx;
  r.converged = false;
  return r;
}

bool expand_bracket(const std::function<double(double)>& f, double& lo, double& hi,
                    int max_expansions) {
  PTHERM_REQUIRE(lo < hi, "expand_bracket: empty interval");
  double flo = f(lo);
  double fhi = f(hi);
  for (int i = 0; i < max_expansions; ++i) {
    if (opposite_signs(flo, fhi)) return true;
    const double width = hi - lo;
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= width;
      flo = f(lo);
    } else {
      hi += width;
      fhi = f(hi);
    }
  }
  return opposite_signs(flo, fhi);
}

}  // namespace ptherm::numerics
