#include "numerics/ode.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "numerics/dense.hpp"

namespace ptherm::numerics {

namespace {
std::size_t step_count(double t0, double t1, double dt) {
  PTHERM_REQUIRE(t1 > t0, "ode: t1 must exceed t0");
  PTHERM_REQUIRE(dt > 0.0, "ode: dt must be positive");
  return static_cast<std::size_t>(std::ceil((t1 - t0) / dt - 1e-12));
}
}  // namespace

OdeSolution rk4(const OdeRhs& f, std::vector<double> y0, double t0, double t1, double dt) {
  const std::size_t steps = step_count(t0, t1, dt);
  const std::size_t n = y0.size();
  OdeSolution sol;
  sol.times.reserve(steps + 1);
  sol.states.reserve(steps + 1);
  sol.times.push_back(t0);
  sol.states.push_back(y0);
  std::vector<double> y = std::move(y0);
  double t = t0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double h = std::min(dt, t1 - t);
    const auto k1 = f(t, y);
    std::vector<double> tmp(n);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
    const auto k2 = f(t + 0.5 * h, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
    const auto k3 = f(t + 0.5 * h, tmp);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
    const auto k4 = f(t + h, tmp);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += h;
    sol.times.push_back(t);
    sol.states.push_back(y);
  }
  return sol;
}

OdeSolution backward_euler(const OdeRhs& f, std::vector<double> y0, double t0, double t1,
                           double dt, int max_inner_iterations, double tol) {
  const std::size_t steps = step_count(t0, t1, dt);
  const std::size_t n = y0.size();
  OdeSolution sol;
  sol.times.reserve(steps + 1);
  sol.states.reserve(steps + 1);
  sol.times.push_back(t0);
  sol.states.push_back(y0);
  std::vector<double> y = std::move(y0);
  double t = t0;
  std::vector<double> g(n), y_next(n), pert(n);
  for (std::size_t s = 0; s < steps; ++s) {
    const double h = std::min(dt, t1 - t);
    const double t_next = t + h;
    // Newton on G(y_next) = y_next - y - h f(t_next, y_next) = 0. A plain
    // fixed point diverges for stiff systems (|h * df/dy| > 1), which is the
    // very regime backward Euler exists for, so we pay for the numerical
    // Jacobian; state dimensions here are tiny.
    y_next = y;  // predictor: previous state (robust for stiff problems)
    for (int it = 0; it < max_inner_iterations; ++it) {
      const auto fn = f(t_next, y_next);
      double norm_g = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        g[i] = y_next[i] - y[i] - h * fn[i];
        norm_g = std::max(norm_g, std::abs(g[i]));
      }
      if (norm_g < tol) break;
      Matrix jac(n, n);
      for (std::size_t j = 0; j < n; ++j) {
        pert = y_next;
        const double dy = 1e-7 * std::max(1.0, std::abs(y_next[j]));
        pert[j] += dy;
        const auto fp = f(t_next, pert);
        for (std::size_t i = 0; i < n; ++i) {
          jac(i, j) = (i == j ? 1.0 : 0.0) - h * (fp[i] - fn[i]) / dy;
        }
      }
      std::vector<double> rhs(n);
      for (std::size_t i = 0; i < n; ++i) rhs[i] = -g[i];
      const auto step = solve_dense(std::move(jac), rhs);
      for (std::size_t i = 0; i < n; ++i) y_next[i] += step[i];
    }
    y = y_next;
    t = t_next;
    sol.times.push_back(t);
    sol.states.push_back(y);
  }
  return sol;
}

OdeSolution rk4_scalar(const std::function<double(double, double)>& f, double y0, double t0,
                       double t1, double dt) {
  OdeRhs rhs = [&f](double t, const std::vector<double>& y) {
    return std::vector<double>{f(t, y[0])};
  };
  return rk4(rhs, {y0}, t0, t1, dt);
}

}  // namespace ptherm::numerics
