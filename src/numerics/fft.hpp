// Hand-rolled radix-2 FFT and the cosine transforms built on it. The
// spectral thermal backend (thermal/spectral.hpp) synthesizes cosine-series
// surface fields on cell-centre grids, which is exactly a DCT-III per axis;
// no external FFT dependency is used or wanted (offline container).
//
// Conventions (no normalization hidden anywhere):
//  * fft   — X[k] = sum_n x[n] exp(-2 pi i n k / N)
//  * ifft  — x[n] = (1/N) sum_k X[k] exp(+2 pi i n k / N)
//  * dct2  — X[k] = sum_n x[n] cos(pi k (2n+1) / (2N))   (analysis at
//            half-sample points; the adjoint of dct3)
//  * dct3  — y[i] = sum_m x[m] cos(pi m (2i+1) / (2N))   (synthesis of
//            cosine modes at the cell centres (i+1/2)/N)
// All sizes must be powers of two (the transforms are radix-2).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ptherm::numerics {

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward DFT (negative-exponent kernel, unnormalized).
void fft(std::span<std::complex<double>> data);

/// In-place inverse DFT (positive-exponent kernel, scaled by 1/N).
void ifft(std::span<std::complex<double>> data);

/// DCT-II of `x` (see conventions above). One complex FFT of size 2N.
[[nodiscard]] std::vector<double> dct2(std::span<const double> x);

/// DCT-III synthesis of the cosine-mode coefficients `x` at the N half-sample
/// points (i + 1/2)/N. One complex FFT of size 2N.
[[nodiscard]] std::vector<double> dct3(std::span<const double> x);

/// Folds an arbitrary-length cosine-mode coefficient vector onto `n_out`
/// DCT-III slots using the alias identities of cos(pi m (2i+1) / (2 n_out)):
/// mode m = 2*n_out*q + r lands on slot r with sign (-1)^q for r < n_out, on
/// slot 2*n_out - r with sign -(-1)^q for r > n_out, and vanishes at every
/// half-sample point for r == n_out. dct3(fold_cosine_modes(c, N)) therefore
/// equals the exact mode sum of `c` at the N cell centres, for any mode count.
[[nodiscard]] std::vector<double> fold_cosine_modes(std::span<const double> coeff, int n_out);

}  // namespace ptherm::numerics
