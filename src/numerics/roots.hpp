// Scalar root finding used throughout the library: the exact stack solver
// (current continuity), thermal-resistance extraction, and the co-simulation
// engine all reduce subproblems to 1-D roots.
#pragma once

#include <functional>

namespace ptherm::numerics {

/// Options shared by the bracketing solvers.
struct RootOptions {
  double x_tol = 1e-12;       ///< absolute tolerance on the root location
  double f_tol = 0.0;         ///< optional absolute tolerance on |f|
  int max_iterations = 200;
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;             ///< best estimate of the root
  double f = 0.0;             ///< f(x) at the estimate
  int iterations = 0;
  bool converged = false;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign
/// (throws PreconditionError otherwise). Always converges, slowly.
RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts = {});

/// Brent's method on [lo, hi]; same bracketing requirement as bisect but
/// superlinear. This is the workhorse for the "exact" solvers.
RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts = {});

/// Damped Newton from an initial guess; falls back to halving the step when
/// |f| does not decrease. Derivative supplied by the caller.
RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& df, double x0,
                  const RootOptions& opts = {});

/// Expands [lo, hi] geometrically around the initial interval until f changes
/// sign or `max_expansions` is hit. Returns true on success and updates the
/// bracket in place.
bool expand_bracket(const std::function<double(double)>& f, double& lo, double& hi,
                    int max_expansions = 60);

}  // namespace ptherm::numerics
