// Piecewise interpolation on sorted grids — used for table-driven technology
// parameters (scaling roadmap) and for resampling bench series.
#pragma once

#include <span>
#include <vector>

namespace ptherm::numerics {

/// Piecewise-linear interpolant over strictly increasing abscissae.
/// Evaluation clamps outside the domain (EDA tables should never extrapolate
/// silently to nonsense).
class LinearInterpolator {
 public:
  LinearInterpolator(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;

  [[nodiscard]] double x_min() const noexcept { return xs_.front(); }
  [[nodiscard]] double x_max() const noexcept { return xs_.back(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Monotone cubic (Fritsch-Carlson PCHIP) interpolant: shape preserving, so
/// interpolated roadmaps never overshoot between table entries.
class PchipInterpolator {
 public:
  PchipInterpolator(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double operator()(double x) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> slopes_;
};

}  // namespace ptherm::numerics
