#include "numerics/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ptherm::numerics {

namespace {

// Iterative radix-2 Cooley-Tukey with a per-stage twiddle table (std::polar
// per entry rather than repeated multiplication, so long transforms do not
// accumulate twiddle drift).
void transform(std::span<std::complex<double>> a, double sign) {
  const std::size_t n = a.size();
  PTHERM_REQUIRE(is_power_of_two(n), "fft: size must be a power of two");
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j |= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  std::vector<std::complex<double>> twiddle(n / 2);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t k = 0; k < half; ++k) {
      twiddle[k] = std::polar(1.0, ang * static_cast<double>(k));
    }
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> u = a[base + k];
        const std::complex<double> v = a[base + k + half] * twiddle[k];
        a[base + k] = u + v;
        a[base + k + half] = u - v;
      }
    }
  }
}

}  // namespace

void fft(std::span<std::complex<double>> data) { transform(data, -1.0); }

void ifft(std::span<std::complex<double>> data) {
  transform(data, 1.0);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& c : data) c *= scale;
}

// Both DCTs ride on one positive-exponent FFT of size 2N: with
// c[m] = x[m] exp(i pi m / (2N)) padded to 2N,
//   sum_m c[m] exp(2 pi i m k / (2N)) = sum_m x[m] exp(i pi m (2k+1) / (2N)),
// whose real part is the DCT-III; the DCT-II moves the phase factor to the
// output side instead.
std::vector<double> dct2(std::span<const double> x) {
  const std::size_t n = x.size();
  PTHERM_REQUIRE(is_power_of_two(n), "dct2: size must be a power of two");
  std::vector<std::complex<double>> c(2 * n, {0.0, 0.0});
  for (std::size_t m = 0; m < n; ++m) c[m] = x[m];
  transform(c, 1.0);
  const double step = std::numbers::pi / (2.0 * static_cast<double>(n));
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = (std::polar(1.0, step * static_cast<double>(k)) * c[k]).real();
  }
  return out;
}

std::vector<double> dct3(std::span<const double> x) {
  const std::size_t n = x.size();
  PTHERM_REQUIRE(is_power_of_two(n), "dct3: size must be a power of two");
  const double step = std::numbers::pi / (2.0 * static_cast<double>(n));
  std::vector<std::complex<double>> c(2 * n, {0.0, 0.0});
  for (std::size_t m = 0; m < n; ++m) {
    c[m] = x[m] * std::polar(1.0, step * static_cast<double>(m));
  }
  transform(c, 1.0);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = c[i].real();
  return out;
}

std::vector<double> fold_cosine_modes(std::span<const double> coeff, int n_out) {
  PTHERM_REQUIRE(n_out >= 1, "fold_cosine_modes: n_out must be positive");
  const std::size_t period = 2 * static_cast<std::size_t>(n_out);
  std::vector<double> out(static_cast<std::size_t>(n_out), 0.0);
  for (std::size_t m = 0; m < coeff.size(); ++m) {
    const std::size_t q = m / period;
    const std::size_t r = m % period;
    const double sign = (q % 2 == 0) ? 1.0 : -1.0;
    if (r < static_cast<std::size_t>(n_out)) {
      out[r] += sign * coeff[m];
    } else if (r > static_cast<std::size_t>(n_out)) {
      out[period - r] -= sign * coeff[m];
    }
    // r == n_out: cos(pi (2i+1) / 2) == 0 at every cell centre — drops out.
  }
  return out;
}

}  // namespace ptherm::numerics
