// Adaptive quadrature. The thermal module integrates the 1/r kernel over
// rectangles (paper Eq. 17); we provide an adaptive Simpson rule in 1-D and a
// tensorized 2-D version with recursive subdivision so the mildly singular
// integrand converges without special casing.
#pragma once

#include <functional>

namespace ptherm::numerics {

struct QuadratureOptions {
  double abs_tol = 1e-10;
  double rel_tol = 1e-8;
  int max_depth = 30;
};

struct QuadratureResult {
  double value = 0.0;
  double error_estimate = 0.0;
  long evaluations = 0;
  bool converged = true;
};

/// Adaptive Simpson integration of f over [a, b].
QuadratureResult integrate(const std::function<double(double)>& f, double a, double b,
                           const QuadratureOptions& opts = {});

/// Adaptive 2-D integration of f(x, y) over [ax,bx] x [ay,by]: Simpson in y of
/// adaptive Simpson in x, with the inner tolerance tightened relative to the
/// outer one.
QuadratureResult integrate2d(const std::function<double(double, double)>& f, double ax,
                             double bx, double ay, double by,
                             const QuadratureOptions& opts = {});

/// Fixed-order Gauss-Legendre rule (orders 2..16 supported) for smooth
/// integrands where adaptivity is overkill (e.g. image-lattice tail sums).
double gauss_legendre(const std::function<double(double)>& f, double a, double b, int order);

}  // namespace ptherm::numerics
