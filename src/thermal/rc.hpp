// Compact thermal RC for single devices: the paper's Fig. 9/10 experiment.
//
// The measurement chops a transistor ON/OFF at 3 Hz and watches the drain
// current (linear in temperature for small excursions) charge the device's
// thermal capacitance; the thermal resistance is Rth = dT_steady / P. We
// rebuild the experiment: Rth comes from the analytic centre-rise model
// (Eq. 18, plus the sink-plane image), Cth from a lumped heated volume, and
// the transient integrates the electro-thermal feedback
//   Cth dT'/dt = P(T) * chop(t) - T'/Rth,  P(T) = V*I0*(1 - tc*(T - Tamb)).
#pragma once

#include <vector>

#include "thermal/analytic.hpp"

namespace ptherm::thermal {

/// Lumped thermal resistance + capacitance of one device.
struct ThermalRc {
  double r_th = 0.0;  ///< [K/W]
  double c_th = 0.0;  ///< [J/K]
  [[nodiscard]] double tau() const noexcept { return r_th * c_th; }
};

/// Analytic Rth of a W x L surface source on a substrate of thickness
/// `thickness`: centre rise per watt (Eq. 18) minus the buried -P image's
/// contribution (isothermal sink plane).
[[nodiscard]] double device_r_th(double k_si, double w, double l, double thickness) noexcept;

/// Lumped Cth: heat capacity of a hemisphere of radius `radius_fraction *
/// thickness` — the substrate volume that participates at the chopping time
/// scale. The default fraction (0.3) makes the single-pole time constant of
/// a micron-scale device a few tens of milliseconds on a 500 um substrate,
/// consistent with the visibly saturating exponentials of the paper's 3 Hz
/// chopping experiment (Fig. 9). It is a *fit*, as any single-pole model of
/// a distributed diffusion is.
[[nodiscard]] double device_c_th(double cv_si, double thickness,
                                 double radius_fraction = 0.3) noexcept;

[[nodiscard]] ThermalRc device_thermal_rc(double k_si, double cv_si, double w, double l,
                                          double thickness);

/// Electro-thermal chopping experiment (Fig. 9).
struct SelfHeatingConfig {
  ThermalRc rc;
  double t_ambient = 303.15;   ///< [K]
  double v_drain = 3.3;        ///< drain bias while ON [V]
  double i_on_ref = 3.0e-3;    ///< ON current at T = ambient [A]
  double tc_current = 2.0e-3;  ///< fractional current drop per kelvin [1/K]
  double r_sense = 100.0;      ///< series sense resistor [ohm]
  double f_chop = 3.0;         ///< chopping frequency [Hz]
  double duty = 0.5;
  double t_stop = 1.0;         ///< [s]
  double dt = 1e-4;            ///< [s]
};

struct SelfHeatingTrace {
  std::vector<double> time;     ///< [s]
  std::vector<double> temp;     ///< device temperature [K]
  std::vector<double> current;  ///< drain current (0 when chopped off) [A]
  std::vector<double> v_sense;  ///< oscilloscope signal I * Rsense [V]

  /// Steady-state temperature rise extrapolated from the ON phases
  /// (max recorded rise; with t_stop >> tau this is the plateau).
  [[nodiscard]] double max_rise(double t_ambient) const;
};

/// Runs the chopped self-heating transient with RK4.
[[nodiscard]] SelfHeatingTrace run_self_heating(const SelfHeatingConfig& cfg);

/// Rth extraction exactly as the measurement does it: steady rise of the ON
/// phase divided by the dissipated power at that temperature.
[[nodiscard]] double extract_r_th(const SelfHeatingConfig& cfg, const SelfHeatingTrace& trace);

}  // namespace ptherm::thermal
