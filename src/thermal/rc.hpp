// Compact thermal RC networks: the paper's Fig. 9/10 single-device
// experiment, and the Cauer-ladder package/heatsink closure the die stacks
// (thermal/stack.hpp) attach below their bottom layer.
//
// The Fig. 9 measurement chops a transistor ON/OFF at 3 Hz and watches the
// drain current (linear in temperature for small excursions) charge the
// device's thermal capacitance; the thermal resistance is Rth = dT_steady /
// P. We rebuild the experiment: Rth comes from the analytic centre-rise
// model (Eq. 18, plus the sink-plane image), Cth from a lumped heated
// volume, and the transient integrates the electro-thermal feedback
//   Cth dT'/dt = P(T) * chop(t) - T'/Rth,  P(T) = V*I0*(1 - tc*(T - Tamb)).
//
// PackageRcNetwork promotes the same {Rth, Cth} stage into a load-bearing
// compact package model (the VHDL-AMS compact-thermal-modeling idea): a
// Cauer ladder from the die attach (case) down to ambient whose case
// temperature is a dynamic state the transient co-simulation advances
// alongside the die — the "constant sink temperature" then becomes the
// zero-capacity limit, and the steady case rise is exactly
// total_resistance() * P, the scalar r_package fold.
#pragma once

#include <vector>

#include "thermal/analytic.hpp"

namespace ptherm::thermal {

/// Lumped thermal resistance + capacitance of one device (or one Cauer
/// stage of a package network).
struct ThermalRc {
  double r_th = 0.0;  ///< [K/W]
  double c_th = 0.0;  ///< [J/K]
  [[nodiscard]] double tau() const noexcept { return r_th * c_th; }
};

/// Throws ptherm::PreconditionError unless both R and C are positive —
/// every load-bearing consumer (PackageRcNetwork, run_self_heating)
/// validates its stages through here.
void validate(const ThermalRc& rc);

/// Cauer-ladder package/heatsink model: stage i places capacitance
/// stages[i].c_th at node i and resistance stages[i].r_th from node i to
/// node i + 1; node 0 is the case (die attach) and the last resistor lands
/// on ambient. Temperatures are rises above ambient.
///
/// The linear ODE  C dθ/dt = -G θ + P e₀  is advanced EXACTLY for
/// piecewise-constant power via the eigendecomposition of the symmetrized
/// conductance ladder (numerics/eigen.hpp): each modal amplitude obeys
/// a scalar exponential update, so accuracy does not depend on the step
/// size and one h-step equals k sub-steps to rounding — the same contract
/// the spectral transient integrator offers, which is what lets the
/// transient cosim advance the package once per step at O(stages) cost.
class PackageRcNetwork {
 public:
  /// Validates every stage (positive R and C) at construction.
  explicit PackageRcNetwork(std::vector<ThermalRc> stages);

  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] const std::vector<ThermalRc>& stages() const noexcept { return stages_; }

  /// DC case-to-ambient resistance: the sum of the stage resistances. The
  /// steady case rise under total power P is total_resistance() * P —
  /// exactly the scalar r_package semantics, which is how the legacy option
  /// stays a derived view of this network.
  [[nodiscard]] double total_resistance() const noexcept;

  /// Modal state of one transient run; starts at ambient (zero rise).
  struct State {
    std::vector<double> amps;  ///< case-referred modal amplitudes [K]
    double case_rise = 0.0;    ///< case rise above ambient after last step [K]
    double decay_h = 0.0;      ///< step size the decay cache is keyed by [s]
    std::vector<double> decay;
  };
  [[nodiscard]] State make_state() const;

  /// Advances the network by h seconds under total power `power` held
  /// constant over the step; returns (and stores) the case rise. Exact for
  /// piecewise-constant power.
  double advance(State& state, double h, double power) const;

  /// Steady case rise for constant power: total_resistance() * power.
  [[nodiscard]] double steady_case_rise(double power) const noexcept {
    return total_resistance() * power;
  }

 private:
  std::vector<ThermalRc> stages_;
  std::vector<double> lambda_;  ///< modal rates [1/s], ascending
  std::vector<double> gain_;    ///< steady case rise per watt of mode p [K/W]
};

/// Analytic Rth of a W x L surface source on a substrate of thickness
/// `thickness`: centre rise per watt (Eq. 18) minus the buried -P image's
/// contribution (isothermal sink plane).
[[nodiscard]] double device_r_th(double k_si, double w, double l, double thickness) noexcept;

/// Lumped Cth: heat capacity of a hemisphere of radius `radius_fraction *
/// thickness` — the substrate volume that participates at the chopping time
/// scale. The default fraction (0.3) makes the single-pole time constant of
/// a micron-scale device a few tens of milliseconds on a 500 um substrate,
/// consistent with the visibly saturating exponentials of the paper's 3 Hz
/// chopping experiment (Fig. 9). It is a *fit*, as any single-pole model of
/// a distributed diffusion is.
[[nodiscard]] double device_c_th(double cv_si, double thickness,
                                 double radius_fraction = 0.3) noexcept;

[[nodiscard]] ThermalRc device_thermal_rc(double k_si, double cv_si, double w, double l,
                                          double thickness);

/// Electro-thermal chopping experiment (Fig. 9).
struct SelfHeatingConfig {
  ThermalRc rc;
  double t_ambient = 303.15;   ///< [K]
  double v_drain = 3.3;        ///< drain bias while ON [V]
  double i_on_ref = 3.0e-3;    ///< ON current at T = ambient [A]
  double tc_current = 2.0e-3;  ///< fractional current drop per kelvin [1/K]
  double r_sense = 100.0;      ///< series sense resistor [ohm]
  double f_chop = 3.0;         ///< chopping frequency [Hz]
  double duty = 0.5;
  double t_stop = 1.0;         ///< [s]
  double dt = 1e-4;            ///< [s]
};

struct SelfHeatingTrace {
  std::vector<double> time;     ///< [s]
  std::vector<double> temp;     ///< device temperature [K]
  std::vector<double> current;  ///< drain current (0 when chopped off) [A]
  std::vector<double> v_sense;  ///< oscilloscope signal I * Rsense [V]

  /// Steady-state temperature rise extrapolated from the ON phases
  /// (max recorded rise; with t_stop >> tau this is the plateau).
  [[nodiscard]] double max_rise(double t_ambient) const;
};

/// Runs the chopped self-heating transient with RK4.
[[nodiscard]] SelfHeatingTrace run_self_heating(const SelfHeatingConfig& cfg);

/// Rth extraction exactly as the measurement does it: steady rise of the ON
/// phase divided by the dissipated power at that temperature.
[[nodiscard]] double extract_r_th(const SelfHeatingConfig& cfg, const SelfHeatingTrace& trace);

}  // namespace ptherm::thermal
