// Three-dimensional finite-difference thermal solver — the numerical
// reference ("exact"/measurement substitute) against which the analytic
// model of §3 is validated. Cell-centred grid over the die volume; 7-point
// conduction stencil; steady state solved with preconditioned CG and
// transients with backward Euler (also CG, the system stays SPD).
//
// Boundary conditions follow the paper's Fig. 4: adiabatic top, configurable
// sidewalls (adiabatic for die-scale studies, isothermal to emulate a
// semi-infinite substrate for device-scale Rth extraction), and an
// isothermal bottom at the sink temperature.
//
// DIE STACKS. The stack constructor replaces the homogeneous z-column with
// the layers of a thermal/stack.hpp DieStack: the nz cells are split across
// the layers proportionally to thickness, vertical links between dissimilar
// cells use the harmonic half-cell series conductance, per-cell capacitance
// follows the local material, and the bottom closure is the stack's
// (isothermal plane — also what an attached RC network presents to the
// conduction operator — or a convective film in series with the bottom
// half-cell). A single-layer stack matching the die reproduces the legacy
// grid bitwise: equal-material links keep the exact legacy conductance
// expression. This layered grid is the verification reference for the
// layered spectral backend.
#pragma once

#include <optional>
#include <vector>

#include "numerics/sparse.hpp"
#include "thermal/images.hpp"
#include "thermal/stack.hpp"

namespace ptherm::thermal {

enum class LateralBoundary { Adiabatic, Isothermal };

struct FdmOptions {
  int nx = 32;
  int ny = 32;
  int nz = 16;
  LateralBoundary lateral = LateralBoundary::Adiabatic;
  /// CG settings. The stencil matrices are M-matrices, for which IC(0) is
  /// breakdown-free and severalfold cheaper than Jacobi, so it is the
  /// default here (the generic numerics default stays Jacobi).
  numerics::CgOptions cg = [] {
    numerics::CgOptions o;
    o.preconditioner = numerics::CgPreconditioner::IncompleteCholesky;
    return o;
  }();
  double cv = 1.631e6;  ///< volumetric heat capacity [J/(m^3 K)] (transient)
};

/// Steady or transient conduction on a fixed grid. The matrix is assembled
/// once; sources only change the right-hand side.
///
/// Source-clipping policy (power conservation): every heat source is clipped
/// to the die surface and its FULL power is deposited over the clipped
/// footprint — a source straddling the die boundary does not silently lose
/// its off-die wattage. A source entirely outside the die deposits nothing.
/// The analytic ChipThermalModel applies the same policy. Sources must have
/// positive extents (w > 0 and l > 0) or the solve throws.
class FdmThermalSolver {
 public:
  FdmThermalSolver(Die die, FdmOptions opts);

  /// Layered constructor: the stack is authoritative for everything in z
  /// (the die supplies the lateral dimensions and the ambient temperature).
  /// opts.nz cells are split across the layers proportionally to thickness;
  /// opts.cv is ignored (capacitance follows the stack materials). A stack
  /// satisfying stack.reduces_to(die) reproduces the single-die grid
  /// bitwise.
  FdmThermalSolver(Die die, DieStack stack, FdmOptions opts);

  /// Whether this solver runs on a genuinely layered z-grid.
  [[nodiscard]] bool layered() const noexcept { return layered_; }

  /// Steady solve for the given surface sources. Returns the full 3-D rise
  /// field (kelvin above the sink), indexable via `cell_index`.
  struct Solution {
    std::vector<double> rise;  ///< per-cell rise [K]
    int cg_iterations = 0;
    bool converged = false;
    /// CG diagnostics for callers that must report *why* a solve failed:
    /// `breakdown` flags a loss of positive-definiteness, `residual` is the
    /// relative residual of the returned field.
    bool breakdown = false;
    double residual = 0.0;
    /// With FdmOptions::cg.trace: the CG residual after each iteration
    /// (numerics::CgResult::residuals). Empty when tracing is off.
    std::vector<double> cg_residuals;
  };
  [[nodiscard]] Solution solve_steady(const std::vector<HeatSource>& sources,
                                      const std::vector<double>* warm_start = nullptr) const;

  /// Surface (top-layer) rise at (x, y), bilinear between cell centres.
  [[nodiscard]] double surface_rise(const Solution& sol, double x, double y) const;

  /// The bilinear interpolation stencil surface_rise combines at (x, y):
  /// four top-layer cell indices and their weights, rim-clamped. The ONE
  /// implementation of the clamp/centre arithmetic — batched readback
  /// caches (thermal/backend.cpp) call this too, so the cached path is
  /// bitwise-identical to surface_rise by construction, not by discipline.
  void surface_stencil(double x, double y, std::size_t idx[4], double w[4]) const noexcept;

  /// Absolute surface temperature.
  [[nodiscard]] double surface_temperature(const Solution& sol, double x, double y) const {
    return die_.t_sink + surface_rise(sol, x, y);
  }

  /// One backward-Euler transient step: advances `rise` (full field) by dt
  /// under the given sources. Returns CG iterations; throws
  /// ptherm::ConvergenceError (leaving `rise` untouched) if the implicit
  /// solve fails, so drivers never integrate a garbage field.
  int step_transient(std::vector<double>& rise, double dt,
                     const std::vector<HeatSource>& sources) const;

  /// Transient steps that had to rebuild the source-term right-hand side
  /// because the sources changed since the previous step (cost counter):
  /// epoch-driven drivers hold their powers for many steps, so this counts
  /// epochs, not steps.
  [[nodiscard]] long long transient_power_updates() const noexcept { return power_updates_; }

  [[nodiscard]] int nx() const noexcept { return opts_.nx; }
  [[nodiscard]] int ny() const noexcept { return opts_.ny; }
  [[nodiscard]] int nz() const noexcept { return opts_.nz; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(opts_.nx) * opts_.ny * opts_.nz;
  }
  /// z = 0 is the surface layer.
  [[nodiscard]] std::size_t cell_index(int i, int j, int k) const noexcept {
    return (static_cast<std::size_t>(k) * opts_.ny + j) * opts_.nx + i;
  }
  /// Depth of z-layer kz's cell centre below the surface [m]. On the legacy
  /// uniform grid this is (kz + 1/2) dz; on a layered grid the cell heights
  /// vary, so matched-depth comparisons against the spectral solver must ask
  /// the grid.
  [[nodiscard]] double cell_depth(int kz) const noexcept { return z_centre_[kz]; }
  [[nodiscard]] const Die& die() const noexcept { return die_; }

  /// Power deposited in each top-layer cell for the given sources (area
  /// overlap weighting over the die-clipped footprint, renormalized so the
  /// full source power lands on the die); exposed for tests.
  [[nodiscard]] std::vector<double> surface_power(const std::vector<HeatSource>& sources) const;

 private:
  void init_z_column();  // fills cap_z_ / z_centre_ from dz_z_, k_z_, cv_z_
  void assemble();
  void stamp_conduction(numerics::SparseBuilder& builder) const;
  [[nodiscard]] std::vector<double> rhs_for(const std::vector<HeatSource>& sources) const;

  Die die_;
  FdmOptions opts_;
  double dx_ = 0.0, dy_ = 0.0, dz_ = 0.0;
  // Per-z-layer material column (uniform on the legacy grid): cell height,
  // conductivity, volumetric and absolute capacitance, and centre depth.
  std::vector<double> dz_z_;
  std::vector<double> k_z_;
  std::vector<double> cv_z_;
  std::vector<double> cap_z_;      // cv * cell volume per z-layer [J/K]
  std::vector<double> z_centre_;   // cell-centre depth per z-layer [m]
  bool layered_ = false;
  std::optional<DieStack> stack_;  // engaged by the layered constructor
  numerics::CsrMatrix laplacian_;       // steady conduction matrix (SPD)
  std::optional<numerics::IncompleteCholesky> laplacian_ic_;  // when opts ask for IC
  double cell_capacitance_ = 0.0;       // cv * cell volume [J/K] (legacy uniform grid)

  // step_transient solves (C/dt I + A); the shifted operator depends only on
  // dt, so it (and its IC factor) is cached keyed by dt instead of being
  // reassembled every step. Mutable: rebuilding the cache does not change
  // observable state, but it does make concurrent step_transient calls on
  // one solver unsafe (use one solver per thread).
  struct TransientOperator {
    double dt = 0.0;
    numerics::CsrMatrix matrix;
    std::optional<numerics::IncompleteCholesky> ic;
    bool valid = false;
  };
  mutable TransientOperator transient_cache_;
  // Source-term RHS cache for step_transient: surface_power(sources) depends
  // only on the sources, which epoch-driven transient drivers hold constant
  // for many steps — rebuilding it per step would scan every source footprint
  // 10x-100x more often than the powers actually change. Same thread-safety
  // caveat as transient_cache_.
  mutable std::vector<HeatSource> transient_rhs_key_;
  mutable std::vector<double> transient_rhs_;
  mutable long long power_updates_ = 0;
};

}  // namespace ptherm::thermal
