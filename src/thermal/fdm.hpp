// Three-dimensional finite-difference thermal solver — the numerical
// reference ("exact"/measurement substitute) against which the analytic
// model of §3 is validated. Cell-centred grid over the die volume; 7-point
// conduction stencil; steady state solved with preconditioned CG and
// transients with backward Euler (also CG, the system stays SPD).
//
// Boundary conditions follow the paper's Fig. 4: adiabatic top, configurable
// sidewalls (adiabatic for die-scale studies, isothermal to emulate a
// semi-infinite substrate for device-scale Rth extraction), and an
// isothermal bottom at the sink temperature.
#pragma once

#include <vector>

#include "numerics/sparse.hpp"
#include "thermal/images.hpp"

namespace ptherm::thermal {

enum class LateralBoundary { Adiabatic, Isothermal };

struct FdmOptions {
  int nx = 32;
  int ny = 32;
  int nz = 16;
  LateralBoundary lateral = LateralBoundary::Adiabatic;
  numerics::CgOptions cg;
  double cv = 1.631e6;  ///< volumetric heat capacity [J/(m^3 K)] (transient)
};

/// Steady or transient conduction on a fixed grid. The matrix is assembled
/// once; sources only change the right-hand side.
class FdmThermalSolver {
 public:
  FdmThermalSolver(Die die, FdmOptions opts);

  /// Steady solve for the given surface sources. Returns the full 3-D rise
  /// field (kelvin above the sink), indexable via `cell_index`.
  struct Solution {
    std::vector<double> rise;  ///< per-cell rise [K]
    int cg_iterations = 0;
    bool converged = false;
  };
  [[nodiscard]] Solution solve_steady(const std::vector<HeatSource>& sources,
                                      const std::vector<double>* warm_start = nullptr) const;

  /// Surface (top-layer) rise at (x, y), bilinear between cell centres.
  [[nodiscard]] double surface_rise(const Solution& sol, double x, double y) const;

  /// Absolute surface temperature.
  [[nodiscard]] double surface_temperature(const Solution& sol, double x, double y) const {
    return die_.t_sink + surface_rise(sol, x, y);
  }

  /// One backward-Euler transient step: advances `rise` (full field) by dt
  /// under the given sources. Returns CG iterations.
  int step_transient(std::vector<double>& rise, double dt,
                     const std::vector<HeatSource>& sources) const;

  [[nodiscard]] int nx() const noexcept { return opts_.nx; }
  [[nodiscard]] int ny() const noexcept { return opts_.ny; }
  [[nodiscard]] int nz() const noexcept { return opts_.nz; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(opts_.nx) * opts_.ny * opts_.nz;
  }
  /// z = 0 is the surface layer.
  [[nodiscard]] std::size_t cell_index(int i, int j, int k) const noexcept {
    return (static_cast<std::size_t>(k) * opts_.ny + j) * opts_.nx + i;
  }
  [[nodiscard]] const Die& die() const noexcept { return die_; }

  /// Power deposited in each top-layer cell for the given sources (area
  /// overlap weighting); exposed for tests.
  [[nodiscard]] std::vector<double> surface_power(const std::vector<HeatSource>& sources) const;

 private:
  void assemble();
  void stamp_conduction(numerics::SparseBuilder& builder) const;
  [[nodiscard]] std::vector<double> rhs_for(const std::vector<HeatSource>& sources) const;

  Die die_;
  FdmOptions opts_;
  double dx_ = 0.0, dy_ = 0.0, dz_ = 0.0;
  numerics::CsrMatrix laplacian_;       // steady conduction matrix (SPD)
  double cell_capacitance_ = 0.0;       // cv * cell volume [J/K]
};

}  // namespace ptherm::thermal
