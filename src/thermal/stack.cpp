#include "thermal/stack.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace ptherm::thermal {

DieStack::DieStack(std::vector<StackLayer> layers, BoundarySpec boundary)
    : layers_(std::move(layers)), boundary_(std::move(boundary)) {
  PTHERM_REQUIRE(!layers_.empty(), "DieStack: need at least one layer");
  for (const StackLayer& layer : layers_) {
    PTHERM_REQUIRE(layer.thickness > 0.0, "DieStack: layer thickness must be > 0");
    PTHERM_REQUIRE(layer.k > 0.0, "DieStack: layer conductivity must be > 0");
    PTHERM_REQUIRE(layer.cv > 0.0, "DieStack: layer heat capacity must be > 0");
  }
  switch (boundary_.kind) {
    case BoundaryKind::Isothermal:
      break;
    case BoundaryKind::Convective:
      PTHERM_REQUIRE(boundary_.h > 0.0, "DieStack: convective boundary needs h > 0");
      break;
    case BoundaryKind::RcNetwork:
      PTHERM_REQUIRE(boundary_.rc.has_value(),
                     "DieStack: RcNetwork boundary needs an attached network");
      break;
  }
}

DieStack DieStack::single(const Die& die) {
  StackLayer silicon;
  silicon.name = "die";
  silicon.thickness = die.thickness;
  silicon.k = die.k_si;
  silicon.cv = die.cv_si;
  return DieStack({silicon});
}

double DieStack::total_thickness() const noexcept {
  double t = 0.0;
  for (const StackLayer& layer : layers_) t += layer.thickness;
  return t;
}

double DieStack::series_resistance_per_area() const noexcept {
  double r = 0.0;
  for (const StackLayer& layer : layers_) r += layer.thickness / layer.k;
  if (boundary_.kind == BoundaryKind::Convective) r += 1.0 / boundary_.h;
  return r;
}

double DieStack::package_resistance() const noexcept {
  if (boundary_.kind == BoundaryKind::RcNetwork && boundary_.rc.has_value()) {
    return boundary_.rc->total_resistance();
  }
  return 0.0;
}

bool DieStack::reduces_to(const Die& die) const noexcept {
  if (layers_.size() != 1) return false;
  if (!isothermal_operator_boundary()) return false;
  const StackLayer& layer = layers_.front();
  return layer.thickness == die.thickness && layer.k == die.k_si && layer.cv == die.cv_si;
}

std::vector<int> distribute_stack_cells(const DieStack& stack, int total_cells) {
  const std::size_t n = stack.layer_count();
  PTHERM_REQUIRE(total_cells >= static_cast<int>(n),
                 "distribute_stack_cells: need at least one cell per layer");
  const double total_t = stack.total_thickness();
  // Largest-remainder apportionment with a floor of one cell per layer:
  // give each layer 1 + floor(share of the remaining cells), then hand the
  // leftover cells to the largest fractional parts (ties to the upper
  // layers, where the heat enters).
  const int spare = total_cells - static_cast<int>(n);
  std::vector<int> cells(n, 1);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = spare * stack.layers()[i].thickness / total_t;
    const int base = static_cast<int>(ideal);
    cells[i] += base;
    assigned += base;
    remainders[i] = {ideal - base, i};
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int leftover = spare - assigned, j = 0; leftover > 0; --leftover, ++j) {
    ++cells[remainders[static_cast<std::size_t>(j)].second];
  }
  return cells;
}

}  // namespace ptherm::thermal
