// Pluggable thermal-backend layer: one interface over every way this library
// can turn surface heat sources into temperature rises. The concurrent
// electro-thermal solver, the transient co-simulation, and the influence
// operator all program against `SolverBackend` instead of switching on an
// enum, so a new solver (adaptive multigrid, GPU, package RC, ...) is a
// drop-in: implement the interface, add a factory case.
//
// Capabilities:
//  * steady solve + surface-rise queries (one shared solve, many points)
//  * surface-rise maps on cell-centre grids
//  * batched influence-column builds (rise per watt, column per source)
//  * optional transient stepping (backends that can integrate in time)
//  * cost counters for the perf trajectory (CG iterations, modes, FFTs)
//
// Backends are not thread-safe: the cost counters (and the FDM transient
// cache) mutate under const calls. Use one backend instance per thread.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "numerics/dense.hpp"
#include "thermal/fdm.hpp"
#include "thermal/images.hpp"
#include "thermal/spectral.hpp"

namespace ptherm::thermal {

// SurfaceSample (the point type every batched query below takes) lives in
// thermal/images.hpp so the spectral solver's matrix-free influence
// projections can name it without depending on this layer.

/// Cumulative cost counters since backend construction, for the perf
/// trajectory. Backends fill the fields that measure their work and leave
/// the rest zero. Every field is a `long long` counter ON PURPOSE: the
/// telemetry catalog (telemetry/counters.hpp) maps each field to a named
/// registry counter through a descriptor table and statically asserts the
/// struct is exactly that table's fields — so adding a field here without
/// naming it there fails the build instead of silently vanishing from the
/// registry, the bench JSON, and the merge paths.
struct BackendCostStats {
  long long steady_solves = 0;      ///< full-field steady solves performed
  long long influence_columns = 0;  ///< unit-source influence columns built
  long long cg_iterations = 0;      ///< total CG iterations (FDM)
  long long modes = 0;              ///< cosine modes carried (spectral)
  long long fft_calls = 0;          ///< 1-D FFT invocations (spectral)
  long long transient_steps = 0;  ///< step_transient calls served
  /// Transient steps that re-ingested CHANGED source powers (spectral: flux
  /// re-projection; FDM: source-term RHS rebuild). Epoch-driven drivers
  /// hold powers between control decisions, so this counts epochs — the gap
  /// to transient_steps is what the epoch caches saved.
  long long transient_power_updates = 0;
  // Batched scenario engine (core/scenario_batch) counters, merged in by
  // ScenarioBatch::cost_stats() on top of the backend's own fields.
  long long scenarios = 0;            ///< scenario solves completed
  long long batched_matvecs = 0;      ///< multi-RHS influence applies issued
  long long picard_iterations_total = 0;  ///< sum of per-scenario iterations
  /// Scenario-iterations the convergence masks avoided: what the blocked
  /// sweeps would have cost had every scenario run as long as the slowest
  /// one in its chunk, minus what they actually cost.
  long long masked_iterations_saved = 0;
};

/// The influence-apply seam: `rises = R * powers` as an abstract operator,
/// so the Picard fixed point can iterate without knowing whether R exists as
/// a dense matrix (analytic/FDM, and the equivalence reference) or only as a
/// mode-space procedure (the spectral matrix-free path). Implementations are
/// square: powers and rises both have `size()` elements, checked on apply.
class InfluenceApply {
 public:
  virtual ~InfluenceApply() = default;

  /// Number of sources == number of sample points.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// rises[i] = sum_j R[i][j] * powers[j] [K]; both spans must have size()
  /// elements (throws ptherm::PreconditionError otherwise).
  virtual void apply(std::span<const double> powers, std::span<double> rises) const = 0;

  /// Multi-RHS apply for the batched scenario engine: `count` power vectors
  /// stored contiguously (powers[k*size() + j]) into `count` rise vectors of
  /// the same layout. Contract: vector k's rises must be BITWISE identical
  /// to apply() on it alone — implementations may only reorder work across
  /// vectors (streaming shared tables once per block), never within one
  /// vector's arithmetic. The default is exactly that serial loop.
  virtual void apply_batch(std::span<const double> powers, std::span<double> rises,
                           std::size_t count) const;

  /// Implementation tag for diagnostics and tests ("dense",
  /// "spectral-mode-space").
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;
};

/// InfluenceApply over a materialized dense influence matrix — the fallback
/// the matrix-free seam degrades to for backends whose only representation
/// IS the matrix (analytic images, FDM). Owns the matrix; must be square.
class DenseInfluenceApply final : public InfluenceApply {
 public:
  explicit DenseInfluenceApply(numerics::Matrix r);

  [[nodiscard]] std::size_t size() const noexcept override { return r_.rows(); }
  void apply(std::span<const double> powers, std::span<double> rises) const override;
  void apply_batch(std::span<const double> powers, std::span<double> rises,
                   std::size_t count) const override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "dense"; }

 private:
  numerics::Matrix r_;
};

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const Die& die() const noexcept = 0;

  /// Steady solve for `sources`, then the surface rise at each of `points`
  /// [K above the sink]. One shared solve; per-point queries are cheap.
  [[nodiscard]] virtual std::vector<double> surface_rises(
      const std::vector<HeatSource>& sources, std::span<const SurfaceSample> points) const = 0;

  /// Steady surface-rise map on the nx x ny cell-centre grid (row-major,
  /// y outer). The default routes through surface_rises; backends with a
  /// faster map path (spectral DCT synthesis) override.
  [[nodiscard]] virtual std::vector<double> surface_rise_map(
      const std::vector<HeatSource>& sources, int nx, int ny) const;

  /// Batched influence build: entry (i, j) is the rise at samples[i] per
  /// watt in sources[j] [K/W] (source powers are ignored; each column is a
  /// unit-power solve).
  [[nodiscard]] virtual numerics::Matrix build_influence(
      std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const = 0;

  /// Matrix-free influence capability: whether make_influence_apply can
  /// serve `rises = R * powers` without materializing the dense matrix.
  /// Backends whose only representation IS the dense matrix return false;
  /// callers then build_influence instead.
  [[nodiscard]] virtual bool supports_matrix_free_influence() const noexcept { return false; }

  /// Matrix-free influence-apply operator over the given sources/samples
  /// (source powers are ignored — the caller supplies powers per apply).
  /// Only meaningful when supports_matrix_free_influence(); the default
  /// throws ptherm::PreconditionError naming the backend.
  [[nodiscard]] virtual std::unique_ptr<InfluenceApply> make_influence_apply(
      std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const;

  /// Transient capability. Backends that can integrate in time return true
  /// and implement the two methods below; the defaults throw
  /// ptherm::PreconditionError.
  [[nodiscard]] virtual bool supports_transient() const noexcept { return false; }

  /// Opaque full-resolution transient field, starting at zero rise.
  class TransientState {
   public:
    virtual ~TransientState() = default;
    [[nodiscard]] virtual double surface_rise(double x, double y) const = 0;
    /// Batched surface-rise readback into caller storage — what per-step
    /// drivers (the transient cosim's block-temperature readback) call. The
    /// default loops over surface_rise; backends with a faster gather
    /// (spectral: one dense mode-synthesis matvec over all points) override.
    virtual void surface_rises(std::span<const SurfaceSample> points,
                               std::span<double> out) const;
  };
  [[nodiscard]] virtual std::unique_ptr<TransientState> make_transient_state() const;

  /// Advances `state` by dt under `sources`; returns the inner-iteration
  /// count (CG iterations for FDM; one exact mode-space update for
  /// spectral).
  virtual int step_transient(TransientState& state, double dt,
                             const std::vector<HeatSource>& sources) const;

  [[nodiscard]] virtual BackendCostStats cost_stats() const = 0;
};

/// The paper's fast path: closed-form image-method evaluation
/// (thermal/images.hpp) behind the backend interface.
class AnalyticImagesBackend final : public SolverBackend {
 public:
  AnalyticImagesBackend(Die die, ImageOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "analytic"; }
  [[nodiscard]] const Die& die() const noexcept override { return die_; }
  [[nodiscard]] std::vector<double> surface_rises(
      const std::vector<HeatSource>& sources,
      std::span<const SurfaceSample> points) const override;
  [[nodiscard]] numerics::Matrix build_influence(
      std::span<const HeatSource> sources,
      std::span<const SurfaceSample> samples) const override;
  [[nodiscard]] BackendCostStats cost_stats() const override { return stats_; }

 private:
  Die die_;
  ImageOptions opts_;
  mutable BackendCostStats stats_;
};

/// The numerical reference: the 3-D finite-difference solver behind the
/// backend interface. Transient-capable via backward Euler (one implicit
/// CG solve per step).
class FdmBackend final : public SolverBackend {
 public:
  FdmBackend(Die die, FdmOptions opts = {});
  /// Layered z-grid over a die stack (thermal/stack.hpp); trivial stacks
  /// reproduce the single-die grid bitwise.
  FdmBackend(Die die, DieStack stack, FdmOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "fdm"; }
  [[nodiscard]] const Die& die() const noexcept override { return solver_.die(); }
  [[nodiscard]] std::vector<double> surface_rises(
      const std::vector<HeatSource>& sources,
      std::span<const SurfaceSample> points) const override;
  [[nodiscard]] numerics::Matrix build_influence(
      std::span<const HeatSource> sources,
      std::span<const SurfaceSample> samples) const override;
  [[nodiscard]] bool supports_transient() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<TransientState> make_transient_state() const override;
  int step_transient(TransientState& state, double dt,
                     const std::vector<HeatSource>& sources) const override;
  [[nodiscard]] BackendCostStats cost_stats() const override;

  [[nodiscard]] const FdmThermalSolver& solver() const noexcept { return solver_; }

 private:
  FdmThermalSolver solver_;
  mutable BackendCostStats stats_;
};

/// The FFT-accelerated spectral Green's-function solver
/// (thermal/spectral.hpp) behind the backend interface. Transient-capable:
/// each step is the exact per-mode exponential update — O(modes) work, no
/// linear solve, and no dt-dependent accuracy loss.
class SpectralBackend final : public SolverBackend {
 public:
  SpectralBackend(Die die, SpectralOptions opts = {});
  /// Layered transfer matrices over a die stack (thermal/stack.hpp); trivial
  /// stacks reproduce the single-die solver bitwise. The matrix-free
  /// influence path and the transient integrator both work layered.
  SpectralBackend(Die die, DieStack stack, SpectralOptions opts = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "spectral"; }
  [[nodiscard]] const Die& die() const noexcept override { return solver_.die(); }
  [[nodiscard]] std::vector<double> surface_rises(
      const std::vector<HeatSource>& sources,
      std::span<const SurfaceSample> points) const override;
  [[nodiscard]] std::vector<double> surface_rise_map(const std::vector<HeatSource>& sources,
                                                     int nx, int ny) const override;
  [[nodiscard]] numerics::Matrix build_influence(
      std::span<const HeatSource> sources,
      std::span<const SurfaceSample> samples) const override;
  /// The matrix-free path: powers -> scaled rank-1 flux-mode accumulation
  /// over cached per-source projections -> per-mode surface transfer ->
  /// batched per-sample cosine synthesis. O(n * modes) per apply, never the
  /// dense n x n matrix.
  [[nodiscard]] bool supports_matrix_free_influence() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<InfluenceApply> make_influence_apply(
      std::span<const HeatSource> sources,
      std::span<const SurfaceSample> samples) const override;
  [[nodiscard]] bool supports_transient() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<TransientState> make_transient_state() const override;
  int step_transient(TransientState& state, double dt,
                     const std::vector<HeatSource>& sources) const override;
  [[nodiscard]] BackendCostStats cost_stats() const override;

  [[nodiscard]] const SpectralThermalSolver& solver() const noexcept { return solver_; }

 private:
  SpectralThermalSolver solver_;
  mutable BackendCostStats stats_;
};

/// The influence-apply seam for callers that take ANY backend: matrix-free
/// when the backend supports it, otherwise the dense influence build wrapped
/// in DenseInfluenceApply. Either way the caller iterates `rises = R *
/// powers` without knowing the representation (the electro-thermal SPICE
/// coupling resolves its backend through this).
[[nodiscard]] std::unique_ptr<InfluenceApply> resolve_influence_apply(
    const SolverBackend& backend, std::span<const HeatSource> sources,
    std::span<const SurfaceSample> samples);

// Batched column builders, shared between the backend adapters above and the
// free-standing influence API in core/influence.hpp (which accepts
// caller-owned solvers). Column j is the rise at every sample per watt in
// source j; `stats`, when non-null, receives the cost of this build only.

[[nodiscard]] numerics::Matrix analytic_influence_columns(
    const Die& die, std::span<const HeatSource> sources, std::span<const SurfaceSample> samples,
    const ImageOptions& opts, BackendCostStats* stats = nullptr);

/// Throws ptherm::PreconditionError naming the column, the failure mode (CG
/// breakdown versus iteration limit), and the residual if a column fails.
/// With `warm_start`, column j's CG starts from the previous column's field
/// translated (edge-replicated) onto this column's source position.
[[nodiscard]] numerics::Matrix fdm_influence_columns(
    const FdmThermalSolver& solver, std::span<const HeatSource> sources,
    std::span<const SurfaceSample> samples, bool warm_start,
    BackendCostStats* stats = nullptr);

[[nodiscard]] numerics::Matrix spectral_influence_columns(
    const SpectralThermalSolver& solver, std::span<const HeatSource> sources,
    std::span<const SurfaceSample> samples, BackendCostStats* stats = nullptr);

}  // namespace ptherm::thermal
