#include "thermal/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "common/error.hpp"
#include "numerics/dense.hpp"
#include "numerics/fft.hpp"

namespace ptherm::thermal {

namespace {

constexpr double kPi = std::numbers::pi;

/// integral of cos(m pi u / extent) over [u0, u1].
double cosine_footprint_integral(int m, double extent, double u0, double u1) {
  if (m == 0) return u1 - u0;
  const double f = m * kPi / extent;
  return (std::sin(f * u1) - std::sin(f * u0)) / f;
}

}  // namespace

SpectralThermalSolver::SpectralThermalSolver(Die die, SpectralOptions opts)
    : die_(die), opts_(opts) {
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0 && die_.thickness > 0.0,
                 "SpectralThermalSolver: degenerate die");
  PTHERM_REQUIRE(die_.k_si > 0.0, "SpectralThermalSolver: non-positive conductivity");
  PTHERM_REQUIRE(opts_.modes_x >= 1 && opts_.modes_y >= 1,
                 "SpectralThermalSolver: need at least the DC mode per axis");
  const double t = die_.thickness;
  transfer_.resize(static_cast<std::size_t>(mode_count()));
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const double gx = m * kPi / die_.width;
      const double g = std::hypot(gx, gy);
      transfer_[static_cast<std::size_t>(n) * opts_.modes_x + m] =
          (g == 0.0) ? t / die_.k_si : std::tanh(g * t) / (die_.k_si * g);
    }
  }
}

void SpectralThermalSolver::accumulate_surface_coefficients(
    const std::vector<HeatSource>& sources, std::vector<double>& coeff) const {
  PTHERM_REQUIRE(coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: coefficient vector size mismatch");
  std::vector<double> px(static_cast<std::size_t>(opts_.modes_x));
  std::vector<double> py(static_cast<std::size_t>(opts_.modes_y));
  for (const auto& s : sources) {
    PTHERM_REQUIRE(s.w > 0.0 && s.l > 0.0, "spectral: degenerate source (w, l must be > 0)");
    // Clipping policy: the full power deposits over the die-clipped
    // footprint; fully off-die sources are inert.
    const double x0 = std::max(s.cx - 0.5 * s.w, 0.0);
    const double x1 = std::min(s.cx + 0.5 * s.w, die_.width);
    const double y0 = std::max(s.cy - 0.5 * s.l, 0.0);
    const double y1 = std::min(s.cy + 0.5 * s.l, die_.height);
    if (x1 <= x0 || y1 <= y0) continue;
    const double density = s.power / ((x1 - x0) * (y1 - y0));
    for (int m = 0; m < opts_.modes_x; ++m) {
      px[static_cast<std::size_t>(m)] = cosine_footprint_integral(m, die_.width, x0, x1);
    }
    for (int n = 0; n < opts_.modes_y; ++n) {
      py[static_cast<std::size_t>(n)] = cosine_footprint_integral(n, die_.height, y0, y1);
    }
    // Flux coefficients q_mn = (c_m c_n / (W H)) * density * px_m * py_n with
    // c_0 = 1 and c_m = 2; the surface transfer turns flux into rise.
    const double base = density / (die_.width * die_.height);
    for (int n = 0; n < opts_.modes_y; ++n) {
      const double fy = ((n == 0) ? 1.0 : 2.0) * py[static_cast<std::size_t>(n)] * base;
      const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
      for (int m = 0; m < opts_.modes_x; ++m) {
        const double fx = ((m == 0) ? 1.0 : 2.0) * px[static_cast<std::size_t>(m)];
        coeff[row + m] += transfer_[row + m] * fx * fy;
      }
    }
  }
}

SpectralThermalSolver::Solution SpectralThermalSolver::solve_steady(
    const std::vector<HeatSource>& sources) const {
  Solution sol;
  sol.coeff.assign(static_cast<std::size_t>(mode_count()), 0.0);
  accumulate_surface_coefficients(sources, sol.coeff);
  return sol;
}

double SpectralThermalSolver::surface_rise(const Solution& sol, double x, double y) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  std::vector<double> cosx(static_cast<std::size_t>(opts_.modes_x));
  for (int m = 0; m < opts_.modes_x; ++m) cosx[m] = std::cos(m * kPi * x / die_.width);
  double total = 0.0;
  for (int n = 0; n < opts_.modes_y; ++n) {
    const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
    double inner = 0.0;
    for (int m = 0; m < opts_.modes_x; ++m) inner += sol.coeff[row + m] * cosx[m];
    total += inner * std::cos(n * kPi * y / die_.height);
  }
  return total;
}

double SpectralThermalSolver::rise_at_depth(const Solution& sol, double x, double y,
                                            double z) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  const double t = die_.thickness;
  PTHERM_REQUIRE(z >= 0.0 && z <= t, "spectral: depth outside the die");
  std::vector<double> cosx(static_cast<std::size_t>(opts_.modes_x));
  for (int m = 0; m < opts_.modes_x; ++m) cosx[m] = std::cos(m * kPi * x / die_.width);
  double total = 0.0;
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
    double inner = 0.0;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const double g = std::hypot(m * kPi / die_.width, gy);
      // sinh(g (t - z)) / sinh(g t) = e^{-gz} (1 - e^{-2g(t-z)}) / (1 - e^{-2gt})
      // — the overflow-safe form (g t reaches hundreds at high mode counts).
      const double depth = (g == 0.0) ? (t - z) / t
                                      : std::exp(-g * z) * (1.0 - std::exp(-2.0 * g * (t - z))) /
                                            (1.0 - std::exp(-2.0 * g * t));
      inner += sol.coeff[row + m] * depth * cosx[m];
    }
    total += inner * std::cos(gy * y);
  }
  return total;
}

std::vector<double> SpectralThermalSolver::surface_map(const Solution& sol, int nx,
                                                       int ny) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  PTHERM_REQUIRE(nx >= 2 && ny >= 2, "surface_map: need at least a 2x2 grid");
  std::vector<double> map(static_cast<std::size_t>(nx) * ny);
  if (numerics::is_power_of_two(static_cast<std::size_t>(nx)) &&
      numerics::is_power_of_two(static_cast<std::size_t>(ny))) {
    // DCT synthesis: fold + DCT-III along x per coefficient row, then along y
    // per output column. modes_y + nx one-dimensional transforms in total.
    numerics::Matrix stage(static_cast<std::size_t>(opts_.modes_y),
                           static_cast<std::size_t>(nx));
    for (int n = 0; n < opts_.modes_y; ++n) {
      const std::span<const double> row(sol.coeff.data() +
                                            static_cast<std::size_t>(n) * opts_.modes_x,
                                        static_cast<std::size_t>(opts_.modes_x));
      const auto vals = numerics::dct3(numerics::fold_cosine_modes(row, nx));
      ++fft_calls_;
      for (int i = 0; i < nx; ++i) stage(n, i) = vals[static_cast<std::size_t>(i)];
    }
    std::vector<double> column(static_cast<std::size_t>(opts_.modes_y));
    for (int i = 0; i < nx; ++i) {
      for (int n = 0; n < opts_.modes_y; ++n) column[static_cast<std::size_t>(n)] = stage(n, i);
      const auto vals = numerics::dct3(numerics::fold_cosine_modes(column, ny));
      ++fft_calls_;
      for (int j = 0; j < ny; ++j) map[static_cast<std::size_t>(j) * nx + i] = vals[j];
    }
    return map;
  }
  // Direct separable synthesis for grids the radix-2 DCT cannot take.
  numerics::Matrix stage(static_cast<std::size_t>(opts_.modes_y), static_cast<std::size_t>(nx));
  for (int i = 0; i < nx; ++i) {
    const double x = die_.width * (i + 0.5) / nx;
    for (int n = 0; n < opts_.modes_y; ++n) {
      const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
      double inner = 0.0;
      for (int m = 0; m < opts_.modes_x; ++m) {
        inner += sol.coeff[row + m] * std::cos(m * kPi * x / die_.width);
      }
      stage(n, i) = inner;
    }
  }
  for (int j = 0; j < ny; ++j) {
    const double y = die_.height * (j + 0.5) / ny;
    for (int i = 0; i < nx; ++i) {
      double total = 0.0;
      for (int n = 0; n < opts_.modes_y; ++n) {
        total += stage(n, i) * std::cos(n * kPi * y / die_.height);
      }
      map[static_cast<std::size_t>(j) * nx + i] = total;
    }
  }
  return map;
}

}  // namespace ptherm::thermal
