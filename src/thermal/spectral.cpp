#include "thermal/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <span>

#include "common/error.hpp"
#include "numerics/dense.hpp"
#include "numerics/eigen.hpp"
#include "numerics/fft.hpp"

namespace ptherm::thermal {

namespace {

constexpr double kPi = std::numbers::pi;

/// integral of cos(m pi u / extent) over [u0, u1].
double cosine_footprint_integral(int m, double extent, double u0, double u1) {
  if (m == 0) return u1 - u0;
  const double f = m * kPi / extent;
  return (std::sin(f * u1) - std::sin(f * u0)) / f;
}

/// Steady depth profile sinh(g (t - z)) / sinh(g t) ((t - z) / t at g = 0),
/// in the overflow-safe exponential form (g t reaches hundreds at high mode
/// counts).
double steady_depth_profile(double g, double t, double z) {
  if (g == 0.0) return (t - z) / t;
  return std::exp(-g * z) * (1.0 - std::exp(-2.0 * g * (t - z))) /
         (1.0 - std::exp(-2.0 * g * t));
}

/// Per-watt separable flux-projection factors of one source: the source's
/// flux mode coefficient is power * px[m] * py[n] (c_m normalization and
/// clipped-footprint density folded in). The single home of the clipping
/// policy — full power over the die-clipped footprint, fully off-die
/// sources inert (returns false with the factors zeroed), degenerate
/// sources rejected — shared by the steady projection and the transient
/// projection cache so the two paths cannot diverge.
bool unit_flux_factors(const Die& die, const HeatSource& s, int modes_x, int modes_y,
                       double* px, double* py) {
  PTHERM_REQUIRE(s.w > 0.0 && s.l > 0.0, "spectral: degenerate source (w, l must be > 0)");
  const double x0 = std::max(s.cx - 0.5 * s.w, 0.0);
  const double x1 = std::min(s.cx + 0.5 * s.w, die.width);
  const double y0 = std::max(s.cy - 0.5 * s.l, 0.0);
  const double y1 = std::min(s.cy + 0.5 * s.l, die.height);
  if (x1 <= x0 || y1 <= y0) {
    std::fill(px, px + modes_x, 0.0);
    std::fill(py, py + modes_y, 0.0);
    return false;
  }
  const double base = 1.0 / ((x1 - x0) * (y1 - y0) * die.width * die.height);
  for (int m = 0; m < modes_x; ++m) {
    px[m] = ((m == 0) ? 1.0 : 2.0) * base * cosine_footprint_integral(m, die.width, x0, x1);
  }
  for (int n = 0; n < modes_y; ++n) {
    py[n] = ((n == 0) ? 1.0 : 2.0) * cosine_footprint_integral(n, die.height, y0, y1);
  }
  return true;
}

/// Cyclic Jacobi eigensolver for a small dense symmetric matrix `a`
/// (row-major, k x k): on return `a` is diagonal (eigenvalues, unsorted)
/// and `v` holds the accumulated rotations column-wise, so eigenvalue
/// a[p * k + p] belongs to eigenvector column p of v. Deterministic fixed
/// sweep order; sized for the Ritz blocks of the layered transient setup
/// (k ~ modes_z + 4), where its rotation count beats both a full QL sweep
/// and division-chain bisection per lateral mode.
void jacobi_eigen_small(std::vector<double>& a, std::vector<double>& v, std::size_t k) {
  v.assign(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) v[i * k + i] = 1.0;
  if (k < 2) return;
  double scale = 0.0;
  for (std::size_t i = 0; i < k; ++i) scale = std::max(scale, std::abs(a[i * k + i]));
  for (std::size_t p = 0; p + 1 < k; ++p) {
    for (std::size_t q = p + 1; q < k; ++q) scale = std::max(scale, std::abs(a[p * k + q]));
  }
  if (scale == 0.0) return;
  const double tol = scale * std::numeric_limits<double>::epsilon();
  for (int sweep = 0; sweep < 64; ++sweep) {
    double off_max = 0.0;
    for (std::size_t p = 0; p + 1 < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) off_max = std::max(off_max, std::abs(a[p * k + q]));
    }
    if (off_max <= tol) return;
    for (std::size_t p = 0; p + 1 < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) {
        const double apq = a[p * k + q];
        if (std::abs(apq) <= tol) continue;
        const double theta = (a[q * k + q] - a[p * k + p]) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Similarity update: columns p, q of A and V, then rows p, q of A.
        for (std::size_t i = 0; i < k; ++i) {
          const double aip = a[i * k + p];
          const double aiq = a[i * k + q];
          a[i * k + p] = c * aip - s * aiq;
          a[i * k + q] = s * aip + c * aiq;
          const double vip = v[i * k + p];
          const double viq = v[i * k + q];
          v[i * k + p] = c * vip - s * viq;
          v[i * k + q] = s * vip + c * viq;
        }
        for (std::size_t j = 0; j < k; ++j) {
          const double apj = a[p * k + j];
          const double aqj = a[q * k + j];
          a[p * k + j] = c * apj - s * aqj;
          a[q * k + j] = s * apj + c * aqj;
        }
      }
    }
  }
  PTHERM_REQUIRE(false, "jacobi_eigen_small: failed to converge");
}

}  // namespace

SpectralThermalSolver::SpectralThermalSolver(Die die, SpectralOptions opts)
    : die_(die), opts_(opts) {
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0 && die_.thickness > 0.0,
                 "SpectralThermalSolver: degenerate die");
  PTHERM_REQUIRE(die_.k_si > 0.0, "SpectralThermalSolver: non-positive conductivity");
  PTHERM_REQUIRE(opts_.modes_x >= 1 && opts_.modes_y >= 1,
                 "SpectralThermalSolver: need at least the DC mode per axis");
  PTHERM_REQUIRE(opts_.modes_z >= 1,
                 "SpectralThermalSolver: need at least one z-eigenfunction");
  init_single_die();
}

SpectralThermalSolver::SpectralThermalSolver(Die die, DieStack stack, SpectralOptions opts)
    : die_(die), opts_(opts), stack_(std::move(stack)) {
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0,
                 "SpectralThermalSolver: degenerate die");
  PTHERM_REQUIRE(opts_.modes_x >= 1 && opts_.modes_y >= 1,
                 "SpectralThermalSolver: need at least the DC mode per axis");
  PTHERM_REQUIRE(opts_.modes_z >= 1,
                 "SpectralThermalSolver: need at least one z-eigenfunction");
  if (stack_->reduces_to(die_)) {
    // The classic problem in stack clothing: keep the closed-form path so
    // results stay bitwise identical to the single-die constructor.
    init_single_die();
    return;
  }
  layered_ = true;
  PTHERM_REQUIRE(opts_.layered_nz >= static_cast<int>(stack_->layer_count()),
                 "SpectralThermalSolver: layered_nz must cover every stack layer");
  PTHERM_REQUIRE(opts_.layered_nz >= opts_.modes_z,
                 "SpectralThermalSolver: layered_nz must admit modes_z z-modes");
  const auto cells = distribute_stack_cells(*stack_, opts_.layered_nz);
  for (std::size_t l = 0; l < stack_->layer_count(); ++l) {
    const StackLayer& layer = stack_->layers()[l];
    const double dz = layer.thickness / cells[l];
    for (int c = 0; c < cells[l]; ++c) {
      dz_z_.push_back(dz);
      k_z_.push_back(layer.k);
      cv_z_.push_back(layer.cv);
    }
  }
  opts_.modes_z = std::min(opts_.modes_z, static_cast<int>(dz_z_.size()));
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  transfer_.resize(modes);
  g2_.resize(modes);
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const double gx = m * kPi / die_.width;
      const double g = std::hypot(gx, gy);
      const std::size_t mode = static_cast<std::size_t>(n) * opts_.modes_x + m;
      transfer_[mode] = layered_transfer(g);
      g2_[mode] = g * g;
    }
  }
  // gain_/tail_/lambda_ wait for ensure_transient_modes(): steady-only users
  // (influence columns, steady cosim) never pay the per-mode eigensolves.
}

void SpectralThermalSolver::init_single_die() {
  const double t = die_.thickness;
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  const std::size_t mz = static_cast<std::size_t>(opts_.modes_z);
  transfer_.resize(modes);
  g2_.resize(modes);
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const double gx = m * kPi / die_.width;
      const double g = std::hypot(gx, gy);
      const std::size_t mode = static_cast<std::size_t>(n) * opts_.modes_x + m;
      transfer_[mode] = (g == 0.0) ? t / die_.k_si : std::tanh(g * t) / (die_.k_si * g);
      g2_[mode] = g * g;
    }
  }
  // z eigenbasis cos(gamma_p z): adiabatic top (zero slope at z = 0),
  // isothermal sink (zero value at z = t). Every mode's steady gain is
  // 2 / (k t (g^2 + gamma_p^2)); the gains sum over all p to the steady
  // transfer, so the truncated tail — carried quasi-statically by the
  // transient integrator — is the closed-form difference. The tail modes'
  // time constants fall like 1/gamma_p^2, so "quasi-static" is exact for any
  // step a transient driver would take.
  gamma2_.resize(mz);
  for (std::size_t p = 0; p < mz; ++p) {
    const double gamma = (static_cast<double>(p) + 0.5) * kPi / t;
    gamma2_[p] = gamma * gamma;
  }
  gain_.resize(modes * mz);
  tail_.resize(modes);
  for (std::size_t mode = 0; mode < modes; ++mode) {
    double carried = 0.0;
    for (std::size_t p = 0; p < mz; ++p) {
      const double gain = 2.0 / (die_.k_si * t * (g2_[mode] + gamma2_[p]));
      gain_[mode * mz + p] = gain;
      carried += gain;
    }
    tail_[mode] = transfer_[mode] - carried;
  }
  transient_ready_ = true;
}

double SpectralThermalSolver::layered_transfer(double g) const {
  const auto& layers = stack_->layers();
  // Bottom-up impedance recursion, seeded at the boundary closure. All the
  // growth lives in tanh (bounded), so g t in the hundreds is safe where the
  // textbook cosh/sinh transfer-matrix product would overflow.
  double z = (stack_->boundary().kind == BoundaryKind::Convective)
                 ? 1.0 / stack_->boundary().h
                 : 0.0;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    if (g == 0.0) {
      z += it->thickness / it->k;
      continue;
    }
    const double th = std::tanh(g * it->thickness);
    z = (z + th / (it->k * g)) / (1.0 + z * it->k * g * th);
  }
  return z;
}

double SpectralThermalSolver::layered_depth_ratio(double g, double z) const {
  const auto& layers = stack_->layers();
  const std::size_t n = layers.size();
  // Load impedance below each layer (at its bottom face), bottom-up.
  std::vector<double> load(n);
  double acc = (stack_->boundary().kind == BoundaryKind::Convective)
                   ? 1.0 / stack_->boundary().h
                   : 0.0;
  for (std::size_t i = n; i-- > 0;) {
    load[i] = acc;
    if (g == 0.0) {
      acc += layers[i].thickness / layers[i].k;
    } else {
      const double th = std::tanh(g * layers[i].thickness);
      acc = (acc + th / (layers[i].k * g)) / (1.0 + acc * layers[i].k * g * th);
    }
  }
  // Walk down from the surface, multiplying per-slab temperature ratios.
  // Within a slab of thickness t with load Z_L at the bottom, theta(s) /
  // theta(0) = (e^{-g s} + rho e^{-g (2t - s)}) / (1 + rho e^{-2 g t}) with
  // the reflection coefficient rho = (Z_L - Z_c) / (Z_L + Z_c), Z_c =
  // 1/(k g) — two-sided decaying exponentials, so no overflow and no
  // cancellation blowup (|rho| <= 1).
  double ratio = 1.0;
  double top = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = layers[i].thickness;
    const bool last = (z <= top + t) || (i + 1 == n);
    const double s = last ? std::clamp(z - top, 0.0, t) : t;
    if (g == 0.0) {
      const double r_below = load[i] + t / layers[i].k;
      ratio *= (load[i] + (t - s) / layers[i].k) / r_below;
    } else {
      const double zc = 1.0 / (layers[i].k * g);
      const double rho = (load[i] - zc) / (load[i] + zc);
      ratio *= (std::exp(-g * s) + rho * std::exp(-g * (2.0 * t - s))) /
               (1.0 + rho * std::exp(-2.0 * g * t));
    }
    if (last) break;
    top += t;
  }
  return ratio;
}

void SpectralThermalSolver::ensure_transient_modes() const {
  if (transient_ready_) return;
  const std::size_t nz = dz_z_.size();
  const std::size_t mz = static_cast<std::size_t>(opts_.modes_z);
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  // Per-unit-area capacitances and vertical conductances of the z-grid;
  // half-cell harmonic coupling between neighbours, and the boundary
  // closure folded into the bottom cell (isothermal plane — which is also
  // how an attached RC network presents to the conduction operator — or a
  // convective film in series with the bottom half-cell).
  std::vector<double> cap(nz);
  std::vector<double> gv(nz > 1 ? nz - 1 : 0);
  for (std::size_t j = 0; j < nz; ++j) cap[j] = cv_z_[j] * dz_z_[j];
  for (std::size_t j = 0; j + 1 < nz; ++j) {
    gv[j] = 1.0 / (dz_z_[j] / (2.0 * k_z_[j]) + dz_z_[j + 1] / (2.0 * k_z_[j + 1]));
  }
  const double half_bottom = dz_z_[nz - 1] / (2.0 * k_z_[nz - 1]);
  const double gb = stack_->isothermal_operator_boundary()
                        ? 1.0 / half_bottom
                        : 1.0 / (half_bottom + 1.0 / stack_->boundary().h);
  // Symmetrized z-operator at g = 0: S = C^{-1/2} A C^{-1/2}. The lateral
  // eigenvalue only enters the diagonal, as alpha_j g^2 with alpha_j =
  // k_j / cv_j — so if every cell shares one diffusivity, S(g) = S(0) +
  // alpha g^2 I and a single eigendecomposition serves all lateral modes.
  std::vector<double> d0(nz);
  std::vector<double> off(nz > 1 ? nz - 1 : 0);
  for (std::size_t j = 0; j < nz; ++j) {
    double a = (j + 1 == nz) ? gb : gv[j];
    if (j > 0) a += gv[j - 1];
    d0[j] = a / cap[j];
    if (j + 1 < nz) off[j] = -gv[j] / std::sqrt(cap[j] * cap[j + 1]);
  }
  bool uniform_alpha = true;
  const double alpha0 = k_z_[0] / cv_z_[0];
  for (std::size_t j = 1; j < nz; ++j) {
    if (k_z_[j] / cv_z_[j] != alpha0) {
      uniform_alpha = false;
      break;
    }
  }
  lambda_.assign(modes * mz, 0.0);
  gain_.assign(modes * mz, 0.0);
  tail_.assign(modes, 0.0);
  const double inv_sqrt_c0 = 1.0 / std::sqrt(cap[0]);
  if (uniform_alpha) {
    const auto evals = numerics::tridiagonal_smallest_eigenvalues(d0, off, mz);
    std::vector<double> lam0(mz);
    std::vector<double> u0c2(mz);
    for (std::size_t p = 0; p < mz; ++p) {
      lam0[p] = evals[p];
      const auto u = numerics::tridiagonal_eigenvector(d0, off, evals[p]);
      const double u0c = u[0] * inv_sqrt_c0;
      u0c2[p] = u0c * u0c;
    }
    for (std::size_t mode = 0; mode < modes; ++mode) {
      double carried = 0.0;
      for (std::size_t p = 0; p < mz; ++p) {
        const double lam = lam0[p] + alpha0 * g2_[mode];
        PTHERM_REQUIRE(lam > 0.0, "spectral layered: z-operator is not dissipative");
        lambda_[mode * mz + p] = lam;
        const double gain = u0c2[p] / lam;
        gain_[mode * mz + p] = gain;
        carried += gain;
      }
      tail_[mode] = transfer_[mode] - carried;
    }
  } else {
    // Rayleigh–Ritz over the bottom of S(0)'s spectrum. The whole operator
    // family is S(g^2) = S(0) + g^2 diag(alpha_j), so one tridiagonal
    // eigensolve of S(0) gives a kr-dimensional basis of its slowest modes,
    // diag(alpha) projects into that basis once, and each of the ~modes_x *
    // modes_y lateral modes then pays only a kr x kr Jacobi solve instead
    // of an O(nz^2) sweep of the full z-grid. The carried (slow, surface-
    // coupled) z-modes are exactly the ones the basis represents well; the
    // modes it misses are fast and surface-decoupled, and their response —
    // like everything else not carried — folds into the quasi-static tail,
    // which keeps the steady limit exact by construction.
    const std::size_t kr = std::min(nz, mz + 2);
    const auto lam0 = numerics::tridiagonal_smallest_eigenvalues(d0, off, kr);
    std::vector<double> basis(nz * kr);  // column-major: basis[j + nz * k]
    for (std::size_t k = 0; k < kr; ++k) {
      auto u = numerics::tridiagonal_eigenvector(d0, off, lam0[k]);
      // Modified Gram–Schmidt polish: inverse-iteration vectors are
      // orthogonal to residual tolerance only, and the Ritz projection
      // wants a clean orthonormal basis.
      for (std::size_t prev = 0; prev < k; ++prev) {
        double dot = 0.0;
        for (std::size_t j = 0; j < nz; ++j) dot += basis[j + nz * prev] * u[j];
        for (std::size_t j = 0; j < nz; ++j) u[j] -= dot * basis[j + nz * prev];
      }
      double len = 0.0;
      for (std::size_t j = 0; j < nz; ++j) len += u[j] * u[j];
      len = std::sqrt(len);
      PTHERM_REQUIRE(len > 0.0, "spectral layered: degenerate Ritz basis");
      for (std::size_t j = 0; j < nz; ++j) basis[j + nz * k] = u[j] / len;
    }
    // B = U0^T diag(alpha) U0 and the basis' top-surface row.
    std::vector<double> alpha_proj(kr * kr);
    std::vector<double> top(kr);
    for (std::size_t k = 0; k < kr; ++k) {
      top[k] = basis[0 + nz * k];
      for (std::size_t l = k; l < kr; ++l) {
        double acc = 0.0;
        for (std::size_t j = 0; j < nz; ++j) {
          acc += (k_z_[j] / cv_z_[j]) * basis[j + nz * k] * basis[j + nz * l];
        }
        alpha_proj[k * kr + l] = acc;
        alpha_proj[l * kr + k] = acc;
      }
    }
    std::vector<double> ritz(kr * kr);
    std::vector<double> vecs;
    std::vector<std::size_t> order(kr);
    for (std::size_t mode = 0; mode < modes; ++mode) {
      for (std::size_t i = 0; i < kr * kr; ++i) ritz[i] = g2_[mode] * alpha_proj[i];
      for (std::size_t k = 0; k < kr; ++k) ritz[k * kr + k] += lam0[k];
      jacobi_eigen_small(ritz, vecs, kr);
      for (std::size_t k = 0; k < kr; ++k) order[k] = k;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return ritz[a * kr + a] < ritz[b * kr + b];
      });
      double carried = 0.0;
      for (std::size_t p = 0; p < mz; ++p) {
        const std::size_t col = order[p];
        const double lam = ritz[col * kr + col];
        PTHERM_REQUIRE(lam > 0.0, "spectral layered: z-operator is not dissipative");
        lambda_[mode * mz + p] = lam;
        double u0 = 0.0;
        for (std::size_t k = 0; k < kr; ++k) u0 += top[k] * vecs[k * kr + col];
        const double u0c = u0 * inv_sqrt_c0;
        const double gain = u0c * u0c / lam;
        gain_[mode * mz + p] = gain;
        carried += gain;
      }
      tail_[mode] = transfer_[mode] - carried;
    }
  }
  transient_ready_ = true;
}

void SpectralThermalSolver::accumulate_surface_coefficients(
    const std::vector<HeatSource>& sources, std::vector<double>& coeff) const {
  PTHERM_REQUIRE(coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: coefficient vector size mismatch");
  std::vector<double> px(static_cast<std::size_t>(opts_.modes_x));
  std::vector<double> py(static_cast<std::size_t>(opts_.modes_y));
  for (const auto& s : sources) {
    if (!unit_flux_factors(die_, s, opts_.modes_x, opts_.modes_y, px.data(), py.data())) {
      continue;
    }
    // Flux coefficients q_mn = power * px_m * py_n; the surface transfer
    // turns flux into rise.
    for (int n = 0; n < opts_.modes_y; ++n) {
      const double fy = s.power * py[static_cast<std::size_t>(n)];
      const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
      for (int m = 0; m < opts_.modes_x; ++m) {
        coeff[row + m] += transfer_[row + m] * px[static_cast<std::size_t>(m)] * fy;
      }
    }
  }
}

SpectralThermalSolver::Solution SpectralThermalSolver::solve_steady(
    const std::vector<HeatSource>& sources) const {
  Solution sol;
  sol.coeff.assign(static_cast<std::size_t>(mode_count()), 0.0);
  accumulate_surface_coefficients(sources, sol.coeff);
  return sol;
}

double SpectralThermalSolver::surface_rise(const Solution& sol, double x, double y) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  std::vector<double> cosx(static_cast<std::size_t>(opts_.modes_x));
  for (int m = 0; m < opts_.modes_x; ++m) cosx[m] = std::cos(m * kPi * x / die_.width);
  double total = 0.0;
  for (int n = 0; n < opts_.modes_y; ++n) {
    const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
    double inner = 0.0;
    for (int m = 0; m < opts_.modes_x; ++m) inner += sol.coeff[row + m] * cosx[m];
    total += inner * std::cos(n * kPi * y / die_.height);
  }
  return total;
}

double SpectralThermalSolver::rise_at_depth(const Solution& sol, double x, double y,
                                            double z) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  const double t = layered_ ? stack_->total_thickness() : die_.thickness;
  PTHERM_REQUIRE(z >= 0.0 && z <= t, "spectral: depth outside the die");
  std::vector<double> cosx(static_cast<std::size_t>(opts_.modes_x));
  for (int m = 0; m < opts_.modes_x; ++m) cosx[m] = std::cos(m * kPi * x / die_.width);
  double total = 0.0;
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
    double inner = 0.0;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const double g = std::hypot(m * kPi / die_.width, gy);
      const double profile =
          layered_ ? layered_depth_ratio(g, z) : steady_depth_profile(g, t, z);
      inner += sol.coeff[row + m] * profile * cosx[m];
    }
    total += inner * std::cos(gy * y);
  }
  return total;
}

std::vector<double> SpectralThermalSolver::surface_map(const Solution& sol, int nx,
                                                       int ny) const {
  PTHERM_REQUIRE(sol.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "spectral: solution size mismatch");
  PTHERM_REQUIRE(nx >= 2 && ny >= 2, "surface_map: need at least a 2x2 grid");
  std::vector<double> map(static_cast<std::size_t>(nx) * ny);
  if (numerics::is_power_of_two(static_cast<std::size_t>(nx)) &&
      numerics::is_power_of_two(static_cast<std::size_t>(ny))) {
    // DCT synthesis: fold + DCT-III along x per coefficient row, then along y
    // per output column. modes_y + nx one-dimensional transforms in total.
    numerics::Matrix stage(static_cast<std::size_t>(opts_.modes_y),
                           static_cast<std::size_t>(nx));
    for (int n = 0; n < opts_.modes_y; ++n) {
      const std::span<const double> row(sol.coeff.data() +
                                            static_cast<std::size_t>(n) * opts_.modes_x,
                                        static_cast<std::size_t>(opts_.modes_x));
      const auto vals = numerics::dct3(numerics::fold_cosine_modes(row, nx));
      ++fft_calls_;
      for (int i = 0; i < nx; ++i) stage(n, i) = vals[static_cast<std::size_t>(i)];
    }
    std::vector<double> column(static_cast<std::size_t>(opts_.modes_y));
    for (int i = 0; i < nx; ++i) {
      for (int n = 0; n < opts_.modes_y; ++n) column[static_cast<std::size_t>(n)] = stage(n, i);
      const auto vals = numerics::dct3(numerics::fold_cosine_modes(column, ny));
      ++fft_calls_;
      for (int j = 0; j < ny; ++j) map[static_cast<std::size_t>(j) * nx + i] = vals[j];
    }
    return map;
  }
  // Direct separable synthesis for grids the radix-2 DCT cannot take.
  numerics::Matrix stage(static_cast<std::size_t>(opts_.modes_y), static_cast<std::size_t>(nx));
  for (int i = 0; i < nx; ++i) {
    const double x = die_.width * (i + 0.5) / nx;
    for (int n = 0; n < opts_.modes_y; ++n) {
      const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
      double inner = 0.0;
      for (int m = 0; m < opts_.modes_x; ++m) {
        inner += sol.coeff[row + m] * std::cos(m * kPi * x / die_.width);
      }
      stage(n, i) = inner;
    }
  }
  for (int j = 0; j < ny; ++j) {
    const double y = die_.height * (j + 0.5) / ny;
    for (int i = 0; i < nx; ++i) {
      double total = 0.0;
      for (int n = 0; n < opts_.modes_y; ++n) {
        total += stage(n, i) * std::cos(n * kPi * y / die_.height);
      }
      map[static_cast<std::size_t>(j) * nx + i] = total;
    }
  }
  return map;
}

// ---------------------------------------------------------- matrix-free apply

SpectralThermalSolver::InfluenceProjection SpectralThermalSolver::make_influence_projection(
    std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "influence: no sources");
  PTHERM_REQUIRE(samples.size() == n, "influence: need one sample per source");
  const std::size_t mx = static_cast<std::size_t>(opts_.modes_x);
  const std::size_t my = static_cast<std::size_t>(opts_.modes_y);
  InfluenceProjection proj;
  proj.count = n;
  proj.proj_x.resize(n * mx);
  proj.proj_y.resize(n * my);
  proj.cos_x.resize(n * mx);
  proj.cos_y.resize(n * my);
  proj.coeff.resize(static_cast<std::size_t>(mode_count()));
  for (std::size_t j = 0; j < n; ++j) {
    // The shared projection core: steady clipping policy, c_m normalization
    // and per-watt flux density folded in, so source j's flux modes are
    // power_j * px_m * py_n.
    unit_flux_factors(die_, sources[j], opts_.modes_x, opts_.modes_y,
                      proj.proj_x.data() + j * mx, proj.proj_y.data() + j * my);
  }
  for (std::size_t p = 0; p < n; ++p) {
    double* cx = proj.cos_x.data() + p * mx;
    double* cy = proj.cos_y.data() + p * my;
    for (std::size_t m = 0; m < mx; ++m) {
      cx[m] = std::cos(static_cast<double>(m) * kPi * samples[p].x / die_.width);
    }
    for (std::size_t nn = 0; nn < my; ++nn) {
      cy[nn] = std::cos(static_cast<double>(nn) * kPi * samples[p].y / die_.height);
    }
  }
  return proj;
}

void SpectralThermalSolver::apply_influence(InfluenceProjection& proj,
                                            std::span<const double> powers,
                                            std::span<double> rises) const {
  const std::size_t n = proj.count;
  const std::size_t mx = static_cast<std::size_t>(opts_.modes_x);
  const std::size_t my = static_cast<std::size_t>(opts_.modes_y);
  PTHERM_REQUIRE(proj.proj_x.size() == n * mx && proj.proj_y.size() == n * my &&
                     proj.coeff.size() == static_cast<std::size_t>(mode_count()),
                 "apply_influence: projection belongs to a different spectral configuration");
  PTHERM_REQUIRE(powers.size() == n && rises.size() == n,
                 "apply_influence: powers/rises must have one entry per source");
  // (1) Powers -> flux modes: a power-scaled rank-1 accumulate per source.
  std::fill(proj.coeff.begin(), proj.coeff.end(), 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double power = powers[j];
    if (power == 0.0) continue;
    const double* px = proj.proj_x.data() + j * mx;
    const double* py = proj.proj_y.data() + j * my;
    for (std::size_t nn = 0; nn < my; ++nn) {
      const double fy = power * py[nn];
      if (fy == 0.0) continue;
      double* row = proj.coeff.data() + nn * mx;
      for (std::size_t m = 0; m < mx; ++m) row[m] += fy * px[m];
    }
  }
  // (2) Per-mode surface transfer: flux modes -> surface-rise coefficients.
  for (std::size_t mode = 0; mode < proj.coeff.size(); ++mode) {
    proj.coeff[mode] *= transfer_[mode];
  }
  // (3) Batched readback: separable cosine synthesis per sample from the
  // cached tables (the gather matvec, without materializing its matrix).
  for (std::size_t p = 0; p < n; ++p) {
    const double* cx = proj.cos_x.data() + p * mx;
    const double* cy = proj.cos_y.data() + p * my;
    double total = 0.0;
    for (std::size_t nn = 0; nn < my; ++nn) {
      const double* row = proj.coeff.data() + nn * mx;
      double inner = 0.0;
      for (std::size_t m = 0; m < mx; ++m) inner += row[m] * cx[m];
      total += inner * cy[nn];
    }
    rises[p] = total;
  }
}

void SpectralThermalSolver::apply_influence_batch(InfluenceProjection& proj,
                                                  std::span<const double> powers,
                                                  std::span<double> rises,
                                                  std::size_t count) const {
  const std::size_t n = proj.count;
  const std::size_t mx = static_cast<std::size_t>(opts_.modes_x);
  const std::size_t my = static_cast<std::size_t>(opts_.modes_y);
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  PTHERM_REQUIRE(proj.proj_x.size() == n * mx && proj.proj_y.size() == n * my &&
                     proj.coeff.size() == modes,
                 "apply_influence_batch: projection belongs to a different spectral "
                 "configuration");
  PTHERM_REQUIRE(powers.size() == count * n && rises.size() == count * n,
                 "apply_influence_batch: powers/rises must have count * proj.count entries");
  if (proj.batch_coeff.size() < count * modes) proj.batch_coeff.resize(count * modes);

  // Each stage streams the shared geometry tables once per source / sample
  // for the whole scenario block; within one scenario the operations (and
  // their zero-skip guards) run in apply_influence's exact order, so every
  // scenario's result matches a standalone apply bitwise.
  //
  // (1) Powers -> flux modes, a rank-1 accumulate per (source, scenario):
  // source j's px/py rows are loaded once and applied across all scenarios.
  std::fill(proj.batch_coeff.begin(), proj.batch_coeff.begin() + count * modes, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double* px = proj.proj_x.data() + j * mx;
    const double* py = proj.proj_y.data() + j * my;
    for (std::size_t k = 0; k < count; ++k) {
      const double power = powers[k * n + j];
      if (power == 0.0) continue;
      double* coeff = proj.batch_coeff.data() + k * modes;
      for (std::size_t nn = 0; nn < my; ++nn) {
        const double fy = power * py[nn];
        if (fy == 0.0) continue;
        double* row = coeff + nn * mx;
        for (std::size_t m = 0; m < mx; ++m) row[m] += fy * px[m];
      }
    }
  }
  // (2) Per-mode surface transfer over the whole block.
  for (std::size_t k = 0; k < count; ++k) {
    double* coeff = proj.batch_coeff.data() + k * modes;
    for (std::size_t mode = 0; mode < modes; ++mode) coeff[mode] *= transfer_[mode];
  }
  // (3) Per-sample cosine synthesis: sample p's tables are loaded once and
  // dotted against every scenario's mode block.
  for (std::size_t p = 0; p < n; ++p) {
    const double* cx = proj.cos_x.data() + p * mx;
    const double* cy = proj.cos_y.data() + p * my;
    for (std::size_t k = 0; k < count; ++k) {
      const double* coeff = proj.batch_coeff.data() + k * modes;
      double total = 0.0;
      for (std::size_t nn = 0; nn < my; ++nn) {
        const double* row = coeff + nn * mx;
        double inner = 0.0;
        for (std::size_t m = 0; m < mx; ++m) inner += row[m] * cx[m];
        total += inner * cy[nn];
      }
      rises[k * n + p] = total;
    }
  }
}

// ------------------------------------------------------------------ transient

SpectralThermalSolver::TransientSolution SpectralThermalSolver::make_transient() const {
  if (layered_) {
    ensure_transient_modes();
  } else {
    PTHERM_REQUIRE(die_.cv_si > 0.0,
                   "spectral transient: non-positive volumetric heat capacity");
  }
  TransientSolution state;
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  state.surface.coeff.assign(modes, 0.0);
  state.amps.assign(modes * static_cast<std::size_t>(opts_.modes_z), 0.0);
  state.flux.assign(modes, 0.0);
  return state;
}

bool SpectralThermalSolver::refresh_projections(TransientSolution& state,
                                                const std::vector<HeatSource>& sources) const {
  const std::size_t n = sources.size();
  const std::size_t mx = static_cast<std::size_t>(opts_.modes_x);
  const std::size_t my = static_cast<std::size_t>(opts_.modes_y);
  bool rebuilt = false;
  if (state.proj_key.size() != 4 * n) {
    state.proj_key.assign(4 * n, std::numeric_limits<double>::quiet_NaN());
    state.proj_x.assign(n * mx, 0.0);
    state.proj_y.assign(n * my, 0.0);
    rebuilt = true;
  }
  for (std::size_t j = 0; j < n; ++j) {
    const HeatSource& s = sources[j];
    PTHERM_REQUIRE(s.w > 0.0 && s.l > 0.0, "spectral: degenerate source (w, l must be > 0)");
    double* key = state.proj_key.data() + 4 * j;
    if (key[0] == s.cx && key[1] == s.cy && key[2] == s.w && key[3] == s.l) continue;
    key[0] = s.cx;
    key[1] = s.cy;
    key[2] = s.w;
    key[3] = s.l;
    rebuilt = true;
    // The shared projection core applies the steady path's clipping policy
    // and folds the c_m normalization plus the per-watt flux density into
    // the separable factors, so a step's projection is power * px_m * py_n.
    unit_flux_factors(die_, s, opts_.modes_x, opts_.modes_y, state.proj_x.data() + j * mx,
                      state.proj_y.data() + j * my);
  }
  return rebuilt;
}

int SpectralThermalSolver::step_transient(TransientSolution& state, double h,
                                          const std::vector<HeatSource>& sources) const {
  PTHERM_REQUIRE(h > 0.0, "step_transient: h must be positive");
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  const std::size_t mz = static_cast<std::size_t>(opts_.modes_z);
  const std::size_t mx = static_cast<std::size_t>(opts_.modes_x);
  const std::size_t my = static_cast<std::size_t>(opts_.modes_y);
  PTHERM_REQUIRE(state.amps.size() == modes * mz && state.surface.coeff.size() == modes,
                 "step_transient: state belongs to a different spectral configuration");

  // (1) Project the step's powers onto the flux modes. Geometry is cached
  // per source, so between co-simulation steps this is a scaled rank-1
  // accumulate per source — no trigonometry — and when neither powers nor
  // geometry moved since the last step (an epoch-driven driver holding its
  // powers) the flux modes are still valid and the pass is skipped whole.
  bool flux_dirty = refresh_projections(state, sources);
  if (state.power_key.size() != sources.size()) {
    state.power_key.assign(sources.size(), std::numeric_limits<double>::quiet_NaN());
    flux_dirty = true;
  }
  if (!flux_dirty) {
    for (std::size_t j = 0; j < sources.size(); ++j) {
      if (state.power_key[j] != sources[j].power) {
        flux_dirty = true;
        break;
      }
    }
  }
  if (flux_dirty) {
    std::fill(state.flux.begin(), state.flux.end(), 0.0);
    for (std::size_t j = 0; j < sources.size(); ++j) {
      const double power = sources[j].power;
      state.power_key[j] = power;
      if (power == 0.0) continue;
      const double* px = state.proj_x.data() + j * mx;
      const double* py = state.proj_y.data() + j * my;
      for (std::size_t nn = 0; nn < my; ++nn) {
        const double fy = power * py[nn];
        if (fy == 0.0) continue;
        double* row = state.flux.data() + nn * mx;
        for (std::size_t m = 0; m < mx; ++m) row[m] += fy * px[m];
      }
    }
    ++power_updates_;
  }

  // (2 + 3, layered) The modal rates live on the per-(mode, p) grid — they
  // do not separate into lateral x z factors — so the decay cache is the
  // full grid; the amplitude update and the quasi-static tail fold are the
  // same exact exponential machinery as the closed-form path below.
  if (layered_) {
    ensure_transient_modes();
    if (state.decay_h != h || state.decay.size() != modes * mz) {
      state.decay.resize(modes * mz);
      for (std::size_t i = 0; i < modes * mz; ++i) {
        state.decay[i] = std::exp(-lambda_[i] * h);
      }
      state.decay_h = h;
    }
    for (std::size_t mode = 0; mode < modes; ++mode) {
      const double q = state.flux[mode];
      double* amp = state.amps.data() + mode * mz;
      const double* gain = gain_.data() + mode * mz;
      const double* decay = state.decay.data() + mode * mz;
      double sum = 0.0;
      for (std::size_t p = 0; p < mz; ++p) {
        const double d = decay[p];
        amp[p] = amp[p] * d + q * gain[p] * (1.0 - d);
        sum += amp[p];
      }
      state.surface.coeff[mode] = sum + tail_[mode] * q;
    }
    return 1;
  }

  // (2) Decay factors keyed by h, in separable lateral x z form: the exact
  // per-mode decay e^{-alpha (g^2 + gamma_p^2) h} is their product.
  const double alpha = die_.k_si / die_.cv_si;
  if (state.decay_h != h || state.decay_lat.size() != modes) {
    state.decay_lat.resize(modes);
    state.decay_z.resize(mz);
    for (std::size_t mode = 0; mode < modes; ++mode) {
      state.decay_lat[mode] = std::exp(-alpha * g2_[mode] * h);
    }
    for (std::size_t p = 0; p < mz; ++p) state.decay_z[p] = std::exp(-alpha * gamma2_[p] * h);
    state.decay_h = h;
  }

  // (3) Advance every z-eigenmode amplitude exactly and synthesize the
  // surface coefficients: the carried modes' sum plus the quasi-static tail.
  for (std::size_t mode = 0; mode < modes; ++mode) {
    const double dl = state.decay_lat[mode];
    const double q = state.flux[mode];
    double* amp = state.amps.data() + mode * mz;
    const double* gain = gain_.data() + mode * mz;
    double sum = 0.0;
    for (std::size_t p = 0; p < mz; ++p) {
      const double d = dl * state.decay_z[p];
      amp[p] = amp[p] * d + q * gain[p] * (1.0 - d);
      sum += amp[p];
    }
    state.surface.coeff[mode] = sum + tail_[mode] * q;
  }
  return 1;
}

double SpectralThermalSolver::rise_at_depth(const TransientSolution& state, double x, double y,
                                            double z) const {
  PTHERM_REQUIRE(!layered_,
                 "spectral: transient rise_at_depth needs the single-die z-eigenbasis "
                 "(layered stacks: query the surface, or use the layered FDM backend)");
  const std::size_t modes = static_cast<std::size_t>(mode_count());
  const std::size_t mz = static_cast<std::size_t>(opts_.modes_z);
  PTHERM_REQUIRE(state.amps.size() == modes * mz && state.surface.coeff.size() == modes,
                 "spectral: transient state size mismatch");
  const double t = die_.thickness;
  PTHERM_REQUIRE(z >= 0.0 && z <= t, "spectral: depth outside the die");
  std::vector<double> cosz(mz);
  for (std::size_t p = 0; p < mz; ++p) cosz[p] = std::cos(std::sqrt(gamma2_[p]) * z);
  std::vector<double> cosx(static_cast<std::size_t>(opts_.modes_x));
  for (int m = 0; m < opts_.modes_x; ++m) cosx[m] = std::cos(m * kPi * x / die_.width);
  double total = 0.0;
  for (int n = 0; n < opts_.modes_y; ++n) {
    const double gy = n * kPi / die_.height;
    const std::size_t row = static_cast<std::size_t>(n) * opts_.modes_x;
    double inner = 0.0;
    for (int m = 0; m < opts_.modes_x; ++m) {
      const std::size_t mode = row + m;
      const double g = std::sqrt(g2_[mode]);
      const double* amp = state.amps.data() + mode * mz;
      const double* gain = gain_.data() + mode * mz;
      // Carried z-modes at their eigenfunction values; the quasi-static
      // remainder is the steady depth profile minus the carried modes'
      // steady share, scaled by the current flux.
      double carried = 0.0;
      double carried_steady = 0.0;
      for (std::size_t p = 0; p < mz; ++p) {
        carried += amp[p] * cosz[p];
        carried_steady += gain[p] * cosz[p];
      }
      const double tail = state.flux[mode] *
                          (transfer_[mode] * steady_depth_profile(g, t, z) - carried_steady);
      inner += (carried + tail) * cosx[m];
    }
    total += inner * std::cos(gy * y);
  }
  return total;
}

}  // namespace ptherm::thermal
