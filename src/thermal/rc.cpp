#include "thermal/rc.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "numerics/eigen.hpp"
#include "numerics/ode.hpp"

namespace ptherm::thermal {

void validate(const ThermalRc& rc) {
  PTHERM_REQUIRE(rc.r_th > 0.0, "ThermalRc: r_th must be > 0");
  PTHERM_REQUIRE(rc.c_th > 0.0, "ThermalRc: c_th must be > 0");
}

PackageRcNetwork::PackageRcNetwork(std::vector<ThermalRc> stages)
    : stages_(std::move(stages)) {
  PTHERM_REQUIRE(!stages_.empty(), "PackageRcNetwork: need at least one stage");
  for (const ThermalRc& stage : stages_) validate(stage);
  const std::size_t n = stages_.size();
  // Conductance ladder G (tridiagonal): node i couples to node i + 1 through
  // 1/r_i, the last node to ambient through 1/r_{n-1}. Symmetrize with
  // C^{-1/2} so the modal reduction is a symmetric tridiagonal eigenproblem.
  std::vector<double> diag(n);
  std::vector<double> off(n >= 1 ? n - 1 : 0);
  for (std::size_t i = 0; i < n; ++i) {
    double g = 1.0 / stages_[i].r_th;
    if (i > 0) g += 1.0 / stages_[i - 1].r_th;
    diag[i] = g / stages_[i].c_th;
    if (i + 1 < n) {
      off[i] = -1.0 / (stages_[i].r_th * std::sqrt(stages_[i].c_th * stages_[i + 1].c_th));
    }
  }
  lambda_ = numerics::tridiagonal_eigenvalues(diag, off);
  gain_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    PTHERM_REQUIRE(lambda_[p] > 0.0, "PackageRcNetwork: ladder is not dissipative");
    const auto u = numerics::tridiagonal_eigenvector(diag, off, lambda_[p]);
    // Case-referred modal machinery: with amp_p := u0c_p * z_p the update is
    // amp' = -lambda amp + P * u0c^2, so the steady case rise per watt of
    // mode p is u0c^2 / lambda — and the gains sum to (G^{-1})_00, the total
    // ladder resistance (tested).
    const double u0c = u[0] / std::sqrt(stages_[0].c_th);
    gain_[p] = u0c * u0c / lambda_[p];
  }
}

double PackageRcNetwork::total_resistance() const noexcept {
  double r = 0.0;
  for (const ThermalRc& stage : stages_) r += stage.r_th;
  return r;
}

PackageRcNetwork::State PackageRcNetwork::make_state() const {
  State state;
  state.amps.assign(stages_.size(), 0.0);
  return state;
}

double PackageRcNetwork::advance(State& state, double h, double power) const {
  PTHERM_REQUIRE(h > 0.0, "PackageRcNetwork::advance: h must be positive");
  PTHERM_REQUIRE(state.amps.size() == stages_.size(),
                 "PackageRcNetwork::advance: state belongs to a different network");
  if (state.decay_h != h || state.decay.size() != lambda_.size()) {
    state.decay.resize(lambda_.size());
    for (std::size_t p = 0; p < lambda_.size(); ++p) {
      state.decay[p] = std::exp(-lambda_[p] * h);
    }
    state.decay_h = h;
  }
  double rise = 0.0;
  for (std::size_t p = 0; p < state.amps.size(); ++p) {
    const double d = state.decay[p];
    state.amps[p] = state.amps[p] * d + power * gain_[p] * (1.0 - d);
    rise += state.amps[p];
  }
  state.case_rise = rise;
  return rise;
}

double device_r_th(double k_si, double w, double l, double thickness) noexcept {
  const double direct = rect_center_rise(k_si, 1.0, w, l);
  // Isothermal sink plane: the alternating z-image series evaluated at
  // rho = 0 sums in closed form, sum 2(-1)^j/(2jt) = -ln(2)/t.
  const double image = point_source_rise(k_si, 1.0, thickness) * std::log(2.0);
  return direct - image;
}

double device_c_th(double cv_si, double thickness, double radius_fraction) noexcept {
  const double r = radius_fraction * thickness;
  return cv_si * (2.0 / 3.0) * std::numbers::pi * r * r * r;
}

ThermalRc device_thermal_rc(double k_si, double cv_si, double w, double l, double thickness) {
  PTHERM_REQUIRE(w > 0.0 && l > 0.0 && thickness > 0.0, "device_thermal_rc: bad geometry");
  ThermalRc rc;
  rc.r_th = device_r_th(k_si, w, l, thickness);
  rc.c_th = device_c_th(cv_si, thickness);
  return rc;
}

namespace {
bool chop_on(double t, double f, double duty) {
  const double phase = t * f - std::floor(t * f);
  return phase < duty;
}
}  // namespace

SelfHeatingTrace run_self_heating(const SelfHeatingConfig& cfg) {
  validate(cfg.rc);
  PTHERM_REQUIRE(cfg.dt > 0.0 && cfg.t_stop > cfg.dt, "run_self_heating: bad time grid");

  auto current_at = [&](double temp) {
    return cfg.i_on_ref * std::max(0.0, 1.0 - cfg.tc_current * (temp - cfg.t_ambient));
  };
  auto rhs = [&](double t, double rise) {
    const double p = chop_on(t, cfg.f_chop, cfg.duty)
                         ? cfg.v_drain * current_at(cfg.t_ambient + rise)
                         : 0.0;
    return (p - rise / cfg.rc.r_th) / cfg.rc.c_th;
  };
  const auto sol = numerics::rk4_scalar(rhs, 0.0, 0.0, cfg.t_stop, cfg.dt);

  SelfHeatingTrace trace;
  trace.time = sol.times;
  trace.temp.reserve(sol.times.size());
  trace.current.reserve(sol.times.size());
  trace.v_sense.reserve(sol.times.size());
  for (std::size_t i = 0; i < sol.times.size(); ++i) {
    const double rise = sol.states[i][0];
    const double temp = cfg.t_ambient + rise;
    const double on = chop_on(sol.times[i], cfg.f_chop, cfg.duty) ? 1.0 : 0.0;
    const double i_d = on * current_at(temp);
    trace.temp.push_back(temp);
    trace.current.push_back(i_d);
    trace.v_sense.push_back(i_d * cfg.r_sense);
  }
  return trace;
}

double SelfHeatingTrace::max_rise(double t_ambient) const {
  double rise = 0.0;
  for (double t : temp) rise = std::max(rise, t - t_ambient);
  return rise;
}

double extract_r_th(const SelfHeatingConfig& cfg, const SelfHeatingTrace& trace) {
  // Use the hottest recorded point of the ON phase: Rth = dT / P(T_hot).
  double best_rise = 0.0;
  double p_at_best = 0.0;
  for (std::size_t i = 0; i < trace.time.size(); ++i) {
    const double rise = trace.temp[i] - cfg.t_ambient;
    if (trace.current[i] > 0.0 && rise > best_rise) {
      best_rise = rise;
      p_at_best = cfg.v_drain * trace.current[i];
    }
  }
  PTHERM_REQUIRE(p_at_best > 0.0, "extract_r_th: trace has no ON phase");
  return best_rise / p_at_best;
}

}  // namespace ptherm::thermal
