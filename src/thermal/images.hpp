// Full-chip analytic thermal model: superposition of rectangle sources
// (Eq. 21) plus the method of images (§3.3) to impose the paper's boundary
// conditions — adiabatic die sidewalls (mirror lattice in x and y) and an
// isothermal bottom at the heat sink (a -P image reflected across the sink
// plane).
#pragma once

#include <string>
#include <vector>

#include "thermal/analytic.hpp"

namespace ptherm::thermal {

/// Die geometry and material for the analytic chip model.
struct Die {
  double width = 1e-3;        ///< x extent [m]
  double height = 1e-3;       ///< y extent [m]
  double thickness = 350e-6;  ///< distance from surface to the heat sink [m]
  double k_si = 148.0;        ///< thermal conductivity [W/(m K)]
  double t_sink = 300.0;      ///< heat-sink (bottom) temperature [K]
  double cv_si = 1.631e6;     ///< volumetric heat capacity [J/(m^3 K)] (transients)
};

/// A surface point a thermal query reports the rise at (a block centre in
/// the co-simulation use). Shared by the backend layer's batched queries and
/// the spectral solver's matrix-free influence projections.
struct SurfaceSample {
  double x = 0.0;
  double y = 0.0;
};

struct ImageOptions {
  /// Lateral mirror order: images at indices -order..order in both axes
  /// ((2*order+1)^2 positions x 2 mirror signs per axis). 0 disables
  /// sidewall images entirely (pure Eq. 21 superposition).
  int lateral_order = 2;
  /// Impose the isothermal sink plane at z = thickness. A single -P image is
  /// not enough: the adiabatic top re-reflects it, giving the alternating
  /// series  T(rho) = P/(2 pi k) [1/rho + 2 sum_j (-1)^j / sqrt(rho^2 +
  /// (2 j t)^2)]  whose truncation (with a half-term correction) reproduces
  /// the exponential lateral decay a Dirichlet plane causes.
  bool bottom_images = true;
  /// Number of z-image terms in that series.
  int z_order = 24;
};

/// Analytic chip thermal model: evaluate anywhere on the surface in O(#images)
/// closed-form kernel calls — the "fast" estimator the paper contrasts with
/// numerical solvers.
///
/// Source-clipping policy (power conservation, matching FdmThermalSolver):
/// each source's footprint is clipped to the die surface and the FULL source
/// power is radiated from the clipped rectangle; a source entirely outside
/// the die contributes nothing. `sources()` still reports the caller's
/// unclipped geometry — clipping is internal to the field evaluation.
class ChipThermalModel {
 public:
  ChipThermalModel(Die die, std::vector<HeatSource> sources, ImageOptions opts = {});

  /// Temperature rise above the heat sink at surface point (x, y) [K].
  [[nodiscard]] double rise(double x, double y) const;

  /// Absolute temperature = sink temperature + rise [K].
  [[nodiscard]] double temperature(double x, double y) const;

  /// Rise at the centre of source `i` (what a block "feels"; used by the
  /// co-simulation loop as the block temperature).
  [[nodiscard]] double source_center_rise(std::size_t i) const;

  /// Samples temperature on an nx x ny surface grid (row-major, y outer).
  [[nodiscard]] std::vector<double> surface_map(int nx, int ny) const;

  [[nodiscard]] const Die& die() const noexcept { return die_; }
  [[nodiscard]] const std::vector<HeatSource>& sources() const noexcept { return sources_; }
  [[nodiscard]] std::size_t image_count() const noexcept { return images_.size(); }

  /// Replaces the power of source `i` (geometry fixed); images are updated.
  /// Used by the electro-thermal fixed point, which re-evaluates powers only.
  void set_source_power(std::size_t i, double power);

 private:
  struct Image {
    HeatSource source;   ///< lateral mirror copy
    std::size_t parent;  ///< index of the originating source
  };
  void clip_sources();
  void rebuild_images();
  /// Contribution of one lateral copy at surface point (x, y): the Eq. (20)
  /// rectangle kernel plus (when enabled) the alternating z-image series.
  [[nodiscard]] double image_rise(const Image& img, double x, double y) const;

  Die die_;
  std::vector<HeatSource> sources_;   ///< as given by the caller
  std::vector<HeatSource> clipped_;   ///< die-clipped footprints; w == 0 marks fully off-die
  ImageOptions opts_;
  std::vector<Image> images_;
};

}  // namespace ptherm::thermal
