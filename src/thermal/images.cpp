#include "thermal/images.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::thermal {

ChipThermalModel::ChipThermalModel(Die die, std::vector<HeatSource> sources, ImageOptions opts)
    : die_(die), sources_(std::move(sources)), opts_(opts) {
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0 && die_.thickness > 0.0,
                 "ChipThermalModel: degenerate die");
  PTHERM_REQUIRE(opts_.lateral_order >= 0, "ChipThermalModel: negative image order");
  PTHERM_REQUIRE(opts_.z_order >= 1, "ChipThermalModel: z_order must be positive");
  for (const auto& s : sources_) {
    PTHERM_REQUIRE(s.w > 0.0 && s.l > 0.0, "ChipThermalModel: degenerate source");
  }
  clip_sources();
  rebuild_images();
}

void ChipThermalModel::clip_sources() {
  // Power-conservation policy (see class comment): the full power radiates
  // from the die-clipped footprint; fully off-die sources are inert, marked
  // by a zero-width clipped entry so indices stay aligned with sources_.
  clipped_.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const HeatSource& s = sources_[i];
    const double x0 = std::max(s.cx - 0.5 * s.w, 0.0);
    const double x1 = std::min(s.cx + 0.5 * s.w, die_.width);
    const double y0 = std::max(s.cy - 0.5 * s.l, 0.0);
    const double y1 = std::min(s.cy + 0.5 * s.l, die_.height);
    HeatSource c = s;
    if (x1 <= x0 || y1 <= y0) {
      c.w = 0.0;
      c.l = 0.0;
    } else {
      // Rewrite only axes that were actually clipped: recomputing an
      // untouched extent as x1 - x0 can perturb it by an ulp, and the
      // min-kernel's line-source orientation test (l > w) must not flip on
      // rounding noise for fully in-die sources.
      if (x0 > s.cx - 0.5 * s.w || x1 < s.cx + 0.5 * s.w) {
        c.cx = 0.5 * (x0 + x1);
        c.w = x1 - x0;
      }
      if (y0 > s.cy - 0.5 * s.l || y1 < s.cy + 0.5 * s.l) {
        c.cy = 0.5 * (y0 + y1);
        c.l = y1 - y0;
      }
    }
    clipped_[i] = c;
  }
}

void ChipThermalModel::rebuild_images() {
  images_.clear();
  const int order = opts_.lateral_order;
  const double wd = die_.width;
  const double hd = die_.height;
  for (std::size_t si = 0; si < clipped_.size(); ++si) {
    const HeatSource& s = clipped_[si];
    if (s.w <= 0.0) continue;  // fully off-die: no field
    if (order == 0) {
      images_.push_back({s, si});
      continue;
    }
    // Mirror lattice for adiabatic walls at x = 0 / x = wd (and same in y):
    // a source at cx maps to 2*m*wd + cx and 2*m*wd - cx for every m.
    for (int mx = -order; mx <= order; ++mx) {
      for (int sx = 0; sx < 2; ++sx) {
        // Skip duplicates when a source sits exactly on a wall (then +cx and
        // -cx coincide for every lattice index).
        if (sx == 1 && s.cx == 0.0) continue;
        const double cx = 2.0 * mx * wd + (sx == 0 ? s.cx : -s.cx);
        for (int my = -order; my <= order; ++my) {
          for (int sy = 0; sy < 2; ++sy) {
            if (sy == 1 && s.cy == 0.0) continue;
            const double cy = 2.0 * my * hd + (sy == 0 ? s.cy : -s.cy);
            HeatSource img = s;
            img.cx = cx;
            img.cy = cy;
            images_.push_back({img, si});
          }
        }
      }
    }
  }
}

double ChipThermalModel::image_rise(const Image& img, double x, double y) const {
  const double dx = x - img.source.cx;
  const double dy = y - img.source.cy;
  const double rho_sq = dx * dx + dy * dy;
  const double t = die_.thickness;
  if (opts_.bottom_images) {
    // With a sink plane at depth t the net field of a source decays like
    // exp(-pi*rho/(2t)); beyond a few thicknesses it is numerically nothing,
    // so distant lateral mirrors are skipped outright (this also makes the
    // lateral-order truncation converge instead of accumulating tails).
    if (rho_sq > (8.0 * t) * (8.0 * t)) return 0.0;
  }
  double rise = rect_rise_min(die_.k_si, img.source, x, y);
  if (!opts_.bottom_images) return rise;
  // Alternating z-image series for the isothermal plane at depth t, seen
  // from the (adiabatic) surface:
  //   dT = 2 * sum_j (-1)^j * P / (2 pi k sqrt(rho^2 + (2jt)^2)).
  // Terms use the point kernel (every image is buried >= 2t, far compared to
  // the source extent). The terms decay slowly for rho >~ t, so the sum is
  // Euler-accelerated: repeated averaging of the trailing partial sums turns
  // O(1/J) truncation error into something negligible.
  const int n_terms = opts_.z_order;
  constexpr int kTail = 8;
  double partials[kTail];
  double series = 0.0;
  int tail_count = 0;
  for (int j = 1; j <= n_terms; ++j) {
    const double depth = 2.0 * j * t;
    series += 2.0 * ((j % 2 == 1) ? -1.0 : 1.0) *
              point_source_rise(die_.k_si, img.source.power, std::sqrt(rho_sq + depth * depth));
    if (j > n_terms - kTail) partials[tail_count++] = series;
  }
  // Euler transform on the trailing partial sums.
  for (int level = tail_count - 1; level > 0; --level) {
    for (int i = 0; i < level; ++i) partials[i] = 0.5 * (partials[i] + partials[i + 1]);
  }
  return rise + (tail_count > 0 ? partials[0] : series);
}

double ChipThermalModel::rise(double x, double y) const {
  double sum = 0.0;
  for (const auto& img : images_) sum += image_rise(img, x, y);
  return sum;
}

double ChipThermalModel::temperature(double x, double y) const {
  return die_.t_sink + rise(x, y);
}

double ChipThermalModel::source_center_rise(std::size_t i) const {
  PTHERM_REQUIRE(i < sources_.size(), "source_center_rise: index out of range");
  return rise(sources_[i].cx, sources_[i].cy);
}

std::vector<double> ChipThermalModel::surface_map(int nx, int ny) const {
  PTHERM_REQUIRE(nx >= 2 && ny >= 2, "surface_map: need at least a 2x2 grid");
  std::vector<double> map(static_cast<std::size_t>(nx) * ny, 0.0);
  for (int j = 0; j < ny; ++j) {
    const double y = die_.height * (j + 0.5) / ny;
    for (int i = 0; i < nx; ++i) {
      const double x = die_.width * (i + 0.5) / nx;
      map[static_cast<std::size_t>(j) * nx + i] = temperature(x, y);
    }
  }
  return map;
}

void ChipThermalModel::set_source_power(std::size_t i, double power) {
  PTHERM_REQUIRE(i < sources_.size(), "set_source_power: index out of range");
  sources_[i].power = power;
  clipped_[i].power = power;
  for (auto& img : images_) {
    if (img.parent == i) img.source.power = power;
  }
}

}  // namespace ptherm::thermal
