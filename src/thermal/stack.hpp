// First-class die stacks: the z-structure every thermal backend used to
// hard-code ("one homogeneous die, isothermal bottom") made explicit as an
// ordered list of layers (die silicon, TIM, spreader, heatsink base, 3-D
// tiers, ...) plus a boundary closure below the last layer — isothermal at
// the sink, convective film to ambient, or an attached compact RC package
// network whose case temperature becomes a dynamic state of the transient
// co-simulation. The Die struct keeps the lateral geometry and the ambient
// temperature; the stack owns everything about z. A stack that reduces to
// the classic single-die problem routes the solvers onto their original
// closed-form paths, so DieStack::single(die) reproduces legacy results
// bitwise.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "thermal/images.hpp"
#include "thermal/rc.hpp"

namespace ptherm::thermal {

/// One homogeneous layer of the z-stack, top to bottom.
struct StackLayer {
  std::string name;           ///< label for tables/diagnostics ("die", "tim", ...)
  double thickness = 0.0;     ///< [m]
  double k = 0.0;             ///< thermal conductivity [W/(m K)]
  double cv = 0.0;            ///< volumetric heat capacity [J/(m^3 K)]
  /// Diffusivity k / cv [m^2/s] — the rate constant of this layer's modes.
  [[nodiscard]] double diffusivity() const noexcept { return k / cv; }
};

/// What closes the stack below the last layer.
enum class BoundaryKind {
  /// Fixed temperature (the classic "ideal heat sink" plane).
  Isothermal,
  /// Convective film to ambient: q = h * theta at the bottom face.
  Convective,
  /// Compact Cauer package network attached at the bottom face; the
  /// conduction operator sees an isothermal case plane whose temperature
  /// (case rise above ambient) is advanced dynamically by the transient
  /// driver — and folds to the scalar r_package view at steady state.
  RcNetwork,
};

struct BoundarySpec {
  BoundaryKind kind = BoundaryKind::Isothermal;
  double h = 0.0;  ///< film coefficient [W/(m^2 K)], Convective only
  std::optional<PackageRcNetwork> rc;  ///< RcNetwork only
};

/// Ordered layer stack + boundary closure. Validated at construction:
/// at least one layer, positive thickness/k/cv per layer, a positive film
/// coefficient for Convective, an attached network for RcNetwork.
class DieStack {
 public:
  explicit DieStack(std::vector<StackLayer> layers, BoundarySpec boundary = {});

  /// The classic single-die stack for `die`: one silicon layer with the
  /// die's thickness/k/cv and an isothermal bottom. Solvers detect this
  /// (reduces_to) and keep their original closed-form paths.
  [[nodiscard]] static DieStack single(const Die& die);

  [[nodiscard]] const std::vector<StackLayer>& layers() const noexcept { return layers_; }
  [[nodiscard]] const BoundarySpec& boundary() const noexcept { return boundary_; }
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

  [[nodiscard]] double total_thickness() const noexcept;

  /// One-dimensional (per-area) series resistance surface -> boundary
  /// reference: sum t_i / k_i, plus 1 / h for a convective closure
  /// [K m^2 / W]. This is the DC limit of the per-mode transfer and the
  /// uniform-power exactness identity the layered tests pin.
  [[nodiscard]] double series_resistance_per_area() const noexcept;

  /// Uniform package resistance [K/W] the boundary adds on top of the
  /// conduction operator: the attached RC network's total resistance, zero
  /// otherwise. This is the derived r_package view — a steady cosim over an
  /// RcNetwork stack equals the same run with r_package =
  /// package_resistance() and an isothermal closure (tested).
  [[nodiscard]] double package_resistance() const noexcept;

  /// Whether the conduction problem is exactly the classic single-die
  /// problem for `die`: one layer matching the die's thickness/k/cv and a
  /// bottom plane that is isothermal as far as the operator is concerned
  /// (Isothermal, or RcNetwork — the case plane is isothermal at each
  /// instant; its motion is the driver's job). Solvers use this to keep the
  /// legacy closed-form path bitwise intact.
  [[nodiscard]] bool reduces_to(const Die& die) const noexcept;

  /// Whether the operator's bottom plane is isothermal (Isothermal or
  /// RcNetwork closure) as opposed to a convective film.
  [[nodiscard]] bool isothermal_operator_boundary() const noexcept {
    return boundary_.kind != BoundaryKind::Convective;
  }

 private:
  std::vector<StackLayer> layers_;
  BoundarySpec boundary_;
};

/// Splits `total_cells` z-cells across the stack's layers proportionally to
/// layer thickness (largest-remainder rounding, at least one cell per
/// layer). Shared by the layered FDM grid and the spectral layered modal
/// grid so the two discretizations slice the stack identically. Throws if
/// total_cells < layer count.
[[nodiscard]] std::vector<int> distribute_stack_cells(const DieStack& stack, int total_cells);

}  // namespace ptherm::thermal
