// Thermal-map export: greyscale PGM images (viewable everywhere, zero
// dependencies) and gnuplot-ready matrix dumps, so benches and examples can
// hand users the same visual artifact the paper's Figs. 5-7 show.
#pragma once

#include <string>
#include <vector>

namespace ptherm::thermal {

/// A sampled surface map: row-major, ny rows of nx samples, row 0 at y = 0.
struct SurfaceMap {
  int nx = 0;
  int ny = 0;
  std::vector<double> values;  ///< temperatures or rises, size nx*ny

  [[nodiscard]] double at(int i, int j) const { return values[static_cast<std::size_t>(j) * nx + i]; }
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
};

/// Writes an 8-bit binary PGM, mapping [min, max] linearly to [0, 255]
/// (hotter = brighter). Row 0 of the map is written at the image bottom so
/// the picture matches the die's coordinate system. Returns false if the
/// file cannot be opened.
bool write_pgm(const SurfaceMap& map, const std::string& path);

/// Writes a gnuplot "matrix" file (`plot 'f' matrix with image`). Values are
/// written with max_digits10 precision so a read_gnuplot_matrix round trip
/// reproduces every finite temperature bitwise (+-inf survives too; NaN
/// reads back as a quiet NaN without its payload bits).
bool write_gnuplot_matrix(const SurfaceMap& map, const std::string& path);

/// Reads a map previously written by write_gnuplot_matrix (leading '#'
/// comment lines are skipped). Throws ptherm::IoError when the file is
/// missing, empty, ragged, or contains a non-numeric token.
SurfaceMap read_gnuplot_matrix(const std::string& path);

/// ASCII isotherm rendering with 10 shade levels (what the benches print).
std::string render_ascii(const SurfaceMap& map);

}  // namespace ptherm::thermal
