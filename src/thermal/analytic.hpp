// Analytic steady-state thermal kernels from the paper's §3: a rectangular
// source of power P on the surface of a silicon half-space with an adiabatic
// top. All functions return the temperature *rise* above the far-field
// reference [K]; absolute temperatures are assembled by thermal/images.hpp.
//
//  * point_source_rise      — Eq. (16): P / (2 pi k r)
//  * rect_center_rise       — Eq. (18): exact rise at the centre of W x L
//  * line_source_rise       — Eq. (19): far-field line-source profile
//  * rect_rise_min          — Eq. (20): min(T0, Tline), the paper's estimator
//  * rect_rise_exact        — Eq. (17) evaluated in closed form (corner sums)
//  * rect_rise_quadrature   — Eq. (17) by adaptive quadrature (cross-check)
#pragma once

namespace ptherm::thermal {

/// Axis-aligned rectangular heat source on the die surface. (cx, cy) is the
/// centre, `w`/`l` the extents along x/y [m], `power` in watts.
struct HeatSource {
  double cx = 0.0;
  double cy = 0.0;
  double w = 0.0;
  double l = 0.0;
  double power = 0.0;
};

/// Eq. (16): rise at distance r from an ideal point source (half-space).
[[nodiscard]] double point_source_rise(double k_si, double power, double r) noexcept;

/// Eq. (18): exact rise at the centre of a uniform W x L source.
[[nodiscard]] double rect_center_rise(double k_si, double power, double w, double l) noexcept;

/// Eq. (19): rise at (x, y) from a uniform line source of length `w` along
/// the x axis, centred at the origin. Diverges on the segment itself (the
/// min() in Eq. 20 is what tames it).
[[nodiscard]] double line_source_rise(double k_si, double power, double w, double x,
                                      double y) noexcept;

/// Eq. (20): the paper's profile estimator min(T0, Tline) for a source
/// centred at (src.cx, src.cy). The line source is oriented along the longer
/// side, as §3.2 prescribes (assume W > L).
[[nodiscard]] double rect_rise_min(double k_si, const HeatSource& src, double x,
                                   double y) noexcept;

/// Closed-form evaluation of Eq. (17): the 1/r kernel integrated over the
/// rectangle has antiderivative v*asinh(u/|v|) + u*asinh(v/|u|); corner sums
/// give the exact rise anywhere (inside or outside the source).
[[nodiscard]] double rect_rise_exact(double k_si, const HeatSource& src, double x,
                                     double y) noexcept;

/// Adaptive-quadrature evaluation of Eq. (17); slow, used to validate
/// rect_rise_exact in tests.
[[nodiscard]] double rect_rise_quadrature(double k_si, const HeatSource& src, double x,
                                          double y);

/// Exact rise at depth `z` below surface point (x, y) for the same uniform
/// rectangle: the Newtonian-potential corner form
///   G(u,v,z) = v ln(u+R) + u ln(v+R) - z atan(u v / (z R)),
/// which reduces to rect_rise_exact at z = 0. Used to compare the analytic
/// model against cell-centred FDM layers without extrapolation bias.
[[nodiscard]] double rect_rise_exact_at_depth(double k_si, const HeatSource& src, double x,
                                              double y, double z) noexcept;

}  // namespace ptherm::thermal
