#include "thermal/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "numerics/quadrature.hpp"

namespace ptherm::thermal {

namespace {
constexpr double kPi = std::numbers::pi;
}

double point_source_rise(double k_si, double power, double r) noexcept {
  return power / (2.0 * kPi * k_si * std::max(r, 1e-30));
}

double rect_center_rise(double k_si, double power, double w, double l) noexcept {
  // T0 = P / (pi k W L) * [ L asinh(W/L) + W asinh(L/W) ]  (Eq. 18 rewritten
  // with asinh; identical to the paper's log form since
  // ln((sqrt(W^2+L^2)+W)/(sqrt(W^2+L^2)-W)) = 2 asinh(W/L)).
  return power / (kPi * k_si * w * l) *
         (l * std::asinh(w / l) + w * std::asinh(l / w));
}

double line_source_rise(double k_si, double power, double w, double x, double y) noexcept {
  // T = P / (2 pi k W) * [ asinh((x + W/2)/|y|) - asinh((x - W/2)/|y|) ].
  // As y -> 0 this reduces to the paper's log form off the segment and
  // diverges on it; the tiny floor keeps IEEE arithmetic finite.
  const double ay = std::max(std::abs(y), 1e-30);
  const double u1 = x + 0.5 * w;
  const double u2 = x - 0.5 * w;
  return power / (2.0 * kPi * k_si * w) * (std::asinh(u1 / ay) - std::asinh(u2 / ay));
}

double rect_rise_min(double k_si, const HeatSource& src, double x, double y) noexcept {
  const double t0 = rect_center_rise(k_si, src.power, src.w, src.l);
  // Orient the line source along the longer rectangle side (§3.2: W > L).
  double dx = x - src.cx;
  double dy = y - src.cy;
  double length = src.w;
  if (src.l > src.w) {
    std::swap(dx, dy);
    length = src.l;
  }
  const double t_line = line_source_rise(k_si, src.power, length, dx, dy);
  return std::min(t0, t_line);
}

namespace {
/// Antiderivative of 1/sqrt(u^2+v^2) integrated over u and v, written with
/// asinh so the corner sum below is finite for every corner position.
double corner_g(double u, double v) noexcept {
  double g = 0.0;
  if (v != 0.0) g += v * std::asinh(u / std::abs(v));
  if (u != 0.0) g += u * std::asinh(v / std::abs(u));
  return g;
}
}  // namespace

double rect_rise_exact(double k_si, const HeatSource& src, double x, double y) noexcept {
  const double u1 = (x - src.cx) - 0.5 * src.w;
  const double u2 = (x - src.cx) + 0.5 * src.w;
  const double v1 = (y - src.cy) - 0.5 * src.l;
  const double v2 = (y - src.cy) + 0.5 * src.l;
  const double integral =
      corner_g(u2, v2) - corner_g(u1, v2) - corner_g(u2, v1) + corner_g(u1, v1);
  return src.power / (2.0 * kPi * k_si * src.w * src.l) * integral;
}

namespace {
/// Antiderivative of 1/sqrt(u^2+v^2+z^2) in u and v at fixed depth z > 0.
double corner_g_depth(double u, double v, double z) noexcept {
  const double r = std::sqrt(u * u + v * v + z * z);
  // ln(u + r) is ill-conditioned for u << 0 with small v,z; use the identity
  // u + r = (v^2 + z^2) / (r - u) there.
  auto safe_log = [](double a, double other_sq, double r_) {
    return (a > 0.0) ? std::log(a + r_) : std::log(other_sq / (r_ - a));
  };
  double g = 0.0;
  if (v != 0.0) g += v * safe_log(u, v * v + z * z, r);
  if (u != 0.0) g += u * safe_log(v, u * u + z * z, r);
  if (z != 0.0) g -= z * std::atan2(u * v, z * r);
  return g;
}
}  // namespace

double rect_rise_exact_at_depth(double k_si, const HeatSource& src, double x, double y,
                                double z) noexcept {
  if (z == 0.0) return rect_rise_exact(k_si, src, x, y);
  const double u1 = (x - src.cx) - 0.5 * src.w;
  const double u2 = (x - src.cx) + 0.5 * src.w;
  const double v1 = (y - src.cy) - 0.5 * src.l;
  const double v2 = (y - src.cy) + 0.5 * src.l;
  const double az = std::abs(z);
  const double integral = corner_g_depth(u2, v2, az) - corner_g_depth(u1, v2, az) -
                          corner_g_depth(u2, v1, az) + corner_g_depth(u1, v1, az);
  return src.power / (2.0 * kPi * k_si * src.w * src.l) * integral;
}

double rect_rise_quadrature(double k_si, const HeatSource& src, double x, double y) {
  PTHERM_REQUIRE(src.w > 0.0 && src.l > 0.0, "rect_rise_quadrature: degenerate source");
  auto integrand = [&](double x0, double y0) {
    const double dx = x - x0;
    const double dy = y - y0;
    const double r = std::sqrt(dx * dx + dy * dy);
    return 1.0 / std::max(r, 1e-15);
  };
  numerics::QuadratureOptions opts;
  opts.rel_tol = 1e-9;
  const auto q = numerics::integrate2d(integrand, src.cx - 0.5 * src.w, src.cx + 0.5 * src.w,
                                       src.cy - 0.5 * src.l, src.cy + 0.5 * src.l, opts);
  return src.power / (2.0 * kPi * k_si * src.w * src.l) * q.value;
}

}  // namespace ptherm::thermal
