// Spectral (cosine-series) Green's-function solver for the paper's die
// boundary-value problem: adiabatic sidewalls and top, isothermal heat sink
// at depth t. The adiabatic sides make cos(m pi x / W) cos(n pi y / H) the
// exact lateral eigenbasis, so the steady conduction problem diagonalizes:
// each mode has the closed-form depth profile sinh(g (t - z)) / sinh(g t)
// with g^2 = (m pi / W)^2 + (n pi / H)^2, and the surface response to a
// surface heat flux q_mn is
//     S_mn = q_mn * tanh(g t) / (k g)          (S_00 = q_00 * t / k).
// Rectangular source footprints project onto the modes analytically (sine
// antiderivatives — no quadrature, no assembly), a steady "solve" is one
// mode-space multiply, and a full surface map is synthesized by the
// hand-rolled DCT in numerics/fft.hpp in O(M log M). This is the
// Kemper-et-al. "ultrafast" formulation the influence operator wants: an
// influence column costs one mode-space multiply instead of a CG solve.
//
// Source-clipping policy matches the other backends: footprints are clipped
// to the die and the FULL source power deposits over the clipped rectangle;
// fully off-die sources contribute nothing; degenerate sources throw.
#pragma once

#include <vector>

#include "thermal/images.hpp"

namespace ptherm::thermal {

struct SpectralOptions {
  /// Cosine modes per axis, including the DC mode. More modes sharpen source
  /// edges; the mode sum converges absolutely like 1/modes^2 away from
  /// footprint boundaries. 64 x 64 matches a 32^3 FDM reference to well
  /// under a percent at block centres.
  int modes_x = 64;
  int modes_y = 64;
};

class SpectralThermalSolver {
 public:
  SpectralThermalSolver(Die die, SpectralOptions opts = {});

  /// Surface-rise mode coefficients S_mn for the given sources; coeff is
  /// modes_y-major (coeff[n * modes_x + m]).
  struct Solution {
    std::vector<double> coeff;
  };
  [[nodiscard]] Solution solve_steady(const std::vector<HeatSource>& sources) const;

  /// Surface rise at (x, y): the O(modes) cosine sum.
  [[nodiscard]] double surface_rise(const Solution& sol, double x, double y) const;

  /// Rise at depth z below surface point (x, y): per-mode depth transfer
  /// sinh(g (t - z)) / sinh(g t), evaluated in overflow-safe exponential
  /// form. Used to compare against cell-centred FDM layers without
  /// extrapolation bias.
  [[nodiscard]] double rise_at_depth(const Solution& sol, double x, double y, double z) const;

  /// Surface-rise map on the nx x ny cell-centre grid (row-major, y outer —
  /// the ChipThermalModel::surface_map convention, but rises, not absolute
  /// temperatures). Power-of-two grids go through the DCT synthesis
  /// (O(M log M)); other sizes fall back to the direct mode sum.
  [[nodiscard]] std::vector<double> surface_map(const Solution& sol, int nx, int ny) const;

  /// Projects the sources' surface heat flux onto the cosine modes and
  /// applies the per-mode surface transfer, accumulating into `coeff`
  /// (size mode_count()). The allocation-free core of solve_steady, exposed
  /// for the batched influence build.
  void accumulate_surface_coefficients(const std::vector<HeatSource>& sources,
                                       std::vector<double>& coeff) const;

  [[nodiscard]] int modes_x() const noexcept { return opts_.modes_x; }
  [[nodiscard]] int modes_y() const noexcept { return opts_.modes_y; }
  [[nodiscard]] int mode_count() const noexcept { return opts_.modes_x * opts_.modes_y; }
  /// 1-D FFT invocations performed by surface_map so far (cost counter).
  [[nodiscard]] long long fft_calls() const noexcept { return fft_calls_; }
  [[nodiscard]] const Die& die() const noexcept { return die_; }

 private:
  Die die_;
  SpectralOptions opts_;
  std::vector<double> transfer_;  ///< tanh(g t) / (k g) per mode (t/k at DC)
  mutable long long fft_calls_ = 0;
};

}  // namespace ptherm::thermal
