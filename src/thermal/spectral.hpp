// Spectral (cosine-series) Green's-function solver for the paper's die
// boundary-value problem: adiabatic sidewalls and top, isothermal heat sink
// at depth t. The adiabatic sides make cos(m pi x / W) cos(n pi y / H) the
// exact lateral eigenbasis, so the steady conduction problem diagonalizes:
// each mode has the closed-form depth profile sinh(g (t - z)) / sinh(g t)
// with g^2 = (m pi / W)^2 + (n pi / H)^2, and the surface response to a
// surface heat flux q_mn is
//     S_mn = q_mn * tanh(g t) / (k g)          (S_00 = q_00 * t / k).
// Rectangular source footprints project onto the modes analytically (sine
// antiderivatives — no quadrature, no assembly), a steady "solve" is one
// mode-space multiply, and a full surface map is synthesized by the
// hand-rolled DCT in numerics/fft.hpp in O(M log M). This is the
// Kemper-et-al. "ultrafast" formulation the influence operator wants: an
// influence column costs one mode-space multiply instead of a CG solve.
//
// The decomposition diagonalizes the TRANSIENT problem too: with the same
// adiabatic top and isothermal bottom, the z direction has the eigenbasis
// cos(gamma_p z) with gamma_p = (p + 1/2) pi / t, so each (lateral mode,
// z-mode) amplitude obeys an independent scalar ODE
//     dA/dt = -lambda A + F,   lambda = alpha (g^2 + gamma_p^2),
// whose solution under piecewise-constant power is the exact exponential
// update A <- A e^{-lambda h} + (F/lambda)(1 - e^{-lambda h}). The per-mode
// steady gains sum in closed form to the steady transfer (the identity
// sum_p 2 / (t (g^2 + gamma_p^2)) = tanh(g t) / g), so the z-truncation
// tail is carried quasi-statically and the long-time limit reproduces
// solve_steady exactly; the truncated modes have sub-microsecond time
// constants, far below any useful co-simulation step.
//
// Source-clipping policy matches the other backends: footprints are clipped
// to the die and the FULL source power deposits over the clipped rectangle;
// fully off-die sources contribute nothing; degenerate sources throw.
//
// DIE STACKS. The lateral eigenbasis only needs adiabatic sidewalls, so the
// whole machinery survives an arbitrary z-stack (thermal/stack.hpp): the
// per-mode steady transfer generalizes from tanh(g t) / (k g) to the
// transmission-line impedance recursion through the layers (each slab maps
// its load impedance as Z -> (Z + tanh(g t)/(k g)) / (1 + Z k g tanh(g t)),
// seeded with 0 at an isothermal plane or 1/h at a convective film), and
// the transient z-eigenbasis cos(gamma_p z) generalizes to the eigenmodes
// of a per-mode symmetric tridiagonal z-operator on a layered grid, solved
// with numerics/eigen.hpp and advanced by the same exact exponential
// update. The truncation-plus-discretization tail is again folded in
// quasi-statically against the EXACT (continuous) transfer, so the layered
// transient's long-time limit reproduces solve_steady to rounding for every
// mode. A stack that reduces_to the die routes onto the original closed
// forms, bitwise. When every layer shares one diffusivity k/cv, the
// z-operator's g-dependence is a scalar shift alpha g^2 I: one
// eigendecomposition serves all lateral modes.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "thermal/images.hpp"
#include "thermal/stack.hpp"

namespace ptherm::thermal {

struct SpectralOptions {
  /// Cosine modes per axis, including the DC mode. More modes sharpen source
  /// edges; the mode sum converges absolutely like 1/modes^2 away from
  /// footprint boundaries. 64 x 64 matches a 32^3 FDM reference to well
  /// under a percent at block centres.
  int modes_x = 64;
  int modes_y = 64;
  /// z-eigenfunctions per lateral mode carried explicitly by the transient
  /// integrator; the truncated tail is folded in quasi-statically (its time
  /// constants fall like 1/p^2 — mode 8 of a 350 um die settles in ~2 us).
  int modes_z = 8;
  /// z-cells of the layered modal reduction (stack constructor only): the
  /// per-lateral-mode z-operator is discretized on this many cells, split
  /// across the layers proportionally to thickness, and modes_z of its
  /// slowest eigenmodes are carried. Single-die solvers ignore it (their
  /// z-eigenbasis is closed-form).
  int layered_nz = 40;
};

class SpectralThermalSolver {
 public:
  SpectralThermalSolver(Die die, SpectralOptions opts = {});

  /// Layered constructor: the stack is authoritative for everything in z
  /// (the die supplies the lateral dimensions and the ambient temperature;
  /// its thickness/k_si/cv_si are ignored unless the stack reduces to them).
  /// A stack satisfying stack.reduces_to(die) routes onto the single-die
  /// closed forms and reproduces the legacy solver bitwise.
  SpectralThermalSolver(Die die, DieStack stack, SpectralOptions opts = {});

  /// Whether this solver runs the layered z-machinery (false: single-die
  /// closed forms, including when a trivial stack was handed in).
  [[nodiscard]] bool layered() const noexcept { return layered_; }

  /// Surface-rise mode coefficients S_mn for the given sources; coeff is
  /// modes_y-major (coeff[n * modes_x + m]).
  struct Solution {
    std::vector<double> coeff;
  };
  [[nodiscard]] Solution solve_steady(const std::vector<HeatSource>& sources) const;

  /// Surface rise at (x, y): the O(modes) cosine sum.
  [[nodiscard]] double surface_rise(const Solution& sol, double x, double y) const;

  /// Rise at depth z below surface point (x, y): per-mode depth transfer
  /// sinh(g (t - z)) / sinh(g t), evaluated in overflow-safe exponential
  /// form. Used to compare against cell-centred FDM layers without
  /// extrapolation bias. On layered stacks z spans the whole stack and the
  /// per-mode profile is the exact slab-by-slab transmission-line ratio
  /// (two-sided decaying exponentials — no sinh overflow, no cancellation).
  [[nodiscard]] double rise_at_depth(const Solution& sol, double x, double y, double z) const;

  /// Surface-rise map on the nx x ny cell-centre grid (row-major, y outer —
  /// the ChipThermalModel::surface_map convention, but rises, not absolute
  /// temperatures). Power-of-two grids go through the DCT synthesis
  /// (O(M log M)); other sizes fall back to the direct mode sum.
  [[nodiscard]] std::vector<double> surface_map(const Solution& sol, int nx, int ny) const;

  /// Projects the sources' surface heat flux onto the cosine modes and
  /// applies the per-mode surface transfer, accumulating into `coeff`
  /// (size mode_count()). The allocation-free core of solve_steady, exposed
  /// for the batched influence build.
  void accumulate_surface_coefficients(const std::vector<HeatSource>& sources,
                                       std::vector<double>& coeff) const;

  /// Cached machinery for the matrix-free influence apply `rises = R *
  /// powers`: per-source separable unit-power flux projections (the
  /// TransientSolution projection-cache idea, fixed geometry so it is built
  /// once) plus per-sample cosine synthesis tables, and mode-space scratch.
  /// Memory is O(n * modes_per_axis) — the whole point versus the O(n^2)
  /// dense matrix whose build is also O(n^2 * modes).
  struct InfluenceProjection {
    std::size_t count = 0;       ///< sources == samples count
    std::vector<double> proj_x;  ///< per-watt x flux factors, modes_x per source
    std::vector<double> proj_y;  ///< per-watt y flux factors, modes_y per source
    std::vector<double> cos_x;   ///< cos(m pi x_i / W) tables, modes_x per sample
    std::vector<double> cos_y;   ///< cos(n pi y_i / H) tables, modes_y per sample
    std::vector<double> coeff;   ///< mode-space scratch (mode_count())
    /// Mode-space scratch for apply_influence_batch: one coeff block per
    /// scenario, grown on demand to count * mode_count().
    std::vector<double> batch_coeff;
  };

  /// Builds the influence projection for fixed source geometry and sample
  /// points (source powers are ignored; the caller supplies powers per
  /// apply). Requires one sample per source. Off-die sources project to
  /// zero; degenerate sources throw — the shared clipping policy.
  [[nodiscard]] InfluenceProjection make_influence_projection(
      std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const;

  /// rises[i] = sum_j R[i][j] * powers[j] without forming R: accumulate the
  /// flux modes as power-scaled rank-1 updates, apply the per-mode surface
  /// transfer, then synthesize each sample from the cached cosine tables.
  /// `proj` must come from this solver's make_influence_projection; both
  /// spans must have proj.count elements.
  void apply_influence(InfluenceProjection& proj, std::span<const double> powers,
                       std::span<double> rises) const;

  /// Multi-RHS apply_influence for the batched scenario engine: `count`
  /// power vectors (powers[k*count_per + j], scenario-major) into `count`
  /// rise vectors of the same layout. The projection/synthesis tables are
  /// streamed once per source/sample for the whole scenario block — the
  /// mode-space accumulate becomes a small GEMM over the block — but each
  /// scenario's arithmetic keeps apply_influence's exact operation order, so
  /// scenario k's rises are bitwise identical to a standalone apply of its
  /// power vector.
  void apply_influence_batch(InfluenceProjection& proj, std::span<const double> powers,
                             std::span<double> rises, std::size_t count) const;

  /// Transient field in mode space: per-(lateral mode, z-mode) amplitudes
  /// plus the synthesized surface solution, and the two step caches — the
  /// per-source-geometry rectangle->mode projections (only powers change
  /// between co-simulation steps, so re-projection is a scaled rank-1
  /// accumulate) and the e^{-lambda h} decay factors keyed by the step size.
  struct TransientSolution {
    /// Surface-rise coefficients S_mn after the last step. A plain steady
    /// Solution, so surface_rise / surface_map / the influence basis all
    /// read a transient field with zero extra machinery.
    Solution surface;
    /// z-eigenmode amplitudes, lateral-mode major (amps[mode * modes_z + p]).
    std::vector<double> amps;
    /// Flux mode coefficients q_mn of the last-applied sources [W/m^2].
    std::vector<double> flux;

    // Projection cache: per-source separable footprint integrals (with the
    // c_m normalization folded in) keyed by the source's clipped geometry.
    std::vector<double> proj_x;    ///< modes_x per source
    std::vector<double> proj_y;    ///< modes_y per source
    std::vector<double> proj_key;  ///< cx, cy, w, l per cached source
    /// Last-ingested power per source: when neither powers nor geometry
    /// moved since the previous step, the flux modes are still valid and
    /// the whole projection pass is skipped — interior steps of a power-
    /// update epoch collapse to the pure mode-decay update.
    std::vector<double> power_key;

    // Decay cache: e^{-alpha g^2 h} and e^{-alpha gamma_p^2 h}, keyed by h
    // (the exact decay is their product — the dt-cache trick, in separable
    // form so a re-key costs modes + modes_z exponentials, not their product).
    double decay_h = 0.0;
    std::vector<double> decay_lat;
    std::vector<double> decay_z;
    /// Layered stacks only: per-(lateral mode, z-mode) decay factors keyed
    /// by decay_h — layered modal rates do not separate into lateral x z
    /// factors, so the cache is the full product grid.
    std::vector<double> decay;
  };

  /// Zero-rise transient field (everything at the sink temperature).
  [[nodiscard]] TransientSolution make_transient() const;

  /// Advances the field by `h` seconds under `sources` (held constant over
  /// the step). The per-mode update is EXACT for piecewise-constant power —
  /// accuracy does not depend on h, and one call with h == k*h' equals k
  /// calls with h' to rounding. Returns 1: one mode-space update (the
  /// generic "inner iteration" count transient drivers accumulate).
  int step_transient(TransientSolution& state, double h,
                     const std::vector<HeatSource>& sources) const;

  /// Surface rise of a transient field (delegates to the steady query on the
  /// synthesized surface coefficients).
  [[nodiscard]] double surface_rise(const TransientSolution& state, double x, double y) const {
    return surface_rise(state.surface, x, y);
  }

  /// Rise at depth z of the transient field: explicit z-modes evaluated at
  /// cos(gamma_p z), truncation tail at its quasi-static depth profile. Used
  /// for matched-depth comparison against the FDM trajectory (whose top
  /// layer reports dz/2 below the surface). Single-die solvers only — a
  /// layered field's carried z-modes live on the modal grid, not a
  /// closed-form eigenbasis, so this throws ptherm::PreconditionError on
  /// layered stacks (query the surface, or use the layered FDM backend for
  /// depth traces).
  [[nodiscard]] double rise_at_depth(const TransientSolution& state, double x, double y,
                                     double z) const;

  [[nodiscard]] int modes_x() const noexcept { return opts_.modes_x; }
  [[nodiscard]] int modes_y() const noexcept { return opts_.modes_y; }
  [[nodiscard]] int modes_z() const noexcept { return opts_.modes_z; }
  [[nodiscard]] int mode_count() const noexcept { return opts_.modes_x * opts_.modes_y; }
  /// 1-D FFT invocations performed by surface_map so far (cost counter).
  [[nodiscard]] long long fft_calls() const noexcept { return fft_calls_; }
  /// Transient steps that had to re-project changed source powers into the
  /// flux modes (cost counter): with an epoch-driven driver this counts
  /// epochs, not steps — the gap between the two is the cache's win.
  [[nodiscard]] long long transient_power_updates() const noexcept { return power_updates_; }
  [[nodiscard]] const Die& die() const noexcept { return die_; }

 private:
  /// Rebuilds the per-source projection cache entries whose geometry moved;
  /// returns whether any entry was rebuilt.
  bool refresh_projections(TransientSolution& state,
                           const std::vector<HeatSource>& sources) const;

  /// The single-die closed-form setup (transfer, cos(gamma_p z) eigenbasis,
  /// gains, tail) — the legacy constructor body, shared by trivial stacks.
  void init_single_die();

  /// Per-mode steady surface impedance of the layered stack: the
  /// transmission-line recursion from the boundary seed up through every
  /// layer. The single-layer isothermal case reproduces tanh(g t) / (k g)
  /// bitwise.
  [[nodiscard]] double layered_transfer(double g) const;

  /// theta(z) / theta(0) of lateral mode g at steady state, slab by slab.
  [[nodiscard]] double layered_depth_ratio(double g, double z) const;

  /// Builds lambda_/gain_/tail_ for the layered transient on first use
  /// (steady-only callers never pay for the per-mode eigensolves).
  void ensure_transient_modes() const;

  Die die_;
  SpectralOptions opts_;
  std::vector<double> transfer_;  ///< steady surface transfer per mode [K m^2 / W]
  std::vector<double> g2_;        ///< lateral eigenvalue g^2 per mode
  std::vector<double> gamma2_;    ///< z eigenvalue gamma_p^2, p < modes_z (single-die)
  /// Steady gain of z-mode p of lateral mode mn — 2 / (k t (g^2 + gamma_p^2))
  /// closed-form on a single die, u_0p^2 / lambda_p on a layered stack —
  /// lateral-mode major like TransientSolution::amps. Mutable: layered
  /// solvers fill it lazily in ensure_transient_modes().
  mutable std::vector<double> gain_;
  /// transfer_ minus the carried z-modes' gains: the quasi-static tail
  /// (truncation + discretization on layered stacks, so the long-time limit
  /// is the exact steady transfer either way).
  mutable std::vector<double> tail_;

  // Layered machinery; engaged when the stack does not reduce to the die.
  std::optional<DieStack> stack_;
  bool layered_ = false;
  std::vector<double> dz_z_;  ///< layered z-grid cell heights, surface first
  std::vector<double> k_z_;   ///< per-cell conductivity
  std::vector<double> cv_z_;  ///< per-cell volumetric heat capacity
  mutable bool transient_ready_ = false;
  mutable std::vector<double> lambda_;  ///< per-(mode, p) modal rates [1/s] (layered)

  mutable long long fft_calls_ = 0;
  mutable long long power_updates_ = 0;
};

}  // namespace ptherm::thermal
