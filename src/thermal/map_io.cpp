#include "thermal/map_io.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"

namespace ptherm::thermal {

namespace {
void check(const SurfaceMap& map) {
  PTHERM_REQUIRE(map.nx >= 1 && map.ny >= 1, "SurfaceMap: empty grid");
  PTHERM_REQUIRE(map.values.size() == static_cast<std::size_t>(map.nx) * map.ny,
                 "SurfaceMap: size mismatch");
}
}  // namespace

double SurfaceMap::min_value() const {
  check(*this);
  return *std::min_element(values.begin(), values.end());
}

double SurfaceMap::max_value() const {
  check(*this);
  return *std::max_element(values.begin(), values.end());
}

bool write_pgm(const SurfaceMap& map, const std::string& path) {
  check(map);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const double lo = map.min_value();
  const double hi = map.max_value();
  const double span = std::max(hi - lo, 1e-30);
  out << "P5\n" << map.nx << " " << map.ny << "\n255\n";
  for (int j = map.ny - 1; j >= 0; --j) {  // row 0 at the image bottom
    for (int i = 0; i < map.nx; ++i) {
      const double t = (map.at(i, j) - lo) / span;
      out.put(static_cast<char>(static_cast<unsigned char>(255.0 * t + 0.5)));
    }
  }
  return static_cast<bool>(out);
}

bool write_gnuplot_matrix(const SurfaceMap& map, const std::string& path) {
  check(map);
  std::ofstream out(path);
  if (!out) return false;
  out << "# gnuplot: plot '" << path << "' matrix with image\n";
  for (int j = 0; j < map.ny; ++j) {
    for (int i = 0; i < map.nx; ++i) {
      if (i) out << " ";
      out << map.at(i, j);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

std::string render_ascii(const SurfaceMap& map) {
  check(map);
  const double lo = map.min_value();
  const double hi = map.max_value();
  const double span = std::max(hi - lo, 1e-30);
  static const char* shades = " .:-=+*#%@";
  std::string out;
  out.reserve(static_cast<std::size_t>((map.nx + 1) * map.ny));
  for (int j = map.ny - 1; j >= 0; --j) {
    for (int i = 0; i < map.nx; ++i) {
      const int level = static_cast<int>(9.999 * (map.at(i, j) - lo) / span);
      out += shades[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace ptherm::thermal
