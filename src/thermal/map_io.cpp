#include "thermal/map_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace ptherm::thermal {

namespace {
void check(const SurfaceMap& map) {
  PTHERM_REQUIRE(map.nx >= 1 && map.ny >= 1, "SurfaceMap: empty grid");
  PTHERM_REQUIRE(map.values.size() == static_cast<std::size_t>(map.nx) * map.ny,
                 "SurfaceMap: size mismatch");
}

/// Normalizes `value` into [0, 1] for rendering. Non-finite inputs (maps
/// dumped from a diverged solve) must not reach the shade lookup as UB:
/// +inf renders hottest, NaN and -inf coolest.
double unit_shade(double value, double lo, double span) {
  if (!std::isfinite(value)) return value > 0.0 ? 1.0 : 0.0;
  const double t = (value - lo) / span;
  if (!std::isfinite(t)) return 0.0;  // infinite span: finite values rank coolest
  return std::clamp(t, 0.0, 1.0);
}
}  // namespace

double SurfaceMap::min_value() const {
  check(*this);
  return *std::min_element(values.begin(), values.end());
}

double SurfaceMap::max_value() const {
  check(*this);
  return *std::max_element(values.begin(), values.end());
}

bool write_pgm(const SurfaceMap& map, const std::string& path) {
  check(map);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const double lo = map.min_value();
  const double hi = map.max_value();
  const double span = std::max(hi - lo, 1e-30);
  out << "P5\n" << map.nx << " " << map.ny << "\n255\n";
  for (int j = map.ny - 1; j >= 0; --j) {  // row 0 at the image bottom
    for (int i = 0; i < map.nx; ++i) {
      const double t = unit_shade(map.at(i, j), lo, span);
      out.put(static_cast<char>(static_cast<unsigned char>(255.0 * t + 0.5)));
    }
  }
  return static_cast<bool>(out);
}

bool write_gnuplot_matrix(const SurfaceMap& map, const std::string& path) {
  check(map);
  std::ofstream out(path);
  if (!out) return false;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# gnuplot: plot '" << path << "' matrix with image\n";
  for (int j = 0; j < map.ny; ++j) {
    for (int i = 0; i < map.nx; ++i) {
      if (i) out << " ";
      out << map.at(i, j);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

SurfaceMap read_gnuplot_matrix(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("read_gnuplot_matrix: cannot open '" + path + "'");

  SurfaceMap map;
  std::string line;
  int row = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    int width = 0;
    std::string tok;
    // strtod rather than operator>>: the writer emits "inf"/"nan" for
    // non-finite temperatures (e.g. maps dumped from a diverged solve) and
    // operator>> cannot read those back.
    while (tokens >> tok) {
      char* end = nullptr;
      const double value = std::strtod(tok.c_str(), &end);
      if (end != tok.c_str() + tok.size()) {
        std::ostringstream os;
        os << "read_gnuplot_matrix: non-numeric token '" << tok << "' in '" << path
           << "' row " << row;
        throw IoError(os.str());
      }
      map.values.push_back(value);
      ++width;
    }
    if (width == 0) continue;  // whitespace-only (e.g. a stray CR) is not a row
    if (row == 0) {
      map.nx = width;
    } else if (width != map.nx) {
      std::ostringstream os;
      os << "read_gnuplot_matrix: ragged row " << row << " in '" << path << "' ("
         << width << " values, expected " << map.nx << ")";
      throw IoError(os.str());
    }
    ++row;
  }
  map.ny = row;
  if (map.nx < 1 || map.ny < 1) {
    throw IoError("read_gnuplot_matrix: no data rows in '" + path + "'");
  }
  return map;
}

std::string render_ascii(const SurfaceMap& map) {
  check(map);
  const double lo = map.min_value();
  const double hi = map.max_value();
  const double span = std::max(hi - lo, 1e-30);
  static const char* shades = " .:-=+*#%@";
  std::string out;
  out.reserve(static_cast<std::size_t>((map.nx + 1) * map.ny));
  for (int j = map.ny - 1; j >= 0; --j) {
    for (int i = 0; i < map.nx; ++i) {
      const int level = static_cast<int>(9.999 * unit_shade(map.at(i, j), lo, span));
      out += shades[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace ptherm::thermal
