#include "thermal/fdm.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace ptherm::thermal {

FdmThermalSolver::FdmThermalSolver(Die die, FdmOptions opts) : die_(die), opts_(opts) {
  PTHERM_REQUIRE(opts_.nx >= 2 && opts_.ny >= 2 && opts_.nz >= 2, "FDM: grid too small");
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0 && die_.thickness > 0.0,
                 "FDM: degenerate die");
  dx_ = die_.width / opts_.nx;
  dy_ = die_.height / opts_.ny;
  dz_ = die_.thickness / opts_.nz;
  cell_capacitance_ = opts_.cv * dx_ * dy_ * dz_;
  dz_z_.assign(static_cast<std::size_t>(opts_.nz), dz_);
  k_z_.assign(static_cast<std::size_t>(opts_.nz), die_.k_si);
  cv_z_.assign(static_cast<std::size_t>(opts_.nz), opts_.cv);
  init_z_column();
  assemble();
}

FdmThermalSolver::FdmThermalSolver(Die die, DieStack stack, FdmOptions opts)
    : die_(die), opts_(opts), stack_(std::move(stack)) {
  PTHERM_REQUIRE(opts_.nx >= 2 && opts_.ny >= 2 && opts_.nz >= 2, "FDM: grid too small");
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0, "FDM: degenerate die");
  PTHERM_REQUIRE(opts_.nz >= static_cast<int>(stack_->layer_count()),
                 "FDM: nz must cover every stack layer");
  dx_ = die_.width / opts_.nx;
  dy_ = die_.height / opts_.ny;
  layered_ = !stack_->reduces_to(die_);
  const auto cells = distribute_stack_cells(*stack_, opts_.nz);
  for (std::size_t l = 0; l < stack_->layer_count(); ++l) {
    const StackLayer& layer = stack_->layers()[l];
    const double dz = layer.thickness / cells[l];
    for (int c = 0; c < cells[l]; ++c) {
      dz_z_.push_back(dz);
      k_z_.push_back(layer.k);
      cv_z_.push_back(layer.cv);
    }
  }
  // A trivial stack lands on the legacy uniform grid: one layer, nz equal
  // cells, die materials — the same dz/k/cv column the other constructor
  // builds, so the stamped matrix is bitwise identical.
  dz_ = dz_z_.front();
  cell_capacitance_ = cv_z_.front() * dx_ * dy_ * dz_z_.front();
  init_z_column();
  assemble();
}

void FdmThermalSolver::init_z_column() {
  cap_z_.resize(dz_z_.size());
  z_centre_.resize(dz_z_.size());
  double top = 0.0;
  for (std::size_t kz = 0; kz < dz_z_.size(); ++kz) {
    cap_z_[kz] = cv_z_[kz] * dx_ * dy_ * dz_z_[kz];
    z_centre_[kz] = top + 0.5 * dz_z_[kz];
    top += dz_z_[kz];
  }
}

void FdmThermalSolver::stamp_conduction(numerics::SparseBuilder& builder) const {
  // Conductances between adjacent cell centres: G = k * A / d; half-cell
  // link (2G) to an isothermal boundary plane. Equal-material vertical
  // neighbours keep the exact legacy expression (bitwise-identical matrices
  // on the uniform grid); dissimilar neighbours use the harmonic series of
  // the two half cells.
  const std::size_t nzc = dz_z_.size();
  std::vector<double> gz_link(nzc > 1 ? nzc - 1 : 0);
  for (std::size_t kz = 0; kz + 1 < nzc; ++kz) {
    if (k_z_[kz] == k_z_[kz + 1] && dz_z_[kz] == dz_z_[kz + 1]) {
      gz_link[kz] = k_z_[kz] * dx_ * dy_ / dz_z_[kz];
    } else {
      gz_link[kz] = dx_ * dy_ / (dz_z_[kz] / (2.0 * k_z_[kz]) +
                                 dz_z_[kz + 1] / (2.0 * k_z_[kz + 1]));
    }
  }
  // Bottom closure: Dirichlet sink plane (half-cell conductance to ground)
  // unless the stack ends in a convective film, which sits in series with
  // the bottom half cell.
  const double gz_bottom_full = k_z_[nzc - 1] * dx_ * dy_ / dz_z_[nzc - 1];
  const bool convective = stack_ && !stack_->isothermal_operator_boundary();
  const double g_bottom =
      convective ? dx_ * dy_ / (dz_z_[nzc - 1] / (2.0 * k_z_[nzc - 1]) +
                                1.0 / stack_->boundary().h)
                 : 2.0 * gz_bottom_full;
  const bool iso_side = opts_.lateral == LateralBoundary::Isothermal;
  for (int kz = 0; kz < opts_.nz; ++kz) {
    const std::size_t zi = static_cast<std::size_t>(kz);
    const double gx = k_z_[zi] * dy_ * dz_z_[zi] / dx_;
    const double gy = k_z_[zi] * dx_ * dz_z_[zi] / dy_;
    for (int j = 0; j < opts_.ny; ++j) {
      for (int i = 0; i < opts_.nx; ++i) {
        const std::size_t c = cell_index(i, j, kz);
        double diag = 0.0;
        auto couple = [&](std::size_t other, double g) {
          builder.add(c, other, -g);
          diag += g;
        };
        if (i > 0) couple(cell_index(i - 1, j, kz), gx);
        if (i + 1 < opts_.nx) couple(cell_index(i + 1, j, kz), gx);
        if (j > 0) couple(cell_index(i, j - 1, kz), gy);
        if (j + 1 < opts_.ny) couple(cell_index(i, j + 1, kz), gy);
        if (kz > 0) couple(cell_index(i, j, kz - 1), gz_link[zi - 1]);
        if (kz + 1 < opts_.nz) couple(cell_index(i, j, kz + 1), gz_link[zi]);
        // Top (kz == 0) is adiabatic — no term.
        if (kz + 1 == opts_.nz) diag += g_bottom;
        if (iso_side) {
          if (i == 0) diag += 2.0 * gx;
          if (i + 1 == opts_.nx) diag += 2.0 * gx;
          if (j == 0) diag += 2.0 * gy;
          if (j + 1 == opts_.ny) diag += 2.0 * gy;
        }
        builder.add(c, c, diag);
      }
    }
  }
}

void FdmThermalSolver::assemble() {
  const std::size_t n = cell_count();
  numerics::SparseBuilder builder(n, n);
  stamp_conduction(builder);
  laplacian_ = numerics::CsrMatrix(builder);
  if (opts_.cg.preconditioner == numerics::CgPreconditioner::IncompleteCholesky) {
    laplacian_ic_.emplace(laplacian_);
  }
}

std::vector<double> FdmThermalSolver::surface_power(
    const std::vector<HeatSource>& sources) const {
  std::vector<double> q(cell_count(), 0.0);
  for (const auto& s : sources) {
    PTHERM_REQUIRE(s.w > 0.0 && s.l > 0.0, "surface_power: degenerate source (w, l must be > 0)");
    // Clip the footprint to the die and renormalize the density to the
    // clipped area: the source's full power is conserved on the die (see the
    // class policy comment). A source entirely off the die deposits nothing.
    const double x0 = std::max(s.cx - 0.5 * s.w, 0.0);
    const double x1 = std::min(s.cx + 0.5 * s.w, die_.width);
    const double y0 = std::max(s.cy - 0.5 * s.l, 0.0);
    const double y1 = std::min(s.cy + 0.5 * s.l, die_.height);
    if (x1 <= x0 || y1 <= y0) continue;
    const double density = s.power / ((x1 - x0) * (y1 - y0));
    const int i0 = std::clamp(static_cast<int>(std::floor(x0 / dx_)), 0, opts_.nx - 1);
    const int i1 = std::clamp(static_cast<int>(std::floor((x1 - 1e-15) / dx_)), 0, opts_.nx - 1);
    const int j0 = std::clamp(static_cast<int>(std::floor(y0 / dy_)), 0, opts_.ny - 1);
    const int j1 = std::clamp(static_cast<int>(std::floor((y1 - 1e-15) / dy_)), 0, opts_.ny - 1);
    for (int j = j0; j <= j1; ++j) {
      const double cy0 = j * dy_;
      const double cy1 = cy0 + dy_;
      const double oy = std::max(0.0, std::min(y1, cy1) - std::max(y0, cy0));
      for (int i = i0; i <= i1; ++i) {
        const double cx0 = i * dx_;
        const double cx1 = cx0 + dx_;
        const double ox = std::max(0.0, std::min(x1, cx1) - std::max(x0, cx0));
        q[cell_index(i, j, 0)] += density * ox * oy;
      }
    }
  }
  return q;
}

std::vector<double> FdmThermalSolver::rhs_for(const std::vector<HeatSource>& sources) const {
  return surface_power(sources);
}

FdmThermalSolver::Solution FdmThermalSolver::solve_steady(
    const std::vector<HeatSource>& sources, const std::vector<double>* warm_start) const {
  const std::vector<double> rhs = rhs_for(sources);
  std::span<const double> x0;
  if (warm_start) {
    PTHERM_REQUIRE(warm_start->size() == cell_count(), "FDM warm start size mismatch");
    x0 = *warm_start;
  }
  auto cg = numerics::conjugate_gradient(laplacian_, rhs, opts_.cg, x0,
                                         laplacian_ic_ ? &*laplacian_ic_ : nullptr);
  Solution sol;
  sol.rise = std::move(cg.x);
  sol.cg_iterations = cg.iterations;
  sol.converged = cg.converged;
  sol.breakdown = cg.breakdown;
  sol.residual = cg.residual;
  sol.cg_residuals = std::move(cg.residuals);
  return sol;
}

void FdmThermalSolver::surface_stencil(double x, double y, std::size_t idx[4],
                                       double w[4]) const noexcept {
  // Bilinear interpolation between top-layer cell centres, clamped at the rim.
  const double fx = std::clamp(x / dx_ - 0.5, 0.0, static_cast<double>(opts_.nx - 1));
  const double fy = std::clamp(y / dy_ - 0.5, 0.0, static_cast<double>(opts_.ny - 1));
  const int i0 = std::min(static_cast<int>(fx), opts_.nx - 2);
  const int j0 = std::min(static_cast<int>(fy), opts_.ny - 2);
  const double tx = fx - i0;
  const double ty = fy - j0;
  idx[0] = cell_index(i0, j0, 0);
  idx[1] = cell_index(i0 + 1, j0, 0);
  idx[2] = cell_index(i0, j0 + 1, 0);
  idx[3] = cell_index(i0 + 1, j0 + 1, 0);
  w[0] = (1 - tx) * (1 - ty);
  w[1] = tx * (1 - ty);
  w[2] = (1 - tx) * ty;
  w[3] = tx * ty;
}

double FdmThermalSolver::surface_rise(const Solution& sol, double x, double y) const {
  PTHERM_REQUIRE(sol.rise.size() == cell_count(), "surface_rise: field size mismatch");
  std::size_t idx[4];
  double w[4];
  surface_stencil(x, y, idx, w);
  return w[0] * sol.rise[idx[0]] + w[1] * sol.rise[idx[1]] + w[2] * sol.rise[idx[2]] +
         w[3] * sol.rise[idx[3]];
}

int FdmThermalSolver::step_transient(std::vector<double>& rise, double dt,
                                     const std::vector<HeatSource>& sources) const {
  PTHERM_REQUIRE(rise.size() == cell_count(), "step_transient: field size mismatch");
  PTHERM_REQUIRE(dt > 0.0, "step_transient: dt must be positive");
  // (C/dt * I + A) T^{n+1} = C/dt * T^n + q. The shifted operator depends
  // only on dt; transient drivers step with a fixed dt thousands of times,
  // so it is cached (with its IC factor) and reassembled only when dt moves.
  // The capacitance follows the local material per z-layer (uniform — the
  // legacy cell_capacitance_ — on a single-die grid).
  const std::size_t n = cell_count();
  const std::size_t slab = static_cast<std::size_t>(opts_.nx) * opts_.ny;
  std::vector<double> c_over_dt_z(dz_z_.size());
  for (std::size_t kz = 0; kz < dz_z_.size(); ++kz) c_over_dt_z[kz] = cap_z_[kz] / dt;
  if (!transient_cache_.valid || transient_cache_.dt != dt) {
    numerics::SparseBuilder builder(n, n);
    for (std::size_t c = 0; c < n; ++c) builder.add(c, c, c_over_dt_z[c / slab]);
    stamp_conduction(builder);
    transient_cache_.matrix = numerics::CsrMatrix(builder);
    transient_cache_.ic.reset();
    if (opts_.cg.preconditioner == numerics::CgPreconditioner::IncompleteCholesky) {
      transient_cache_.ic.emplace(transient_cache_.matrix);
    }
    transient_cache_.dt = dt;
    transient_cache_.valid = true;
  }
  // Rebuild the source-term RHS only when the sources actually changed
  // (exact field-wise compare: epoch-driven drivers hand back the identical
  // vector for every interior step of an epoch).
  const bool sources_changed = [&] {
    if (transient_rhs_key_.size() != sources.size()) return true;
    for (std::size_t j = 0; j < sources.size(); ++j) {
      const HeatSource& a = transient_rhs_key_[j];
      const HeatSource& b = sources[j];
      if (a.cx != b.cx || a.cy != b.cy || a.w != b.w || a.l != b.l || a.power != b.power) {
        return true;
      }
    }
    return false;
  }();
  if (sources_changed) {
    transient_rhs_ = rhs_for(sources);
    transient_rhs_key_ = sources;
    ++power_updates_;
  }
  std::vector<double> rhs = transient_rhs_;
  for (std::size_t c = 0; c < n; ++c) rhs[c] += c_over_dt_z[c / slab] * rise[c];
  const auto cg =
      numerics::conjugate_gradient(transient_cache_.matrix, rhs, opts_.cg, rise,
                                   transient_cache_.ic ? &*transient_cache_.ic : nullptr);
  if (!cg.converged) {
    // Same failure policy as the steady path: never hand a transient driver
    // a garbage field to keep integrating.
    std::ostringstream os;
    os << "step_transient: CG "
       << (cg.breakdown ? "breakdown (operator not positive definite)"
                        : "hit the iteration limit")
       << ", relative residual " << cg.residual << " after " << cg.iterations << " iterations";
    throw ConvergenceError(os.str());
  }
  rise = cg.x;
  return cg.iterations;
}

}  // namespace ptherm::thermal
