#include "thermal/backend.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::thermal {

void InfluenceApply::apply_batch(std::span<const double> powers, std::span<double> rises,
                                 std::size_t count) const {
  PTHERM_REQUIRE(powers.size() == count * size() && rises.size() == count * size(),
                 "InfluenceApply::apply_batch: powers/rises must have count * size() elements");
  // The contract's reference implementation: one apply per vector, trivially
  // bitwise-identical. Backends override to amortize shared-table traffic.
  for (std::size_t k = 0; k < count; ++k) {
    apply(powers.subspan(k * size(), size()), rises.subspan(k * size(), size()));
  }
}

DenseInfluenceApply::DenseInfluenceApply(numerics::Matrix r) : r_(std::move(r)) {
  PTHERM_REQUIRE(r_.rows() == r_.cols(),
                 "DenseInfluenceApply: influence matrix must be square");
}

void DenseInfluenceApply::apply(std::span<const double> powers,
                                std::span<double> rises) const {
  PTHERM_REQUIRE(powers.size() == size() && rises.size() == size(),
                 "InfluenceApply::apply: powers/rises must have size() elements");
  r_.multiply(powers, rises);
}

void DenseInfluenceApply::apply_batch(std::span<const double> powers,
                                      std::span<double> rises, std::size_t count) const {
  PTHERM_REQUIRE(powers.size() == count * size() && rises.size() == count * size(),
                 "InfluenceApply::apply_batch: powers/rises must have count * size() elements");
  r_.multiply_batch(powers, rises, count);
}

std::unique_ptr<InfluenceApply> resolve_influence_apply(
    const SolverBackend& backend, std::span<const HeatSource> sources,
    std::span<const SurfaceSample> samples) {
  if (backend.supports_matrix_free_influence()) {
    return backend.make_influence_apply(sources, samples);
  }
  return std::make_unique<DenseInfluenceApply>(backend.build_influence(sources, samples));
}

std::unique_ptr<InfluenceApply> SolverBackend::make_influence_apply(
    std::span<const HeatSource>, std::span<const SurfaceSample>) const {
  std::ostringstream os;
  os << "thermal backend '" << name()
     << "' has no matrix-free influence path (build_influence instead)";
  throw PreconditionError(os.str());
}

std::unique_ptr<SolverBackend::TransientState> SolverBackend::make_transient_state() const {
  std::ostringstream os;
  os << "thermal backend '" << name() << "' does not support transients";
  throw PreconditionError(os.str());
}

int SolverBackend::step_transient(TransientState&, double,
                                  const std::vector<HeatSource>&) const {
  std::ostringstream os;
  os << "thermal backend '" << name() << "' does not support transients";
  throw PreconditionError(os.str());
}

void SolverBackend::TransientState::surface_rises(std::span<const SurfaceSample> points,
                                                  std::span<double> out) const {
  PTHERM_REQUIRE(out.size() == points.size(),
                 "TransientState::surface_rises: output size mismatch");
  for (std::size_t p = 0; p < points.size(); ++p) {
    out[p] = surface_rise(points[p].x, points[p].y);
  }
}

std::vector<double> SolverBackend::surface_rise_map(const std::vector<HeatSource>& sources,
                                                    int nx, int ny) const {
  PTHERM_REQUIRE(nx >= 2 && ny >= 2, "surface_rise_map: need at least a 2x2 grid");
  std::vector<SurfaceSample> points;
  points.reserve(static_cast<std::size_t>(nx) * ny);
  for (int j = 0; j < ny; ++j) {
    const double y = die().height * (j + 0.5) / ny;
    for (int i = 0; i < nx; ++i) {
      points.push_back({die().width * (i + 0.5) / nx, y});
    }
  }
  return surface_rises(sources, points);
}

// ------------------------------------------------------------------ analytic

AnalyticImagesBackend::AnalyticImagesBackend(Die die, ImageOptions opts)
    : die_(die), opts_(opts) {}

std::vector<double> AnalyticImagesBackend::surface_rises(
    const std::vector<HeatSource>& sources, std::span<const SurfaceSample> points) const {
  const ChipThermalModel model(die_, sources, opts_);
  ++stats_.steady_solves;
  std::vector<double> rises(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    rises[p] = model.rise(points[p].x, points[p].y);
  }
  return rises;
}

numerics::Matrix AnalyticImagesBackend::build_influence(
    std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const {
  return analytic_influence_columns(die_, sources, samples, opts_, &stats_);
}

// ---------------------------------------------------------------------- fdm

namespace {

/// FDM transient field: the backward-Euler state plus the solver handle that
/// interprets it. Batched readback caches the per-point bilinear stencils
/// (top-layer cell indices + weights) keyed by the query points: transient
/// drivers ask for the same block centres every epoch, so the bounds
/// clamping and centre arithmetic of FdmThermalSolver::surface_rise is paid
/// once per point set, not once per point per step.
class FdmTransientState final : public SolverBackend::TransientState {
 public:
  explicit FdmTransientState(const FdmThermalSolver& solver) : solver_(&solver) {
    field_.rise.assign(solver.cell_count(), 0.0);
    field_.converged = true;
  }

  [[nodiscard]] double surface_rise(double x, double y) const override {
    return solver_->surface_rise(field_, x, y);
  }

  void surface_rises(std::span<const SurfaceSample> points,
                     std::span<double> out) const override {
    PTHERM_REQUIRE(out.size() == points.size(),
                   "TransientState::surface_rises: output size mismatch");
    if (!stencil_matches(points)) rebuild_stencil(points);
    const double* rise = field_.rise.data();
    for (std::size_t p = 0; p < points.size(); ++p) {
      const std::size_t* idx = stencil_index_.data() + 4 * p;
      const double* w = stencil_weight_.data() + 4 * p;
      // Same term order and grouping as surface_rise, so the cached path is
      // bitwise-identical to the per-point one (tested).
      out[p] = w[0] * rise[idx[0]] + w[1] * rise[idx[1]] + w[2] * rise[idx[2]] +
               w[3] * rise[idx[3]];
    }
  }

  [[nodiscard]] std::vector<double>& rise() noexcept { return field_.rise; }
  [[nodiscard]] const FdmThermalSolver* solver() const noexcept { return solver_; }

 private:
  [[nodiscard]] bool stencil_matches(std::span<const SurfaceSample> points) const {
    if (stencil_points_.size() != points.size()) return false;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (stencil_points_[p].x != points[p].x || stencil_points_[p].y != points[p].y) {
        return false;
      }
    }
    return true;
  }

  void rebuild_stencil(std::span<const SurfaceSample> points) const {
    stencil_index_.resize(4 * points.size());
    stencil_weight_.resize(4 * points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      // The solver owns the clamp/centre arithmetic (surface_stencil is the
      // one implementation); this cache merely hoists it out of the
      // per-step loop.
      solver_->surface_stencil(points[p].x, points[p].y, stencil_index_.data() + 4 * p,
                               stencil_weight_.data() + 4 * p);
    }
    stencil_points_.assign(points.begin(), points.end());
  }

  const FdmThermalSolver* solver_;
  FdmThermalSolver::Solution field_;
  mutable std::vector<SurfaceSample> stencil_points_;
  mutable std::vector<std::size_t> stencil_index_;
  mutable std::vector<double> stencil_weight_;
};

}  // namespace

FdmBackend::FdmBackend(Die die, FdmOptions opts) : solver_(die, opts) {}

FdmBackend::FdmBackend(Die die, DieStack stack, FdmOptions opts)
    : solver_(die, std::move(stack), opts) {}

std::vector<double> FdmBackend::surface_rises(const std::vector<HeatSource>& sources,
                                              std::span<const SurfaceSample> points) const {
  const auto sol = solver_.solve_steady(sources);
  ++stats_.steady_solves;
  stats_.cg_iterations += sol.cg_iterations;
  if (!sol.converged) {
    std::ostringstream os;
    os << "FdmBackend: steady solve failed: "
       << (sol.breakdown ? "CG breakdown (operator not positive definite)"
                         : "CG hit the iteration limit")
       << ", relative residual " << sol.residual << " after " << sol.cg_iterations
       << " iterations";
    throw ConvergenceError(os.str());
  }
  std::vector<double> rises(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    rises[p] = solver_.surface_rise(sol, points[p].x, points[p].y);
  }
  return rises;
}

numerics::Matrix FdmBackend::build_influence(std::span<const HeatSource> sources,
                                             std::span<const SurfaceSample> samples) const {
  return fdm_influence_columns(solver_, sources, samples, true, &stats_);
}

std::unique_ptr<SolverBackend::TransientState> FdmBackend::make_transient_state() const {
  return std::make_unique<FdmTransientState>(solver_);
}

int FdmBackend::step_transient(TransientState& state, double dt,
                               const std::vector<HeatSource>& sources) const {
  auto* fdm_state = dynamic_cast<FdmTransientState*>(&state);
  PTHERM_REQUIRE(fdm_state != nullptr && fdm_state->solver() == &solver_,
                 "FdmBackend: transient state belongs to a different backend");
  const int iterations = solver_.step_transient(fdm_state->rise(), dt, sources);
  stats_.cg_iterations += iterations;
  ++stats_.transient_steps;
  return iterations;
}

BackendCostStats FdmBackend::cost_stats() const {
  BackendCostStats stats = stats_;
  stats.transient_power_updates = solver_.transient_power_updates();
  return stats;
}

// ----------------------------------------------------------------- spectral

namespace {

/// Basis values cos(m pi x / W) cos(n pi y / H) at each point, one row per
/// point in the solver's mode order: the dense mode-synthesis operator. One
/// multiply against surface coefficients evaluates every point at once —
/// shared by the influence build and the transient gather so the mode
/// layout cannot diverge between them.
numerics::Matrix mode_basis_matrix(const SpectralThermalSolver& solver,
                                   std::span<const SurfaceSample> points) {
  const int mx = solver.modes_x();
  const int my = solver.modes_y();
  const Die& die = solver.die();
  numerics::Matrix basis(points.size(), static_cast<std::size_t>(solver.mode_count()));
  std::vector<double> cosx(static_cast<std::size_t>(mx));
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int m = 0; m < mx; ++m) {
      cosx[m] = std::cos(m * std::numbers::pi * points[p].x / die.width);
    }
    for (int n = 0; n < my; ++n) {
      const double cy = std::cos(n * std::numbers::pi * points[p].y / die.height);
      const std::size_t row = static_cast<std::size_t>(n) * mx;
      for (int m = 0; m < mx; ++m) basis(p, row + m) = cy * cosx[m];
    }
  }
  return basis;
}

/// Spectral transient field: the per-mode amplitudes plus a cached
/// mode-synthesis gather matrix, so the per-step block-temperature readback
/// is one dense matvec instead of n independent cosine sums. The cache is
/// keyed by the query points — transient drivers ask for the same block
/// centres every step, so the basis is built once.
class SpectralTransientState final : public SolverBackend::TransientState {
 public:
  explicit SpectralTransientState(const SpectralThermalSolver& solver)
      : solver_(&solver), state_(solver.make_transient()) {}

  [[nodiscard]] double surface_rise(double x, double y) const override {
    return solver_->surface_rise(state_.surface, x, y);
  }

  void surface_rises(std::span<const SurfaceSample> points,
                     std::span<double> out) const override {
    PTHERM_REQUIRE(out.size() == points.size(),
                   "TransientState::surface_rises: output size mismatch");
    if (points.empty()) return;  // the 0 x modes gather would reject the matvec
    if (!gather_matches(points)) rebuild_gather(points);
    gather_.multiply(state_.surface.coeff, out);
  }

  [[nodiscard]] SpectralThermalSolver::TransientSolution& state() noexcept { return state_; }
  [[nodiscard]] const SpectralThermalSolver* solver() const noexcept { return solver_; }

 private:
  [[nodiscard]] bool gather_matches(std::span<const SurfaceSample> points) const {
    if (gather_points_.size() != points.size()) return false;
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (gather_points_[p].x != points[p].x || gather_points_[p].y != points[p].y) {
        return false;
      }
    }
    return true;
  }

  void rebuild_gather(std::span<const SurfaceSample> points) const {
    gather_ = mode_basis_matrix(*solver_, points);
    gather_points_.assign(points.begin(), points.end());
  }

  const SpectralThermalSolver* solver_;
  SpectralThermalSolver::TransientSolution state_;
  mutable numerics::Matrix gather_;
  mutable std::vector<SurfaceSample> gather_points_;
};

/// The spectral matrix-free influence apply: fixed-geometry projection and
/// synthesis tables built once, then each apply is powers -> rank-1
/// flux-mode accumulation -> per-mode transfer -> per-sample cosine
/// synthesis, all O(n * modes) with no n x n storage anywhere. The
/// mode-space scratch inside the projection mutates under const apply (like
/// the backend cost counters, the backend layer is not thread-safe).
class SpectralInfluenceApply final : public InfluenceApply {
 public:
  SpectralInfluenceApply(const SpectralThermalSolver& solver,
                         std::span<const HeatSource> sources,
                         std::span<const SurfaceSample> samples)
      : solver_(&solver), proj_(solver.make_influence_projection(sources, samples)) {}

  [[nodiscard]] std::size_t size() const noexcept override { return proj_.count; }

  void apply(std::span<const double> powers, std::span<double> rises) const override {
    TELEMETRY_SPAN("spectral/apply_influence");
    PTHERM_REQUIRE(powers.size() == proj_.count && rises.size() == proj_.count,
                   "InfluenceApply::apply: powers/rises must have size() elements");
    solver_->apply_influence(proj_, powers, rises);
  }

  void apply_batch(std::span<const double> powers, std::span<double> rises,
                   std::size_t count) const override {
    TELEMETRY_SPAN("spectral/apply_influence");
    PTHERM_REQUIRE(powers.size() == count * proj_.count && rises.size() == count * proj_.count,
                   "InfluenceApply::apply_batch: powers/rises must have count * size() "
                   "elements");
    solver_->apply_influence_batch(proj_, powers, rises, count);
  }

  [[nodiscard]] std::string_view kind() const noexcept override {
    return "spectral-mode-space";
  }

 private:
  const SpectralThermalSolver* solver_;
  mutable SpectralThermalSolver::InfluenceProjection proj_;
};

}  // namespace

SpectralBackend::SpectralBackend(Die die, SpectralOptions opts) : solver_(die, opts) {
  stats_.modes = solver_.mode_count();
}

SpectralBackend::SpectralBackend(Die die, DieStack stack, SpectralOptions opts)
    : solver_(die, std::move(stack), opts) {
  stats_.modes = solver_.mode_count();
}

std::unique_ptr<InfluenceApply> SpectralBackend::make_influence_apply(
    std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const {
  return std::make_unique<SpectralInfluenceApply>(solver_, sources, samples);
}

std::unique_ptr<SolverBackend::TransientState> SpectralBackend::make_transient_state() const {
  return std::make_unique<SpectralTransientState>(solver_);
}

int SpectralBackend::step_transient(TransientState& state, double dt,
                                    const std::vector<HeatSource>& sources) const {
  auto* sp_state = dynamic_cast<SpectralTransientState*>(&state);
  PTHERM_REQUIRE(sp_state != nullptr && sp_state->solver() == &solver_,
                 "SpectralBackend: transient state belongs to a different backend");
  const int iterations = solver_.step_transient(sp_state->state(), dt, sources);
  ++stats_.transient_steps;
  return iterations;
}

std::vector<double> SpectralBackend::surface_rises(
    const std::vector<HeatSource>& sources, std::span<const SurfaceSample> points) const {
  const auto sol = solver_.solve_steady(sources);
  ++stats_.steady_solves;
  std::vector<double> rises(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    rises[p] = solver_.surface_rise(sol, points[p].x, points[p].y);
  }
  return rises;
}

std::vector<double> SpectralBackend::surface_rise_map(const std::vector<HeatSource>& sources,
                                                      int nx, int ny) const {
  const auto sol = solver_.solve_steady(sources);
  ++stats_.steady_solves;
  return solver_.surface_map(sol, nx, ny);
}

numerics::Matrix SpectralBackend::build_influence(
    std::span<const HeatSource> sources, std::span<const SurfaceSample> samples) const {
  return spectral_influence_columns(solver_, sources, samples, &stats_);
}

BackendCostStats SpectralBackend::cost_stats() const {
  BackendCostStats stats = stats_;
  stats.fft_calls = solver_.fft_calls();
  stats.transient_power_updates = solver_.transient_power_updates();
  return stats;
}

// ------------------------------------------------------------ column builds

numerics::Matrix analytic_influence_columns(const Die& die,
                                            std::span<const HeatSource> sources,
                                            std::span<const SurfaceSample> samples,
                                            const ImageOptions& opts,
                                            BackendCostStats* stats) {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "influence: no sources");
  PTHERM_REQUIRE(samples.size() == n, "influence: need one sample per source");
  numerics::Matrix r(samples.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    // A single-source model per column evaluates only that column's mirror
    // images — superposition makes the other sources' zero-power images
    // exactly nothing.
    std::vector<HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    const ChipThermalModel model(die, std::move(one), opts);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      r(i, j) = model.rise(samples[i].x, samples[i].y);
    }
  }
  if (stats != nullptr) stats->influence_columns += static_cast<int>(n);
  return r;
}

numerics::Matrix fdm_influence_columns(const FdmThermalSolver& solver,
                                       std::span<const HeatSource> sources,
                                       std::span<const SurfaceSample> samples, bool warm_start,
                                       BackendCostStats* stats) {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "influence: no sources");
  PTHERM_REQUIRE(samples.size() == n, "influence: need one sample per source");
  numerics::Matrix r(samples.size(), n);
  std::vector<double> prev;  // previous column's converged field
  std::vector<double> x0;    // translated warm-start scratch
  double prev_cx = 0.0;
  double prev_cy = 0.0;
  const int nx = solver.nx();
  const int ny = solver.ny();
  const int nz = solver.nz();
  const double dx = solver.die().width / nx;
  const double dy = solver.die().height / ny;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    const std::vector<double>* start = nullptr;
    if (warm_start && !prev.empty()) {
      // Adjacent blocks have near-identical fields up to a lateral shift, so
      // the previous column's field translated (edge-replicated) onto this
      // column's source position is a far better first iterate than the
      // unshifted field — unit-source right-hand sides are nearly disjoint,
      // which makes the plain previous iterate no better than zero.
      const int di = static_cast<int>(std::lround((sources[j].cx - prev_cx) / dx));
      const int dj = static_cast<int>(std::lround((sources[j].cy - prev_cy) / dy));
      x0.resize(prev.size());
      for (int k = 0; k < nz; ++k) {
        for (int jj = 0; jj < ny; ++jj) {
          const int sj = std::clamp(jj - dj, 0, ny - 1);
          for (int ii = 0; ii < nx; ++ii) {
            const int si = std::clamp(ii - di, 0, nx - 1);
            x0[solver.cell_index(ii, jj, k)] = prev[solver.cell_index(si, sj, k)];
          }
        }
      }
      start = &x0;
    }
    auto sol = solver.solve_steady(one, start);
    if (!sol.converged) {
      std::ostringstream os;
      os << "influence: FDM solve for column " << j << " failed: "
         << (sol.breakdown ? "CG breakdown (operator not positive definite)"
                           : "CG hit the iteration limit")
         << ", relative residual " << sol.residual << " after " << sol.cg_iterations
         << " iterations";
      PTHERM_REQUIRE(sol.converged, os.str());
    }
    if (stats != nullptr) {
      stats->cg_iterations += sol.cg_iterations;
      ++stats->influence_columns;
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      r(i, j) = solver.surface_rise(sol, samples[i].x, samples[i].y);
    }
    prev = std::move(sol.rise);
    prev_cx = sources[j].cx;
    prev_cy = sources[j].cy;
  }
  return r;
}

numerics::Matrix spectral_influence_columns(const SpectralThermalSolver& solver,
                                            std::span<const HeatSource> sources,
                                            std::span<const SurfaceSample> samples,
                                            BackendCostStats* stats) {
  const std::size_t n = sources.size();
  PTHERM_REQUIRE(n > 0, "influence: no sources");
  PTHERM_REQUIRE(samples.size() == n, "influence: need one sample per source");
  const std::size_t modes = static_cast<std::size_t>(solver.mode_count());
  // Basis values at the samples, one row per sample, so each column build is
  // a single dense mode-space multiply.
  const numerics::Matrix basis = mode_basis_matrix(solver, samples);
  numerics::Matrix r(samples.size(), n);
  std::vector<double> coeff(modes);
  std::vector<double> column(samples.size());
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<HeatSource> one = {sources[j]};
    one[0].power = 1.0;
    std::fill(coeff.begin(), coeff.end(), 0.0);
    solver.accumulate_surface_coefficients(one, coeff);
    basis.multiply(coeff, column);
    for (std::size_t i = 0; i < samples.size(); ++i) r(i, j) = column[i];
  }
  if (stats != nullptr) {
    stats->influence_columns += static_cast<int>(n);
    stats->modes = static_cast<int>(modes);
  }
  return r;
}

}  // namespace ptherm::thermal
