#include "common/diagnostics.hpp"

#include <sstream>

namespace ptherm {

std::string SolveDiagnostics::format() const {
  std::ostringstream os;
  os << (solver.empty() ? "solve" : solver);
  if (!stage.empty()) os << ": stage " << stage;
  os << " after " << iterations << " iteration" << (iterations == 1 ? "" : "s");
  os << ", residual " << residual;
  if (!worst.empty()) os << " at " << worst;
  return os.str();
}

}  // namespace ptherm
