#include "common/diagnostics.hpp"

#include <sstream>

namespace ptherm {

namespace detail {

std::string convergence_summary(int iterations, const std::string& iteration_unit,
                                const std::string& residual_label, double residual,
                                const std::string& residual_unit, const std::string& where) {
  std::ostringstream os;
  os << iterations << " ";
  if (!iteration_unit.empty()) os << iteration_unit << " ";
  os << "iteration" << (iterations == 1 ? "" : "s");
  os << ", " << residual_label << " " << residual;
  if (!residual_unit.empty()) os << " " << residual_unit;
  if (!where.empty()) os << " at " << where;
  return os.str();
}

}  // namespace detail

std::string SolveDiagnostics::summary() const {
  std::ostringstream os;
  os << (solver.empty() ? "solve" : solver);
  if (!stage.empty()) os << ": stage " << stage;
  os << " after " << detail::convergence_summary(iterations, "", "residual", residual, "", worst);
  return os.str();
}

}  // namespace ptherm
