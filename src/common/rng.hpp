// Deterministic pseudo-random numbers for synthetic workloads.
//
// Benches and tests must be reproducible run-to-run and across platforms, so
// we fix the generator (splitmix64) instead of relying on std::default_random_engine
// whose streams are implementation-defined.
#pragma once

#include <cstdint>

namespace ptherm {

/// splitmix64: tiny, fast, well-distributed; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept { return next_u64() % n; }

  /// Fair coin / biased coin with probability `p` of true.
  bool bernoulli(double p = 0.5) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace ptherm
