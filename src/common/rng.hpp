// Deterministic pseudo-random numbers for synthetic workloads.
//
// Benches and tests must be reproducible run-to-run and across platforms, so
// we fix the generator (splitmix64) instead of relying on std::default_random_engine
// whose streams are implementation-defined.
#pragma once

#include <cstdint>

namespace ptherm {

/// splitmix64: tiny, fast, well-distributed; plenty for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept { return next_u64() % n; }

  /// Fair coin / biased coin with probability `p` of true.
  bool bernoulli(double p = 0.5) noexcept { return uniform() < p; }

  /// Decorrelated sub-stream `index` of `base_seed`, for batched Monte Carlo:
  /// scenario i always draws from stream(seed, i) no matter how many other
  /// scenarios run, in what order, or in which chunk, so every sample is
  /// bitwise reproducible in isolation. Note Rng(base_seed + index) would NOT
  /// work: splitmix64 walks its state by a fixed increment, so nearby seeds
  /// yield the *same* stream shifted by a few draws. Here the index is spread
  /// by an odd multiplier and the combined state is pushed through the
  /// splitmix64 finalizer once more, so distinct indices land on unrelated
  /// state-space orbits (the map index -> state stays injective per seed).
  [[nodiscard]] static Rng stream(std::uint64_t base_seed, std::uint64_t index) noexcept {
    Rng mixer(base_seed ^ (index * 0xd1342543de82ef95ull));
    return Rng(mixer.next_u64());
  }

 private:
  std::uint64_t state_;
};

}  // namespace ptherm
