// Physical constants and unit helpers shared by every ptherm module.
//
// All quantities are SI unless a suffix says otherwise (temperatures in
// kelvin, lengths in metres, power in watts). Conversion helpers are
// provided so call sites read like the paper: `1.0 * um`, `celsius(25)`.
#pragma once

namespace ptherm {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// 0 degrees Celsius in kelvin.
inline constexpr double kZeroCelsius = 273.15;

/// Thermal conductivity of bulk silicon near 300 K [W/(m*K)].
/// (The paper's era used 148-150; temperature dependence is ignored, as in
/// the paper's Eq. (15) with constant k.)
inline constexpr double kSiliconThermalConductivity = 148.0;

/// Volumetric heat capacity of silicon [J/(m^3*K)] (rho*cp = 2330*700).
inline constexpr double kSiliconVolumetricHeatCapacity = 1.631e6;

/// Thermal voltage VT = kB*T/q [V] at absolute temperature `temp_k`.
[[nodiscard]] constexpr double thermal_voltage(double temp_k) noexcept {
  return kBoltzmann * temp_k / kElementaryCharge;
}

/// Convert a Celsius temperature to kelvin.
[[nodiscard]] constexpr double celsius(double deg_c) noexcept { return deg_c + kZeroCelsius; }

/// Convert a kelvin temperature to Celsius.
[[nodiscard]] constexpr double to_celsius(double temp_k) noexcept { return temp_k - kZeroCelsius; }

// ---- length / time / power literal-style multipliers -----------------------
inline constexpr double meter = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

inline constexpr double second = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

inline constexpr double watt = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;

inline constexpr double ampere = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;
inline constexpr double pA = 1e-12;

inline constexpr double volt = 1.0;
inline constexpr double mV = 1e-3;

inline constexpr double farad = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

inline constexpr double hertz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

}  // namespace ptherm
