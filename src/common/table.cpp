#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace ptherm {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_columns(std::vector<std::string> names) {
  PTHERM_REQUIRE(rows_.empty(), "set_columns must precede add_row");
  PTHERM_REQUIRE(!names.empty(), "a table needs at least one column");
  columns_ = std::move(names);
}

void Table::add_row(std::vector<Cell> cells) {
  PTHERM_REQUIRE(cells.size() == columns_.size(), "row arity must match column count");
  rows_.push_back(std::move(cells));
}

double Table::value(std::size_t row, std::size_t col) const {
  PTHERM_REQUIRE(row < rows_.size() && col < columns_.size(), "cell index out of range");
  const Cell& cell = rows_[row][col];
  PTHERM_REQUIRE(std::holds_alternative<double>(cell), "cell is not numeric");
  return std::get<double>(cell);
}

void Table::set_precision(int digits) {
  PTHERM_REQUIRE(digits > 0 && digits <= 17, "precision out of range");
  precision_ = digits;
}

std::string Table::format_cell(const Cell& cell) const {
  if (std::holds_alternative<std::string>(cell)) return std::get<std::string>(cell);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    text.push_back(std::move(cells));
  }
  if (!title_.empty()) os << "# " << title_ << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c]) + 2) << columns_[c];
  }
  os << "\n";
  for (const auto& row : text) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  }
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ",";
    os << escape(columns_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << escape(format_cell(row[c]));
    }
    os << "\n";
  }
}

bool Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

}  // namespace ptherm
