// Error handling primitives.
//
// ptherm reports contract violations and numerical failures with exceptions
// derived from `ptherm::Error`. `PTHERM_REQUIRE` guards preconditions at
// public API boundaries; internal invariants use `PTHERM_ASSERT` which is
// compiled in all build types (the library is small enough that the cost is
// negligible and silent corruption in an EDA tool is far worse).
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/diagnostics.hpp"

namespace ptherm {

/// Base class for all ptherm errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An iterative numerical procedure failed to converge. Throw sites that
/// know their exit context attach a SolveDiagnostics (stage, iterations,
/// residual, worst node/block by name); the structured record is appended to
/// what() AND kept accessible, so callers can branch on the context instead
/// of parsing the message.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
  ConvergenceError(const std::string& what, SolveDiagnostics diagnostics)
      : Error(what + " [" + diagnostics.summary() + "]"),
        diagnostics_(std::move(diagnostics)) {}

  /// Exit context, when the throw site provided one.
  [[nodiscard]] const std::optional<SolveDiagnostics>& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::optional<SolveDiagnostics> diagnostics_;
};

/// A file could not be read, or its contents are malformed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace ptherm

/// Throws ptherm::PreconditionError when `expr` is false.
#define PTHERM_REQUIRE(expr, msg)                                                  \
  do {                                                                             \
    if (!(expr)) ::ptherm::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant check; active in every build type.
#define PTHERM_ASSERT(expr, msg) PTHERM_REQUIRE(expr, msg)
