// Small column-oriented table used by benches and examples to print the
// rows/series behind every reproduced figure, and to dump CSV files that a
// plotting script can pick up verbatim.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ptherm {

/// A printable table: named columns, uniform row count, aligned text output
/// and CSV serialization. Cells are doubles or strings.
class Table {
 public:
  using Cell = std::variant<double, std::string>;

  explicit Table(std::string title = "");

  /// Declares the column layout. Must be called before adding rows.
  void set_columns(std::vector<std::string> names);

  /// Appends one row; the arity must match the declared columns.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }

  /// Returns the numeric value at (row, col); throws if the cell is a string.
  [[nodiscard]] double value(std::size_t row, std::size_t col) const;

  /// Pretty-prints with aligned columns (what bench binaries emit to stdout).
  void print(std::ostream& os) const;

  /// Serializes as RFC-4180-ish CSV (header row + data rows).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path`; returns false if the file cannot be
  /// opened (benches treat CSV dumps as best-effort).
  bool write_csv_file(const std::string& path) const;

  /// Number of significant digits used when formatting doubles (default 6).
  void set_precision(int digits);

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 6;
};

}  // namespace ptherm
