#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm {

ErrorStats compare_series(std::span<const double> model, std::span<const double> reference,
                          double rel_floor) {
  PTHERM_REQUIRE(model.size() == reference.size(), "series must have equal length");
  ErrorStats s;
  s.count = model.size();
  if (model.empty()) return s;
  double sum_sq = 0.0;
  double sum_rel = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    const double err = model[i] - reference[i];
    const double abs_err = std::abs(err);
    const double denom = std::max(std::abs(reference[i]), rel_floor);
    const double rel = abs_err / denom;
    s.max_abs = std::max(s.max_abs, abs_err);
    s.max_rel = std::max(s.max_rel, rel);
    sum_sq += err * err;
    sum_rel += rel;
  }
  s.rms = std::sqrt(sum_sq / static_cast<double>(model.size()));
  s.mean_rel = sum_rel / static_cast<double>(model.size());
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - m) * (x - m);
  return std::sqrt(sum_sq / static_cast<double>(xs.size()));
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  PTHERM_REQUIRE(xs.size() == ys.size(), "x/y length mismatch");
  PTHERM_REQUIRE(xs.size() >= 2, "need at least two points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  PTHERM_REQUIRE(sxx > 0.0, "degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace ptherm
