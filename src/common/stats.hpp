// Error metrics and small statistics used when comparing a model against a
// reference (figures 3, 5, 8, 10 all report agreement between curves).
#pragma once

#include <cstddef>
#include <span>

namespace ptherm {

/// Summary of the pointwise discrepancy between `model` and `reference`.
struct ErrorStats {
  double max_abs = 0.0;       ///< max |model - ref|
  double rms = 0.0;           ///< sqrt(mean (model-ref)^2)
  double max_rel = 0.0;       ///< max |model - ref| / max(|ref|, floor)
  double mean_rel = 0.0;      ///< mean of the relative errors
  std::size_t count = 0;
};

/// Computes ErrorStats over paired samples. `rel_floor` guards the relative
/// error against division by tiny references.
[[nodiscard]] ErrorStats compare_series(std::span<const double> model,
                                        std::span<const double> reference,
                                        double rel_floor = 1e-30);

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation; returns 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Least-squares fit y = a + b*x. Returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace ptherm
