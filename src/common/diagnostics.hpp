// Structured non-convergence context shared by every iterative solver in the
// library. A failing solve used to surface a bare "did not converge" string;
// now the SPICE Newton stack, the electro-thermal Picard loop, and the
// batched scenario engine all attach this one record — which stage or rung
// failed, how many iterations it used, the final residual, and the worst
// offending node/block *by name* — so a failure is auditable from the
// exception (or result struct) alone, without re-running under a debugger.
#pragma once

#include <string>

namespace ptherm {

/// One iterative solve's exit context. `residual` is in the solver's natural
/// unit (amperes for KCL residuals, kelvin for Picard temperature updates);
/// `stage` names the continuation rung or scenario ("gmin=1e-09",
/// "source-step 0.4", "scenario 17"), `worst` the node or block with the
/// largest residual contribution ("" when unknown).
struct SolveDiagnostics {
  std::string solver;    ///< entry point ("solve_dc", "ElectroThermalSolver", ...)
  std::string stage;     ///< rung / homotopy stage / scenario index that decided the outcome
  int iterations = 0;    ///< iterations used (Newton or Picard, total)
  double residual = 0.0; ///< final residual / last max |dT|
  std::string worst;     ///< worst node or block, by name

  /// One-line human-readable summary ("solve_dc: stage gmin=1e-09 after 300
  /// iterations, residual 1.2e-05 at node out"). This is what
  /// ConvergenceError::what() appends in brackets.
  [[nodiscard]] std::string summary() const;
};

namespace detail {

/// The ONE "iterations, residual, location" clause every solver summary
/// formats: "<n> [<unit> ]iteration(s), <label> <residual>[ <unit>][ at
/// <where>]", e.g. "41 Newton iterations, worst KCL 3.1e-13 A at node out"
/// or "300 iterations, residual 1.2e-05 at out". Shared by
/// SolveDiagnostics::summary() and spice::SolveReport::summary() so the two
/// report families cannot drift apart in wording or pluralization.
[[nodiscard]] std::string convergence_summary(int iterations,
                                              const std::string& iteration_unit,
                                              const std::string& residual_label,
                                              double residual,
                                              const std::string& residual_unit,
                                              const std::string& where);

}  // namespace detail

}  // namespace ptherm
