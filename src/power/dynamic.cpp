#include "power/dynamic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::power {

using device::Technology;

double transient_power(const Technology& tech, const SwitchingContext& ctx) noexcept {
  return ctx.activity * ctx.frequency * ctx.c_load * tech.vdd * tech.vdd;
}

double short_circuit_charge(const Technology& tech, double wn, double wp, double length,
                            const SwitchingContext& ctx) {
  PTHERM_REQUIRE(wn > 0.0 && wp > 0.0 && length > 0.0, "short_circuit_charge: bad geometry");
  PTHERM_REQUIRE(ctx.tau_in >= 0.0, "short_circuit_charge: negative transition time");
  const double vdd = tech.vdd;
  const double vtn = tech.vt0_n;
  const double vtp = tech.vt0_p;
  // Conduction window: both devices are on while vtn < Vin < VDD - |vtp|.
  const double window = vdd - vtn - vtp;
  if (window <= 0.0 || ctx.tau_in == 0.0) return 0.0;  // no overlap, no Qsc
  const double t_overlap = ctx.tau_in * window / vdd;

  // Peak: the weaker device in saturation at the mid-swing input.
  const double v_mid = 0.5 * vdd;
  const double ov_n = std::max(0.0, v_mid - vtn);
  const double ov_p = std::max(0.0, vdd - v_mid - vtp);
  const double i_n = 0.5 * tech.kp_n * (wn / length) * ov_n * ov_n;
  const double i_p = 0.5 * tech.kp_p * (wp / length) * ov_p * ov_p;
  const double i_peak = std::min(i_n, i_p);
  if (i_peak <= 0.0) return 0.0;

  // Load feedback: a heavy load slows the output, starving the short-circuit
  // path; derate by C_crit / (C_crit + C_load) with C_crit the charge the
  // peak current can move during the transition.
  const double c_crit = i_peak * ctx.tau_in / vdd;
  const double derate = c_crit / (c_crit + ctx.c_load);

  // Triangular conduction pulse.
  return 0.5 * i_peak * t_overlap * derate;
}

double short_circuit_power(const Technology& tech, double wn, double wp, double length,
                           const SwitchingContext& ctx) {
  const double qsc = short_circuit_charge(tech, wn, wp, length, ctx);
  return ctx.activity * ctx.frequency * qsc * tech.vdd;
}

GateDynamicPower gate_dynamic_power(const Technology& tech, double wn, double wp,
                                    double length, const SwitchingContext& ctx) {
  GateDynamicPower p;
  p.transient = transient_power(tech, ctx);
  p.short_circuit = short_circuit_power(tech, wn, wp, length, ctx);
  return p;
}

}  // namespace ptherm::power
