// Dynamic power: the transient (load charge/discharge) term the paper quotes
// as Pt = alpha * f * C * VDD^2 and a charge-based short-circuit model in the
// spirit of the authors' earlier work [10] (Rossello & Segura, TCAD 2002).
//
// [10] is a full charge-based treatment of a CMOS buffer; we reconstruct its
// operative ingredients — a conduction window set by the input slope, a
// saturation-current peak, and a load-feedback derating — which is enough to
// give short-circuit power the right magnitude (a 5-25% adder that shrinks
// with load) for the total-power studies the paper performs.
#pragma once

#include "device/tech.hpp"

namespace ptherm::power {

/// Switching statistics of one gate/net.
struct SwitchingContext {
  double frequency = 1e9;   ///< clock frequency [Hz]
  double activity = 0.1;    ///< switching activity factor alpha
  double c_load = 5e-15;    ///< switched output capacitance [F]
  double tau_in = 50e-12;   ///< input transition time [s]
};

/// Pt = alpha * f * C * VDD^2.
[[nodiscard]] double transient_power(const device::Technology& tech,
                                     const SwitchingContext& ctx) noexcept;

/// Short-circuit charge per transition [C] for an inverter-like stage with
/// nMOS width `wn`, pMOS width `wp`, channel length `length`.
[[nodiscard]] double short_circuit_charge(const device::Technology& tech, double wn, double wp,
                                          double length, const SwitchingContext& ctx);

/// Psc = alpha * f * Qsc * VDD.
[[nodiscard]] double short_circuit_power(const device::Technology& tech, double wn, double wp,
                                         double length, const SwitchingContext& ctx);

/// Both dynamic components of one gate.
struct GateDynamicPower {
  double transient = 0.0;
  double short_circuit = 0.0;
  [[nodiscard]] double total() const noexcept { return transient + short_circuit; }
};

[[nodiscard]] GateDynamicPower gate_dynamic_power(const device::Technology& tech, double wn,
                                                  double wp, double length,
                                                  const SwitchingContext& ctx);

}  // namespace ptherm::power
