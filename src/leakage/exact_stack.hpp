// "Exact" numerical solution of an OFF transistor chain: current continuity
// through Eq. (1)/(2) is enforced to machine precision, with no collapse
// approximation. This plays the role of the paper's SPICE baseline for
// Figs. 3 and 8 (the full MNA solver in src/spice cross-checks it in tests).
#pragma once

#include <span>
#include <vector>

#include "device/mosfet.hpp"

namespace ptherm::leakage {

struct ExactStackResult {
  double current = 0.0;              ///< stack OFF current [A]
  std::vector<double> node_voltages; ///< V_1..V_{N-1}, bottom first [V]
  int function_evaluations = 0;
};

/// Solves the chain (widths bottom-first, shared length, gates grounded,
/// bottom source at 0, top drain at VDD, substrate at `vb`). Nested
/// bracketing: an outer Brent search on log-current with inner Brent solves
/// for each internal node. Unconditionally convergent for this monotone
/// system; throws ConvergenceError only if bracketing fails.
ExactStackResult solve_exact_chain(const device::Technology& tech, device::MosType type,
                                   std::span<const double> widths, double length, double temp,
                                   double vb = 0.0);

/// Exact intermediate-node voltage V_1 of a two-transistor stack — the
/// reference curve of Fig. 3. `w_bottom`/`w_top` in metres.
double exact_two_stack_delta_v(const device::Technology& tech, device::MosType type,
                               double w_bottom, double w_top, double length, double temp);

}  // namespace ptherm::leakage
