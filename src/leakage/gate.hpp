// Gate-level static power: combines the pull-up and pull-down series-parallel
// networks into the paper's per-input-vector OFF current (Eq. 13 applied to
// the collapsed OFF network) and aggregates over vectors.
#pragma once

#include <string>
#include <vector>

#include "leakage/spnet.hpp"

namespace ptherm::leakage {

/// A static CMOS gate: complementary pull-up (pMOS, to VDD) and pull-down
/// (nMOS, to ground) networks sharing the same logical inputs.
struct GateTopology {
  std::string name;
  SpNetwork pull_up;
  SpNetwork pull_down;
  double length = 0.0;  ///< shared channel length [m]

  [[nodiscard]] int input_count() const {
    return std::max(pull_up.input_count(), pull_down.input_count());
  }
  [[nodiscard]] int device_count() const {
    return pull_up.device_count() + pull_down.device_count();
  }
};

/// Per-vector static analysis of one gate.
struct GateStaticResult {
  bool output_high = false;    ///< pull-up ON (true) or pull-down ON (false)
  double i_off = 0.0;          ///< supply-to-ground subthreshold current [A]
  double p_static = 0.0;       ///< i_off * VDD [W]
  double w_eff = 0.0;          ///< effective width of the blocking network [m]
  bool weak_level = false;     ///< blocking network sees a degraded level
  double vds_eff = 0.0;        ///< drain-source drop across the blocker [V]
};

/// Evaluation options. The paper's model treats ON transistors as ideal
/// internal shorts; `weak_level_correction` extends it: when ON pass devices
/// separate the blocking element from the driven output, they can only pass
/// the level minus a threshold, so the blocker sees less DIBL. The corrected
/// drain level comes from a two-step closed-form continuity balance between
/// the pass device (in weak inversion at the handover point) and the leaking
/// network — no iteration loops, in keeping with the paper's philosophy.
struct GateEvalOptions {
  bool weak_level_correction = false;
};

/// Evaluates the gate's static state for `inputs` at temperature `temp` and
/// substrate bias `vb`. Exactly one of the two networks must be ON (static
/// complementary CMOS); contention or a floating output throws.
GateStaticResult gate_static(const device::Technology& tech, const GateTopology& gate,
                             const InputVector& inputs, double temp, double vb = 0.0,
                             const GateEvalOptions& opts = {});

/// Statistics of a gate over all 2^k input vectors (k = input_count).
struct GateLeakageSummary {
  double mean_i_off = 0.0;
  double min_i_off = 0.0;
  double max_i_off = 0.0;
  InputVector min_vector;
  InputVector max_vector;
};
GateLeakageSummary gate_leakage_summary(const device::Technology& tech,
                                        const GateTopology& gate, double temp,
                                        double vb = 0.0);

/// Enumerates the `index`-th input vector of width `bits` (bit 0 = input 0).
[[nodiscard]] InputVector vector_from_index(unsigned index, int bits);

}  // namespace ptherm::leakage
