#include "leakage/exact_stack.hpp"

#include <cmath>

#include "common/error.hpp"
#include "leakage/collapse.hpp"
#include "numerics/roots.hpp"

namespace ptherm::leakage {

using device::BiasPoint;
using device::MosType;
using device::Technology;

namespace {

/// Current through device i of the chain when its source sits at v_lo and
/// its drain at v_hi (gate grounded, bulk at vb).
double device_current(const Technology& tech, MosType type, double width, double length,
                      double v_lo, double v_hi, double temp, double vb) {
  BiasPoint bias;
  bias.vgs = -v_lo;
  bias.vds = v_hi - v_lo;
  bias.vsb = v_lo - vb;
  bias.temp = temp;
  return device::subthreshold_current(tech, type, width, length, bias);
}

}  // namespace

ExactStackResult solve_exact_chain(const Technology& tech, MosType type,
                                   std::span<const double> widths, double length, double temp,
                                   double vb) {
  PTHERM_REQUIRE(!widths.empty(), "solve_exact_chain: empty chain");
  PTHERM_REQUIRE(length > 0.0, "solve_exact_chain: non-positive length");
  const std::size_t n = widths.size();
  ExactStackResult result;
  int evals = 0;

  if (n == 1) {
    result.current = device_current(tech, type, widths[0], length, 0.0, tech.vdd, temp, vb);
    result.function_evaluations = 1;
    return result;
  }

  const double v_cap = tech.vdd + 1.0;  // internal nodes never exceed this

  // Given a candidate stack current, walk up the chain solving each internal
  // node; returns log-residual at the top device (or +/-inf style sentinels
  // when the candidate is infeasible).
  auto top_log_residual = [&](double log_i, std::vector<double>* nodes_out) {
    const double target = std::exp(log_i);
    double v_lo = 0.0;
    std::vector<double> nodes;
    nodes.reserve(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      auto g = [&](double v_hi) {
        ++evals;
        return device_current(tech, type, widths[i], length, v_lo, v_hi, temp, vb) - target;
      };
      // Current rises monotonically with the drain voltage from 0 at
      // v_hi = v_lo; if even v_cap cannot carry `target`, the candidate is
      // too large — report a strongly negative residual so the outer search
      // (whose residual decreases with log_i) moves downward.
      if (g(v_cap) < 0.0) return -1e3;
      numerics::RootOptions ro;
      ro.x_tol = 1e-14;
      const auto root = numerics::brent(g, v_lo + 1e-15, v_cap, ro);
      nodes.push_back(root.x);
      v_lo = root.x;
    }
    ++evals;
    const double i_top =
        device_current(tech, type, widths[n - 1], length, v_lo, tech.vdd, temp, vb);
    if (nodes_out) *nodes_out = std::move(nodes);
    if (i_top <= 0.0) return -1e3;  // nodes above VDD: candidate far too large
    return std::log(i_top) - log_i;
  };

  // Bracket the stack current around the collapse model's estimate: the
  // compact model is accurate to a few percent, so +/- e^10 is generous.
  const double i_model = chain_off_current(tech, type, widths, length, temp, vb);
  PTHERM_REQUIRE(i_model > 0.0, "solve_exact_chain: model current not positive");
  double lo = std::log(i_model) - 10.0;
  double hi = std::log(i_model) + 10.0;
  auto residual = [&](double log_i) { return top_log_residual(log_i, nullptr); };
  if (!numerics::expand_bracket(residual, lo, hi)) {
    throw ConvergenceError("solve_exact_chain: could not bracket the stack current");
  }
  numerics::RootOptions ro;
  ro.x_tol = 1e-13;
  const auto root = numerics::brent(residual, lo, hi, ro);
  if (!root.converged) {
    throw ConvergenceError("solve_exact_chain: Brent failed on the outer current search");
  }
  result.current = std::exp(root.x);
  top_log_residual(root.x, &result.node_voltages);
  result.function_evaluations = evals;
  return result;
}

double exact_two_stack_delta_v(const Technology& tech, MosType type, double w_bottom,
                               double w_top, double length, double temp) {
  const double widths[2] = {w_bottom, w_top};
  const auto solved = solve_exact_chain(tech, type, widths, length, temp, 0.0);
  return solved.node_voltages.at(0);
}

}  // namespace ptherm::leakage
