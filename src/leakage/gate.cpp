#include "leakage/gate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/collapse.hpp"

namespace ptherm::leakage {

using device::MosType;
using device::Technology;

namespace {

/// Closed-form weak-level drop: the ON pass segment (width `w_pass`, gate at
/// full rail drive) hands over the output level at the point where its weak-
/// inversion current matches the leakage `i_leak` of the blocking network.
/// Solving the Eq. (1)/(2) balance for the handover node gives
///   v = (VDD - VT0 - KT dT - n VT ln(i_leak / I0' )) / (1 + gamma' + sigma),
/// with I0' the pass device's subthreshold prefactor. Mirrored topologies
/// (pMOS pass) reduce to the same expression in magnitudes.
double weak_level_node(const Technology& tech, MosType type, double w_pass, double length,
                       double i_leak, double temp) {
  const double nvt = tech.n_swing * thermal_voltage(temp);
  const double ratio = temp / tech.t_ref;
  const double i0_pass = tech.i0(type) * (w_pass / length) * ratio * ratio;
  const double lambda = std::log(std::max(i_leak, 1e-30) / i0_pass);
  const double vt0_t = tech.vt0(type) + tech.k_t * (temp - tech.t_ref);
  const double v = (tech.vdd - vt0_t - nvt * lambda) /
                   (1.0 + tech.gamma_lin + tech.sigma_dibl);
  return std::clamp(v, 0.0, tech.vdd);
}

}  // namespace

GateStaticResult gate_static(const Technology& tech, const GateTopology& gate,
                             const InputVector& inputs, double temp, double vb,
                             const GateEvalOptions& opts) {
  PTHERM_REQUIRE(gate.length > 0.0, "gate_static: gate.length not set");
  PTHERM_REQUIRE(static_cast<int>(inputs.size()) >= gate.input_count(),
                 "gate_static: input vector too short");

  const bool up_on = gate.pull_up.is_on(MosType::Pmos, inputs);
  const bool down_on = gate.pull_down.is_on(MosType::Nmos, inputs);
  PTHERM_REQUIRE(!(up_on && down_on),
                 "gate_static: contention (both networks ON) — not static CMOS");
  PTHERM_REQUIRE(up_on || down_on,
                 "gate_static: floating output (both networks OFF) — not static CMOS");

  GateStaticResult result;
  result.output_high = up_on;
  // Leakage flows through the OFF network; its collapsed width feeds Eq. (13).
  const MosType off_type = up_on ? MosType::Nmos : MosType::Pmos;
  const SpNetwork& off_net = up_on ? gate.pull_down : gate.pull_up;
  const auto reduction = off_net.off_reduction(tech, off_type, inputs, temp);
  PTHERM_ASSERT(reduction.has_value(), "OFF network reported ON");
  result.w_eff = reduction->w_eff;
  result.vds_eff = tech.vdd;

  device::BiasPoint bias;
  bias.vgs = 0.0;
  bias.vds = tech.vdd;
  bias.vsb = -vb;
  bias.temp = temp;
  result.i_off = device::subthreshold_current(tech, off_type, result.w_eff, gate.length, bias);

  if (opts.weak_level_correction && reduction->degraded_drain &&
      std::isfinite(reduction->pass_width)) {
    result.weak_level = true;
    // Two explicit continuity passes: v depends on i_leak which depends on
    // the DIBL at v. Starting from the uncorrected current, two rounds land
    // within a fraction of a percent of the full solve (see tests).
    double i_leak = result.i_off;
    double v = tech.vdd;
    for (int pass = 0; pass < 2; ++pass) {
      v = weak_level_node(tech, off_type, reduction->pass_width, gate.length, i_leak, temp);
      bias.vds = v;
      i_leak =
          device::subthreshold_current(tech, off_type, result.w_eff, gate.length, bias);
    }
    result.vds_eff = v;
    result.i_off = i_leak;
  }

  result.p_static = result.i_off * tech.vdd;
  return result;
}

GateLeakageSummary gate_leakage_summary(const Technology& tech, const GateTopology& gate,
                                        double temp, double vb) {
  const int k = gate.input_count();
  PTHERM_REQUIRE(k >= 1 && k <= 20, "gate_leakage_summary: unsupported input count");
  GateLeakageSummary summary;
  summary.min_i_off = std::numeric_limits<double>::infinity();
  const unsigned total = 1u << k;
  double sum = 0.0;
  for (unsigned v = 0; v < total; ++v) {
    const InputVector inputs = vector_from_index(v, k);
    const GateStaticResult r = gate_static(tech, gate, inputs, temp, vb);
    sum += r.i_off;
    if (r.i_off < summary.min_i_off) {
      summary.min_i_off = r.i_off;
      summary.min_vector = inputs;
    }
    if (r.i_off > summary.max_i_off) {
      summary.max_i_off = r.i_off;
      summary.max_vector = inputs;
    }
  }
  summary.mean_i_off = sum / static_cast<double>(total);
  return summary;
}

InputVector vector_from_index(unsigned index, int bits) {
  PTHERM_REQUIRE(bits >= 0 && bits <= 31, "vector_from_index: bad width");
  InputVector v(static_cast<std::size_t>(bits));
  for (int b = 0; b < bits; ++b) v[b] = ((index >> b) & 1u) != 0;
  return v;
}

}  // namespace ptherm::leakage
