#include "leakage/spnet.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "leakage/collapse.hpp"

namespace ptherm::leakage {

using device::MosType;
using device::Technology;

SpNetwork SpNetwork::device(int input_index, double width) {
  PTHERM_REQUIRE(input_index >= 0, "device: negative input index");
  PTHERM_REQUIRE(width > 0.0, "device: non-positive width");
  SpNetwork n;
  n.kind_ = Kind::Device;
  n.input_ = input_index;
  n.width_ = width;
  return n;
}

SpNetwork SpNetwork::series(std::vector<SpNetwork> children) {
  PTHERM_REQUIRE(!children.empty(), "series: no children");
  SpNetwork n;
  n.kind_ = Kind::Series;
  // Flatten series-of-series (exact by associativity): the chain collapse is
  // most accurate on the longest flat chain it can see, because the inner
  // collapse would otherwise assume the full supply across a sub-chain that
  // only drops part of it.
  n.children_.reserve(children.size());
  for (auto& c : children) {
    if (c.kind_ == Kind::Series) {
      for (auto& gc : c.children_) n.children_.push_back(std::move(gc));
    } else {
      n.children_.push_back(std::move(c));
    }
  }
  if (n.children_.size() == 1) return std::move(n.children_.front());
  return n;
}

SpNetwork SpNetwork::parallel(std::vector<SpNetwork> children) {
  PTHERM_REQUIRE(!children.empty(), "parallel: no children");
  SpNetwork n;
  n.kind_ = Kind::Parallel;
  n.children_.reserve(children.size());
  for (auto& c : children) {
    if (c.kind_ == Kind::Parallel) {  // flatten, exact by associativity
      for (auto& gc : c.children_) n.children_.push_back(std::move(gc));
    } else {
      n.children_.push_back(std::move(c));
    }
  }
  if (n.children_.size() == 1) return std::move(n.children_.front());
  return n;
}

int SpNetwork::input_count() const {
  if (kind_ == Kind::Device) return input_ + 1;
  int count = 0;
  for (const auto& c : children_) count = std::max(count, c.input_count());
  return count;
}

int SpNetwork::device_count() const {
  if (kind_ == Kind::Device) return 1;
  int count = 0;
  for (const auto& c : children_) count += c.device_count();
  return count;
}

bool SpNetwork::is_on(MosType type, const InputVector& inputs) const {
  PTHERM_REQUIRE(!empty(), "is_on: empty network");
  switch (kind_) {
    case Kind::Device: {
      PTHERM_REQUIRE(static_cast<std::size_t>(input_) < inputs.size(),
                     "is_on: input vector too short");
      const bool level = inputs[input_];
      return type == MosType::Nmos ? level : !level;
    }
    case Kind::Series:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const SpNetwork& c) { return c.is_on(type, inputs); });
    case Kind::Parallel:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const SpNetwork& c) { return c.is_on(type, inputs); });
  }
  return false;  // unreachable
}

std::optional<double> SpNetwork::effective_width(const Technology& tech, MosType type,
                                                 const InputVector& inputs,
                                                 double temp) const {
  const auto r = off_reduction(tech, type, inputs, temp);
  if (!r) return std::nullopt;
  return r->w_eff;
}

double SpNetwork::on_width(MosType type, const InputVector& inputs) const {
  PTHERM_REQUIRE(!empty(), "on_width: empty network");
  PTHERM_REQUIRE(is_on(type, inputs), "on_width: network is not conducting");
  switch (kind_) {
    case Kind::Device:
      return width_;
    case Kind::Series: {
      double weakest = std::numeric_limits<double>::infinity();
      for (const auto& c : children_) {
        weakest = std::min(weakest, c.on_width(type, inputs));
      }
      return weakest;
    }
    case Kind::Parallel: {
      double sum = 0.0;
      for (const auto& c : children_) {
        if (c.is_on(type, inputs)) sum += c.on_width(type, inputs);
      }
      return sum;
    }
  }
  return 0.0;  // unreachable
}

std::optional<SpNetwork::OffReduction> SpNetwork::off_reduction(const Technology& tech,
                                                                MosType type,
                                                                const InputVector& inputs,
                                                                double temp) const {
  PTHERM_REQUIRE(!empty(), "off_reduction: empty network");
  switch (kind_) {
    case Kind::Device:
      if (is_on(type, inputs)) return std::nullopt;
      return OffReduction{width_, false, 0.0};

    case Kind::Parallel: {
      // Rule: an OFF chain in parallel with an ON chain is discarded; the
      // parallel block as a whole is then ON. Otherwise widths add. The
      // block's drain is degraded only if every branch's is (a single
      // undegraded branch dominates the leakage path).
      double sum = 0.0;
      bool all_degraded = true;
      double pass = std::numeric_limits<double>::infinity();
      for (const auto& c : children_) {
        const auto r = c.off_reduction(tech, type, inputs, temp);
        if (!r) return std::nullopt;  // some branch is ON
        sum += r->w_eff;
        if (r->degraded_drain) pass = std::min(pass, r->pass_width);
        else all_degraded = false;
      }
      if (all_degraded && !children_.empty()) return OffReduction{sum, true, pass};
      return OffReduction{sum, false, 0.0};
    }

    case Kind::Series: {
      // ON children are internal shorts (part of the internal nodes, §2.2);
      // the remaining OFF blocks form a chain, collapsed rail-side first.
      // ON children *above* the topmost OFF block form a pass segment that
      // degrades the drain level the chain sees.
      std::vector<double> widths;
      widths.reserve(children_.size());
      bool degraded = false;                 // of the topmost OFF block itself
      double inner_pass = std::numeric_limits<double>::infinity();
      double pass_above = std::numeric_limits<double>::infinity();
      bool any_on_above = false;
      for (const auto& c : children_) {      // rail-side first
        const auto r = c.off_reduction(tech, type, inputs, temp);
        if (r) {
          widths.push_back(r->w_eff);
          degraded = r->degraded_drain;      // matters only for the last OFF
          inner_pass = r->degraded_drain ? r->pass_width
                                         : std::numeric_limits<double>::infinity();
          any_on_above = false;              // reset: ON children so far are internal
          pass_above = std::numeric_limits<double>::infinity();
        } else {
          any_on_above = true;
          pass_above = std::min(pass_above, c.on_width(type, inputs));
        }
      }
      if (widths.empty()) return std::nullopt;  // every child ON -> short
      const double w_eff = (widths.size() == 1)
                               ? widths[0]
                               : collapse_chain(tech, type, widths, temp).w_eff;
      const bool out_degraded = degraded || any_on_above;
      double pass = std::numeric_limits<double>::infinity();
      if (degraded) pass = std::min(pass, inner_pass);
      if (any_on_above) pass = std::min(pass, pass_above);
      return OffReduction{w_eff, out_degraded, out_degraded ? pass : 0.0};
    }
  }
  return std::nullopt;  // unreachable
}

}  // namespace ptherm::leakage
