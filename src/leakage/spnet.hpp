// Series-parallel transistor networks — the topology layer the paper's §2.1
// gate rules operate on:
//   * an OFF chain in parallel with an ON chain is discarded,
//   * parallel OFF chains collapse to the sum of their effective widths,
//   * series OFF devices collapse via the chain-collapse technique, with ON
//     devices treated as internal shorts.
// Every standard CMOS cell (NAND/NOR/AOI/OAI/...) is a series-parallel
// composition, so this covers the full library for every input vector.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "device/mosfet.hpp"

namespace ptherm::leakage {

/// Input vector as bits; inputs.size() == number of gate inputs.
using InputVector = std::vector<bool>;

/// A series-parallel network between a supply rail and the gate output.
/// Series composition is ordered rail-side first.
class SpNetwork {
 public:
  /// Default-constructed networks are empty placeholders (GateTopology
  /// members before assembly); any evaluation on them throws.
  SpNetwork() = default;

  /// True until the network is assigned from one of the factories.
  [[nodiscard]] bool empty() const noexcept {
    return kind_ != Kind::Device && children_.empty();
  }

  /// Single transistor controlled by input `input_index`; width in metres.
  static SpNetwork device(int input_index, double width);
  /// Series composition, rail-side child first.
  static SpNetwork series(std::vector<SpNetwork> children);
  /// Parallel composition.
  static SpNetwork parallel(std::vector<SpNetwork> children);

  enum class Kind : std::uint8_t { Device, Series, Parallel };
  // (A default-constructed network reports Kind::Series with no children and
  // empty() == true; the factories never produce that state.)
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] int input_index() const noexcept { return input_; }
  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] const std::vector<SpNetwork>& children() const noexcept { return children_; }

  /// Largest input index referenced, plus one (0 for an empty network).
  [[nodiscard]] int input_count() const;

  /// Total transistor count.
  [[nodiscard]] int device_count() const;

  /// True when a fully-ON path connects the two terminals for this vector.
  /// `type` sets the polarity: nMOS conducts on 1, pMOS conducts on 0.
  [[nodiscard]] bool is_on(device::MosType type, const InputVector& inputs) const;

  /// Effective width of the network when it is OFF for this vector:
  /// the recursive application of the paper's collapse rules. Returns
  /// nullopt when the network is ON (no meaningful OFF width).
  [[nodiscard]] std::optional<double> effective_width(const device::Technology& tech,
                                                      device::MosType type,
                                                      const InputVector& inputs,
                                                      double temp) const;

  /// Full OFF-state reduction. Besides the collapsed width it reports
  /// whether ON devices sit between the blocking (topmost OFF) element and
  /// the output: such pass devices can only hand the output level on minus a
  /// threshold, which reduces the DIBL seen by the OFF element — the
  /// weak-level effect the paper's "internal short" assumption ignores (and
  /// that gate_static can optionally correct for).
  struct OffReduction {
    double w_eff = 0.0;
    bool degraded_drain = false;
    /// Effective width of the weakest ON pass segment above the blocking
    /// element; meaningful only when degraded_drain is true.
    double pass_width = 0.0;
  };
  [[nodiscard]] std::optional<OffReduction> off_reduction(const device::Technology& tech,
                                                          device::MosType type,
                                                          const InputVector& inputs,
                                                          double temp) const;

  /// Conducting width of an ON network (devices: W; series: weakest link;
  /// parallel: sum over conducting branches). Precondition: is_on().
  [[nodiscard]] double on_width(device::MosType type, const InputVector& inputs) const;

 private:
  Kind kind_ = Kind::Series;
  int input_ = 0;
  double width_ = 0.0;
  std::vector<SpNetwork> children_;
};

}  // namespace ptherm::leakage
