#include "leakage/baselines.hpp"

#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace ptherm::leakage {

using device::BiasPoint;
using device::MosType;
using device::Technology;

namespace {
/// Eq. (13)-style final evaluation shared by both baselines: a single
/// equivalent device of width `w_eff` with VGS = 0, VDS = VDD.
double equivalent_off_current(const Technology& tech, MosType type, double w_eff,
                              double length, double temp) {
  BiasPoint bias;
  bias.vgs = 0.0;
  bias.vds = tech.vdd;
  bias.vsb = 0.0;
  bias.temp = temp;
  return device::subthreshold_current(tech, type, w_eff, length, bias);
}
}  // namespace

double chen98_chain_off_current(const Technology& tech, MosType type,
                                std::span<const double> widths, double length, double temp) {
  PTHERM_REQUIRE(!widths.empty(), "chen98: empty chain");
  PTHERM_REQUIRE(length > 0.0, "chen98: non-positive length");
  const double nvt = tech.n_swing * thermal_voltage(temp);
  // gamma' = 0 and hard case-(a) node voltages: the model's two documented
  // simplifications relative to the paper's Eqs. (6)-(10).
  const double alpha = tech.n_swing / (1.0 + 2.0 * tech.sigma_dibl);
  const double body_exp = 1.0 + tech.sigma_dibl;

  const std::size_t n = widths.size();
  double w_eq = widths[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    const double f = std::log(w_eq / widths[i]) + tech.sigma_dibl * tech.vdd / nvt;
    const double dv = std::max(0.0, alpha * thermal_voltage(temp) * f);
    w_eq *= std::exp(-body_exp * dv / nvt);
  }
  return equivalent_off_current(tech, type, w_eq, length, temp);
}

double chen98_stack_off_current(const Technology& tech, MosType type, double width,
                                double length, int n, double temp) {
  PTHERM_REQUIRE(n >= 1, "chen98: need at least one device");
  std::vector<double> widths(static_cast<std::size_t>(n), width);
  return chen98_chain_off_current(tech, type, widths, length, temp);
}

double narendra04_stack_off_current(const Technology& tech, MosType type, double width,
                                    double length, int n, double temp) {
  PTHERM_REQUIRE(n == 1 || n == 2,
                 "narendra04: model is defined for stacks of one or two devices only");
  if (n == 1) return equivalent_off_current(tech, type, width, length, temp);
  // Two-stack: intermediate node from the VDS >> VT continuity solution with
  // body effect retained (their Eq. for V_int), then the top device's width
  // is derated exactly as in the paper's Eq. (6).
  const double vt = thermal_voltage(temp);
  const double nvt = tech.n_swing * vt;
  const double v_int =
      (tech.sigma_dibl * tech.vdd) / (1.0 + tech.gamma_lin + 2.0 * tech.sigma_dibl);
  const double w_eff =
      width * std::exp(-(1.0 + tech.gamma_lin + tech.sigma_dibl) * v_int / nvt);
  return equivalent_off_current(tech, type, w_eff, length, temp);
}

}  // namespace ptherm::leakage
