#include "leakage/collapse.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace ptherm::leakage {

using device::MosType;
using device::Technology;

double collapse_alpha(const Technology& tech) noexcept {
  return tech.n_swing / (1.0 + tech.gamma_lin + 2.0 * tech.sigma_dibl);
}

double collapse_f(const Technology& tech, double w_upper, double w_lower,
                  double temp) noexcept {
  const double nvt = tech.n_swing * thermal_voltage(temp);
  return std::log(w_upper / w_lower) + tech.sigma_dibl * tech.vdd / nvt;
}

double delta_v_case_a(const Technology& tech, double f, double temp) noexcept {
  return collapse_alpha(tech) * thermal_voltage(temp) * f;
}

double delta_v_case_b(const Technology& /*tech*/, double f, double temp) noexcept {
  return thermal_voltage(temp) * std::exp(f);
}

double delta_v_blend(const Technology& tech, double f, double temp) noexcept {
  const double vt = thermal_voltage(temp);
  const double alpha = collapse_alpha(tech);
  // log1p/softplus guard against overflow for large |f|.
  const double softplus = (f > 30.0) ? f : std::log1p(std::exp(f));
  const double logistic = 1.0 / (1.0 + std::exp(-f));
  return vt * (alpha * softplus + (1.0 - alpha) * logistic);
}

double delta_v_refined(const Technology& tech, double f, double temp) noexcept {
  const double vt = thermal_voltage(temp);
  const double alpha = collapse_alpha(tech);
  const double x0 = delta_v_blend(tech, f, temp) / vt;
  // The exact pair-continuity relation is f = x/alpha + ln(1 - e^-x); the
  // map x <- alpha*(f - ln(1 - e^-x)) contracts for x above ~0.8 with this
  // technology's alpha. Two unrolled applications (still closed form, no
  // loop) pull the blend onto the exact curve; fade them in over
  // x in [0.8, 1.3] and keep the pure blend below, where case (b) already
  // is the exact asymptote.
  if (x0 <= 0.8) return vt * x0;
  const double x1 = alpha * (f - std::log1p(-std::exp(-x0)));
  const double x2 = alpha * (f - std::log1p(-std::exp(-std::max(x1, 0.05))));
  const double t = std::clamp((x0 - 0.8) / 0.5, 0.0, 1.0);
  const double w = t * t * (3.0 - 2.0 * t);
  return vt * ((1.0 - w) * x0 + w * x2);
}

double delta_v(const Technology& tech, double f, double temp,
               CollapseVariant variant) noexcept {
  switch (variant) {
    case CollapseVariant::CaseAOnly:
      return std::max(0.0, delta_v_case_a(tech, f, temp));
    case CollapseVariant::CaseBOnly:
      return delta_v_case_b(tech, f, temp);
    case CollapseVariant::Refined:
      return delta_v_refined(tech, f, temp);
    case CollapseVariant::PaperBlend:
      break;
  }
  return delta_v_blend(tech, f, temp);
}

CollapseResult collapse_chain(const Technology& tech, MosType type,
                              std::span<const double> widths, double temp,
                              CollapseVariant variant) {
  PTHERM_REQUIRE(!widths.empty(), "collapse_chain: empty chain");
  for (double w : widths) PTHERM_REQUIRE(w > 0.0, "collapse_chain: non-positive width");
  (void)type;  // Eqs. (6)-(12) use only process parameters shared by n/pMOS

  CollapseResult result;
  const std::size_t n = widths.size();
  const double nvt = tech.n_swing * thermal_voltage(temp);
  const double body_exp = 1.0 + tech.gamma_lin + tech.sigma_dibl;

  // Pairwise top-down collapse (§2.2): the running equivalent transistor
  // starts as the top device; each lower device i contributes a drop
  // Delta-V_i (Eq. 10) and shrinks the equivalent width (Eq. 6).
  double w_eq = widths[n - 1];
  result.drops.assign(n >= 1 ? n - 1 : 0, 0.0);
  for (std::size_t i = n - 1; i-- > 0;) {
    const double f = collapse_f(tech, w_eq, widths[i], temp);
    const double dv = delta_v(tech, f, temp, variant);
    result.drops[i] = dv;
    w_eq *= std::exp(-body_exp * dv / nvt);
    result.v_top += dv;
  }
  result.w_eff = w_eq;
  return result;
}

double chain_off_current(const Technology& tech, MosType type, std::span<const double> widths,
                         double length, double temp, double vb, CollapseVariant variant) {
  PTHERM_REQUIRE(length > 0.0, "chain_off_current: non-positive length");
  const CollapseResult collapsed = collapse_chain(tech, type, widths, temp, variant);
  // Eq. (13): the equivalent device sees VGS = 0, VSB = -vb, VDS = VDD, so
  // the DIBL term vanishes and the gamma'*VB term survives.
  device::BiasPoint bias;
  bias.vgs = 0.0;
  bias.vds = tech.vdd;
  bias.vsb = -vb;
  bias.temp = temp;
  return device::subthreshold_current(tech, type, collapsed.w_eff, length, bias);
}

double stack_off_current(const Technology& tech, MosType type, double width, double length,
                         int n, double temp, double vb, CollapseVariant variant) {
  PTHERM_REQUIRE(n >= 1, "stack_off_current: need at least one device");
  std::vector<double> widths(static_cast<std::size_t>(n), width);
  return chain_off_current(tech, type, widths, length, temp, vb, variant);
}

}  // namespace ptherm::leakage
