// Reconstructions of the two prior-art stack-leakage models the paper
// compares against (both closed-source; rebuilt from their publications):
//
//  [8] Z. Chen, M. Johnson, L. Wei, K. Roy, "Estimation of standby leakage
//      power in CMOS circuits considering accurate modeling of transistor
//      stacks", ISLPED 1998. Arbitrary stack depth; the node-voltage
//      back-solve neglects the body effect (gamma' = 0) and uses the hard
//      VDS >> VT closed form — the two simplifications the proposed model
//      removes, which is exactly the gap Fig. 8 displays.
//
//  [9] S. Narendra et al., "Full-chip subthreshold leakage power prediction
//      and reduction techniques for sub-0.18um CMOS", JSSC 2004. Valid only
//      for stacks of one or two devices and assumes VDS >> VT; includes the
//      body effect in the intermediate-node solve.
#pragma once

#include <span>

#include "device/mosfet.hpp"

namespace ptherm::leakage {

/// Chen-98 style OFF current of a chain (widths bottom-first). Supports any
/// depth, like the original.
double chen98_chain_off_current(const device::Technology& tech, device::MosType type,
                                std::span<const double> widths, double length, double temp);

/// Convenience equal-width wrapper.
double chen98_stack_off_current(const device::Technology& tech, device::MosType type,
                                double width, double length, int n, double temp);

/// Narendra-04 style OFF current; throws PreconditionError for n > 2.
double narendra04_stack_off_current(const device::Technology& tech, device::MosType type,
                                    double width, double length, int n, double temp);

}  // namespace ptherm::leakage
