// The paper's §2 contribution: collapsing a chain of serially connected OFF
// transistors into one equivalent transistor whose width captures the stack
// effect, using only closed-form expressions (Eqs. 3-13).
//
// Conventions: equations are written for an nMOS chain whose bottom source
// sits at the low rail and whose top drain sits at VDD; pMOS chains are
// mirrored (the paper notes the analysis is equivalent) so callers simply
// pass MosType::Pmos and the pMOS parameter set is used.
#pragma once

#include <span>
#include <vector>

#include "device/mosfet.hpp"

namespace ptherm::leakage {

/// alpha of Eq. (9): n / (1 + gamma' + 2 sigma) — slope of the large-f
/// asymptote Delta-V = alpha * VT * f.
[[nodiscard]] double collapse_alpha(const device::Technology& tech) noexcept;

/// f(W_up, W_low) of Eq. (9): ln((W_up / W_low) * exp(sigma*VDD/(n*VT))).
/// `temp` sets VT.
[[nodiscard]] double collapse_f(const device::Technology& tech, double w_upper, double w_lower,
                                double temp) noexcept;

/// Case (a), Eq. (7): Delta-V = alpha * VT * f, valid for Delta-V >> VT.
[[nodiscard]] double delta_v_case_a(const device::Technology& tech, double f,
                                    double temp) noexcept;

/// Case (b), Eq. (8): Delta-V = VT * e^f, valid for Delta-V < VT.
[[nodiscard]] double delta_v_case_b(const device::Technology& tech, double f,
                                    double temp) noexcept;

/// Eq. (10): empirical blend covering both cases,
///   Delta-V = VT * [ alpha*ln(1+e^f) + (1-alpha) * e^f/(1+e^f) ].
/// (The published typography of Eq. 10 is corrupted; this reconstruction
/// matches Eq. (7) as f->inf and Eq. (8) as f->-inf, the two limits the paper
/// derives, and is validated against the exact solution — see Fig. 3 bench.)
[[nodiscard]] double delta_v_blend(const device::Technology& tech, double f,
                                   double temp) noexcept;

/// Extension beyond the paper: one guarded refinement of the blend through
/// the exact continuity relation  f = x/alpha + ln(1 - e^-x), x = dV/VT,
/// applied only where that map is contractive (x >~ 1.2) and faded in
/// smoothly. Still closed form — no iteration — and cuts the mid-f error of
/// the pure blend from ~5% to well under 1% (see bench/ablation_collapse).
[[nodiscard]] double delta_v_refined(const device::Technology& tech, double f,
                                     double temp) noexcept;

/// Which Delta-V expression the collapse uses. PaperBlend is Eq. (10) — the
/// published model; the others exist for the ablation study (bench A2).
enum class CollapseVariant { PaperBlend, CaseAOnly, CaseBOnly, Refined };

/// Dispatches on the variant.
[[nodiscard]] double delta_v(const device::Technology& tech, double f, double temp,
                             CollapseVariant variant) noexcept;

/// Full collapse of a chain. `widths` are ordered from the rail (bottom,
/// source of the chain) to the output (top); all devices share length L.
struct CollapseResult {
  /// Equivalent width W<1,N> of Eq. (11).
  double w_eff = 0.0;
  /// Per-device drain-source drops Delta-V_i for the N-1 non-top devices,
  /// bottom first (Eq. 10 applied pairwise during the collapse).
  std::vector<double> drops;
  /// Sum of drops = V_{N-1}, the source potential of the top device (Eq. 12).
  double v_top = 0.0;
};

[[nodiscard]] CollapseResult collapse_chain(const device::Technology& tech,
                                            device::MosType type,
                                            std::span<const double> widths, double temp,
                                            CollapseVariant variant = CollapseVariant::PaperBlend);

/// Eq. (13): OFF current of the collapsed chain at temperature `temp` with
/// optional substrate bias `vb` (reverse body bias lowers leakage).
/// Widths bottom-first, shared channel length `length`.
[[nodiscard]] double chain_off_current(const device::Technology& tech, device::MosType type,
                                       std::span<const double> widths, double length,
                                       double temp, double vb = 0.0,
                                       CollapseVariant variant = CollapseVariant::PaperBlend);

/// Single-number convenience: equal-width stack of `n` devices.
[[nodiscard]] double stack_off_current(const device::Technology& tech, device::MosType type,
                                       double width, double length, int n, double temp,
                                       double vb = 0.0,
                                       CollapseVariant variant = CollapseVariant::PaperBlend);

}  // namespace ptherm::leakage
