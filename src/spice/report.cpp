#include "spice/report.hpp"

#include <sstream>
#include <utility>

namespace ptherm::spice {

std::string SolveReport::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "failed") << " via " << (path.empty() ? "none" : path)
     << ": " << rungs.size() << " rung" << (rungs.size() == 1 ? "" : "s") << ", "
     << ::ptherm::detail::convergence_summary(newton_iterations, "Newton", "worst KCL",
                                              worst_residual, "A",
                                              worst_node.empty() ? "" : "node " + worst_node);
  return os.str();
}

SolveDiagnostics SolveReport::diagnostics(const std::string& solver) const {
  SolveDiagnostics diag;
  diag.solver = solver;
  // The last rung is the one that decided the outcome (final polish on
  // success, the deepest recovery attempt on failure).
  if (!rungs.empty()) {
    std::ostringstream os;
    os << rungs.back().stage << "=" << rungs.back().value;
    diag.stage = os.str();
  }
  diag.iterations = newton_iterations;
  diag.residual = worst_residual;
  diag.worst = worst_node.empty() ? "" : "node " + worst_node;
  return diag;
}

ConvergenceFailure::ConvergenceFailure(const std::string& what, SolveReport report,
                                       const std::string& solver)
    : ConvergenceError(what, report.diagnostics(solver)), report_(std::move(report)) {}

}  // namespace ptherm::spice
