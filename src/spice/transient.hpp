// Fixed-step backward-Euler transient analysis. Initial condition is the DC
// operating point at t = 0 (waveform sources evaluated at 0). Used for
// switching-energy validation of the dynamic power model and for RC sanity
// tests of the solver itself.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::spice {

struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  DcOptions dc;  ///< Newton settings (temperature, tolerances)
};

struct TransientResult {
  std::vector<double> times;
  /// voltages[k][n] = node n voltage at times[k].
  std::vector<std::vector<double>> voltages;
  /// Branch current of each voltage source at every step.
  std::map<std::string, std::vector<double>> vsource_currents;

  [[nodiscard]] std::vector<double> node_waveform(NodeId n) const;
};

/// Runs backward Euler from the DC operating point at t=0 to t_stop.
/// Throws ConvergenceError if a time step cannot be solved.
TransientResult solve_transient(const Circuit& circuit, const TransientOptions& opts);

}  // namespace ptherm::spice
