// Internal shared Newton/MNA assembler used by both the DC and the transient
// solver. Not part of the public API (no installation guarantees); kept in a
// header so the two front ends share one residual definition.
//
// The assembler carries the continuation state the recovery ladder
// (spice/dc.cpp) and the electro-thermal coupling (spice/electrothermal.hpp)
// steer: a global source scale (source-stepping homotopy ramps every
// independent source from 0 to its full value), a uniform temperature
// override (temperature continuation solves cold and ramps to ambient), and
// optional per-MOSFET device temperatures (self-heating: each device is
// evaluated at its own temperature inside the Newton loop).
#pragma once

#include <span>
#include <vector>

#include "numerics/dense.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::spice::detail {

/// Extra state for transient steps; when `active` the assembler stamps
/// backward-Euler capacitor companions and evaluates waveforms at `time`.
struct TransientContext {
  bool active = false;
  double time = 0.0;
  double dt = 0.0;
  /// Node voltages at the previous accepted time point (size = node_count).
  std::vector<double> prev_voltages;
};

/// Worst-KCL-residual audit of an iterate: the node row with the largest
/// absolute residual, its residual [A], and that row's current scale [A].
struct KclAudit {
  NodeId node = 0;
  double residual = 0.0;
  double scale = 0.0;
};

/// Unknown layout: x = [V_1 .. V_{n-1}, I_vsrc_0 .. I_vsrc_{m-1}].
class NewtonCore {
 public:
  NewtonCore(const Circuit& ckt, const DcOptions& opts);

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] int node_unknowns() const noexcept { return num_nodes_ - 1; }

  [[nodiscard]] static double v_of(const std::vector<double>& x, NodeId n) {
    return n == 0 ? 0.0 : x[n - 1];
  }

  // --- continuation state --------------------------------------------------

  /// Scales every independent source value (volts AND amps) by `s` — the
  /// source-stepping homotopy's lambda. 1.0 (the default) is bitwise
  /// transparent.
  void set_source_scale(double s) noexcept { source_scale_ = s; }
  [[nodiscard]] double source_scale() const noexcept { return source_scale_; }

  /// Uniform device temperature override [K] (temperature continuation);
  /// defaults to DcOptions::temp. Cleared by per-device temperatures.
  void set_temperature(double t) noexcept { temp_ = t; }
  [[nodiscard]] double temperature() const noexcept { return temp_; }

  /// Per-MOSFET temperatures [K], indexed like Circuit::mosfets(); empty
  /// restores the uniform temperature. This is the self-heating seam: the
  /// electro-thermal loop writes block temperatures here and the assembler
  /// evaluates each device at its own temperature.
  void set_device_temperatures(std::span<const double> temps);
  void clear_device_temperatures() { device_temps_.clear(); }

  /// Temperature MOSFET `i` is evaluated at under the current settings.
  [[nodiscard]] double device_temperature(std::size_t i) const noexcept {
    return device_temps_.empty() ? temp_ : device_temps_[i];
  }

  // --- assembly / iteration ------------------------------------------------

  /// Assembles KCL residual `f`, per-row current scale, and optionally the
  /// Jacobian, at unknown vector `x` with the given gmin.
  void assemble(const std::vector<double>& x, double gmin, const TransientContext& tr,
                std::vector<double>& f, std::vector<double>& scale,
                numerics::Matrix* jac) const;

  /// Damped Newton at one gmin rung; returns true on convergence and updates
  /// `x` in place. `iterations_used` accumulates. `residual_trace` (optional)
  /// receives the KCL residual infinity norm max |F| [A] of each iterate as
  /// assembled at the top of its iteration — the convergence-trace hook;
  /// recording only APPENDS, the iteration arithmetic is unchanged.
  bool newton(std::vector<double>& x, double gmin, const TransientContext& tr,
              int& iterations_used, std::vector<double>* residual_trace = nullptr) const;

  /// Worst-KCL-residual node at `x` (assembled at gmin = 0, no Jacobian) —
  /// what SolveReport names on exit. Node 0 with zero residual when the
  /// circuit has no node unknowns.
  [[nodiscard]] KclAudit audit(const std::vector<double>& x,
                               const TransientContext& tr) const;

 private:
  const Circuit& ckt_;
  const DcOptions& opts_;
  int num_nodes_;
  int num_v_;
  int size_;
  double source_scale_ = 1.0;
  double temp_;
  std::vector<double> device_temps_;  ///< per-MOSFET [K]; empty = uniform temp_
};

}  // namespace ptherm::spice::detail
