// Internal shared Newton/MNA assembler used by both the DC and the transient
// solver. Not part of the public API (no installation guarantees); kept in a
// header so the two front ends share one residual definition.
#pragma once

#include <vector>

#include "numerics/dense.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"

namespace ptherm::spice::detail {

/// Extra state for transient steps; when `active` the assembler stamps
/// backward-Euler capacitor companions and evaluates waveforms at `time`.
struct TransientContext {
  bool active = false;
  double time = 0.0;
  double dt = 0.0;
  /// Node voltages at the previous accepted time point (size = node_count).
  std::vector<double> prev_voltages;
};

/// Unknown layout: x = [V_1 .. V_{n-1}, I_vsrc_0 .. I_vsrc_{m-1}].
class NewtonCore {
 public:
  NewtonCore(const Circuit& ckt, const DcOptions& opts);

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] int node_unknowns() const noexcept { return num_nodes_ - 1; }

  [[nodiscard]] static double v_of(const std::vector<double>& x, NodeId n) {
    return n == 0 ? 0.0 : x[n - 1];
  }

  /// Assembles KCL residual `f`, per-row current scale, and optionally the
  /// Jacobian, at unknown vector `x` with the given gmin.
  void assemble(const std::vector<double>& x, double gmin, const TransientContext& tr,
                std::vector<double>& f, std::vector<double>& scale,
                numerics::Matrix* jac) const;

  /// Damped Newton at one gmin rung; returns true on convergence and updates
  /// `x` in place. `iterations_used` accumulates.
  bool newton(std::vector<double>& x, double gmin, const TransientContext& tr,
              int& iterations_used) const;

 private:
  const Circuit& ckt_;
  const DcOptions& opts_;
  int num_nodes_;
  int num_v_;
  int size_;
};

}  // namespace ptherm::spice::detail
