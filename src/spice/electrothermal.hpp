// Electro-thermal DC: the concurrent power-thermal idea of the paper applied
// to the SPICE substrate. Each MOSFET maps to a floorplan footprint (a heat
// source on the die); the circuit's operating point sets per-device powers,
// the thermal backend turns powers into per-device temperature rises through
// the influence-apply seam (matrix-free when the backend supports it, dense
// otherwise), and the device temperatures feed straight back into the MOSFET
// evaluation INSIDE the Newton loop via NewtonCore's per-device temperature
// seam. The T <- t_sink + R * P(T) fixed point is iterated with damping as
// an outer loop around the recovery-ladder DC solve, mirroring the
// block-level Picard loop in core/cosim.hpp.
//
// Thermal runaway (R * dP/dT >= 1 at the operating point: leakage grows
// faster with temperature than the die can shed it) is DETECTED and FLAGGED,
// never clamped — the returned temperatures are the real divergent iterates,
// the same policy the cosim layer pins.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "floorplan/floorplan.hpp"
#include "spice/dc.hpp"
#include "thermal/backend.hpp"

namespace ptherm::spice {

/// One MOSFET's thermal footprint: the die rectangle its dissipated power
/// heats and whose centre temperature it is evaluated at.
struct DeviceFootprint {
  std::string device;  ///< MOSFET name in the Circuit
  double cx = 0.0;     ///< footprint centre x [m]
  double cy = 0.0;     ///< footprint centre y [m]
  double w = 0.0;      ///< footprint width [m]
  double l = 0.0;      ///< footprint height [m]
};

/// Maps a MOSFET onto a floorplan block's rectangle.
[[nodiscard]] DeviceFootprint footprint_for(const std::string& device,
                                            const floorplan::Block& block);

struct ElectroThermalDcOptions {
  DcOptions dc;                 ///< inner electrical solve (dc.temp seeds T)
  double t_sink = 300.0;        ///< heat-sink reference temperature [K]
  int max_outer_iterations = 50;
  double temp_tol = 1e-3;       ///< outer fixed-point convergence [K]
  double damping = 0.7;         ///< T-update damping (matches core/cosim)
  /// Runaway flag: any device rise above t_sink beyond this [K] ...
  double runaway_rise_limit = 400.0;
  /// ... or this many consecutive outer iterations of monotone max-T growth.
  int runaway_streak = 10;
};

struct ElectroThermalDcSolution {
  /// Electrical solution at the final device temperatures; its report's
  /// device_temperatures map holds every MOSFET's exit temperature.
  DcSolution dc;
  std::vector<double> device_temperatures;  ///< [K], indexed like footprints
  std::vector<double> device_powers;        ///< [W], indexed like footprints
  int outer_iterations = 0;
  bool converged = false;  ///< outer T fixed point reached temp_tol
  bool runaway = false;    ///< thermal runaway flagged (temperatures NOT clamped)
  double max_temperature = 0.0;  ///< hottest device at exit [K]
};

/// Solves the coupled electro-thermal DC operating point. Devices without a
/// footprint stay at opts.dc.temp. Inner solves reuse one NewtonCore and
/// warm-start from the previous outer iterate; inner non-convergence
/// propagates as ConvergenceFailure carrying the full SolveReport. Outer
/// non-convergence (including runaway) is flagged on the solution, not
/// thrown — the electrical state is still the converged solve at the last
/// iterate's temperatures.
[[nodiscard]] ElectroThermalDcSolution solve_electrothermal_dc(
    const Circuit& circuit, const thermal::SolverBackend& backend,
    std::span<const DeviceFootprint> footprints, const ElectroThermalDcOptions& opts = {});

}  // namespace ptherm::spice
