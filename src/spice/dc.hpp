// DC operating-point solver: damped Newton on the MNA equations with gmin
// continuation. Unknowns are the non-ground node voltages plus one branch
// current per voltage source.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace ptherm::spice {

struct DcOptions {
  double v_abstol = 1e-10;        ///< Newton step convergence [V]
  double i_abstol = 1e-18;        ///< KCL residual floor [A]
  double i_reltol = 1e-6;         ///< KCL residual relative to node current scale
  double max_step = 0.3;          ///< per-iteration voltage step clamp [V]
  double v_limit = 10.0;          ///< hard clamp on node voltages [V]
  int max_iterations = 300;
  double temp = 300.0;            ///< device temperature [K]
  /// gmin continuation ladder; the final entry is removed for a polish solve.
  std::vector<double> gmin_steps = {1e-3, 1e-6, 1e-9, 1e-12};
};

struct DcSolution {
  bool converged = false;
  int iterations = 0;             ///< total Newton iterations over all gmin steps
  std::vector<double> node_voltages;              ///< indexed by NodeId (0 = ground)
  std::map<std::string, double> vsource_currents; ///< current from + through source to -
  std::map<std::string, double> device_currents;  ///< MOSFET drain->source currents

  [[nodiscard]] double voltage(NodeId n) const { return node_voltages.at(n); }
};

/// Solves the DC operating point at `opts.temp`. Waveform sources use their
/// value at t = 0. Throws ConvergenceError when Newton fails on every gmin
/// rung; returns converged = false only if the polish (gmin = 0) step fails
/// after a successful continuation.
DcSolution solve_dc(const Circuit& circuit, const DcOptions& opts = {});

/// Sweeps the named voltage source over `values`, reusing each solution as
/// the next initial guess. Returns one solution per value.
std::vector<DcSolution> dc_sweep(Circuit& circuit, const std::string& source,
                                 const std::vector<double>& values,
                                 const DcOptions& opts = {});

}  // namespace ptherm::spice
