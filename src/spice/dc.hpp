// DC operating-point solver: damped Newton on the MNA equations with an
// escalating convergence-recovery ladder. Unknowns are the non-ground node
// voltages plus one branch current per voltage source.
//
// The ladder (spice/report.hpp records which stages ran):
//  1. gmin continuation — the classic descending-gmin ladder.
//  2. Source-stepping homotopy — every independent source ramped from 0 to
//     its full value with adaptive step halving; at lambda = 0 the circuit
//     is trivially solvable and each step warm-starts from the last.
//  3. Temperature continuation — solve cold (devices nearly off, weak
//     exponentials), then ramp the device temperatures to their targets.
// Each stage only runs when the previous one failed, so circuits the plain
// ladder handles see bitwise-identical arithmetic to the pre-ladder solver.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/report.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::spice {

/// Convergence-recovery ladder settings. Disabling both stages reproduces
/// the naive gmin-only Newton (what the fault-injection tests use to show a
/// stage actually rescued a circuit).
struct DcRecoveryOptions {
  bool source_stepping = true;  ///< stage 2: ramp supplies from 0
  bool temp_stepping = true;    ///< stage 3: solve cold, ramp to ambient
  int source_steps = 10;        ///< initial source-ramp resolution (d-lambda = 1/steps)
  int max_source_substeps = 64; ///< finest adaptive lambda subdivision before giving up
  double temp_cold = 250.0;     ///< temperature-continuation start [K]
  int temp_steps = 5;           ///< ramp points from temp_cold to the target
};

struct DcOptions {
  double v_abstol = 1e-10;        ///< Newton step convergence [V]
  double i_abstol = 1e-18;        ///< KCL residual floor [A]
  double i_reltol = 1e-6;         ///< KCL residual relative to node current scale
  double max_step = 0.3;          ///< per-iteration voltage step clamp [V]
  double v_limit = 10.0;          ///< hard clamp on node voltages [V]
  int max_iterations = 300;
  double temp = 300.0;            ///< device temperature [K]
  /// gmin continuation ladder; the final entry is removed for a polish solve.
  std::vector<double> gmin_steps = {1e-3, 1e-6, 1e-9, 1e-12};
  DcRecoveryOptions recovery;
  /// Convergence-trace recording (telemetry/telemetry.hpp). With
  /// trace.convergence every RungReport carries the per-iteration Newton
  /// residual curve (RungReport::residuals). Recording only APPENDS — the
  /// solve arithmetic is bitwise unchanged.
  telemetry::TraceOptions trace;
};

struct DcSolution {
  bool converged = false;
  int iterations = 0;             ///< total Newton iterations over all rungs
  std::vector<double> node_voltages;              ///< indexed by NodeId (0 = ground)
  std::map<std::string, double> vsource_currents; ///< current from + through source to -
  std::map<std::string, double> device_currents;  ///< MOSFET drain->source currents
  /// Structured solve diagnostics: rungs run, homotopy path taken, worst
  /// KCL node by name, device temperatures at exit (spice/report.hpp).
  SolveReport report;

  [[nodiscard]] double voltage(NodeId n) const { return node_voltages.at(n); }
};

/// Solves the DC operating point at `opts.temp`. Waveform sources use their
/// value at t = 0. Throws ConvergenceFailure (a ConvergenceError carrying
/// the full SolveReport) when every ladder stage fails; returns converged =
/// false only if the polish (gmin = 0) step fails after a successful
/// continuation.
DcSolution solve_dc(const Circuit& circuit, const DcOptions& opts = {});

/// Sweeps the named voltage source over `values`, reusing each solution as
/// the next initial guess. A point whose warm-started solve fails is retried
/// once from a cold start (fresh recovery ladder) before the sweep fails;
/// the error then names the sweep value that failed. Returns one solution
/// per value.
std::vector<DcSolution> dc_sweep(Circuit& circuit, const std::string& source,
                                 const std::vector<double>& values,
                                 const DcOptions& opts = {});

namespace detail {
class NewtonCore;

/// The shared solve core: runs the recovery ladder on a caller-configured
/// NewtonCore (source scale / temperatures as set), optionally warm-started
/// from `initial` (size() unknowns; nullptr = cold start from zero). The
/// electro-thermal outer loop (spice/electrothermal.hpp) and dc_sweep call
/// this to reuse one core across solves.
DcSolution solve_dc_core(const Circuit& circuit, NewtonCore& core, const DcOptions& opts,
                         const std::vector<double>* initial);
}  // namespace detail

}  // namespace ptherm::spice
