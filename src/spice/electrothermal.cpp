#include "spice/electrothermal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "spice/newton_core.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::spice {

DeviceFootprint footprint_for(const std::string& device, const floorplan::Block& block) {
  return {device, block.rect.cx(), block.rect.cy(), block.rect.w, block.rect.h};
}

namespace {

/// Packs a DcSolution back into the unknown-vector layout, so the next outer
/// iteration's inner solve warm-starts from the previous operating point.
std::vector<double> pack_unknowns(const Circuit& circuit, const DcSolution& sol) {
  const int nn = circuit.node_count() - 1;
  std::vector<double> x(static_cast<std::size_t>(nn + circuit.vsources().size()), 0.0);
  for (int n = 1; n < circuit.node_count(); ++n) x[n - 1] = sol.node_voltages[n];
  const auto& vsrcs = circuit.vsources();
  for (std::size_t j = 0; j < vsrcs.size(); ++j) {
    x[nn + static_cast<int>(j)] = sol.vsource_currents.at(vsrcs[j].name);
  }
  return x;
}

}  // namespace

ElectroThermalDcSolution solve_electrothermal_dc(const Circuit& circuit,
                                                 const thermal::SolverBackend& backend,
                                                 std::span<const DeviceFootprint> footprints,
                                                 const ElectroThermalDcOptions& opts) {
  const std::size_t n = footprints.size();
  PTHERM_REQUIRE(n > 0, "solve_electrothermal_dc: no device footprints");
  TELEMETRY_SPAN("spice/electrothermal_dc");

  // Footprint -> MOSFET index, heat sources, and coincident sample points.
  std::vector<std::size_t> mos_index(n);
  std::vector<thermal::HeatSource> sources(n);
  std::vector<thermal::SurfaceSample> samples(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto& fp = footprints[k];
    mos_index[k] = circuit.mosfet_index(fp.device);
    sources[k] = {fp.cx, fp.cy, fp.w, fp.l, 0.0};
    samples[k] = {fp.cx, fp.cy};
  }
  const auto influence = thermal::resolve_influence_apply(backend, sources, samples);

  detail::NewtonCore core(circuit, opts.dc);
  const std::size_t n_mos = circuit.mosfets().size();
  // Full per-MOSFET temperature vector; devices without a footprint stay at
  // the nominal solve temperature.
  std::vector<double> all_temps(n_mos, opts.dc.temp);

  ElectroThermalDcSolution out;
  out.device_temperatures.assign(n, opts.dc.temp);
  out.device_powers.assign(n, 0.0);
  std::vector<double> rises(n, 0.0);
  std::vector<double> warm;

  double prev_delta = 0.0;
  int growth_streak = 0;

  for (int it = 0; it < opts.max_outer_iterations; ++it) {
    for (std::size_t k = 0; k < n; ++k) {
      all_temps[mos_index[k]] = out.device_temperatures[k];
    }
    core.set_device_temperatures(all_temps);
    out.dc = detail::solve_dc_core(circuit, core, opts.dc, warm.empty() ? nullptr : &warm);
    warm = pack_unknowns(circuit, out.dc);
    ++out.outer_iterations;

    // P(T): each device's dissipation at its own temperature.
    const auto& mosfets = circuit.mosfets();
    for (std::size_t k = 0; k < n; ++k) {
      const auto& m = mosfets[mos_index[k]];
      out.device_powers[k] = m.model.power(
          out.dc.voltage(m.gate), out.dc.voltage(m.drain), out.dc.voltage(m.source),
          out.dc.voltage(m.bulk), out.device_temperatures[k]);
    }

    // T <- t_sink + R * P, damped.
    influence->apply(out.device_powers, rises);
    double max_dt = 0.0;
    double max_t = opts.t_sink;
    for (std::size_t k = 0; k < n; ++k) {
      const double target = opts.t_sink + rises[k];
      const double delta = opts.damping * (target - out.device_temperatures[k]);
      out.device_temperatures[k] += delta;
      max_dt = std::max(max_dt, std::abs(delta));
      max_t = std::max(max_t, out.device_temperatures[k]);
    }
    out.max_temperature = max_t;

    // Runaway detection — flag and stop, never clamp: the temperatures we
    // return are the genuine divergent iterates. A damped contraction has
    // shrinking updates, so a monotonically GROWING update over several
    // iterations is the fixed point diverging (same criterion as core/cosim);
    // the hard rise limit catches fast blow-ups before the streak fills.
    if (max_t - opts.t_sink > opts.runaway_rise_limit) {
      out.runaway = true;
      break;
    }
    if (max_dt > prev_delta && it > 0) {
      if (++growth_streak >= opts.runaway_streak) {
        out.runaway = true;
        break;
      }
    } else {
      growth_streak = 0;
    }
    prev_delta = max_dt;

    if (max_dt < opts.temp_tol) {
      out.converged = true;
      break;
    }
  }

  // Re-solve the electrical state at the exit temperatures so the returned
  // voltages, powers, and report are mutually consistent. Not on runaway:
  // the exit temperatures are divergent iterates (deliberately unclamped),
  // and the electrical state that matters is the last converged solve.
  if (out.runaway) return out;
  for (std::size_t k = 0; k < n; ++k) {
    all_temps[mos_index[k]] = out.device_temperatures[k];
  }
  core.set_device_temperatures(all_temps);
  out.dc = detail::solve_dc_core(circuit, core, opts.dc, warm.empty() ? nullptr : &warm);
  const auto& mosfets = circuit.mosfets();
  for (std::size_t k = 0; k < n; ++k) {
    const auto& m = mosfets[mos_index[k]];
    out.device_powers[k] = m.model.power(
        out.dc.voltage(m.gate), out.dc.voltage(m.drain), out.dc.voltage(m.source),
        out.dc.voltage(m.bulk), out.device_temperatures[k]);
  }
  return out;
}

}  // namespace ptherm::spice
