#include "spice/dc.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "spice/newton_core.hpp"
#include "telemetry/telemetry.hpp"

namespace ptherm::spice {

namespace {

using detail::NewtonCore;
using detail::TransientContext;

void record_rung(SolveReport& report, const char* stage, double value, int iterations,
                 bool converged, std::vector<double> residuals = {}) {
  report.rungs.push_back({stage, value, iterations, converged, std::move(residuals)});
  report.newton_iterations += iterations;
}

/// Trace destination for one newton() call: a pointer into `storage` when
/// tracing is on (record_rung then moves the curve into the rung), nullptr —
/// the exact pre-trace call — otherwise.
std::vector<double>* trace_dest(const DcOptions& opts, std::vector<double>& storage) {
  storage.clear();
  return opts.trace.convergence ? &storage : nullptr;
}

/// Stage 1: the classic descending-gmin ladder from the current iterate.
/// Keeps the best iterate in `x`; true when at least one rung converged.
/// When `gmin_held` is given, it receives the smallest gmin that converged —
/// the regularization level the solver can actually hold on this circuit.
bool run_gmin_ladder(NewtonCore& core, const DcOptions& opts, const TransientContext& tr,
                     std::vector<double>& x, SolveReport& report,
                     double* gmin_held = nullptr) {
  TELEMETRY_SPAN("spice/gmin_ladder");
  bool any_rung = false;
  std::vector<double> last_failed;
  std::vector<double> res;
  for (double gmin : opts.gmin_steps) {
    std::vector<double> trial = x;
    int iters = 0;
    const bool converged = core.newton(trial, gmin, tr, iters, trace_dest(opts, res));
    record_rung(report, "gmin", gmin, iters, converged, std::move(res));
    if (converged) {
      x = trial;
      any_rung = true;
      if (gmin_held) *gmin_held = gmin;
    } else {
      last_failed = std::move(trial);
    }
  }
  // Total failure: hand the caller the diverged iterate rather than the
  // untouched start point, so the exit audit names where KCL actually broke
  // instead of reporting a zero residual at x = 0.
  if (!any_rung && !last_failed.empty()) x = std::move(last_failed);
  return any_rung;
}

/// Stage 2: source-stepping homotopy. All independent sources ramp together
/// from 0 (where x = 0 solves the gmin-regularized circuit trivially) to
/// full value, each step warm-started from the last, with adaptive step
/// halving down to 1/max_source_substeps. Always leaves the core at scale 1.
bool run_source_stepping(NewtonCore& core, const DcOptions& opts, const TransientContext& tr,
                         std::vector<double>& x, SolveReport& report) {
  TELEMETRY_SPAN("spice/source_stepping");
  const double gmin = opts.gmin_steps.empty() ? 0.0 : opts.gmin_steps.back();
  const int steps = std::max(1, opts.recovery.source_steps);
  const double dl0 = 1.0 / steps;
  const double dl_min =
      1.0 / std::max(steps, std::max(1, opts.recovery.max_source_substeps));

  std::fill(x.begin(), x.end(), 0.0);
  double lambda = 0.0;
  double dl = dl0;
  bool ok = true;
  std::vector<double> res;
  while (lambda < 1.0) {
    const double next = std::min(1.0, lambda + dl);
    core.set_source_scale(next);
    std::vector<double> trial = x;
    int iters = 0;
    const bool converged = core.newton(trial, gmin, tr, iters, trace_dest(opts, res));
    record_rung(report, "source", next, iters, converged, std::move(res));
    ++report.homotopy_steps;
    if (converged) {
      x = trial;
      lambda = next;
      dl = std::min(dl0, 2.0 * dl);
    } else {
      dl *= 0.5;
      // Strict inequality with slack: dl reaches dl_min exactly when
      // max_source_substeps is a power-of-two multiple of source_steps.
      if (dl < 0.999 * dl_min) {
        ok = false;
        break;
      }
    }
  }
  core.set_source_scale(1.0);
  return ok;
}

/// Stage 3: temperature continuation. Solve with every device cold
/// (temp_cold: exponentials weak, the circuit nearly linear), then ramp the
/// device temperatures linearly to their targets. Pointless without
/// temperature-dependent devices. Always leaves the core at the target
/// temperatures.
bool run_temp_stepping(const Circuit& circuit, NewtonCore& core, const DcOptions& opts,
                       const TransientContext& tr, std::vector<double>& x,
                       SolveReport& report) {
  const std::size_t n_mos = circuit.mosfets().size();
  if (n_mos == 0) return false;  // nothing in the circuit depends on temperature
  TELEMETRY_SPAN("spice/temp_stepping");

  std::vector<double> targets(n_mos);
  double t_max = opts.recovery.temp_cold;
  for (std::size_t d = 0; d < n_mos; ++d) {
    targets[d] = core.device_temperature(d);
    t_max = std::max(t_max, targets[d]);
  }
  const double cold = opts.recovery.temp_cold;
  const int steps = std::max(1, opts.recovery.temp_steps);

  const auto restore = [&] { core.set_device_temperatures(targets); };

  // Cold solve from scratch, with the full gmin ladder for robustness. The
  // ramp then runs at the smallest gmin the cold ladder actually HELD, not
  // blindly at gmin_steps.back(): a rung the solver cannot hold cold will
  // not suddenly hold mid-ramp, and a slightly regularized path that tracks
  // to the target temperature beats an unregularized one that diverges.
  std::fill(x.begin(), x.end(), 0.0);
  std::vector<double> temps(n_mos, cold);
  core.set_device_temperatures(temps);
  double gmin = opts.gmin_steps.empty() ? 0.0 : opts.gmin_steps.back();
  if (!run_gmin_ladder(core, opts, tr, x, report, &gmin)) {
    restore();
    return false;
  }

  std::vector<double> res;
  for (int s = 1; s <= steps; ++s) {
    const double lambda = static_cast<double>(s) / steps;
    for (std::size_t d = 0; d < n_mos; ++d) {
      temps[d] = cold + lambda * (targets[d] - cold);
    }
    core.set_device_temperatures(temps);
    std::vector<double> trial = x;
    int iters = 0;
    const bool converged = core.newton(trial, gmin, tr, iters, trace_dest(opts, res));
    record_rung(report, "temp", cold + lambda * (t_max - cold), iters, converged,
                std::move(res));
    ++report.homotopy_steps;
    if (!converged) {
      restore();
      return false;
    }
    x = trial;
  }
  restore();

  // Descend the remaining gmin rungs warm-started at the target temperature;
  // failures here are tolerated (the iterate from the ramp already solves the
  // circuit at `gmin`, and the final gmin=0 polish runs either way).
  for (double g : opts.gmin_steps) {
    if (g >= gmin) continue;
    std::vector<double> trial = x;
    int iters = 0;
    const bool converged = core.newton(trial, g, tr, iters, trace_dest(opts, res));
    record_rung(report, "gmin", g, iters, converged, std::move(res));
    if (converged) x = trial;
  }
  return true;
}

/// Fills the exit-audit fields: worst KCL node by name plus the device
/// temperatures the final assembly used.
void audit_into_report(const Circuit& circuit, const NewtonCore& core,
                       const TransientContext& tr, const std::vector<double>& x,
                       SolveReport& report) {
  const auto worst = core.audit(x, tr);
  report.worst_node = circuit.node_name(worst.node);
  report.worst_residual = worst.residual;
  report.worst_scale = worst.scale;
  const auto& mosfets = circuit.mosfets();
  for (std::size_t d = 0; d < mosfets.size(); ++d) {
    report.device_temperatures[mosfets[d].name] = core.device_temperature(d);
  }
}

DcSolution extract_solution(const Circuit& circuit, const NewtonCore& core,
                            const std::vector<double>& x, SolveReport report) {
  DcSolution sol;
  const int nn = circuit.node_count() - 1;
  sol.node_voltages.assign(static_cast<std::size_t>(circuit.node_count()), 0.0);
  for (int n = 1; n < circuit.node_count(); ++n) sol.node_voltages[n] = x[n - 1];
  const auto& vsrcs = circuit.vsources();
  for (std::size_t j = 0; j < vsrcs.size(); ++j) {
    sol.vsource_currents[vsrcs[j].name] = x[nn + static_cast<int>(j)];
  }
  auto v_at = [&](NodeId n) { return sol.node_voltages[n]; };
  const auto& mosfets = circuit.mosfets();
  for (std::size_t d = 0; d < mosfets.size(); ++d) {
    const auto& m = mosfets[d];
    sol.device_currents[m.name] = m.model.ids(v_at(m.gate), v_at(m.drain), v_at(m.source),
                                              v_at(m.bulk), core.device_temperature(d));
  }
  for (const auto& r : circuit.resistors()) {
    sol.device_currents[r.name] = (v_at(r.a) - v_at(r.b)) / r.ohms;
  }
  sol.converged = true;
  sol.iterations = report.newton_iterations;
  sol.report = std::move(report);
  return sol;
}

}  // namespace

namespace detail {

DcSolution solve_dc_core(const Circuit& circuit, NewtonCore& core, const DcOptions& opts,
                         const std::vector<double>* initial) {
  PTHERM_REQUIRE(circuit.node_count() > 1, "solve_dc: circuit has no nodes");
  TELEMETRY_SPAN("spice/solve_dc");
  TransientContext no_transient;
  std::vector<double> x(static_cast<std::size_t>(core.size()), 0.0);
  if (initial) {
    PTHERM_REQUIRE(initial->size() == x.size(),
                   "solve_dc: warm-start vector has the wrong size");
    x = *initial;
  }

  SolveReport report;
  report.path = "gmin";
  bool ok = run_gmin_ladder(core, opts, no_transient, x, report);
  if (!ok && opts.recovery.source_stepping) {
    report.path += ",source";
    ok = run_source_stepping(core, opts, no_transient, x, report);
  }
  if (!ok && opts.recovery.temp_stepping) {
    report.path += ",temp";
    ok = run_temp_stepping(circuit, core, opts, no_transient, x, report);
  }
  if (!ok) {
    audit_into_report(circuit, core, no_transient, x, report);
    throw ConvergenceFailure("solve_dc: Newton failed on every gmin rung and recovery stage",
                             std::move(report));
  }

  // Polish without gmin; on failure keep the smallest-gmin solution (a node
  // with no DC path to ground legitimately needs gmin).
  {
    std::vector<double> trial = x;
    int iters = 0;
    std::vector<double> res;
    const bool converged = core.newton(trial, 0.0, no_transient, iters, trace_dest(opts, res));
    record_rung(report, "polish", 0.0, iters, converged, std::move(res));
    if (converged) x = trial;
  }
  report.converged = true;
  audit_into_report(circuit, core, no_transient, x, report);
  return extract_solution(circuit, core, x, std::move(report));
}

}  // namespace detail

DcSolution solve_dc(const Circuit& circuit, const DcOptions& opts) {
  detail::NewtonCore core(circuit, opts);
  return detail::solve_dc_core(circuit, core, opts, nullptr);
}

std::vector<DcSolution> dc_sweep(Circuit& circuit, const std::string& source,
                                 const std::vector<double>& values, const DcOptions& opts) {
  std::vector<DcSolution> out;
  out.reserve(values.size());
  detail::NewtonCore core(circuit, opts);
  const int nn = circuit.node_count() - 1;
  std::vector<double> warm;
  for (std::size_t k = 0; k < values.size(); ++k) {
    circuit.set_vsource_value(source, values[k]);
    try {
      out.push_back(
          detail::solve_dc_core(circuit, core, opts, warm.empty() ? nullptr : &warm));
    } catch (const ConvergenceFailure&) {
      // The warm start can strand the solve on a vanished branch (hysteresis
      // sweeps). Retry this point once from a cold start with a fresh
      // recovery ladder before declaring the sweep failed.
      try {
        out.push_back(detail::solve_dc_core(circuit, core, opts, nullptr));
        out.back().report.cold_restart = true;
      } catch (const ConvergenceFailure& e) {
        std::ostringstream os;
        os << "dc_sweep: point " << k << " (" << source << " = " << values[k]
           << " V) failed after a cold restart";
        throw ConvergenceFailure(os.str(), e.report());
      }
    }
    const DcSolution& sol = out.back();
    warm.assign(static_cast<std::size_t>(core.size()), 0.0);
    for (int n = 1; n < circuit.node_count(); ++n) warm[n - 1] = sol.node_voltages[n];
    const auto& vsrcs = circuit.vsources();
    for (std::size_t j = 0; j < vsrcs.size(); ++j) {
      warm[nn + static_cast<int>(j)] = sol.vsource_currents.at(vsrcs[j].name);
    }
  }
  return out;
}

}  // namespace ptherm::spice
