#include "spice/dc.hpp"

#include "common/error.hpp"
#include "spice/newton_core.hpp"

namespace ptherm::spice {

DcSolution solve_dc(const Circuit& circuit, const DcOptions& opts) {
  PTHERM_REQUIRE(circuit.node_count() > 1, "solve_dc: circuit has no nodes");
  detail::NewtonCore core(circuit, opts);
  detail::TransientContext no_transient;
  std::vector<double> x(static_cast<std::size_t>(core.size()), 0.0);

  DcSolution sol;
  bool any_rung = false;
  for (double gmin : opts.gmin_steps) {
    std::vector<double> trial = x;
    if (core.newton(trial, gmin, no_transient, sol.iterations)) {
      x = trial;
      any_rung = true;
    }
  }
  if (!any_rung) {
    throw ConvergenceError("solve_dc: Newton failed on every gmin rung");
  }
  // Polish without gmin; on failure keep the smallest-gmin solution (a node
  // with no DC path to ground legitimately needs gmin).
  {
    std::vector<double> trial = x;
    int polish_iters = 0;
    if (core.newton(trial, 0.0, no_transient, polish_iters)) {
      x = trial;
      sol.iterations += polish_iters;
    }
  }
  sol.converged = true;

  const int nn = circuit.node_count() - 1;
  sol.node_voltages.assign(static_cast<std::size_t>(circuit.node_count()), 0.0);
  for (int n = 1; n < circuit.node_count(); ++n) sol.node_voltages[n] = x[n - 1];
  const auto& vsrcs = circuit.vsources();
  for (std::size_t j = 0; j < vsrcs.size(); ++j) {
    sol.vsource_currents[vsrcs[j].name] = x[nn + static_cast<int>(j)];
  }
  auto v_at = [&](NodeId n) { return sol.node_voltages[n]; };
  for (const auto& m : circuit.mosfets()) {
    sol.device_currents[m.name] =
        m.model.ids(v_at(m.gate), v_at(m.drain), v_at(m.source), v_at(m.bulk), opts.temp);
  }
  for (const auto& r : circuit.resistors()) {
    sol.device_currents[r.name] = (v_at(r.a) - v_at(r.b)) / r.ohms;
  }
  return sol;
}

std::vector<DcSolution> dc_sweep(Circuit& circuit, const std::string& source,
                                 const std::vector<double>& values, const DcOptions& opts) {
  std::vector<DcSolution> out;
  out.reserve(values.size());
  for (double v : values) {
    circuit.set_vsource_value(source, v);
    out.push_back(solve_dc(circuit, opts));
  }
  return out;
}

}  // namespace ptherm::spice
