// Structured solve diagnostics for the MNA Newton stack. Every DC solve —
// converged or not — produces a SolveReport: which continuation rungs ran
// (gmin ladder, source-stepping homotopy, temperature continuation), how
// many Newton iterations each used, the worst-KCL-residual node *by name*
// at exit, and the per-device temperatures the final assembly saw. A failed
// solve throws ConvergenceFailure carrying the same report, so every
// non-convergence is auditable instead of a bare "did not converge" string.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ptherm::spice {

/// One Newton run at fixed continuation parameters — a gmin rung, one
/// source-stepping scale, one temperature-continuation point, or the final
/// gmin = 0 polish.
struct RungReport {
  std::string stage;      ///< "gmin", "source", "temp", or "polish"
  double value = 0.0;     ///< gmin [S] / source scale [0,1] / temperature [K]
  int iterations = 0;     ///< Newton iterations this rung used
  bool converged = false; ///< whether this rung's Newton converged
  /// With DcOptions::trace.convergence: the KCL residual infinity norm
  /// max |F| [A] of each Newton iterate in this rung (size == iterations).
  /// Empty when tracing is off.
  std::vector<double> residuals;
};

/// Exit record of one DC solve (attached to DcSolution and to
/// ConvergenceFailure).
struct SolveReport {
  bool converged = false;
  /// Recovery stages that ran, in order, comma-joined: "gmin" when the plain
  /// ladder sufficed, "gmin,source" when source stepping rescued the solve,
  /// "gmin,source,temp" when it took temperature continuation.
  std::string path;
  std::vector<RungReport> rungs;
  int newton_iterations = 0;  ///< total Newton iterations over all rungs
  int homotopy_steps = 0;     ///< rungs run by the recovery stages (source + temp)
  /// True when a dc_sweep point only converged after discarding the warm
  /// start and restarting cold (hysteresis sweeps stranding the iterate on a
  /// vanished branch).
  bool cold_restart = false;
  /// KCL audit at the exit point (gmin = 0): the node whose residual is
  /// largest, by name, with the residual [A] and that row's current scale
  /// [A] for judging severity.
  std::string worst_node;
  double worst_residual = 0.0;
  double worst_scale = 0.0;
  /// Temperature each MOSFET was evaluated at in the final assembly [K] —
  /// uniform DcOptions::temp for plain solves, per-device for self-heating
  /// solves (spice/electrothermal.hpp).
  std::map<std::string, double> device_temperatures;

  /// One-line summary ("converged via gmin,source: 6 rungs, 41 Newton
  /// iterations, worst KCL 3.1e-13 A at node out").
  [[nodiscard]] std::string summary() const;

  /// Projection onto the library-wide diagnostics record (common/).
  [[nodiscard]] SolveDiagnostics diagnostics(const std::string& solver) const;
};

/// Thrown when the whole recovery ladder fails; carries the full report of
/// the attempt (rungs tried, worst node at the best iterate reached).
class ConvergenceFailure : public ConvergenceError {
 public:
  /// `solver` tags the structured diagnostics with the throwing entry point
  /// ("solve_dc", "solve_transient").
  ConvergenceFailure(const std::string& what, SolveReport report,
                     const std::string& solver = "solve_dc");

  [[nodiscard]] const SolveReport& report() const noexcept { return report_; }

 private:
  SolveReport report_;
};

}  // namespace ptherm::spice
