// SPICE-deck export: writes a Circuit as a standard .sp netlist (elements,
// a .model card per MOS polarity with the Eq. (1)/(2)-equivalent LEVEL=1-ish
// parameters, and a .op card) so any result produced with the built-in MNA
// solver can be re-checked in an external simulator.
#pragma once

#include <iosfwd>
#include <string>

#include "spice/circuit.hpp"

namespace ptherm::spice {

struct ExportOptions {
  std::string title = "ptherm export";
  double temp = 300.0;  ///< analysis temperature [K], written as .temp in C
};

/// Writes the deck to `os`. Node 0 is ground; named nodes keep their names,
/// anonymous ones get n<id>. MOSFETs reference .model cards NMOS_PT/PMOS_PT
/// carrying VTO/KP/LAMBDA/GAMMA-equivalent values from the device's
/// technology (subthreshold parameters are emitted as comments — external
/// level-1 models have no such knobs, which is exactly why Fig. 8 needed a
/// BSIM deck; the card is for topology-level cross-checks).
void export_deck(const Circuit& circuit, std::ostream& os, const ExportOptions& opts = {});

/// Convenience: export to a file; returns false if it cannot be opened.
bool export_deck_file(const Circuit& circuit, const std::string& path,
                      const ExportOptions& opts = {});

}  // namespace ptherm::spice
