#include "spice/newton_core.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::spice::detail {

NewtonCore::NewtonCore(const Circuit& ckt, const DcOptions& opts)
    : ckt_(ckt),
      opts_(opts),
      num_nodes_(ckt.node_count()),
      num_v_(static_cast<int>(ckt.vsources().size())),
      size_(num_nodes_ - 1 + num_v_),
      temp_(opts.temp) {}

void NewtonCore::set_device_temperatures(std::span<const double> temps) {
  PTHERM_REQUIRE(temps.empty() || temps.size() == ckt_.mosfets().size(),
                 "set_device_temperatures: need one temperature per MOSFET (or none)");
  device_temps_.assign(temps.begin(), temps.end());
}

void NewtonCore::assemble(const std::vector<double>& x, double gmin,
                          const TransientContext& tr, std::vector<double>& f,
                          std::vector<double>& scale, numerics::Matrix* jac) const {
  f.assign(static_cast<std::size_t>(size_), 0.0);
  scale.assign(static_cast<std::size_t>(size_), 0.0);
  if (jac) jac->set_zero();

  auto add_current = [&](NodeId node, double current) {
    if (node == 0) return;
    f[node - 1] += current;
    scale[node - 1] += std::abs(current);
  };
  auto add_jac = [&](NodeId row_node, NodeId col_node, double g) {
    if (!jac || row_node == 0 || col_node == 0) return;
    (*jac)(row_node - 1, col_node - 1) += g;
  };

  for (const auto& r : ckt_.resistors()) {
    const double g = 1.0 / r.ohms;
    const double i = (v_of(x, r.a) - v_of(x, r.b)) * g;
    add_current(r.a, i);
    add_current(r.b, -i);
    add_jac(r.a, r.a, g);
    add_jac(r.a, r.b, -g);
    add_jac(r.b, r.a, -g);
    add_jac(r.b, r.b, g);
  }

  if (tr.active) {
    // Backward-Euler companion: i = C/dt * (v_ab - v_ab_prev).
    for (const auto& c : ckt_.capacitors()) {
      const double geq = c.farads / tr.dt;
      const double v_ab = v_of(x, c.a) - v_of(x, c.b);
      const double v_prev = tr.prev_voltages[c.a] - tr.prev_voltages[c.b];
      const double i = geq * (v_ab - v_prev);
      add_current(c.a, i);
      add_current(c.b, -i);
      add_jac(c.a, c.a, geq);
      add_jac(c.a, c.b, -geq);
      add_jac(c.b, c.a, -geq);
      add_jac(c.b, c.b, geq);
    }
  }

  for (const auto& s : ckt_.isources()) {
    const double amps = s.amps * source_scale_;
    add_current(s.from, amps);
    add_current(s.to, -amps);
  }

  const auto& vsrcs = ckt_.vsources();
  for (int j = 0; j < num_v_; ++j) {
    const auto& v = vsrcs[j];
    const int row = num_nodes_ - 1 + j;
    const double branch_i = x[row];
    add_current(v.plus, branch_i);
    add_current(v.minus, -branch_i);
    const double value =
        (v.waveform ? (*v.waveform)(tr.active ? tr.time : 0.0) : v.volts) * source_scale_;
    f[row] = v_of(x, v.plus) - v_of(x, v.minus) - value;
    scale[row] = std::max(1.0, std::abs(value));
    if (jac) {
      if (v.plus != 0) {
        (*jac)(v.plus - 1, row) += 1.0;
        (*jac)(row, v.plus - 1) += 1.0;
      }
      if (v.minus != 0) {
        (*jac)(v.minus - 1, row) -= 1.0;
        (*jac)(row, v.minus - 1) -= 1.0;
      }
    }
  }

  const auto& mosfets = ckt_.mosfets();
  for (std::size_t d = 0; d < mosfets.size(); ++d) {
    const auto& m = mosfets[d];
    const double temp = device_temperature(d);
    const double vd = v_of(x, m.drain);
    const double vg = v_of(x, m.gate);
    const double vs = v_of(x, m.source);
    const double vb = v_of(x, m.bulk);
    const double ids = m.model.ids(vg, vd, vs, vb, temp);
    add_current(m.drain, ids);
    add_current(m.source, -ids);
    if (jac) {
      const double h = 1e-6;  // central differences on each terminal
      const NodeId terms[4] = {m.drain, m.gate, m.source, m.bulk};
      for (int t = 0; t < 4; ++t) {
        if (terms[t] == 0) continue;
        double vp[4] = {vd, vg, vs, vb};
        double vm[4] = {vd, vg, vs, vb};
        vp[t] += h;
        vm[t] -= h;
        const double ip = m.model.ids(vp[1], vp[0], vp[2], vp[3], temp);
        const double im = m.model.ids(vm[1], vm[0], vm[2], vm[3], temp);
        const double g = (ip - im) / (2.0 * h);
        add_jac(m.drain, terms[t], g);
        add_jac(m.source, terms[t], -g);
      }
    }
  }

  // gmin to ground keeps floating subnets solvable.
  for (int n = 1; n < num_nodes_; ++n) {
    f[n - 1] += gmin * x[n - 1];
    if (jac) (*jac)(n - 1, n - 1) += gmin;
  }
}

bool NewtonCore::newton(std::vector<double>& x, double gmin, const TransientContext& tr,
                        int& iterations_used, std::vector<double>* residual_trace) const {
  std::vector<double> f, scale;
  numerics::Matrix jac(static_cast<std::size_t>(size_), static_cast<std::size_t>(size_));
  const int nn = node_unknowns();
  for (int it = 0; it < opts_.max_iterations; ++it) {
    assemble(x, gmin, tr, f, scale, &jac);
    ++iterations_used;
    if (residual_trace) {
      double max_f = 0.0;
      for (const double fi : f) max_f = std::max(max_f, std::abs(fi));
      residual_trace->push_back(max_f);
    }

    std::vector<double> rhs(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) rhs[i] = -f[i];
    std::vector<double> dx;
    try {
      dx = numerics::solve_dense(jac, rhs);
    } catch (const Error&) {
      return false;  // singular at this rung; the caller decides what to do
    }

    double max_dv = 0.0;
    for (int i = 0; i < nn; ++i) {
      const double step = std::clamp(dx[i], -opts_.max_step, opts_.max_step);
      x[i] = std::clamp(x[i] + step, -opts_.v_limit, opts_.v_limit);
      max_dv = std::max(max_dv, std::abs(step));
    }
    for (int i = nn; i < size_; ++i) x[i] += dx[i];

    if (max_dv < opts_.v_abstol) {
      assemble(x, gmin, tr, f, scale, nullptr);
      bool ok = true;
      for (int i = 0; i < nn; ++i) {
        if (std::abs(f[i]) > opts_.i_reltol * scale[i] + opts_.i_abstol + gmin * opts_.v_limit) {
          ok = false;
          break;
        }
      }
      for (int i = nn; i < size_; ++i) {
        if (std::abs(f[i]) > 1e-9 * scale[i]) ok = false;
      }
      if (ok) return true;
    }
  }
  return false;
}

KclAudit NewtonCore::audit(const std::vector<double>& x, const TransientContext& tr) const {
  KclAudit worst;
  const int nn = node_unknowns();
  if (nn == 0) return worst;
  std::vector<double> f, scale;
  assemble(x, 0.0, tr, f, scale, nullptr);
  int row = 0;
  for (int i = 1; i < nn; ++i) {
    if (std::abs(f[i]) > std::abs(f[row])) row = i;
  }
  worst.node = row + 1;
  worst.residual = f[row];
  worst.scale = scale[row];
  return worst;
}

}  // namespace ptherm::spice::detail
