#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "spice/newton_core.hpp"

namespace ptherm::spice {

std::vector<double> TransientResult::node_waveform(NodeId n) const {
  std::vector<double> out;
  out.reserve(voltages.size());
  for (const auto& v : voltages) out.push_back(v.at(static_cast<std::size_t>(n)));
  return out;
}

TransientResult solve_transient(const Circuit& circuit, const TransientOptions& opts) {
  PTHERM_REQUIRE(opts.dt > 0.0 && opts.t_stop > 0.0, "transient: bad time grid");
  const DcSolution op = solve_dc(circuit, opts.dc);

  detail::NewtonCore core(circuit, opts.dc);
  const int nn = core.node_unknowns();
  const int nv = static_cast<int>(circuit.vsources().size());

  // Unknown vector seeded from the operating point.
  std::vector<double> x(static_cast<std::size_t>(core.size()), 0.0);
  for (int n = 1; n < circuit.node_count(); ++n) x[n - 1] = op.node_voltages[n];
  {
    int j = 0;
    for (const auto& v : circuit.vsources()) {
      x[nn + j] = op.vsource_currents.at(v.name);
      ++j;
    }
  }

  TransientResult result;
  auto record = [&](double t) {
    result.times.push_back(t);
    std::vector<double> volts(static_cast<std::size_t>(circuit.node_count()), 0.0);
    for (int n = 1; n < circuit.node_count(); ++n) volts[n] = x[n - 1];
    result.voltages.push_back(std::move(volts));
    int j = 0;
    for (const auto& v : circuit.vsources()) {
      result.vsource_currents[v.name].push_back(x[nn + j]);
      ++j;
    }
  };
  record(0.0);

  detail::TransientContext tr;
  tr.active = true;
  tr.dt = opts.dt;
  tr.prev_voltages.assign(static_cast<std::size_t>(circuit.node_count()), 0.0);

  const int steps = static_cast<int>(std::ceil(opts.t_stop / opts.dt - 1e-12));
  double t = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double h = std::min(opts.dt, opts.t_stop - t);
    tr.dt = h;
    tr.time = t + h;
    for (int n = 0; n < circuit.node_count(); ++n) {
      tr.prev_voltages[n] = (n == 0) ? 0.0 : x[n - 1];
    }
    int iters = 0;
    if (!core.newton(x, 1e-12, tr, iters)) {
      SolveReport report;
      report.path = "transient";
      report.rungs.push_back({"transient", tr.time, iters, false, {}});
      report.newton_iterations = iters;
      const auto worst = core.audit(x, tr);
      report.worst_node = circuit.node_name(worst.node);
      report.worst_residual = worst.residual;
      report.worst_scale = worst.scale;
      const auto& mosfets = circuit.mosfets();
      for (std::size_t d = 0; d < mosfets.size(); ++d) {
        report.device_temperatures[mosfets[d].name] = core.device_temperature(d);
      }
      throw ConvergenceFailure(
          "solve_transient: Newton failed at t = " + std::to_string(tr.time),
          std::move(report), "solve_transient");
    }
    t = tr.time;
    record(t);
  }
  (void)nv;
  return result;
}

}  // namespace ptherm::spice
