// Circuit representation for the "SPICE" substitute.
//
// The paper validates its analytic leakage model against SPICE runs of the
// same devices (Fig. 8). We rebuild that baseline: a nodal circuit with
// resistors, capacitors, independent sources and MOSFETs (device/MosModel),
// solved by Newton on the MNA equations (spice/dc.hpp) and by backward Euler
// in time (spice/transient.hpp).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "device/mosfet.hpp"

namespace ptherm::spice {

/// Node handle; 0 is ground.
using NodeId = int;

/// Time-dependent source value (transient analyses); seconds -> volts/amps.
using Waveform = std::function<double(double)>;

class Circuit {
 public:
  /// Returns the id of the named node, creating it on first use.
  /// The name "0" (and "gnd") map to ground.
  NodeId node(const std::string& name);

  /// Name of node `n` ("0" for ground) — how solve diagnostics report the
  /// worst-KCL-residual node. Throws on an id this circuit never created.
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Index of the named MOSFET in mosfets() — how the electro-thermal
  /// coupling maps device names onto floorplan footprints. Throws
  /// ptherm::PreconditionError if no MOSFET has that name.
  [[nodiscard]] std::size_t mosfet_index(const std::string& name) const;

  [[nodiscard]] static constexpr NodeId ground() noexcept { return 0; }

  /// Number of nodes including ground.
  [[nodiscard]] int node_count() const noexcept { return next_node_; }

  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b, double farads);

  /// Ideal voltage source; current through it is an MNA unknown.
  void add_vsource(const std::string& name, NodeId plus, NodeId minus, double volts);

  /// Independent current source pushing `amps` from `from` to `to`.
  void add_isource(const std::string& name, NodeId from, NodeId to, double amps);

  void add_mosfet(const std::string& name, NodeId drain, NodeId gate, NodeId source,
                  NodeId bulk, device::MosModel model);

  /// Makes a voltage source time dependent (transient only; DC uses the
  /// value at t = 0 if a waveform is installed).
  void set_vsource_waveform(const std::string& name, Waveform waveform);

  /// Changes the DC value of a voltage source (for sweeps).
  void set_vsource_value(const std::string& name, double volts);

  // ---- element tables (read by the solvers) ------------------------------
  struct Resistor {
    std::string name;
    NodeId a, b;
    double ohms;
  };
  struct Capacitor {
    std::string name;
    NodeId a, b;
    double farads;
  };
  struct VSource {
    std::string name;
    NodeId plus, minus;
    double volts;
    std::optional<Waveform> waveform;
  };
  struct ISource {
    std::string name;
    NodeId from, to;
    double amps;
  };
  struct Mosfet {
    std::string name;
    NodeId drain, gate, source, bulk;
    device::MosModel model;
  };

  [[nodiscard]] const std::vector<Resistor>& resistors() const noexcept { return resistors_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const noexcept { return capacitors_; }
  [[nodiscard]] const std::vector<VSource>& vsources() const noexcept { return vsources_; }
  [[nodiscard]] const std::vector<ISource>& isources() const noexcept { return isources_; }
  [[nodiscard]] const std::vector<Mosfet>& mosfets() const noexcept { return mosfets_; }

  [[nodiscard]] const std::map<std::string, NodeId>& named_nodes() const noexcept {
    return names_;
  }

 private:
  void check_node(NodeId n) const;
  void check_unique_name(const std::string& name);

  int next_node_ = 1;  // 0 reserved for ground
  std::map<std::string, NodeId> names_;
  std::map<std::string, char> element_names_;  // uniqueness guard
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VSource> vsources_;
  std::vector<ISource> isources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace ptherm::spice
