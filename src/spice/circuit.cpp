#include "spice/circuit.hpp"

#include "common/error.hpp"

namespace ptherm::spice {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return ground();
  auto it = names_.find(name);
  if (it != names_.end()) return it->second;
  const NodeId id = next_node_++;
  names_.emplace(name, id);
  return id;
}

const std::string& Circuit::node_name(NodeId n) const {
  static const std::string kGround = "0";
  if (n == ground()) return kGround;
  check_node(n);
  for (const auto& [name, id] : names_) {
    if (id == n) return name;
  }
  // check_node passed, so the id was handed out — and ids are only handed
  // out by node(), which always records a name.
  throw PreconditionError("node_name: unnamed node id " + std::to_string(n));
}

std::size_t Circuit::mosfet_index(const std::string& name) const {
  for (std::size_t i = 0; i < mosfets_.size(); ++i) {
    if (mosfets_[i].name == name) return i;
  }
  throw PreconditionError("mosfet_index: no MOSFET named " + name);
}

void Circuit::check_node(NodeId n) const {
  PTHERM_REQUIRE(n >= 0 && n < next_node_, "unknown node id");
}

void Circuit::check_unique_name(const std::string& name) {
  PTHERM_REQUIRE(!name.empty(), "element name must not be empty");
  PTHERM_REQUIRE(element_names_.emplace(name, '\0').second,
                 "duplicate element name: " + name);
}

void Circuit::add_resistor(const std::string& name, NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  PTHERM_REQUIRE(ohms > 0.0, "resistance must be positive");
  check_unique_name(name);
  resistors_.push_back({name, a, b, ohms});
}

void Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  PTHERM_REQUIRE(farads > 0.0, "capacitance must be positive");
  check_unique_name(name);
  capacitors_.push_back({name, a, b, farads});
}

void Circuit::add_vsource(const std::string& name, NodeId plus, NodeId minus, double volts) {
  check_node(plus);
  check_node(minus);
  check_unique_name(name);
  vsources_.push_back({name, plus, minus, volts, std::nullopt});
}

void Circuit::add_isource(const std::string& name, NodeId from, NodeId to, double amps) {
  check_node(from);
  check_node(to);
  check_unique_name(name);
  isources_.push_back({name, from, to, amps});
}

void Circuit::add_mosfet(const std::string& name, NodeId drain, NodeId gate, NodeId source,
                         NodeId bulk, device::MosModel model) {
  check_node(drain);
  check_node(gate);
  check_node(source);
  check_node(bulk);
  check_unique_name(name);
  mosfets_.push_back({name, drain, gate, source, bulk, std::move(model)});
}

void Circuit::set_vsource_waveform(const std::string& name, Waveform waveform) {
  for (auto& v : vsources_) {
    if (v.name == name) {
      v.waveform = std::move(waveform);
      return;
    }
  }
  throw PreconditionError("set_vsource_waveform: no such source: " + name);
}

void Circuit::set_vsource_value(const std::string& name, double volts) {
  for (auto& v : vsources_) {
    if (v.name == name) {
      v.volts = volts;
      return;
    }
  }
  throw PreconditionError("set_vsource_value: no such source: " + name);
}

}  // namespace ptherm::spice
