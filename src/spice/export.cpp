#include "spice/export.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace ptherm::spice {

namespace {
/// Builds the id -> printable-name map (named nodes keep their names).
std::map<NodeId, std::string> node_names(const Circuit& ckt) {
  std::map<NodeId, std::string> names;
  names[Circuit::ground()] = "0";
  for (const auto& [name, id] : ckt.named_nodes()) names[id] = name;
  for (NodeId n = 0; n < ckt.node_count(); ++n) {
    if (!names.count(n)) names[n] = "n" + std::to_string(n);
  }
  return names;
}
}  // namespace

void export_deck(const Circuit& circuit, std::ostream& os, const ExportOptions& opts) {
  const auto names = node_names(circuit);
  auto nn = [&](NodeId n) { return names.at(n); };

  os << "* " << opts.title << "\n";
  os << ".temp " << to_celsius(opts.temp) << "\n";

  for (const auto& r : circuit.resistors()) {
    os << "R" << r.name << " " << nn(r.a) << " " << nn(r.b) << " " << r.ohms << "\n";
  }
  for (const auto& c : circuit.capacitors()) {
    os << "C" << c.name << " " << nn(c.a) << " " << nn(c.b) << " " << c.farads << "\n";
  }
  for (const auto& v : circuit.vsources()) {
    os << "V" << v.name << " " << nn(v.plus) << " " << nn(v.minus) << " DC "
       << (v.waveform ? (*v.waveform)(0.0) : v.volts) << "\n";
  }
  for (const auto& i : circuit.isources()) {
    os << "I" << i.name << " " << nn(i.from) << " " << nn(i.to) << " DC " << i.amps << "\n";
  }

  bool any_nmos = false;
  bool any_pmos = false;
  const device::Technology* tech = nullptr;
  for (const auto& m : circuit.mosfets()) {
    const bool is_n = m.model.type() == device::MosType::Nmos;
    any_nmos |= is_n;
    any_pmos |= !is_n;
    os << "M" << m.name << " " << nn(m.drain) << " " << nn(m.gate) << " " << nn(m.source)
       << " " << nn(m.bulk) << " " << (is_n ? "NMOS_PT" : "PMOS_PT")
       << " W=" << m.model.width() << " L=" << m.model.length() << "\n";
    tech = &m.model.technology();
  }
  if (tech) {
    if (any_nmos) {
      os << ".model NMOS_PT NMOS (LEVEL=1 VTO=" << tech->vt0_n << " KP=" << tech->kp_n
         << " LAMBDA=" << tech->lambda << ")\n";
      os << "* subthreshold (not expressible in LEVEL=1): I0=" << tech->i0_n
         << " n=" << tech->n_swing << " sigma_DIBL=" << tech->sigma_dibl
         << " gamma'=" << tech->gamma_lin << " KT=" << tech->k_t << "\n";
    }
    if (any_pmos) {
      os << ".model PMOS_PT PMOS (LEVEL=1 VTO=" << -tech->vt0_p << " KP=" << tech->kp_p
         << " LAMBDA=" << tech->lambda << ")\n";
    }
  }
  os << ".op\n.end\n";
}

bool export_deck_file(const Circuit& circuit, const std::string& path,
                      const ExportOptions& opts) {
  std::ofstream out(path);
  if (!out) return false;
  export_deck(circuit, out, opts);
  return static_cast<bool>(out);
}

}  // namespace ptherm::spice
