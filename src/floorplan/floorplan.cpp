#include "floorplan/floorplan.hpp"

#include "common/error.hpp"

namespace ptherm::floorplan {

double Block::leakage_current(const device::Technology& tech, double temp, double vb) const {
  double sum = 0.0;
  for (const auto& g : gate_groups) {
    PTHERM_ASSERT(g.gate != nullptr, "GateGroup without topology");
    const auto r = leakage::gate_static(tech, *g.gate, g.inputs, temp, vb);
    sum += g.count * r.i_off;
  }
  return sum;
}

double Block::leakage_power(const device::Technology& tech, double temp, double vb) const {
  return leakage_current(tech, temp, vb) * tech.vdd;
}

Floorplan::Floorplan(thermal::Die die) : die_(die) {
  PTHERM_REQUIRE(die_.width > 0.0 && die_.height > 0.0, "Floorplan: degenerate die");
}

void Floorplan::add_block(Block block) {
  PTHERM_REQUIRE(block.rect.w > 0.0 && block.rect.h > 0.0, "add_block: degenerate rect");
  PTHERM_REQUIRE(block.rect.x >= 0.0 && block.rect.y >= 0.0 &&
                     block.rect.x + block.rect.w <= die_.width + 1e-12 &&
                     block.rect.y + block.rect.h <= die_.height + 1e-12,
                 "add_block: block leaves the die: " + block.name);
  for (const auto& other : blocks_) {
    PTHERM_REQUIRE(!block.rect.overlaps(other.rect),
                   "add_block: block overlaps " + other.name + ": " + block.name);
  }
  blocks_.push_back(std::move(block));
}

std::vector<thermal::HeatSource> Floorplan::heat_sources(
    const device::Technology& tech, const std::vector<double>& temps) const {
  PTHERM_REQUIRE(temps.empty() || temps.size() == blocks_.size(),
                 "heat_sources: temperature count mismatch");
  std::vector<thermal::HeatSource> sources;
  sources.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    thermal::HeatSource s;
    s.cx = b.rect.cx();
    s.cy = b.rect.cy();
    s.w = b.rect.w;
    s.l = b.rect.h;
    s.power = temps.empty() ? b.p_dynamic : b.total_power(tech, temps[i]);
    sources.push_back(s);
  }
  return sources;
}

double Floorplan::total_dynamic_power() const {
  double sum = 0.0;
  for (const auto& b : blocks_) sum += b.p_dynamic;
  return sum;
}

}  // namespace ptherm::floorplan
