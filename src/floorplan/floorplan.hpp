// Floorplan layer: rectangles, blocks with power content, and the die-level
// container that feeds the thermal models. Power maps in the paper come from
// real designs; here synthetic generators (see generators.hpp) exercise the
// same code paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "device/tech.hpp"
#include "leakage/gate.hpp"
#include "thermal/images.hpp"

namespace ptherm::floorplan {

/// Axis-aligned rectangle, corner-anchored: [x, x+w) x [y, y+h).
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  [[nodiscard]] double area() const noexcept { return w * h; }
  [[nodiscard]] double cx() const noexcept { return x + 0.5 * w; }
  [[nodiscard]] double cy() const noexcept { return y + 0.5 * h; }
  [[nodiscard]] bool contains(double px, double py) const noexcept {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  [[nodiscard]] bool overlaps(const Rect& o) const noexcept {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
};

/// A population of identical gates held in an identical static input state;
/// the unit of leakage bookkeeping inside a block.
struct GateGroup {
  std::shared_ptr<const leakage::GateTopology> gate;
  leakage::InputVector inputs;
  double count = 1.0;
};

/// One floorplan block: a rectangle dissipating dynamic power plus a
/// temperature-dependent leakage population.
struct Block {
  std::string name;
  Rect rect;
  double p_dynamic = 0.0;             ///< [W], temperature independent here
  std::vector<GateGroup> gate_groups; ///< leakage content

  /// Total subthreshold current of the block at temperature `temp` [A].
  [[nodiscard]] double leakage_current(const device::Technology& tech, double temp,
                                       double vb = 0.0) const;
  /// leakage_current * VDD [W].
  [[nodiscard]] double leakage_power(const device::Technology& tech, double temp,
                                     double vb = 0.0) const;
  /// Total power at `temp` [W].
  [[nodiscard]] double total_power(const device::Technology& tech, double temp,
                                   double vb = 0.0) const {
    return p_dynamic + leakage_power(tech, temp, vb);
  }
};

/// Die + non-overlapping blocks.
class Floorplan {
 public:
  explicit Floorplan(thermal::Die die);

  /// Adds a block; throws if it leaves the die or overlaps an existing block.
  void add_block(Block block);

  [[nodiscard]] const thermal::Die& die() const noexcept { return die_; }
  [[nodiscard]] const std::vector<Block>& blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::vector<Block>& blocks() noexcept { return blocks_; }

  /// Heat sources for the thermal models, one per block, with per-block total
  /// power evaluated at the given per-block temperatures (or at p_dynamic
  /// only when `temps` is empty — the cosim loop's starting point).
  [[nodiscard]] std::vector<thermal::HeatSource> heat_sources(
      const device::Technology& tech, const std::vector<double>& temps = {}) const;

  [[nodiscard]] double total_dynamic_power() const;

 private:
  thermal::Die die_;
  std::vector<Block> blocks_;
};

}  // namespace ptherm::floorplan
