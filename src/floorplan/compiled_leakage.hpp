// Compiled per-block leakage: the Picard loop's hot scalar path.
//
// Block::leakage_current walks every gate group's series-parallel OFF network
// on every call — re-deciding ON/OFF per node, re-discovering the traversal,
// and heap-allocating collapse_chain's per-call drops vector. None of that
// depends on temperature or technology: the ON/OFF partition is a pure
// function of the (fixed) input vector, so the whole walk can be compiled
// once per block into a flat op program over a tiny value stack. Evaluation
// replays exactly the arithmetic off_reduction + collapse_chain +
// subthreshold_current perform, in the same order on the same values, so the
// result is BITWISE identical to Block::leakage_current (pinned by tests) —
// allocation-free and at a fraction of the cost. Because the program caches
// no temperature- or technology-dependent value, one compiled block serves
// every (tech, temp, vb) query: the batched scenario engine evaluates the
// same program under per-scenario V/f corner technologies.
#pragma once

#include <cstdint>
#include <vector>

#include "device/tech.hpp"
#include "floorplan/floorplan.hpp"

namespace ptherm::floorplan {

class CompiledBlockLeakage {
 public:
  /// Empty program: leakage_current == 0 (a block without gate groups).
  CompiledBlockLeakage() = default;

  /// Compiles `block`'s gate groups. Throws the same contention / floating /
  /// missing-topology errors the uncompiled path would raise on first eval.
  explicit CompiledBlockLeakage(const Block& block);

  /// Bitwise equal to block.leakage_current(tech, temp, vb) [A].
  [[nodiscard]] double leakage_current(const device::Technology& tech, double temp,
                                       double vb = 0.0) const;

  /// Bitwise equal to block.leakage_power(tech, temp, vb) [W].
  [[nodiscard]] double leakage_power(const device::Technology& tech, double temp,
                                     double vb = 0.0) const {
    return leakage_current(tech, temp, vb) * tech.vdd;
  }

  // The program representation is public for the compiler helper in the
  // implementation file; the data members stay private.
  /// Post-order program over a value stack of effective widths [m].
  struct Op {
    enum class Kind : std::uint8_t {
      Push,            ///< push a device width
      ParallelSum,     ///< pop `count` widths, push their sum (child order)
      SeriesCollapse,  ///< pop `count` widths (rail-side deepest), push the
                       ///< collapse_chain equivalent width
    };
    Kind kind = Kind::Push;
    double width = 0.0;        ///< Push only
    std::int32_t count = 0;    ///< ParallelSum / SeriesCollapse only
  };

  /// One gate group: a slice of ops_ that leaves the group's collapsed OFF
  /// width on the stack, plus the Eq. (13) evaluation parameters.
  struct Group {
    device::MosType off_type = device::MosType::Nmos;
    double length = 0.0;  ///< shared channel length [m]
    double count = 0.0;   ///< gates in the group
    std::int32_t op_begin = 0;
    std::int32_t op_end = 0;
  };

 private:
  std::vector<Op> ops_;
  std::vector<Group> groups_;
  int max_stack_ = 0;  ///< deepest value stack any group needs
};

}  // namespace ptherm::floorplan
