#include "floorplan/generators.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptherm::floorplan {

namespace {

/// Fills a block with a plausible static leakage population: a mix of
/// library cells in random static states, scaled to the block area.
void populate_leakage(Block& block, const device::Technology& tech,
                      const GeneratorConfig& cfg, Rng& rng) {
  static thread_local std::shared_ptr<const netlist::CellLibrary> lib;
  static thread_local std::string lib_tech;
  if (!lib || lib_tech != tech.name) {
    lib = std::make_shared<const netlist::CellLibrary>(tech);
    lib_tech = tech.name;
  }
  const double area_mm2 = block.rect.area() * 1e6;  // m^2 -> mm^2
  const double gates = cfg.gates_per_mm2 * area_mm2;
  if (gates <= 0.0) return;
  // Representative mix: 40% inverters, 30% nand2, 20% nor2, 10% nand3, each
  // in a random static state shared by the whole group (adequate for block
  // aggregates; per-gate states average out at these populations).
  struct MixEntry {
    const char* cell;
    double fraction;
  };
  const MixEntry mix[] = {{"inv", 0.4}, {"nand2", 0.3}, {"nor2", 0.2}, {"nand3", 0.1}};
  for (const auto& m : mix) {
    const auto cell = lib->find(m.cell);
    leakage::InputVector inputs(static_cast<std::size_t>(cell->input_count()));
    for (std::size_t b = 0; b < inputs.size(); ++b) inputs[b] = rng.bernoulli();
    block.gate_groups.push_back({cell, std::move(inputs), gates * m.fraction});
  }
}

}  // namespace

Floorplan make_uniform_grid(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng) {
  PTHERM_REQUIRE(nx >= 1 && ny >= 1, "make_uniform_grid: empty grid");
  Floorplan fp(die);
  const double mx = die.width * cfg.margin_fraction;
  const double my = die.height * cfg.margin_fraction;
  const double tile_w = (die.width - 2.0 * mx) / nx;
  const double tile_h = (die.height - 2.0 * my) / ny;
  const double p_tile = cfg.total_dynamic_power / (nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Block b;
      b.name = "tile_" + std::to_string(i) + "_" + std::to_string(j);
      // Shrink each tile slightly so neighbours never touch (the floorplan
      // rejects overlapping rectangles).
      b.rect = {mx + i * tile_w + 0.02 * tile_w, my + j * tile_h + 0.02 * tile_h,
                0.96 * tile_w, 0.96 * tile_h};
      b.p_dynamic = p_tile;
      populate_leakage(b, tech, cfg, rng);
      fp.add_block(std::move(b));
    }
  }
  return fp;
}

Floorplan make_hotspot_map(const device::Technology& tech, const thermal::Die& die,
                           int hotspots, double hot_fraction, const GeneratorConfig& cfg,
                           Rng& rng) {
  PTHERM_REQUIRE(hotspots >= 1, "make_hotspot_map: need at least one hotspot");
  PTHERM_REQUIRE(hot_fraction > 0.0 && hot_fraction < 1.0,
                 "make_hotspot_map: hot_fraction in (0,1)");
  Floorplan fp(die);
  // Background sea: a 3x3 grid carrying the cold fraction.
  {
    GeneratorConfig sea_cfg = cfg;
    sea_cfg.total_dynamic_power = cfg.total_dynamic_power * (1.0 - hot_fraction);
    Floorplan sea = make_uniform_grid(tech, die, 3, 3, sea_cfg, rng);
    // Re-add the sea tiles at reduced size so hotspots fit between them:
    // instead we overlay hotspots in the tile gaps; simplest robust approach
    // is to place hotspots in the margins of the 3x3 sea tiles.
    for (auto& b : sea.blocks()) fp.add_block(b);
  }
  const double p_hot = cfg.total_dynamic_power * hot_fraction / hotspots;
  const double hs_w = die.width * 0.04;
  const double hs_h = die.height * 0.04;
  int placed = 0;
  int attempts = 0;
  while (placed < hotspots && attempts < 10000) {
    ++attempts;
    Block b;
    b.name = "hotspot_" + std::to_string(placed);
    b.rect = {rng.uniform(0.0, die.width - hs_w), rng.uniform(0.0, die.height - hs_h), hs_w,
              hs_h};
    bool clear = true;
    for (const auto& other : fp.blocks()) {
      if (b.rect.overlaps(other.rect)) {
        clear = false;
        break;
      }
    }
    if (!clear) continue;
    b.p_dynamic = p_hot;
    GeneratorConfig hot_cfg = cfg;
    hot_cfg.gates_per_mm2 = cfg.gates_per_mm2 * 4.0;  // dense logic
    populate_leakage(b, tech, hot_cfg, rng);
    fp.add_block(std::move(b));
    ++placed;
  }
  PTHERM_REQUIRE(placed == hotspots, "make_hotspot_map: could not place all hotspots");
  return fp;
}

Floorplan make_checkerboard(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng) {
  PTHERM_REQUIRE(nx >= 1 && ny >= 1, "make_checkerboard: empty grid");
  Floorplan fp(die);
  const double tile_w = die.width / nx;
  const double tile_h = die.height / ny;
  const int active_tiles = (nx * ny + 1) / 2;
  const double p_tile = cfg.total_dynamic_power / active_tiles;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const bool active = ((i + j) % 2) == 0;
      Block b;
      b.name = std::string(active ? "active_" : "idle_") + std::to_string(i) + "_" +
               std::to_string(j);
      b.rect = {i * tile_w + 0.02 * tile_w, j * tile_h + 0.02 * tile_h, 0.96 * tile_w,
                0.96 * tile_h};
      b.p_dynamic = active ? p_tile : 0.0;
      populate_leakage(b, tech, cfg, rng);  // idle tiles still leak
      fp.add_block(std::move(b));
    }
  }
  return fp;
}

Floorplan make_three_block_ic(const device::Technology& tech, const thermal::Die& die,
                              double p1, double p2, double p3) {
  Floorplan fp(die);
  const double w = die.width;
  const double h = die.height;
  Rng rng(0x7ab5);  // fixed: this is the reference Fig. 6 scenario
  GeneratorConfig cfg;
  cfg.total_dynamic_power = p1 + p2 + p3;
  auto add = [&](const char* name, Rect r, double p) {
    Block b;
    b.name = name;
    b.rect = r;
    b.p_dynamic = p;
    populate_leakage(b, tech, cfg, rng);
    fp.add_block(std::move(b));
  };
  // Three blocks echoing the look of the paper's Fig. 6: one large block in
  // the lower-left quadrant, a medium one upper-centre, a small hot one to
  // the right.
  add("blockA", {0.10 * w, 0.10 * h, 0.35 * w, 0.30 * h}, p1);
  add("blockB", {0.30 * w, 0.60 * h, 0.25 * w, 0.25 * h}, p2);
  add("blockC", {0.70 * w, 0.35 * h, 0.15 * w, 0.15 * h}, p3);
  return fp;
}

}  // namespace ptherm::floorplan
