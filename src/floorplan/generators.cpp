#include "floorplan/generators.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ptherm::floorplan {

namespace {

/// The library a generator call draws leakage populations from: the caller's
/// shared one when provided, otherwise a library characterized for THIS
/// technology object. No process-wide cache: two Technology objects with the
/// same name but different parameters (Monte Carlo variants) must not alias.
std::shared_ptr<const netlist::CellLibrary> resolve_library(const device::Technology& tech,
                                                            const GeneratorConfig& cfg) {
  if (cfg.library) return cfg.library;
  return std::make_shared<const netlist::CellLibrary>(tech);
}

/// Fills a block with a plausible static leakage population: a mix of
/// library cells in random static states, scaled to the block area at
/// `gates_per_mm2`.
void populate_leakage(Block& block, const netlist::CellLibrary& lib, double gates_per_mm2,
                      Rng& rng) {
  const double area_mm2 = block.rect.area() * 1e6;  // m^2 -> mm^2
  const double gates = gates_per_mm2 * area_mm2;
  if (gates <= 0.0) return;
  // Representative mix: 40% inverters, 30% nand2, 20% nor2, 10% nand3, each
  // in a random static state shared by the whole group (adequate for block
  // aggregates; per-gate states average out at these populations).
  struct MixEntry {
    const char* cell;
    double fraction;
  };
  const MixEntry mix[] = {{"inv", 0.4}, {"nand2", 0.3}, {"nor2", 0.2}, {"nand3", 0.1}};
  for (const auto& m : mix) {
    const auto cell = lib.find(m.cell);
    leakage::InputVector inputs(static_cast<std::size_t>(cell->input_count()));
    for (std::size_t b = 0; b < inputs.size(); ++b) inputs[b] = rng.bernoulli();
    block.gate_groups.push_back({cell, std::move(inputs), gates * m.fraction});
  }
}

}  // namespace

void validate(const GeneratorConfig& cfg) {
  PTHERM_REQUIRE(cfg.total_dynamic_power >= 0.0,
                 "GeneratorConfig: total_dynamic_power must be >= 0");
  PTHERM_REQUIRE(cfg.gates_per_mm2 >= 0.0, "GeneratorConfig: gates_per_mm2 must be >= 0");
  PTHERM_REQUIRE(cfg.margin_fraction >= 0.0 && cfg.margin_fraction < 0.5,
                 "GeneratorConfig: margin_fraction must be in [0, 0.5)");
}

Floorplan make_uniform_grid(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng) {
  PTHERM_REQUIRE(nx >= 1 && ny >= 1, "make_uniform_grid: empty grid");
  validate(cfg);
  Floorplan fp(die);
  const auto lib = resolve_library(tech, cfg);
  const double mx = die.width * cfg.margin_fraction;
  const double my = die.height * cfg.margin_fraction;
  const double tile_w = (die.width - 2.0 * mx) / nx;
  const double tile_h = (die.height - 2.0 * my) / ny;
  const double p_tile = cfg.total_dynamic_power / (nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Block b;
      b.name = "tile_" + std::to_string(i) + "_" + std::to_string(j);
      // Shrink each tile slightly so neighbours never touch (the floorplan
      // rejects overlapping rectangles).
      b.rect = {mx + i * tile_w + 0.02 * tile_w, my + j * tile_h + 0.02 * tile_h,
                0.96 * tile_w, 0.96 * tile_h};
      b.p_dynamic = p_tile;
      populate_leakage(b, *lib, cfg.gates_per_mm2, rng);
      fp.add_block(std::move(b));
    }
  }
  return fp;
}

Floorplan make_hotspot_map(const device::Technology& tech, const thermal::Die& die,
                           int hotspots, double hot_fraction, const GeneratorConfig& cfg,
                           Rng& rng) {
  PTHERM_REQUIRE(hotspots >= 1, "make_hotspot_map: need at least one hotspot");
  PTHERM_REQUIRE(hot_fraction > 0.0 && hot_fraction < 1.0,
                 "make_hotspot_map: hot_fraction in (0,1)");
  validate(cfg);
  Floorplan fp(die);
  const auto lib = resolve_library(tech, cfg);
  const double mx = die.width * cfg.margin_fraction;
  const double my = die.height * cfg.margin_fraction;
  const double pitch_x = (die.width - 2.0 * mx) / 3.0;
  const double pitch_y = (die.height - 2.0 * my) / 3.0;
  // Background sea: a 3x3 tile grid carrying the cold fraction. Each tile
  // occupies the central 80% of its pitch cell, leaving 0.2-pitch inter-tile
  // gaps wide enough to host the hotspots.
  const double sea_power = cfg.total_dynamic_power * (1.0 - hot_fraction) / 9.0;
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      Block b;
      b.name = "sea_" + std::to_string(i) + "_" + std::to_string(j);
      b.rect = {mx + (i + 0.10) * pitch_x, my + (j + 0.10) * pitch_y, 0.80 * pitch_x,
                0.80 * pitch_y};
      b.p_dynamic = sea_power;
      populate_leakage(b, *lib, cfg.gates_per_mm2, rng);
      fp.add_block(std::move(b));
    }
  }
  // Hotspots go into deterministic slots centred in the inter-tile gaps
  // (never the margin): the 4 gap crossings, then the 6 vertical-gap spans
  // at tile-row centres, then the 6 horizontal-gap spans at tile-column
  // centres — 16 slots total, each clear of the sea tiles and of the other
  // slots by construction, so placement cannot fail for hotspots <= 16.
  std::vector<std::pair<double, double>> slots;
  const auto gap_x = [&](int i) { return mx + i * pitch_x; };
  const auto gap_y = [&](int j) { return my + j * pitch_y; };
  const auto centre_x = [&](int i) { return mx + (i + 0.5) * pitch_x; };
  const auto centre_y = [&](int j) { return my + (j + 0.5) * pitch_y; };
  for (int i = 1; i <= 2; ++i) {
    for (int j = 1; j <= 2; ++j) slots.emplace_back(gap_x(i), gap_y(j));
  }
  for (int i = 1; i <= 2; ++i) {
    for (int j = 0; j < 3; ++j) slots.emplace_back(gap_x(i), centre_y(j));
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 1; j <= 2; ++j) slots.emplace_back(centre_x(i), gap_y(j));
  }
  PTHERM_REQUIRE(hotspots <= static_cast<int>(slots.size()),
                 "make_hotspot_map: at most 16 hotspots fit in the inter-tile gaps");
  const double p_hot = cfg.total_dynamic_power * hot_fraction / hotspots;
  const double hs_w = 0.12 * pitch_x;  // 60% of the gap width
  const double hs_h = 0.12 * pitch_y;
  for (int k = 0; k < hotspots; ++k) {
    Block b;
    b.name = "hotspot_" + std::to_string(k);
    b.rect = {slots[static_cast<std::size_t>(k)].first - 0.5 * hs_w,
              slots[static_cast<std::size_t>(k)].second - 0.5 * hs_h, hs_w, hs_h};
    b.p_dynamic = p_hot;
    populate_leakage(b, *lib, cfg.gates_per_mm2 * 4.0, rng);  // dense logic
    fp.add_block(std::move(b));
  }
  return fp;
}

Floorplan make_checkerboard(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng) {
  PTHERM_REQUIRE(nx >= 1 && ny >= 1, "make_checkerboard: empty grid");
  validate(cfg);
  Floorplan fp(die);
  const auto lib = resolve_library(tech, cfg);
  const double mx = die.width * cfg.margin_fraction;
  const double my = die.height * cfg.margin_fraction;
  const double tile_w = (die.width - 2.0 * mx) / nx;
  const double tile_h = (die.height - 2.0 * my) / ny;
  const int active_tiles = (nx * ny + 1) / 2;
  const double p_tile = cfg.total_dynamic_power / active_tiles;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const bool active = ((i + j) % 2) == 0;
      Block b;
      b.name = std::string(active ? "active_" : "idle_") + std::to_string(i) + "_" +
               std::to_string(j);
      b.rect = {mx + i * tile_w + 0.02 * tile_w, my + j * tile_h + 0.02 * tile_h,
                0.96 * tile_w, 0.96 * tile_h};
      b.p_dynamic = active ? p_tile : 0.0;
      populate_leakage(b, *lib, cfg.gates_per_mm2, rng);  // idle tiles still leak
      fp.add_block(std::move(b));
    }
  }
  return fp;
}

Floorplan make_three_block_ic(const device::Technology& tech, const thermal::Die& die,
                              double p1, double p2, double p3) {
  Floorplan fp(die);
  const double w = die.width;
  const double h = die.height;
  Rng rng(0x7ab5);  // fixed: this is the reference Fig. 6 scenario
  GeneratorConfig cfg;
  cfg.total_dynamic_power = p1 + p2 + p3;
  validate(cfg);
  const auto lib = resolve_library(tech, cfg);
  auto add = [&](const char* name, Rect r, double p) {
    Block b;
    b.name = name;
    b.rect = r;
    b.p_dynamic = p;
    populate_leakage(b, *lib, cfg.gates_per_mm2, rng);
    fp.add_block(std::move(b));
  };
  // Three blocks echoing the look of the paper's Fig. 6: one large block in
  // the lower-left quadrant, a medium one upper-centre, a small hot one to
  // the right.
  add("blockA", {0.10 * w, 0.10 * h, 0.35 * w, 0.30 * h}, p1);
  add("blockB", {0.30 * w, 0.60 * h, 0.25 * w, 0.25 * h}, p2);
  add("blockC", {0.70 * w, 0.35 * h, 0.15 * w, 0.15 * h}, p3);
  return fp;
}

Floorplan make_manycore(const device::Technology& tech, const thermal::Die& die, int tiles_x,
                        int tiles_y, const GeneratorConfig& cfg, Rng& rng) {
  PTHERM_REQUIRE(tiles_x >= 1 && tiles_y >= 1, "make_manycore: empty tile grid");
  validate(cfg);
  Floorplan fp(die);
  const auto lib = resolve_library(tech, cfg);
  const double mx = die.width * cfg.margin_fraction;
  const double my = die.height * cfg.margin_fraction;
  const double pitch_x = (die.width - 2.0 * mx) / tiles_x;
  const double pitch_y = (die.height - 2.0 * my) / tiles_y;
  // Per-tile activity weights, normalized so the die-level dynamic budget is
  // met exactly whatever the tile count; the spread models the heterogeneous
  // utilization a real manycore workload produces.
  const int tiles = tiles_x * tiles_y;
  std::vector<double> weight(static_cast<std::size_t>(tiles));
  double weight_sum = 0.0;
  for (auto& w : weight) {
    w = rng.uniform(0.5, 1.5);
    weight_sum += w;
  }
  // Tile-local layout in pitch units: the core dominates, the L2 slice spans
  // the tile bottom, the directory slice and NoC router stack on the right —
  // the McPAT tile anatomy. Sub-blocks stay 0.04 pitch clear of the tile
  // boundary and of each other, so neighbouring tiles never touch.
  struct Component {
    const char* name;
    double x, y, w, h;    ///< pitch-unit sub-rect within the tile
    double power_share;   ///< fraction of the tile's dynamic power
    double density_scale; ///< leakage density relative to cfg.gates_per_mm2
  };
  constexpr Component kTile[] = {
      {"core", 0.04, 0.36, 0.56, 0.60, 0.65, 1.5},
      {"l2", 0.04, 0.04, 0.92, 0.28, 0.18, 0.6},
      {"dir", 0.64, 0.36, 0.32, 0.26, 0.05, 0.8},
      {"router", 0.64, 0.66, 0.32, 0.30, 0.12, 1.0},
  };
  for (int j = 0; j < tiles_y; ++j) {
    for (int i = 0; i < tiles_x; ++i) {
      const double tile_x = mx + i * pitch_x;
      const double tile_y = my + j * pitch_y;
      const std::size_t t = static_cast<std::size_t>(j) * tiles_x + i;
      const double p_tile = cfg.total_dynamic_power * weight[t] / weight_sum;
      const std::string suffix = "_" + std::to_string(i) + "_" + std::to_string(j);
      for (const auto& c : kTile) {
        Block b;
        b.name = c.name + suffix;
        b.rect = {tile_x + c.x * pitch_x, tile_y + c.y * pitch_y, c.w * pitch_x,
                  c.h * pitch_y};
        b.p_dynamic = p_tile * c.power_share;
        populate_leakage(b, *lib, cfg.gates_per_mm2 * c.density_scale, rng);
        fp.add_block(std::move(b));
      }
    }
  }
  return fp;
}

}  // namespace ptherm::floorplan
