// Synthetic floorplan/power-map generators. The paper's evaluation uses
// in-house designs we cannot access; these generators produce power maps with
// the same structural features (uniform logic, concentrated hot spots,
// alternating active/idle tiles, McPAT-style manycore tilings) so every
// chip-level code path is exercised — including the manycore-scale runs the
// matrix-free influence path exists for.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "floorplan/floorplan.hpp"
#include "netlist/cells.hpp"

namespace ptherm::floorplan {

struct GeneratorConfig {
  double total_dynamic_power = 10.0;  ///< die-level dynamic budget [W]
  double gates_per_mm2 = 50e3;        ///< leakage population density
  double margin_fraction = 0.05;      ///< empty rim around the die
  /// Characterized cell library to draw leakage populations from. When null,
  /// each generator call characterizes a fresh library for its technology —
  /// correct for any Technology (including same-name Monte Carlo variants,
  /// which a shared cache keyed on the name would silently alias). Pass a
  /// library to amortize characterization across many calls on the SAME
  /// technology (the caller owns that invariant).
  std::shared_ptr<const netlist::CellLibrary> library;
};

/// Throws ptherm::PreconditionError if the config is unusable (negative
/// power budget or gate density, margin outside [0, 0.5)). Every generator
/// validates on entry.
void validate(const GeneratorConfig& cfg);

/// nx x ny uniform tile array, equal power per tile.
Floorplan make_uniform_grid(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng);

/// A cool background sea (3x3 tile grid) plus `hotspots` small, high-density
/// blocks holding `hot_fraction` of the power budget. Hotspots occupy
/// deterministic slots in the inter-tile gaps of the sea (the margin stays
/// clear), so placement never fails for hotspot counts up to the 16 slots;
/// more than 16 throws ptherm::PreconditionError.
Floorplan make_hotspot_map(const device::Technology& tech, const thermal::Die& die,
                           int hotspots, double hot_fraction, const GeneratorConfig& cfg,
                           Rng& rng);

/// Checkerboard of active/idle tiles (idle tiles leak but do not switch).
Floorplan make_checkerboard(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng);

/// The paper's Fig. 6 scenario: three logic blocks on a 1 mm x 1 mm die.
Floorplan make_three_block_ic(const device::Technology& tech, const thermal::Die& die,
                              double p1, double p2, double p3);

/// McPAT-style tiled manycore: tiles_x x tiles_y tiles, each carrying a core,
/// an L2 slice, a directory slice, and a NoC router (4 blocks per tile, so
/// 16x16 tiles is the 1024-block scenario). The die-level dynamic budget is
/// split across tiles by normalized random activity weights — a per-tile
/// power mix, deterministic per seed, summing to the budget exactly — and
/// within a tile by a fixed McPAT-like component split (core-dominated, with
/// the interconnect and cache slices visible). Margins are respected and
/// neighbouring tiles never touch.
Floorplan make_manycore(const device::Technology& tech, const thermal::Die& die, int tiles_x,
                        int tiles_y, const GeneratorConfig& cfg, Rng& rng);

}  // namespace ptherm::floorplan
