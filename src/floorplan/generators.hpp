// Synthetic floorplan/power-map generators. The paper's evaluation uses
// in-house designs we cannot access; these generators produce power maps with
// the same structural features (uniform logic, concentrated hot spots,
// alternating active/idle tiles) so every chip-level code path is exercised.
#pragma once

#include "common/rng.hpp"
#include "floorplan/floorplan.hpp"
#include "netlist/cells.hpp"

namespace ptherm::floorplan {

struct GeneratorConfig {
  double total_dynamic_power = 10.0;  ///< die-level dynamic budget [W]
  double gates_per_mm2 = 50e3;        ///< leakage population density
  double margin_fraction = 0.05;      ///< empty rim around the die
};

/// nx x ny uniform tile array, equal power per tile.
Floorplan make_uniform_grid(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng);

/// A cool background sea plus `hotspots` small, high-density blocks holding
/// `hot_fraction` of the power budget.
Floorplan make_hotspot_map(const device::Technology& tech, const thermal::Die& die,
                           int hotspots, double hot_fraction, const GeneratorConfig& cfg,
                           Rng& rng);

/// Checkerboard of active/idle tiles (idle tiles leak but do not switch).
Floorplan make_checkerboard(const device::Technology& tech, const thermal::Die& die, int nx,
                            int ny, const GeneratorConfig& cfg, Rng& rng);

/// The paper's Fig. 6 scenario: three logic blocks on a 1 mm x 1 mm die.
Floorplan make_three_block_ic(const device::Technology& tech, const thermal::Die& die,
                              double p1, double p2, double p3);

}  // namespace ptherm::floorplan
