#include "floorplan/compiled_leakage.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "device/mosfet.hpp"
#include "leakage/collapse.hpp"

namespace ptherm::floorplan {

using device::MosType;
using device::Technology;
using leakage::SpNetwork;

namespace {

/// Emits the op program for one OFF network. Mirrors SpNetwork::off_reduction
/// exactly: the recursion order here is the traversal order there, so the
/// replayed floating-point operations form the same dependency chains.
class NetworkCompiler {
 public:
  NetworkCompiler(std::vector<CompiledBlockLeakage::Op>* ops, MosType off_type,
                  const leakage::InputVector& inputs)
      : ops_(ops), off_type_(off_type), inputs_(inputs) {}

  int max_depth() const noexcept { return max_depth_; }

  void emit(const SpNetwork& net) {
    switch (net.kind()) {
      case SpNetwork::Kind::Device:
        PTHERM_ASSERT(!net.is_on(off_type_, inputs_), "compile: device unexpectedly ON");
        push({CompiledBlockLeakage::Op::Kind::Push, net.width(), 0});
        return;

      case SpNetwork::Kind::Parallel: {
        // An OFF parallel block has no ON branch (any ON branch would short
        // it); every child contributes one width, summed in child order.
        for (const auto& c : net.children()) emit(c);
        reduce({CompiledBlockLeakage::Op::Kind::ParallelSum, 0.0,
                static_cast<std::int32_t>(net.children().size())});
        return;
      }

      case SpNetwork::Kind::Series: {
        // ON children are internal shorts; the OFF children form a chain,
        // rail-side first — exactly the `widths` vector off_reduction builds.
        std::int32_t off_children = 0;
        for (const auto& c : net.children()) {
          if (c.is_on(off_type_, inputs_)) continue;
          emit(c);
          ++off_children;
        }
        PTHERM_ASSERT(off_children > 0, "compile: series unexpectedly ON");
        if (off_children > 1) {
          reduce({CompiledBlockLeakage::Op::Kind::SeriesCollapse, 0.0, off_children});
        }
        return;
      }
    }
  }

 private:
  void push(CompiledBlockLeakage::Op op) {
    ops_->push_back(op);
    max_depth_ = std::max(max_depth_, ++depth_);
  }
  void reduce(CompiledBlockLeakage::Op op) {
    ops_->push_back(op);
    depth_ -= op.count - 1;
  }

  std::vector<CompiledBlockLeakage::Op>* ops_;
  MosType off_type_;
  const leakage::InputVector& inputs_;
  int depth_ = 0;
  int max_depth_ = 0;
};

}  // namespace

CompiledBlockLeakage::CompiledBlockLeakage(const Block& block) {
  groups_.reserve(block.gate_groups.size());
  for (const auto& g : block.gate_groups) {
    PTHERM_ASSERT(g.gate != nullptr, "GateGroup without topology");
    const auto& gate = *g.gate;
    PTHERM_REQUIRE(gate.length > 0.0, "CompiledBlockLeakage: gate.length not set");
    PTHERM_REQUIRE(static_cast<int>(g.inputs.size()) >= gate.input_count(),
                   "CompiledBlockLeakage: input vector too short");

    const bool up_on = gate.pull_up.is_on(MosType::Pmos, g.inputs);
    const bool down_on = gate.pull_down.is_on(MosType::Nmos, g.inputs);
    PTHERM_REQUIRE(!(up_on && down_on),
                   "CompiledBlockLeakage: contention (both networks ON) — not static CMOS");
    PTHERM_REQUIRE(up_on || down_on,
                   "CompiledBlockLeakage: floating output (both networks OFF) — not static CMOS");

    Group group;
    group.off_type = up_on ? MosType::Nmos : MosType::Pmos;
    group.length = gate.length;
    group.count = g.count;
    group.op_begin = static_cast<std::int32_t>(ops_.size());
    NetworkCompiler compiler(&ops_, group.off_type, g.inputs);
    compiler.emit(up_on ? gate.pull_down : gate.pull_up);
    group.op_end = static_cast<std::int32_t>(ops_.size());
    max_stack_ = std::max(max_stack_, compiler.max_depth());
    groups_.push_back(group);
  }
}

double CompiledBlockLeakage::leakage_current(const Technology& tech, double temp,
                                             double vb) const {
  // Library gates stack a handful of devices; a fixed local buffer keeps the
  // eval allocation-free and thread-safe. The heap fallback is for synthetic
  // topologies deeper than any real cell.
  constexpr int kLocalStack = 32;
  double local[kLocalStack];
  std::vector<double> heap;
  double* stack = local;
  if (max_stack_ > kLocalStack) {
    heap.resize(static_cast<std::size_t>(max_stack_));
    stack = heap.data();
  }

  device::BiasPoint bias;
  bias.vgs = 0.0;
  bias.vds = tech.vdd;
  bias.vsb = -vb;
  bias.temp = temp;

  double sum = 0.0;
  for (const Group& g : groups_) {
    int sp = 0;
    for (std::int32_t oi = g.op_begin; oi < g.op_end; ++oi) {
      const Op& op = ops_[static_cast<std::size_t>(oi)];
      switch (op.kind) {
        case Op::Kind::Push:
          stack[sp++] = op.width;
          break;
        case Op::Kind::ParallelSum: {
          const int base = sp - op.count;
          double s = 0.0;  // same left-to-right sum as off_reduction's loop
          for (int i = base; i < sp; ++i) s += stack[i];
          sp = base;
          stack[sp++] = s;
          break;
        }
        case Op::Kind::SeriesCollapse: {
          // collapse_chain (Eqs. 6-12) minus the drops bookkeeping: identical
          // expressions in the identical order, so w_eq matches bitwise.
          const int base = sp - op.count;
          const double nvt = tech.n_swing * thermal_voltage(temp);
          const double body_exp = 1.0 + tech.gamma_lin + tech.sigma_dibl;
          double w_eq = stack[sp - 1];
          for (int i = sp - 2; i >= base; --i) {
            const double f = leakage::collapse_f(tech, w_eq, stack[i], temp);
            const double dv =
                leakage::delta_v(tech, f, temp, leakage::CollapseVariant::PaperBlend);
            w_eq *= std::exp(-body_exp * dv / nvt);
          }
          sp = base;
          stack[sp++] = w_eq;
          break;
        }
      }
    }
    PTHERM_ASSERT(sp == 1, "compiled program left a bad stack");
    // Eq. (13) on the collapsed width — the gate_static tail.
    const double i_off =
        device::subthreshold_current(tech, g.off_type, stack[0], g.length, bias);
    sum += g.count * i_off;
  }
  return sum;
}

}  // namespace ptherm::floorplan
