#include "rtm/sensor.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ptherm::rtm {

SensorBank::SensorBank(std::size_t block_count, SensorOptions opts)
    : block_count_(block_count), opts_(opts), rng_(opts.seed) {
  PTHERM_REQUIRE(block_count > 0, "SensorBank: need at least one block");
  PTHERM_REQUIRE(opts_.quantization >= 0.0, "SensorBank: quantization must be >= 0");
  PTHERM_REQUIRE(opts_.noise_sigma >= 0.0, "SensorBank: noise_sigma must be >= 0");
  PTHERM_REQUIRE(opts_.latency >= 0, "SensorBank: latency must be >= 0");
  history_.assign(block_count_ * static_cast<std::size_t>(opts_.latency + 1), 0.0);
  sensed_.assign(block_count_, 0.0);
}

void SensorBank::reset() {
  rng_ = Rng(opts_.seed);
  filled_ = 0;
  head_ = 0;
}

std::span<const double> SensorBank::sample(std::span<const double> temps) {
  PTHERM_REQUIRE(temps.size() == block_count_, "SensorBank::sample: block count mismatch");
  const std::size_t rows = static_cast<std::size_t>(opts_.latency) + 1;
  // Ingest this epoch's true temperatures into the ring.
  double* row = history_.data() + head_ * block_count_;
  for (std::size_t i = 0; i < block_count_; ++i) row[i] = temps[i];
  head_ = (head_ + 1) % rows;
  if (filled_ < rows) ++filled_;
  // The reading is the oldest available row: exactly `latency` epochs ago
  // once the ring is full, the first ingested row before that.
  const std::size_t age = std::min(filled_, rows);
  const std::size_t read = (head_ + rows - age) % rows;
  const double* delayed = history_.data() + read * block_count_;
  for (std::size_t i = 0; i < block_count_; ++i) {
    double value = delayed[i];
    if (opts_.noise_sigma > 0.0) {
      // Box-Muller with a fixed two-uniforms-per-sample draw: thriftier
      // schemes that cache the spare variate make the stream depend on call
      // history, which would break per-run determinism guarantees.
      const double u1 = 1.0 - rng_.uniform();  // (0, 1]: log stays finite
      const double u2 = rng_.uniform();
      value += opts_.noise_sigma * std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    }
    if (opts_.quantization > 0.0) {
      value = opts_.t_anchor +
              std::round((value - opts_.t_anchor) / opts_.quantization) * opts_.quantization;
    }
    sensed_[i] = value;
  }
  return sensed_;
}

}  // namespace ptherm::rtm
