#include "rtm/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptherm::rtm {

void Policy::reset(const PolicyContext& ctx, std::size_t block_count) {
  PTHERM_REQUIRE(block_count > 0, "Policy::reset: need at least one block");
  PTHERM_REQUIRE(ctx.level_count >= 1, "Policy::reset: need at least one level");
  PTHERM_REQUIRE(ctx.epoch_duration > 0.0, "Policy::reset: epoch_duration must be positive");
  PTHERM_REQUIRE(ctx.temperature_cap > ctx.t_sink,
                 "Policy::reset: temperature cap must exceed the sink temperature");
  PTHERM_REQUIRE(ctx.level_speed.size() == static_cast<std::size_t>(ctx.level_count),
                 "Policy::reset: level_speed must have one entry per level");
  ctx_ = ctx;
}

// ------------------------------------------------------------- threshold ---

ThresholdPolicy::ThresholdPolicy(ThresholdPolicyOptions opts) : opts_(opts) {
  PTHERM_REQUIRE(opts_.trigger_margin >= 0.0,
                 "ThresholdPolicy: trigger_margin must be >= 0");
  PTHERM_REQUIRE(opts_.release_margin > opts_.trigger_margin,
                 "ThresholdPolicy: release_margin must exceed trigger_margin (hysteresis)");
  PTHERM_REQUIRE(opts_.step >= 1, "ThresholdPolicy: step must be >= 1");
}

void ThresholdPolicy::control(const PolicyInput& in, std::span<int> levels) {
  const double trigger = context().temperature_cap - opts_.trigger_margin;
  const double release = context().temperature_cap - opts_.release_margin;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (in.temps[i] >= trigger) {
      levels[i] += opts_.step;  // slower
    } else if (in.temps[i] <= release) {
      levels[i] -= opts_.step;  // faster
    }
    // Between the two margins: hold — that's the hysteresis band.
  }
}

// ------------------------------------------------------------------- pid ---

PidPolicy::PidPolicy(PidPolicyOptions opts) : opts_(opts) {
  PTHERM_REQUIRE(opts_.setpoint_margin >= 0.0, "PidPolicy: setpoint_margin must be >= 0");
  PTHERM_REQUIRE(opts_.kp >= 0.0 && opts_.ki >= 0.0 && opts_.kd >= 0.0,
                 "PidPolicy: gains must be >= 0");
}

void PidPolicy::reset(const PolicyContext& ctx, std::size_t block_count) {
  Policy::reset(ctx, block_count);
  integral_.assign(block_count, 0.0);
  prev_error_.assign(block_count, 0.0);
  primed_ = false;
}

void PidPolicy::control(const PolicyInput& in, std::span<int> levels) {
  PTHERM_REQUIRE(integral_.size() == levels.size(),
                 "PidPolicy::control: reset was not called for this block count");
  const double setpoint = context().temperature_cap - opts_.setpoint_margin;
  const double dt = context().epoch_duration;
  const auto& speed = context().level_speed;
  const double u_min = speed.back();  // slowest level's frequency fraction
  for (std::size_t i = 0; i < levels.size(); ++i) {
    // Error in kelvin: positive while the block is cooler than the setpoint
    // (headroom -> run fast), negative when above it (throttle).
    const double e = setpoint - in.temps[i];
    const double de = primed_ ? (e - prev_error_[i]) / dt : 0.0;
    prev_error_[i] = e;
    // Command is a frequency fraction with a full-speed bias: u = 1 while
    // there is headroom, dipping below 1 as the error goes negative.
    // Conditional integration (anti-windup): only integrate when the
    // unsaturated command is inside the actuator's range or the error pulls
    // it back toward the range.
    const double u_unsat = 1.0 + opts_.kp * e + opts_.ki * (integral_[i] + e * dt) +
                           opts_.kd * de;
    if ((u_unsat <= 1.0 && u_unsat >= u_min) || (u_unsat > 1.0 && e < 0.0) ||
        (u_unsat < u_min && e > 0.0)) {
      integral_[i] += e * dt;
    }
    const double u = std::clamp(1.0 + opts_.kp * e + opts_.ki * integral_[i] + opts_.kd * de,
                                u_min, 1.0);
    // Snap to the ladder level whose frequency fraction is nearest the
    // command; ties go to the faster level (strict improvement scan).
    int best = 0;
    double best_gap = std::abs(speed[0] - u);
    for (int l = 1; l < context().level_count; ++l) {
      const double gap = std::abs(speed[static_cast<std::size_t>(l)] - u);
      if (gap < best_gap) {
        best = l;
        best_gap = gap;
      }
    }
    levels[i] = best;
  }
  primed_ = true;
}

}  // namespace ptherm::rtm
